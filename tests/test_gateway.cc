// Northbound gateway tests: routes, read-through cache coherence,
// admission control and load shedding, JSON-RPC bridging, connection
// lifecycle (keep-alive, pipelining, malformed streams), chaos clients
// (slow readers, abrupt disconnects), and graceful shutdown.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "chaos/chaos.h"
#include "common/clock.h"
#include "common/json.h"
#include "common/strings.h"
#include "gateway/gateway.h"
#include "ovsdb/database.h"
#include "ovsdb/server.h"
#include "snvs/snvs.h"

namespace nerpa::gateway {
namespace {

/// A blocking HTTP/1.1 test client over one TCP connection.
class HttpConn {
 public:
  explicit HttpConn(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      close(fd_);
      fd_ = -1;
    }
    int one = 1;
    if (fd_ >= 0) setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~HttpConn() {
    if (fd_ >= 0) close(fd_);
  }

  bool ok() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  bool SendRaw(const std::string& data) {
    size_t off = 0;
    while (off < data.size()) {
      ssize_t sent = send(fd_, data.data() + off, data.size() - off,
                          MSG_NOSIGNAL);
      if (sent <= 0) return false;
      off += static_cast<size_t>(sent);
    }
    return true;
  }

  bool SendRequest(const std::string& method, const std::string& target,
                   const std::string& body = "",
                   const std::map<std::string, std::string>& headers = {}) {
    std::string out = method + " " + target + " HTTP/1.1\r\n";
    out += "Host: localhost\r\n";
    for (const auto& [name, value] : headers) {
      out += name + ": " + value + "\r\n";
    }
    if (!body.empty() || method == "POST") {
      out += StrFormat("Content-Length: %zu\r\n", body.size());
    }
    out += "\r\n";
    out += body;
    return SendRaw(out);
  }

  struct Reply {
    int status = 0;
    std::map<std::string, std::string> headers;  // lower-cased names
    std::string body;
    Json json;  // parsed body (null when unparseable)

    const std::string& Header(const std::string& name) const {
      static const std::string kEmpty;
      auto it = headers.find(name);
      return it == headers.end() ? kEmpty : it->second;
    }
  };

  /// Reads one full response (headers + Content-Length body).
  bool ReadReply(Reply* reply) {
    *reply = Reply{};
    // Accumulate until the blank line.
    size_t head_end;
    while ((head_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      if (!Fill()) return false;
    }
    std::string head = buffer_.substr(0, head_end);
    buffer_.erase(0, head_end + 4);
    std::vector<std::string> lines = Split(head, '\n');
    if (lines.empty() || !StartsWith(lines[0], "HTTP/1.1 ")) return false;
    reply->status = std::atoi(lines[0].c_str() + std::strlen("HTTP/1.1 "));
    for (size_t i = 1; i < lines.size(); ++i) {
      std::string line(Trim(lines[i]));
      size_t colon = line.find(':');
      if (colon == std::string::npos) continue;
      std::string name = line.substr(0, colon);
      for (char& c : name) c = static_cast<char>(std::tolower(c));
      reply->headers[name] = std::string(Trim(line.substr(colon + 1)));
    }
    size_t length =
        static_cast<size_t>(std::atol(reply->Header("content-length").c_str()));
    while (buffer_.size() < length) {
      if (!Fill()) return false;
    }
    reply->body = buffer_.substr(0, length);
    buffer_.erase(0, length);
    auto parsed = Json::Parse(reply->body);
    if (parsed.ok()) reply->json = std::move(parsed).value();
    return true;
  }

  /// One-shot request + response.
  bool RoundTrip(const std::string& method, const std::string& target,
                 Reply* reply, const std::string& body = "",
                 const std::map<std::string, std::string>& headers = {}) {
    return SendRequest(method, target, body, headers) && ReadReply(reply);
  }

 private:
  bool Fill() {
    char chunk[16 * 1024];
    ssize_t got = recv(fd_, chunk, sizeof(chunk), 0);
    if (got <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(got));
    return true;
  }

  int fd_ = -1;
  std::string buffer_;
};

class GatewayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<ovsdb::OvsdbServer>(
        std::make_unique<ovsdb::Database>(snvs::SnvsSchema()));
    ASSERT_TRUE(server_->Start(0).ok());
    options_.backend_port = server_->port();
    options_.workers = 2;
  }

  void StartGateway() {
    gateway_ = std::make_unique<Gateway>(options_);
    ASSERT_TRUE(gateway_->Start().ok());
  }

  void TearDown() override {
    if (gateway_) gateway_->Stop();
    if (server_) server_->Stop();
  }

  HttpConn::Reply Get(const std::string& target,
                      const std::map<std::string, std::string>& headers = {}) {
    HttpConn conn(gateway_->http_port());
    HttpConn::Reply reply;
    EXPECT_TRUE(conn.RoundTrip("GET", target, &reply, "", headers));
    return reply;
  }

  HttpConn::Reply Post(const std::string& target, const std::string& body) {
    HttpConn conn(gateway_->http_port());
    HttpConn::Reply reply;
    EXPECT_TRUE(conn.RoundTrip("POST", target, &reply, body));
    return reply;
  }

  /// Inserts a Port row through the gateway; returns its uuid.
  std::string InsertPort(const std::string& name, int port, int tag) {
    HttpConn::Reply reply = Post(
        "/v1/transact",
        StrFormat(R"([{"op":"insert","table":"Port","row":)"
                  R"({"name":%s,"port":%d,"vlan_mode":"access","tag":%d}}])",
                  QuoteString(name).c_str(), port, tag));
    EXPECT_EQ(reply.status, 200);
    const Json* results = reply.json.Find("results");
    if (results == nullptr || !results->is_array() ||
        results->as_array().empty()) {
      return "";
    }
    const Json* uuid = results->as_array()[0].Find("uuid");
    if (uuid == nullptr || !uuid->is_array() || uuid->as_array().size() != 2) {
      return "";
    }
    return uuid->as_array()[1].as_string();
  }

  /// Polls `target` until its X-Cache: miss body satisfies `want` (the
  /// monitor pump invalidates asynchronously after a write).
  HttpConn::Reply GetFreshUntil(
      const std::string& target,
      const std::function<bool(const HttpConn::Reply&)>& want,
      int timeout_ms = 3000) {
    int64_t deadline = MonotonicNanos() + int64_t{timeout_ms} * 1000000;
    HttpConn::Reply reply;
    while (MonotonicNanos() < deadline) {
      reply = Get(target);
      if (want(reply)) return reply;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return reply;
  }

  std::unique_ptr<ovsdb::OvsdbServer> server_;
  std::unique_ptr<Gateway> gateway_;
  Gateway::Options options_;
};

TEST_F(GatewayTest, LocalRoutes) {
  StartGateway();
  HttpConn::Reply reply = Get("/healthz");
  EXPECT_EQ(reply.status, 200);
  ASSERT_NE(reply.json.Find("ok"), nullptr);
  EXPECT_TRUE(reply.json.Find("ok")->as_bool());

  reply = Get("/v1/tables");
  EXPECT_EQ(reply.status, 200);
  const Json* tables = reply.json.Find("tables");
  ASSERT_NE(tables, nullptr);
  EXPECT_EQ(tables->as_array().size(), 3u);  // AclRule, Mirror, Port

  reply = Get("/v1/stats");
  EXPECT_EQ(reply.status, 200);
  EXPECT_NE(reply.json.Find("cache"), nullptr);
  EXPECT_NE(reply.json.Find("admission"), nullptr);

  EXPECT_EQ(Get("/nope").status, 404);
  HttpConn conn(gateway_->http_port());
  HttpConn::Reply deleted;
  ASSERT_TRUE(conn.RoundTrip("DELETE", "/healthz", &deleted));
  EXPECT_EQ(deleted.status, 405);
}

TEST_F(GatewayTest, ReadyzTracksLeadershipWhileHealthzStaysLive) {
  // A follower's gateway: alive but not ready, redirecting via the hint.
  std::atomic<bool> leading{false};
  options_.readiness = [&leading] {
    Gateway::Readiness state;
    state.ready = leading.load();
    state.leader_hint = "ctl1.example:8080";
    return state;
  };
  StartGateway();

  // Liveness is unconditional — a standby must not be restarted by its
  // supervisor just because it is not leading.
  EXPECT_EQ(Get("/healthz").status, 200);

  HttpConn::Reply reply = Get("/readyz");
  EXPECT_EQ(reply.status, 503);
  ASSERT_NE(reply.json.Find("ready"), nullptr);
  EXPECT_FALSE(reply.json.Find("ready")->as_bool());
  EXPECT_EQ(reply.Header("x-nerpa-leader"), "ctl1.example:8080");
  // Retry-After is computed from admission state, not a constant; it must
  // be a positive integer number of seconds.
  EXPECT_GE(std::atoi(reply.Header("retry-after").c_str()), 1);

  // Promotion flips readiness without a restart.
  leading.store(true);
  reply = Get("/readyz");
  EXPECT_EQ(reply.status, 200);
  EXPECT_TRUE(reply.json.Find("ready")->as_bool());
  EXPECT_EQ(reply.Header("x-nerpa-leader"), "");
}

TEST_F(GatewayTest, TableReadsFilterProjectAndSingleRow) {
  StartGateway();
  std::string uuid_a = InsertPort("a", 1, 10);
  InsertPort("b", 2, 20);
  ASSERT_FALSE(uuid_a.empty());

  HttpConn::Reply reply = Get("/v1/table/Port");
  EXPECT_EQ(reply.status, 200);
  EXPECT_EQ(reply.json.Find("rows")->as_array().size(), 2u);

  reply = Get("/v1/table/Port?tag=20");
  ASSERT_EQ(reply.status, 200);
  ASSERT_EQ(reply.json.Find("rows")->as_array().size(), 1u);
  EXPECT_EQ(reply.json.Find("rows")->as_array()[0].Find("name")->as_string(),
            "b");

  // Projection: only requested columns (plus _uuid) come back.
  reply = Get("/v1/table/Port?name=a&columns=name,tag");
  ASSERT_EQ(reply.status, 200);
  const Json& row = reply.json.Find("rows")->as_array()[0];
  EXPECT_NE(row.Find("name"), nullptr);
  EXPECT_NE(row.Find("tag"), nullptr);
  EXPECT_EQ(row.Find("port"), nullptr);

  // Single-row route by uuid.
  reply = Get("/v1/table/Port/" + uuid_a);
  ASSERT_EQ(reply.status, 200);
  EXPECT_EQ(reply.json.Find("rows")->as_array().size(), 1u);
  EXPECT_EQ(
      Get("/v1/table/Port/00000000-0000-0000-0000-00000000beef").status, 404);

  EXPECT_EQ(Get("/v1/table/NoSuchTable").status, 404);
  EXPECT_EQ(Get("/v1/table/Port?bogus_column=1").status, 400);
  EXPECT_EQ(Get("/v1/table/Port?tag=notanint").status, 400);
}

TEST_F(GatewayTest, CacheReadThroughAndInvalidation) {
  StartGateway();
  InsertPort("p", 1, 7);

  // First read misses and populates; second hits.
  HttpConn::Reply first = GetFreshUntil(
      "/v1/table/Port?name=p", [](const HttpConn::Reply& r) {
        return r.status == 200 &&
               !r.json.Find("rows")->as_array().empty();
      });
  ASSERT_EQ(first.status, 200);
  HttpConn::Reply second = Get("/v1/table/Port?name=p");
  EXPECT_EQ(second.Header("x-cache"), "hit");
  EXPECT_EQ(second.body, first.body);
  EXPECT_GE(gateway_->cache().hits(), 1u);

  // A write invalidates (via the monitor pump): the next read re-fetches
  // and sees the new value.
  ASSERT_EQ(Post("/v1/transact",
                 R"([{"op":"update","table":"Port",)"
                 R"("where":[["name","==","p"]],"row":{"tag":9}}])")
                .status,
            200);
  HttpConn::Reply fresh = GetFreshUntil(
      "/v1/table/Port?name=p", [](const HttpConn::Reply& r) {
        const Json* rows = r.json.Find("rows");
        return rows != nullptr && !rows->as_array().empty() &&
               rows->as_array()[0].Find("tag")->as_integer() == 9;
      });
  ASSERT_EQ(fresh.json.Find("rows")->as_array()[0].Find("tag")->as_integer(),
            9);
}

TEST_F(GatewayTest, NoCacheBypassesLookupAndInsert) {
  StartGateway();
  InsertPort("p", 1, 7);
  uint64_t misses_before = gateway_->cache().misses();
  for (int i = 0; i < 3; ++i) {
    HttpConn::Reply reply =
        Get("/v1/table/Port?name=p", {{"Cache-Control", "no-cache"}});
    EXPECT_EQ(reply.status, 200);
    EXPECT_EQ(reply.Header("x-cache"), "miss");
  }
  // Bypassed reads never consult the cache, so the miss counter is flat
  // and nothing was inserted for this key.
  EXPECT_EQ(gateway_->cache().misses(), misses_before);
}

TEST_F(GatewayTest, JsonRpcBridge) {
  StartGateway();
  HttpConn::Reply reply =
      Post("/jsonrpc", R"({"method":"echo","params":[1,"x"],"id":42})");
  ASSERT_EQ(reply.status, 200);
  EXPECT_EQ(reply.json.Find("id")->as_integer(), 42);
  EXPECT_EQ(reply.json.Find("result")->as_array().size(), 2u);
  EXPECT_TRUE(reply.json.Find("error")->is_null());

  reply = Post("/jsonrpc",
               R"({"method":"transact","params":[{"op":"insert",)"
               R"("table":"Mirror","row":{"name":"m","src_port":1,)"
               R"("out_port":2}}],"id":1})");
  ASSERT_EQ(reply.status, 200);
  EXPECT_TRUE(reply.json.Find("error")->is_null());

  reply = Post("/jsonrpc", R"({"method":"fetch","params":["Mirror",[],)"
                           R"(["name"]],"id":2})");
  ASSERT_EQ(reply.status, 200);
  const Json* rows = reply.json.Find("result")->Find("rows");
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->as_array().size(), 1u);

  reply = Post("/jsonrpc", R"({"method":"get_schema","params":[],"id":3})");
  ASSERT_EQ(reply.status, 200);
  EXPECT_NE(reply.json.Find("result")->Find("tables"), nullptr);

  reply = Post("/jsonrpc", R"({"method":"levitate","id":4})");
  ASSERT_EQ(reply.status, 200);
  EXPECT_FALSE(reply.json.Find("error")->is_null());

  EXPECT_EQ(Post("/jsonrpc", "not json at all{{{").status, 400);
}

TEST_F(GatewayTest, AdmissionShedsWith503AndRetryAfter) {
  options_.admit_rate_per_sec = 1;  // one backend op, then dry
  options_.admit_burst = 1;
  StartGateway();
  InsertPort("p", 1, 7);  // spends the lone token
  std::this_thread::sleep_for(std::chrono::milliseconds(1100));  // refill 1

  // Backend-bound (no-cache) reads: the first is admitted, the following
  // burst mostly sheds.
  int shed = 0;
  int okay = 0;
  for (int i = 0; i < 6; ++i) {
    HttpConn::Reply reply =
        Get("/v1/table/Port?name=p", {{"Cache-Control", "no-cache"}});
    if (reply.status == 503) {
      ++shed;
      // Computed from token-bucket deficit and inflight drain estimate —
      // any positive integer is honest; zero or garbage is not.
      EXPECT_GE(std::atoi(reply.Header("retry-after").c_str()), 1);
    } else {
      EXPECT_EQ(reply.status, 200);
      ++okay;
    }
  }
  EXPECT_GE(okay, 1);
  EXPECT_GE(shed, 3);
  EXPECT_GE(gateway_->admission().shed(), static_cast<uint64_t>(shed));

  // Cache hits bypass admission entirely: prime once (may take a retry as
  // tokens trickle back), then hits flow despite the empty bucket.
  HttpConn::Reply primed = GetFreshUntil(
      "/v1/table/Port?name=p",
      [](const HttpConn::Reply& r) { return r.status == 200; });
  ASSERT_EQ(primed.status, 200);
  for (int i = 0; i < 5; ++i) {
    HttpConn::Reply reply = Get("/v1/table/Port?name=p");
    EXPECT_EQ(reply.status, 200);
    EXPECT_EQ(reply.Header("x-cache"), "hit");
  }
}

TEST_F(GatewayTest, ExpiredDeadlineAnswers504WithoutBackendWork) {
  // A 1ns default budget expires every backend-bound request before a
  // worker can dequeue it — the gateway must answer 504 at dequeue, not
  // evaluate the read.  Local routes carry no deadline and stay up.
  options_.default_deadline_nanos = 1;
  StartGateway();
  EXPECT_EQ(Get("/healthz").status, 200);

  HttpConn::Reply reply =
      Get("/v1/table/Port", {{"Cache-Control", "no-cache"}});
  EXPECT_EQ(reply.status, 504);
  EXPECT_GE(gateway_->deadline_drops(), 1u);

  // A client-supplied X-Nerpa-Deadline-Ms budget overrides the default.
  reply = Get("/v1/table/Port", {{"Cache-Control", "no-cache"},
                                 {"X-Nerpa-Deadline-Ms", "5000"}});
  EXPECT_EQ(reply.status, 200);
}

TEST_F(GatewayTest, BrownoutServesStaleCachedReads) {
  // Exactly three tokens, negligible refill: insert + priming read +
  // invalidating update spend them all, so every later backend-bound
  // read sheds.  Enough sheds trip brownout, and brownout answers
  // cacheable reads from the stale-but-resident cache entry instead of
  // a bare 503.
  options_.admit_rate_per_sec = 0.01;
  options_.admit_burst = 3;
  StartGateway();
  ASSERT_FALSE(InsertPort("p", 1, 7).empty());  // token 1

  HttpConn::Reply primed = GetFreshUntil(       // token 2 (one miss)
      "/v1/table/Port?name=p", [](const HttpConn::Reply& r) {
        return r.status == 200 && !r.json.Find("rows")->as_array().empty();
      });
  ASSERT_EQ(primed.status, 200);

  ASSERT_EQ(Post("/v1/transact",                // token 3; goes stale
                 R"([{"op":"update","table":"Port",)"
                 R"("where":[["name","==","p"]],"row":{"tag":9}}])")
                .status,
            200);

  // Until the pump bumps the generation these are plain cache hits; after
  // the bump they shed, and once brownout engages the stale body comes
  // back with the honesty header.
  bool served_stale = false;
  for (int i = 0; i < 100 && !served_stale; ++i) {
    HttpConn::Reply reply = Get("/v1/table/Port?name=p");
    if (reply.status == 200 && reply.Header("x-nerpa-stale") == "1") {
      served_stale = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(served_stale);
  EXPECT_GE(gateway_->stale_served(), 1u);
  EXPECT_GE(gateway_->cache().stale_hits(), 1u);
  EXPECT_TRUE(gateway_->admission().InBrownout(MonotonicNanos()));
}

TEST_F(GatewayTest, ReadyzReportsStuckSubsystems) {
  Watchdog watchdog;
  options_.watchdog = &watchdog;
  StartGateway();
  EXPECT_EQ(Get("/readyz").status, 200);

  // An armed operation one nanosecond over budget: instantly stuck.
  watchdog.Arm("ha.wal", 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  HttpConn::Reply reply = Get("/readyz");
  EXPECT_EQ(reply.status, 503);
  const Json* stuck = reply.json.Find("stuck");
  ASSERT_NE(stuck, nullptr);
  ASSERT_EQ(stuck->as_array().size(), 1u);
  EXPECT_EQ(stuck->as_array()[0].as_string(), "ha.wal");

  // Disarm clears the condition without a restart.
  watchdog.Disarm("ha.wal");
  EXPECT_EQ(Get("/readyz").status, 200);

  // The pump heartbeat surfaces in /v1/stats alongside the cleared arm.
  reply = Get("/v1/stats");
  ASSERT_EQ(reply.status, 200);
  const Json* health = reply.json.Find("health");
  ASSERT_NE(health, nullptr);
  EXPECT_NE(health->Find("gateway.pump"), nullptr);
  EXPECT_NE(health->Find("ha.wal"), nullptr);
}

TEST_F(GatewayTest, KeepAliveAndPipeliningPreserveOrder) {
  StartGateway();
  InsertPort("p", 1, 7);
  HttpConn conn(gateway_->http_port());
  ASSERT_TRUE(conn.ok());

  // Several requests on one connection, written before any response is
  // read; responses must come back complete and in order.
  ASSERT_TRUE(conn.SendRequest("GET", "/healthz"));
  ASSERT_TRUE(conn.SendRequest("GET", "/v1/table/Port?name=p"));
  ASSERT_TRUE(conn.SendRequest("GET", "/v1/tables"));
  ASSERT_TRUE(conn.SendRequest("GET", "/v1/table/Port?name=p"));

  HttpConn::Reply reply;
  ASSERT_TRUE(conn.ReadReply(&reply));
  EXPECT_NE(reply.json.Find("ok"), nullptr);
  ASSERT_TRUE(conn.ReadReply(&reply));
  EXPECT_NE(reply.json.Find("rows"), nullptr);
  ASSERT_TRUE(conn.ReadReply(&reply));
  EXPECT_NE(reply.json.Find("tables"), nullptr);
  ASSERT_TRUE(conn.ReadReply(&reply));
  EXPECT_NE(reply.json.Find("rows"), nullptr);

  // Connection: close is honored.
  ASSERT_TRUE(conn.SendRequest("GET", "/healthz", "",
                               {{"Connection", "close"}}));
  ASSERT_TRUE(conn.ReadReply(&reply));
  EXPECT_EQ(reply.Header("connection"), "close");
  char byte;
  EXPECT_EQ(recv(conn.fd(), &byte, 1, 0), 0);  // server closed
}

TEST_F(GatewayTest, MalformedRequestGets400AndClose) {
  StartGateway();
  HttpConn conn(gateway_->http_port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.SendRaw("THIS IS NOT HTTP\r\n\r\n"));
  HttpConn::Reply reply;
  ASSERT_TRUE(conn.ReadReply(&reply));
  EXPECT_EQ(reply.status, 400);
  EXPECT_EQ(reply.Header("connection"), "close");

  // Oversized head: poisoned stream, bounded memory.
  HttpConn big(gateway_->http_port());
  ASSERT_TRUE(big.ok());
  std::string huge = "GET /healthz HTTP/1.1\r\n";
  huge += "X-Filler: " + std::string(HttpParser::kMaxHeadBytes, 'x');
  ASSERT_TRUE(big.SendRaw(huge));
  ASSERT_TRUE(big.ReadReply(&reply));
  EXPECT_EQ(reply.status, 400);
}

TEST_F(GatewayTest, ChangesFeedTracksWrites) {
  StartGateway();
  HttpConn::Reply reply = Get("/v1/changes");
  ASSERT_EQ(reply.status, 200);
  int64_t start = reply.json.Find("latest")->as_integer();

  InsertPort("p", 1, 7);
  HttpConn::Reply acl =
      Post("/v1/transact", R"([{"op":"insert","table":"AclRule",)"
                           R"("row":{"mac":42,"vlan":1,"allow":true}}])");
  ASSERT_EQ(acl.status, 200);

  // The pump delivers asynchronously; poll until both tables show up.
  int64_t deadline = MonotonicNanos() + int64_t{3000} * 1000000;
  bool saw_port = false;
  bool saw_acl = false;
  while (MonotonicNanos() < deadline && !(saw_port && saw_acl)) {
    reply = Get(StrFormat("/v1/changes?since=%lld",
                          static_cast<long long>(start)));
    ASSERT_EQ(reply.status, 200);
    for (const Json& change : reply.json.Find("changes")->as_array()) {
      const std::string& table = change.Find("table")->as_string();
      saw_port = saw_port || table == "Port";
      saw_acl = saw_acl || table == "AclRule";
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(saw_port);
  EXPECT_TRUE(saw_acl);
  EXPECT_EQ(Get("/v1/changes?since=borked").status, 400);
}

TEST_F(GatewayTest, ChaosSlowClientIsDroppedOthersUnaffected) {
  options_.max_outbox_bytes = 2 * 1024;  // tiny cap: force the shed path
  StartGateway();

  // The slow client pipelines far more responses than its outbox cap and
  // never reads one byte.
  HttpConn slow(gateway_->http_port());
  ASSERT_TRUE(slow.ok());
  std::string burst;
  for (int i = 0; i < 200; ++i) {
    burst += "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
  }
  ASSERT_TRUE(slow.SendRaw(burst));

  // Gateway drops it once the outbox blows the cap.
  int64_t deadline = MonotonicNanos() + int64_t{3000} * 1000000;
  while (gateway_->slow_client_drops() == 0 && MonotonicNanos() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(gateway_->slow_client_drops(), 1u);

  // A well-behaved client is unaffected.
  HttpConn::Reply reply = Get("/healthz");
  EXPECT_EQ(reply.status, 200);
}

TEST_F(GatewayTest, ChaosAbruptDisconnectsDoNotWedgeTheGateway) {
  StartGateway();
  InsertPort("p", 1, 7);
  chaos::ChaosSchedule schedule(0xFEEDu);

  for (int i = 0; i < 40; ++i) {
    HttpConn conn(gateway_->http_port());
    if (!conn.ok()) continue;
    switch (schedule.Pick(4)) {
      case 0:
        // Half a request line, then vanish.
        conn.SendRaw("GET /v1/tab");
        break;
      case 1:
        // Full request, vanish before reading the response.
        conn.SendRequest("GET", "/v1/table/Port?name=p",
                         "", {{"Cache-Control", "no-cache"}});
        break;
      case 2:
        // Headers promise a body that never comes.
        conn.SendRaw("POST /v1/transact HTTP/1.1\r\n"
                     "Content-Length: 500\r\n\r\n[{\"op\":");
        break;
      case 3:
        // Immediate close.
        break;
    }
    // HttpConn destructor closes abruptly.
  }

  // The gateway still answers and its backend path still works.
  HttpConn::Reply reply = Get("/healthz");
  EXPECT_EQ(reply.status, 200);
  reply = Get("/v1/table/Port?name=p", {{"Cache-Control", "no-cache"}});
  EXPECT_EQ(reply.status, 200);
  EXPECT_EQ(reply.json.Find("rows")->as_array().size(), 1u);
}

TEST_F(GatewayTest, GracefulStopFinishesInflightAndRefusesNew) {
  StartGateway();
  InsertPort("p", 1, 7);

  HttpConn conn(gateway_->http_port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.SendRequest("GET", "/v1/table/Port?name=p", "",
                               {{"Cache-Control", "no-cache"}}));
  uint16_t port = gateway_->http_port();
  gateway_->Stop();

  // The in-flight request was answered before the teardown closed us.
  HttpConn::Reply reply;
  EXPECT_TRUE(conn.ReadReply(&reply));
  EXPECT_EQ(reply.status, 200);

  // New connections are refused (or immediately closed) after Stop.
  HttpConn late(port);
  if (late.ok()) {
    HttpConn::Reply ignored;
    EXPECT_FALSE(late.RoundTrip("GET", "/healthz", &ignored));
  }

  gateway_->Stop();  // idempotent
}

}  // namespace
}  // namespace nerpa::gateway
