#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/strings.h"

namespace nerpa {
namespace {

/// Recursive-descent JSON parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> ParseDocument() {
    NERPA_ASSIGN_OR_RETURN(Json value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return nerpa::ParseError(
        StrFormat("JSON at offset %zu: %s", pos_, message.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        NERPA_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Json(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) return Json(true);
        return Error("bad literal");
      case 'f':
        if (ConsumeLiteral("false")) return Json(false);
        return Error("bad literal");
      case 'n':
        if (ConsumeLiteral("null")) return Json(nullptr);
        return Error("bad literal");
      default:
        return ParseNumber();
    }
  }

  Result<Json> ParseObject() {
    ++pos_;  // '{'
    Json::Object obj;
    SkipWhitespace();
    if (Consume('}')) return Json(std::move(obj));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      NERPA_ASSIGN_OR_RETURN(std::string key, ParseString());
      if (!Consume(':')) return Error("expected ':' after object key");
      NERPA_ASSIGN_OR_RETURN(Json value, ParseValue());
      obj.emplace(std::move(key), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return Json(std::move(obj));
      return Error("expected ',' or '}' in object");
    }
  }

  Result<Json> ParseArray() {
    ++pos_;  // '['
    Json::Array arr;
    SkipWhitespace();
    if (Consume(']')) return Json(std::move(arr));
    while (true) {
      NERPA_ASSIGN_OR_RETURN(Json value, ParseValue());
      arr.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return Json(std::move(arr));
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Error("bad hex digit in \\u escape");
            }
            // Encode as UTF-8 (basic multilingual plane only; surrogate
            // pairs are rejected — OVSDB identifiers never need them).
            if (code >= 0xD800 && code <= 0xDFFF) {
              return Error("surrogate pairs unsupported");
            }
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Error("bad escape character");
        }
      } else {
        out += c;
      }
    }
    return Error("unterminated string");
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        // '+'/'-' are only legal inside an exponent; the strtod reparse
        // below rejects misplaced signs.
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Error("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    if (!is_double) {
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Json(static_cast<int64_t>(v));
      }
      is_double = true;  // overflow: fall back to double
    }
    char* end = nullptr;
    errno = 0;
    double d = std::strtod(token.c_str(), &end);
    if (errno != 0 || end != token.c_str() + token.size()) {
      return Error("malformed number '" + token + "'");
    }
    return Json(d);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const Json* Json::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const Object& obj = as_object();
  auto it = obj.find(std::string(key));
  return it == obj.end() ? nullptr : &it->second;
}

Result<Json> Json::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

void Json::DumpTo(std::string& out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<size_t>(indent * d), ' ');
    }
  };
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_integer()) {
    out += std::to_string(as_integer());
  } else if (is_double()) {
    double d = std::get<double>(rep_);
    if (std::isfinite(d)) {
      std::string s = StrFormat("%.17g", d);
      out += s;
    } else {
      out += "null";  // JSON has no Inf/NaN
    }
  } else if (is_string()) {
    out += QuoteString(as_string());
  } else if (is_array()) {
    const Array& arr = as_array();
    out += '[';
    for (size_t i = 0; i < arr.size(); ++i) {
      if (i > 0) out += ',';
      newline(depth + 1);
      arr[i].DumpTo(out, indent, depth + 1);
    }
    if (!arr.empty()) newline(depth);
    out += ']';
  } else {
    const Object& obj = as_object();
    out += '{';
    size_t i = 0;
    for (const auto& [key, value] : obj) {
      if (i++ > 0) out += ',';
      newline(depth + 1);
      out += QuoteString(key);
      out += ':';
      if (indent > 0) out += ' ';
      value.DumpTo(out, indent, depth + 1);
    }
    if (!obj.empty()) newline(depth);
    out += '}';
  }
}

}  // namespace nerpa
