// Expression evaluation over a rule frame, plus the builtin function
// catalogue shared between the type checker and the evaluator.
#ifndef NERPA_DLOG_EVAL_H_
#define NERPA_DLOG_EVAL_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "dlog/ast.h"
#include "dlog/type.h"

namespace nerpa::dlog {

/// Result type of builtin `name` applied to `arg_types`; error if no such
/// builtin or the argument types are wrong.
Result<Type> BuiltinResultType(std::string_view name,
                               const std::vector<Type>& arg_types);

/// Evaluates a type-checked expression.  `frame` is the rule's variable
/// frame indexed by Expr::var_slot.  Runtime failures (division by zero)
/// are reported as Status, never UB.
Result<Value> EvalExpr(const Expr& expr, const std::vector<Value>& frame);

}  // namespace nerpa::dlog

#endif  // NERPA_DLOG_EVAL_H_
