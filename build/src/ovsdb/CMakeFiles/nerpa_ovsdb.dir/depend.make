# Empty dependencies file for nerpa_ovsdb.
# This may be replaced when dependencies are built.
