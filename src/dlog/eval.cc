#include "dlog/eval.h"

#include "common/hash.h"
#include "common/strings.h"

namespace nerpa::dlog {

Result<Type> BuiltinResultType(std::string_view name,
                               const std::vector<Type>& arg_types) {
  auto arity_error = [&](size_t want) {
    return TypeError(StrFormat("%.*s expects %zu argument(s), got %zu",
                               static_cast<int>(name.size()), name.data(),
                               want, arg_types.size()));
  };
  if (name == "to_string") {
    if (arg_types.size() != 1) return arity_error(1);
    return Type::String();
  }
  if (name == "hash64") {
    if (arg_types.empty()) return TypeError("hash64 needs >= 1 argument");
    return Type::Bit(64);
  }
  if (name == "min2" || name == "max2") {
    if (arg_types.size() != 2) return arity_error(2);
    if (!arg_types[0].is_numeric() || arg_types[0] != arg_types[1]) {
      return TypeError(std::string(name) + " needs two equal numeric types");
    }
    return arg_types[0];
  }
  if (name == "abs") {
    if (arg_types.size() != 1) return arity_error(1);
    if (arg_types[0].kind != Type::Kind::kInt) {
      return TypeError("abs expects bigint");
    }
    return Type::Int();
  }
  if (name == "len") {
    if (arg_types.size() != 1) return arity_error(1);
    if (arg_types[0].kind != Type::Kind::kString) {
      return TypeError("len expects string");
    }
    return Type::Int();
  }
  if (name == "contains") {
    if (arg_types.size() != 2) return arity_error(2);
    if (arg_types[0].kind != Type::Kind::kString ||
        arg_types[1].kind != Type::Kind::kString) {
      return TypeError("contains expects (string, string)");
    }
    return Type::Bool();
  }
  if (name == "substr") {
    if (arg_types.size() != 3) return arity_error(3);
    if (arg_types[0].kind != Type::Kind::kString ||
        arg_types[1].kind != Type::Kind::kInt ||
        arg_types[2].kind != Type::Kind::kInt) {
      return TypeError("substr expects (string, bigint, bigint)");
    }
    return Type::String();
  }
  if (name == "fst" || name == "snd") {
    if (arg_types.size() != 1) return arity_error(1);
    if (arg_types[0].kind != Type::Kind::kTuple ||
        arg_types[0].elems.size() != 2) {
      return TypeError(std::string(name) + " expects a 2-tuple");
    }
    return arg_types[0].elems[name == "fst" ? 0 : 1];
  }
  if (name == "vec_len") {
    if (arg_types.size() != 1) return arity_error(1);
    if (arg_types[0].kind != Type::Kind::kVec) {
      return TypeError("vec_len expects a Vec<...>");
    }
    return Type::Int();
  }
  if (name == "vec_contains") {
    if (arg_types.size() != 2) return arity_error(2);
    if (arg_types[0].kind != Type::Kind::kVec ||
        arg_types[0].elems[0] != arg_types[1]) {
      return TypeError("vec_contains expects (Vec<T>, T)");
    }
    return Type::Bool();
  }
  return TypeError("unknown function '" + std::string(name) + "'");
}

namespace {

/// Stringifies a value for to_string (strings unquoted).
std::string ValueToPlainString(const Value& v) {
  if (v.is_string()) return v.as_string();
  return v.ToString();
}

uint64_t HashValue(const Value& v, uint64_t seed) {
  return Fnv1a(nullptr, 0, seed) ^ v.Hash() * 0x9e3779b97f4a7c15ULL;
}

/// Wraps a raw numeric result into the expression's resolved type.
Value MakeNumeric(const Type& type, int64_t raw) {
  if (type.kind == Type::Kind::kBit) {
    return Value::Bit(type.MaskBits(static_cast<uint64_t>(raw)));
  }
  return Value::Int(raw);
}

}  // namespace

Result<Value> EvalExpr(const Expr& expr, const std::vector<Value>& frame) {
  switch (expr.kind) {
    case Expr::Kind::kVar: {
      if (expr.var_slot < 0 ||
          static_cast<size_t>(expr.var_slot) >= frame.size()) {
        return Internal("unresolved variable '" + expr.name + "'");
      }
      return frame[static_cast<size_t>(expr.var_slot)];
    }
    case Expr::Kind::kLit: {
      // Integer literals adopt the resolved (possibly bit<N>) type.
      if (expr.value.is_int() &&
          expr.resolved_type.kind == Type::Kind::kBit) {
        return Value::Bit(expr.resolved_type.MaskBits(
            static_cast<uint64_t>(expr.value.as_int())));
      }
      return expr.value;
    }
    case Expr::Kind::kUnary: {
      NERPA_ASSIGN_OR_RETURN(Value arg, EvalExpr(*expr.args[0], frame));
      switch (expr.op1) {
        case UnOp::kNeg:
          return MakeNumeric(expr.resolved_type, -arg.NumericAsInt());
        case UnOp::kNot:
          return Value::Bool(!arg.as_bool());
        case UnOp::kBitNot:
          return MakeNumeric(expr.resolved_type, ~arg.NumericAsInt());
      }
      return Internal("bad unary op");
    }
    case Expr::Kind::kBinary: {
      // Short-circuit logical operators.
      if (expr.op2 == BinOp::kAnd || expr.op2 == BinOp::kOr) {
        NERPA_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.args[0], frame));
        if (expr.op2 == BinOp::kAnd && !lhs.as_bool()) {
          return Value::Bool(false);
        }
        if (expr.op2 == BinOp::kOr && lhs.as_bool()) return Value::Bool(true);
        return EvalExpr(*expr.args[1], frame);
      }
      NERPA_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.args[0], frame));
      NERPA_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.args[1], frame));
      switch (expr.op2) {
        case BinOp::kAdd:
          return MakeNumeric(expr.resolved_type,
                             lhs.NumericAsInt() + rhs.NumericAsInt());
        case BinOp::kSub:
          return MakeNumeric(expr.resolved_type,
                             lhs.NumericAsInt() - rhs.NumericAsInt());
        case BinOp::kMul:
          return MakeNumeric(expr.resolved_type,
                             lhs.NumericAsInt() * rhs.NumericAsInt());
        case BinOp::kDiv:
          if (rhs.NumericAsInt() == 0) {
            return InvalidArgument("division by zero");
          }
          return MakeNumeric(expr.resolved_type,
                             lhs.NumericAsInt() / rhs.NumericAsInt());
        case BinOp::kMod:
          if (rhs.NumericAsInt() == 0) {
            return InvalidArgument("modulo by zero");
          }
          return MakeNumeric(expr.resolved_type,
                             lhs.NumericAsInt() % rhs.NumericAsInt());
        case BinOp::kEq: return Value::Bool(lhs == rhs);
        case BinOp::kNe: return Value::Bool(lhs != rhs);
        case BinOp::kLt: return Value::Bool(lhs < rhs);
        case BinOp::kLe: return Value::Bool(!(rhs < lhs));
        case BinOp::kGt: return Value::Bool(rhs < lhs);
        case BinOp::kGe: return Value::Bool(!(lhs < rhs));
        case BinOp::kBitAnd:
          return MakeNumeric(expr.resolved_type,
                             lhs.NumericAsInt() & rhs.NumericAsInt());
        case BinOp::kBitOr:
          return MakeNumeric(expr.resolved_type,
                             lhs.NumericAsInt() | rhs.NumericAsInt());
        case BinOp::kBitXor:
          return MakeNumeric(expr.resolved_type,
                             lhs.NumericAsInt() ^ rhs.NumericAsInt());
        case BinOp::kShl: {
          int64_t amount = rhs.NumericAsInt();
          if (amount < 0 || amount > 63) {
            return InvalidArgument("shift amount out of range");
          }
          return MakeNumeric(expr.resolved_type,
                             static_cast<int64_t>(
                                 static_cast<uint64_t>(lhs.NumericAsInt())
                                 << amount));
        }
        case BinOp::kShr: {
          int64_t amount = rhs.NumericAsInt();
          if (amount < 0 || amount > 63) {
            return InvalidArgument("shift amount out of range");
          }
          // Logical shift for bit<N>, arithmetic for bigint.
          if (expr.resolved_type.kind == Type::Kind::kBit) {
            return Value::Bit(expr.resolved_type.MaskBits(
                lhs.as_bit() >> amount));
          }
          return Value::Int(lhs.as_int() >> amount);
        }
        case BinOp::kConcat:
          return Value::String(lhs.as_string() + rhs.as_string());
        case BinOp::kAnd:
        case BinOp::kOr:
          break;  // handled above
      }
      return Internal("bad binary op");
    }
    case Expr::Kind::kCall: {
      std::vector<Value> args;
      args.reserve(expr.args.size());
      for (const ExprPtr& arg : expr.args) {
        NERPA_ASSIGN_OR_RETURN(Value v, EvalExpr(*arg, frame));
        args.push_back(std::move(v));
      }
      if (expr.name == "to_string") {
        return Value::String(ValueToPlainString(args[0]));
      }
      if (expr.name == "hash64") {
        uint64_t h = 0xcbf29ce484222325ULL;
        for (const Value& v : args) h = HashValue(v, h);
        return Value::Bit(h);
      }
      if (expr.name == "min2") {
        return args[0] < args[1] ? args[0] : args[1];
      }
      if (expr.name == "max2") {
        return args[0] < args[1] ? args[1] : args[0];
      }
      if (expr.name == "abs") {
        int64_t v = args[0].as_int();
        return Value::Int(v < 0 ? -v : v);
      }
      if (expr.name == "len") {
        return Value::Int(static_cast<int64_t>(args[0].as_string().size()));
      }
      if (expr.name == "contains") {
        return Value::Bool(args[0].as_string().find(args[1].as_string()) !=
                           std::string::npos);
      }
      if (expr.name == "fst") {
        return args[0].as_tuple()[0];
      }
      if (expr.name == "snd") {
        return args[0].as_tuple()[1];
      }
      if (expr.name == "vec_len") {
        return Value::Int(static_cast<int64_t>(args[0].as_tuple().size()));
      }
      if (expr.name == "vec_contains") {
        for (const Value& elem : args[0].as_tuple()) {
          if (elem == args[1]) return Value::Bool(true);
        }
        return Value::Bool(false);
      }
      if (expr.name == "substr") {
        const std::string& s = args[0].as_string();
        int64_t start = args[1].as_int();
        int64_t count = args[2].as_int();
        if (start < 0) start = 0;
        if (start > static_cast<int64_t>(s.size())) {
          start = static_cast<int64_t>(s.size());
        }
        if (count < 0) count = 0;
        return Value::String(s.substr(static_cast<size_t>(start),
                                      static_cast<size_t>(count)));
      }
      return Internal("unknown function '" + expr.name + "'");
    }
    case Expr::Kind::kTuple: {
      ValueVec elems;
      elems.reserve(expr.args.size());
      for (const ExprPtr& arg : expr.args) {
        NERPA_ASSIGN_OR_RETURN(Value v, EvalExpr(*arg, frame));
        elems.push_back(std::move(v));
      }
      return Value::Tuple(std::move(elems));
    }
    case Expr::Kind::kCond: {
      NERPA_ASSIGN_OR_RETURN(Value c, EvalExpr(*expr.args[0], frame));
      return EvalExpr(c.as_bool() ? *expr.args[1] : *expr.args[2], frame);
    }
    case Expr::Kind::kCast: {
      NERPA_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.args[0], frame));
      const Type& to = expr.literal_type;
      int64_t raw = v.NumericAsInt();
      if (to.kind == Type::Kind::kBit) {
        return Value::Bit(to.MaskBits(static_cast<uint64_t>(raw)));
      }
      return Value::Int(raw);
    }
    case Expr::Kind::kWildcard:
      return Internal("wildcard in expression position");
  }
  return Internal("bad expression kind");
}

}  // namespace nerpa::dlog
