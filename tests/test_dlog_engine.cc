// Core behaviour of the incremental Datalog engine: joins, negation,
// aggregation, recursion, and — most importantly — the equivalence between
// incremental evaluation and from-scratch recomputation.
#include <gtest/gtest.h>

#include <random>

#include "dlog/engine.h"
#include "dlog/program.h"

namespace nerpa::dlog {
namespace {

using ::testing::Test;

std::shared_ptr<const Program> MustParse(std::string_view source) {
  auto program = Program::Parse(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return program.value();
}

Row R(std::initializer_list<Value> values) { return Row(values); }
Value I(int64_t v) { return Value::Int(v); }
Value B(uint64_t v) { return Value::Bit(v); }
Value S(const char* v) { return Value::String(v); }

TEST(DlogEngine, SimpleProjection) {
  auto program = MustParse(R"(
    input relation Port(id: bigint, mode: string, tag: bigint)
    output relation InVlan(port: bigint, vlan: bigint)
    InVlan(p, t) :- Port(p, "access", t).
  )");
  Engine engine(program);
  ASSERT_TRUE(engine.Insert("Port", R({I(1), S("access"), I(10)})).ok());
  ASSERT_TRUE(engine.Insert("Port", R({I(2), S("trunk"), I(20)})).ok());
  auto delta = engine.Commit();
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  ASSERT_EQ(delta->outputs.count("InVlan"), 1u);
  ASSERT_EQ(delta->outputs["InVlan"].size(), 1u);
  EXPECT_EQ(delta->outputs["InVlan"][0].first, R({I(1), I(10)}));
  EXPECT_EQ(delta->outputs["InVlan"][0].second, +1);

  // Deleting the access port retracts the derived row.
  ASSERT_TRUE(engine.Delete("Port", R({I(1), S("access"), I(10)})).ok());
  delta = engine.Commit();
  ASSERT_TRUE(delta.ok());
  ASSERT_EQ(delta->outputs["InVlan"].size(), 1u);
  EXPECT_EQ(delta->outputs["InVlan"][0].second, -1);
  EXPECT_EQ(engine.Size("InVlan"), 0u);
}

TEST(DlogEngine, JoinAndArithmetic) {
  auto program = MustParse(R"(
    input relation E(a: bigint, b: bigint)
    input relation F(b: bigint, c: bigint)
    output relation G(a: bigint, c: bigint, s: bigint)
    G(a, c, a + c) :- E(a, b), F(b, c), a != c.
  )");
  Engine engine(program);
  ASSERT_TRUE(engine.Insert("E", R({I(1), I(2)})).ok());
  ASSERT_TRUE(engine.Insert("F", R({I(2), I(3)})).ok());
  ASSERT_TRUE(engine.Insert("F", R({I(2), I(1)})).ok());  // filtered: a == c
  auto delta = engine.Commit();
  ASSERT_TRUE(delta.ok());
  ASSERT_EQ(engine.Size("G"), 1u);
  EXPECT_TRUE(engine.Contains("G", R({I(1), I(3), I(4)})));

  // Adding a second E row joins with the existing F rows incrementally.
  ASSERT_TRUE(engine.Insert("E", R({I(7), I(2)})).ok());
  delta = engine.Commit();
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(engine.Size("G"), 3u);  // (1,3), (7,3), (7,1)
  EXPECT_TRUE(engine.Contains("G", R({I(7), I(1), I(8)})));
}

TEST(DlogEngine, DerivationCountsSurviveOneSupportRemoval) {
  // The same derived row from two different supports: deleting one support
  // must NOT retract the row; deleting both must.
  auto program = MustParse(R"(
    input relation A(x: bigint)
    input relation B(x: bigint)
    output relation O(x: bigint)
    O(x) :- A(x).
    O(x) :- B(x).
  )");
  Engine engine(program);
  ASSERT_TRUE(engine.Insert("A", R({I(5)})).ok());
  ASSERT_TRUE(engine.Insert("B", R({I(5)})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_TRUE(engine.Contains("O", R({I(5)})));

  ASSERT_TRUE(engine.Delete("A", R({I(5)})).ok());
  auto delta = engine.Commit();
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->empty()) << delta->ToString();
  EXPECT_TRUE(engine.Contains("O", R({I(5)})));

  ASSERT_TRUE(engine.Delete("B", R({I(5)})).ok());
  delta = engine.Commit();
  ASSERT_TRUE(delta.ok());
  EXPECT_FALSE(engine.Contains("O", R({I(5)})));
  ASSERT_EQ(delta->outputs["O"].size(), 1u);
  EXPECT_EQ(delta->outputs["O"][0].second, -1);
}

TEST(DlogEngine, NegationIncremental) {
  auto program = MustParse(R"(
    input relation All(x: bigint)
    input relation Banned(x: bigint)
    output relation Allowed(x: bigint)
    Allowed(x) :- All(x), not Banned(x).
  )");
  Engine engine(program);
  ASSERT_TRUE(engine.Insert("All", R({I(1)})).ok());
  ASSERT_TRUE(engine.Insert("All", R({I(2)})).ok());
  ASSERT_TRUE(engine.Insert("Banned", R({I(2)})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_TRUE(engine.Contains("Allowed", R({I(1)})));
  EXPECT_FALSE(engine.Contains("Allowed", R({I(2)})));

  // Banning 1 retracts it; unbanning 2 derives it.
  ASSERT_TRUE(engine.Insert("Banned", R({I(1)})).ok());
  ASSERT_TRUE(engine.Delete("Banned", R({I(2)})).ok());
  auto delta = engine.Commit();
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_FALSE(engine.Contains("Allowed", R({I(1)})));
  EXPECT_TRUE(engine.Contains("Allowed", R({I(2)})));
  EXPECT_EQ(delta->outputs["Allowed"].size(), 2u);
}

TEST(DlogEngine, PaperLabelProgramRecursion) {
  // The exact program from §1 of the paper.
  auto program = MustParse(R"(
    input relation GivenLabel(n1: bigint, label: string)
    input relation Edge(n1: bigint, n2: bigint)
    output relation Label(n: bigint, label: string)
    Label(n1, label) :- GivenLabel(n1, label).
    Label(n2, label) :- Label(n1, label), Edge(n1, n2).
  )");
  Engine engine(program);
  ASSERT_TRUE(engine.Insert("GivenLabel", R({I(0), S("red")})).ok());
  ASSERT_TRUE(engine.Insert("Edge", R({I(0), I(1)})).ok());
  ASSERT_TRUE(engine.Insert("Edge", R({I(1), I(2)})).ok());
  auto delta = engine.Commit();
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_EQ(engine.Size("Label"), 3u);
  EXPECT_TRUE(engine.Contains("Label", R({I(2), S("red")})));

  // Incremental edge insertion extends the reachable set.
  ASSERT_TRUE(engine.Insert("Edge", R({I(2), I(3)})).ok());
  delta = engine.Commit();
  ASSERT_TRUE(delta.ok());
  ASSERT_EQ(delta->outputs["Label"].size(), 1u);
  EXPECT_EQ(delta->outputs["Label"][0].first, R({I(3), S("red")}));

  // Deleting the middle edge retracts the tail of the chain (DRed).
  ASSERT_TRUE(engine.Delete("Edge", R({I(1), I(2)})).ok());
  delta = engine.Commit();
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_EQ(engine.Size("Label"), 2u);
  EXPECT_FALSE(engine.Contains("Label", R({I(2), S("red")})));
  EXPECT_FALSE(engine.Contains("Label", R({I(3), S("red")})));
}

TEST(DlogEngine, RecursionWithCycleDeletion) {
  // A cycle keeps nodes alive only while externally supported (DRed must
  // not rederive a label through the cycle itself).
  auto program = MustParse(R"(
    input relation GivenLabel(n1: bigint, label: string)
    input relation Edge(n1: bigint, n2: bigint)
    output relation Label(n: bigint, label: string)
    Label(n1, label) :- GivenLabel(n1, label).
    Label(n2, label) :- Label(n1, label), Edge(n1, n2).
  )");
  Engine engine(program);
  ASSERT_TRUE(engine.Insert("GivenLabel", R({I(0), S("x")})).ok());
  ASSERT_TRUE(engine.Insert("Edge", R({I(0), I(1)})).ok());
  ASSERT_TRUE(engine.Insert("Edge", R({I(1), I(2)})).ok());
  ASSERT_TRUE(engine.Insert("Edge", R({I(2), I(1)})).ok());  // cycle 1<->2
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_EQ(engine.Size("Label"), 3u);

  // Cut the bridge 0->1: the cycle must not keep itself alive.
  ASSERT_TRUE(engine.Delete("Edge", R({I(0), I(1)})).ok());
  auto delta = engine.Commit();
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_EQ(engine.Size("Label"), 1u);
  EXPECT_TRUE(engine.Contains("Label", R({I(0), S("x")})));
}

TEST(DlogEngine, AggregationCountIncremental) {
  auto program = MustParse(R"(
    input relation Mac(port: bigint, mac: bigint)
    output relation MacCount(port: bigint, n: bigint)
    MacCount(port, n) :- Mac(port, mac), var n = count(mac) group_by (port).
  )");
  Engine engine(program);
  ASSERT_TRUE(engine.Insert("Mac", R({I(1), I(100)})).ok());
  ASSERT_TRUE(engine.Insert("Mac", R({I(1), I(101)})).ok());
  ASSERT_TRUE(engine.Insert("Mac", R({I(2), I(200)})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_TRUE(engine.Contains("MacCount", R({I(1), I(2)})));
  EXPECT_TRUE(engine.Contains("MacCount", R({I(2), I(1)})));

  // Adding to port 1 replaces (1,2) with (1,3).
  ASSERT_TRUE(engine.Insert("Mac", R({I(1), I(102)})).ok());
  auto delta = engine.Commit();
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  ASSERT_EQ(delta->outputs["MacCount"].size(), 2u);
  EXPECT_TRUE(engine.Contains("MacCount", R({I(1), I(3)})));
  EXPECT_FALSE(engine.Contains("MacCount", R({I(1), I(2)})));

  // Deleting the last mac of port 2 removes the group entirely.
  ASSERT_TRUE(engine.Delete("Mac", R({I(2), I(200)})).ok());
  delta = engine.Commit();
  ASSERT_TRUE(delta.ok());
  EXPECT_FALSE(engine.Contains("MacCount", R({I(2), I(1)})));
  EXPECT_EQ(engine.Size("MacCount"), 1u);
}

TEST(DlogEngine, AggregationSumMinMax) {
  auto program = MustParse(R"(
    input relation Load(server: string, load: bigint)
    output relation TotalLoad(server: string, total: bigint)
    output relation MaxLoad(server: string, m: bigint)
    TotalLoad(s, t) :- Load(s, l), var t = sum(l) group_by (s).
    MaxLoad(s, m) :- Load(s, l), var m = max(l) group_by (s).
  )");
  Engine engine(program);
  ASSERT_TRUE(engine.Insert("Load", R({S("a"), I(10)})).ok());
  ASSERT_TRUE(engine.Insert("Load", R({S("a"), I(32)})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_TRUE(engine.Contains("TotalLoad", R({S("a"), I(42)})));
  EXPECT_TRUE(engine.Contains("MaxLoad", R({S("a"), I(32)})));

  ASSERT_TRUE(engine.Delete("Load", R({S("a"), I(32)})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_TRUE(engine.Contains("TotalLoad", R({S("a"), I(10)})));
  EXPECT_TRUE(engine.Contains("MaxLoad", R({S("a"), I(10)})));
}

TEST(DlogEngine, FactsAndInitialDelta) {
  auto program = MustParse(R"(
    input relation X(x: bigint)
    output relation O(x: bigint)
    O(42).
    O(x) :- X(x).
  )");
  Engine engine(program);
  TxnDelta initial = engine.TakeInitialDelta();
  ASSERT_EQ(initial.outputs["O"].size(), 1u);
  EXPECT_EQ(initial.outputs["O"][0].first, R({I(42)}));
  EXPECT_TRUE(engine.Contains("O", R({I(42)})));
}

TEST(DlogEngine, NegationOnlyRuleAtInit) {
  // H holds while R is empty (implicit-TRUE delta expansion at init).
  auto program = MustParse(R"(
    input relation Q(x: bigint)
    output relation H(x: bigint)
    H(1) :- not Q(1).
  )");
  Engine engine(program);
  EXPECT_TRUE(engine.Contains("H", R({I(1)})));

  ASSERT_TRUE(engine.Insert("Q", R({I(1)})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_FALSE(engine.Contains("H", R({I(1)})));

  ASSERT_TRUE(engine.Delete("Q", R({I(1)})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_TRUE(engine.Contains("H", R({I(1)})));
}

TEST(DlogEngine, BitTypesAndStringOps) {
  auto program = MustParse(R"(
    input relation Port(id: bit<32>, vlan: bit<12>)
    output relation Tag(id: bit<32>, tag: bit<12>, name: string)
    Tag(p, v + 1, "vlan-" ++ to_string(v)) :- Port(p, v).
  )");
  Engine engine(program);
  ASSERT_TRUE(engine.Insert("Port", R({B(7), B(4094)})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  // 4094 + 1 = 4095 fits bit<12>.
  EXPECT_TRUE(engine.Contains("Tag", R({B(7), B(4095), S("vlan-4094")})));

  // Row that does not fit the declared width is rejected at the API edge.
  EXPECT_FALSE(engine.Insert("Port", R({B(7), B(5000)})).ok());
}

TEST(DlogEngine, TransactionCancellation) {
  auto program = MustParse(R"(
    input relation X(x: bigint)
    output relation O(x: bigint)
    O(x) :- X(x).
  )");
  Engine engine(program);
  // Insert+delete within one transaction cancels; no output delta.
  ASSERT_TRUE(engine.Insert("X", R({I(1)})).ok());
  ASSERT_TRUE(engine.Delete("X", R({I(1)})).ok());
  auto delta = engine.Commit();
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->empty());
  EXPECT_EQ(engine.Size("O"), 0u);
}

// ---------------------------------------------------------------------------
// The golden property: incremental == from-scratch, under random updates.
// ---------------------------------------------------------------------------

/// Recomputes `program` from scratch over `rows` and compares every output
/// relation against `incremental`.
void ExpectEquivalentToScratch(
    const std::shared_ptr<const Program>& program, Engine& incremental,
    const std::map<std::string, std::set<std::vector<int64_t>>>& inputs) {
  Engine scratch(program);
  for (const auto& [relation, rows] : inputs) {
    for (const auto& ints : rows) {
      Row row;
      for (int64_t v : ints) row.push_back(Value::Int(v));
      ASSERT_TRUE(scratch.Insert(relation, row).ok());
    }
  }
  ASSERT_TRUE(scratch.Commit().ok());
  for (const RelationDecl& decl : program->relations()) {
    if (decl.role == RelationRole::kInput) continue;
    auto a = incremental.Dump(decl.name);
    auto b = scratch.Dump(decl.name);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << "relation " << decl.name << " diverged";
  }
}

struct RandomizedCase {
  const char* name;
  const char* source;
  // Input relation name -> arity and value ranges.
  std::vector<std::pair<std::string, int>> inputs;
  int64_t domain;  // values drawn from [0, domain)
};

class DlogRandomized : public ::testing::TestWithParam<RandomizedCase> {};

TEST_P(DlogRandomized, IncrementalMatchesScratch) {
  const RandomizedCase& tc = GetParam();
  auto program = MustParse(tc.source);
  Engine engine(program);
  std::map<std::string, std::set<std::vector<int64_t>>> state;
  std::mt19937_64 rng(0xC0FFEE ^ std::hash<std::string>{}(tc.name));

  for (int step = 0; step < 60; ++step) {
    // A transaction of 1..5 random ops.
    int ops = 1 + static_cast<int>(rng() % 5);
    for (int k = 0; k < ops; ++k) {
      const auto& [relation, arity] =
          tc.inputs[rng() % tc.inputs.size()];
      std::vector<int64_t> ints;
      for (int i = 0; i < arity; ++i) {
        ints.push_back(static_cast<int64_t>(rng() % static_cast<uint64_t>(
            tc.domain)));
      }
      Row row;
      for (int64_t v : ints) row.push_back(Value::Int(v));
      bool del = !state[relation].empty() && (rng() % 3 == 0);
      if (del) {
        // Delete a random existing row instead.
        auto it = state[relation].begin();
        std::advance(it, static_cast<long>(rng() % state[relation].size()));
        ints = *it;
        row.clear();
        for (int64_t v : ints) row.push_back(Value::Int(v));
        ASSERT_TRUE(engine.Delete(relation, row).ok());
        state[relation].erase(it);
      } else {
        ASSERT_TRUE(engine.Insert(relation, row).ok());
        state[relation].insert(ints);
      }
    }
    auto delta = engine.Commit();
    ASSERT_TRUE(delta.ok()) << delta.status().ToString();
    if (step % 10 == 9) {
      ExpectEquivalentToScratch(program, engine, state);
    }
  }
  ExpectEquivalentToScratch(program, engine, state);
}

INSTANTIATE_TEST_SUITE_P(
    Programs, DlogRandomized,
    ::testing::Values(
        RandomizedCase{
            "join",
            R"(input relation E(a: bigint, b: bigint)
               input relation F(a: bigint, b: bigint)
               output relation J(a: bigint, c: bigint)
               J(a, c) :- E(a, b), F(b, c).)",
            {{"E", 2}, {"F", 2}},
            6},
        RandomizedCase{
            "negation",
            R"(input relation A(x: bigint, y: bigint)
               input relation B(x: bigint)
               output relation O(x: bigint, y: bigint)
               O(x, y) :- A(x, y), not B(y).)",
            {{"A", 2}, {"B", 1}},
            5},
        RandomizedCase{
            "negation_partial",
            R"(input relation A(x: bigint, y: bigint)
               input relation B(x: bigint, y: bigint)
               output relation O(x: bigint, y: bigint)
               O(x, y) :- A(x, y), not B(x, _).)",
            {{"A", 2}, {"B", 2}},
            4},
        RandomizedCase{
            "reachability",
            R"(input relation Edge(a: bigint, b: bigint)
               input relation Src(a: bigint)
               output relation Reach(a: bigint)
               Reach(a) :- Src(a).
               Reach(b) :- Reach(a), Edge(a, b).)",
            {{"Edge", 2}, {"Src", 1}},
            8},
        RandomizedCase{
            "aggregation",
            R"(input relation M(g: bigint, v: bigint)
               output relation C(g: bigint, n: bigint)
               output relation Sums(g: bigint, s: bigint)
               C(g, n) :- M(g, v), var n = count(v) group_by (g).
               Sums(g, s) :- M(g, v), var s = sum(v) group_by (g).)",
            {{"M", 2}},
            5},
        RandomizedCase{
            "chained",
            R"(input relation E(a: bigint, b: bigint)
               input relation Block(x: bigint)
               relation Mid(a: bigint, b: bigint)
               output relation Out(a: bigint, b: bigint)
               Mid(a, b) :- E(a, b), not Block(a).
               Out(a, c) :- Mid(a, b), Mid(b, c).)",
            {{"E", 2}, {"Block", 1}},
            5},
        RandomizedCase{
            "hop_counted_recursion",
            R"(input relation Edge(a: bigint, b: bigint)
               input relation Src(a: bigint)
               output relation Dist(a: bigint, h: bigint)
               Dist(a, 0) :- Src(a).
               Dist(b, h + 1) :- Dist(a, h), Edge(a, b), h < 4.)",
            {{"Edge", 2}, {"Src", 1}},
            6},
        RandomizedCase{
            "mutual_recursion",
            R"(input relation Base(x: bigint)
               input relation Step(a: bigint, b: bigint)
               output relation Even(x: bigint)
               output relation Odd(x: bigint)
               Even(x) :- Base(x).
               Odd(b) :- Even(a), Step(a, b).
               Even(b) :- Odd(a), Step(a, b).)",
            {{"Base", 1}, {"Step", 2}},
            6}),
    [](const ::testing::TestParamInfo<RandomizedCase>& info) {
      return info.param.name;
    });

TEST(DlogCompile, RejectsUnstratifiable) {
  auto program = Program::Parse(R"(
    input relation A(x: bigint)
    output relation P(x: bigint)
    output relation Q(x: bigint)
    P(x) :- A(x), not Q(x).
    Q(x) :- A(x), not P(x).
  )");
  EXPECT_FALSE(program.ok());
}

TEST(DlogCompile, RejectsUnboundNegatedVariable) {
  auto program = Program::Parse(R"(
    input relation A(x: bigint)
    output relation O(x: bigint)
    O(x) :- A(x), not A(y).
  )");
  EXPECT_FALSE(program.ok());
}

TEST(DlogCompile, RejectsTypeMismatch) {
  auto program = Program::Parse(R"(
    input relation A(x: bigint)
    output relation O(x: string)
    O(x) :- A(x).
  )");
  EXPECT_FALSE(program.ok());
}

TEST(DlogCompile, RejectsRuleForInputRelation) {
  auto program = Program::Parse(R"(
    input relation A(x: bigint)
    input relation B(x: bigint)
    A(x) :- B(x).
  )");
  EXPECT_FALSE(program.ok());
}

}  // namespace
}  // namespace nerpa::dlog
