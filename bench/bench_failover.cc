// Hot-standby failover RTO: how long the data plane goes unmanaged when
// the leader controller dies.
//
// A dual-controller snvs deployment (snvs::SnvsHaPair) is loaded with
// ports/ACLs/learned MACs and checkpoint-synced to the standby; then the
// leader's lease is allowed to expire and the recovery-time objective is
// measured wall-clock from lease expiry to
//
//   * promoted:     the standby holds the lease, has arbitrated the
//                   fencing epoch on every switch, and finished its
//                   minimal-diff resync (zero writes when the follower
//                   was hot), and
//   * first write:  the first post-failover management-plane change is
//                   installed in the data plane by the new leader.
//
// A zombie phase then verifies the fencing invariant the RTO number rests
// on: the deposed leader keeps issuing writes and every one of them is
// rejected by the switches — zero stale-epoch writes reach the data plane.
//
// Emits BENCH_failover.json.  With --baseline=FILE the p95 total RTO is
// gated against the checked-in ceiling (metrics.rto_p95_ceiling_us) and
// the run exits nonzero above it or on any fencing violation.
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "net/packet.h"
#include "snvs/ha_pair.h"

namespace nerpa::bench {
namespace {

net::Packet Frame(net::Mac dst, net::Mac src) {
  return net::MakeEthernetFrame(dst, src, 0x0800, {0xDE, 0xAD, 0xBE, 0xEF});
}

/// Writes one replica's controller actually applied (counted only after a
/// device accepted them — a fenced rejection never increments these).
uint64_t TotalWriteCount(snvs::SnvsHaPair& pair, size_t replica) {
  Controller::Stats stats = pair.controller(replica).stats();
  return stats.entries_inserted + stats.entries_deleted +
         stats.multicast_updates;
}

uint64_t TotalStaleWrites(snvs::SnvsHaPair& pair) {
  uint64_t total = 0;
  for (size_t d = 0; d < pair.device_count(); ++d) {
    total += pair.device(d).stale_writes();
  }
  return total;
}

int Run(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--baseline=", 11) == 0) {
      baseline_path = argv[i] + 11;
    }
  }

  const int kPorts = args.Scaled(48);
  const int kAcls = args.Scaled(16);
  const int kFailovers = args.Scaled(20);

  Banner("E-HA2", "hot-standby failover: lease expiry -> recovered writes");

  // The lease clock is manual so expiry is exact and deterministic; the
  // RTO itself is measured on the real monotonic clock.
  int64_t now = 1;
  constexpr int64_t kTtl = 1'000'000;  // 1 ms of "virtual" validity

  snvs::SnvsHaOptions options;
  options.devices = 2;
  options.lease_ttl_nanos = kTtl;
  options.clock = [&now] { return now; };
  auto built = snvs::BuildSnvsHaPair(options);
  if (!built.ok()) {
    std::fprintf(stderr, "bench: %s\n", built.status().ToString().c_str());
    return 1;
  }
  snvs::SnvsHaPair& pair = **built;

  if (pair.Tick() != 0) {
    std::fprintf(stderr, "bench: replica 0 did not win the first election\n");
    return 1;
  }

  // Load-bearing state: access + trunk ports, ACLs, and learned MACs (the
  // digest-derived soft state the checkpoint handoff preserves).
  for (int p = 1; p <= kPorts; ++p) {
    Status added =
        p % 4 == 0
            ? pair.AddPort(StrFormat("p%d", p), p, "trunk", 0, {10, 20})
                  .status()
            : pair.AddPort(StrFormat("p%d", p), p, "access",
                           10 + 10 * (p % 2))
                  .status();
    if (!added.ok()) {
      std::fprintf(stderr, "bench: %s\n", added.ToString().c_str());
      return 1;
    }
  }
  for (int a = 0; a < kAcls; ++a) {
    (void)pair.AddAclRule(0x4000 + a, 10 + 10 * (a % 2), a % 3 != 0);
  }
  for (int h = 0; h < 8; ++h) {
    net::Mac src(0, 0, 0, 0, 0x10, static_cast<uint8_t>(h + 1));
    net::Mac dst(0, 0, 0, 0, 0x10, static_cast<uint8_t>(((h + 1) % 8) + 1));
    (void)pair.InjectPacket(0, static_cast<uint64_t>(h % kPorts) + 1,
                            Frame(dst, src));
  }

  std::vector<double> promote_s, total_s;
  int next_port = kPorts + 1;
  for (int i = 0; i < kFailovers; ++i) {
    // Warm the standby with the leader's latest engine checkpoint, then
    // let the lease run out (the leader "dies": it simply stops renewing
    // before the jump, which is exactly what a crash looks like from the
    // lease's point of view).
    Status synced = pair.Checkpoint();
    if (synced.ok()) synced = pair.SyncStandby();
    if (!synced.ok()) {
      std::fprintf(stderr, "bench: %s\n", synced.ToString().c_str());
      return 1;
    }
    int old_leader = pair.leader();
    now += 2 * kTtl;  // lease expiry — the outage begins here

    Stopwatch watch;
    int new_leader = pair.Tick();  // demote old, arbitrate + resync new
    promote_s.push_back(watch.ElapsedSeconds());
    if (new_leader < 0 || new_leader == old_leader) {
      std::fprintf(stderr, "bench: failover %d did not change leadership\n",
                   i);
      return 1;
    }
    // First post-failover management change, through to the data plane.
    Status wrote =
        pair.AddPort(StrFormat("f%d", next_port), next_port, "access", 10)
            .status();
    ++next_port;
    total_s.push_back(watch.ElapsedSeconds());
    if (!wrote.ok()) {
      std::fprintf(stderr, "bench: %s\n", wrote.ToString().c_str());
      return 1;
    }
    now += kTtl / 2;
    pair.Tick();  // settle: new leader renews
  }

  // --- Zombie phase: the deposed leader keeps writing; fencing must
  // reject every attempt before it touches a table.
  int zombie = pair.leader();
  int standby = 1 - zombie;
  // Let the lease expire and promote the standby while the old leader
  // never learns it lost the lease (its coordinator is not ticked — the
  // GC-pause / partitioned-leader picture).
  now += 2 * kTtl;
  pair.coordinator(static_cast<size_t>(standby)).Tick();
  if (pair.leader() != standby) {
    std::fprintf(stderr, "bench: standby failed to promote for the zombie "
                         "phase\n");
    return 1;
  }
  uint64_t stale_before = TotalStaleWrites(pair);
  uint64_t zombie_applied_before = TotalWriteCount(pair, static_cast<size_t>(zombie));
  // The next management commit fans out to both controllers; the zombie
  // (still role=leader, stale epoch) attempts device writes and must be
  // fenced out by every switch.
  Status poked =
      pair.AddPort(StrFormat("z%d", next_port), next_port, "access", 20)
          .status();
  ++next_port;
  if (!poked.ok()) {
    std::fprintf(stderr, "bench: %s\n", poked.ToString().c_str());
    return 1;
  }
  uint64_t stale_rejections = TotalStaleWrites(pair) - stale_before;
  uint64_t zombie_applied =
      TotalWriteCount(pair, static_cast<size_t>(zombie)) -
      zombie_applied_before;
  uint64_t zombie_fenced =
      pair.controller(static_cast<size_t>(zombie)).stats()
          .fenced_writes_rejected;
  bool zombie_demoted =
      pair.controller(static_cast<size_t>(zombie)).role() == Role::kFollower;

  double promote_p50 = Percentile(promote_s, 0.50);
  double promote_p95 = Percentile(promote_s, 0.95);
  double total_p50 = Percentile(total_s, 0.50);
  double total_p95 = Percentile(total_s, 0.95);

  Table table({"metric", "p50", "p95"});
  table.AddRow({"promotion (fence+resync)", Us(promote_p50), Us(promote_p95)});
  table.AddRow({"total RTO (to first write)", Us(total_p50), Us(total_p95)});
  table.Print();
  std::printf(
      "\nzombie phase: %llu fenced rejections at the switches, %llu writes "
      "applied by the deposed leader (must be 0), self-demoted: %s\n",
      static_cast<unsigned long long>(stale_rejections),
      static_cast<unsigned long long>(zombie_applied),
      zombie_demoted ? "yes" : "no");

  JsonEmitter emitter("failover", args);
  emitter.Param("ports", Json(static_cast<int64_t>(kPorts)));
  emitter.Param("acls", Json(static_cast<int64_t>(kAcls)));
  emitter.Param("failovers", Json(static_cast<int64_t>(kFailovers)));
  emitter.Param("devices", Json(static_cast<int64_t>(2)));
  emitter.Metric("promote_p50_us", Json(promote_p50 * 1e6));
  emitter.Metric("promote_p95_us", Json(promote_p95 * 1e6));
  emitter.Metric("rto_p50_us", Json(total_p50 * 1e6));
  emitter.Metric("rto_p95_us", Json(total_p95 * 1e6));
  emitter.Metric("stale_write_rejections",
                 Json(static_cast<int64_t>(stale_rejections)));
  emitter.Metric("stale_writes_applied",
                 Json(static_cast<int64_t>(zombie_applied)));
  emitter.Metric("zombie_fenced_writes",
                 Json(static_cast<int64_t>(zombie_fenced)));
  emitter.Write();

  // --- Correctness gates (always on: an RTO number over a broken fence
  // is worthless).
  if (stale_rejections == 0 || zombie_applied != 0 || !zombie_demoted) {
    std::fprintf(stderr, "bench: FENCING VIOLATION (rejections=%llu, "
                         "applied=%llu, demoted=%d)\n",
                 static_cast<unsigned long long>(stale_rejections),
                 static_cast<unsigned long long>(zombie_applied),
                 zombie_demoted ? 1 : 0);
    return 1;
  }

  // --- CI gate: p95 total RTO against the checked-in ceiling.
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "bench: cannot open baseline %s\n",
                   baseline_path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto parsed = Json::Parse(text.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "bench: baseline parse: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    const Json* metrics = parsed.value().Find("metrics");
    const Json* ceiling =
        metrics == nullptr ? nullptr : metrics->Find("rto_p95_ceiling_us");
    if (ceiling == nullptr || !ceiling->is_number()) {
      std::fprintf(stderr, "bench: baseline lacks rto_p95_ceiling_us\n");
      return 1;
    }
    std::printf("baseline gate: %.1f us p95 RTO vs %.1f us ceiling\n",
                total_p95 * 1e6, ceiling->as_double());
    if (total_p95 * 1e6 > ceiling->as_double()) {
      std::fprintf(stderr, "bench: REGRESSION: p95 RTO %.1f us > %.1f us\n",
                   total_p95 * 1e6, ceiling->as_double());
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace nerpa::bench

int main(int argc, char** argv) { return nerpa::bench::Run(argc, argv); }
