// The example stacks as data: every demo in this directory (and the snvs
// reference program) boils down to the same four ingredients — an OVSDB
// schema, a P4 pipeline, hand-written control-plane rules, and binding
// options.  This library packages each example's ingredients so tools can
// consume them too: `nerpa_check --builtin <name>` analyzes exactly the
// stack the corresponding example runs, and the golden tests lint every
// stack we ship.
#ifndef NERPA_EXAMPLES_STACKS_H_
#define NERPA_EXAMPLES_STACKS_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "nerpa/bindings.h"
#include "ovsdb/schema.h"
#include "p4/ir.h"

namespace nerpa::examples {

struct StackDef {
  std::string name;
  /// Management plane; nullopt for pure control-plane programs.
  std::optional<ovsdb::DatabaseSchema> schema;
  /// Data plane (validated); null for pure control-plane programs.
  std::shared_ptr<const p4::P4Program> p4;
  /// Textual P4 source when the pipeline was parsed from text ("" when the
  /// pipeline is built directly as IR — diagnostics then carry no P4 spans).
  std::string p4_source;
  /// Hand-written rules (generated declarations NOT included).
  std::string rules;
  BindingOptions options;
  /// Output relations consumed by controller plumbing, not a P4 table.
  std::vector<std::string> multicast_relations;
};

/// The packaged stacks: "snvs", "ip_fabric", "multi_device", "reachability".
Result<StackDef> GetStack(std::string_view name);

/// All packaged stack names, in a stable order.
std::vector<std::string> StackNames();

// Ingredients of the ip_fabric and multi_device examples, shared with their
// demo binaries so example and analysis never drift apart.
ovsdb::DatabaseSchema FabricSchema();
std::string FabricP4Source();
std::string FabricRules();
ovsdb::DatabaseSchema MultiDeviceSchema();
std::shared_ptr<const p4::P4Program> MultiDevicePipeline();
std::string MultiDeviceRules();
std::string ReachabilityRules();

}  // namespace nerpa::examples

#endif  // NERPA_EXAMPLES_STACKS_H_
