#include "dlog/value.h"

#include "common/strings.h"

namespace nerpa::dlog {

size_t Value::Hash() const {
  size_t seed = rep_.index() * 0x9e3779b97f4a7c15ULL;
  switch (rep_.index()) {
    case 0: HashCombine(seed, std::get<0>(rep_)); break;
    case 1: HashCombine(seed, std::get<1>(rep_)); break;
    case 2: HashCombine(seed, std::get<2>(rep_)); break;
    case 3: HashCombine(seed, std::get<3>(rep_)); break;
    case 4:
      for (const Value& v : *std::get<4>(rep_)) HashCombine(seed, v.Hash());
      break;
  }
  return seed;
}

bool Value::operator==(const Value& o) const {
  if (rep_.index() != o.rep_.index()) return false;
  switch (rep_.index()) {
    case 0: return std::get<0>(rep_) == std::get<0>(o.rep_);
    case 1: return std::get<1>(rep_) == std::get<1>(o.rep_);
    case 2: return std::get<2>(rep_) == std::get<2>(o.rep_);
    case 3: return std::get<3>(rep_) == std::get<3>(o.rep_);
    default: {
      const ValueVec& a = *std::get<4>(rep_);
      const ValueVec& b = *std::get<4>(o.rep_);
      return a == b;
    }
  }
}

bool Value::operator<(const Value& o) const {
  if (rep_.index() != o.rep_.index()) return rep_.index() < o.rep_.index();
  switch (rep_.index()) {
    case 0: return std::get<0>(rep_) < std::get<0>(o.rep_);
    case 1: return std::get<1>(rep_) < std::get<1>(o.rep_);
    case 2: return std::get<2>(rep_) < std::get<2>(o.rep_);
    case 3: return std::get<3>(rep_) < std::get<3>(o.rep_);
    default: {
      const ValueVec& a = *std::get<4>(rep_);
      const ValueVec& b = *std::get<4>(o.rep_);
      return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                          b.end());
    }
  }
}

std::string Value::ToString() const {
  switch (rep_.index()) {
    case 0: return as_bool() ? "true" : "false";
    case 1: return std::to_string(as_int());
    case 2: return std::to_string(as_bit());
    case 3: return QuoteString(as_string());
    default: {
      std::string out = "(";
      const ValueVec& elems = as_tuple();
      for (size_t i = 0; i < elems.size(); ++i) {
        if (i > 0) out += ", ";
        out += elems[i].ToString();
      }
      return out + ")";
    }
  }
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  return out + ")";
}

}  // namespace nerpa::dlog
