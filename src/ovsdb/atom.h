// OVSDB atomic values (RFC 7047 §5.1): integer, real, boolean, string, uuid.
#ifndef NERPA_OVSDB_ATOM_H_
#define NERPA_OVSDB_ATOM_H_

#include <compare>
#include <cstdint>
#include <string>
#include <variant>

#include "common/json.h"
#include "common/status.h"
#include "ovsdb/uuid.h"

namespace nerpa::ovsdb {

enum class AtomicType { kInteger, kReal, kBoolean, kString, kUuid };

/// Name as used in schemas ("integer", "real", ...).
const char* AtomicTypeName(AtomicType type);
Result<AtomicType> AtomicTypeFromName(std::string_view name);

/// A single OVSDB atomic value.  Atoms are totally ordered (first by type,
/// then by value) so Datum can keep sets/maps canonically sorted.
class Atom {
 public:
  Atom() : rep_(int64_t{0}) {}
  explicit Atom(int64_t v) : rep_(v) {}
  explicit Atom(double v) : rep_(v) {}
  explicit Atom(bool v) : rep_(v) {}
  explicit Atom(std::string v) : rep_(std::move(v)) {}
  explicit Atom(const char* v) : rep_(std::string(v)) {}
  explicit Atom(Uuid v) : rep_(v) {}

  AtomicType type() const {
    switch (rep_.index()) {
      case 0: return AtomicType::kInteger;
      case 1: return AtomicType::kReal;
      case 2: return AtomicType::kBoolean;
      case 3: return AtomicType::kString;
      default: return AtomicType::kUuid;
    }
  }

  int64_t integer() const { return std::get<int64_t>(rep_); }
  double real() const { return std::get<double>(rep_); }
  bool boolean() const { return std::get<bool>(rep_); }
  const std::string& string() const { return std::get<std::string>(rep_); }
  const Uuid& uuid() const { return std::get<Uuid>(rep_); }

  bool operator==(const Atom& o) const { return rep_ == o.rep_; }
  bool operator<(const Atom& o) const;
  bool operator!=(const Atom& o) const { return !(*this == o); }

  /// JSON wire form: scalars as-is, uuids as ["uuid","<text>"].
  Json ToJson() const;

  /// Parses the wire form, coercing to `expected` (so 1 is a valid real).
  /// ["named-uuid", name] is resolved through `named_uuids` when non-null.
  static Result<Atom> FromJson(
      const Json& json, AtomicType expected,
      const std::map<std::string, Uuid>* named_uuids = nullptr);

  /// Debug form ("\"abc\"", "42", "<uuid>").
  std::string ToString() const;

 private:
  std::variant<int64_t, double, bool, std::string, Uuid> rep_;
};

}  // namespace nerpa::ovsdb

#endif  // NERPA_OVSDB_ATOM_H_
