// The management-plane database: an in-memory OVSDB (RFC 7047) lookalike.
//
// Key properties Nerpa depends on, all implemented here:
//   * Transactional mutation: a "transact" request is a list of operations
//     applied atomically; any failure rolls the whole batch back.
//   * Monitors: subscribers receive the per-transaction delta (old/new row
//     pairs) after each commit — this stream drives the incremental control
//     plane, giving the "changes grouped into transactions" property of §4.1.
//   * Schema enforcement: column types, enum/range constraints, unique
//     indexes, strong/weak referential integrity, and garbage collection of
//     unreferenced rows in non-root tables.
#ifndef NERPA_OVSDB_DATABASE_H_
#define NERPA_OVSDB_DATABASE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "ovsdb/datum.h"
#include "ovsdb/schema.h"

namespace nerpa::ovsdb {

/// A row: its UUID plus column values.  Missing columns read as the column
/// type's default.
struct Row {
  Uuid uuid;
  std::map<std::string, Datum> columns;

  const Datum* Find(std::string_view column) const {
    auto it = columns.find(std::string(column));
    return it == columns.end() ? nullptr : &it->second;
  }

  bool operator==(const Row& o) const {
    return uuid == o.uuid && columns == o.columns;
  }
};

/// One row's change within a transaction delta.
///   insert: old absent, new present.   delete: old present, new absent.
///   modify: both present (and differing).
struct RowUpdate {
  std::optional<Row> old_row;
  std::optional<Row> new_row;

  bool is_insert() const { return !old_row && new_row; }
  bool is_delete() const { return old_row && !new_row; }
  bool is_modify() const { return old_row && new_row; }
};

using TableUpdate = std::map<Uuid, RowUpdate>;
/// table name -> row updates; the unit delivered to each monitor per commit.
using TableUpdates = std::map<std::string, TableUpdate>;

/// A typed `where` clause: [column, function, value].
struct Clause {
  std::string column;   // "_uuid" selects by row id
  std::string function; // "==", "!=", "<", "<=", ">", ">=", "includes", "excludes"
  Datum value;
};

// --- Leader lease (controller replication) ---
//
// Hot-standby controller pairs elect a leader through a singleton
// `Leader_Lease` row (epoch, holder, expiry_nanos) updated with CAS-style
// wait+update transactions; the lease epoch doubles as a fencing token.  A
// transaction may carry an extra {"op":"assert_fence","epoch":N} operation:
// it fails (rolling the whole transaction back) when N is older than the
// epoch recorded in the lease row, so a paused-then-revived old leader can
// never push stale writes into a database that has since elected a
// successor.

/// Name of the lease table and its columns.
inline constexpr char kLeaderLeaseTable[] = "Leader_Lease";
inline constexpr char kLeaseEpochColumn[] = "epoch";
inline constexpr char kLeaseHolderColumn[] = "holder";
inline constexpr char kLeaseExpiryColumn[] = "expiry_nanos";

/// The lease table schema: max_rows=1 makes the singleton a DB invariant.
TableSchema LeaderLeaseTableSchema();

/// Returns `schema` extended with the Leader_Lease table (idempotent).
DatabaseSchema WithLeaderLease(DatabaseSchema schema);

class Database {
 public:
  explicit Database(DatabaseSchema schema);

  const DatabaseSchema& schema() const { return schema_; }

  /// Executes a JSON "transact" request: an array of operation objects
  /// (insert/select/update/mutate/delete/wait/comment/abort/assert_fence).
  /// Returns the per-operation result array; if any operation fails the
  /// transaction is rolled back and the Status is the error.
  Result<Json> Transact(const Json& operations);

  /// Parses `text` as JSON and calls Transact.
  Result<Json> TransactText(std::string_view text);

  // --- Read API (between transactions) ---

  /// Row by UUID; nullptr if missing.  Pointer valid until next Transact.
  const Row* GetRow(std::string_view table, const Uuid& uuid) const;
  /// All rows of `table` (unspecified order).
  std::vector<const Row*> GetRows(std::string_view table) const;
  size_t RowCount(std::string_view table) const;
  /// Rows matching all `where` clauses.
  Result<std::vector<const Row*>> SelectRows(
      std::string_view table, const std::vector<Clause>& where) const;

  // --- Monitors ---

  using MonitorCallback = std::function<void(const TableUpdates&)>;

  /// Per-table column selection for a monitor: table name -> monitored
  /// columns.  An empty column list monitors every column of that table; an
  /// empty map monitors every table.  Columns outside the selection are
  /// invisible to the monitor — their rows arrive projected, and a commit
  /// touching only unselected columns does not fire the callback at all
  /// (the OVSDB-improvements "on-demand fetch" split: monitor the cheap
  /// columns, Fetch the expensive ones when actually needed).
  using MonitorColumnSpec = std::map<std::string, std::vector<std::string>>;

  /// Registers a monitor on `tables` (empty = all tables).  The current
  /// contents are delivered immediately as an initial batch of inserts;
  /// thereafter the callback fires synchronously after every commit that
  /// touches a monitored table.  Returns a handle for RemoveMonitor.
  uint64_t AddMonitor(std::vector<std::string> tables, MonitorCallback cb);
  /// Column-scoped monitor registration (empty column list = all columns).
  /// Unknown tables/columns are ignored here; the server validates specs
  /// before registering.
  uint64_t AddMonitorColumns(MonitorColumnSpec spec, MonitorCallback cb);
  void RemoveMonitor(uint64_t id);

  /// On-demand read of specific columns: rows of `table` matching the JSON
  /// `where` clause array, projected onto `columns` (empty = all + _uuid).
  /// This is how clients fetch columns they deliberately do not monitor.
  Result<Json> FetchRows(std::string_view table, const Json& where_json,
                         const std::vector<std::string>& columns) const;

  /// Selects (reads and transaction `where` matching) answered through a
  /// unique-index probe or a direct _uuid lookup instead of a full table
  /// scan (monotone; for tests and benches).
  uint64_t indexed_selects() const { return indexed_selects_; }

  /// Number of committed transactions (monotone; useful for tests).
  uint64_t commit_count() const { return commit_count_; }

  /// Transactions rejected because their assert_fence epoch was older than
  /// the current Leader_Lease epoch (monotone; split-brain observability).
  uint64_t fence_rejections() const { return fence_rejections_; }

  // --- Commit hooks (durability integration, src/ha) ---

  /// Called after every successful commit with the transaction's operations,
  /// rewritten so each insert pins its generated uuid (replaying the exact
  /// JSON reproduces row identities).  This is the write-ahead-log hook:
  /// ha::DurableStore appends each record to its WAL through it.
  using CommitHook = std::function<void(const Json& pinned_operations)>;

  uint64_t AddCommitHook(CommitHook hook);
  void RemoveCommitHook(uint64_t id);

  // --- Durability (append-only journal, like ovsdb-server's file) ---

  /// Starts appending every committed transaction's operations to `path`
  /// (one JSON array per line).  The file is created if missing; an
  /// existing journal is appended to, so call Restore() first when warm-
  /// starting.
  Status EnableJournal(const std::string& path);

  /// Builds a database by replaying a journal produced by EnableJournal.
  /// Commits that fail during replay (impossible for a journal written by
  /// this code) abort the restore.
  static Result<std::unique_ptr<Database>> RestoreFromJournal(
      DatabaseSchema schema, const std::string& path);

 private:
  struct TableData {
    std::unordered_map<Uuid, Row> rows;
    // One map per schema index: index-column datums -> row uuid.
    std::vector<std::map<std::vector<Datum>, Uuid>> index_maps;
  };

  struct Monitor {
    uint64_t id;
    MonitorColumnSpec spec;  // empty = all tables, all columns
    MonitorCallback callback;
  };

  /// Projects `updates` onto one monitor's table/column selection.  Rows
  /// shrink to the selected columns; modifies that only touch unselected
  /// columns vanish entirely.
  TableUpdates FilterForMonitor(const Monitor& monitor,
                                const TableUpdates& updates) const;

  class Txn;  // transaction executor (database.cc)

  TableData* FindTable(std::string_view name);
  const TableData* FindTable(std::string_view name) const;

  /// Answers an all-"==" `where` through a direct _uuid lookup or a
  /// (compound) unique-index probe.  Returns nullopt when no clause set
  /// covers an index — callers fall back to the full scan.  The returned
  /// candidates (0 or 1 rows) are already validated against every clause.
  std::optional<std::vector<Uuid>> ProbeIndexes(
      const TableSchema& schema, const TableData& data,
      const std::vector<Clause>& where) const;

  DatabaseSchema schema_;
  std::map<std::string, TableData> tables_;
  std::vector<Monitor> monitors_;
  std::vector<std::pair<uint64_t, CommitHook>> commit_hooks_;
  uint64_t next_monitor_id_ = 1;
  uint64_t next_hook_id_ = 1;
  uint64_t commit_count_ = 0;
  uint64_t fence_rejections_ = 0;
  mutable uint64_t indexed_selects_ = 0;
  std::string journal_path_;  // empty = durability off
};

/// Evaluates one clause against a row (exposed for tests).
Result<bool> EvalClause(const TableSchema& schema, const Row& row,
                        const Clause& clause);

/// Parses a wire-format row object ({column: datum-json}) into a Row.
/// Used by clients consuming monitor "update" notifications.
Result<Row> RowFromJson(const TableSchema& schema, const Uuid& uuid,
                        const Json& row_json);

/// Typed transaction builder: accumulates operations, then `Commit()`
/// produces and executes the JSON request.  This mirrors the client
/// libraries real OVSDB users code against.
class TxnBuilder {
 public:
  explicit TxnBuilder(Database* db) : db_(db) {}

  /// Adds an insert; returns the named-uuid name usable in later refs
  /// (Datum::String is NOT a ref — use RefByName()).
  std::string Insert(std::string_view table,
                     std::map<std::string, Datum> columns);
  void Update(std::string_view table, std::vector<Clause> where,
              std::map<std::string, Datum> columns);
  void Mutate(std::string_view table, std::vector<Clause> where,
              std::vector<std::tuple<std::string, std::string, Datum>> mutations);
  void Delete(std::string_view table, std::vector<Clause> where);

  /// Partial map-column updates (the OVSDB-improvements setkey/delkey
  /// idiom): ship only the touched key(s) instead of rewriting the whole
  /// map through "update".  SetKey inserts or overwrites one pair; DelKey
  /// removes one key (absent keys are a no-op).
  void MutateSetKey(std::string_view table, std::vector<Clause> where,
                    std::string_view column, Atom key, Atom value);
  void MutateDelKey(std::string_view table, std::vector<Clause> where,
                    std::string_view column, Atom key);

  /// Adds an assert_fence operation: the transaction commits only if `epoch`
  /// is at least the current Leader_Lease epoch (split-brain fencing).
  void AssertFence(int64_t epoch);

  /// A JSON value that references the row inserted earlier in this
  /// transaction under `name`.
  static Json RefByName(std::string_view name);

  /// Executes the accumulated operations atomically.  On success returns the
  /// UUIDs of inserted rows, in insert order.
  Result<std::vector<Uuid>> Commit();

 private:
  Database* db_;
  Json::Array ops_;
  int insert_count_ = 0;
};

}  // namespace nerpa::ovsdb

#endif  // NERPA_OVSDB_DATABASE_H_
