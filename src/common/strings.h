// Small string utilities shared by the parsers, schema printers, and benches.
#ifndef NERPA_COMMON_STRINGS_H_
#define NERPA_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace nerpa {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Quotes `s` as a C/JSON-style string literal, escaping specials.
std::string QuoteString(std::string_view s);

/// True if `s` is a valid identifier ([A-Za-z_][A-Za-z0-9_]*).
bool IsIdentifier(std::string_view s);

/// Counts non-empty, non-comment ("//", "#", "--") lines — the LOC metric
/// used by the paper's §4.3 table reproduction.
int CountCodeLines(std::string_view text);

}  // namespace nerpa

#endif  // NERPA_COMMON_STRINGS_H_
