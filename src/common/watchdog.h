// Per-subsystem heartbeats and stuck-operation detection.
//
// Loops that must keep moving (the controller's commit path, the
// gateway's monitor pump) call Beat() each iteration; operations that
// must complete within a bound (a WAL fsync) Arm() before starting and
// Disarm() after.  A supervisor — the gateway's /readyz and /v1/stats
// handlers, the HA pair's Tick() — snapshots the registry from any
// thread and turns staleness into a health decision: a subsystem whose
// armed operation outlived its timeout is *stuck*, which is stronger
// evidence than a missing heartbeat (an idle subsystem has no reason to
// beat, but an armed one has promised to finish).
//
// The registry is passive: it never spawns threads or fires callbacks
// (repo convention — the caller owns the cadence).  All methods are
// thread-safe.
#ifndef NERPA_COMMON_WATCHDOG_H_
#define NERPA_COMMON_WATCHDOG_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"

namespace nerpa {

class Watchdog {
 public:
  struct Health {
    int64_t last_beat_nanos = 0;  // most recent Beat()/Disarm()
    int64_t armed_at_nanos = 0;   // 0 = no operation in flight
    int64_t timeout_nanos = 0;    // bound the armed operation promised
    uint64_t beats = 0;
    /// Armed longer than its timeout at snapshot time.
    bool stuck = false;
  };

  /// Records one heartbeat for `subsystem` (registering it on first use).
  void Beat(const std::string& subsystem);

  /// Marks the start of an operation that must finish within
  /// `timeout_nanos`.  Re-arming replaces the previous arm.
  void Arm(const std::string& subsystem, int64_t timeout_nanos);

  /// Marks the armed operation finished; also counts as a heartbeat.
  void Disarm(const std::string& subsystem);

  /// True when `subsystem` has an armed operation past its timeout.
  bool Stuck(const std::string& subsystem, int64_t now_nanos) const;

  /// Names of every currently stuck subsystem (empty = all healthy).
  std::vector<std::string> StuckSubsystems(int64_t now_nanos) const;

  /// Point-in-time view of every registered subsystem.
  std::map<std::string, Health> Snapshot(int64_t now_nanos) const;

 private:
  struct State {
    int64_t last_beat_nanos = 0;
    int64_t armed_at_nanos = 0;
    int64_t timeout_nanos = 0;
    uint64_t beats = 0;
  };

  static bool StuckLocked(const State& state, int64_t now_nanos) {
    return state.armed_at_nanos != 0 && state.timeout_nanos > 0 &&
           now_nanos >= state.armed_at_nanos + state.timeout_nanos;
  }

  mutable std::mutex mu_;
  std::map<std::string, State> subsystems_;
};

}  // namespace nerpa

#endif  // NERPA_COMMON_WATCHDOG_H_
