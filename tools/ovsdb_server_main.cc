// ovsdb_server — serve a schema over TCP, standalone.  The management
// plane as its own process, like the prototype's ovsdb-server.
//
//   $ ./build/tools/ovsdb_server schema.json 6640
//   $ ./build/tools/ovsdb_server --snvs 6640        # built-in snvs schema
//
// Clients speak the JSON-RPC methods in src/ovsdb/server.h (get_schema,
// transact, monitor, monitor_cancel, echo, list_dbs).
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "ovsdb/server.h"
#include "snvs/snvs.h"

#include <unistd.h>

namespace {
volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr,
                 "usage: %s (schema.json | --snvs) [port]\n", argv[0]);
    return 2;
  }
  nerpa::ovsdb::DatabaseSchema schema;
  if (std::strcmp(argv[1], "--snvs") == 0) {
    schema = nerpa::snvs::SnvsSchema();
  } else {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto parsed = nerpa::ovsdb::DatabaseSchema::FromJsonText(text.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "schema: %s\n", parsed.status().ToString().c_str());
      return 2;
    }
    schema = std::move(parsed).value();
  }
  uint16_t port = argc == 3 ? static_cast<uint16_t>(std::atoi(argv[2])) : 0;

  nerpa::ovsdb::OvsdbServer server(
      std::make_unique<nerpa::ovsdb::Database>(std::move(schema)));
  nerpa::Status started = server.Start(port);
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("ovsdb server: db '%s' listening on 127.0.0.1:%u\n",
              argv[1], server.port());
  std::fflush(stdout);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) pause();
  std::printf("shutting down (%llu requests served)\n",
              static_cast<unsigned long long>(server.requests_served()));
  server.Stop();
  return 0;
}
