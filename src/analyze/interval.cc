#include "analyze/interval.h"

#include <algorithm>
#include <limits>

namespace nerpa::analyze {

namespace {

Int Clamp(Int v) {
  return std::min(Interval::kMax, std::max(Interval::kMin, v));
}

/// Saturating multiply: the operands are already clamped to +-2^100, whose
/// product overflows 128 bits, so detect overflow by magnitude first.
Int SatMul(Int a, Int b) {
  if (a == 0 || b == 0) return 0;
  bool negative = (a < 0) != (b < 0);
  unsigned __int128 ua = a < 0 ? static_cast<unsigned __int128>(-a)
                               : static_cast<unsigned __int128>(a);
  unsigned __int128 ub = b < 0 ? static_cast<unsigned __int128>(-b)
                               : static_cast<unsigned __int128>(b);
  unsigned __int128 limit = static_cast<unsigned __int128>(Interval::kMax);
  if (ua > limit / ub) return negative ? Interval::kMin : Interval::kMax;
  Int magnitude = static_cast<Int>(ua * ub);
  return Clamp(negative ? -magnitude : magnitude);
}

}  // namespace

Interval Interval::Range(Int lo, Int hi) {
  if (lo > hi) return Bottom();
  return Interval{Clamp(lo), Clamp(hi)};
}

Interval Interval::OfType(const dlog::Type& type) {
  switch (type.kind) {
    case dlog::Type::Kind::kBit:
      if (type.width >= 64) {
        return Range(0, static_cast<Int>(
                            std::numeric_limits<uint64_t>::max()));
      }
      return Range(0, (Int{1} << type.width) - 1);
    case dlog::Type::Kind::kInt:
      return Range(std::numeric_limits<int64_t>::min(),
                   std::numeric_limits<int64_t>::max());
    case dlog::Type::Kind::kBool:
      return Range(0, 1);
    default:
      return Top();
  }
}

bool Interval::ContainedIn(const Interval& other) const {
  if (is_bottom()) return true;
  if (other.is_bottom()) return false;
  return lo >= other.lo && hi <= other.hi;
}

bool Interval::FitsBits(int width) const {
  if (is_bottom()) return true;
  if (width >= 64) {
    return ContainedIn(
        Range(0, static_cast<Int>(std::numeric_limits<uint64_t>::max())));
  }
  return ContainedIn(Range(0, (Int{1} << width) - 1));
}

Interval Interval::Join(const Interval& o) const {
  if (is_bottom()) return o;
  if (o.is_bottom()) return *this;
  return Interval{std::min(lo, o.lo), std::max(hi, o.hi)};
}

Interval Interval::Meet(const Interval& o) const {
  if (is_bottom() || o.is_bottom()) return Bottom();
  Int l = std::max(lo, o.lo), h = std::min(hi, o.hi);
  if (l > h) return Bottom();
  return Interval{l, h};
}

Interval Interval::Add(const Interval& o) const {
  if (is_bottom() || o.is_bottom()) return Bottom();
  return Interval{Clamp(lo + o.lo), Clamp(hi + o.hi)};
}

Interval Interval::Sub(const Interval& o) const {
  if (is_bottom() || o.is_bottom()) return Bottom();
  return Interval{Clamp(lo - o.hi), Clamp(hi - o.lo)};
}

Interval Interval::Mul(const Interval& o) const {
  if (is_bottom() || o.is_bottom()) return Bottom();
  Int a = SatMul(lo, o.lo), b = SatMul(lo, o.hi);
  Int c = SatMul(hi, o.lo), d = SatMul(hi, o.hi);
  return Interval{std::min(std::min(a, b), std::min(c, d)),
                  std::max(std::max(a, b), std::max(c, d))};
}

Interval Interval::Div(const Interval& o) const {
  if (is_bottom() || o.is_bottom()) return Bottom();
  // A divisor interval containing 0 makes the result hard to bound tightly
  // (and the program would fail at runtime); stay conservative.
  if (o.lo <= 0 && o.hi >= 0) return Top();
  Int a = lo / o.lo, b = lo / o.hi, c = hi / o.lo, d = hi / o.hi;
  return Interval{Clamp(std::min(std::min(a, b), std::min(c, d))),
                  Clamp(std::max(std::max(a, b), std::max(c, d)))};
}

Interval Interval::Mod(const Interval& o) const {
  if (is_bottom() || o.is_bottom()) return Bottom();
  if (o.lo <= 0 && o.hi >= 0) return Top();
  Int bound = std::max(o.hi < 0 ? -o.lo : o.hi,
                       o.hi < 0 ? -o.hi : o.lo) - 1;
  if (bound < 0) bound = 0;
  // C++ % takes the dividend's sign.
  Int l = lo < 0 ? -bound : 0;
  Int h = hi > 0 ? bound : 0;
  return Interval{Clamp(l), Clamp(h)};
}

Interval Interval::Neg() const {
  if (is_bottom()) return Bottom();
  return Interval{Clamp(-hi), Clamp(-lo)};
}

Interval Interval::Shl(const Interval& o) const {
  if (is_bottom() || o.is_bottom()) return Bottom();
  if (lo < 0 || o.lo < 0 || o.hi > 127) return Top();
  return Interval{Clamp(lo << static_cast<int>(o.lo)),
                  Clamp(hi << static_cast<int>(std::min<Int>(o.hi, 110)))};
}

Interval Interval::Shr(const Interval& o) const {
  if (is_bottom() || o.is_bottom()) return Bottom();
  if (lo < 0 || o.lo < 0 || o.hi > 127) return Top();
  return Interval{Clamp(lo >> static_cast<int>(o.hi)),
                  Clamp(hi >> static_cast<int>(o.lo))};
}

Interval Interval::BitOp(const Interval& o) const {
  if (is_bottom() || o.is_bottom()) return Bottom();
  if (lo < 0 || o.lo < 0) return Top();
  Int bound = std::max(hi, o.hi);
  Int ceiling = 1;
  while (ceiling <= bound && ceiling < kMax) ceiling <<= 1;
  return Interval{0, Clamp(ceiling - 1)};
}

std::string Interval::ToString() const {
  if (is_bottom()) return "bottom";
  auto render = [](Int v) -> std::string {
    if (v <= kMin) return "-inf";
    if (v >= kMax) return "inf";
    bool negative = v < 0;
    unsigned __int128 magnitude =
        negative ? static_cast<unsigned __int128>(-v)
                 : static_cast<unsigned __int128>(v);
    std::string digits;
    do {
      digits += static_cast<char>('0' + static_cast<int>(magnitude % 10));
      magnitude /= 10;
    } while (magnitude != 0);
    if (negative) digits += '-';
    return std::string(digits.rbegin(), digits.rend());
  };
  return "[" + render(lo) + ", " + render(hi) + "]";
}

}  // namespace nerpa::analyze
