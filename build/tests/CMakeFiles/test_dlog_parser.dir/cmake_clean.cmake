file(REMOVE_RECURSE
  "CMakeFiles/test_dlog_parser.dir/test_dlog_parser.cc.o"
  "CMakeFiles/test_dlog_parser.dir/test_dlog_parser.cc.o.d"
  "test_dlog_parser"
  "test_dlog_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dlog_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
