// IPv4 address and prefix value types.
#ifndef NERPA_NET_IP_H_
#define NERPA_NET_IP_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace nerpa::net {

/// An IPv4 address in host byte order.
class Ipv4 {
 public:
  constexpr Ipv4() = default;
  explicit constexpr Ipv4(uint32_t bits) : bits_(bits) {}
  constexpr Ipv4(uint8_t a, uint8_t b, uint8_t c, uint8_t d)
      : bits_((uint32_t{a} << 24) | (uint32_t{b} << 16) | (uint32_t{c} << 8) |
              uint32_t{d}) {}

  constexpr uint32_t bits() const { return bits_; }

  /// Parses dotted-quad "10.0.0.1".
  static std::optional<Ipv4> Parse(std::string_view text);

  std::string ToString() const;

  constexpr auto operator<=>(const Ipv4&) const = default;

 private:
  uint32_t bits_ = 0;
};

/// A CIDR prefix (address + length).  Normalizes host bits to zero.
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;
  Ipv4Prefix(Ipv4 addr, int length);

  Ipv4 address() const { return addr_; }
  int length() const { return length_; }
  uint32_t Mask() const {
    return length_ == 0 ? 0u : ~uint32_t{0} << (32 - length_);
  }

  bool Contains(Ipv4 ip) const {
    return (ip.bits() & Mask()) == addr_.bits();
  }

  /// Parses "10.1.0.0/16"; a bare address means /32.
  static std::optional<Ipv4Prefix> Parse(std::string_view text);

  std::string ToString() const;

  auto operator<=>(const Ipv4Prefix&) const = default;

 private:
  Ipv4 addr_;
  int length_ = 0;
};

}  // namespace nerpa::net

template <>
struct std::hash<nerpa::net::Ipv4> {
  size_t operator()(const nerpa::net::Ipv4& ip) const noexcept {
    return std::hash<uint32_t>{}(ip.bits());
  }
};

#endif  // NERPA_NET_IP_H_
