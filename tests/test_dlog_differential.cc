// Differential and hot-path regression tests for the dlog engine:
//
//   * the interning and arrangement ablation switches must not change any
//     observable result — every configuration produces byte-identical
//     output deltas for the same transaction stream;
//   * the intern pool must preserve value equality/hashing across modes
//     (the transparent-lookup contract probe-free joins rely on);
//   * a failed Commit() (division by zero mid-rule) must roll back every
//     partial effect — derivation counts, arrangements, aggregation state
//     — leaving the engine exactly as before the failed transaction.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "dlog/engine.h"

namespace nerpa::dlog {
namespace {

Row R(std::initializer_list<Value> vs) { return Row(vs); }
Value I(int64_t v) { return Value::Int(v); }
Value S(const std::string& s) { return Value::String(s); }

std::shared_ptr<const Program> MustParse(const char* source) {
  auto program = Program::Parse(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return *program;
}

/// Restores process-wide interning on scope exit (tests toggle it).
struct InterningGuard {
  ~InterningGuard() { SetValueInterning(true); }
};

// ---------------------------------------------------------------------------
// Differential property: interning {on, off} x arrangements {on, off}
// produce byte-identical deltas for the same transaction stream.
// ---------------------------------------------------------------------------

// Join + aggregation, string and integer columns.  (No negation: the
// no-arrangement mode rejects it by design.)
constexpr const char* kDifferentialProgram = R"(
input relation Port(sw: string, port: bigint, vlan: bigint)
input relation Trunk(sw: string, port: bigint)
output relation Flood(sw: string, vlan: bigint)
output relation PairUp(sw: string, a: bigint, b: bigint)
output relation VlanCount(sw: string, n: bigint)
Flood(s, v) :- Port(s, p, v).
PairUp(s, a, b) :- Port(s, a, v), Trunk(s, b).
VlanCount(s, n) :- Port(s, p, v), var n = count(p) group_by (s).
)";

/// One abstract input operation, materialized into a Row per engine so
/// each configuration constructs its values under its own interning mode.
struct Op {
  std::string relation;
  std::string sw;
  std::vector<int64_t> ints;
  bool insert = true;
};

Row MaterializeRow(const Op& op) {
  Row row;
  row.push_back(S(op.sw));
  for (int64_t v : op.ints) row.push_back(I(v));
  return row;
}

TEST(DlogDifferential, InterningAndArrangementsDoNotChangeDeltas) {
  InterningGuard guard;
  struct Config {
    bool intern;
    bool arrange;
  };
  const Config configs[] = {
      {true, true}, {true, false}, {false, true}, {false, false}};

  auto program = MustParse(kDifferentialProgram);
  std::vector<std::unique_ptr<Engine>> engines;
  for (const Config& config : configs) {
    SetValueInterning(config.intern);
    EngineOptions options;
    options.use_arrangements = config.arrange;
    engines.push_back(std::make_unique<Engine>(program, options));
  }

  std::mt19937_64 rng(20260806);
  // Tracked live rows so deletes hit existing tuples ~half the time.
  std::set<std::pair<std::string, std::vector<int64_t>>> live_ports;
  for (int step = 0; step < 50; ++step) {
    std::vector<Op> ops;
    int count = 1 + static_cast<int>(rng() % 4);
    for (int k = 0; k < count; ++k) {
      Op op;
      op.sw = "sw-" + std::to_string(rng() % 3);
      if (rng() % 4 == 0) {
        op.relation = "Trunk";
        op.ints = {static_cast<int64_t>(rng() % 8)};
        op.insert = rng() % 2 == 0;
      } else {
        op.relation = "Port";
        op.ints = {static_cast<int64_t>(rng() % 8),
                   static_cast<int64_t>(rng() % 4)};
        auto key = std::make_pair(op.sw, op.ints);
        if (rng() % 2 == 0 && !live_ports.empty()) {
          // Delete something that exists.
          auto it = live_ports.begin();
          std::advance(it, static_cast<long>(rng() % live_ports.size()));
          op.sw = it->first;
          op.ints = it->second;
          op.insert = false;
          live_ports.erase(it);
        } else {
          op.insert = true;
          live_ports.insert(key);
        }
      }
      ops.push_back(std::move(op));
    }

    std::vector<std::string> deltas;
    for (size_t e = 0; e < engines.size(); ++e) {
      SetValueInterning(configs[e].intern);
      for (const Op& op : ops) {
        Row row = MaterializeRow(op);
        Status status = op.insert
                            ? engines[e]->Insert(op.relation, std::move(row))
                            : engines[e]->Delete(op.relation, std::move(row));
        ASSERT_TRUE(status.ok()) << status.ToString();
      }
      auto delta = engines[e]->Commit();
      ASSERT_TRUE(delta.ok()) << delta.status().ToString();
      deltas.push_back(delta->ToString());
    }
    for (size_t e = 1; e < deltas.size(); ++e) {
      ASSERT_EQ(deltas[0], deltas[e])
          << "config " << e << " (intern=" << configs[e].intern
          << ", arrange=" << configs[e].arrange
          << ") diverged at step " << step;
    }
  }
}

// ---------------------------------------------------------------------------
// Differential property: the bootstrap fast path — serial or parallel —
// must be byte-identical to the classic incremental first commit, both in
// the returned delta and in all subsequent transactions.
// ---------------------------------------------------------------------------

/// Dump of every relation, stringified, for whole-state comparison.
std::string DumpAll(const Engine& engine) {
  std::string out;
  for (const auto& decl : engine.program().relations()) {
    auto rows = engine.Dump(decl.name);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    out += decl.name + ":\n";
    for (const Row& row : *rows) out += "  " + RowToString(row) + "\n";
  }
  return out;
}

TEST(DlogDifferential, BootstrapSerialParallelAndIncrementalAgree) {
  auto program = MustParse(kDifferentialProgram);
  struct Config {
    const char* name;
    EngineOptions options;
  };
  std::vector<Config> configs;
  {
    Config classic{"classic-incremental", {}};
    classic.options.enable_bootstrap = false;
    configs.push_back(classic);
    Config serial{"bootstrap-serial", {}};
    serial.options.bootstrap_threads = 1;
    configs.push_back(serial);
    // The CI box may have one core, so the parallel path needs an explicit
    // thread count and a low row threshold to actually engage.
    Config parallel{"bootstrap-parallel", {}};
    parallel.options.bootstrap_threads = 4;
    parallel.options.parallel_bootstrap_min_rows = 1;
    configs.push_back(parallel);
  }

  std::vector<std::unique_ptr<Engine>> engines;
  for (const Config& config : configs) {
    engines.push_back(std::make_unique<Engine>(program, config.options));
  }

  // Big-bang initial load: several hundred rows so the parallel fan-out
  // has real shards to work with.
  std::mt19937_64 rng(20260808);
  std::vector<Op> initial;
  for (int k = 0; k < 600; ++k) {
    Op op;
    op.sw = "sw-" + std::to_string(rng() % 5);
    if (k % 5 == 0) {
      op.relation = "Trunk";
      op.ints = {static_cast<int64_t>(rng() % 32)};
    } else {
      op.relation = "Port";
      op.ints = {static_cast<int64_t>(rng() % 64),
                 static_cast<int64_t>(rng() % 8)};
    }
    initial.push_back(std::move(op));
  }

  std::vector<std::string> deltas;
  for (auto& engine : engines) {
    for (const Op& op : initial) {
      ASSERT_TRUE(engine->Insert(op.relation, MaterializeRow(op)).ok());
    }
    auto delta = engine->Commit();
    ASSERT_TRUE(delta.ok()) << delta.status().ToString();
    deltas.push_back(delta->ToString());
  }
  for (size_t e = 1; e < deltas.size(); ++e) {
    ASSERT_EQ(deltas[0], deltas[e])
        << configs[e].name << " bootstrap delta diverged";
  }
  for (size_t e = 1; e < engines.size(); ++e) {
    ASSERT_EQ(DumpAll(*engines[0]), DumpAll(*engines[e]))
        << configs[e].name << " state diverged after bootstrap";
  }

  // The bootstrapped engines must behave identically incrementally too:
  // mixed inserts/deletes over rows that do and do not exist.
  for (int step = 0; step < 10; ++step) {
    std::vector<Op> ops;
    for (int k = 0; k < 5; ++k) {
      Op op;
      op.sw = "sw-" + std::to_string(rng() % 5);
      op.relation = k % 3 == 0 ? "Trunk" : "Port";
      if (op.relation == "Trunk") {
        op.ints = {static_cast<int64_t>(rng() % 32)};
      } else {
        op.ints = {static_cast<int64_t>(rng() % 64),
                   static_cast<int64_t>(rng() % 8)};
      }
      op.insert = rng() % 3 != 0;
      ops.push_back(std::move(op));
    }
    deltas.clear();
    for (auto& engine : engines) {
      for (const Op& op : ops) {
        Row row = MaterializeRow(op);
        Status status = op.insert ? engine->Insert(op.relation, std::move(row))
                                  : engine->Delete(op.relation, std::move(row));
        ASSERT_TRUE(status.ok()) << status.ToString();
      }
      auto delta = engine->Commit();
      ASSERT_TRUE(delta.ok()) << delta.status().ToString();
      deltas.push_back(delta->ToString());
    }
    for (size_t e = 1; e < deltas.size(); ++e) {
      ASSERT_EQ(deltas[0], deltas[e])
          << configs[e].name << " diverged at incremental step " << step;
    }
  }
}

// ---------------------------------------------------------------------------
// Differential property: a checkpoint-restored engine is byte-identical to
// the engine that produced the blob — same dumps, same deltas for every
// subsequent transaction — and a damaged blob is rejected outright.
// ---------------------------------------------------------------------------

TEST(DlogDifferential, CheckpointRestoreIsByteIdentical) {
  auto program = MustParse(kDifferentialProgram);
  Engine original(program);

  std::mt19937_64 rng(20260809);
  for (int k = 0; k < 200; ++k) {
    Op op;
    op.sw = "sw-" + std::to_string(rng() % 4);
    if (k % 4 == 0) {
      op.relation = "Trunk";
      op.ints = {static_cast<int64_t>(rng() % 16)};
    } else {
      op.relation = "Port";
      op.ints = {static_cast<int64_t>(rng() % 32),
                 static_cast<int64_t>(rng() % 6)};
    }
    ASSERT_TRUE(original.Insert(op.relation, MaterializeRow(op)).ok());
  }
  ASSERT_TRUE(original.Commit().ok());
  // A second transaction with deletes, so the checkpoint captures
  // derivation counts that have been decremented, not just fresh state.
  auto ports = original.Dump("Port");
  ASSERT_TRUE(ports.ok());
  for (size_t i = 0; i < ports->size(); i += 7) {
    ASSERT_TRUE(original.Delete("Port", (*ports)[i]).ok());
  }
  ASSERT_TRUE(original.Commit().ok());

  std::string blob = original.SerializeState();
  auto restored = Engine::Restore(program, blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  EXPECT_EQ(original.StateFingerprint(), (*restored)->StateFingerprint());
  EXPECT_EQ(DumpAll(original), DumpAll(**restored));
  EXPECT_TRUE((*restored)->TakeInitialDelta().empty());

  // Subsequent commits must produce byte-identical deltas: the restored
  // derivation counts and aggregation groups have to match exactly, or a
  // delete would surface (or fail to surface) differently.
  for (int step = 0; step < 8; ++step) {
    std::vector<Op> ops;
    for (int k = 0; k < 4; ++k) {
      Op op;
      op.sw = "sw-" + std::to_string(rng() % 4);
      op.relation = k % 3 == 0 ? "Trunk" : "Port";
      if (op.relation == "Trunk") {
        op.ints = {static_cast<int64_t>(rng() % 16)};
      } else {
        op.ints = {static_cast<int64_t>(rng() % 32),
                   static_cast<int64_t>(rng() % 6)};
      }
      op.insert = rng() % 3 != 0;
      ops.push_back(std::move(op));
    }
    std::string original_delta, restored_delta;
    for (Engine* engine : {&original, restored->get()}) {
      for (const Op& op : ops) {
        Row row = MaterializeRow(op);
        Status status = op.insert ? engine->Insert(op.relation, std::move(row))
                                  : engine->Delete(op.relation, std::move(row));
        ASSERT_TRUE(status.ok()) << status.ToString();
      }
      auto delta = engine->Commit();
      ASSERT_TRUE(delta.ok()) << delta.status().ToString();
      (engine == &original ? original_delta : restored_delta) =
          delta->ToString();
    }
    ASSERT_EQ(original_delta, restored_delta)
        << "restored engine diverged at step " << step;
  }
  EXPECT_EQ(DumpAll(original), DumpAll(**restored));

  // Damage must be detected, not absorbed.  (Whole-blob integrity is the
  // durability layer's job — its frame carries a CRC32 — so here the
  // engine only has to reject structural damage: bad magic, truncation,
  // and wrong-program blobs.)
  std::string corrupt = blob;
  corrupt[0] = static_cast<char>(corrupt[0] ^ 0x40);
  EXPECT_FALSE(Engine::Restore(program, corrupt).ok());
  EXPECT_FALSE(Engine::Restore(program, std::string_view(blob).substr(
                                            0, blob.size() - 9)).ok());
  // And a blob from a different program must be rejected by fingerprint.
  auto other = MustParse("input relation X(a: bigint)\n");
  Engine other_engine(other);
  EXPECT_FALSE(Engine::Restore(program, other_engine.SerializeState()).ok());
}

// ---------------------------------------------------------------------------
// Intern pool invariants.
// ---------------------------------------------------------------------------

TEST(InternPool, DeduplicatesWhenEnabled) {
  InterningGuard guard;
  SetValueInterning(true);
  InternPoolStats before = GetInternPoolStats();
  Value first = Value::String("intern-dedup-probe-aa");
  InternPoolStats after_first = GetInternPoolStats();
  EXPECT_EQ(after_first.misses, before.misses + 1);
  Value second = Value::String("intern-dedup-probe-aa");
  InternPoolStats after_second = GetInternPoolStats();
  // The duplicate is served from the pool: a hit, no new node.
  EXPECT_EQ(after_second.hits, after_first.hits + 1);
  EXPECT_EQ(after_second.strings, after_first.strings);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.Hash(), second.Hash());
}

TEST(InternPool, DisabledModeStillComparesAndHashesEqual) {
  InterningGuard guard;
  SetValueInterning(true);
  Value interned = Value::String("intern-mixed-mode-probe");
  Value interned_tuple = Value::Tuple({I(1), S("intern-mixed-elem")});
  SetValueInterning(false);
  InternPoolStats before = GetInternPoolStats();
  Value plain = Value::String("intern-mixed-mode-probe");
  Value plain_tuple = Value::Tuple({I(1), S("intern-mixed-elem")});
  InternPoolStats after = GetInternPoolStats();
  // Disabled: every construction allocates (no dedup)...
  EXPECT_GE(after.misses, before.misses + 2);
  // ...but equality and hashing are mode-independent (deep fallback).
  EXPECT_EQ(interned, plain);
  EXPECT_EQ(interned.Hash(), plain.Hash());
  EXPECT_EQ(interned_tuple, plain_tuple);
  EXPECT_EQ(interned_tuple.Hash(), plain_tuple.Hash());
  EXPECT_EQ(interned.Compare(plain), 0);
  EXPECT_EQ(interned_tuple.Compare(plain_tuple), 0);
}

TEST(InternPool, RowHashMatchesValueRangeHash) {
  // The transparent-lookup contract: a Row and a borrowed span over the
  // same values must hash identically and compare equal, in either
  // interning mode (probe-free joins key arrangement maps this way).
  InterningGuard guard;
  for (bool intern : {true, false}) {
    SetValueInterning(intern);
    Row row{S("key-7"), I(42), Value::Bit(7), Value::Bool(true)};
    std::vector<Value> values(row.begin(), row.end());
    EXPECT_EQ(row.Hash(), HashValueRange(values.data(), values.size()));
    RowHash hasher;
    RowEq eq;
    RowView view{values.data(), values.size()};
    EXPECT_EQ(hasher(row), hasher(view));
    EXPECT_TRUE(eq(row, view));
    EXPECT_TRUE(eq(view, row));
  }
}

TEST(InternPool, RowHashMemoizationSurvivesMutation) {
  Row row{I(1), I(2)};
  size_t first = row.Hash();
  EXPECT_EQ(row.Hash(), first);  // memoized
  row.push_back(I(3));           // invalidates
  Row fresh{I(1), I(2), I(3)};
  EXPECT_EQ(row.Hash(), fresh.Hash());
  row.clear();
  EXPECT_EQ(row.Hash(), Row().Hash());
}

// ---------------------------------------------------------------------------
// Failed-Commit rollback.
// ---------------------------------------------------------------------------

constexpr const char* kDivProgram = R"(
input relation X(a: bigint, b: bigint)
output relation Mirror(a: bigint)
output relation Quot(a: bigint, q: bigint)
output relation PerA(a: bigint, n: bigint)
Mirror(a) :- X(a, b).
Quot(a, 100 / b) :- X(a, b).
PerA(a, n) :- X(a, b), var n = count(b) group_by (a).
)";

TEST(DlogRollback, FailedCommitRollsBackAllPartialEffects) {
  auto program = MustParse(kDivProgram);
  Engine engine(program);
  ASSERT_TRUE(engine.Insert("X", R({I(1), I(2)})).ok());
  ASSERT_TRUE(engine.Insert("X", R({I(1), I(4)})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  std::vector<Row> mirror_before = *engine.Dump("Mirror");
  std::vector<Row> quot_before = *engine.Dump("Quot");
  std::vector<Row> pera_before = *engine.Dump("PerA");
  Engine::Stats stats_before = engine.GetStats();

  // The poisoned transaction: valid rows on both sides of the
  // division-by-zero row, so every subsystem (counts, arrangements,
  // aggregation groups) has partial effects to undo.
  ASSERT_TRUE(engine.Insert("X", R({I(0), I(5)})).ok());
  ASSERT_TRUE(engine.Insert("X", R({I(2), I(0)})).ok());  // 100 / 0
  ASSERT_TRUE(engine.Insert("X", R({I(3), I(10)})).ok());
  ASSERT_TRUE(engine.Delete("X", R({I(1), I(2)})).ok());
  auto failed = engine.Commit();
  ASSERT_FALSE(failed.ok());

  // Every observable is exactly as before the failed Commit().
  EXPECT_EQ(*engine.Dump("Mirror"), mirror_before);
  EXPECT_EQ(*engine.Dump("Quot"), quot_before);
  EXPECT_EQ(*engine.Dump("PerA"), pera_before);
  EXPECT_EQ(*engine.Dump("X"),
            (std::vector<Row>{R({I(1), I(2)}), R({I(1), I(4)})}));
  Engine::Stats stats_after = engine.GetStats();
  EXPECT_EQ(stats_after.tuples, stats_before.tuples);
  EXPECT_EQ(stats_after.arrangement_entries,
            stats_before.arrangement_entries);

  // The engine keeps working, and the next delta is computed against the
  // rolled-back state (none of the poisoned rows leaked).
  ASSERT_TRUE(engine.Insert("X", R({I(3), I(10)})).ok());
  auto delta = engine.Commit();
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_EQ(delta->outputs.at("Mirror"),
            (SetDelta{{R({I(3)}), +1}}));
  EXPECT_EQ(delta->outputs.at("Quot"), (SetDelta{{R({I(3), I(10)}), +1}}));
  EXPECT_EQ(delta->outputs.at("PerA"), (SetDelta{{R({I(3), I(1)}), +1}}));

  // After rollback + successful commits, the engine matches a from-scratch
  // evaluation of the surviving inputs.
  Engine scratch(program);
  ASSERT_TRUE(scratch.Insert("X", R({I(1), I(2)})).ok());
  ASSERT_TRUE(scratch.Insert("X", R({I(1), I(4)})).ok());
  ASSERT_TRUE(scratch.Insert("X", R({I(3), I(10)})).ok());
  ASSERT_TRUE(scratch.Commit().ok());
  for (const char* relation : {"X", "Mirror", "Quot", "PerA"}) {
    EXPECT_EQ(*engine.Dump(relation), *scratch.Dump(relation))
        << relation << " diverged from scratch recompute";
  }
}

TEST(DlogRollback, AggregationStateIsRestoredExactly) {
  auto program = MustParse(kDivProgram);
  Engine engine(program);
  ASSERT_TRUE(engine.Insert("X", R({I(7), I(1)})).ok());
  ASSERT_TRUE(engine.Commit().ok());

  // Failing txn touches group 7's aggregation state before the error.
  ASSERT_TRUE(engine.Insert("X", R({I(7), I(2)})).ok());
  ASSERT_TRUE(engine.Insert("X", R({I(7), I(0)})).ok());
  ASSERT_FALSE(engine.Commit().ok());

  // If the per-group count survived the rollback, this commit would
  // produce n=3 instead of n=2.
  ASSERT_TRUE(engine.Insert("X", R({I(7), I(2)})).ok());
  auto delta = engine.Commit();
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta->outputs.at("PerA"),
            (SetDelta{{R({I(7), I(1)}), -1}, {R({I(7), I(2)}), +1}}));
}

TEST(DlogRollback, RepeatedFailuresDoNotAccumulateState) {
  auto program = MustParse(kDivProgram);
  Engine engine(program);
  ASSERT_TRUE(engine.Insert("X", R({I(1), I(5)})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  Engine::Stats stats_before = engine.GetStats();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.Insert("X", R({I(100 + i), I(0)})).ok());
    ASSERT_FALSE(engine.Commit().ok());
  }
  Engine::Stats stats_after = engine.GetStats();
  EXPECT_EQ(stats_after.tuples, stats_before.tuples);
  EXPECT_EQ(stats_after.arrangement_entries,
            stats_before.arrangement_entries);
  EXPECT_EQ(engine.Size("Mirror"), 1u);
  EXPECT_EQ(engine.Size("Quot"), 1u);
}

}  // namespace
}  // namespace nerpa::dlog
