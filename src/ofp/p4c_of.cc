#include "ofp/p4c_of.h"

#include <algorithm>

#include "common/strings.h"

namespace nerpa::ofp {

namespace {

uint64_t WidthMask(int width) {
  return width >= 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
}

/// Walks a control block, assigning consecutive table ids and accumulating
/// guard matches.
Status WalkControl(const p4::P4Program& program,
                   const std::vector<p4::ControlNode>& nodes,
                   std::vector<OfMatch>& guards, int& next_id,
                   OfLayout& layout) {
  for (const p4::ControlNode& node : nodes) {
    if (node.kind == p4::ControlNode::Kind::kApply) {
      if (layout.table_ids.count(node.table) != 0) {
        return FailedPrecondition("table '" + node.table +
                                  "' applied more than once");
      }
      layout.table_ids[node.table] = next_id++;
      layout.table_guards[node.table] = guards;
      continue;
    }
    OfMatch guard;
    switch (node.pred) {
      case p4::ControlNode::Pred::kFieldEq:
        guard.field = node.cond_field.text;
        guard.value = node.cond_value;
        break;
      case p4::ControlNode::Pred::kHeaderValid:
        guard.field = node.cond_header + "._valid";
        guard.value = 1;
        guard.mask = 1;
        break;
      case p4::ControlNode::Pred::kHeaderInvalid:
        guard.field = node.cond_header + "._valid";
        guard.value = 0;
        guard.mask = 1;
        break;
      case p4::ControlNode::Pred::kFieldNe:
        return FailedPrecondition(
            "p4c-of cannot lower '!=' control conditions");
    }
    // The two branches are mutually exclusive in P4, but OpenFlow tables
    // chain unconditionally and a then-branch action may rewrite the very
    // field the guard tests (e.g. pop_vlan invalidating a vlan-validity
    // guard).  Lowering both branches onto the SAME table ids gives one
    // lookup per position with the guards selecting the branch — the
    // packet can never fall into the other branch afterwards.
    int branch_start = next_id;
    int then_end = branch_start;
    int else_end = branch_start;
    guards.push_back(guard);
    NERPA_RETURN_IF_ERROR(
        WalkControl(program, node.then_branch, guards, then_end, layout));
    guards.pop_back();
    if (!node.else_branch.empty()) {
      // Else guards: invert a validity guard; equality cannot be inverted.
      if (node.pred == p4::ControlNode::Pred::kHeaderValid ||
          node.pred == p4::ControlNode::Pred::kHeaderInvalid) {
        OfMatch inverse = guard;
        inverse.value ^= 1;
        guards.push_back(inverse);
        int branch_next = branch_start;
        NERPA_RETURN_IF_ERROR(
            WalkControl(program, node.else_branch, guards, branch_next,
                        layout));
        else_end = branch_next;
        guards.pop_back();
      } else {
        return FailedPrecondition(
            "p4c-of cannot lower else-branches of equality conditions");
      }
    }
    next_id = std::max(then_end, else_end);
  }
  return Status::Ok();
}

Result<std::vector<OfAction>> LowerActionOps(
    const p4::P4Program& /*program*/, const p4::Action& action,
    const std::vector<uint64_t>& args, std::vector<std::string>* warnings) {
  std::vector<OfAction> out;
  auto arg_value = [&](const p4::ActionOp& op) -> uint64_t {
    if (op.param.empty()) return op.immediate;
    int index = action.FindParam(op.param);
    return index >= 0 && static_cast<size_t>(index) < args.size()
               ? args[static_cast<size_t>(index)]
               : 0;
  };
  for (const p4::ActionOp& op : action.ops) {
    OfAction lowered;
    switch (op.kind) {
      case p4::ActionOp::Kind::kNoOp:
        continue;
      case p4::ActionOp::Kind::kSetFieldConst:
      case p4::ActionOp::Kind::kSetFieldParam:
        lowered.kind = OfAction::Kind::kSetField;
        lowered.field = op.dest.text;
        lowered.value = arg_value(op);
        break;
      case p4::ActionOp::Kind::kCopyField:
        return FailedPrecondition(
            "p4c-of cannot lower field-to-field copies");
      case p4::ActionOp::Kind::kOutput:
        lowered.kind = OfAction::Kind::kOutput;
        lowered.value = arg_value(op);
        break;
      case p4::ActionOp::Kind::kMulticast:
        lowered.kind = OfAction::Kind::kGroup;
        lowered.value = arg_value(op);
        break;
      case p4::ActionOp::Kind::kDrop:
        lowered.kind = OfAction::Kind::kDrop;
        break;
      case p4::ActionOp::Kind::kClone:
        lowered.kind = OfAction::Kind::kClone;
        lowered.value = arg_value(op);
        break;
      case p4::ActionOp::Kind::kDigest:
        if (warnings != nullptr) {
          warnings->push_back("digest '" + op.digest_name +
                              "' lowered to no-op (no OpenFlow equivalent)");
        }
        continue;
      case p4::ActionOp::Kind::kPushVlan:
        lowered.kind = OfAction::Kind::kPushVlan;
        lowered.value = arg_value(op);
        break;
      case p4::ActionOp::Kind::kPopVlan:
        lowered.kind = OfAction::Kind::kPopVlan;
        break;
    }
    out.push_back(std::move(lowered));
  }
  return out;
}

}  // namespace

Result<OfLayout> PlanLayout(const p4::P4Program& program) {
  OfLayout layout;
  int next_id = 0;
  std::vector<OfMatch> guards;
  NERPA_RETURN_IF_ERROR(
      WalkControl(program, program.ingress, guards, next_id, layout));
  layout.egress_boundary = next_id;
  guards.clear();
  NERPA_RETURN_IF_ERROR(
      WalkControl(program, program.egress, guards, next_id, layout));
  return layout;
}

Result<Flow> LowerEntry(const p4::P4Program& program, const OfLayout& layout,
                        const p4::TableEntry& entry,
                        std::vector<std::string>* warnings) {
  const p4::Table* table = program.FindTable(entry.table);
  if (table == nullptr) return NotFound("no table '" + entry.table + "'");
  auto id = layout.table_ids.find(entry.table);
  if (id == layout.table_ids.end()) {
    return NotFound("table '" + entry.table + "' is not applied anywhere");
  }
  Flow flow;
  flow.table_id = id->second;
  flow.cookie = "p4:" + entry.table;
  flow.match = layout.table_guards.at(entry.table);
  int prefix_sum = 0;
  for (size_t i = 0; i < table->keys.size(); ++i) {
    const p4::TableKey& key = table->keys[i];
    const p4::MatchField& m = entry.match[i];
    OfMatch lowered;
    lowered.field = key.field.text;
    switch (key.kind) {
      case p4::MatchKind::kExact:
        lowered.value = m.value;
        lowered.mask = WidthMask(key.width);
        break;
      case p4::MatchKind::kLpm: {
        if (m.prefix_len == 0) continue;  // matches everything
        uint64_t mask = WidthMask(key.width) ^
                        WidthMask(key.width - m.prefix_len);
        lowered.value = m.value & mask;
        lowered.mask = mask;
        prefix_sum += m.prefix_len;
        break;
      }
      case p4::MatchKind::kTernary:
        if (m.mask == 0) continue;
        lowered.value = m.value;
        lowered.mask = m.mask;
        break;
      case p4::MatchKind::kOptional:
        if (m.wildcard) continue;
        lowered.value = m.value;
        lowered.mask = WidthMask(key.width);
        break;
      case p4::MatchKind::kRange:
        return FailedPrecondition(
            "p4c-of cannot lower range matches (no OpenFlow equivalent)");
    }
    flow.match.push_back(std::move(lowered));
  }
  // LPM prefers longer prefixes; entries keep their relative priority above.
  flow.priority = 16 + entry.priority * 256 + prefix_sum;
  const p4::Action* action = program.FindAction(entry.action);
  if (action == nullptr) return NotFound("no action '" + entry.action + "'");
  NERPA_ASSIGN_OR_RETURN(
      flow.actions,
      LowerActionOps(program, *action, entry.action_args, warnings));
  return flow;
}

Result<FlowSwitch> CompileP4ToOf(const p4::Switch& sw, OfLayout* layout_out,
                                 std::vector<std::string>* warnings) {
  const p4::P4Program& program = sw.program();
  NERPA_ASSIGN_OR_RETURN(OfLayout layout, PlanLayout(program));
  FlowSwitch flows;
  flows.SetEgressBoundary(layout.egress_boundary);
  for (const p4::Table& table : program.tables) {
    auto id = layout.table_ids.find(table.name);
    if (id == layout.table_ids.end()) continue;  // never applied
    const p4::TableState* state = sw.GetTable(table.name);
    for (const p4::TableEntry* entry : state->Entries()) {
      NERPA_ASSIGN_OR_RETURN(Flow flow,
                             LowerEntry(program, layout, *entry, warnings));
      flows.AddFlow(std::move(flow));
    }
    // Default action => priority-0 catch-all flow under the same guards.
    if (!table.default_action.empty()) {
      const p4::Action* action = program.FindAction(table.default_action);
      Flow flow;
      flow.table_id = id->second;
      flow.priority = 0;
      flow.cookie = "p4:" + table.name + ":default";
      flow.match = layout.table_guards.at(table.name);
      NERPA_ASSIGN_OR_RETURN(
          flow.actions,
          LowerActionOps(program, *action, table.default_action_args,
                         warnings));
      flows.AddFlow(std::move(flow));
    }
  }
  // Multicast groups copy over unchanged.
  for (uint32_t group = 1; group < 1u << 12; ++group) {
    const std::vector<uint64_t>* ports = sw.GetMulticastGroup(group);
    if (ports != nullptr) flows.SetGroup(group, *ports);
  }
  if (layout_out != nullptr) *layout_out = layout;
  return flows;
}

Result<FieldMap> PacketToFields(const p4::P4Program& program,
                                const net::Packet& packet) {
  FieldMap fields;
  net::PacketReader reader(packet);
  const p4::ParserState* state = &program.parser[0];
  for (int hops = 0; hops < 64; ++hops) {
    if (!state->extracts.empty()) {
      const p4::HeaderType* header = program.FindHeader(state->extracts);
      fields[header->name + "._valid"] = 1;
      for (const p4::P4Field& field : header->fields) {
        auto value = reader.ReadBits(field.width);
        if (!value) return InvalidArgument("packet too short");
        fields[header->name + "." + field.name] = *value;
      }
    }
    const std::string* next = nullptr;
    if (state->select.text.empty()) {
      if (!state->transitions.empty()) next = &state->transitions[0].next;
    } else {
      uint64_t selector = 0;
      auto it = fields.find(state->select.text);
      if (it != fields.end()) selector = it->second;
      const std::string* fallback = nullptr;
      for (const p4::ParserState::Transition& t : state->transitions) {
        if (!t.match) {
          fallback = &t.next;
        } else if (*t.match == selector) {
          next = &t.next;
          break;
        }
      }
      if (next == nullptr) next = fallback;
    }
    if (next == nullptr || *next == "accept") {
      // Record the payload length so FieldsToPacket can zero-fill; the OF
      // layer is header-only, payload bytes are carried out of band.
      fields["_payload_bytes"] = packet.size() - reader.offset();
      return fields;
    }
    if (*next == "reject") return InvalidArgument("parser rejected packet");
    state = program.FindParserState(*next);
  }
  return Internal("parse loop");
}

net::Packet FieldsToPacket(const p4::P4Program& program,
                           const FieldMap& fields) {
  net::PacketWriter writer;
  for (const std::string& header_name : program.deparser) {
    auto valid = fields.find(header_name + "._valid");
    if (valid == fields.end() || valid->second == 0) continue;
    const p4::HeaderType* header = program.FindHeader(header_name);
    for (const p4::P4Field& field : header->fields) {
      auto it = fields.find(header_name + "." + field.name);
      writer.WriteBits(it == fields.end() ? 0 : it->second, field.width);
    }
  }
  return writer.Finish();
}

}  // namespace nerpa::ofp
