// Ethernet MAC address value type.
#ifndef NERPA_NET_MAC_H_
#define NERPA_NET_MAC_H_

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace nerpa::net {

/// A 48-bit Ethernet address.  Stored as the canonical u64 (upper 16 bits
/// zero) so it can flow through dlog bit<48> columns unchanged.
class Mac {
 public:
  constexpr Mac() = default;
  explicit constexpr Mac(uint64_t bits) : bits_(bits & 0xFFFFFFFFFFFFULL) {}
  constexpr Mac(uint8_t a, uint8_t b, uint8_t c, uint8_t d, uint8_t e,
                uint8_t f)
      : bits_((uint64_t{a} << 40) | (uint64_t{b} << 32) | (uint64_t{c} << 24) |
              (uint64_t{d} << 16) | (uint64_t{e} << 8) | uint64_t{f}) {}

  constexpr uint64_t bits() const { return bits_; }

  constexpr bool IsBroadcast() const { return bits_ == 0xFFFFFFFFFFFFULL; }
  /// Group bit of the first octet (multicast includes broadcast).
  constexpr bool IsMulticast() const { return (bits_ >> 40) & 0x01; }
  constexpr bool IsUnicast() const { return !IsMulticast(); }
  constexpr bool IsZero() const { return bits_ == 0; }

  std::array<uint8_t, 6> Bytes() const {
    return {static_cast<uint8_t>(bits_ >> 40),
            static_cast<uint8_t>(bits_ >> 32),
            static_cast<uint8_t>(bits_ >> 24),
            static_cast<uint8_t>(bits_ >> 16),
            static_cast<uint8_t>(bits_ >> 8),
            static_cast<uint8_t>(bits_)};
  }

  static Mac FromBytes(const uint8_t bytes[6]) {
    return Mac(bytes[0], bytes[1], bytes[2], bytes[3], bytes[4], bytes[5]);
  }

  static constexpr Mac Broadcast() { return Mac(0xFFFFFFFFFFFFULL); }

  /// Parses "aa:bb:cc:dd:ee:ff" (case-insensitive).
  static std::optional<Mac> Parse(std::string_view text);

  /// "aa:bb:cc:dd:ee:ff".
  std::string ToString() const;

  constexpr auto operator<=>(const Mac&) const = default;

 private:
  uint64_t bits_ = 0;
};

}  // namespace nerpa::net

template <>
struct std::hash<nerpa::net::Mac> {
  size_t operator()(const nerpa::net::Mac& mac) const noexcept {
    return std::hash<uint64_t>{}(mac.bits());
  }
};

#endif  // NERPA_NET_MAC_H_
