// Admission control for the northbound gateway.
//
// Three mechanisms compose, checked in order per request:
//
//  1. A static token bucket (`rate_per_sec`/`burst`) caps the sustained
//     backend request rate — the hard ceiling an operator configures.
//  2. An adaptive AIMD concurrency limit keyed on observed downstream
//     latency: every completed backend call feeds OnOutcome(); while the
//     backend answers near its baseline latency the limit creeps up
//     additively toward max_inflight, and when latency degrades past a
//     tolerance over the observed floor (or calls fail) the limit cuts
//     multiplicatively.  The baseline is learned, not configured, so the
//     same gateway self-tunes on a laptop and a loaded server.
//  3. Priority classes: health probes are never shed, cached reads bypass
//     admission entirely (they cost the backend nothing), uncached reads
//     get the full adaptive limit, and transacts only a fraction of it —
//     so at saturation writes shed first and the read plane stays up.
//
// Shed responses carry an honest Retry-After computed from the actual
// constraint that rejected the request (token deficit / inflight drain
// estimate), not a hardcoded constant.  Sustained shedding flips the
// controller into *brownout*: the gateway then serves possibly-stale
// cached reads (marked X-Nerpa-Stale) instead of 503s — degraded reads
// beat no reads while the backend pool is saturated.
#ifndef NERPA_GATEWAY_ADMISSION_H_
#define NERPA_GATEWAY_ADMISSION_H_

#include <array>
#include <cstdint>
#include <mutex>

namespace nerpa::gateway {

/// Request priority classes, most to least important.
enum class Priority {
  kHealth = 0,      // liveness/readiness probes — never shed
  kCachedRead = 1,  // served from ReadCache — bypasses admission
  kRead = 2,        // uncached reads — full adaptive limit
  kTransact = 3,    // writes — first to shed at saturation
};
constexpr size_t kPriorityClasses = 4;
const char* PriorityName(Priority priority);

class AdmissionController {
 public:
  /// Adaptive-limit and brownout knobs (defaults suit the repo's
  /// benches; tests override via set_tuning()).
  struct Tuning {
    /// Latency degradation tolerance: the limit decreases when the EWMA
    /// latency exceeds `latency_tolerance` x the observed floor.
    double latency_tolerance = 4.0;
    /// Never degrade for latencies under this even if the floor is tiny.
    int64_t latency_slack_nanos = 5'000'000;  // 5 ms
    /// Multiplicative decrease factor and the minimum interval between
    /// decreases (one cut per latency observation window, not per call).
    double decrease_factor = 0.8;
    int64_t decrease_interval_nanos = 100'000'000;  // 100 ms
    /// The adaptive limit never drops below this.
    double min_limit = 2.0;
    /// Fraction of the adaptive limit transacts may occupy.
    double transact_fraction = 0.75;
    /// Brownout trips when at least `brownout_sheds` requests were shed
    /// within the trailing `brownout_window_nanos`.
    uint64_t brownout_sheds = 4;
    int64_t brownout_window_nanos = 500'000'000;  // 500 ms
  };

  /// `rate_per_sec` tokens accrue per second up to `burst`; at most
  /// `max_inflight` admitted requests may be outstanding at once (the
  /// adaptive limit moves within [min_limit, max_inflight]).  A rate of 0
  /// disables the token bucket; an inflight cap of 0 disables the
  /// concurrency limit (and with it the adaptive behaviour).
  AdmissionController(double rate_per_sec, double burst, size_t max_inflight);

  void set_tuning(const Tuning& tuning);

  /// Attempts to admit one request of `priority` at time `now_ns`
  /// (MonotonicNanos).  On success the caller owes a matching Release()
  /// (directly or via OnOutcome).
  bool TryAdmit(int64_t now_ns, Priority priority = Priority::kRead);

  /// Marks one admitted request finished without a latency observation
  /// (e.g. it was dropped before reaching the backend).
  void Release();

  /// Marks one admitted request finished AND feeds the adaptive limit:
  /// `latency_nanos` is the backend round-trip, `ok` whether it
  /// succeeded.  Slow or failed calls shrink the limit; healthy ones
  /// grow it.
  void OnOutcome(int64_t now_ns, int64_t latency_nanos, bool ok);

  /// Honest Retry-After (whole seconds, >= 1) computed from the current
  /// constraint: token-bucket deficit against the refill rate, or the
  /// estimated drain time of the inflight queue at the observed latency.
  int RetryAfterSeconds(int64_t now_ns) const;

  /// True while sustained shedding indicates backend saturation; the
  /// gateway then serves stale cached reads instead of 503s.
  bool InBrownout(int64_t now_ns) const;

  uint64_t admitted() const;
  uint64_t shed() const;
  uint64_t shed_by_priority(Priority priority) const;
  size_t inflight() const;
  /// Current adaptive concurrency limit (max_inflight when adaptation is
  /// disabled or has not yet observed latency).
  double limit() const;
  /// EWMA backend latency (0 until the first observation).
  int64_t ewma_latency_nanos() const;
  uint64_t limit_decreases() const;

 private:
  bool TryAdmitLocked(int64_t now_ns, Priority priority);
  void RecordShedLocked(int64_t now_ns, Priority priority);
  int RetryAfterSecondsLocked(int64_t now_ns) const;

  mutable std::mutex mu_;
  const double rate_per_sec_;
  const double burst_;
  const size_t max_inflight_;
  Tuning tuning_;
  double tokens_;
  int64_t last_refill_ns_ = 0;
  size_t inflight_ = 0;
  uint64_t admitted_ = 0;
  uint64_t shed_ = 0;
  std::array<uint64_t, kPriorityClasses> shed_by_priority_{};
  // --- adaptive limit state ---
  double limit_;
  int64_t ewma_latency_ns_ = 0;
  int64_t floor_latency_ns_ = 0;   // observed healthy-latency floor
  int64_t last_decrease_ns_ = 0;
  uint64_t limit_decreases_ = 0;
  // --- brownout detection (two-bucket sliding shed window) ---
  int64_t window_start_ns_ = 0;
  uint64_t window_sheds_ = 0;
  uint64_t prev_window_sheds_ = 0;
};

}  // namespace nerpa::gateway

#endif  // NERPA_GATEWAY_ADMISSION_H_
