# Empty dependencies file for test_dlog_engine_edge.
# This may be replaced when dependencies are built.
