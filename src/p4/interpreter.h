// A behavioural interpreter for P4Program — the BMv2 stand-in.
//
// The switch parses real packet bytes into header fields, runs the ingress
// control (match-action tables + conditionals), replicates for multicast,
// runs egress per replica, and deparses back to bytes.  Digests raised by
// actions are queued for the controller, completing the data-plane side of
// the paper's feedback loop (§3, §4.2: MAC learning).
#ifndef NERPA_P4_INTERPRETER_H_
#define NERPA_P4_INTERPRETER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/packet.h"
#include "p4/entry.h"
#include "p4/ir.h"

namespace nerpa::p4 {

struct PacketIn {
  uint64_t port = 0;
  net::Packet packet;
};

struct PacketOut {
  uint64_t port = 0;
  net::Packet packet;
};

/// A digest record as delivered to the control plane: the declared fields,
/// in declaration order.
struct DigestMessage {
  std::string name;
  std::vector<uint64_t> fields;

  bool operator==(const DigestMessage& o) const {
    return name == o.name && fields == o.fields;
  }
};

class Switch {
 public:
  /// `program` must have passed Validate().
  explicit Switch(std::shared_ptr<const P4Program> program);

  const P4Program& program() const { return *program_; }

  /// Table state by name (written through the runtime API).
  TableState* GetTable(std::string_view name);
  const TableState* GetTable(std::string_view name) const;

  /// Replaces the port set of a multicast group (empty = delete).
  void SetMulticastGroup(uint32_t group, std::vector<uint64_t> ports);
  const std::vector<uint64_t>* GetMulticastGroup(uint32_t group) const;
  /// All programmed groups (read-back for controller resynchronization).
  const std::map<uint32_t, std::vector<uint64_t>>& multicast_groups() const {
    return multicast_;
  }

  /// Runs one packet through the full pipeline.  Returns the (possibly
  /// replicated, possibly empty) egress packets.
  Result<std::vector<PacketOut>> ProcessPacket(const PacketIn& in);

  /// Drains queued digests (FIFO).
  std::vector<DigestMessage> TakeDigests();

  // --- Fencing (controller replication) ---
  //
  // Writers present a fencing token (their leader-lease epoch); the switch
  // remembers the largest token it has ever accepted and rejects anything
  // older, so a deposed leader that wakes up mid-batch cannot mutate state
  // a newer leader already owns.  Token 0 marks an unfenced writer — legal
  // only while the switch has never seen a fenced write (single-controller
  // deployments keep working untouched).

  /// Validates `token` against the high-water mark, raising it on success.
  Status CheckFence(uint64_t token);

  /// Largest fencing token accepted so far (0 = never fenced).
  uint64_t fence_epoch() const { return fence_epoch_; }

  /// Writes rejected for carrying a stale token (split-brain near misses).
  uint64_t stale_writes() const { return stale_writes_; }

  struct Stats {
    uint64_t packets_in = 0;
    uint64_t packets_out = 0;
    uint64_t dropped = 0;
    uint64_t digests = 0;
    uint64_t parse_errors = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct HeaderInstance {
    bool valid = false;
    std::vector<uint64_t> values;  // parallel to HeaderType::fields
  };

  /// Per-packet execution context.
  struct Ctx {
    std::map<std::string, HeaderInstance> headers;
    std::map<std::string, uint64_t> metadata;
    uint64_t ingress_port = 0;
    uint64_t egress_port = 0;
    uint64_t mcast_grp = 0;
    bool unicast_set = false;
    bool dropped = false;
    std::vector<uint64_t> clone_ports;  // SPAN copies of the original frame
    std::vector<uint8_t> payload;  // bytes beyond the parsed headers
  };

  Status RunParser(Ctx& ctx, const net::Packet& packet);
  Status RunControl(Ctx& ctx, const std::vector<ControlNode>& nodes);
  Status ApplyTable(Ctx& ctx, const Table& table);
  Status ExecAction(Ctx& ctx, const Action& action,
                    const std::vector<uint64_t>& args);
  Result<uint64_t> ReadField(const Ctx& ctx, const FieldRef& ref) const;
  Status WriteField(Ctx& ctx, const FieldRef& ref, uint64_t value);
  net::Packet Deparse(const Ctx& ctx) const;

  std::shared_ptr<const P4Program> program_;
  std::map<std::string, TableState> tables_;
  std::map<uint32_t, std::vector<uint64_t>> multicast_;
  std::vector<DigestMessage> digests_;
  Stats stats_;
  uint64_t fence_epoch_ = 0;
  uint64_t stale_writes_ = 0;
};

}  // namespace nerpa::p4

#endif  // NERPA_P4_INTERPRETER_H_
