# Empty dependencies file for nerpa_common.
# This may be replaced when dependencies are built.
