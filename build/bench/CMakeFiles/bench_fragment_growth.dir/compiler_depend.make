# Empty compiler generated dependencies file for bench_fragment_growth.
# This may be replaced when dependencies are built.
