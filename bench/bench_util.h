// Shared helpers for the experiment harnesses: aligned table printing and
// simple statistics.  Each bench binary reproduces one table/figure of the
// paper (see DESIGN.md's experiment index) and prints the paper's reference
// values next to the measured ones.
#ifndef NERPA_BENCH_BENCH_UTIL_H_
#define NERPA_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/strings.h"

namespace nerpa::bench {

/// Prints a header box for an experiment.
inline void Banner(const std::string& id, const std::string& title) {
  std::string line(72, '=');
  std::printf("%s\n%s — %s\n%s\n", line.c_str(), id.c_str(), title.c_str(),
              line.c_str());
}

/// A fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%s%-*s", c == 0 ? "  " : "  ",
                    static_cast<int>(widths[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::vector<std::string> rule;
    for (size_t w : widths) rule.push_back(std::string(w, '-'));
    print_row(rule);
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Ms(double seconds) {
  return StrFormat("%.3f ms", seconds * 1e3);
}

inline std::string Us(double seconds) {
  return StrFormat("%.1f us", seconds * 1e6);
}

inline double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t index = static_cast<size_t>(p * static_cast<double>(values.size() - 1));
  return values[index];
}

}  // namespace nerpa::bench

#endif  // NERPA_BENCH_BENCH_UTIL_H_
