file(REMOVE_RECURSE
  "CMakeFiles/test_dlog_engine_edge.dir/test_dlog_engine_edge.cc.o"
  "CMakeFiles/test_dlog_engine_edge.dir/test_dlog_engine_edge.cc.o.d"
  "test_dlog_engine_edge"
  "test_dlog_engine_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dlog_engine_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
