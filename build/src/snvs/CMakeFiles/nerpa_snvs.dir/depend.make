# Empty dependencies file for nerpa_snvs.
# This may be replaced when dependencies are built.
