// The paper's §1 motivating example, runnable: incremental graph labeling
// with the two-rule Datalog program, showing exact output deltas as edges
// come and go.
//
//   $ ./build/examples/reachability
#include <cstdio>

#include "dlog/engine.h"
#include "dlog/program.h"
#include "stacks.h"

using namespace nerpa::dlog;

namespace {

Row Edge(int64_t a, int64_t b) { return {Value::Int(a), Value::Int(b)}; }

void Show(const char* what, const nerpa::Result<TxnDelta>& delta) {
  std::printf("-- %s\n", what);
  if (!delta.ok()) {
    std::printf("   error: %s\n", delta.status().ToString().c_str());
    return;
  }
  if (delta->empty()) {
    std::printf("   (no output changes)\n");
    return;
  }
  std::printf("%s", delta->ToString().c_str());
}

}  // namespace

int main() {
  // Verbatim from §1 of the paper (modulo surface syntax); the program text
  // lives in stacks.cc, shared with `nerpa_check --builtin reachability`.
  auto program = Program::Parse(nerpa::examples::ReachabilityRules());
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }
  Engine engine(*program);

  // Build a chain 0 -> 1 -> 2 with a cycle 2 -> 1, labeled from node 0.
  (void)engine.Insert("GivenLabel", {Value::Int(0), Value::String("blue")});
  (void)engine.Insert("Edge", Edge(0, 1));
  (void)engine.Insert("Edge", Edge(1, 2));
  (void)engine.Insert("Edge", Edge(2, 1));
  Show("initial topology (0->1->2, cycle 2->1, label at 0)",
       engine.Commit());

  (void)engine.Insert("Edge", Edge(2, 3));
  Show("insert edge 2->3 (only node 3 is recomputed)", engine.Commit());

  (void)engine.Delete("Edge", Edge(0, 1));
  Show("delete edge 0->1 (the 1<->2 cycle must not keep itself alive)",
       engine.Commit());

  (void)engine.Insert("Edge", Edge(0, 2));
  Show("insert edge 0->2 (labels flow back through the cycle)",
       engine.Commit());

  auto labels = engine.Dump("Label");
  std::printf("-- final Label relation (%zu rows)\n", labels->size());
  for (const Row& row : *labels) {
    std::printf("   Label%s\n", RowToString(row).c_str());
  }
  auto stats = engine.GetStats();
  std::printf("\nengine stats: %llu transactions, %llu rule firings, "
              "%zu tuples, %zu arrangement entries\n",
              static_cast<unsigned long long>(stats.transactions),
              static_cast<unsigned long long>(stats.rule_firings),
              stats.tuples, stats.arrangement_entries);
  return 0;
}
