// The Nerpa controller: the state-synchronization runtime that ties the
// three planes together (§3 "The Nerpa controller, in charge of state
// synchronization, installs the data from the controller output relations
// as entries in the programmable data plane tables").
//
// Data flow per management-plane transaction (all synchronous in-process,
// mirroring the prototype's event loop):
//
//   OVSDB commit -> monitor delta -> Datalog input delta -> incremental
//   transaction -> output delta -> P4Runtime writes (deletes then inserts)
//
// and the feedback loop (§4.2):
//
//   data-plane digest -> Datalog input insert -> incremental transaction
//   -> table writes (e.g. MAC learning)
#ifndef NERPA_NERPA_CONTROLLER_H_
#define NERPA_NERPA_CONTROLLER_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/watchdog.h"
#include "dlog/engine.h"
#include "nerpa/bindings.h"
#include "ovsdb/database.h"
#include "p4/runtime.h"

namespace nerpa {

/// Replication role of one controller in a hot-standby pair (src/ha's
/// leader lease elects the leader; the epoch is the fencing token).
///   kLeader:    owns the data plane — the only role that writes devices.
///   kFollower:  runs the full control plane hot (engine, multicast
///               bookkeeping, monitor deltas) but never writes; ready to
///               promote with a minimal-diff resync.
///   kCandidate: transient, during Promote() — devices are being fenced
///               and resynchronized but leadership is not yet assumed.
enum class Role { kLeader, kFollower, kCandidate };
const char* RoleName(Role role);

class Controller {
 public:
  /// Bounded exponential backoff for data-plane writes.  With the default
  /// max_attempts = 1 a failed write surfaces immediately (the pre-HA
  /// behaviour); recovery deployments raise it so transient device faults
  /// (see ha::FaultyRuntimeClient) are retried instead of aborting the
  /// whole delta.
  struct RetryPolicy {
    int max_attempts = 1;                      // total tries per write
    int64_t initial_backoff_nanos = 1000000;   // 1 ms before 2nd attempt
    double backoff_multiplier = 2.0;
    int64_t max_backoff_nanos = 100000000;     // 100 ms cap
  };

  /// Per-device circuit breaker (closed → open → half-open).  Retry
  /// handles the transient blip; the breaker handles the device that
  /// stays dead past the retry budget.  A write that exhausts RetryPolicy
  /// — or succeeds slower than write_timeout_nanos — is a *strike*; at
  /// strike_threshold the breaker opens and the device is quarantined:
  /// its pending deltas coalesce into a per-device outbox (bounded: one
  /// op per entry identity / multicast group) instead of failing the
  /// delta, so one dead switch never stalls or aborts the others.
  /// RunAntiEntropy() probes quarantined devices once their cooldown
  /// elapses (half-open) and replays the minimal resync diff on rejoin.
  struct BreakerPolicy {
    bool enabled = false;
    /// Consecutive strikes before the breaker opens.
    int strike_threshold = 1;
    /// Quiet period before an open breaker admits an anti-entropy probe;
    /// doubles (by cooldown_multiplier) after each failed probe.
    int64_t cooldown_nanos = 0;
    double cooldown_multiplier = 2.0;
    int64_t max_cooldown_nanos = 1000000000;   // 1 s cap
    /// A *successful* write slower than this counts as a strike (slow
    /// device ≠ healthy device); 0 disables timeout strikes.  Distinct
    /// from write failures in Stats (slow_writes vs write_failures).
    int64_t write_timeout_nanos = 0;
  };

  struct Options {
    /// Name of an (extra, hand-declared) output relation whose rows are
    /// multicast group membership instead of table entries.  Shape:
    /// ([device: string,] group: bit<16>, port: bit<16>) — device present
    /// iff the bindings were generated with a device column.
    std::string multicast_relation;

    /// Restart mode: instead of blindly installing every derived entry,
    /// Start() reads each device's actual tables (RuntimeClient::ReadTable)
    /// and multicast groups, diffs them against the desired state derived
    /// from the output relations, and applies only the minimal
    /// delete/modify/insert set — zero writes when already converged.
    bool resync_on_start = false;

    /// First digest sequence number to assign, so most-recent-wins
    /// ordering stays monotone across controller restarts (persisted by
    /// ha::DurableStore::Checkpoint).
    int64_t initial_digest_seq = 0;

    /// Engine checkpoint blob (from CheckpointEngine(), persisted through
    /// ha::DurableStore::WriteEngineCheckpoint) to warm-start from.  When
    /// non-empty, Start() restores the Datalog engine from it instead of
    /// recomputing every derivation from scratch; the first monitor
    /// snapshot is then applied as a reconciliation diff (stale rows
    /// deleted, new rows inserted), so management-plane changes that
    /// happened after the checkpoint still take effect.  Digest-derived
    /// state (e.g. learned MACs) survives intact.  A blob the engine
    /// rejects — wrong program fingerprint, corruption — is logged and
    /// ignored: Start() falls back to a cold start, never fails.
    std::string engine_checkpoint;

    /// Worker threads for data-plane dispatch.  Writes to distinct devices
    /// are independent, so each output delta is split into one ordered
    /// batch per device and the batches run concurrently on a pool —
    /// per-device write order is exactly the serial order, and a slow or
    /// retrying device no longer stalls the others.  0 = auto (one worker
    /// per registered device, capped at hardware concurrency); 1 = fully
    /// serial dispatch.  Requires each device to have its own
    /// RuntimeClient/Switch (the repo-wide convention).
    int write_parallelism = 0;

    RetryPolicy retry;

    BreakerPolicy breaker;

    /// When > 0, Start() spawns a background anti-entropy thread that
    /// calls RunAntiEntropy() at this interval (serialized against the
    /// update paths by the plane lock).  0 = pump RunAntiEntropy()
    /// explicitly — the default, matching the repo's no-hidden-threads
    /// convention.
    int64_t anti_entropy_interval_nanos = 0;

    /// Replication role at Start().  Followers track everything but write
    /// nothing (and never drain digests — those are consumed destructively
    /// and belong to the leader); Promote() turns a follower into the
    /// leader.  Default preserves the single-controller behaviour.
    Role initial_role = Role::kLeader;

    /// Initial fencing token (leader-lease epoch) stamped on every device
    /// client.  0 = unfenced single-controller deployment.
    uint64_t fence_epoch = 0;

    /// Per-commit data-plane dispatch budget (0 = unbounded, the old
    /// behaviour).  Each management-plane delta mints one deadline when
    /// its engine transaction commits; device batches check it at every
    /// op boundary, and ops left when it expires are parked in the
    /// per-device outbox for anti-entropy to drain — the commit stops
    /// consuming the plane lock, but no op is dropped.
    int64_t commit_deadline_nanos = 0;

    /// Optional shared watchdog (not owned): the commit path beats
    /// "controller.commit" per processed delta so a supervisor can tell a
    /// wedged engine from an idle one.
    Watchdog* watchdog = nullptr;
  };

  /// The database and runtime clients must outlive the controller.
  /// `p4_program` is the (validated) data-plane program the bindings were
  /// generated from; all registered devices must run it.
  Controller(ovsdb::Database* db,
             std::shared_ptr<const dlog::Program> program,
             std::shared_ptr<const p4::P4Program> p4_program,
             Bindings bindings, Options options);
  // Default-options overload (an `Options options = {}` default argument
  // would need the nested struct's member initializers before Controller
  // is complete, which [class.mem] disallows).
  Controller(ovsdb::Database* db,
             std::shared_ptr<const dlog::Program> program,
             std::shared_ptr<const p4::P4Program> p4_program,
             Bindings bindings);
  ~Controller();

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  /// Registers a data-plane device.  With device-column bindings the name
  /// routes entries; without, every entry is installed on every device.
  /// After Start() this is the "device (re)joined" path: the new device is
  /// immediately resynchronized against the current desired state (a
  /// rebooted switch arrives empty and receives everything; a switch that
  /// kept its tables across a controller restart receives only the diff).
  Status AddDevice(std::string name, p4::RuntimeClient* client);

  /// Reconciles one registered device against the desired state derived
  /// from the output relations: reads its tables and multicast groups,
  /// then applies the minimal delete/modify/insert set.  No-op writes-wise
  /// when the device is already converged.
  Status ResyncDevice(const std::string& name);

  /// Type-checks the program against the bindings, applies fact-derived
  /// outputs, and subscribes to the management plane (receiving the current
  /// contents as the first delta).  Call after AddDevice().
  Status Start();

  /// Drains digests from every device through the control plane.  Returns
  /// the first error, if any.  (In-process stand-in for the P4Runtime
  /// digest stream.)
  Status SyncDataPlaneNotifications();

  // --- Replication role machine (hot-standby failover) ---

  Role role() const { return role_.load(std::memory_order_acquire); }

  /// Follower → leader.  Stamps `epoch` (the freshly-acquired lease epoch)
  /// as the fencing token on every device client — which simultaneously
  /// raises each switch's fence high-water mark, locking the old leader
  /// out — recovers digest-sequence monotonicity from the engine's digest
  /// relations, then reconciles every device with the minimal-diff resync.
  /// On success the controller is leader; on failure it returns to
  /// follower (and the caller should release the lease).  Calling on a
  /// current leader just raises the fencing token.
  Status Promote(uint64_t epoch);

  /// Leader → follower, immediately and without blocking: in-flight device
  /// batches observe the flip at their next per-op check and abort (the
  /// existing atomic-rollback semantics — nothing partial is retried, and
  /// nothing is parked for a device the next leader now owns).  Safe to
  /// call from any thread, including from inside the write path — a
  /// fenced-out write self-demotes through here.
  void Demote();

  /// Follower hot-reload: replaces the engine with the leader's checkpoint
  /// blob (CheckpointEngine() output shipped via ha::DurableStore engine
  /// sidecars), reseeds the multicast bookkeeping, and reconciles the
  /// restored inputs against the current database contents so the follower
  /// stays hot no matter how stale the checkpoint.  Leader refuses.
  Status ReloadEngineCheckpoint(const std::string& checkpoint);

  /// One anti-entropy round: every quarantined device whose cooldown has
  /// elapsed goes half-open and is probed with a full resynchronization
  /// (the minimal read/diff/write set, which subsumes its outbox).  A
  /// device that answers rejoins (breaker closes, outbox cleared); one
  /// that doesn't returns to open with an escalated cooldown.  Never
  /// fails because of a still-dead device.
  Status RunAntiEntropy();

  struct Stats {
    uint64_t ovsdb_updates = 0;
    uint64_t dlog_txns = 0;
    uint64_t entries_inserted = 0;
    uint64_t entries_deleted = 0;
    uint64_t multicast_updates = 0;
    uint64_t digests = 0;
    uint64_t errors = 0;
    // --- HA: resynchronization ---
    uint64_t resyncs = 0;           // devices reconciled
    uint64_t resync_reads = 0;      // ReadTable/ReadMulticastGroups calls
    uint64_t resync_inserted = 0;   // missing entries installed
    uint64_t resync_deleted = 0;    // stale entries removed
    uint64_t resync_modified = 0;   // entries with wrong action repaired
    // --- HA: retry/backoff ---
    uint64_t retries = 0;           // re-attempted writes
    uint64_t write_failures = 0;    // writes that exhausted all attempts
    /// Retries refused because the shared write-retry budget ran dry (the
    /// data plane is failing faster than it succeeds; fail fast and let
    /// the breaker/anti-entropy own recovery).
    uint64_t retry_budget_exhausted = 0;
    /// Ops parked in a device outbox because the commit deadline expired
    /// mid-batch (drained later by anti-entropy, never dropped).
    uint64_t deadline_parks = 0;
    /// Per-device count of failed write attempts (including retried ones).
    std::map<std::string, uint64_t> device_failures;
    // --- robustness: circuit breakers ---
    uint64_t slow_writes = 0;       // successful writes over the timeout
    uint64_t breaker_trips = 0;     // closed → open transitions
    uint64_t breaker_probes = 0;    // half-open resync attempts
    uint64_t breaker_rejoins = 0;   // probes that closed the breaker
    uint64_t outbox_coalesced = 0;  // ops absorbed while quarantined
    uint64_t outbox_repairs = 0;    // closed-breaker devices resynced by
                                    // anti-entropy to drain a non-empty outbox
    /// Device → "closed" | "open" | "half-open".
    std::map<std::string, std::string> breaker_states;
    /// Device → coalesced ops currently pending in its outbox.
    std::map<std::string, uint64_t> outbox_sizes;
    // --- HA: engine checkpoint warm start ---
    uint64_t engine_restores = 0;           // engines loaded from checkpoint
    uint64_t engine_restore_rejections = 0; // blobs rejected (cold-started)
    uint64_t catchup_deletes = 0;           // stale input rows reconciled away
    // --- robustness: hot-standby replication ---
    uint64_t promotions = 0;                // follower → leader transitions
    uint64_t demotions = 0;                 // leader → follower transitions
    uint64_t fenced_writes_rejected = 0;    // writes refused for stale epoch
  };
  /// Snapshot of the counters (thread-safe against concurrent dispatch
  /// and the anti-entropy thread).
  Stats stats() const;

  /// Next digest sequence number to be assigned (checkpoint this through
  /// ha::DurableStore so a restarted controller keeps the order monotone).
  int64_t digest_seq() const { return digest_seq_; }

  /// Serializes the Datalog engine's derived state (between transactions)
  /// for Options::engine_checkpoint on the next start.  Persist it through
  /// ha::DurableStore::WriteEngineCheckpoint alongside the management-plane
  /// snapshot.
  Result<std::string> CheckpointEngine();

  /// First error hit inside a monitor callback (callbacks cannot return
  /// Status); ok() if none.  Snapshot under the stats lock: callbacks may
  /// set it from the service or anti-entropy thread.
  Status last_error() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return last_error_;
  }

  /// The underlying engine (introspection in tests/benches).
  dlog::Engine& engine() { return *engine_; }

 private:
  enum class BreakerState { kClosed, kOpen, kHalfOpen };

  /// One ordered unit of data-plane work for a single device: a table
  /// write, or (when `multicast` is set) a multicast group reprogram.
  struct DeviceOp {
    p4::UpdateType type = p4::UpdateType::kInsert;
    p4::TableEntry entry;
    bool multicast = false;
    uint32_t group = 0;
    std::vector<uint64_t> members;
  };

  struct Device {
    std::string name;
    p4::RuntimeClient* client;
    // --- circuit breaker (guarded by stats_mu_) ---
    BreakerState breaker = BreakerState::kClosed;
    int strikes = 0;
    int64_t cooldown_until_nanos = 0;
    int64_t next_cooldown_nanos = 0;
    /// Deltas coalesced while quarantined, keyed by entry identity
    /// (table + match + priority) or multicast group — bounded by the
    /// device's table footprint no matter how long the outage lasts.
    std::map<std::string, DeviceOp> outbox;
  };

  /// A delta's writes for one device, in serial-equivalent order.
  struct DeviceBatch {
    Device* device = nullptr;
    std::vector<DeviceOp> ops;
  };

  void OnOvsdbUpdate(const ovsdb::TableUpdates& updates);
  Status ProcessOvsdbUpdates(const ovsdb::TableUpdates& updates);
  /// Restored-engine catch-up: queues deletes for input rows the restored
  /// engine holds that the first monitor snapshot no longer contains
  /// (management-plane deletions that happened after the checkpoint).
  /// Inserts need no special handling — re-inserting a present row is a
  /// set-semantics no-op.
  Status QueueRestoredCatchUp(const ovsdb::TableUpdates& updates);
  Status ApplyOutputDelta(const dlog::TxnDelta& delta);
  /// Updates multicast membership bookkeeping and appends the resulting
  /// group reprograms to the per-device batches.
  Status ApplyMulticastDelta(const dlog::SetDelta& delta,
                             std::vector<DeviceBatch>& batches);
  /// Appends a table write to the batches of every targeted device.
  Status AppendEntryOps(std::vector<DeviceBatch>& batches,
                        const std::string& device, p4::UpdateType type,
                        const p4::TableEntry& entry);
  /// Runs each non-empty batch (per-device order preserved; distinct
  /// devices concurrent when write_parallelism allows) under `deadline`.
  /// Every batch runs to its own first error; returns the first error in
  /// device registration order.
  Status RunBatches(std::vector<DeviceBatch>& batches,
                    const Deadline& deadline);
  /// Executes one device's ops in order (worker-thread body).  Ops left
  /// when `deadline` expires are parked in the device outbox.
  Status ExecuteBatch(DeviceBatch& batch, const Deadline& deadline);
  /// One write attempt loop: runs `write` against `device` under the
  /// retry policy, maintaining retry/failure counters and breaker strikes
  /// (thread-safe).
  Status WriteWithRetry(Device& device,
                        const std::function<Status()>& write);
  /// Records one breaker strike; opens the breaker at the threshold.
  /// Caller holds stats_mu_.
  void StrikeLocked(Device& device);
  /// Moves the open breaker's cooldown forward (called after a trip or a
  /// failed probe).  Caller holds stats_mu_.
  void EscalateCooldownLocked(Device& device);
  /// Forces the breaker open (used when a rejoin resync fails).  Caller
  /// holds stats_mu_.
  void QuarantineLocked(Device& device);
  /// True (and ops absorbed into the outbox) when `device` is
  /// quarantined; ExecuteBatch then skips the device entirely.
  bool QuarantineOps(Device& device, std::vector<DeviceOp> ops);
  /// Outbox coalescing key for one op.
  std::string OutboxKey(const DeviceOp& op) const;
  /// Half-open probe of one quarantined device (resync; close on
  /// success, reopen with escalated cooldown on failure).
  void ProbeDevice(Device& device);
  Status ResyncDeviceImpl(Device& device);
  /// Reconciles every registered device, concurrently when allowed.
  Status ResyncAllDevices();
  /// Stamps `epoch` on every device client.  Caller holds sync_mu_ (or is
  /// in single-threaded setup before Start()).
  void SetFenceTokensLocked(uint64_t epoch);
  /// Presents the stamped token to every switch (P4Runtime arbitration
  /// analog) so their fence high-water marks rise before any write.
  /// Caller holds sync_mu_.
  Status ArbitrateAllLocked();
  /// Raises digest_seq_ above every sequence number present in the
  /// engine's digest relations, so most-recent-wins ordering survives a
  /// failover (a new leader must never reissue a sequence number the old
  /// leader already assigned).  Caller holds sync_mu_.
  void RecoverDigestSeqLocked();
  /// Worker count for `jobs` parallel device tasks under Options.
  size_t DispatchWorkers(size_t jobs) const;
  /// The dispatch pool, (re)sized to at least `want` workers.
  ThreadPool& Pool(size_t want);

  ovsdb::Database* db_;
  std::shared_ptr<const dlog::Program> program_;
  std::shared_ptr<const p4::P4Program> p4_program_;
  Bindings bindings_;
  Options options_;
  std::unique_ptr<dlog::Engine> engine_;
  std::vector<Device> devices_;
  uint64_t monitor_id_ = 0;
  bool started_ = false;
  // Start()-with-resync runs the initial delta with device writes
  // suppressed (desired state accumulates in the engine), then reconciles
  // each device against it.
  bool suppress_writes_ = false;
  // Set when Start() restored the engine from a checkpoint; consumed by
  // the first ProcessOvsdbUpdates to run the catch-up reconciliation.
  bool reconcile_restored_ = false;
  int64_t digest_seq_ = 0;
  /// Replication role.  Atomic so the write path can observe a demotion
  /// mid-batch without taking sync_mu_ (a fenced-out ExecuteBatch worker
  /// self-demotes while the monitor callback holds the plane lock).
  std::atomic<Role> role_{Role::kLeader};
  /// Current fencing token (lease epoch) stamped on device clients.
  std::atomic<uint64_t> fence_epoch_{0};
  // (device, group) -> member ports, for multicast reprogramming.
  std::map<std::pair<std::string, uint32_t>, std::vector<uint64_t>>
      multicast_members_;
  std::unique_ptr<ThreadPool> pool_;  // lazily sized to the device count
  /// Plane lock: serializes engine/bookkeeping access between the update
  /// paths (monitor callback, digest drain) and anti-entropy (explicit or
  /// background-thread).  Per-device dispatch below it stays concurrent.
  std::mutex sync_mu_;
  mutable std::mutex stats_mu_;  // guards stats_ + breaker state + last_error_
  Stats stats_;
  Status last_error_;
  /// One budget for every device's write retries (see common/retry.h):
  /// healthy writes deposit, each retry withdraws.  Thread-safe itself;
  /// kept outside stats_mu_ to avoid lock nesting in the write path.
  RetryBudget write_retry_budget_{32.0, 0.1};
  /// Jitter state for breaker cooldowns (guarded by stats_mu_, like the
  /// breaker fields it randomizes).
  uint64_t breaker_rng_ = 0x9e3779b97f4a7c15ULL;
  // Background anti-entropy loop (Options.anti_entropy_interval_nanos).
  std::thread anti_entropy_thread_;
  std::mutex anti_entropy_mu_;
  std::condition_variable anti_entropy_cv_;
  bool stopping_ = false;
};

}  // namespace nerpa

#endif  // NERPA_NERPA_CONTROLLER_H_
