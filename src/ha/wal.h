// Write-ahead log for the management plane.
//
// One JSON record per line, appended and flushed after every committed
// OVSDB transaction (via Database::AddCommitHook).  Records are the
// uuid-pinned "transact" operation arrays, so replaying them through
// Database::Transact reproduces the exact row identities and contents.
//
// Crash tolerance: a process death mid-append leaves at most one
// truncated final line; Replay() detects and drops it (the transaction it
// belonged to was never acknowledged as durable).  A malformed record
// *before* the tail is corruption and fails the replay.
#ifndef NERPA_HA_WAL_H_
#define NERPA_HA_WAL_H_

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>

#include "common/json.h"
#include "common/status.h"

namespace nerpa::ha {

class WriteAheadLog {
 public:
  /// Opens (creating if missing) the log at `path` for appending.
  static Result<WriteAheadLog> Open(const std::string& path);

  WriteAheadLog(WriteAheadLog&&) = default;
  WriteAheadLog& operator=(WriteAheadLog&&) = default;

  const std::string& path() const { return path_; }

  /// Appends one record and flushes it to the OS.
  Status Append(const Json& record);

  /// Invokes `apply` on every well-formed record in file order.  Stops
  /// with the error if `apply` fails.  A truncated or unparseable *final*
  /// record is dropped (interrupted append), counted in
  /// truncated_tail_records().
  Status Replay(const std::function<Status(const Json&)>& apply);

  /// Truncates the log to empty — called after a snapshot subsumes the
  /// logged transactions (log compaction).
  Status Reset();

  uint64_t records_appended() const { return records_appended_; }
  uint64_t records_replayed() const { return records_replayed_; }
  uint64_t truncated_tail_records() const { return truncated_tail_records_; }

 private:
  explicit WriteAheadLog(std::string path) : path_(std::move(path)) {}

  std::string path_;
  std::ofstream out_;
  uint64_t records_appended_ = 0;
  uint64_t records_replayed_ = 0;
  uint64_t truncated_tail_records_ = 0;
};

}  // namespace nerpa::ha

#endif  // NERPA_HA_WAL_H_
