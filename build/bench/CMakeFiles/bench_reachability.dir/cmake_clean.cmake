file(REMOVE_RECURSE
  "CMakeFiles/bench_reachability.dir/bench_reachability.cc.o"
  "CMakeFiles/bench_reachability.dir/bench_reachability.cc.o.d"
  "bench_reachability"
  "bench_reachability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
