// Cross-plane binding generation — the heart of Nerpa's co-design story
// (§3, §4.2 of the paper):
//
//   * every OVSDB table        ->  a control-plane *input* relation
//   * every P4 packet digest   ->  a control-plane *input* relation
//   * every P4 match-action table -> a control-plane *output* relation
//
// plus the generated conversion functions between OVSDB datums, Datalog
// values, and P4Runtime table entries ("generated helper functions in Rust"
// in the prototype; plain C++ here).  TypeCheck() verifies a user-written
// control-plane program against the generated declarations, which is what
// makes the three planes type-check *together*.
//
// Generated relation shapes:
//   OVSDB table T(c1, .., cn)   =>  input relation T(_uuid: string, c1.., cn)
//     integer->bigint, boolean->bool, string->string, uuid->string,
//     set/optional columns -> Vec<elem>, map columns -> Vec<(key, value)>.
//     (OVSDB "real" columns are rejected: the Datalog dialect is float-free.)
//   P4 digest D{f1: bit<w1>, ...}  =>  input relation D([device: string,]
//     f1: bit<w1>, ..., [seq: bigint])
//   P4 table T with keys k1..kn =>  output relation T([device: string,]
//     per key: exact  -> <k>: bit<w>
//              lpm    -> <k>: bit<w>, <k>_plen: bigint
//              ternary-> <k>: bit<w>, <k>_mask: bit<w>
//              range  -> <k>_lo: bit<w>, <k>_hi: bit<w>
//              optional -> <k>: bit<w>, <k>_present: bool
//     [priority: bigint when any ternary/range/optional key exists]
//     action: string, then one column per distinct parameter name across
//     the table's permitted actions: <param>: bit<w>.
//   Key column names are the P4 field references with '.' -> '_'.
#ifndef NERPA_NERPA_BINDINGS_H_
#define NERPA_NERPA_BINDINGS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "dlog/engine.h"
#include "dlog/program.h"
#include "ovsdb/database.h"
#include "p4/entry.h"
#include "p4/interpreter.h"
#include "p4/ir.h"

namespace nerpa {

struct BindingOptions {
  /// Prepend a `device: string` column to digest inputs and table outputs,
  /// enabling per-device routing (multi-switch deployments).
  bool with_device_column = false;
  /// Append a controller-assigned `seq: bigint` column to digest inputs so
  /// programs can order notifications (most-recent-wins MAC learning).
  bool with_digest_seq = false;
};

/// How one column of a generated table-output relation is consumed when
/// converting a Datalog row into a P4Runtime entry.
struct EntryColumn {
  enum class Role {
    kDevice,       // device name
    kKeyValue,     // match value of key `key_index`
    kKeyPlen,      // LPM prefix length
    kKeyMask,      // ternary mask
    kKeyLow,       // range low (kKeyValue doubles as exact/optional value)
    kKeyHigh,      // range high
    kKeyPresent,   // optional present flag
    kPriority,
    kActionName,
    kActionParam,  // parameter `param_name`
  };
  Role role = Role::kKeyValue;
  int key_index = -1;
  std::string param_name;
};

struct TableBinding {
  std::string relation;  // == P4 table name
  std::string p4_table;
  std::vector<EntryColumn> columns;  // parallel to the relation's columns
  bool has_priority = false;
};

struct DigestBinding {
  std::string relation;  // == digest name
  std::string digest;
  bool has_device = false;
  bool has_seq = false;
};

struct OvsdbBinding {
  std::string relation;  // == OVSDB table name
  std::string table;
};

/// The full set of generated declarations plus conversion metadata.
struct Bindings {
  BindingOptions options;
  std::vector<dlog::RelationDecl> inputs;
  std::vector<dlog::RelationDecl> outputs;
  std::vector<OvsdbBinding> ovsdb_tables;
  std::vector<DigestBinding> digests;
  std::vector<TableBinding> tables;

  const TableBinding* FindTable(std::string_view relation) const;
  const DigestBinding* FindDigest(std::string_view digest) const;
  const OvsdbBinding* FindOvsdbTable(std::string_view table) const;

  /// The generated declarations as Datalog-dialect source, ready to be
  /// prepended to a hand-written rules file.
  std::string DeclsText() const;
};

/// Generates the bindings for a management-plane schema and a data-plane
/// program (which must be validated).
Result<Bindings> GenerateBindings(const ovsdb::DatabaseSchema& schema,
                                  const p4::P4Program& program,
                                  const BindingOptions& options = {});

/// The cross-plane type check: every generated declaration must appear in
/// `program` with the same role, column names, and column types.
Status TypeCheck(const dlog::Program& program, const Bindings& bindings);

// --- Generated data-movement helpers ---

/// OVSDB row -> Datalog row for the generated input relation.
Result<dlog::Row> OvsdbRowToDlog(const ovsdb::TableSchema& schema,
                                 const ovsdb::Row& row);

/// Digest message -> Datalog row (device/seq appended per binding flags).
dlog::Row DigestToDlog(const DigestBinding& binding,
                       const p4::DigestMessage& message,
                       const std::string& device, int64_t seq);

/// Datalog output row -> P4Runtime table entry (+ device name when the
/// bindings carry one; empty string otherwise).
Result<std::pair<std::string, p4::TableEntry>> DlogRowToEntry(
    const TableBinding& binding, const p4::P4Program& program,
    const dlog::Row& row);

}  // namespace nerpa

#endif  // NERPA_NERPA_BINDINGS_H_
