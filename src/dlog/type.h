// Static types for the Datalog dialect.
//
// DDlog's pitch (§4.1 "Types for correctness") is a real type system over
// relations; this is the C++ mirror: scalars, bit<N>, strings, tuples, and
// vectors, with structural equality and a printable surface form.
#ifndef NERPA_DLOG_TYPE_H_
#define NERPA_DLOG_TYPE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "dlog/value.h"

namespace nerpa::dlog {

/// A structural type.
struct Type {
  enum class Kind { kBool, kInt, kBit, kString, kTuple, kVec };

  Kind kind = Kind::kInt;
  int width = 0;             // kBit: 1..64
  std::vector<Type> elems;   // kTuple: element types; kVec: one element type

  static Type Bool() { return Type{Kind::kBool, 0, {}}; }
  static Type Int() { return Type{Kind::kInt, 0, {}}; }
  static Type Bit(int width) { return Type{Kind::kBit, width, {}}; }
  static Type String() { return Type{Kind::kString, 0, {}}; }
  static Type Tuple(std::vector<Type> elems) {
    return Type{Kind::kTuple, 0, std::move(elems)};
  }
  static Type Vec(Type elem) { return Type{Kind::kVec, 0, {std::move(elem)}}; }

  bool is_numeric() const { return kind == Kind::kInt || kind == Kind::kBit; }

  bool operator==(const Type& o) const;
  bool operator!=(const Type& o) const { return !(*this == o); }

  /// Surface syntax: "bool", "bigint", "bit<12>", "string", "(t1, t2)",
  /// "Vec<t>".
  std::string ToString() const;

  /// Checks that `value` inhabits this type (including bit-width range).
  Status CheckValue(const Value& value) const;

  /// The zero/default value of the type.
  Value DefaultValue() const;

  /// Masks a raw u64 to this bit type's width.
  uint64_t MaskBits(uint64_t raw) const {
    if (width >= 64) return raw;
    return raw & ((uint64_t{1} << width) - 1);
  }
};

/// One column of a relation.
struct Column {
  std::string name;
  Type type;
  int line = 0;  // source span of the column name (0 = generated)
  int col = 0;

  bool operator==(const Column& o) const {
    return name == o.name && type == o.type;  // spans are not identity
  }
};

/// Where a relation's tuples come from (§3's three roles).
enum class RelationRole {
  kInput,    // fed by the management plane or data-plane digests
  kInternal, // intermediate view
  kOutput,   // consumed by the data plane (match-action table contents)
};

const char* RelationRoleName(RelationRole role);

/// A relation declaration: `input relation Port(id: bit<32>, ...)`.
struct RelationDecl {
  std::string name;
  RelationRole role = RelationRole::kInternal;
  std::vector<Column> columns;
  int line = 0;  // source span of the relation name (0 = generated)
  int col = 0;

  int FindColumn(std::string_view column_name) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].name == column_name) return static_cast<int>(i);
    }
    return -1;
  }

  /// Validates a row against the column types.
  Status CheckRow(const Row& row) const;

  /// Surface form, e.g. "input relation Port(id: bit<32>)".
  std::string ToString() const;
};

}  // namespace nerpa::dlog

#endif  // NERPA_DLOG_TYPE_H_
