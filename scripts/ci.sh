#!/bin/sh
# Tier-1 verification, run twice: a plain build, and a build instrumented
# with AddressSanitizer + UndefinedBehaviorSanitizer (the durability layer
# does enough raw file and lifetime juggling that the sanitizers earn
# their keep).
#   scripts/ci.sh [jobs]
set -eu
JOBS="${1:-$(nproc)}"

run_suite() {
  build_dir="$1"; shift
  echo "=== configure $build_dir ($*) ==="
  cmake -B "$build_dir" -S . "$@"
  echo "=== build $build_dir ==="
  cmake --build "$build_dir" -j "$JOBS"
  echo "=== test $build_dir ==="
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"
}

run_suite build-ci
run_suite build-ci-asan \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"

echo "CI: both suites passed"
