// Unit tests for the common substrate: Status/Result, strings, JSON,
// deadlines, retry backoff/budgets, and the watchdog registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/deadline.h"
#include "common/json.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/watchdog.h"

namespace nerpa {
namespace {

TEST(Status, OkAndErrors) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "ok");

  Status err = TypeError("mismatch");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kTypeError);
  EXPECT_EQ(err.ToString(), "type error: mismatch");
}

TEST(Status, ResultHoldsValueOrStatus) {
  Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);

  Result<int> bad(NotFound("nope"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(Status, MacrosPropagate) {
  auto fails = []() -> Status { return InvalidArgument("x"); };
  auto wrapper = [&]() -> Status {
    NERPA_RETURN_IF_ERROR(fails());
    return Internal("unreachable");
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInvalidArgument);

  auto makes = []() -> Result<int> { return 7; };
  auto assigns = [&]() -> Result<int> {
    NERPA_ASSIGN_OR_RETURN(int v, makes());
    return v + 1;
  };
  EXPECT_EQ(*assigns(), 8);
}

TEST(Strings, SplitJoinTrim) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Join({"x", "y"}, "::"), "x::y");
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
}

TEST(Strings, Predicates) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_TRUE(IsIdentifier("_x9"));
  EXPECT_FALSE(IsIdentifier("9x"));
  EXPECT_FALSE(IsIdentifier(""));
  EXPECT_FALSE(IsIdentifier("a-b"));
}

TEST(Strings, FormatAndQuote) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(QuoteString("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
}

TEST(Strings, CountCodeLines) {
  EXPECT_EQ(CountCodeLines("a\n\n// comment\nb\n# hash\n-- dash\n c "), 3);
}

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Json::Parse("null")->is_null());
  EXPECT_EQ(Json::Parse("true")->as_bool(), true);
  EXPECT_EQ(Json::Parse("-42")->as_integer(), -42);
  EXPECT_DOUBLE_EQ(Json::Parse("2.5e2")->as_double(), 250.0);
  EXPECT_EQ(Json::Parse("\"hi\\n\"")->as_string(), "hi\n");
}

TEST(Json, ParseNested) {
  auto doc = Json::Parse(R"({"a": [1, {"b": false}], "c": "x"})");
  ASSERT_TRUE(doc.ok());
  const Json* a = doc->Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->as_array()[0].as_integer(), 1);
  EXPECT_EQ(a->as_array()[1].Find("b")->as_bool(), false);
  EXPECT_EQ(doc->Find("c")->as_string(), "x");
  EXPECT_EQ(doc->Find("missing"), nullptr);
}

TEST(Json, RoundTrip) {
  const char* cases[] = {
      R"({"a":1,"b":[true,null,"s"],"c":{"d":-7}})",
      R"([])",
      R"([[1,2],[3]])",
      R"("é")",
  };
  for (const char* text : cases) {
    auto doc = Json::Parse(text);
    ASSERT_TRUE(doc.ok()) << text;
    auto again = Json::Parse(doc->Dump());
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*doc, *again) << text;
  }
}

TEST(Json, Errors) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":}").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
}

TEST(Json, IntegerPrecisionPreserved) {
  int64_t big = 9007199254740993LL;  // not representable as double
  auto doc = Json::Parse(std::to_string(big));
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(doc->is_integer());
  EXPECT_EQ(doc->as_integer(), big);
}

TEST(Deadline, DefaultIsInfinite) {
  Deadline forever;
  EXPECT_TRUE(forever.infinite());
  EXPECT_FALSE(forever.expired());
  EXPECT_EQ(forever.remaining_nanos(), Deadline::kInfinite);
  EXPECT_EQ(forever.remaining_ms(250), 250);
  EXPECT_TRUE(CheckDeadline(forever, "anything").ok());
}

TEST(Deadline, ExpiryAndRemaining) {
  Deadline at = Deadline::AtNanos(1000);
  EXPECT_FALSE(at.expired(999));
  EXPECT_TRUE(at.expired(1000));
  EXPECT_TRUE(at.expired(5000));
  EXPECT_EQ(at.remaining_nanos(400), 600);
  EXPECT_EQ(at.remaining_nanos(2000), 0);

  // AfterNanos with a non-positive budget is already expired.
  EXPECT_TRUE(Deadline::AfterNanos(0).expired());
  EXPECT_TRUE(Deadline::AfterNanos(-5).expired());
  EXPECT_FALSE(Deadline::AfterNanos(60'000'000'000).expired());

  Status check = CheckDeadline(Deadline::AfterNanos(0), "commit");
  ASSERT_FALSE(check.ok());
  EXPECT_EQ(check.code(), StatusCode::kDeadlineExceeded);
}

TEST(Deadline, MinTightens) {
  Deadline early = Deadline::AtNanos(100);
  Deadline late = Deadline::AtNanos(900);
  EXPECT_EQ(early.Min(late).nanos(), 100);
  EXPECT_EQ(late.Min(early).nanos(), 100);
  EXPECT_EQ(late.Min(Deadline()).nanos(), 900);  // infinite never wins
}

TEST(Deadline, RemainingMsClampsToCeiling) {
  Deadline soon = Deadline::AfterNanos(3'000'000);  // 3 ms
  int ms = soon.remaining_ms(1000);
  EXPECT_GE(ms, 0);
  EXPECT_LE(ms, 3);
  EXPECT_EQ(Deadline::AfterNanos(10'000'000'000).remaining_ms(50), 50);
}

TEST(Backoff, GrowsToCapAndJitterStaysBounded) {
  BackoffPolicy policy;
  policy.initial_nanos = 1000;
  policy.multiplier = 2.0;
  policy.max_nanos = 8000;
  policy.jitter_frac = 0.2;
  Backoff backoff(policy, 42);
  int64_t nominal = 1000;
  for (int i = 0; i < 10; ++i) {
    int64_t delay = backoff.NextDelayNanos();
    EXPECT_GE(delay, static_cast<int64_t>(static_cast<double>(nominal) * 0.8));
    EXPECT_LE(delay, static_cast<int64_t>(static_cast<double>(nominal) * 1.2));
    nominal = std::min<int64_t>(8000, nominal * 2);
  }
  // Reset restarts the schedule at the initial delay.
  backoff.Reset();
  int64_t first = backoff.NextDelayNanos();
  EXPECT_LE(first, 1200);
}

TEST(Backoff, DeterministicPerSeedDistinctAcrossSeeds) {
  BackoffPolicy policy;
  Backoff a(policy, 7), b(policy, 7), c(policy, 8);
  bool diverged = false;
  for (int i = 0; i < 8; ++i) {
    int64_t va = a.NextDelayNanos();
    EXPECT_EQ(va, b.NextDelayNanos());  // same seed, same schedule
    if (va != c.NextDelayNanos()) diverged = true;
  }
  EXPECT_TRUE(diverged) << "different seeds produced identical jitter";
}

TEST(JitterNanos, BoundedAndAdvancesState) {
  uint64_t rng = 12345;
  uint64_t before = rng;
  int64_t jittered = JitterNanos(1'000'000, 0.25, &rng);
  EXPECT_NE(rng, before);
  EXPECT_GE(jittered, 750'000);
  EXPECT_LE(jittered, 1'250'000);
}

TEST(RetryBudget, WithdrawalsDrainAndSuccessesRefill) {
  RetryBudget budget(2.0, 0.5);
  EXPECT_TRUE(budget.TryWithdraw());
  EXPECT_TRUE(budget.TryWithdraw());
  EXPECT_FALSE(budget.TryWithdraw());  // drained
  EXPECT_EQ(budget.exhausted(), 1u);

  // Two successes deposit one token (ratio 0.5).
  budget.RecordSuccess();
  budget.RecordSuccess();
  EXPECT_TRUE(budget.TryWithdraw());
  EXPECT_FALSE(budget.TryWithdraw());
  EXPECT_EQ(budget.exhausted(), 2u);

  // Deposits cap at max_tokens.
  for (int i = 0; i < 100; ++i) budget.RecordSuccess();
  EXPECT_LE(budget.tokens(), 2.0);
}

TEST(Watchdog, BeatsAndStuckDetection) {
  Watchdog watchdog;
  watchdog.Beat("pump");
  EXPECT_FALSE(watchdog.Stuck("pump", MonotonicNanos()));
  EXPECT_FALSE(watchdog.Stuck("never-registered", MonotonicNanos()));

  // An armed op within budget is healthy; past it, stuck.
  int64_t now = MonotonicNanos();
  watchdog.Arm("wal", 1'000'000'000);
  EXPECT_FALSE(watchdog.Stuck("wal", now));
  EXPECT_TRUE(watchdog.Stuck("wal", now + 2'000'000'000));
  std::vector<std::string> stuck =
      watchdog.StuckSubsystems(now + 2'000'000'000);
  ASSERT_EQ(stuck.size(), 1u);
  EXPECT_EQ(stuck[0], "wal");

  // Disarm ends the promise (and counts as a heartbeat).
  watchdog.Disarm("wal");
  EXPECT_FALSE(watchdog.Stuck("wal", now + 2'000'000'000));
  auto snapshot = watchdog.Snapshot(MonotonicNanos());
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot.at("pump").beats, 1u);
  EXPECT_GE(snapshot.at("wal").beats, 1u);
  EXPECT_FALSE(snapshot.at("wal").stuck);
}

}  // namespace
}  // namespace nerpa
