# Empty dependencies file for bench_loc_table.
# This may be replaced when dependencies are built.
