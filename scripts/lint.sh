#!/bin/sh
# clang-tidy over every translation unit in src/, tools/, and bench/,
# driven by a compile_commands.json from a dedicated build tree.  Findings
# fail the script (WarningsAsErrors: '*' in .clang-tidy), making this a CI
# gate; run it locally before pushing.
#
#   scripts/lint.sh [jobs]
#
# When clang-tidy is not installed (e.g. a minimal container), the script
# prints a notice and exits 0 — the gate is enforced where the toolchain
# exists (the GitHub Actions runner installs clang-tidy explicitly).
set -eu
JOBS="${1:-$(nproc)}"

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "lint: $TIDY not found; skipping (install clang-tidy to enable)"
  exit 0
fi

BUILD_DIR="${LINT_BUILD_DIR:-build-lint}"
cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

# run-clang-tidy parallelizes across TUs when available; fall back to a
# plain xargs loop otherwise.
FILES=$(find src tools bench -name '*.cc' -o -name '*.cpp' | sort)
if command -v run-clang-tidy >/dev/null 2>&1; then
  # shellcheck disable=SC2086  # file list is intentionally word-split
  run-clang-tidy -quiet -j "$JOBS" -p "$BUILD_DIR" -clang-tidy-binary "$TIDY" \
    $FILES
else
  echo "$FILES" | xargs -P "$JOBS" -n 1 "$TIDY" -quiet -p "$BUILD_DIR"
fi
echo "lint: clean"
