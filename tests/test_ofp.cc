// Unit tests for the OpenFlow-style layer: masked matching, priorities,
// groups/clones, cookie accounting, and the p4c-of lowering rules.
#include <gtest/gtest.h>

#include <fstream>

#include "baseline/fragments.h"
#include "ofp/p4c_of.h"
#include "p4/text.h"
#include "snvs/snvs.h"

namespace nerpa::ofp {
namespace {

TEST(OfMatch, MaskedMatching) {
  OfMatch match{"f", 0x1200, 0xFF00};
  EXPECT_TRUE(match.Matches(0x12AB));
  EXPECT_FALSE(match.Matches(0x13AB));
}

TEST(FlowSwitch, PriorityAndFallthrough) {
  FlowSwitch sw;
  sw.SetEgressBoundary(10);
  Flow low;
  low.table_id = 0;
  low.priority = 1;
  low.actions = {{OfAction::Kind::kOutput, "", 1}};
  low.cookie = "low";
  Flow high;
  high.table_id = 0;
  high.priority = 9;
  high.match = {{"meta.x", 5, ~uint64_t{0}}};
  high.actions = {{OfAction::Kind::kOutput, "", 2}};
  high.cookie = "high";
  sw.AddFlow(low);
  sw.AddFlow(high);

  auto out = sw.Process({{"meta.x", 5}}, 99);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].port, 2u);  // high priority wins
  out = sw.Process({{"meta.x", 6}}, 99);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].port, 1u);  // falls to the catch-all
}

TEST(FlowSwitch, LaterTableOverridesVerdict) {
  FlowSwitch sw;
  sw.SetEgressBoundary(10);
  Flow first;
  first.table_id = 0;
  first.actions = {{OfAction::Kind::kOutput, "", 1}};
  Flow second;
  second.table_id = 1;
  second.actions = {{OfAction::Kind::kDrop, "", 0}};
  sw.AddFlow(first);
  sw.AddFlow(second);
  EXPECT_TRUE(sw.Process({}, 9).empty());  // drop wins, it came later
}

TEST(FlowSwitch, GroupsReplicateWithSourcePruning) {
  FlowSwitch sw;
  sw.SetEgressBoundary(10);
  Flow flood;
  flood.table_id = 0;
  flood.actions = {{OfAction::Kind::kGroup, "", 7}};
  sw.AddFlow(flood);
  sw.SetGroup(7, {1, 2, 3});
  auto out = sw.Process({}, 2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].port, 1u);
  EXPECT_EQ(out[1].port, 3u);
}

TEST(FlowSwitch, CookieAccounting) {
  FlowSwitch sw;
  for (int i = 0; i < 3; ++i) {
    Flow flow;
    flow.table_id = 0;
    flow.cookie = i < 2 ? "a" : "b";
    sw.AddFlow(flow);
  }
  auto by_cookie = sw.FlowsByCookie();
  EXPECT_EQ(by_cookie["a"], 2u);
  EXPECT_EQ(by_cookie["b"], 1u);
  EXPECT_EQ(sw.RemoveByCookie("a"), 2u);
  EXPECT_EQ(sw.FlowCount(), 1u);
}

TEST(P4cOf, LayoutMergesBranchesAndGuards) {
  auto program = snvs::SnvsP4Program();
  auto layout = PlanLayout(*program);
  ASSERT_TRUE(layout.ok()) << layout.status().ToString();
  // The two admission tables share a table id (mutually exclusive guards).
  EXPECT_EQ(layout->table_ids.at("InVlanTagged"),
            layout->table_ids.at("InVlanUntagged"));
  // Their guards test opposite vlan validity.
  const auto& tagged = layout->table_guards.at("InVlanTagged");
  const auto& untagged = layout->table_guards.at("InVlanUntagged");
  ASSERT_EQ(tagged.size(), 1u);
  ASSERT_EQ(untagged.size(), 1u);
  EXPECT_EQ(tagged[0].field, "vlan._valid");
  EXPECT_NE(tagged[0].value, untagged[0].value);
  // Egress table sits past the boundary.
  EXPECT_GE(layout->table_ids.at("OutVlan"), layout->egress_boundary);
  // FloodVlan is guarded by meta.forwarded == 0.
  const auto& flood = layout->table_guards.at("FloodVlan");
  ASSERT_EQ(flood.size(), 1u);
  EXPECT_EQ(flood[0].field, "meta.forwarded");
}

TEST(P4cOf, LowersEntryKindsAndPriorities) {
  auto program = snvs::SnvsP4Program();
  auto layout = PlanLayout(*program);
  ASSERT_TRUE(layout.ok());
  p4::TableEntry entry;
  entry.table = "Dmac";
  entry.match = {p4::MatchField::Exact(10), p4::MatchField::Exact(0xAB)};
  entry.action = "Forward";
  entry.action_args = {3};
  auto flow = LowerEntry(*program, *layout, entry);
  ASSERT_TRUE(flow.ok()) << flow.status().ToString();
  EXPECT_EQ(flow->table_id, layout->table_ids.at("Dmac"));
  ASSERT_EQ(flow->actions.size(), 2u);  // output + set forwarded
  EXPECT_EQ(flow->actions[0].kind, OfAction::Kind::kOutput);
  EXPECT_EQ(flow->actions[0].value, 3u);
  EXPECT_EQ(flow->actions[1].kind, OfAction::Kind::kSetField);
  // Exact keys become fully-masked matches.
  bool found = false;
  for (const OfMatch& match : flow->match) {
    if (match.field == "ethernet.dstAddr") {
      EXPECT_EQ(match.value, 0xABu);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(P4cOf, DigestLowersToWarning) {
  auto stack = snvs::BuildSnvsStack();
  ASSERT_TRUE(stack.ok());
  std::vector<std::string> warnings;
  OfLayout layout;
  auto flows = CompileP4ToOf((*stack)->device(), &layout, &warnings);
  ASSERT_TRUE(flows.ok()) << flows.status().ToString();
  // The SMac default action (Learn = digest) produced a warning.
  bool digest_warning = false;
  for (const std::string& warning : warnings) {
    if (warning.find("MacLearn") != std::string::npos) digest_warning = true;
  }
  EXPECT_TRUE(digest_warning);
}

TEST(P4cOf, PacketFieldRoundTrip) {
  auto program = snvs::SnvsP4Program();
  net::Packet frame = net::MakeEthernetFrame(
      net::Mac(1, 2, 3, 4, 5, 6), net::Mac(7, 8, 9, 10, 11, 12), 0x0800,
      {}, 0x0AB);
  auto fields = PacketToFields(*program, frame);
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(fields->at("vlan.vid"), 0x0ABu);
  EXPECT_EQ(fields->at("vlan._valid"), 1u);
  net::Packet back = FieldsToPacket(*program, *fields);
  EXPECT_EQ(back, frame);  // zero payload: exact reconstruction
}

TEST(Fragments, FeatureEmittersMatchDeclaredSizes) {
  // Keep FeatureInfo::imperative_loc in sync with the actual emitter code:
  // measure each EmitX body from the source file.
  std::ifstream source(baseline::kFragmentsSourcePath);
  if (!source) GTEST_SKIP() << "source tree not available";
  std::string text((std::istreambuf_iterator<char>(source)),
                   std::istreambuf_iterator<char>());
  int emitters = 0;
  size_t pos = 0;
  const std::string needle = "void FragmentController::Emit";
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    // Skip the shared Emit() helper; feature emitters are EmitL2..., etc.
    char next = text[pos + needle.size()];
    size_t end = text.find("\n}\n", pos);
    ASSERT_NE(end, std::string::npos);
    if (next >= 'A' && next <= 'Z') ++emitters;
    pos = end;
  }
  EXPECT_EQ(emitters, 12);
  // Sanity: declared LOC totals are within 2x of a crude measure (the
  // numbers feed the Fig. 3 bench, they must stay plausible).
  int declared = 0;
  for (const auto& feature : baseline::Features()) {
    declared += feature.imperative_loc;
  }
  EXPECT_GT(declared, 12 * 10);
  EXPECT_LT(declared, 12 * 80);
}

TEST(Fragments, UnifiedRulesCompileAtEveryPrefix) {
  for (int count = 0; count <= 12; ++count) {
    auto program = dlog::Program::Parse(
        baseline::UnifiedFeatureRules(count));
    EXPECT_TRUE(program.ok())
        << "prefix " << count << ": " << program.status().ToString();
  }
}

TEST(Fragments, RuleCountsMatchFeatureTable) {
  // datalog_rules in the feature table must equal the actual rule deltas.
  int previous = 0;
  for (int count = 1; count <= 12; ++count) {
    auto program = dlog::Program::Parse(
        baseline::UnifiedFeatureRules(count));
    ASSERT_TRUE(program.ok());
    int rules = static_cast<int>((*program)->rules().size());
    EXPECT_EQ(rules - previous,
              baseline::Features()[static_cast<size_t>(count - 1)]
                  .datalog_rules)
        << "feature " << count - 1;
    previous = rules;
  }
}


TEST(P4cOf, LpmDifferentialAgainstInterpreter) {
  // An LPM routing pipeline lowered to flows must pick the same routes as
  // the interpreter for every prefix-length relationship.
  auto program = p4::ParseP4Text(R"p4(
    header ethernet { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
    header ipv4 { bit<8> ttl; bit<32> src; bit<32> dst; }
    parser {
      state start {
        extract(ethernet);
        select (ethernet.etherType) { 0x0800: parse_ipv4; default: accept; }
      }
      state parse_ipv4 { extract(ipv4); goto accept; }
    }
    action Discard() { drop(); }
    action Route(bit<16> port) { output(port); }
    table IpRoute {
      key = { ipv4.dst: lpm; }
      actions = { Route; }
      default_action = Discard;
    }
    ingress { if (valid(ipv4)) { apply(IpRoute); } }
    egress { }
    deparser { emit(ethernet); emit(ipv4); }
  )p4");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  p4::Switch device(*program);
  p4::RuntimeClient client(&device);
  auto route = [&](uint64_t prefix, int plen, uint64_t port) {
    p4::TableEntry entry;
    entry.table = "IpRoute";
    entry.match = {p4::MatchField::Lpm(prefix, plen)};
    entry.action = "Route";
    entry.action_args = {port};
    ASSERT_TRUE(client.Insert(entry).ok());
  };
  route(0x0A000000, 8, 1);
  route(0x0A010000, 16, 2);
  route(0x0A010200, 24, 3);
  route(0x00000000, 0, 9);  // default route

  OfLayout layout;
  auto flows = CompileP4ToOf(device, &layout, nullptr);
  ASSERT_TRUE(flows.ok()) << flows.status().ToString();

  auto make_packet = [](uint32_t dst) {
    net::PacketWriter writer;
    writer.WriteMac(net::Mac(0, 0, 0, 0, 0, 2));
    writer.WriteMac(net::Mac(0, 0, 0, 0, 0, 1));
    writer.WriteU16(0x0800);
    writer.WriteU8(64);
    writer.WriteU32(0x01020304);
    writer.WriteU32(dst);
    return writer.Finish();
  };
  for (uint32_t dst : {0x0A010203u, 0x0A01FF00u, 0x0AFF0000u, 0x0B000000u,
                       0xC0A80001u, 0x0A010201u}) {
    net::Packet packet = make_packet(dst);
    auto p4_out = device.ProcessPacket(p4::PacketIn{1, packet});
    ASSERT_TRUE(p4_out.ok());
    auto fields = PacketToFields(**program, packet);
    ASSERT_TRUE(fields.ok());
    auto of_out = flows->Process(*fields, 1);
    ASSERT_EQ(p4_out->size(), of_out.size()) << "dst " << dst;
    if (!p4_out->empty()) {
      EXPECT_EQ((*p4_out)[0].port, of_out[0].port) << "dst " << dst;
    }
  }
}

}  // namespace
}  // namespace nerpa::ofp
