#include "dlog/ast.h"

#include "common/strings.h"

namespace nerpa::dlog {

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "and";
    case BinOp::kOr: return "or";
    case BinOp::kBitAnd: return "&";
    case BinOp::kBitOr: return "|";
    case BinOp::kBitXor: return "^";
    case BinOp::kShl: return "<<";
    case BinOp::kShr: return ">>";
    case BinOp::kConcat: return "++";
  }
  return "?";
}

ExprPtr Expr::MakeVar(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kVar;
  e->name = std::move(name);
  return e;
}

ExprPtr Expr::MakeLit(Value value) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kLit;
  e->value = std::move(value);
  return e;
}

ExprPtr Expr::MakeTypedLit(Value value, Type type) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kLit;
  e->value = std::move(value);
  e->literal_type = std::move(type);
  e->literal_type_known = true;
  return e;
}

ExprPtr Expr::MakeUnary(UnOp op, ExprPtr arg) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kUnary;
  e->op1 = op;
  e->args = {std::move(arg)};
  return e;
}

ExprPtr Expr::MakeBinary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kBinary;
  e->op2 = op;
  e->args = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::MakeCall(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kCall;
  e->name = std::move(name);
  e->args = std::move(args);
  return e;
}

ExprPtr Expr::MakeTuple(std::vector<ExprPtr> elems) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kTuple;
  e->args = std::move(elems);
  return e;
}

ExprPtr Expr::MakeCond(ExprPtr c, ExprPtr t, ExprPtr f) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kCond;
  e->args = {std::move(c), std::move(t), std::move(f)};
  return e;
}

ExprPtr Expr::MakeCast(ExprPtr value, Type target) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kCast;
  e->args = {std::move(value)};
  e->literal_type = std::move(target);
  e->literal_type_known = true;
  return e;
}

ExprPtr Expr::MakeWildcard() {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kWildcard;
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kVar: return name;
    case Kind::kLit: return value.ToString();
    case Kind::kUnary: {
      const char* op = op1 == UnOp::kNeg ? "-" : op1 == UnOp::kNot ? "not " : "~";
      return std::string(op) + args[0]->ToString();
    }
    case Kind::kBinary:
      return "(" + args[0]->ToString() + " " + BinOpName(op2) + " " +
             args[1]->ToString() + ")";
    case Kind::kCall: {
      std::string out = name + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kTuple: {
      std::string out = "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kCond:
      return "if " + args[0]->ToString() + " then " + args[1]->ToString() +
             " else " + args[2]->ToString();
    case Kind::kCast:
      return "(" + args[0]->ToString() + " as " + literal_type.ToString() +
             ")";
    case Kind::kWildcard: return "_";
  }
  return "?";
}

std::string Atom::ToString() const {
  std::string out = relation + "(";
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += ", ";
    out += terms[i]->ToString();
  }
  return out + ")";
}

Result<AggFunc> AggFuncFromName(std::string_view name) {
  if (name == "count") return AggFunc::kCount;
  if (name == "sum") return AggFunc::kSum;
  if (name == "min") return AggFunc::kMin;
  if (name == "max") return AggFunc::kMax;
  return ParseError("unknown aggregate function '" + std::string(name) + "'");
}

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCount: return "count";
    case AggFunc::kSum: return "sum";
    case AggFunc::kMin: return "min";
    case AggFunc::kMax: return "max";
  }
  return "?";
}

std::string BodyElem::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return (negated ? "not " : "") + atom.ToString();
    case Kind::kCondition:
      return condition->ToString();
    case Kind::kAssignment:
      return "var " + var + " = " + expr->ToString();
    case Kind::kFlatMap:
      return "var " + var + " in " + expr->ToString();
    case Kind::kAggregate: {
      std::string out = "var " + var + " = " + AggFuncName(agg_func) + "(" +
                        expr->ToString() + ") group_by (";
      for (size_t i = 0; i < group_by.size(); ++i) {
        if (i > 0) out += ", ";
        out += group_by[i];
      }
      return out + ")";
    }
  }
  return "?";
}

std::string Rule::ToString() const {
  std::string out = head.ToString();
  if (!body.empty()) {
    out += " :- ";
    for (size_t i = 0; i < body.size(); ++i) {
      if (i > 0) out += ", ";
      out += body[i].ToString();
    }
  }
  return out + ".";
}

std::string ProgramAst::ToString() const {
  std::string out;
  for (const RelationDecl& relation : relations) {
    out += relation.ToString() + "\n";
  }
  out += "\n";
  for (const Rule& rule : rules) {
    out += rule.ToString() + "\n";
  }
  return out;
}

}  // namespace nerpa::dlog
