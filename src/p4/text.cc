#include "p4/text.h"

#include "common/strings.h"
#include "dlog/lexer.h"  // token stream shared with the Datalog frontend

namespace nerpa::p4 {

namespace {

using dlog::Token;
using dlog::TokKind;

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::shared_ptr<const P4Program>> Run() {
    auto program = std::make_shared<P4Program>();
    program_ = program.get();
    while (!Peek().Is(TokKind::kEof)) {
      if (ConsumeIdent("header")) {
        NERPA_RETURN_IF_ERROR(ParseHeader());
      } else if (ConsumeIdent("metadata")) {
        NERPA_RETURN_IF_ERROR(ParseMetadata());
      } else if (ConsumeIdent("digest")) {
        NERPA_RETURN_IF_ERROR(ParseDigest());
      } else if (ConsumeIdent("parser")) {
        NERPA_RETURN_IF_ERROR(ParseParser());
      } else if (ConsumeIdent("action")) {
        NERPA_RETURN_IF_ERROR(ParseAction());
      } else if (ConsumeIdent("table")) {
        NERPA_RETURN_IF_ERROR(ParseTable());
      } else if (ConsumeIdent("ingress")) {
        NERPA_RETURN_IF_ERROR(ParseControl(&program_->ingress));
      } else if (ConsumeIdent("egress")) {
        NERPA_RETURN_IF_ERROR(ParseControl(&program_->egress));
      } else if (ConsumeIdent("deparser")) {
        NERPA_RETURN_IF_ERROR(ParseDeparser());
      } else if (ConsumeIdent("program")) {
        NERPA_ASSIGN_OR_RETURN(program_->name, ExpectName());
        NERPA_RETURN_IF_ERROR(ExpectPunct(";"));
      } else {
        return Error("expected a top-level declaration, got '" +
                     Peek().text + "'");
      }
    }
    NERPA_RETURN_IF_ERROR(program_->Validate());
    return std::shared_ptr<const P4Program>(std::move(program));
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t index = pos_ + ahead;
    if (index >= tokens_.size()) index = tokens_.size() - 1;
    return tokens_[index];
  }
  const Token& Next() {
    return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_];
  }

  Status Error(const std::string& message) const {
    return ParseError(StrFormat("p4 line %d:%d: %s", Peek().line, Peek().col,
                                message.c_str()));
  }

  bool ConsumePunct(std::string_view p) {
    if (Peek().IsPunct(p)) {
      Next();
      return true;
    }
    return false;
  }

  bool ConsumeIdent(std::string_view id) {
    if (Peek().IsIdent(id)) {
      Next();
      return true;
    }
    return false;
  }

  Status ExpectPunct(std::string_view p) {
    if (!ConsumePunct(p)) {
      return Error(StrFormat("expected '%.*s', got '%s'",
                             static_cast<int>(p.size()), p.data(),
                             Peek().text.c_str()));
    }
    return Status::Ok();
  }

  Result<std::string> ExpectName() {
    if (!Peek().Is(TokKind::kIdent)) {
      return Error("expected a name, got '" + Peek().text + "'");
    }
    return Next().text;
  }

  Result<int64_t> ExpectInt() {
    if (!Peek().Is(TokKind::kInt)) {
      return Error("expected a number, got '" + Peek().text + "'");
    }
    return Next().int_value;
  }

  Result<int> ParseBitType() {
    if (!ConsumeIdent("bit")) return Error("expected 'bit<N>'");
    NERPA_RETURN_IF_ERROR(ExpectPunct("<"));
    NERPA_ASSIGN_OR_RETURN(int64_t width, ExpectInt());
    NERPA_RETURN_IF_ERROR(ExpectPunct(">"));
    if (width < 1 || width > 64) return Error("bit width out of range");
    return static_cast<int>(width);
  }

  /// "name.field" as one FieldRef.
  Result<FieldRef> ParseFieldRef() {
    NERPA_ASSIGN_OR_RETURN(std::string space, ExpectName());
    NERPA_RETURN_IF_ERROR(ExpectPunct("."));
    NERPA_ASSIGN_OR_RETURN(std::string field, ExpectName());
    return FieldRef(space + "." + field);
  }

  Status ParseHeader() {
    HeaderType header;
    NERPA_ASSIGN_OR_RETURN(header.name, ExpectName());
    NERPA_RETURN_IF_ERROR(ExpectPunct("{"));
    while (!ConsumePunct("}")) {
      P4Field field;
      NERPA_ASSIGN_OR_RETURN(field.width, ParseBitType());
      NERPA_ASSIGN_OR_RETURN(field.name, ExpectName());
      NERPA_RETURN_IF_ERROR(ExpectPunct(";"));
      header.fields.push_back(std::move(field));
    }
    program_->headers.push_back(std::move(header));
    return Status::Ok();
  }

  Status ParseMetadata() {
    NERPA_RETURN_IF_ERROR(ExpectPunct("{"));
    while (!ConsumePunct("}")) {
      P4Field field;
      NERPA_ASSIGN_OR_RETURN(field.width, ParseBitType());
      NERPA_ASSIGN_OR_RETURN(field.name, ExpectName());
      NERPA_RETURN_IF_ERROR(ExpectPunct(";"));
      program_->metadata.push_back(std::move(field));
    }
    return Status::Ok();
  }

  Status ParseDigest() {
    Digest digest;
    digest.line = Peek().line;
    digest.col = Peek().col;
    NERPA_ASSIGN_OR_RETURN(digest.name, ExpectName());
    NERPA_RETURN_IF_ERROR(ExpectPunct("{"));
    while (!ConsumePunct("}")) {
      NERPA_ASSIGN_OR_RETURN(FieldRef ref, ParseFieldRef());
      NERPA_RETURN_IF_ERROR(ExpectPunct(":"));
      NERPA_ASSIGN_OR_RETURN(int width, ParseBitType());
      NERPA_RETURN_IF_ERROR(ExpectPunct(";"));
      digest.fields.push_back({ref.text, width});
    }
    program_->digests.push_back(std::move(digest));
    return Status::Ok();
  }

  Status ParseParser() {
    NERPA_RETURN_IF_ERROR(ExpectPunct("{"));
    while (!ConsumePunct("}")) {
      if (!ConsumeIdent("state")) return Error("expected 'state'");
      ParserState state;
      state.line = Peek().line;
      state.col = Peek().col;
      NERPA_ASSIGN_OR_RETURN(state.name, ExpectName());
      NERPA_RETURN_IF_ERROR(ExpectPunct("{"));
      while (!ConsumePunct("}")) {
        if (ConsumeIdent("extract")) {
          NERPA_RETURN_IF_ERROR(ExpectPunct("("));
          NERPA_ASSIGN_OR_RETURN(state.extracts, ExpectName());
          NERPA_RETURN_IF_ERROR(ExpectPunct(")"));
          NERPA_RETURN_IF_ERROR(ExpectPunct(";"));
        } else if (ConsumeIdent("goto")) {
          ParserState::Transition transition;
          NERPA_ASSIGN_OR_RETURN(transition.next, ExpectName());
          NERPA_RETURN_IF_ERROR(ExpectPunct(";"));
          state.transitions.push_back(std::move(transition));
        } else if (ConsumeIdent("select")) {
          NERPA_RETURN_IF_ERROR(ExpectPunct("("));
          NERPA_ASSIGN_OR_RETURN(state.select, ParseFieldRef());
          NERPA_RETURN_IF_ERROR(ExpectPunct(")"));
          NERPA_RETURN_IF_ERROR(ExpectPunct("{"));
          while (!ConsumePunct("}")) {
            ParserState::Transition transition;
            if (ConsumeIdent("default")) {
              // no match value
            } else {
              NERPA_ASSIGN_OR_RETURN(int64_t value, ExpectInt());
              transition.match = static_cast<uint64_t>(value);
            }
            NERPA_RETURN_IF_ERROR(ExpectPunct(":"));
            NERPA_ASSIGN_OR_RETURN(transition.next, ExpectName());
            NERPA_RETURN_IF_ERROR(ExpectPunct(";"));
            state.transitions.push_back(std::move(transition));
          }
        } else {
          return Error("expected extract/goto/select, got '" + Peek().text +
                       "'");
        }
      }
      program_->parser.push_back(std::move(state));
    }
    return Status::Ok();
  }

  Status ParseAction() {
    Action action;
    action.line = Peek().line;
    action.col = Peek().col;
    NERPA_ASSIGN_OR_RETURN(action.name, ExpectName());
    NERPA_RETURN_IF_ERROR(ExpectPunct("("));
    if (!ConsumePunct(")")) {
      do {
        ActionParam param;
        NERPA_ASSIGN_OR_RETURN(param.width, ParseBitType());
        NERPA_ASSIGN_OR_RETURN(param.name, ExpectName());
        action.params.push_back(std::move(param));
      } while (ConsumePunct(","));
      NERPA_RETURN_IF_ERROR(ExpectPunct(")"));
    }
    NERPA_RETURN_IF_ERROR(ExpectPunct("{"));
    while (!ConsumePunct("}")) {
      NERPA_ASSIGN_OR_RETURN(ActionOp op, ParseActionStmt(action));
      action.ops.push_back(std::move(op));
      NERPA_RETURN_IF_ERROR(ExpectPunct(";"));
    }
    program_->actions.push_back(std::move(action));
    return Status::Ok();
  }

  /// An rvalue position: integer constant, parameter name, or field ref.
  struct RValue {
    enum class Kind { kConst, kParam, kField } kind = Kind::kConst;
    uint64_t constant = 0;
    std::string param;
    FieldRef field;
  };

  Result<RValue> ParseRValue(const Action& action) {
    RValue out;
    if (Peek().Is(TokKind::kInt)) {
      out.kind = RValue::Kind::kConst;
      out.constant = static_cast<uint64_t>(Next().int_value);
      return out;
    }
    NERPA_ASSIGN_OR_RETURN(std::string name, ExpectName());
    if (Peek().IsPunct(".")) {
      Next();
      NERPA_ASSIGN_OR_RETURN(std::string field, ExpectName());
      out.kind = RValue::Kind::kField;
      out.field = FieldRef(name + "." + field);
      return out;
    }
    if (action.FindParam(name) < 0) {
      return Error("'" + name + "' is not a parameter of this action");
    }
    out.kind = RValue::Kind::kParam;
    out.param = std::move(name);
    return out;
  }

  Result<ActionOp> ParseActionStmt(const Action& action) {
    // Builtin statement forms first.
    auto builtin_arg = [&](auto make_param, auto make_const)
        -> Result<ActionOp> {
      NERPA_RETURN_IF_ERROR(ExpectPunct("("));
      NERPA_ASSIGN_OR_RETURN(RValue value, ParseRValue(action));
      NERPA_RETURN_IF_ERROR(ExpectPunct(")"));
      if (value.kind == RValue::Kind::kParam) return make_param(value.param);
      if (value.kind == RValue::Kind::kConst) return make_const(value.constant);
      return Error("expected a constant or parameter argument");
    };
    if (ConsumeIdent("output")) {
      return builtin_arg([](std::string p) { return ActionOp::OutputPort(p); },
                         [](uint64_t c) { return ActionOp::OutputConst(c); });
    }
    if (ConsumeIdent("multicast")) {
      return builtin_arg(
          [](std::string p) { return ActionOp::MulticastGroup(p); },
          [](uint64_t c) { return ActionOp::MulticastConst(c); });
    }
    if (ConsumeIdent("clone")) {
      return builtin_arg(
          [](std::string p) { return ActionOp::ClonePort(p); },
          [](uint64_t c) {
            ActionOp op = ActionOp::ClonePort("");
            op.param.clear();
            op.immediate = c;
            return op;
          });
    }
    if (ConsumeIdent("push_vlan")) {
      return builtin_arg(
          [](std::string p) { return ActionOp::PushVlan(p); },
          [](uint64_t c) {
            ActionOp op = ActionOp::PushVlan("");
            op.param.clear();
            op.immediate = c;
            return op;
          });
    }
    if (ConsumeIdent("drop")) {
      NERPA_RETURN_IF_ERROR(ExpectPunct("("));
      NERPA_RETURN_IF_ERROR(ExpectPunct(")"));
      return ActionOp::Drop();
    }
    if (ConsumeIdent("pop_vlan")) {
      NERPA_RETURN_IF_ERROR(ExpectPunct("("));
      NERPA_RETURN_IF_ERROR(ExpectPunct(")"));
      return ActionOp::PopVlan();
    }
    if (ConsumeIdent("digest")) {
      NERPA_RETURN_IF_ERROR(ExpectPunct("("));
      NERPA_ASSIGN_OR_RETURN(std::string name, ExpectName());
      NERPA_RETURN_IF_ERROR(ExpectPunct(")"));
      return ActionOp::Digest(std::move(name));
    }
    // Assignment: fieldref = rvalue.
    NERPA_ASSIGN_OR_RETURN(FieldRef dest, ParseFieldRef());
    NERPA_RETURN_IF_ERROR(ExpectPunct("="));
    NERPA_ASSIGN_OR_RETURN(RValue value, ParseRValue(action));
    switch (value.kind) {
      case RValue::Kind::kConst:
        return ActionOp::SetField(std::move(dest), value.constant);
      case RValue::Kind::kParam:
        return ActionOp::SetFieldFromParam(std::move(dest),
                                           std::move(value.param));
      case RValue::Kind::kField:
        return ActionOp::CopyField(std::move(dest), std::move(value.field));
    }
    return Error("bad assignment");
  }

  Status ParseTable() {
    Table table;
    table.line = Peek().line;
    table.col = Peek().col;
    NERPA_ASSIGN_OR_RETURN(table.name, ExpectName());
    NERPA_RETURN_IF_ERROR(ExpectPunct("{"));
    while (!ConsumePunct("}")) {
      if (ConsumeIdent("key")) {
        NERPA_RETURN_IF_ERROR(ExpectPunct("="));
        NERPA_RETURN_IF_ERROR(ExpectPunct("{"));
        while (!ConsumePunct("}")) {
          TableKey key;
          NERPA_ASSIGN_OR_RETURN(key.field, ParseFieldRef());
          NERPA_RETURN_IF_ERROR(ExpectPunct(":"));
          NERPA_ASSIGN_OR_RETURN(std::string kind, ExpectName());
          if (kind == "exact") key.kind = MatchKind::kExact;
          else if (kind == "lpm") key.kind = MatchKind::kLpm;
          else if (kind == "ternary") key.kind = MatchKind::kTernary;
          else if (kind == "range") key.kind = MatchKind::kRange;
          else if (kind == "optional") key.kind = MatchKind::kOptional;
          else return Error("unknown match kind '" + kind + "'");
          NERPA_RETURN_IF_ERROR(ExpectPunct(";"));
          table.keys.push_back(std::move(key));
        }
      } else if (ConsumeIdent("actions")) {
        NERPA_RETURN_IF_ERROR(ExpectPunct("="));
        NERPA_RETURN_IF_ERROR(ExpectPunct("{"));
        while (!ConsumePunct("}")) {
          NERPA_ASSIGN_OR_RETURN(std::string name, ExpectName());
          NERPA_RETURN_IF_ERROR(ExpectPunct(";"));
          table.actions.push_back(std::move(name));
        }
      } else if (ConsumeIdent("default_action")) {
        NERPA_RETURN_IF_ERROR(ExpectPunct("="));
        NERPA_ASSIGN_OR_RETURN(table.default_action, ExpectName());
        if (ConsumePunct("(")) {
          if (!ConsumePunct(")")) {
            do {
              NERPA_ASSIGN_OR_RETURN(int64_t value, ExpectInt());
              table.default_action_args.push_back(
                  static_cast<uint64_t>(value));
            } while (ConsumePunct(","));
            NERPA_RETURN_IF_ERROR(ExpectPunct(")"));
          }
        }
        NERPA_RETURN_IF_ERROR(ExpectPunct(";"));
      } else if (ConsumeIdent("size")) {
        NERPA_RETURN_IF_ERROR(ExpectPunct("="));
        NERPA_ASSIGN_OR_RETURN(int64_t size, ExpectInt());
        table.size = static_cast<size_t>(size);
        NERPA_RETURN_IF_ERROR(ExpectPunct(";"));
      } else {
        return Error("expected key/actions/default_action/size, got '" +
                     Peek().text + "'");
      }
    }
    program_->tables.push_back(std::move(table));
    return Status::Ok();
  }

  Status ParseControl(std::vector<ControlNode>* out) {
    NERPA_RETURN_IF_ERROR(ExpectPunct("{"));
    return ParseControlBody(out);
  }

  Status ParseControlBody(std::vector<ControlNode>* out) {
    while (!ConsumePunct("}")) {
      if (ConsumeIdent("apply")) {
        NERPA_RETURN_IF_ERROR(ExpectPunct("("));
        NERPA_ASSIGN_OR_RETURN(std::string table, ExpectName());
        NERPA_RETURN_IF_ERROR(ExpectPunct(")"));
        NERPA_RETURN_IF_ERROR(ExpectPunct(";"));
        out->push_back(ControlNode::Apply(std::move(table)));
      } else if (ConsumeIdent("if")) {
        NERPA_RETURN_IF_ERROR(ExpectPunct("("));
        ControlNode node;
        node.kind = ControlNode::Kind::kConditional;
        bool negated = ConsumePunct("!");
        if (ConsumeIdent("valid")) {
          NERPA_RETURN_IF_ERROR(ExpectPunct("("));
          NERPA_ASSIGN_OR_RETURN(node.cond_header, ExpectName());
          NERPA_RETURN_IF_ERROR(ExpectPunct(")"));
          node.pred = negated ? ControlNode::Pred::kHeaderInvalid
                              : ControlNode::Pred::kHeaderValid;
        } else {
          if (negated) return Error("'!' only applies to valid(...)");
          NERPA_ASSIGN_OR_RETURN(node.cond_field, ParseFieldRef());
          bool eq = ConsumePunct("==");
          if (!eq) NERPA_RETURN_IF_ERROR(ExpectPunct("!="));
          node.pred = eq ? ControlNode::Pred::kFieldEq
                         : ControlNode::Pred::kFieldNe;
          NERPA_ASSIGN_OR_RETURN(int64_t value, ExpectInt());
          node.cond_value = static_cast<uint64_t>(value);
        }
        NERPA_RETURN_IF_ERROR(ExpectPunct(")"));
        NERPA_RETURN_IF_ERROR(ExpectPunct("{"));
        NERPA_RETURN_IF_ERROR(ParseControlBody(&node.then_branch));
        if (ConsumeIdent("else")) {
          NERPA_RETURN_IF_ERROR(ExpectPunct("{"));
          NERPA_RETURN_IF_ERROR(ParseControlBody(&node.else_branch));
        }
        out->push_back(std::move(node));
      } else {
        return Error("expected apply/if, got '" + Peek().text + "'");
      }
    }
    return Status::Ok();
  }

  Status ParseDeparser() {
    NERPA_RETURN_IF_ERROR(ExpectPunct("{"));
    while (!ConsumePunct("}")) {
      if (!ConsumeIdent("emit")) return Error("expected 'emit'");
      NERPA_RETURN_IF_ERROR(ExpectPunct("("));
      NERPA_ASSIGN_OR_RETURN(std::string header, ExpectName());
      NERPA_RETURN_IF_ERROR(ExpectPunct(")"));
      NERPA_RETURN_IF_ERROR(ExpectPunct(";"));
      program_->deparser.push_back(std::move(header));
    }
    return Status::Ok();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  P4Program* program_ = nullptr;
};

std::string RValueText(const ActionOp& op) {
  if (!op.param.empty()) return op.param;
  return std::to_string(op.immediate);
}

void PrintControl(const std::vector<ControlNode>& nodes, int depth,
                  std::string& out) {
  std::string indent(static_cast<size_t>(depth) * 2, ' ');
  for (const ControlNode& node : nodes) {
    if (node.kind == ControlNode::Kind::kApply) {
      out += indent + "apply(" + node.table + ");\n";
      continue;
    }
    out += indent + "if (";
    switch (node.pred) {
      case ControlNode::Pred::kHeaderValid:
        out += "valid(" + node.cond_header + ")";
        break;
      case ControlNode::Pred::kHeaderInvalid:
        out += "!valid(" + node.cond_header + ")";
        break;
      case ControlNode::Pred::kFieldEq:
        out += node.cond_field.text + " == " + std::to_string(node.cond_value);
        break;
      case ControlNode::Pred::kFieldNe:
        out += node.cond_field.text + " != " + std::to_string(node.cond_value);
        break;
    }
    out += ") {\n";
    PrintControl(node.then_branch, depth + 1, out);
    out += indent + "}";
    if (!node.else_branch.empty()) {
      out += " else {\n";
      PrintControl(node.else_branch, depth + 1, out);
      out += indent + "}";
    }
    out += "\n";
  }
}

}  // namespace

Result<std::shared_ptr<const P4Program>> ParseP4Text(
    std::string_view source) {
  NERPA_ASSIGN_OR_RETURN(std::vector<Token> tokens, dlog::Tokenize(source));
  return Parser(std::move(tokens)).Run();
}

std::string ToP4Text(const P4Program& program) {
  std::string out;
  if (!program.name.empty()) out += "program " + program.name + ";\n\n";
  for (const HeaderType& header : program.headers) {
    out += "header " + header.name + " {\n";
    for (const P4Field& field : header.fields) {
      out += StrFormat("  bit<%d> %s;\n", field.width, field.name.c_str());
    }
    out += "}\n";
  }
  if (!program.metadata.empty()) {
    out += "metadata {\n";
    for (const P4Field& field : program.metadata) {
      out += StrFormat("  bit<%d> %s;\n", field.width, field.name.c_str());
    }
    out += "}\n";
  }
  for (const Digest& digest : program.digests) {
    out += "digest " + digest.name + " {\n";
    for (const P4Field& field : digest.fields) {
      out += StrFormat("  %s: bit<%d>;\n", field.name.c_str(), field.width);
    }
    out += "}\n";
  }
  out += "parser {\n";
  for (const ParserState& state : program.parser) {
    out += "  state " + state.name + " {\n";
    if (!state.extracts.empty()) {
      out += "    extract(" + state.extracts + ");\n";
    }
    if (!state.select.text.empty()) {
      out += "    select (" + state.select.text + ") {\n";
      for (const ParserState::Transition& t : state.transitions) {
        out += "      " + (t.match ? std::to_string(*t.match)
                                   : std::string("default")) +
               ": " + t.next + ";\n";
      }
      out += "    }\n";
    } else {
      for (const ParserState::Transition& t : state.transitions) {
        out += "    goto " + t.next + ";\n";
      }
    }
    out += "  }\n";
  }
  out += "}\n";
  for (const Action& action : program.actions) {
    out += "action " + action.name + "(";
    for (size_t i = 0; i < action.params.size(); ++i) {
      if (i > 0) out += ", ";
      out += StrFormat("bit<%d> %s", action.params[i].width,
                       action.params[i].name.c_str());
    }
    out += ") {";
    if (!action.ops.empty()) out += "\n";
    for (const ActionOp& op : action.ops) {
      out += "  ";
      switch (op.kind) {
        case ActionOp::Kind::kNoOp:
          break;
        case ActionOp::Kind::kSetFieldConst:
        case ActionOp::Kind::kSetFieldParam:
          out += op.dest.text + " = " + RValueText(op);
          break;
        case ActionOp::Kind::kCopyField:
          out += op.dest.text + " = " + op.src.text;
          break;
        case ActionOp::Kind::kOutput:
          out += "output(" + RValueText(op) + ")";
          break;
        case ActionOp::Kind::kMulticast:
          out += "multicast(" + RValueText(op) + ")";
          break;
        case ActionOp::Kind::kDrop:
          out += "drop()";
          break;
        case ActionOp::Kind::kDigest:
          out += "digest(" + op.digest_name + ")";
          break;
        case ActionOp::Kind::kClone:
          out += "clone(" + RValueText(op) + ")";
          break;
        case ActionOp::Kind::kPushVlan:
          out += "push_vlan(" + RValueText(op) + ")";
          break;
        case ActionOp::Kind::kPopVlan:
          out += "pop_vlan()";
          break;
      }
      out += ";\n";
    }
    out += "}\n";
  }
  for (const Table& table : program.tables) {
    out += "table " + table.name + " {\n  key = {";
    for (const TableKey& key : table.keys) {
      out += " " + key.field.text + ": " + MatchKindName(key.kind) + ";";
    }
    out += " }\n  actions = {";
    for (const std::string& action : table.actions) {
      out += " " + action + ";";
    }
    out += " }\n";
    if (!table.default_action.empty()) {
      out += "  default_action = " + table.default_action;
      if (!table.default_action_args.empty()) {
        out += "(";
        for (size_t i = 0; i < table.default_action_args.size(); ++i) {
          if (i > 0) out += ", ";
          out += std::to_string(table.default_action_args[i]);
        }
        out += ")";
      }
      out += ";\n";
    }
    out += StrFormat("  size = %zu;\n}\n", table.size);
  }
  out += "ingress {\n";
  PrintControl(program.ingress, 1, out);
  out += "}\negress {\n";
  PrintControl(program.egress, 1, out);
  out += "}\ndeparser {\n";
  for (const std::string& header : program.deparser) {
    out += "  emit(" + header + ");\n";
  }
  out += "}\n";
  return out;
}

}  // namespace nerpa::p4
