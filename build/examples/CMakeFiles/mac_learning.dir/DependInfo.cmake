
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/mac_learning.cpp" "examples/CMakeFiles/mac_learning.dir/mac_learning.cpp.o" "gcc" "examples/CMakeFiles/mac_learning.dir/mac_learning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/snvs/CMakeFiles/nerpa_snvs.dir/DependInfo.cmake"
  "/root/repo/build/src/nerpa/CMakeFiles/nerpa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ovsdb/CMakeFiles/nerpa_ovsdb.dir/DependInfo.cmake"
  "/root/repo/build/src/ofp/CMakeFiles/nerpa_ofp.dir/DependInfo.cmake"
  "/root/repo/build/src/p4/CMakeFiles/nerpa_p4.dir/DependInfo.cmake"
  "/root/repo/build/src/dlog/CMakeFiles/nerpa_dlog.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nerpa_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nerpa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
