// Durability and crash recovery for the management plane.
//
// The paper leaves "fault-tolerance and replication of the management and
// control planes" open (§5); this is the single-node half of that story.
// A DurableStore owns an ovsdb::Database plus an on-disk state directory:
//
//   <dir>/snapshot.json    full database image + controller checkpoint
//                          (digest seq), written atomically (tmp + rename)
//                          with a CRC32 trailer line
//   <dir>/wal.jsonl        every transaction committed since the snapshot,
//                          CRC32-framed, appended and flushed before the
//                          commit returns (via Database::AddCommitHook)
//   <dir>/snapshot.json.1  the previous snapshot (rotated at checkpoint)
//   <dir>/wal.jsonl.1      the WAL segment the current snapshot subsumed
//
// Open() is also Recover(): if the directory holds state, the database is
// rebuilt by applying the snapshot as one pinned-uuid transaction and then
// replaying the WAL record by record; otherwise a fresh database is
// created.  Checkpoint() rotates the previous snapshot and WAL segment
// aside, writes a new checksummed snapshot, and starts a fresh WAL (log
// compaction), bounding both recovery time and disk growth.
//
// Corruption policy (every byte read back is checksum-verified):
//   - WAL torn tail: truncated silently (interrupted append, see wal.h).
//   - WAL interior corruption: recovery fails fast with the record index.
//   - Corrupt current snapshot: recovery falls back to the previous
//     snapshot plus the longer replay wal.jsonl.1 + wal.jsonl, which
//     reconstructs the same state (invariant: snapshot.json.1 + wal.jsonl.1
//     == snapshot.json).  Counted in Stats::snapshot_fallbacks.
//
// The control plane needs no separate durability: it is a pure function of
// the management plane plus the digest stream, and is re-derived on
// restart.  What must survive is the controller's digest sequence cursor
// (most-recent-wins MAC learning orders notifications by it); Checkpoint()
// persists it and recovered_digest_seq() hands it back for
// Controller::Options::initial_digest_seq.
#ifndef NERPA_HA_DURABLE_H_
#define NERPA_HA_DURABLE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/status.h"
#include "ha/io.h"
#include "ha/wal.h"
#include "ovsdb/database.h"

namespace nerpa::ha {

class DurableStore {
 public:
  /// Opens (recovering if state exists, creating otherwise) a durable
  /// database for `schema` rooted at directory `dir` (created if missing).
  /// All disk access goes through `io` (defaults to the real filesystem);
  /// the chaos harness injects a faulty Io here.
  static Result<std::unique_ptr<DurableStore>> Open(
      ovsdb::DatabaseSchema schema, const std::string& dir,
      Io* io = nullptr);

  ~DurableStore();
  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  /// The durable database.  Every Transact() against it is WAL-appended
  /// before the call returns.
  ovsdb::Database& db() { return *db_; }

  /// True when Open() rebuilt state from disk (vs. starting empty).
  bool recovered() const { return recovered_; }

  /// The underlying WAL — exposed so supervisors can attach a watchdog
  /// to the append/fsync path (see WriteAheadLog::AttachWatchdog).
  WriteAheadLog& wal() { return wal_; }

  /// The digest sequence saved by the last Checkpoint(); 0 if none.
  int64_t recovered_digest_seq() const { return recovered_digest_seq_; }

  /// Writes a full snapshot (including `digest_seq`, the controller's
  /// sequence cursor) and compacts the WAL.
  Status Checkpoint(int64_t digest_seq);

  // --- Engine checkpoint sidecars ---
  //
  // Opaque per-component blobs (e.g. dlog::Engine::SerializeState) stored
  // next to the snapshot as <dir>/engine.<name>.ckpt, CRC32-framed and
  // written atomically (tmp + rename).  A sidecar is strictly an
  // accelerator: corruption or absence surfaces as an error and the caller
  // recomputes the state it would have loaded — never a recovery failure.

  /// Atomically writes `blob` as the checkpoint sidecar `name`
  /// ([A-Za-z0-9_-]+).
  Status WriteEngineCheckpoint(const std::string& name, std::string_view blob);

  /// Reads sidecar `name` back, verifying the frame and checksum.
  /// NotFound when absent; Internal when the frame is damaged.
  Result<std::string> ReadEngineCheckpoint(const std::string& name) const;

  struct Stats {
    uint64_t checkpoints = 0;
    uint64_t snapshot_rows = 0;          // rows in the last snapshot written
    uint64_t recovered_snapshot_rows = 0;
    uint64_t recovered_wal_records = 0;
    uint64_t truncated_tail_records = 0; // dropped interrupted appends
    uint64_t wal_records_appended = 0;   // since last checkpoint
    uint64_t snapshot_fallbacks = 0;     // recoveries off snapshot.json.1
    uint64_t engine_checkpoints = 0;     // sidecar blobs written
  };
  Stats stats() const;

  /// Serializes a database into the snapshot JSON document (exposed for
  /// tests and benches that need to measure snapshot size directly).
  static Json SnapshotJson(const ovsdb::Database& db, int64_t digest_seq);

  /// Renders a snapshot document into its on-disk form: the JSON text
  /// followed by a CRC32 trailer line.
  static std::string EncodeSnapshot(const Json& snapshot);

  /// Verifies the trailer checksum and parses the document.  Legacy files
  /// without a trailer are accepted unverified.
  static Result<Json> DecodeSnapshot(const std::string& text);

  /// Applies a parsed snapshot document to an empty database.
  static Status ApplySnapshot(ovsdb::Database& db, const Json& snapshot);

  /// Detaches and returns the database, ending durability (no further WAL
  /// appends).  The store is unusable afterwards.
  std::unique_ptr<ovsdb::Database> Release() &&;

 private:
  DurableStore(std::unique_ptr<ovsdb::Database> db, WriteAheadLog wal,
               std::string dir, Io* io);

  std::unique_ptr<ovsdb::Database> db_;
  WriteAheadLog wal_;
  std::string dir_;
  Io* io_ = nullptr;
  uint64_t hook_id_ = 0;
  bool recovered_ = false;
  int64_t recovered_digest_seq_ = 0;
  uint64_t checkpoints_ = 0;
  uint64_t snapshot_rows_ = 0;
  uint64_t recovered_snapshot_rows_ = 0;
  uint64_t recovered_wal_records_ = 0;
  uint64_t recovered_truncated_tail_ = 0;
  uint64_t snapshot_fallbacks_ = 0;
  uint64_t engine_checkpoints_ = 0;
};

/// Convenience: recover just the database (no live store) from `dir`.
/// NotFound when the directory holds no state.
Result<std::unique_ptr<ovsdb::Database>> RecoverDatabase(
    ovsdb::DatabaseSchema schema, const std::string& dir, Io* io = nullptr);

}  // namespace nerpa::ha

#endif  // NERPA_HA_DURABLE_H_
