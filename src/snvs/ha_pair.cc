#include "snvs/ha_pair.h"

#include "common/log.h"
#include "common/strings.h"
#include "nerpa/bindings.h"

namespace nerpa::snvs {

namespace {
/// DurableStore sidecar name for engine checkpoints (same sidecar the
/// single-controller SnvsStack writes, so a pair can adopt a stack's
/// state directory and vice versa).
constexpr const char* kEngineCheckpointName = "controller";

/// Watchdog subsystem name for the shared durable store's WAL.
constexpr const char* kWalSubsystem = "snvs.wal";
}  // namespace

Result<std::unique_ptr<SnvsHaPair>> BuildSnvsHaPair(
    const SnvsHaOptions& options) {
  if (options.devices < 1) {
    return InvalidArgument("need at least one device");
  }
  auto pair = std::unique_ptr<SnvsHaPair>(new SnvsHaPair());
  pair->options_ = options;

  // The shared management plane carries the Leader_Lease table on top of
  // the snvs schema.  The bindings are generated from the *plain* schema:
  // the lease is election machinery, not control-plane input, so lease
  // renewals must not appear as Datalog deltas (and must not perturb the
  // program fingerprint engine checkpoints are validated against).
  ovsdb::DatabaseSchema shared = ovsdb::WithLeaderLease(SnvsSchema());
  int64_t recovered_digest_seq = 0;
  if (!options.ha_dir.empty()) {
    NERPA_ASSIGN_OR_RETURN(
        pair->store_,
        ha::DurableStore::Open(shared, options.ha_dir, options.io));
    pair->db_raw_ = &pair->store_->db();
    recovered_digest_seq = pair->store_->recovered_digest_seq();
    if (options.watchdog != nullptr) {
      pair->store_->wal().AttachWatchdog(options.watchdog, kWalSubsystem,
                                         options.wal_stuck_timeout_nanos);
    }
  } else {
    pair->db_ = std::make_unique<ovsdb::Database>(shared);
    pair->db_raw_ = pair->db_.get();
  }
  pair->p4_ = SnvsP4Program();

  BindingOptions binding_options;
  binding_options.with_device_column = false;
  binding_options.with_digest_seq = true;
  NERPA_ASSIGN_OR_RETURN(
      pair->bindings_,
      GenerateBindings(SnvsSchema(), *pair->p4_, binding_options));
  pair->program_text_ = pair->bindings_.DeclsText() + SnvsRules();
  NERPA_ASSIGN_OR_RETURN(pair->program_,
                         dlog::Program::Parse(pair->program_text_));

  for (int i = 0; i < options.devices; ++i) {
    pair->switches_.push_back(std::make_unique<p4::Switch>(pair->p4_));
  }

  // Recovered deployments warm-start both replicas from the persisted
  // engine sidecar; RecoverDigestSeqLocked at promotion re-derives the
  // sequence floor even if the sidecar is older than the snapshot.
  std::string warm;
  if (pair->store_ != nullptr && pair->store_->recovered()) {
    Result<std::string> blob =
        pair->store_->ReadEngineCheckpoint(kEngineCheckpointName);
    if (blob.ok()) {
      warm = std::move(blob).value();
      pair->last_engine_checkpoint_ = warm;
    } else if (blob.status().code() != StatusCode::kNotFound) {
      LOG_WARNING << "snvs-ha: engine checkpoint unusable ("
                  << blob.status().ToString() << "); recomputing";
    }
  }
  pair->recovered_digest_seq_ = recovered_digest_seq;
  for (size_t i = 0; i < SnvsHaPair::kReplicas; ++i) {
    NERPA_RETURN_IF_ERROR(pair->BuildReplica(i, warm));
  }
  return pair;
}

Status SnvsHaPair::BuildReplica(size_t index,
                                const std::string& warm_checkpoint) {
  Replica& replica = replicas_[index];
  replica.id = StrFormat("ctl%zu", index);

  bool inject_faults = options_.fault.write_fail_probability > 0 ||
                       options_.fault.write_delay_nanos > 0;
  replica.clients.clear();
  for (size_t d = 0; d < switches_.size(); ++d) {
    if (inject_faults) {
      ha::FaultPolicy policy = options_.fault;
      // Each replica has its own channel to each device; decorrelate all
      // of them.
      policy.seed += static_cast<uint64_t>(index * 131 + d);
      replica.clients.push_back(std::make_unique<ha::FaultyRuntimeClient>(
          switches_[d].get(), policy));
    } else {
      replica.clients.push_back(
          std::make_unique<p4::RuntimeClient>(switches_[d].get()));
    }
  }

  Controller::Options controller_options;
  controller_options.multicast_relation = "MulticastGroup";
  controller_options.initial_role = Role::kFollower;
  controller_options.initial_digest_seq = recovered_digest_seq_;
  controller_options.engine_checkpoint = warm_checkpoint;
  controller_options.retry = options_.retry;
  controller_options.breaker = options_.breaker;
  controller_options.watchdog = options_.watchdog;
  controller_options.commit_deadline_nanos = options_.commit_deadline_nanos;
  replica.controller = std::make_unique<Controller>(
      db_raw_, program_, p4_, bindings_, controller_options);
  for (size_t d = 0; d < switches_.size(); ++d) {
    NERPA_RETURN_IF_ERROR(replica.controller->AddDevice(
        StrFormat("sw%zu", d), replica.clients[d].get()));
  }
  NERPA_RETURN_IF_ERROR(replica.controller->Start());

  ha::LeaseManager::Options lease_options;
  lease_options.holder_id = replica.id;
  lease_options.ttl_nanos = options_.lease_ttl_nanos;
  lease_options.clock = options_.clock;
  replica.lease =
      std::make_unique<ha::LeaseManager>(db_raw_, std::move(lease_options));

  Controller* controller = replica.controller.get();
  ha::LeaseCoordinator::Callbacks callbacks;
  callbacks.on_acquire = [controller](int64_t epoch) {
    return controller->Promote(static_cast<uint64_t>(epoch)).ok();
  };
  callbacks.on_lose = [controller] { controller->Demote(); };
  replica.coordinator = std::make_unique<ha::LeaseCoordinator>(
      replica.lease.get(), std::move(callbacks));
  return Status::Ok();
}

ha::FaultyRuntimeClient* SnvsHaPair::faulty(size_t replica, size_t device) {
  if (replica >= kReplicas || device >= replicas_[replica].clients.size()) {
    return nullptr;
  }
  return dynamic_cast<ha::FaultyRuntimeClient*>(
      replicas_[replica].clients[device].get());
}

int SnvsHaPair::leader() const {
  // A zombie still believes it leads until fencing demotes it; when two
  // replicas claim leadership, the one holding the higher lease epoch is
  // the real leader.
  int best = -1;
  int64_t best_epoch = -1;
  for (size_t i = 0; i < kReplicas; ++i) {
    const Replica& replica = replicas_[i];
    if (replica.controller == nullptr ||
        replica.controller->role() != Role::kLeader) {
      continue;
    }
    int64_t epoch = replica.lease->epoch();
    if (epoch > best_epoch) {
      best = static_cast<int>(i);
      best_epoch = epoch;
    }
  }
  return best;
}

int SnvsHaPair::Tick() {
  // Stuck-WAL self-demotion: a leader whose WAL append has outlived its
  // bound can no longer durably acknowledge management-plane commits.
  // Stepping down through the role machine (StepDown releases the lease
  // and runs on_lose -> Controller::Demote) hands the plane to the
  // healthy standby within one TTL instead of limping along un-durable.
  // The watchdog runs on MonotonicNanos, not the injectable lease clock:
  // tests that jump the lease clock must not fake a stuck disk.
  if (options_.watchdog != nullptr &&
      options_.watchdog->Stuck(kWalSubsystem, MonotonicNanos())) {
    int index = leader();
    if (index >= 0 && replicas_[index].coordinator != nullptr) {
      LOG_WARNING << "snvs-ha: WAL stuck past its bound; demoting leader "
                  << replicas_[index].id;
      replicas_[index].coordinator->StepDown();
      ++wal_demotions_;
    }
  }
  for (size_t i = 0; i < kReplicas; ++i) {
    if (replicas_[i].coordinator != nullptr) replicas_[i].coordinator->Tick();
  }
  return leader();
}

Status SnvsHaPair::Checkpoint() {
  int index = leader();
  if (index < 0) return FailedPrecondition("no replica is leader");
  Controller& leader_controller = *replicas_[index].controller;
  NERPA_ASSIGN_OR_RETURN(std::string blob,
                         leader_controller.CheckpointEngine());
  last_engine_checkpoint_ = blob;
  if (store_ != nullptr) {
    NERPA_RETURN_IF_ERROR(store_->Checkpoint(leader_controller.digest_seq()));
    NERPA_RETURN_IF_ERROR(
        store_->WriteEngineCheckpoint(kEngineCheckpointName, blob));
  }
  return Status::Ok();
}

Status SnvsHaPair::SyncStandby() {
  if (last_engine_checkpoint_.empty()) return Status::Ok();
  int index = leader();
  for (size_t i = 0; i < kReplicas; ++i) {
    if (static_cast<int>(i) == index) continue;
    Replica& replica = replicas_[i];
    if (replica.controller == nullptr ||
        replica.controller->role() != Role::kFollower) {
      continue;
    }
    NERPA_RETURN_IF_ERROR(
        replica.controller->ReloadEngineCheckpoint(last_engine_checkpoint_));
  }
  return Status::Ok();
}

Status SnvsHaPair::RestartReplica(size_t replica) {
  if (replica >= kReplicas) return InvalidArgument("no such replica");
  // Crash semantics: the lease row is left exactly as the dead replica
  // last wrote it — a held lease runs out its TTL before anyone else can
  // acquire (that delay *is* the availability gap bench_failover measures).
  Replica& r = replicas_[replica];
  r.coordinator.reset();
  r.lease.reset();
  r.controller.reset();  // unregisters its monitor
  r.clients.clear();
  return BuildReplica(replica, last_engine_checkpoint_);
}

Status SnvsHaPair::AnyControllerError() const {
  for (const Replica& replica : replicas_) {
    if (replica.controller == nullptr) continue;
    NERPA_RETURN_IF_ERROR(replica.controller->last_error());
  }
  return Status::Ok();
}

Result<ovsdb::Uuid> SnvsHaPair::AddPort(const std::string& name, int64_t port,
                                        const std::string& vlan_mode,
                                        int64_t tag,
                                        const std::vector<int64_t>& trunks) {
  ovsdb::TxnBuilder txn(db_raw_);
  std::vector<ovsdb::Atom> trunk_atoms;
  for (int64_t vlan : trunks) trunk_atoms.emplace_back(vlan);
  txn.Insert("Port", {
                         {"name", ovsdb::Datum::String(name)},
                         {"port", ovsdb::Datum::Integer(port)},
                         {"vlan_mode", ovsdb::Datum::String(vlan_mode)},
                         {"tag", ovsdb::Datum::Integer(tag)},
                         {"trunks", ovsdb::Datum::Set(std::move(trunk_atoms))},
                     });
  NERPA_ASSIGN_OR_RETURN(std::vector<ovsdb::Uuid> inserted, txn.Commit());
  NERPA_RETURN_IF_ERROR(AnyControllerError());
  return inserted.at(0);
}

Status SnvsHaPair::DeletePort(const std::string& name) {
  ovsdb::TxnBuilder txn(db_raw_);
  txn.Delete("Port", {{"name", "==", ovsdb::Datum::String(name)}});
  NERPA_RETURN_IF_ERROR(txn.Commit().status());
  return AnyControllerError();
}

Result<ovsdb::Uuid> SnvsHaPair::AddMirror(const std::string& name,
                                          int64_t src_port, int64_t out_port) {
  ovsdb::TxnBuilder txn(db_raw_);
  txn.Insert("Mirror", {
                           {"name", ovsdb::Datum::String(name)},
                           {"src_port", ovsdb::Datum::Integer(src_port)},
                           {"out_port", ovsdb::Datum::Integer(out_port)},
                       });
  NERPA_ASSIGN_OR_RETURN(std::vector<ovsdb::Uuid> inserted, txn.Commit());
  NERPA_RETURN_IF_ERROR(AnyControllerError());
  return inserted.at(0);
}

Result<ovsdb::Uuid> SnvsHaPair::AddAclRule(int64_t mac, int64_t vlan,
                                           bool allow) {
  ovsdb::TxnBuilder txn(db_raw_);
  txn.Insert("AclRule", {
                            {"mac", ovsdb::Datum::Integer(mac)},
                            {"vlan", ovsdb::Datum::Integer(vlan)},
                            {"allow", ovsdb::Datum::Boolean(allow)},
                        });
  NERPA_ASSIGN_OR_RETURN(std::vector<ovsdb::Uuid> inserted, txn.Commit());
  NERPA_RETURN_IF_ERROR(AnyControllerError());
  return inserted.at(0);
}

Result<std::vector<p4::PacketOut>> SnvsHaPair::InjectPacket(
    size_t device, uint64_t port, const net::Packet& packet) {
  if (device >= switches_.size()) {
    return InvalidArgument("no such device");
  }
  NERPA_ASSIGN_OR_RETURN(
      std::vector<p4::PacketOut> out,
      switches_[device]->ProcessPacket(p4::PacketIn{port, packet}));
  int index = leader();
  if (index >= 0) {
    NERPA_RETURN_IF_ERROR(
        replicas_[index].controller->SyncDataPlaneNotifications());
  }
  return out;
}

}  // namespace nerpa::snvs
