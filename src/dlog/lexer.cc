#include "dlog/lexer.h"

#include <cctype>

#include "common/strings.h"

namespace nerpa::dlog {

Result<std::vector<Token>> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  size_t i = 0;
  int line = 1;
  size_t line_start = 0;  // index just past the most recent '\n'

  auto col_at = [&](size_t pos) {
    return static_cast<int>(pos - line_start) + 1;
  };
  auto error = [&](const std::string& message) {
    return ParseError(StrFormat("line %d:%d: %s", line, col_at(i),
                                message.c_str()));
  };
  auto make = [&](TokKind kind, size_t start) {
    Token t;
    t.kind = kind;
    t.line = line;
    t.col = col_at(start);
    return t;
  };

  while (i < source.size()) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < source.size()) {
      if (source[i + 1] == '/') {
        while (i < source.size() && source[i] != '\n') ++i;
        continue;
      }
      if (source[i + 1] == '*') {
        size_t comment_start = i;
        int comment_line = line;
        i += 2;
        while (i + 1 < source.size() &&
               !(source[i] == '*' && source[i + 1] == '/')) {
          if (source[i] == '\n') {
            ++line;
            line_start = i + 1;
          }
          ++i;
        }
        if (i + 1 >= source.size()) {
          return ParseError(StrFormat(
              "line %d:%d: unterminated /* comment", comment_line,
              comment_line == line ? col_at(comment_start) : 1));
        }
        i += 2;
        continue;
      }
    }
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[i])) ||
              source[i] == '_')) {
        ++i;
      }
      Token t = make(TokKind::kIdent, start);
      t.text = std::string(source.substr(start, i - start));
      tokens.push_back(std::move(t));
      continue;
    }
    // Numbers: decimal or 0x hex.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      int base = 10;
      if (c == '0' && i + 1 < source.size() &&
          (source[i + 1] == 'x' || source[i + 1] == 'X')) {
        base = 16;
        i += 2;
      }
      uint64_t value = 0;
      bool any = false;
      while (i < source.size()) {
        char d = source[i];
        int digit;
        if (d >= '0' && d <= '9') digit = d - '0';
        else if (base == 16 && d >= 'a' && d <= 'f') digit = d - 'a' + 10;
        else if (base == 16 && d >= 'A' && d <= 'F') digit = d - 'A' + 10;
        else if (d == '_') { ++i; continue; }  // digit separators
        else break;
        value = value * static_cast<unsigned>(base) +
                static_cast<unsigned>(digit);
        any = true;
        ++i;
      }
      if (base == 16 && !any) return error("malformed hex literal");
      Token t = make(TokKind::kInt, start);
      t.text = std::string(source.substr(start, i - start));
      t.int_value = static_cast<int64_t>(value);
      tokens.push_back(std::move(t));
      continue;
    }
    // Strings.
    if (c == '"') {
      size_t start = i;
      ++i;
      std::string text;
      bool closed = false;
      while (i < source.size()) {
        char d = source[i++];
        if (d == '"') {
          closed = true;
          break;
        }
        if (d == '\n') return error("newline in string literal");
        if (d == '\\') {
          if (i >= source.size()) break;
          char esc = source[i++];
          switch (esc) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            case 'r': text += '\r'; break;
            case '"': text += '"'; break;
            case '\\': text += '\\'; break;
            default: return error("bad escape in string literal");
          }
        } else {
          text += d;
        }
      }
      if (!closed) return error("unterminated string literal");
      Token t = make(TokKind::kString, start);
      t.text = std::move(text);
      tokens.push_back(std::move(t));
      continue;
    }
    // Punctuation, longest match first.
    static const char* kMulti[] = {":-", "==", "!=", "<=", ">=",
                                   "<<", ">>", "++", "=>"};
    bool matched = false;
    for (const char* op : kMulti) {
      size_t len = 2;
      if (source.substr(i, len) == op) {
        Token t = make(TokKind::kPunct, i);
        t.text = op;
        tokens.push_back(std::move(t));
        i += len;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static const std::string kSingle = "()[]{}<>,.:;=+-*/%&|^~!";
    if (kSingle.find(c) != std::string::npos) {
      Token t = make(TokKind::kPunct, i);
      t.text = std::string(1, c);
      tokens.push_back(std::move(t));
      ++i;
      continue;
    }
    return error(StrFormat("unexpected character '%c'", c));
  }
  Token eof = make(TokKind::kEof, i);
  tokens.push_back(std::move(eof));
  return tokens;
}

}  // namespace nerpa::dlog
