// Unit tests for the durability layer (src/ha): WAL append/replay and
// truncated-tail tolerance, snapshot + recovery round-trips, log
// compaction, digest-seq checkpointing, and the deterministic fault
// injector.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ha/durable.h"
#include "ha/fault.h"
#include "ha/wal.h"
#include "ovsdb/database.h"
#include "p4/interpreter.h"
#include "snvs/snvs.h"

namespace nerpa::ha {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/nerpa_ha_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

Json Record(int64_t n) {
  return Json(Json::Object{{"n", Json(n)}});
}

TEST(WriteAheadLog, AppendThenReplayReturnsSameRecords) {
  std::string dir = FreshDir("wal_roundtrip");
  std::vector<Json> replayed;
  {
    auto wal = WriteAheadLog::Open(dir + "/wal.jsonl");
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    for (int64_t n = 0; n < 5; ++n) {
      ASSERT_TRUE(wal->Append(Record(n)).ok());
    }
    EXPECT_EQ(wal->records_appended(), 5u);
  }
  auto wal = WriteAheadLog::Open(dir + "/wal.jsonl");
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Replay([&](const Json& record) {
                   replayed.push_back(record);
                   return Status::Ok();
                 }).ok());
  ASSERT_EQ(replayed.size(), 5u);
  for (int64_t n = 0; n < 5; ++n) EXPECT_EQ(replayed[n], Record(n));
  EXPECT_EQ(wal->truncated_tail_records(), 0u);
}

TEST(WriteAheadLog, TruncatedFinalRecordIsDropped) {
  std::string dir = FreshDir("wal_tail");
  std::string path = dir + "/wal.jsonl";
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(Record(1)).ok());
    ASSERT_TRUE(wal->Append(Record(2)).ok());
  }
  // Simulate a crash mid-append: a half-written final line.
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"n\": 3";  // no closing brace, no newline
  }
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  int64_t count = 0;
  ASSERT_TRUE(wal->Replay([&](const Json&) {
                   ++count;
                   return Status::Ok();
                 }).ok());
  EXPECT_EQ(count, 2);
  EXPECT_EQ(wal->truncated_tail_records(), 1u);
}

TEST(WriteAheadLog, CorruptionBeforeTailFailsReplay) {
  std::string dir = FreshDir("wal_corrupt");
  std::string path = dir + "/wal.jsonl";
  {
    std::ofstream out(path);
    out << "{\"n\": 1}\n";
    out << "this is not json\n";
    out << "{\"n\": 3}\n";
  }
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  EXPECT_FALSE(wal->Replay([](const Json&) { return Status::Ok(); }).ok());
}

TEST(WriteAheadLog, AppendAfterMoveWrites) {
  std::string dir = FreshDir("wal_move");
  std::string path = dir + "/wal.jsonl";
  auto opened = WriteAheadLog::Open(path);
  ASSERT_TRUE(opened.ok());
  ASSERT_TRUE(opened->Append(Record(1)).ok());

  // Move-construct, then move-assign; the append stream must follow the
  // moves (regression: a moved-from raw ofstream member used to leave the
  // destination writing nowhere).
  WriteAheadLog moved(std::move(opened).value());
  ASSERT_TRUE(moved.Append(Record(2)).ok());
  WriteAheadLog assigned = WriteAheadLog::Open(dir + "/other.jsonl").value();
  assigned = std::move(moved);
  ASSERT_TRUE(assigned.Append(Record(3)).ok());
  EXPECT_EQ(assigned.records_appended(), 3u);

  std::vector<Json> replayed;
  auto reader = WriteAheadLog::Open(path);
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(reader->Replay([&](const Json& record) {
                   replayed.push_back(record);
                   return Status::Ok();
                 }).ok());
  ASSERT_EQ(replayed.size(), 3u);
  for (int64_t n = 1; n <= 3; ++n) EXPECT_EQ(replayed[n - 1], Record(n));
}

TEST(WriteAheadLog, InteriorValidJsonByteFlipCaughtByCrc) {
  std::string dir = FreshDir("wal_byteflip");
  std::string path = dir + "/wal.jsonl";
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    for (int64_t n = 1; n <= 3; ++n) ASSERT_TRUE(wal->Append(Record(n)).ok());
  }
  // Flip one digit inside record 2's JSON.  The line still parses as
  // valid JSON — only the checksum can tell it was altered.
  std::string text;
  {
    std::ifstream in(path);
    text.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  size_t line2 = text.find('\n') + 1;
  size_t digit = text.find("\"n\":2", line2);
  ASSERT_NE(digit, std::string::npos);
  text[digit + 4] = '7';
  {
    std::ofstream out(path, std::ios::trunc);
    out << text;
  }
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  Status replay = wal->Replay([](const Json&) { return Status::Ok(); });
  ASSERT_FALSE(replay.ok());
  // Fails fast naming the corrupt record, not silently dropping it.
  EXPECT_NE(replay.ToString().find("record 2"), std::string::npos)
      << replay.ToString();
  EXPECT_NE(replay.ToString().find("crc mismatch"), std::string::npos);
}

TEST(WriteAheadLog, ResetCompactsToEmpty) {
  std::string dir = FreshDir("wal_reset");
  std::string path = dir + "/wal.jsonl";
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append(Record(1)).ok());
  ASSERT_TRUE(wal->Reset().ok());
  ASSERT_TRUE(wal->Append(Record(2)).ok());
  std::vector<Json> replayed;
  auto reader = WriteAheadLog::Open(path);
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(reader->Replay([&](const Json& record) {
                   replayed.push_back(record);
                   return Status::Ok();
                 }).ok());
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0], Record(2));
}

// --- DurableStore ---

Status AddPortRow(ovsdb::Database& db, const std::string& name, int64_t port,
                  int64_t tag) {
  ovsdb::TxnBuilder txn(&db);
  txn.Insert("Port", {{"name", ovsdb::Datum::String(name)},
                      {"port", ovsdb::Datum::Integer(port)},
                      {"vlan_mode", ovsdb::Datum::String("access")},
                      {"tag", ovsdb::Datum::Integer(tag)},
                      {"trunks", ovsdb::Datum::Set({})}});
  return txn.Commit().status();
}

TEST(DurableStore, FreshDirectoryStartsEmpty) {
  std::string dir = FreshDir("fresh");
  auto store = DurableStore::Open(snvs::SnvsSchema(), dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_FALSE((*store)->recovered());
  EXPECT_EQ((*store)->recovered_digest_seq(), 0);
  EXPECT_EQ((*store)->db().commit_count(), 0u);
}

TEST(DurableStore, WalOnlyRecoveryReproducesDatabase) {
  std::string dir = FreshDir("wal_only");
  Json before;
  {
    auto store = DurableStore::Open(snvs::SnvsSchema(), dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(AddPortRow((*store)->db(), "p1", 1, 10).ok());
    ASSERT_TRUE(AddPortRow((*store)->db(), "p2", 2, 20).ok());
    EXPECT_EQ((*store)->stats().wal_records_appended, 2u);
    before = DurableStore::SnapshotJson((*store)->db(), 0);
  }  // "crash": no checkpoint was ever taken
  auto store = DurableStore::Open(snvs::SnvsSchema(), dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE((*store)->recovered());
  EXPECT_EQ((*store)->stats().recovered_wal_records, 2u);
  // Same rows, same uuids: the snapshot serializations are identical.
  EXPECT_EQ(DurableStore::SnapshotJson((*store)->db(), 0), before);
}

TEST(DurableStore, CheckpointCompactsWalAndPersistsDigestSeq) {
  std::string dir = FreshDir("checkpoint");
  Json before;
  {
    auto store = DurableStore::Open(snvs::SnvsSchema(), dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(AddPortRow((*store)->db(), "p1", 1, 10).ok());
    ASSERT_TRUE((*store)->Checkpoint(/*digest_seq=*/42).ok());
    // Post-snapshot transactions land in the (now compacted) WAL.
    ASSERT_TRUE(AddPortRow((*store)->db(), "p2", 2, 20).ok());
    before = DurableStore::SnapshotJson((*store)->db(), 0);
    EXPECT_EQ((*store)->stats().checkpoints, 1u);
    EXPECT_EQ((*store)->stats().snapshot_rows, 1u);
  }
  auto store = DurableStore::Open(snvs::SnvsSchema(), dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE((*store)->recovered());
  EXPECT_EQ((*store)->recovered_digest_seq(), 42);
  EXPECT_EQ((*store)->stats().recovered_snapshot_rows, 1u);
  EXPECT_EQ((*store)->stats().recovered_wal_records, 1u);
  EXPECT_EQ(DurableStore::SnapshotJson((*store)->db(), 0), before);
}

/// Forwards to the real filesystem but fails the n-th Rename of one
/// source path — simulating a crash part-way through Checkpoint()'s
/// rotation sequence.
class RenameCrashIo : public Io {
 public:
  RenameCrashIo(std::string path, int fail_on)
      : path_(std::move(path)), fail_on_(fail_on) {}
  Status Rename(const std::string& from, const std::string& to) override {
    if (from == path_ && ++seen_ == fail_on_) {
      return Internal("injected crash");
    }
    return DefaultIo().Rename(from, to);
  }

 private:
  std::string path_;
  int fail_on_;
  int seen_ = 0;
};

TEST(DurableStore, CrashBetweenSnapshotAndWalRotationStillRecovers) {
  std::string dir = FreshDir("checkpoint_crash");
  Json before;
  {
    // Fail the second rename of wal.jsonl: checkpoint #2 dies after
    // rotating snapshot.json aside but before rotating the WAL — the
    // window where a stale wal.jsonl.1, were it not removed first, would
    // be replayed on top of the NEWER snapshot.json.1, double-applying
    // its uuid-pinned transactions.
    RenameCrashIo io(dir + "/wal.jsonl", 2);
    auto store = DurableStore::Open(snvs::SnvsSchema(), dir, &io);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE(AddPortRow((*store)->db(), "p1", 1, 10).ok());
    ASSERT_TRUE((*store)->Checkpoint(/*digest_seq=*/1).ok());
    ASSERT_TRUE(AddPortRow((*store)->db(), "p2", 2, 20).ok());
    before = DurableStore::SnapshotJson((*store)->db(), 0);
    EXPECT_FALSE((*store)->Checkpoint(/*digest_seq=*/2).ok());
  }  // crash mid-checkpoint: no snapshot.json, snapshot.json.1 is newest
  auto store = DurableStore::Open(snvs::SnvsSchema(), dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE((*store)->recovered());
  // snapshot.json.1 ({p1}, digest seq 1) + the live WAL ({p2}) reproduce
  // the exact pre-crash state.
  EXPECT_EQ((*store)->recovered_digest_seq(), 1);
  EXPECT_EQ(DurableStore::SnapshotJson((*store)->db(), 0), before);
}

TEST(DurableStore, RecoverSurvivesTruncatedWalTail) {
  std::string dir = FreshDir("durable_tail");
  {
    auto store = DurableStore::Open(snvs::SnvsSchema(), dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(AddPortRow((*store)->db(), "p1", 1, 10).ok());
  }
  {
    std::ofstream out(dir + "/wal.jsonl", std::ios::app);
    out << "[\"partial";  // interrupted append
  }
  auto store = DurableStore::Open(snvs::SnvsSchema(), dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->stats().recovered_wal_records, 1u);
  EXPECT_EQ((*store)->stats().truncated_tail_records, 1u);
}

TEST(DurableStore, RecoverDatabaseHelper) {
  std::string dir = FreshDir("recover_helper");
  EXPECT_FALSE(RecoverDatabase(snvs::SnvsSchema(), dir).ok());  // no state
  {
    auto store = DurableStore::Open(snvs::SnvsSchema(), dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(AddPortRow((*store)->db(), "p1", 1, 10).ok());
  }
  auto db = RecoverDatabase(snvs::SnvsSchema(), dir);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->commit_count(), 1u);
}

// --- FaultyRuntimeClient ---

p4::TableEntry AclEntry(uint64_t mac, uint64_t vlan) {
  p4::TableEntry entry;
  entry.table = "Acl";
  entry.match = {p4::MatchField::Exact(vlan), p4::MatchField::Exact(mac)};
  entry.action = "AclAllow";
  return entry;
}

TEST(FaultyRuntimeClient, SameSeedSameFaultSequence) {
  auto program = snvs::SnvsP4Program();
  std::vector<bool> run[2];
  for (int r = 0; r < 2; ++r) {
    p4::Switch sw(program);
    FaultPolicy policy;
    policy.write_fail_probability = 0.5;
    policy.seed = 7;
    FaultyRuntimeClient client(&sw, policy);
    for (uint64_t i = 0; i < 32; ++i) {
      run[r].push_back(
          client.Write({{p4::UpdateType::kInsert, AclEntry(i, 1)}}).ok());
    }
    EXPECT_GT(client.fault_stats().injected_failures, 0u);
    EXPECT_LT(client.fault_stats().injected_failures, 32u);
    EXPECT_EQ(client.fault_stats().write_calls, 32u);
  }
  EXPECT_EQ(run[0], run[1]);
}

TEST(FaultyRuntimeClient, InjectedFailureAppliesNothing) {
  auto program = snvs::SnvsP4Program();
  p4::Switch sw(program);
  FaultPolicy policy;
  policy.write_fail_probability = 1.0;
  FaultyRuntimeClient client(&sw, policy);
  Status status = client.Write({{p4::UpdateType::kInsert, AclEntry(1, 1)}});
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(sw.GetTable("Acl")->size(), 0u);
  EXPECT_EQ(client.write_count(), 0u);
}

TEST(FaultyRuntimeClient, MaxFailuresHeals) {
  auto program = snvs::SnvsP4Program();
  p4::Switch sw(program);
  FaultPolicy policy;
  policy.write_fail_probability = 1.0;
  policy.max_failures = 2;
  FaultyRuntimeClient client(&sw, policy);
  EXPECT_FALSE(client.Write({{p4::UpdateType::kInsert, AclEntry(1, 1)}}).ok());
  EXPECT_FALSE(client.Write({{p4::UpdateType::kInsert, AclEntry(1, 1)}}).ok());
  // Device "heals" after the failure budget is spent.
  EXPECT_TRUE(client.Write({{p4::UpdateType::kInsert, AclEntry(1, 1)}}).ok());
  EXPECT_EQ(client.fault_stats().injected_failures, 2u);
  EXPECT_EQ(sw.GetTable("Acl")->size(), 1u);
}

TEST(FaultyRuntimeClient, StallModeSucceedsSlowly) {
  auto program = snvs::SnvsP4Program();
  p4::Switch sw(program);
  FaultPolicy policy;
  policy.write_fail_probability = 1.0;  // every write draws a fault...
  policy.stall_nanos = 200'000;         // ...but stalls instead of failing
  FaultyRuntimeClient client(&sw, policy);
  EXPECT_TRUE(client.Write({{p4::UpdateType::kInsert, AclEntry(1, 1)}}).ok());
  EXPECT_EQ(client.fault_stats().injected_stalls, 1u);
  EXPECT_EQ(client.fault_stats().injected_failures, 0u);
  EXPECT_EQ(sw.GetTable("Acl")->size(), 1u);  // slow, not broken

  // Flipping the policy back to error mode makes the same client break.
  policy.stall_nanos = 0;
  client.set_policy(policy);
  EXPECT_FALSE(client.Write({{p4::UpdateType::kInsert, AclEntry(2, 1)}}).ok());
  EXPECT_EQ(client.fault_stats().injected_failures, 1u);
}

TEST(FaultyRuntimeClient, ReadsAreNeverFaulted) {
  auto program = snvs::SnvsP4Program();
  p4::Switch sw(program);
  FaultPolicy policy;
  policy.write_fail_probability = 1.0;
  FaultyRuntimeClient client(&sw, policy);
  EXPECT_TRUE(client.ReadTable("Acl").ok());
  EXPECT_TRUE(client.ReadMulticastGroups().ok());
}

}  // namespace
}  // namespace nerpa::ha
