// Hashing helpers: FNV-1a, CRC32, and boost-style hash combination.
#ifndef NERPA_COMMON_HASH_H_
#define NERPA_COMMON_HASH_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

namespace nerpa {

/// 64-bit FNV-1a over raw bytes.
inline uint64_t Fnv1a(const void* data, size_t size,
                      uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t Fnv1a(std::string_view s) { return Fnv1a(s.data(), s.size()); }

namespace hash_internal {
inline const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace hash_internal

/// CRC-32 (IEEE 802.3 polynomial, reflected) over raw bytes.  Used to
/// frame durable records (src/ha WAL lines, snapshot trailers) so that a
/// bit flip — even one producing valid JSON — is detected on recovery.
inline uint32_t Crc32(const void* data, size_t size) {
  const auto& table = hash_internal::Crc32Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

inline uint32_t Crc32(std::string_view s) { return Crc32(s.data(), s.size()); }

/// Mixes `value`'s hash into `seed` (boost::hash_combine recipe, 64-bit).
template <typename T>
inline void HashCombine(size_t& seed, const T& value) {
  std::hash<T> hasher;
  seed ^= hasher(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

}  // namespace nerpa

#endif  // NERPA_COMMON_HASH_H_
