# Empty compiler generated dependencies file for test_ovsdb_rpc.
# This may be replaced when dependencies are built.
