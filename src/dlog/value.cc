#include "dlog/value.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <string_view>
#include <unordered_set>

#include "common/strings.h"

namespace nerpa::dlog {

namespace {

using internal::kHashGolden;
constexpr uint64_t kGolden = kHashGolden;

/// boost-style combine over a raw, already-computed hash.
inline void MixHash(size_t& seed, size_t h) {
  internal::MixRawHash(seed, h);
}

inline size_t HashStringContent(std::string_view text) {
  size_t seed = 3 * kGolden;  // Tag::kString
  MixHash(seed, Fnv1a(text));
  return seed;
}

inline size_t HashTupleContent(const Value* data, size_t size) {
  size_t seed = 4 * kGolden;  // Tag::kTuple
  MixHash(seed, size);
  for (size_t i = 0; i < size; ++i) MixHash(seed, data[i].Hash());
  return seed;
}

using internal::InternedString;
using internal::InternedTuple;

struct StringKeyView {
  std::string_view text;
  size_t hash;
};

struct StringNodeHash {
  using is_transparent = void;
  size_t operator()(const InternedString* n) const noexcept { return n->hash; }
  size_t operator()(const StringKeyView& k) const noexcept { return k.hash; }
};

struct StringNodeEq {
  using is_transparent = void;
  bool operator()(const InternedString* a, const InternedString* b) const {
    return a == b || a->text == b->text;
  }
  bool operator()(const InternedString* a, const StringKeyView& k) const {
    return a->text == k.text;
  }
  bool operator()(const StringKeyView& k, const InternedString* a) const {
    return a->text == k.text;
  }
};

struct TupleKeyView {
  const Value* data;
  size_t size;
  size_t hash;
};

struct TupleNodeHash {
  using is_transparent = void;
  size_t operator()(const InternedTuple* n) const noexcept { return n->hash; }
  size_t operator()(const TupleKeyView& k) const noexcept { return k.hash; }
};

struct TupleNodeEq {
  using is_transparent = void;
  static bool Equal(const ValueVec& elems, const Value* data, size_t size) {
    if (elems.size() != size) return false;
    for (size_t i = 0; i < size; ++i) {
      if (!(elems[i] == data[i])) return false;
    }
    return true;
  }
  bool operator()(const InternedTuple* a, const InternedTuple* b) const {
    return a == b || Equal(a->elems, b->elems.data(), b->elems.size());
  }
  bool operator()(const InternedTuple* a, const TupleKeyView& k) const {
    return Equal(a->elems, k.data, k.size);
  }
  bool operator()(const TupleKeyView& k, const InternedTuple* a) const {
    return Equal(a->elems, k.data, k.size);
  }
};

/// The process-wide hash-consing pool.  Nodes are owned by deques (stable
/// addresses) and never evicted; with interning enabled, a dedup set makes
/// repeated payloads share one node.  Heap-allocated and intentionally
/// leaked so Values in static-storage objects stay valid at shutdown.
class Pool {
 public:
  static Pool& Instance() {
    static Pool* pool = new Pool;
    return *pool;
  }

  const InternedString* String(std::string&& text) {
    size_t hash = HashStringContent(text);
    std::lock_guard<std::mutex> lock(string_mu_);
    if (enabled_.load(std::memory_order_relaxed)) {
      auto it = string_dedup_.find(StringKeyView{text, hash});
      if (it != string_dedup_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return *it;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    string_bytes_ += text.size();
    const InternedString* node =
        &string_storage_.emplace_back(InternedString{std::move(text), hash});
    if (enabled_.load(std::memory_order_relaxed)) string_dedup_.insert(node);
    return node;
  }

  const InternedTuple* Tuple(ValueVec&& elems) {
    size_t hash = HashTupleContent(elems.data(), elems.size());
    std::lock_guard<std::mutex> lock(tuple_mu_);
    if (enabled_.load(std::memory_order_relaxed)) {
      auto it =
          tuple_dedup_.find(TupleKeyView{elems.data(), elems.size(), hash});
      if (it != tuple_dedup_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return *it;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    tuple_bytes_ += elems.size() * sizeof(Value);
    const InternedTuple* node =
        &tuple_storage_.emplace_back(InternedTuple{std::move(elems), hash});
    if (enabled_.load(std::memory_order_relaxed)) tuple_dedup_.insert(node);
    return node;
  }

  void SetEnabled(bool enabled) {
    // Taking both locks serializes against in-flight interning; the dedup
    // sets are kept, so re-enabling resumes sharing with prior nodes.
    std::scoped_lock lock(string_mu_, tuple_mu_);
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool Enabled() const { return enabled_.load(std::memory_order_relaxed); }

  InternPoolStats Stats() {
    std::scoped_lock lock(string_mu_, tuple_mu_);
    InternPoolStats stats;
    stats.strings = string_storage_.size();
    stats.tuples = tuple_storage_.size();
    stats.string_bytes = string_bytes_;
    stats.tuple_bytes = tuple_bytes_;
    stats.hits = hits_.load(std::memory_order_relaxed);
    stats.misses = misses_.load(std::memory_order_relaxed);
    return stats;
  }

 private:
  std::mutex string_mu_;
  std::deque<InternedString> string_storage_;
  std::unordered_set<const InternedString*, StringNodeHash, StringNodeEq>
      string_dedup_;
  size_t string_bytes_ = 0;

  std::mutex tuple_mu_;
  std::deque<InternedTuple> tuple_storage_;
  std::unordered_set<const InternedTuple*, TupleNodeHash, TupleNodeEq>
      tuple_dedup_;
  size_t tuple_bytes_ = 0;

  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace

void SetValueInterning(bool enabled) { Pool::Instance().SetEnabled(enabled); }
bool ValueInterningEnabled() { return Pool::Instance().Enabled(); }
InternPoolStats GetInternPoolStats() { return Pool::Instance().Stats(); }

Value Value::String(std::string v) {
  return Value(Tag::kString, Pool::Instance().String(std::move(v)));
}

Value Value::Tuple(ValueVec elems) {
  return Value(Tag::kTuple, Pool::Instance().Tuple(std::move(elems)));
}

bool Value::StringEqualSlow(const Value& o) const {
  if (str_->hash != o.str_->hash) return false;
  return str_->text == o.str_->text;
}

bool Value::TupleEqualSlow(const Value& o) const {
  if (tup_->hash != o.tup_->hash) return false;
  return TupleNodeEq::Equal(tup_->elems, o.tup_->elems.data(),
                            o.tup_->elems.size());
}

namespace {
template <typename T>
int ThreeWay(T a, T b) {
  return a < b ? -1 : (b < a ? 1 : 0);
}
}  // namespace

int Value::ComparePayloadSlow(const Value& o) const {
  switch (tag_) {
    case Tag::kString:
      if (str_ == o.str_) return 0;
      return str_->text.compare(o.str_->text);
    case Tag::kTuple: {
      if (tup_ == o.tup_) return 0;
      const ValueVec& a = tup_->elems;
      const ValueVec& b = o.tup_->elems;
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      return ThreeWay(a.size(), b.size());
    }
    default:
      return 0;
  }
}

std::string Value::ToString() const {
  switch (tag_) {
    case Tag::kBool:
      return as_bool() ? "true" : "false";
    case Tag::kInt:
      return std::to_string(as_int());
    case Tag::kBit:
      return std::to_string(as_bit());
    case Tag::kString:
      return QuoteString(as_string());
    case Tag::kTuple: {
      std::string out = "(";
      const ValueVec& elems = as_tuple();
      for (size_t i = 0; i < elems.size(); ++i) {
        if (i > 0) out += ", ";
        out += elems[i].ToString();
      }
      return out + ")";
    }
  }
  return "<bad>";
}

void Row::Grow(size_t need) {
  size_t cap = std::max<size_t>(need, 2 * size_t{capacity_});
  // Value is trivially copyable, so raw storage plus memcpy is enough; the
  // inline buffer spills to the heap only for wide rows (> kInline values).
  Value* fresh = static_cast<Value*>(::operator new(cap * sizeof(Value)));
  if (size_ != 0) std::memcpy(fresh, data_, size_ * sizeof(Value));
  if (data_ != inline_) ::operator delete(data_);
  data_ = fresh;
  capacity_ = static_cast<uint32_t>(cap);
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  return out + ")";
}

}  // namespace nerpa::dlog
