#include "net/mac.h"

#include <cctype>

#include "common/strings.h"

namespace nerpa::net {

std::optional<Mac> Mac::Parse(std::string_view text) {
  uint64_t bits = 0;
  int octets = 0;
  size_t i = 0;
  while (i < text.size()) {
    int value = 0;
    int digits = 0;
    while (i < text.size() && digits < 2 &&
           std::isxdigit(static_cast<unsigned char>(text[i]))) {
      char c = text[i++];
      int d = (c >= '0' && c <= '9') ? c - '0'
              : (c >= 'a' && c <= 'f') ? c - 'a' + 10
                                       : c - 'A' + 10;
      value = value * 16 + d;
      ++digits;
    }
    if (digits == 0) return std::nullopt;
    bits = (bits << 8) | static_cast<unsigned>(value);
    ++octets;
    if (i == text.size()) break;
    if (text[i] != ':' && text[i] != '-') return std::nullopt;
    ++i;
    if (i == text.size()) return std::nullopt;  // trailing separator
  }
  if (octets != 6) return std::nullopt;
  return Mac(bits);
}

std::string Mac::ToString() const {
  auto b = Bytes();
  return StrFormat("%02x:%02x:%02x:%02x:%02x:%02x", b[0], b[1], b[2], b[3],
                   b[4], b[5]);
}

}  // namespace nerpa::net
