# Empty compiler generated dependencies file for nerpa_p4.
# This may be replaced when dependencies are built.
