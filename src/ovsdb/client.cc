#include "ovsdb/client.h"

#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/strings.h"

namespace nerpa::ovsdb {

OvsdbClient::~OvsdbClient() { Disconnect(); }

Status OvsdbClient::Connect(const std::string& host, uint16_t port) {
  Disconnect();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Internal("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgument("bad host '" + host + "' (use a dotted quad)");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd_);
    fd_ = -1;
    return Internal(StrFormat("connect(%s:%u) failed: %s", host.c_str(), port,
                              std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Status::Ok();
}

void OvsdbClient::Disconnect() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  inbox_.clear();
  handlers_.clear();
}

Status OvsdbClient::ReadMore(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) return Internal("poll() failed");
  if (ready == 0) return Status::Ok();  // timeout; caller decides
  char buffer[4096];
  ssize_t n = ::recv(fd_, buffer, sizeof buffer, 0);
  if (n == 0) return FailedPrecondition("server closed the connection");
  if (n < 0) return Internal("recv() failed");
  return splitter_.Feed(
      std::string_view(buffer, static_cast<size_t>(n)),
      [&](std::string_view text) -> Status {
        NERPA_ASSIGN_OR_RETURN(Json json, Json::Parse(text));
        NERPA_ASSIGN_OR_RETURN(JsonRpcMessage message,
                               JsonRpcMessage::FromJson(json));
        inbox_.push_back(std::move(message));
        return Status::Ok();
      });
}

int OvsdbClient::DeliverQueued() {
  int delivered = 0;
  for (auto it = inbox_.begin(); it != inbox_.end();) {
    if (it->kind == JsonRpcMessage::Kind::kNotification &&
        it->method == "update" && it->params.is_array() &&
        it->params.as_array().size() == 2) {
      std::string key = it->params.as_array()[0].Dump();
      auto handler = handlers_.find(key);
      if (handler != handlers_.end()) {
        handler->second(it->params.as_array()[0], it->params.as_array()[1]);
        ++delivered;
      }
      it = inbox_.erase(it);
    } else {
      ++it;
    }
  }
  return delivered;
}

Result<JsonRpcMessage> OvsdbClient::Call(const std::string& method,
                                         Json params) {
  if (fd_ < 0) return FailedPrecondition("not connected");
  Json id(next_id_++);
  JsonRpcMessage request =
      JsonRpcMessage::Request(method, std::move(params), id);
  std::string wire = request.ToJson().Dump();
  size_t sent = 0;
  while (sent < wire.size()) {
    ssize_t n =
        ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return Internal("send() failed");
    sent += static_cast<size_t>(n);
  }
  // Wait for the matching response; queue notifications seen on the way.
  for (int spins = 0; spins < 10000; ++spins) {
    for (auto it = inbox_.begin(); it != inbox_.end(); ++it) {
      if (it->kind == JsonRpcMessage::Kind::kResponse && it->id == id) {
        JsonRpcMessage response = std::move(*it);
        inbox_.erase(it);
        return response;
      }
    }
    NERPA_RETURN_IF_ERROR(ReadMore(/*timeout_ms=*/1000));
  }
  return Internal("no response to '" + method + "'");
}

Status OvsdbClient::Echo() {
  NERPA_ASSIGN_OR_RETURN(
      JsonRpcMessage response,
      Call("echo", Json(Json::Array{Json("ping")})));
  if (!response.error.is_null()) {
    return Internal("echo error: " + response.error.Dump());
  }
  return Status::Ok();
}

Result<DatabaseSchema> OvsdbClient::GetSchema() {
  NERPA_ASSIGN_OR_RETURN(JsonRpcMessage response,
                         Call("get_schema", Json(Json::Array{})));
  if (!response.error.is_null()) {
    return Internal("get_schema error: " + response.error.Dump());
  }
  return DatabaseSchema::FromJson(response.result);
}

Result<Json> OvsdbClient::Transact(Json operations) {
  if (!operations.is_array()) {
    return InvalidArgument("transact takes an array of operations");
  }
  Json::Array params;
  params.push_back(Json("db"));
  for (Json& op : operations.as_array()) params.push_back(std::move(op));
  NERPA_ASSIGN_OR_RETURN(JsonRpcMessage response,
                         Call("transact", Json(std::move(params))));
  if (!response.error.is_null()) {
    return FailedPrecondition("transact error: " + response.error.Dump());
  }
  return response.result;
}

Result<Json> OvsdbClient::Monitor(Json monitor_id,
                                  const std::vector<std::string>& tables,
                                  UpdateHandler handler) {
  Json::Array params;
  params.push_back(Json("db"));
  params.push_back(monitor_id);
  Json::Object requests;
  for (const std::string& table : tables) {
    requests[table] = Json(Json::Object{});
  }
  params.push_back(Json(std::move(requests)));
  NERPA_ASSIGN_OR_RETURN(JsonRpcMessage response,
                         Call("monitor", Json(std::move(params))));
  if (!response.error.is_null()) {
    return FailedPrecondition("monitor error: " + response.error.Dump());
  }
  handlers_[monitor_id.Dump()] = std::move(handler);
  return response.result;
}

Status OvsdbClient::MonitorCancel(const Json& monitor_id) {
  NERPA_ASSIGN_OR_RETURN(
      JsonRpcMessage response,
      Call("monitor_cancel", Json(Json::Array{monitor_id})));
  if (!response.error.is_null()) {
    return FailedPrecondition("monitor_cancel error: " +
                              response.error.Dump());
  }
  handlers_.erase(monitor_id.Dump());
  return Status::Ok();
}

Result<int> OvsdbClient::Poll() {
  NERPA_RETURN_IF_ERROR(ReadMore(/*timeout_ms=*/0));
  return DeliverQueued();
}

Result<int> OvsdbClient::WaitForUpdate(int timeout_ms) {
  int waited = 0;
  while (true) {
    int delivered = DeliverQueued();
    if (delivered > 0) return delivered;
    if (waited >= timeout_ms) return 0;
    NERPA_RETURN_IF_ERROR(ReadMore(/*timeout_ms=*/50));
    waited += 50;
  }
}

}  // namespace nerpa::ovsdb
