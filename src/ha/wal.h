// Write-ahead log for the management plane.
//
// One record per line, appended and flushed after every committed OVSDB
// transaction (via Database::AddCommitHook).  Records are the uuid-pinned
// "transact" operation arrays, so replaying them through
// Database::Transact reproduces the exact row identities and contents.
//
// Framing: each line is `crc32(json-hex8) <space> json`.  The checksum
// covers the JSON text, so corruption is detected even when a flipped
// byte still parses as valid JSON.  Legacy unframed lines (starting with
// '[' or '{', written before checksumming existed) are still replayed,
// without verification.
//
// Recovery policy:
//   - torn *final* line (unparseable or failing its checksum): an
//     interrupted append whose transaction was never acknowledged as
//     durable — dropped, counted in truncated_tail_records(), and
//     physically truncated from the file so subsequent appends start on
//     a clean line boundary instead of concatenating onto the partial
//     record (which would read as interior corruption next recovery).
//   - corrupt *interior* record: real corruption; Replay() fails fast
//     with the record index so the operator knows exactly where history
//     diverged.
#ifndef NERPA_HA_WAL_H_
#define NERPA_HA_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/json.h"
#include "common/status.h"
#include "common/watchdog.h"
#include "ha/io.h"

namespace nerpa::ha {

class WriteAheadLog {
 public:
  /// Opens (creating if missing) the log at `path` for appending.  All
  /// disk access goes through `io` (defaults to the real filesystem).
  static Result<WriteAheadLog> Open(const std::string& path,
                                    Io* io = nullptr);

  // Movable: the append stream lives behind a unique_ptr, so the stream
  // state survives Open() returning by value (regression-tested by
  // test_ha's Append-after-move case).
  WriteAheadLog(WriteAheadLog&&) = default;
  WriteAheadLog& operator=(WriteAheadLog&&) = default;

  const std::string& path() const { return path_; }

  /// Appends one checksummed record and flushes it to the OS.
  Status Append(const Json& record);

  /// Attaches a watchdog (not owned): every Append is Arm()ed under
  /// `subsystem` with `timeout_nanos` and Disarm()ed on return, so a
  /// flush wedged in the kernel (dying disk, hung NFS) is visible to
  /// supervisors as a stuck subsystem rather than silent lease loss.
  void AttachWatchdog(Watchdog* watchdog, std::string subsystem,
                      int64_t timeout_nanos) {
    watchdog_ = watchdog;
    watchdog_subsystem_ = std::move(subsystem);
    watchdog_timeout_nanos_ = timeout_nanos;
  }

  /// Invokes `apply` on every well-formed record in file order.  Stops
  /// with the error if `apply` fails.  See the recovery policy above for
  /// how torn tails and interior corruption differ.
  Status Replay(const std::function<Status(const Json&)>& apply);

  /// Truncates the log to empty — called after a snapshot subsumes the
  /// logged transactions (log compaction).
  Status Reset();

  /// Rotates the log aside to `<path>.1` (replacing any previous
  /// rotation) and reopens a fresh empty log.  The rotated file pairs
  /// with the snapshot that subsumed it, enabling previous-snapshot
  /// fallback recovery (see DurableStore).
  Status Rotate();

  uint64_t records_appended() const { return records_appended_; }
  uint64_t records_replayed() const { return records_replayed_; }
  uint64_t truncated_tail_records() const { return truncated_tail_records_; }

  /// Replays a rotated/archived WAL file at `path` without constructing a
  /// log object.  Same recovery policy as Replay().  `replayed` /
  /// `truncated` accumulate counts when non-null.
  /// `valid_prefix_bytes`, when non-null, receives the byte length of the
  /// file prefix covering every successfully replayed record — the safe
  /// truncation point when the tail is torn.
  static Status ReplayFile(const std::string& path, Io& io,
                           const std::function<Status(const Json&)>& apply,
                           uint64_t* replayed = nullptr,
                           uint64_t* truncated = nullptr,
                           uint64_t* valid_prefix_bytes = nullptr);

  /// Formats one framed WAL line (exposed for tests and benches that
  /// construct log files directly).
  static std::string FrameRecord(const Json& record);

 private:
  WriteAheadLog(std::string path, Io* io)
      : path_(std::move(path)), io_(io) {}

  std::string path_;
  Io* io_ = nullptr;
  std::unique_ptr<Appender> out_;
  Watchdog* watchdog_ = nullptr;
  std::string watchdog_subsystem_;
  int64_t watchdog_timeout_nanos_ = 0;
  uint64_t records_appended_ = 0;
  uint64_t records_replayed_ = 0;
  uint64_t truncated_tail_records_ = 0;
};

}  // namespace nerpa::ha

#endif  // NERPA_HA_WAL_H_
