file(REMOVE_RECURSE
  "CMakeFiles/nerpa_core.dir/bindings.cc.o"
  "CMakeFiles/nerpa_core.dir/bindings.cc.o.d"
  "CMakeFiles/nerpa_core.dir/controller.cc.o"
  "CMakeFiles/nerpa_core.dir/controller.cc.o.d"
  "libnerpa_core.a"
  "libnerpa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nerpa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
