// Unit tests for address types and packet codecs.
#include <gtest/gtest.h>

#include "net/ip.h"
#include "net/mac.h"
#include "net/packet.h"

namespace nerpa::net {
namespace {

TEST(Mac, ParseAndPrint) {
  auto mac = Mac::Parse("00:1b:44:11:3a:b7");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->ToString(), "00:1b:44:11:3a:b7");
  EXPECT_EQ(mac->bits(), 0x001B44113AB7ULL);
  EXPECT_TRUE(Mac::Parse("AA-BB-CC-DD-EE-FF").has_value());
  EXPECT_FALSE(Mac::Parse("00:1b:44:11:3a").has_value());
  EXPECT_FALSE(Mac::Parse("00:1b:44:11:3a:b7:99").has_value());
  EXPECT_FALSE(Mac::Parse("zz:1b:44:11:3a:b7").has_value());
}

TEST(Mac, Properties) {
  EXPECT_TRUE(Mac::Broadcast().IsBroadcast());
  EXPECT_TRUE(Mac::Broadcast().IsMulticast());
  EXPECT_TRUE(Mac(0x01, 0, 0x5E, 0, 0, 1).IsMulticast());
  EXPECT_TRUE(Mac(0x02, 0, 0, 0, 0, 1).IsUnicast());
  EXPECT_TRUE(Mac().IsZero());
}

TEST(Mac, BytesRoundTrip) {
  Mac mac(0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01);
  auto bytes = mac.Bytes();
  EXPECT_EQ(Mac::FromBytes(bytes.data()), mac);
}

TEST(Ipv4, ParseAndPrint) {
  auto ip = Ipv4::Parse("192.168.1.200");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->ToString(), "192.168.1.200");
  EXPECT_FALSE(Ipv4::Parse("256.0.0.1").has_value());
  EXPECT_FALSE(Ipv4::Parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4::Parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4::Parse("").has_value());
}

TEST(Ipv4Prefix, ContainsAndNormalizes) {
  auto prefix = Ipv4Prefix::Parse("10.1.0.0/16");
  ASSERT_TRUE(prefix.has_value());
  EXPECT_TRUE(prefix->Contains(*Ipv4::Parse("10.1.200.3")));
  EXPECT_FALSE(prefix->Contains(*Ipv4::Parse("10.2.0.1")));
  // Host bits are cleared.
  auto messy = Ipv4Prefix::Parse("10.1.2.3/16");
  EXPECT_EQ(messy->ToString(), "10.1.0.0/16");
  // /0 matches everything.
  auto all = Ipv4Prefix::Parse("0.0.0.0/0");
  EXPECT_TRUE(all->Contains(*Ipv4::Parse("255.255.255.255")));
  EXPECT_FALSE(Ipv4Prefix::Parse("10.0.0.0/33").has_value());
}

TEST(PacketCodec, BitLevelRoundTrip) {
  PacketWriter writer;
  writer.WriteBits(0b101, 3);   // VLAN PCP-style sub-byte field
  writer.WriteBits(0, 1);
  writer.WriteBits(0xABC, 12);
  writer.WriteU16(0x0800);
  Packet packet = writer.Finish();
  ASSERT_EQ(packet.size(), 4u);

  PacketReader reader(packet);
  EXPECT_EQ(*reader.ReadBits(3), 0b101u);
  EXPECT_EQ(*reader.ReadBits(1), 0u);
  EXPECT_EQ(*reader.ReadBits(12), 0xABCu);
  EXPECT_EQ(*reader.ReadU16(), 0x0800u);
  EXPECT_FALSE(reader.ReadU8().has_value());  // past the end
}

TEST(PacketCodec, EthernetFrame) {
  Mac dst(0, 1, 2, 3, 4, 5), src(6, 7, 8, 9, 10, 11);
  Packet frame = MakeEthernetFrame(dst, src, 0x0800, {0xAA, 0xBB});
  ASSERT_EQ(frame.size(), 16u);  // 14 header + 2 payload
  PacketReader reader(frame);
  EXPECT_EQ(*reader.ReadMac(), dst);
  EXPECT_EQ(*reader.ReadMac(), src);
  EXPECT_EQ(*reader.ReadU16(), 0x0800u);
  EXPECT_EQ(*reader.ReadU8(), 0xAAu);
}

TEST(PacketCodec, VlanTaggedFrame) {
  Mac dst(0, 1, 2, 3, 4, 5), src(6, 7, 8, 9, 10, 11);
  Packet frame = MakeEthernetFrame(dst, src, 0x0800, {}, 0x123);
  ASSERT_EQ(frame.size(), 18u);
  PacketReader reader(frame);
  reader.Skip(12);
  EXPECT_EQ(*reader.ReadU16(), 0x8100u);       // TPID
  EXPECT_EQ(*reader.ReadBits(4), 0u);           // pcp+dei
  EXPECT_EQ(*reader.ReadBits(12), 0x123u);      // vid
  EXPECT_EQ(*reader.ReadU16(), 0x0800u);        // inner etherType
}

TEST(PacketCodec, HexDump) {
  EXPECT_EQ(HexDump({0xDE, 0xAD, 0xBE, 0xEF}), "dead beef");
}

}  // namespace
}  // namespace nerpa::net
