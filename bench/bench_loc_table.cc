// E3 — the §4.3 lines-of-code table.
//
// "snvs consists of 350 LOC of DDlog (250 of rules, 100 of generated
//  relations); 300 of P4; 5 OVSDB tables with 2–5 fields each; and 50 of
//  generated Rust glue code.  700 total LOC is at least an order of
//  magnitude less than an incremental implementation of similar features
//  in Java or C."
//
// We measure the same artifacts from this repository's actual sources:
// the hand-written snvs rules, the generated relation declarations, the P4
// pipeline listing, the OVSDB schema, and — for the comparison the paper
// makes — the hand-written incremental controller implementing the same
// features (src/baseline/imperative.cc).
#include <fstream>
#include <sstream>

#include "baseline/imperative.h"
#include "bench/bench_util.h"
#include "common/strings.h"
#include "snvs/snvs.h"

namespace nerpa {
namespace {

using bench::Banner;
using bench::Table;

std::string ReadFileOr(const char* path, const std::string& fallback) {
  std::ifstream in(path);
  if (!in) return fallback;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int Run() {
  Banner("E3 / §4.3", "snvs lines-of-code inventory vs the paper's table");

  auto stack_result = snvs::BuildSnvsStack();
  if (!stack_result.ok()) {
    std::fprintf(stderr, "%s\n", stack_result.status().ToString().c_str());
    return 1;
  }
  snvs::SnvsStack& stack = **stack_result;

  int rules_loc = CountCodeLines(snvs::SnvsRules());
  int generated_decls_loc = CountCodeLines(stack.bindings().DeclsText());
  int p4_loc = CountCodeLines(snvs::SnvsP4Source());
  const ovsdb::DatabaseSchema& schema = stack.db().schema();
  size_t tables = schema.tables.size();
  size_t min_fields = SIZE_MAX, max_fields = 0;
  for (const auto& [name, table] : schema.tables) {
    min_fields = std::min(min_fields, table.columns.size());
    max_fields = std::max(max_fields, table.columns.size());
  }
  // The "glue" the prototype hand-counts is generated for us by
  // src/nerpa/bindings.cc at runtime; the per-program artifact is zero
  // lines (that is the point of co-design), so we report the generated
  // declaration text as the visible artifact.
  int total =
      rules_loc + generated_decls_loc + p4_loc + static_cast<int>(tables);

  // The hand-written incremental comparator, measured from its source.
  std::string imperative_source = ReadFileOr(
      baseline::kImperativeSourcePath, "");
  int imperative_loc = CountCodeLines(imperative_source);

  Table table({"artifact", "paper (snvs prototype)", "this repo (measured)"});
  table.AddRow({"control plane: hand-written rules", "250 LOC (DDlog)",
                StrFormat("%d LOC (dlog dialect)", rules_loc)});
  table.AddRow({"control plane: generated relations", "100 LOC",
                StrFormat("%d LOC", generated_decls_loc)});
  table.AddRow({"data plane: P4 program", "300 LOC",
                StrFormat("%d LOC (textual P4 dialect)", p4_loc)});
  table.AddRow({"management plane: OVSDB tables", "5 tables, 2-5 fields",
                StrFormat("%zu tables, %zu-%zu fields", tables, min_fields,
                          max_fields)});
  table.AddRow({"inter-plane glue", "50 LOC (generated Rust)",
                "0 LOC (generated in-process)"});
  table.AddRow({"total", "~700 LOC", StrFormat("~%d LOC", total)});
  table.AddRow({"hand-written incremental equivalent",
                ">= 10x more (Java/C, §4.3)",
                imperative_loc > 0
                    ? StrFormat("%d LOC (C++ baseline, VLAN+MAC+ACL+mirror "
                                "only)",
                                imperative_loc)
                    : "source not found"});
  table.Print();

  if (imperative_loc > 0 && rules_loc > 0) {
    std::printf(
        "\nratio: the hand-written incremental controller is %.1fx the size\n"
        "of the declarative rules for the same features — and it is the\n"
        "EASY part: it covers the logical entries only, with no OVSDB\n"
        "monitor handling, no P4Runtime conversion, and no transaction\n"
        "machinery (all of which the rules get from the framework).\n",
        static_cast<double>(imperative_loc) / rules_loc);
  }
  return 0;
}

}  // namespace
}  // namespace nerpa

int main() { return nerpa::Run(); }
