// A TCP OVSDB client for OvsdbServer: synchronous request/response plus an
// explicitly pumped update stream (no hidden threads — tests and the
// networked controller call Poll()/WaitForUpdate() deterministically).
//
// Self-healing sessions: when a HealPolicy is enabled and the transport
// drops mid-call or mid-poll, the client reconnects with bounded
// exponential backoff and re-establishes every registered monitor with a
// "monitor_since" request carrying the last txn-id it saw.  The server
// replays exactly the deltas committed during the outage (or answers
// found=false with a full dump when the gap has aged out of its history
// window, or when the server's instance epoch changed — a restarted
// server must not replay deltas from an unrelated history), so each
// handler's update stream stays gap-free across reconnects.  Replayed
// deltas count as delivered updates in Poll() / WaitForUpdate() return
// values.
//
// Heal-and-retried requests re-send the same session-scoped request id;
// the server dedupes "transact" on it, so a transaction it applied just
// before the transport died is not applied again (exactly-once).
#ifndef NERPA_OVSDB_CLIENT_H_
#define NERPA_OVSDB_CLIENT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/retry.h"
#include "common/status.h"
#include "ovsdb/jsonrpc.h"
#include "ovsdb/schema.h"

namespace nerpa::ovsdb {

class OvsdbClient {
 public:
  OvsdbClient();
  ~OvsdbClient();

  OvsdbClient(const OvsdbClient&) = delete;
  OvsdbClient& operator=(const OvsdbClient&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  void Disconnect();
  bool connected() const { return fd_ >= 0; }

  /// Session self-healing knobs.  Disabled by default: a dropped transport
  /// surfaces as an error, exactly as before.
  struct HealPolicy {
    bool enabled = false;
    int max_attempts = 5;    // reconnect attempts per heal
    int backoff_ms = 10;     // first retry delay, doubled per attempt
    int max_backoff_ms = 500;
  };
  void set_heal_policy(const HealPolicy& policy) { heal_ = policy; }
  const HealPolicy& heal_policy() const { return heal_; }

  struct SessionStats {
    uint64_t reconnects = 0;        // successful transport re-establishments
    uint64_t replayed_updates = 0;  // monitor deltas delivered during heals
    uint64_t full_redumps = 0;      // heals that fell back to a full dump
    uint64_t failed_heals = 0;      // heals that exhausted max_attempts
    /// Heals cut short because the session's retry budget ran dry (the
    /// backend has been failing faster than it succeeds — fail fast
    /// instead of hammering it).
    uint64_t heal_budget_exhausted = 0;
    uint64_t deadline_rejects = 0;  // calls refused on an expired deadline
  };
  /// Snapshot of the session counters.  Returned by value under a lock:
  /// a supervisor thread may sample stats while the owning thread is
  /// mid-heal (the one sanctioned cross-thread entry point — everything
  /// else on this class stays single-threaded).
  SessionStats session_stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }

  /// Chaos hook: kills the transport under the session (the next read or
  /// write fails) without telling the client, as a mid-flight network
  /// fault would.  Healing, if enabled, kicks in lazily.
  void InjectTransportFault();

  /// Chaos hook: kills only the receive half — requests still reach the
  /// server but responses are lost, the worst case for a non-idempotent
  /// call (the server applies it, the client cannot tell).  Exercises the
  /// request-id dedup that keeps a healed "transact" exactly-once.
  void InjectReceiveFault();

  /// Round-trip "echo" (liveness probe).
  Status Echo();

  /// Fetches and parses the database schema.
  Result<DatabaseSchema> GetSchema();

  /// Runs a transaction (array of operation objects, as Database::Transact
  /// takes); returns the per-op results.  `deadline` (default infinite)
  /// rides the request envelope: the server refuses to evaluate an
  /// already-expired transaction, and the response wait here is bounded by
  /// the remaining budget instead of the full response timeout.
  Result<Json> Transact(Json operations, Deadline deadline = Deadline());

  using UpdateHandler =
      std::function<void(const Json& monitor_id, const Json& updates)>;

  /// Registers a monitor on `tables` (empty = all); returns the initial
  /// contents.  Subsequent updates are queued and delivered to `handler`
  /// from Poll().  The registration survives transport heals.
  Result<Json> Monitor(Json monitor_id, const std::vector<std::string>& tables,
                       UpdateHandler handler);

  /// Column-scoped monitor (table -> columns; empty list = all columns of
  /// that table): rows arrive projected, and commits touching only
  /// unselected columns are invisible.  Pair with Fetch() for the columns
  /// deliberately left unmonitored.  Survives heals like Monitor().
  Result<Json> MonitorColumns(
      Json monitor_id, std::map<std::string, std::vector<std::string>> spec,
      UpdateHandler handler);

  /// On-demand read: rows of `table` matching the `where` clause array,
  /// projected onto `columns` (empty = all + _uuid).  Returns the "fetch"
  /// result object ({"rows": [...]}).  Deadline semantics as Transact().
  Result<Json> Fetch(const std::string& table, Json where,
                     std::vector<std::string> columns,
                     Deadline deadline = Deadline());

  /// Marks this session as a priority session (level > 0): the server
  /// services its input first each cycle and exempts it from the
  /// slow-consumer outbox cap.  Sticky across heals.
  Status SetPriority(int level);
  /// Cancels a monitor.  Cancelling over a dead session (heal disabled or
  /// exhausted) is a local no-op success — the server side died with the
  /// socket.
  Status MonitorCancel(const Json& monitor_id);

  /// Drains any queued update notifications into their handlers without
  /// blocking.  Returns the number of updates delivered.
  Result<int> Poll();

  /// Blocks (up to `timeout_ms`) until at least one update is delivered.
  Result<int> WaitForUpdate(int timeout_ms);

 private:
  struct MonitorReg {
    Json id;
    // table -> monitored columns (empty list = all columns; empty map =
    // all tables), preserved so heals re-register the same projection.
    std::map<std::string, std::vector<std::string>> spec;
    UpdateHandler handler;
    int64_t last_txn_id = -1;  // newest txn-id seen on this monitor
  };

  /// Shared body of Monitor / MonitorColumns.
  Result<Json> RegisterMonitor(
      Json monitor_id, std::map<std::string, std::vector<std::string>> spec,
      UpdateHandler handler);
  /// The "requests" wire object for a spec ({table: {"columns": [...]}}).
  static Json SpecToRequests(
      const std::map<std::string, std::vector<std::string>>& spec);

  /// Raw connect to host_/port_, resetting transport state but keeping
  /// monitor registrations.
  Status Dial();
  void CloseSocket();
  /// Reconnects (jittered bounded backoff, gated by the session retry
  /// budget) and replays each registration through "monitor_since";
  /// delivered deltas are counted in heal_delivered_.
  Status Heal();
  /// Next request id: a string namespaced by the per-client session token
  /// (unique across reconnects), so the server can deduplicate a
  /// heal-and-retried request that it already applied.
  Json NextId();
  /// Sends a request and blocks for its response, queueing any
  /// notifications that arrive in between.  No healing.  An expired
  /// deadline refuses before sending; the response wait is bounded by the
  /// remaining budget.
  Result<JsonRpcMessage> CallRaw(const std::string& method, Json params,
                                 const Json& id,
                                 Deadline deadline = Deadline());
  /// CallRaw, plus one heal-and-retry on transport failure when enabled.
  /// The retry re-sends the SAME request id: a "transact" the server
  /// applied before the transport died is answered from its response
  /// cache instead of being applied twice (exactly-once, not
  /// at-least-once).
  Result<JsonRpcMessage> Call(const std::string& method, Json params,
                              Deadline deadline = Deadline());
  Status ReadMore(int timeout_ms);  // feeds the splitter from the socket
  int DeliverQueued();

  int fd_ = -1;
  std::string host_;
  uint16_t port_ = 0;
  std::string session_token_;  // request-id namespace, fixed per client
  int64_t next_id_ = 1;
  JsonStreamSplitter splitter_;
  std::deque<JsonRpcMessage> inbox_;  // parsed, undelivered messages
  std::map<std::string, MonitorReg> registrations_;  // monitor id dump -> reg
  std::string server_epoch_;  // server instance id from monitor_since replies
  HealPolicy heal_;
  /// Guards stats_ only: counters are written on the owning thread (during
  /// heals) and sampled from supervisor threads via session_stats().
  mutable std::mutex stats_mu_;
  SessionStats stats_;
  int heal_delivered_ = 0;  // updates handed to handlers by the last Heal()
  bool healing_ = false;    // re-entrancy guard
  int priority_level_ = 0;  // re-asserted on heal when > 0
  /// Reconnect attempts beyond the first withdraw from this budget;
  /// successful calls and heals deposit.  Caps retry amplification when
  /// the server is hard-down (see common/retry.h).
  RetryBudget heal_budget_{8.0, 0.1};
  uint64_t jitter_rng_ = 0;  // heal-backoff jitter state (seeded per client)
};

}  // namespace nerpa::ovsdb

#endif  // NERPA_OVSDB_CLIENT_H_
