// A guided tour of snvs (§4.3): VLANs, trunking, ACLs, mirroring, and the
// MAC-learning feedback loop — ending with the p4c-of lowering of the live
// pipeline to OpenFlow-style flows.
//
//   $ ./build/examples/snvs_demo
#include <cstdio>

#include "ofp/p4c_of.h"
#include "snvs/snvs.h"

using namespace nerpa;

namespace {

void ShowOutputs(const char* what,
                 const Result<std::vector<p4::PacketOut>>& out) {
  if (!out.ok()) {
    std::printf("%-44s ERROR %s\n", what, out.status().ToString().c_str());
    return;
  }
  std::printf("%-44s ->", what);
  if (out->empty()) std::printf(" (dropped)");
  for (const p4::PacketOut& packet : *out) {
    std::printf(" port %llu (%zu bytes)",
                static_cast<unsigned long long>(packet.port),
                packet.packet.size());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  auto stack_result = snvs::BuildSnvsStack();
  if (!stack_result.ok()) {
    std::fprintf(stderr, "%s\n", stack_result.status().ToString().c_str());
    return 1;
  }
  snvs::SnvsStack& stack = **stack_result;

  std::printf("=== topology ===\n");
  std::printf("p1, p2: access vlan 10   p3: access vlan 20   p4: trunk "
              "{10, 20}   p9: SPAN target\n\n");
  (void)stack.AddPort("p1", 1, "access", 10);
  (void)stack.AddPort("p2", 2, "access", 10);
  (void)stack.AddPort("p3", 3, "access", 20);
  (void)stack.AddPort("p4", 4, "trunk", 0, {10, 20});
  (void)stack.AddMirror("span", 1, 9);

  net::Mac a(0, 0, 0, 0, 0, 0xAA), b(0, 0, 0, 0, 0, 0xBB),
      c(0, 0, 0, 0, 0, 0xCC);
  auto frame = [](net::Mac dst, net::Mac src,
                  std::optional<uint16_t> vlan = std::nullopt) {
    return net::MakeEthernetFrame(dst, src, 0x0800, {0, 1, 2, 3}, vlan);
  };

  std::printf("=== traffic ===\n");
  ShowOutputs("A@p1 -> B (unknown: flood vlan 10 + SPAN)",
              stack.InjectPacket(0, 1, frame(b, a)));
  ShowOutputs("B@p2 -> A (learned: unicast)",
              stack.InjectPacket(0, 2, frame(a, b)));
  ShowOutputs("C@p3 -> A (vlan 20: isolated from A)",
              stack.InjectPacket(0, 3, frame(a, c)));
  ShowOutputs("tagged vlan10 on trunk p4 -> A",
              stack.InjectPacket(0, 4, frame(a, c, 10)));
  ShowOutputs("tagged vlan30 on trunk p4 (not carried)",
              stack.InjectPacket(0, 4, frame(a, c, 30)));

  std::printf("\n=== ACL: block A's MAC on vlan 10 ===\n");
  (void)stack.AddAclRule(static_cast<int64_t>(a.bits()), 10, false);
  ShowOutputs("A@p1 -> B (now blocked; SPAN still sees it)",
              stack.InjectPacket(0, 1, frame(b, a)));

  std::printf("\n=== data plane tables ===\n");
  for (const char* table :
       {"InVlanUntagged", "InVlanTagged", "Acl", "SMac", "Dmac", "FloodVlan",
        "PortMirror", "OutVlan"}) {
    const p4::TableState* state = stack.device().GetTable(table);
    std::printf("  %-16s %3zu entries (%llu hits, %llu misses)\n", table,
                state->size(), static_cast<unsigned long long>(state->hits()),
                static_cast<unsigned long long>(state->misses()));
  }

  std::printf("\n=== p4c-of: the same pipeline lowered to flows ===\n");
  std::vector<std::string> warnings;
  ofp::OfLayout layout;
  auto flows = ofp::CompileP4ToOf(stack.device(), &layout, &warnings);
  if (flows.ok()) {
    std::printf("%s", flows->DumpFlows().c_str());
    for (const std::string& warning : warnings) {
      std::printf("warning: %s\n", warning.c_str());
    }
  }
  return 0;
}
