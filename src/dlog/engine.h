// The incremental Datalog evaluator — the DDlog-equivalent runtime.
//
// A transaction supplies a batch of input-relation inserts/deletes and the
// engine returns the exact set-level delta of every output relation,
// spending work proportional to the size of the change (§1, §2.1 of the
// paper), not the size of the database.  Mechanisms:
//
//   * Derivation counting: every derived tuple carries its number of
//     derivations; downstream consumers see only set-level transitions
//     (count 0 <-> positive), giving Datalog set semantics on top of
//     weighted (z-set) deltas.
//   * Delta rules: each rule is evaluated once per body literal, with the
//     changed literal pinned to the change set, literals to its left read
//     in the post-transaction state and literals to its right in the
//     pre-transaction state (the standard bilinear expansion).
//   * Arrangements: hash indexes on (relation, key positions), planned at
//     compile time and maintained incrementally; these are the memory cost
//     the paper's load-balancer worst case measures (§2.2).
//   * Stratified negation as incremental antijoin via per-arrangement
//     presence flips.
//   * Incremental group-by aggregation with persistent per-group state.
//   * Recursion by semi-naive insertion plus DRed (delete-and-rederive)
//     for deletions, with set semantics inside recursive strata.
#ifndef NERPA_DLOG_ENGINE_H_
#define NERPA_DLOG_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "dlog/arena.h"
#include "dlog/program.h"

namespace nerpa::dlog {

/// Weighted tuple collection (row -> weight / derivation count).  Nodes
/// come from the thread-pooled slab arena (dlog/arena.h): delta passes
/// build and drop these maps constantly, and per-node malloc round trips
/// were the measurable constant factor on the small-commit hot path.
using ZSet =
    std::unordered_map<Row, int64_t, RowHash, RowEq,
                       arena::NodePoolAllocator<std::pair<const Row, int64_t>>>;
using RowSet = std::unordered_set<Row, RowHash, RowEq>;

/// A set-level relation delta: rows with +1 (inserted) or -1 (deleted).
using SetDelta = std::vector<std::pair<Row, int>>;

/// The result of a transaction: per-output-relation set deltas, sorted for
/// determinism.
struct TxnDelta {
  std::map<std::string, SetDelta> outputs;

  bool empty() const;
  std::string ToString() const;
};

struct EngineOptions {
  /// Ablation switch: when false, no arrangements (hash join indexes) are
  /// built or consulted — every join lookup scans the relation and filters
  /// by key.  Saves the index memory E5 measures, at the join cost the
  /// ablation bench quantifies.  Programs with negation are rejected in
  /// this mode (incremental antijoin needs arrangement presence flips).
  bool use_arrangements = true;

  /// Bootstrap fast path: a transaction against a completely empty engine
  /// (the cold-start case §2.2 concedes) is evaluated as one full
  /// evaluation per rule instead of the delta-rule expansion — no undo
  /// logging, no per-row set-delta bookkeeping, bulk-built arrangements —
  /// and large join passes fan out across a thread pool.  Results are
  /// byte-identical to the incremental path (differential-tested).
  bool enable_bootstrap = true;
  /// Worker threads for the parallel bootstrap; 0 = hardware concurrency
  /// (capped), 1 = serial bootstrap evaluation.
  size_t bootstrap_threads = 0;
  /// Minimum pinned-relation rows before a rule's join pass fans out.
  size_t parallel_bootstrap_min_rows = 4096;

  /// Small-commit fast path: transactions with at most this many queued
  /// input ops skip the map-based input netting (linear scans over the
  /// batch instead — no node allocations on the per-commit hot path).
  size_t small_commit_ops = 64;
};

class Engine {
 public:
  /// Builds runtime state for `program` and evaluates fact rules; their
  /// effect on outputs is available via TakeInitialDelta().
  explicit Engine(std::shared_ptr<const Program> program,
                  EngineOptions options = {});
  ~Engine();

  const Program& program() const { return *program_; }

  /// Queues an insert/delete of `row` into an input relation.  The change
  /// takes effect at Commit().  Duplicate inserts and deletes of absent
  /// rows are ignored at commit time (set semantics), matching DDlog.
  Status Insert(std::string_view relation, Row row);
  Status Delete(std::string_view relation, Row row);

  /// Applies all queued changes as one transaction; returns the output
  /// deltas.  On error (e.g. a division by zero inside a rule) the queued
  /// changes are discarded and every partial effect — derivation counts,
  /// arrangements, and aggregation state — is rolled back, so the engine
  /// is exactly as it was before the failed Commit().
  Result<TxnDelta> Commit();

  /// Output rows derived from fact rules at construction time.
  TxnDelta TakeInitialDelta();

  // --- Checkpointing (between transactions) ---

  /// Serializes the engine's full derived state — relation contents with
  /// derivation counts plus aggregation group state — into a compact
  /// versioned binary blob prefixed with a fingerprint of the compiled
  /// program.  Arrangements are not stored; Restore() rebuilds them with
  /// one linear pass (no join re-evaluation).
  std::string SerializeState() const;

  /// Restores an engine from a SerializeState() blob: validates the format
  /// version and program fingerprint, loads relation counts and
  /// aggregation state, and rebuilds arrangements.  The restored engine is
  /// byte-identical to the one that produced the blob (same Dump() output,
  /// same deltas for subsequent commits); its initial delta is empty.
  /// Fails (so callers fall back to recomputing) on any mismatch or
  /// truncation.
  static Result<std::unique_ptr<Engine>> Restore(
      std::shared_ptr<const Program> program, std::string_view blob,
      EngineOptions options = {});

  /// Fingerprint binding a checkpoint to the program that produced it:
  /// hashes the program's canonical text plus state-affecting options.
  uint64_t StateFingerprint() const;

  // --- Introspection (between transactions) ---

  /// Sorted set-level contents of any relation.
  Result<std::vector<Row>> Dump(std::string_view relation) const;
  bool Contains(std::string_view relation, const Row& row) const;
  size_t Size(std::string_view relation) const;

  struct Stats {
    size_t tuples = 0;              // total tuples across relations
    size_t arrangement_entries = 0; // total indexed rows across arrangements
    size_t arrangement_bytes = 0;   // approx. resident bytes of all indexes
    uint64_t rule_firings = 0;      // cumulative sink invocations
    uint64_t transactions = 0;
    // --- hot-path counters (cumulative) ---
    uint64_t probes = 0;            // arrangement lookups issued
    uint64_t probe_hits = 0;        // lookups that found a non-empty bucket
    uint64_t scans = 0;             // unindexed (full or filtered) scans
    uint64_t key_rows_materialized = 0;  // key Rows built (index maintenance)
    uint64_t key_allocs_saved = 0;  // probes served by a scratch-span key
                                    // (each was one heap Row pre-interning)
    /// Process-wide intern pool (shared across engines).
    InternPoolStats intern;
  };
  Stats GetStats() const;

 private:
  class Txn;  // transaction processor (engine.cc); persistent so its
              // scratch buffers and hash-table capacity carry across
              // commits (no per-transaction rehash ramp-up)

  /// One hash index over a relation, per its compile-time ArrangementSpec.
  struct Arrangement {
    std::unordered_map<Row, RowSet, RowHash, RowEq> index;
    // Per-transaction presence flips of keys: +1 bucket became non-empty,
    // -1 became empty.  Drives pinned negated literals.
    std::unordered_map<Row, int, RowHash, RowEq> flips;
    // Per-transaction deleted rows by key, for OLD-state lookups.
    std::unordered_map<Row, std::vector<Row>, RowHash, RowEq> deleted;
  };

  struct RelState {
    ZSet counts;                      // derivation counts, always > 0
    std::vector<Arrangement> arrangements;
    ZSet set_delta;                   // this txn's set-level delta (+1/-1)
    std::vector<Row> txn_deleted;     // rows deleted this txn (for scans)
    bool dirty = false;               // touched this txn (bounds Cleanup)
  };

  /// Persistent aggregation state: group key -> binding row -> count.
  struct AggState {
    std::unordered_map<Row, ZSet, RowHash, RowEq> groups;
  };

  int RelationId(std::string_view name) const;

  /// Tag for the Restore() constructor: build runtime state but skip the
  /// initial fact-evaluation transaction.
  struct RestoreTag {};
  Engine(std::shared_ptr<const Program> program, EngineOptions options,
         RestoreTag);
  /// Shared constructor body: sizes runtime structures, validates option
  /// compatibility, creates the transaction processor.
  void InitRuntime();

  std::shared_ptr<const Program> program_;
  EngineOptions options_;
  std::unique_ptr<Txn> txn_;
  std::vector<RelState> relations_;
  std::vector<AggState> agg_states_;
  std::vector<std::tuple<int, Row, int>> pending_;  // (relation, row, +-1)
  TxnDelta initial_delta_;
  uint64_t rule_firings_ = 0;
  uint64_t transactions_ = 0;
  // Hot-path counters, cumulative (see Stats).  Transactions accumulate
  // into transaction-local counters and merge here at commit end, so the
  // parallel bootstrap workers never contend on (or race over) these.
  uint64_t probes_ = 0;
  uint64_t probe_hits_ = 0;
  uint64_t scans_ = 0;
  uint64_t key_rows_materialized_ = 0;
  uint64_t key_allocs_saved_ = 0;

  // Parallel-bootstrap machinery, created lazily on the first fan-out.
  std::unique_ptr<nerpa::ThreadPool> bootstrap_pool_;
  std::vector<std::unique_ptr<Txn>> bootstrap_workers_;
};

}  // namespace nerpa::dlog

#endif  // NERPA_DLOG_ENGINE_H_
