file(REMOVE_RECURSE
  "CMakeFiles/nerpa_ofp.dir/flow.cc.o"
  "CMakeFiles/nerpa_ofp.dir/flow.cc.o.d"
  "CMakeFiles/nerpa_ofp.dir/p4c_of.cc.o"
  "CMakeFiles/nerpa_ofp.dir/p4c_of.cc.o.d"
  "libnerpa_ofp.a"
  "libnerpa_ofp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nerpa_ofp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
