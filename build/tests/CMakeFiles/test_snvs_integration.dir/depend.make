# Empty dependencies file for test_snvs_integration.
# This may be replaced when dependencies are built.
