#include "chaos/chaos.h"

#include <utility>

namespace nerpa::chaos {

namespace {

/// Flips one byte of `text` (position and mask drawn from the schedule).
void CorruptOneByte(ChaosSchedule& schedule, std::string& text) {
  if (text.empty()) return;
  size_t index = static_cast<size_t>(schedule.Pick(text.size()));
  // 1 + Pick(255) is never 0, so the byte always changes.
  text[index] = static_cast<char>(
      static_cast<unsigned char>(text[index]) ^
      static_cast<unsigned char>(1 + schedule.Pick(255)));
}

}  // namespace

/// Wraps an inner appender; may tear one append (persist a prefix, then
/// refuse all further writes, as a crash mid-append would) or fail
/// transiently without persisting anything.
class ChaosAppender : public ha::Appender {
 public:
  ChaosAppender(ChaosIo* io, std::unique_ptr<ha::Appender> inner)
      : io_(io), inner_(std::move(inner)) {}

  Status Append(std::string_view data) override {
    if (dead_) {
      return Internal("chaos: append stream died earlier (torn append)");
    }
    if (io_->schedule_->Flip(io_->policy_.torn_append_probability)) {
      ++io_->stats_.torn_appends;
      dead_ = true;
      size_t keep = static_cast<size_t>(io_->schedule_->Pick(data.size()));
      if (keep > 0) {
        // Best effort, as a crash would leave it; the torn prefix is the
        // fault being injected, so its own status is irrelevant.
        (void)inner_->Append(data.substr(0, keep));
      }
      return Internal("chaos: torn append");
    }
    if (io_->schedule_->Flip(io_->policy_.append_fail_probability)) {
      ++io_->stats_.failed_appends;
      return Internal("chaos: append failed");
    }
    return inner_->Append(data);
  }

 private:
  ChaosIo* io_;
  std::unique_ptr<ha::Appender> inner_;
  bool dead_ = false;
};

ChaosIo::ChaosIo(ChaosSchedule* schedule, const ChaosIoPolicy& policy,
                 ha::Io* inner)
    : schedule_(schedule),
      policy_(policy),
      inner_(inner != nullptr ? inner : &ha::DefaultIo()) {}

Result<std::string> ChaosIo::ReadFile(const std::string& path) {
  NERPA_ASSIGN_OR_RETURN(std::string contents, inner_->ReadFile(path));
  if (!contents.empty() && schedule_->Flip(policy_.read_corrupt_probability)) {
    ++stats_.corrupted_reads;
    CorruptOneByte(*schedule_, contents);
  }
  return contents;
}

Status ChaosIo::WriteFileAtomic(const std::string& path,
                                std::string_view contents) {
  if (!contents.empty() &&
      schedule_->Flip(policy_.write_corrupt_probability)) {
    ++stats_.corrupted_writes;
    std::string corrupted(contents);
    CorruptOneByte(*schedule_, corrupted);
    return inner_->WriteFileAtomic(path, corrupted);
  }
  return inner_->WriteFileAtomic(path, contents);
}

Result<std::unique_ptr<ha::Appender>> ChaosIo::OpenAppend(
    const std::string& path) {
  NERPA_ASSIGN_OR_RETURN(std::unique_ptr<ha::Appender> inner,
                         inner_->OpenAppend(path));
  return std::unique_ptr<ha::Appender>(
      new ChaosAppender(this, std::move(inner)));
}

Status ChaosIo::Truncate(const std::string& path) {
  return inner_->Truncate(path);
}

Status ChaosIo::TruncateTo(const std::string& path, uint64_t size) {
  return inner_->TruncateTo(path, size);
}

Status ChaosIo::Rename(const std::string& from, const std::string& to) {
  return inner_->Rename(from, to);
}

bool ChaosIo::Exists(const std::string& path) { return inner_->Exists(path); }

Status ChaosIo::Remove(const std::string& path) { return inner_->Remove(path); }

const char* LeaseFaultName(LeaseFault fault) {
  switch (fault) {
    case LeaseFault::kNone: return "none";
    case LeaseFault::kLeaseLoss: return "lease-loss";
    case LeaseFault::kClockSkew: return "clock-skew";
    case LeaseFault::kZombieLeader: return "zombie-leader";
  }
  return "?";
}

LeaseFault DrawLeaseFault(ChaosSchedule& schedule,
                          const LeaseFaultPolicy& policy) {
  // All three draws always happen so the PRNG stream stays aligned across
  // replays no matter which fault fires.
  bool loss = schedule.Flip(policy.lease_loss_probability);
  bool skew = schedule.Flip(policy.clock_skew_probability);
  bool zombie = schedule.Flip(policy.zombie_probability);
  if (loss) return LeaseFault::kLeaseLoss;
  if (skew) return LeaseFault::kClockSkew;
  if (zombie) return LeaseFault::kZombieLeader;
  return LeaseFault::kNone;
}

void LeaseFaultTally::Count(LeaseFault fault) {
  switch (fault) {
    case LeaseFault::kNone: break;
    case LeaseFault::kLeaseLoss: ++lease_loss; break;
    case LeaseFault::kClockSkew: ++clock_skew; break;
    case LeaseFault::kZombieLeader: ++zombie; break;
  }
}

}  // namespace nerpa::chaos
