// NW2xx: cross-plane consistency between the management plane (OVSDB
// schema), the control plane (dlog rules), and the data plane (P4 tables),
// built on an interval range analysis seeded from the OVSDB column
// constraints.
//
//   NW201 warning  output relation bound to no P4 table
//   NW202 warning  a cast to bit<w> may truncate / bit arithmetic may wrap
//   NW203 error    LPM prefix length not provably within [0, key width]
//   NW204 error    declaration shape differs from the generated binding
//   NW205 error    action name no P4 table permits
//   NW206 warning  digest input relation never read by any rule
//   NW207 error    ternary/range priority not provably within [0, 2^31-1]
//   NW208 warning  input relation column neither monitored nor
//                  on-demand-fetchable under the given monitor spec
//
// The range analysis is a fixpoint over per-relation column intervals:
// input relations seed from OVSDB constraints (integer min/max), digest
// field widths, or declared types; derived relations accumulate the hull of
// every rule head, with body conditions (`h < 6`) refining variable ranges.
// Vec columns track the hull of their *elements*, so `var t in trunks`
// inherits the set's constraint.
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/interval.h"
#include "analyze/passes.h"
#include "common/strings.h"

namespace nerpa::analyze {

namespace {

using dlog::BinOp;
using dlog::BodyElem;
using dlog::Expr;
using dlog::ExprPtr;
using dlog::RelationDecl;
using dlog::Rule;

std::string BoundsText(const Interval& interval) { return interval.ToString(); }

class RangeAnalysis {
 public:
  explicit RangeAnalysis(PassContext& context) : context_(context) {}

  void Run() {
    Seed();
    // Fixpoint with a hard cap; if still unstable (an unbounded recursion),
    // widen the restless relations to Top — sound, just imprecise.
    int iteration = 0;
    while (Step()) {
      if (++iteration >= 256) {
        for (const std::string& name : changed_last_step_) {
          for (Interval& interval : columns_[name]) interval = Interval::Top();
        }
      }
    }
    FinalChecks();
  }

 private:
  using Env = std::map<std::string, Interval>;

  void Seed() {
    for (const RelationDecl& decl : context_.ast->relations) {
      std::vector<Interval>& cols = columns_[decl.name];
      cols.assign(decl.columns.size(), Interval::Bottom());
      if (decl.role != dlog::RelationRole::kInput) continue;
      const ovsdb::TableSchema* table = nullptr;
      if (context_.bindings != nullptr && context_.schema != nullptr &&
          context_.bindings->FindOvsdbTable(decl.name) != nullptr) {
        table = context_.schema->FindTable(decl.name);
      }
      for (size_t i = 0; i < decl.columns.size(); ++i) {
        cols[i] = SeedColumn(decl.columns[i], table);
      }
    }
  }

  /// The interval of one input column: OVSDB integer constraints when the
  /// relation mirrors a management-plane table, otherwise the full value
  /// set of the declared type.  Vec columns hold the element hull.
  Interval SeedColumn(const dlog::Column& column,
                      const ovsdb::TableSchema* table) {
    const dlog::Type& type = column.type.kind == dlog::Type::Kind::kVec
                                 ? column.type.elems[0]
                                 : column.type;
    Interval fallback = Interval::OfType(type);
    if (table == nullptr || column.name == "_uuid") return fallback;
    const ovsdb::ColumnSchema* schema_column = table->FindColumn(column.name);
    if (schema_column == nullptr ||
        schema_column->type.key.type != ovsdb::AtomicType::kInteger) {
      return fallback;
    }
    const ovsdb::BaseType& base = schema_column->type.key;
    return Interval::Range(
        base.min_integer.value_or(std::numeric_limits<int64_t>::min()),
        base.max_integer.value_or(std::numeric_limits<int64_t>::max()));
  }

  bool Step() {
    changed_last_step_.clear();
    for (const Rule& rule : context_.ast->rules) {
      auto it = columns_.find(rule.head.relation);
      if (it == columns_.end()) continue;
      std::vector<Interval>& head_cols = it->second;
      if (head_cols.size() != rule.head.terms.size()) continue;
      Env env = EvalBody(rule);
      for (size_t i = 0; i < rule.head.terms.size(); ++i) {
        Interval value = Eval(rule.head.terms[i], env);
        Interval joined = head_cols[i].Join(value);
        if (joined != head_cols[i]) {
          head_cols[i] = joined;
          changed_last_step_.insert(rule.head.relation);
        }
      }
    }
    return !changed_last_step_.empty();
  }

  Env EvalBody(const Rule& rule) {
    Env env;
    for (const BodyElem& elem : rule.body) {
      switch (elem.kind) {
        case BodyElem::Kind::kLiteral: {
          if (elem.negated) break;  // tests only, binds nothing
          auto it = columns_.find(elem.atom.relation);
          if (it == columns_.end()) break;
          const std::vector<Interval>& cols = it->second;
          if (cols.size() != elem.atom.terms.size()) break;
          for (size_t i = 0; i < elem.atom.terms.size(); ++i) {
            const ExprPtr& term = elem.atom.terms[i];
            if (term->kind != Expr::Kind::kVar) continue;
            auto [var, inserted] = env.emplace(term->name, cols[i]);
            if (!inserted) var->second = var->second.Meet(cols[i]);
          }
          break;
        }
        case BodyElem::Kind::kCondition:
          Refine(env, elem.condition);
          break;
        case BodyElem::Kind::kAssignment:
          env[elem.var] = Eval(elem.expr, env);
          break;
        case BodyElem::Kind::kFlatMap:
          // `var x in e`: when e is a Vec-typed column variable, the bound
          // element inherits the column's element hull.
          if (elem.expr->kind == Expr::Kind::kVar &&
              env.count(elem.expr->name) != 0) {
            env[elem.var] = env[elem.expr->name];
          } else {
            dlog::Type vec = elem.expr->resolved_type;
            env[elem.var] = vec.kind == dlog::Type::Kind::kVec
                                ? Interval::OfType(vec.elems[0])
                                : Interval::Top();
          }
          break;
        case BodyElem::Kind::kAggregate:
          switch (elem.agg_func) {
            case dlog::AggFunc::kCount:
              env[elem.var] = Interval::Range(
                  0, std::numeric_limits<int64_t>::max());
              break;
            case dlog::AggFunc::kMin:
            case dlog::AggFunc::kMax:
              env[elem.var] = Eval(elem.expr, env);
              break;
            case dlog::AggFunc::kSum:
              env[elem.var] = Interval::OfType(dlog::Type::Int());
              break;
          }
          break;
      }
    }
    return env;
  }

  Interval Eval(const ExprPtr& expr, const Env& env) {
    switch (expr->kind) {
      case Expr::Kind::kVar: {
        auto it = env.find(expr->name);
        if (it != env.end()) return it->second;
        return Interval::OfType(expr->resolved_type);
      }
      case Expr::Kind::kLit:
        if (expr->value.is_int()) return Interval::Point(expr->value.as_int());
        if (expr->value.is_bit()) {
          return Interval::Point(static_cast<Int>(expr->value.as_bit()));
        }
        if (expr->value.is_bool()) {
          return Interval::Point(expr->value.as_bool() ? 1 : 0);
        }
        return Interval::Top();
      case Expr::Kind::kUnary:
        switch (expr->op1) {
          case dlog::UnOp::kNeg:
            return Eval(expr->args[0], env).Neg();
          case dlog::UnOp::kNot:
            return Interval::Range(0, 1);
          case dlog::UnOp::kBitNot:
            return Interval::OfType(expr->resolved_type);
        }
        return Interval::Top();
      case Expr::Kind::kBinary: {
        Interval result = EvalBinaryUnwrapped(expr, env);
        // bit<w> arithmetic wraps; model it so downstream stays sound (the
        // wrap itself is reported separately in FinalChecks).
        if (expr->resolved_type.kind == dlog::Type::Kind::kBit &&
            !result.FitsBits(expr->resolved_type.width)) {
          return Interval::OfType(expr->resolved_type);
        }
        return result;
      }
      case Expr::Kind::kCall:
        return Interval::OfType(expr->resolved_type);
      case Expr::Kind::kTuple:
        return Interval::Top();
      case Expr::Kind::kCond:
        return Eval(expr->args[1], env).Join(Eval(expr->args[2], env));
      case Expr::Kind::kCast: {
        Interval value = Eval(expr->args[0], env);
        const dlog::Type& target = expr->literal_type;
        if (target.kind == dlog::Type::Kind::kBit) {
          if (value.FitsBits(target.width)) return value;
          return Interval::OfType(target);  // masked
        }
        return value;
      }
      case Expr::Kind::kWildcard:
        return Interval::Top();
    }
    return Interval::Top();
  }

  Interval EvalBinaryUnwrapped(const ExprPtr& expr, const Env& env) {
    switch (expr->op2) {
      case BinOp::kAdd:
        return Eval(expr->args[0], env).Add(Eval(expr->args[1], env));
      case BinOp::kSub:
        return Eval(expr->args[0], env).Sub(Eval(expr->args[1], env));
      case BinOp::kMul:
        return Eval(expr->args[0], env).Mul(Eval(expr->args[1], env));
      case BinOp::kDiv:
        return Eval(expr->args[0], env).Div(Eval(expr->args[1], env));
      case BinOp::kMod:
        return Eval(expr->args[0], env).Mod(Eval(expr->args[1], env));
      case BinOp::kShl:
        return Eval(expr->args[0], env).Shl(Eval(expr->args[1], env));
      case BinOp::kShr:
        return Eval(expr->args[0], env).Shr(Eval(expr->args[1], env));
      case BinOp::kBitAnd:
      case BinOp::kBitOr:
      case BinOp::kBitXor:
        return Eval(expr->args[0], env).BitOp(Eval(expr->args[1], env));
      case BinOp::kEq:
      case BinOp::kNe:
      case BinOp::kLt:
      case BinOp::kLe:
      case BinOp::kGt:
      case BinOp::kGe:
      case BinOp::kAnd:
      case BinOp::kOr:
        return Interval::Range(0, 1);
      case BinOp::kConcat:
        return Interval::Top();
    }
    return Interval::Top();
  }

  /// Narrows variable intervals using a body condition: `x < 6`,
  /// `3 <= y`, `x == 7`, and conjunctions thereof.
  void Refine(Env& env, const ExprPtr& condition) {
    if (condition == nullptr || condition->kind != Expr::Kind::kBinary) return;
    if (condition->op2 == BinOp::kAnd) {
      Refine(env, condition->args[0]);
      Refine(env, condition->args[1]);
      return;
    }
    const ExprPtr& lhs = condition->args[0];
    const ExprPtr& rhs = condition->args[1];
    auto clamp = [&](const ExprPtr& var, BinOp op, const Interval& bound) {
      if (var->kind != Expr::Kind::kVar || bound.is_bottom()) return;
      auto it = env.find(var->name);
      if (it == env.end()) return;
      Interval& current = it->second;
      switch (op) {
        case BinOp::kLt:
          current = current.Meet(
              Interval::Range(Interval::kMin, bound.hi - 1));
          break;
        case BinOp::kLe:
          current = current.Meet(Interval::Range(Interval::kMin, bound.hi));
          break;
        case BinOp::kGt:
          current = current.Meet(
              Interval::Range(bound.lo + 1, Interval::kMax));
          break;
        case BinOp::kGe:
          current = current.Meet(Interval::Range(bound.lo, Interval::kMax));
          break;
        case BinOp::kEq:
          current = current.Meet(bound);
          break;
        default:
          break;
      }
    };
    auto flip = [](BinOp op) {
      switch (op) {
        case BinOp::kLt: return BinOp::kGt;
        case BinOp::kLe: return BinOp::kGe;
        case BinOp::kGt: return BinOp::kLt;
        case BinOp::kGe: return BinOp::kLe;
        default: return op;
      }
    };
    clamp(lhs, condition->op2, Eval(rhs, env));
    clamp(rhs, flip(condition->op2), Eval(lhs, env));
  }

  // --- Final reporting pass (runs once, on the stable intervals) ---

  void FinalChecks() {
    for (const Rule& rule : context_.ast->rules) {
      Env env = EvalBody(rule);
      for (const BodyElem& elem : rule.body) {
        switch (elem.kind) {
          case BodyElem::Kind::kLiteral:
            for (const ExprPtr& term : elem.atom.terms) {
              CheckExpr(term, env);
            }
            break;
          case BodyElem::Kind::kCondition:
            CheckExpr(elem.condition, env);
            break;
          case BodyElem::Kind::kAssignment:
          case BodyElem::Kind::kFlatMap:
          case BodyElem::Kind::kAggregate:
            CheckExpr(elem.expr, env);
            break;
        }
      }
      for (const ExprPtr& term : rule.head.terms) CheckExpr(term, env);
      CheckHeadRoles(rule, env);
    }
  }

  /// NW202 at every cast that may truncate and every bit<w> arithmetic node
  /// that may wrap.
  void CheckExpr(const ExprPtr& expr, const Env& env) {
    if (expr == nullptr) return;
    for (const ExprPtr& arg : expr->args) CheckExpr(arg, env);
    if (expr->kind == Expr::Kind::kCast &&
        expr->literal_type.kind == dlog::Type::Kind::kBit) {
      Interval value = Eval(expr->args[0], env);
      if (!value.FitsBits(expr->literal_type.width)) {
        Emit(context_, "NW202", Severity::kWarning, "cross-plane",
             StrFormat("cast to %s may truncate: operand range %s exceeds "
                       "[0, 2^%d-1]",
                       expr->literal_type.ToString().c_str(),
                       BoundsText(value).c_str(), expr->literal_type.width),
             "dlog", expr->line, expr->col);
      }
    }
    if (expr->kind == Expr::Kind::kBinary &&
        expr->resolved_type.kind == dlog::Type::Kind::kBit &&
        (expr->op2 == BinOp::kAdd || expr->op2 == BinOp::kSub ||
         expr->op2 == BinOp::kMul || expr->op2 == BinOp::kShl)) {
      Interval result = EvalBinaryUnwrapped(expr, env);
      if (!result.FitsBits(expr->resolved_type.width)) {
        Emit(context_, "NW202", Severity::kWarning, "cross-plane",
             StrFormat("'%s' on %s may wrap: result range %s exceeds "
                       "[0, 2^%d-1]",
                       dlog::BinOpName(expr->op2),
                       expr->resolved_type.ToString().c_str(),
                       BoundsText(result).c_str(),
                       expr->resolved_type.width),
             "dlog", expr->line, expr->col);
      }
    }
  }

  /// NW203 / NW207: head terms flowing into LPM prefix-length and priority
  /// columns of bound table-output relations.
  void CheckHeadRoles(const Rule& rule, const Env& env) {
    if (context_.bindings == nullptr || context_.p4 == nullptr) return;
    const TableBinding* binding =
        context_.bindings->FindTable(rule.head.relation);
    if (binding == nullptr ||
        binding->columns.size() != rule.head.terms.size()) {
      return;
    }
    const p4::Table* table = context_.p4->FindTable(binding->p4_table);
    for (size_t i = 0; i < binding->columns.size(); ++i) {
      const EntryColumn& column = binding->columns[i];
      const ExprPtr& term = rule.head.terms[i];
      if (column.role == EntryColumn::Role::kKeyPlen && table != nullptr &&
          column.key_index >= 0 &&
          static_cast<size_t>(column.key_index) < table->keys.size()) {
        int width = table->keys[static_cast<size_t>(column.key_index)].width;
        Interval value = Eval(term, env);
        if (!value.ContainedIn(Interval::Range(0, width))) {
          Emit(context_, "NW203", Severity::kError, "cross-plane",
               StrFormat("LPM prefix length for key '%s' of table '%s' must "
                         "lie in [0, %d]; proven range is %s",
                         table->keys[static_cast<size_t>(column.key_index)]
                             .field.text.c_str(),
                         table->name.c_str(), width,
                         BoundsText(value).c_str()),
               "dlog", term->line > 0 ? term->line : rule.line,
               term->col > 0 ? term->col : rule.col);
        }
      }
      if (column.role == EntryColumn::Role::kPriority) {
        Interval value = Eval(term, env);
        Interval valid = Interval::Range(0, (Int{1} << 31) - 1);
        if (!value.ContainedIn(valid)) {
          Emit(context_, "NW207", Severity::kError, "cross-plane",
               StrFormat("priority for table '%s' must lie in [0, 2^31-1]; "
                         "proven range is %s",
                         binding->p4_table.c_str(),
                         BoundsText(value).c_str()),
               "dlog", term->line > 0 ? term->line : rule.line,
               term->col > 0 ? term->col : rule.col);
        }
      }
    }
  }

  PassContext& context_;
  std::map<std::string, std::vector<Interval>> columns_;
  std::set<std::string> changed_last_step_;
};

/// NW205: every statically-known action name written into a bound output
/// relation must be permitted by the P4 table.
void CollectActionNames(const ExprPtr& expr,
                        std::vector<const Expr*>& names) {
  if (expr == nullptr) return;
  if (expr->kind == Expr::Kind::kLit && expr->value.is_string()) {
    names.push_back(expr.get());
    return;
  }
  if (expr->kind == Expr::Kind::kCond) {
    CollectActionNames(expr->args[1], names);
    CollectActionNames(expr->args[2], names);
  }
  // Variables and calls are not statically known; the runtime conversion
  // rejects bad names per-row.
}

void CheckActionNames(PassContext& context) {
  if (context.bindings == nullptr || context.p4 == nullptr) return;
  for (const Rule& rule : context.ast->rules) {
    const TableBinding* binding =
        context.bindings->FindTable(rule.head.relation);
    if (binding == nullptr ||
        binding->columns.size() != rule.head.terms.size()) {
      continue;
    }
    const p4::Table* table = context.p4->FindTable(binding->p4_table);
    if (table == nullptr) continue;
    for (size_t i = 0; i < binding->columns.size(); ++i) {
      if (binding->columns[i].role != EntryColumn::Role::kActionName) {
        continue;
      }
      std::vector<const Expr*> names;
      CollectActionNames(rule.head.terms[i], names);
      for (const Expr* name : names) {
        const std::string& text = name->value.as_string();
        bool permitted = false;
        for (const std::string& action : table->actions) {
          if (action == text) permitted = true;
        }
        if (!permitted) {
          Emit(context, "NW205", Severity::kError, "cross-plane",
               StrFormat("action '%s' is not permitted by P4 table '%s'",
                         text.c_str(), table->name.c_str()),
               "dlog", name->line, name->col);
        }
      }
    }
  }
}

/// NW201: output relations no table consumes (multicast plumbing exempt).
void CheckUnboundOutputs(PassContext& context) {
  if (context.bindings == nullptr) return;
  for (const RelationDecl& decl : context.ast->relations) {
    if (decl.role != dlog::RelationRole::kOutput) continue;
    if (context.bindings->FindTable(decl.name) != nullptr) continue;
    bool exempt = false;
    for (const std::string& name : context.options->multicast_relations) {
      if (name == decl.name) exempt = true;
    }
    if (exempt) continue;
    Emit(context, "NW201", Severity::kWarning, "cross-plane",
         StrFormat("output relation '%s' is not bound to any P4 table; its "
                   "rows go nowhere",
                   decl.name.c_str()),
         "dlog", decl.line, decl.col);
  }
}

/// NW206: digest-backed inputs never read — the data plane sends
/// notifications nobody listens to.
void CheckUnreadDigests(PassContext& context) {
  if (context.bindings == nullptr) return;
  std::set<std::string> read;
  for (const Rule& rule : context.ast->rules) {
    for (const BodyElem& elem : rule.body) {
      if (elem.kind == BodyElem::Kind::kLiteral) {
        read.insert(elem.atom.relation);
      }
    }
  }
  for (const DigestBinding& binding : context.bindings->digests) {
    if (read.count(binding.relation) != 0) continue;
    const RelationDecl* decl = context.ast->FindRelation(binding.relation);
    Emit(context, "NW206", Severity::kWarning, "cross-plane",
         StrFormat("digest '%s' is sent by the data plane but never read by "
                   "any rule",
                   binding.digest.c_str()),
         "dlog", decl != nullptr ? decl->line : 0,
         decl != nullptr ? decl->col : 0);
  }
}

/// NW208: a dlog input relation mirrors an OVSDB table, but the
/// deployment's monitor configuration neither streams one of its columns
/// nor marks it fetchable on demand — the rows arrive with that field
/// forever absent, and the rules reading it silently see nothing.  Only
/// runs when a monitor spec is supplied; the default monitor subscribes to
/// every column, so there is nothing to audit.
void CheckMonitorCoverage(PassContext& context) {
  const AnalyzeOptions& options = *context.options;
  if (options.monitored_columns.empty() && options.on_demand_columns.empty()) {
    return;
  }
  if (context.bindings == nullptr || context.schema == nullptr) return;
  // An entry with an empty column list covers the whole table.
  auto covers = [](const std::map<std::string, std::vector<std::string>>& spec,
                   const std::string& table, const std::string& column) {
    auto it = spec.find(table);
    if (it == spec.end()) return false;
    if (it->second.empty()) return true;
    for (const std::string& name : it->second) {
      if (name == column) return true;
    }
    return false;
  };
  for (const RelationDecl& decl : context.ast->relations) {
    if (decl.role != dlog::RelationRole::kInput) continue;
    if (context.bindings->FindOvsdbTable(decl.name) == nullptr) continue;
    const ovsdb::TableSchema* table = context.schema->FindTable(decl.name);
    if (table == nullptr) continue;
    for (const dlog::Column& column : decl.columns) {
      if (column.name == "_uuid") continue;
      if (table->FindColumn(column.name) == nullptr) continue;
      if (covers(options.monitored_columns, decl.name, column.name)) continue;
      if (covers(options.on_demand_columns, decl.name, column.name)) continue;
      Emit(context, "NW208", Severity::kWarning, "cross-plane",
           StrFormat("input relation '%s' is bound to OVSDB column '%s.%s', "
                     "which the monitor spec neither streams nor fetches on "
                     "demand; the controller will never see it",
                     decl.name.c_str(), decl.name.c_str(),
                     column.name.c_str()),
           "dlog", decl.line, decl.col);
    }
  }
}

/// NW204: user-maintained declarations must match the generated shapes
/// (only meaningful when the rules carry their own declarations).
void CheckDeclShapes(PassContext& context) {
  if (context.bindings == nullptr || !context.options->rules_include_decls) {
    return;
  }
  auto check = [&](const RelationDecl& expected) {
    const RelationDecl* actual = context.ast->FindRelation(expected.name);
    if (actual == nullptr) {
      Emit(context, "NW204", Severity::kError, "cross-plane",
           StrFormat("program does not declare generated relation: %s",
                     expected.ToString().c_str()),
           "dlog");
      return;
    }
    if (actual->role != expected.role) {
      Emit(context, "NW204", Severity::kError, "cross-plane",
           StrFormat("relation '%s' must be declared '%s', found '%s'",
                     expected.name.c_str(),
                     dlog::RelationRoleName(expected.role),
                     dlog::RelationRoleName(actual->role)),
           "dlog", actual->line, actual->col);
      return;
    }
    if (actual->columns.size() != expected.columns.size()) {
      Emit(context, "NW204", Severity::kError, "cross-plane",
           StrFormat("relation '%s' must have %zu columns (generated shape: "
                     "%s), found %zu",
                     expected.name.c_str(), expected.columns.size(),
                     expected.ToString().c_str(), actual->columns.size()),
           "dlog", actual->line, actual->col);
      return;
    }
    for (size_t i = 0; i < expected.columns.size(); ++i) {
      if (actual->columns[i].name == expected.columns[i].name &&
          actual->columns[i].type == expected.columns[i].type) {
        continue;
      }
      const dlog::Column& bad = actual->columns[i];
      Emit(context, "NW204", Severity::kError, "cross-plane",
           StrFormat("relation '%s', column %zu: expected '%s: %s', found "
                     "'%s: %s'",
                     expected.name.c_str(), i,
                     expected.columns[i].name.c_str(),
                     expected.columns[i].type.ToString().c_str(),
                     bad.name.c_str(), bad.type.ToString().c_str()),
           "dlog", bad.line > 0 ? bad.line : actual->line,
           bad.col > 0 ? bad.col : actual->col);
    }
  };
  for (const RelationDecl& decl : context.bindings->inputs) check(decl);
  for (const RelationDecl& decl : context.bindings->outputs) check(decl);
}

}  // namespace

void RunCrossPlaneChecks(PassContext& context) {
  CheckDeclShapes(context);
  CheckUnboundOutputs(context);
  CheckUnreadDigests(context);
  CheckMonitorCoverage(context);
  CheckActionNames(context);
  if (context.program != nullptr) {
    RangeAnalysis analysis(context);
    analysis.Run();
  }
}

}  // namespace nerpa::analyze
