#include "ha/wal.h"

#include <vector>

#include "common/strings.h"

namespace nerpa::ha {

Result<WriteAheadLog> WriteAheadLog::Open(const std::string& path) {
  WriteAheadLog wal(path);
  wal.out_.open(path, std::ios::app);
  if (!wal.out_) return Internal("cannot open WAL '" + path + "'");
  return wal;
}

Status WriteAheadLog::Append(const Json& record) {
  out_ << record.Dump() << "\n";
  out_.flush();
  if (!out_) return Internal("cannot append to WAL '" + path_ + "'");
  ++records_appended_;
  return Status::Ok();
}

Status WriteAheadLog::Replay(const std::function<Status(const Json&)>& apply) {
  std::ifstream in(path_);
  if (!in) return NotFound("no WAL at '" + path_ + "'");
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!Trim(line).empty()) lines.push_back(line);
  }
  for (size_t i = 0; i < lines.size(); ++i) {
    Result<Json> record = Json::Parse(lines[i]);
    if (!record.ok()) {
      if (i + 1 == lines.size()) {
        // Interrupted append: the commit was never made durable, so the
        // record is simply not part of history.
        ++truncated_tail_records_;
        break;
      }
      return Internal(StrFormat("WAL '%s' corrupt at record %zu: %s",
                                path_.c_str(), i + 1,
                                record.status().ToString().c_str()));
    }
    Status applied = apply(record.value());
    if (!applied.ok()) {
      return Internal(StrFormat("WAL '%s' replay failed at record %zu: %s",
                                path_.c_str(), i + 1,
                                applied.ToString().c_str()));
    }
    ++records_replayed_;
  }
  return Status::Ok();
}

Status WriteAheadLog::Reset() {
  out_.close();
  out_.open(path_, std::ios::trunc);
  if (!out_) return Internal("cannot truncate WAL '" + path_ + "'");
  out_.close();
  out_.open(path_, std::ios::app);
  if (!out_) return Internal("cannot reopen WAL '" + path_ + "'");
  records_appended_ = 0;
  return Status::Ok();
}

}  // namespace nerpa::ha
