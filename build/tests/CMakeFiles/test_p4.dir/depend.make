# Empty dependencies file for test_p4.
# This may be replaced when dependencies are built.
