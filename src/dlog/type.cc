#include "dlog/type.h"

#include "common/strings.h"

namespace nerpa::dlog {

bool Type::operator==(const Type& o) const {
  return kind == o.kind && width == o.width && elems == o.elems;
}

std::string Type::ToString() const {
  switch (kind) {
    case Kind::kBool: return "bool";
    case Kind::kInt: return "bigint";
    case Kind::kBit: return StrFormat("bit<%d>", width);
    case Kind::kString: return "string";
    case Kind::kTuple: {
      std::string out = "(";
      for (size_t i = 0; i < elems.size(); ++i) {
        if (i > 0) out += ", ";
        out += elems[i].ToString();
      }
      return out + ")";
    }
    case Kind::kVec: return "Vec<" + elems[0].ToString() + ">";
  }
  return "?";
}

Status Type::CheckValue(const Value& value) const {
  switch (kind) {
    case Kind::kBool:
      if (!value.is_bool()) return TypeError("expected bool");
      return Status::Ok();
    case Kind::kInt:
      if (!value.is_int()) return TypeError("expected bigint");
      return Status::Ok();
    case Kind::kBit:
      if (!value.is_bit()) return TypeError("expected " + ToString());
      if (MaskBits(value.as_bit()) != value.as_bit()) {
        return TypeError(StrFormat("value %llu does not fit in bit<%d>",
                                   static_cast<unsigned long long>(
                                       value.as_bit()),
                                   width));
      }
      return Status::Ok();
    case Kind::kString:
      if (!value.is_string()) return TypeError("expected string");
      return Status::Ok();
    case Kind::kTuple: {
      if (!value.is_tuple() || value.as_tuple().size() != elems.size()) {
        return TypeError("expected " + ToString());
      }
      for (size_t i = 0; i < elems.size(); ++i) {
        NERPA_RETURN_IF_ERROR(elems[i].CheckValue(value.as_tuple()[i]));
      }
      return Status::Ok();
    }
    case Kind::kVec: {
      if (!value.is_tuple()) return TypeError("expected " + ToString());
      for (const Value& elem : value.as_tuple()) {
        NERPA_RETURN_IF_ERROR(elems[0].CheckValue(elem));
      }
      return Status::Ok();
    }
  }
  return TypeError("bad type");
}

Value Type::DefaultValue() const {
  switch (kind) {
    case Kind::kBool: return Value::Bool(false);
    case Kind::kInt: return Value::Int(0);
    case Kind::kBit: return Value::Bit(0);
    case Kind::kString: return Value::String("");
    case Kind::kTuple: {
      ValueVec elems_v;
      for (const Type& t : elems) elems_v.push_back(t.DefaultValue());
      return Value::Tuple(std::move(elems_v));
    }
    case Kind::kVec: return Value::Tuple({});
  }
  return Value::Int(0);
}

const char* RelationRoleName(RelationRole role) {
  switch (role) {
    case RelationRole::kInput: return "input";
    case RelationRole::kInternal: return "internal";
    case RelationRole::kOutput: return "output";
  }
  return "?";
}

Status RelationDecl::CheckRow(const Row& row) const {
  if (row.size() != columns.size()) {
    return TypeError(StrFormat("relation %s expects %zu columns, got %zu",
                               name.c_str(), columns.size(), row.size()));
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    Status s = columns[i].type.CheckValue(row[i]);
    if (!s.ok()) {
      return TypeError(StrFormat("%s.%s: %s", name.c_str(),
                                 columns[i].name.c_str(),
                                 s.message().c_str()));
    }
  }
  return Status::Ok();
}

std::string RelationDecl::ToString() const {
  std::string out;
  if (role != RelationRole::kInternal) {
    out += RelationRoleName(role);
    out += ' ';
  }
  out += "relation " + name + "(";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns[i].name + ": " + columns[i].type.ToString();
  }
  return out + ")";
}

}  // namespace nerpa::dlog
