// Quickstart: bring up the full Nerpa stack (management database +
// incremental control plane + P4 switch), add two ports through the
// management plane, and watch a packet forward.
//
//   $ ./build/examples/quickstart
//
// Everything below is the public API a downstream user codes against:
// snvs::BuildSnvsStack() wires an OVSDB-style database, the generated
// bindings, the Datalog program, and a P4 behavioural switch into one
// controller (see src/snvs/snvs.cc for how to wire your own program).
#include <cstdio>

#include "snvs/snvs.h"

using namespace nerpa;

int main() {
  // 1. Build the stack: schema + rules + pipeline, type-checked together.
  auto stack_result = snvs::BuildSnvsStack();
  if (!stack_result.ok()) {
    std::fprintf(stderr, "failed to build stack: %s\n",
                 stack_result.status().ToString().c_str());
    return 1;
  }
  snvs::SnvsStack& stack = **stack_result;
  std::printf("stack is up; control-plane program:\n%s\n",
              stack.program_text().c_str());

  // 2. Configure the network through the management plane.  Each call is
  //    one OVSDB transaction; the controller reacts incrementally.
  if (!stack.AddPort("host-a", 1, "access", 10).ok() ||
      !stack.AddPort("host-b", 2, "access", 10).ok()) {
    std::fprintf(stderr, "failed to add ports\n");
    return 1;
  }
  std::printf("added ports host-a (port 1) and host-b (port 2) on vlan 10\n");
  std::printf("data plane now has %zu admission entries\n",
              stack.device().GetTable("InVlanUntagged")->size());

  // 3. Send a packet from A to B.  The first one floods (and the switch
  //    learns A); B's reply is then delivered unicast.
  net::Mac mac_a(0, 0, 0, 0, 0, 0xAA), mac_b(0, 0, 0, 0, 0, 0xBB);
  net::Packet hello =
      net::MakeEthernetFrame(mac_b, mac_a, 0x0800, {'h', 'i'});
  auto out = stack.InjectPacket(0, 1, hello);
  if (!out.ok()) {
    std::fprintf(stderr, "inject: %s\n", out.status().ToString().c_str());
    return 1;
  }
  std::printf("\nA -> B (unknown destination): delivered to %zu port(s)\n",
              out->size());

  net::Packet reply = net::MakeEthernetFrame(mac_a, mac_b, 0x0800, {'y', 'o'});
  out = stack.InjectPacket(0, 2, reply);
  if (!out.ok()) return 1;
  std::printf("B -> A (A was learned):     delivered to port %llu only\n",
              static_cast<unsigned long long>((*out)[0].port));

  std::printf("\ncontroller stats: %llu dlog transactions, %llu entries "
              "installed, %llu digests processed\n",
              static_cast<unsigned long long>(
                  stack.controller().stats().dlog_txns),
              static_cast<unsigned long long>(
                  stack.controller().stats().entries_inserted),
              static_cast<unsigned long long>(
                  stack.controller().stats().digests));
  return 0;
}
