// Abstract syntax for the Datalog dialect (a pragmatic DDlog subset).
//
// Grammar sketch (see parser.h for the full grammar):
//
//   program   := (decl | rule)*
//   decl      := ("input"|"output")? "relation" Name "(" columns ")"
//   rule      := atom ":-" body "."  |  atom "."            (fact)
//   body      := elem ("," elem)*
//   elem      := atom                                        positive literal
//              | "not" atom                                  negated literal
//              | "var" x "=" expr                            let binding
//              | "var" x "=" AGG "(" expr ")" "group_by" "(" vars ")"
//              | expr                                        condition
//   atom      := Name "(" term ("," term)* ")"
//   term      := expr          (head atoms: any expr; body atoms: var | lit | "_")
//
// Expressions cover arithmetic, comparison, boolean logic, bit operations,
// string concatenation (++), if/else, tuples, and builtin function calls.
#ifndef NERPA_DLOG_AST_H_
#define NERPA_DLOG_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dlog/type.h"
#include "dlog/value.h"

namespace nerpa::dlog {

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class BinOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kBitAnd, kBitOr, kBitXor, kShl, kShr,
  kConcat,  // string ++
};

enum class UnOp { kNeg, kNot, kBitNot };

const char* BinOpName(BinOp op);

/// An expression tree node.
struct Expr {
  enum class Kind {
    kVar,     // name
    kLit,     // value (+ literal type)
    kUnary,   // op, args[0]
    kBinary,  // op2, args[0], args[1]
    kCall,    // name(args...)
    kTuple,   // (args...)
    kCond,    // if args[0] then args[1] else args[2]
    kCast,    // args[0] as literal_type (numeric conversions)
    kWildcard // "_" (only legal as a body-atom term)
  };

  Kind kind;
  std::string name;        // kVar / kCall
  Value value;             // kLit
  Type literal_type;       // kLit (e.g. 12 as bigint vs bit<16> context)
  bool literal_type_known = false;
  UnOp op1 = UnOp::kNeg;
  BinOp op2 = BinOp::kAdd;
  std::vector<ExprPtr> args;

  // Source span of the node's first token (0 = unknown, e.g. synthesized
  // expressions).  Mutable so the parser can stamp nodes after the shared
  // const pointer is built, like the checker annotations below.
  mutable int line = 0;
  mutable int col = 0;

  // During type checking, variables get a slot in the rule's frame and all
  // nodes get a resolved type.
  mutable int var_slot = -1;
  mutable Type resolved_type;

  std::string ToString() const;

  static ExprPtr MakeVar(std::string name);
  static ExprPtr MakeLit(Value value);
  static ExprPtr MakeTypedLit(Value value, Type type);
  static ExprPtr MakeUnary(UnOp op, ExprPtr arg);
  static ExprPtr MakeBinary(BinOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr MakeCall(std::string name, std::vector<ExprPtr> args);
  static ExprPtr MakeTuple(std::vector<ExprPtr> elems);
  static ExprPtr MakeCond(ExprPtr c, ExprPtr t, ExprPtr f);
  static ExprPtr MakeCast(ExprPtr value, Type target);
  static ExprPtr MakeWildcard();
};

/// A relation atom: `Name(term, term, ...)`.
struct Atom {
  std::string relation;
  std::vector<ExprPtr> terms;
  int line = 0;  // span of the relation name token
  int col = 0;

  std::string ToString() const;
};

/// Aggregate functions available in `group_by` bindings.
enum class AggFunc { kCount, kSum, kMin, kMax };

Result<AggFunc> AggFuncFromName(std::string_view name);
const char* AggFuncName(AggFunc func);

/// One element of a rule body.
struct BodyElem {
  enum class Kind {
    kLiteral,
    kCondition,
    kAssignment,
    kAggregate,
    kFlatMap,  // `var x in expr` — binds x to each element of a Vec
  };

  Kind kind;

  // kLiteral:
  bool negated = false;
  Atom atom;

  // kCondition:
  ExprPtr condition;

  // kAssignment (var x = expr):
  std::string var;
  ExprPtr expr;

  // kAggregate (var x = FUNC(expr) group_by (v1, ..., vk)):
  AggFunc agg_func = AggFunc::kCount;
  std::vector<std::string> group_by;

  int line = 0;  // span of the element's first token
  int col = 0;

  std::string ToString() const;
};

/// A rule `head :- body.` — a fact if the body is empty.
struct Rule {
  Atom head;
  std::vector<BodyElem> body;
  int line = 0;  // source span for diagnostics
  int col = 0;

  bool is_fact() const { return body.empty(); }
  std::string ToString() const;
};

/// A parsed (not yet compiled) program.
struct ProgramAst {
  std::vector<RelationDecl> relations;
  std::vector<Rule> rules;

  const RelationDecl* FindRelation(std::string_view name) const {
    for (const RelationDecl& r : relations) {
      if (r.name == name) return &r;
    }
    return nullptr;
  }

  std::string ToString() const;
};

}  // namespace nerpa::dlog

#endif  // NERPA_DLOG_AST_H_
