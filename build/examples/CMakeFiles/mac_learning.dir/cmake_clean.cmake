file(REMOVE_RECURSE
  "CMakeFiles/mac_learning.dir/mac_learning.cpp.o"
  "CMakeFiles/mac_learning.dir/mac_learning.cpp.o.d"
  "mac_learning"
  "mac_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
