// Robustness drills for every parser in the repository: random truncations
// and byte mutations of valid inputs must produce a clean Status (or parse
// to something valid) — never a crash, hang, or UB.  Run under the normal
// test harness; any sanitizer finding here is a bug.
#include <gtest/gtest.h>

#include <random>

#include "analyze/analyze.h"
#include "common/json.h"
#include "dlog/program.h"
#include "gateway/http.h"
#include "ovsdb/jsonrpc.h"
#include "p4/text.h"
#include "snvs/snvs.h"

namespace nerpa {
namespace {

constexpr int kTruncations = 120;
constexpr int kMutations = 400;

/// Runs `parse` over truncations and random single-byte mutations of
/// `seed`.  The parser's only obligation is not to crash.
template <typename ParseFn>
void Drill(const std::string& seed, ParseFn&& parse, uint64_t rng_seed) {
  std::mt19937_64 rng(rng_seed);
  for (int i = 0; i < kTruncations; ++i) {
    size_t cut = rng() % (seed.size() + 1);
    parse(seed.substr(0, cut));
  }
  for (int i = 0; i < kMutations; ++i) {
    std::string mutated = seed;
    int edits = 1 + static_cast<int>(rng() % 4);
    for (int e = 0; e < edits; ++e) {
      size_t at = rng() % mutated.size();
      switch (rng() % 3) {
        case 0:
          mutated[at] = static_cast<char>(rng() % 127 + 1);
          break;
        case 1:
          mutated.erase(at, 1 + rng() % 3);
          break;
        case 2:
          mutated.insert(at, 1, static_cast<char>(rng() % 127 + 1));
          break;
      }
      if (mutated.empty()) break;
    }
    parse(mutated);
  }
}

TEST(Fuzz, JsonParser) {
  Drill(R"({"a": [1, 2.5e3, "str\n", {"b": [true, null]}], "c": -7})",
        [](const std::string& text) { (void)Json::Parse(text); }, 1);
}

TEST(Fuzz, DlogFrontend) {
  Drill(snvs::SnvsRules() + R"(
          input relation Port(a: bigint, m: string, t: bigint,
                              trunks: Vec<bigint>)
        )",
        [](const std::string& text) { (void)dlog::Program::Parse(text); }, 2);
}

TEST(Fuzz, StaticAnalyzer) {
  // The analyzer must survive (and keep producing a diagnostic list for)
  // arbitrarily mangled programs — it runs lints over whatever parses, so
  // it exercises strictly more code than the frontend alone.
  Drill("input relation E(a: bigint, b: Vec<bigint>)\n"
        "relation Mid(x: bigint)\n"
        "output relation O(x: bigint, y: bit<16>)\n"
        "Mid(x) :- E(x, v), var t in v, t < 9, not O(t, _).\n"
        "O(n, n as bit<16>) :- Mid(m), var n = m + 1.\n"
        "O(c, 0) :- E(_, v), var c = count(v) group_by (v).\n",
        [](const std::string& text) { (void)analyze::AnalyzeDlog(text); }, 7);
}

TEST(Fuzz, P4TextFrontend) {
  Drill(snvs::SnvsP4Source(),
        [](const std::string& text) { (void)p4::ParseP4Text(text); }, 3);
}

TEST(Fuzz, OvsdbSchemaFromJson) {
  std::string seed = snvs::SnvsSchema().ToJson().Dump();
  Drill(seed,
        [](const std::string& text) {
          (void)ovsdb::DatabaseSchema::FromJsonText(text);
        },
        4);
}

TEST(Fuzz, OvsdbTransact) {
  ovsdb::Database db(snvs::SnvsSchema());
  std::string seed = R"([
    {"op": "insert", "table": "Port",
     "row": {"name": "p", "port": 1, "vlan_mode": "access", "tag": 3}},
    {"op": "mutate", "table": "Port", "where": [["tag", "<", 10]],
     "mutations": [["tag", "+=", 1]]},
    {"op": "select", "table": "Port", "where": []},
    {"op": "delete", "table": "Port", "where": [["name", "==", "p"]]}
  ])";
  Drill(seed,
        [&](const std::string& text) { (void)db.TransactText(text); }, 5);
  // The database must still be consistent enough to use.
  EXPECT_TRUE(db.TransactText(R"([
    {"op": "insert", "table": "Mirror",
     "row": {"name": "m", "src_port": 1, "out_port": 2}}
  ])").ok());
}

TEST(Fuzz, JsonRpcStream) {
  ovsdb::JsonStreamSplitter splitter;
  std::string seed =
      R"({"method":"transact","params":["db"],"id":1}{"method":"echo","params":[],"id":2})";
  std::mt19937_64 rng(6);
  for (int i = 0; i < kMutations; ++i) {
    std::string mutated = seed;
    mutated[rng() % mutated.size()] = static_cast<char>(rng() % 127 + 1);
    ovsdb::JsonStreamSplitter fresh;
    (void)fresh.Feed(mutated, [](std::string_view text) {
      (void)Json::Parse(text);
      return Status::Ok();
    });
  }
  // Chunked feeding of the clean stream still yields both documents.
  int documents = 0;
  for (size_t i = 0; i < seed.size(); i += 7) {
    ASSERT_TRUE(splitter
                    .Feed(seed.substr(i, 7),
                          [&](std::string_view) {
                            ++documents;
                            return Status::Ok();
                          })
                    .ok());
  }
  EXPECT_EQ(documents, 2);
}

TEST(Fuzz, HttpRequestStream) {
  // A pipelined pair: POST with a Content-Length body, then a GET.  The
  // gateway feeds raw socket bytes straight into this parser, so arbitrary
  // mangling must come back as a Status, never a crash or hang.
  std::string seed =
      "POST /v1/table/Port?tag=7&columns=name,tag HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Length: 17\r\n"
      "Cache-Control: no-cache\r\n"
      "\r\n"
      "{\"rows\":[1,2,3]}X"
      "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
  Drill(seed,
        [](const std::string& text) {
          gateway::HttpParser parser;
          (void)parser.Feed(text);
          while (parser.HasRequest()) (void)parser.PopRequest();
        },
        8);
  // Byte-at-a-time feeding of the clean stream still yields both requests
  // with the body intact.
  gateway::HttpParser parser;
  int requests = 0;
  std::string body;
  for (size_t i = 0; i < seed.size(); ++i) {
    ASSERT_TRUE(parser.Feed(seed.substr(i, 1)).ok());
    while (parser.HasRequest()) {
      gateway::HttpRequest request = parser.PopRequest();
      if (requests == 0) body = request.body;
      ++requests;
    }
  }
  EXPECT_EQ(requests, 2);
  EXPECT_EQ(body, "{\"rows\":[1,2,3]}X");
}

TEST(Fuzz, GatewayJsonRpcBody) {
  // The /jsonrpc route parses a body and pulls method/params/id out of it;
  // mangled bodies must yield a parse error or a well-formed document —
  // field extraction on whatever parses must be total.
  Drill(R"({"method":"transact","params":[{"op":"select","table":"Port",)"
        R"("where":[["tag","==",7]]}],"id":"req-1"})",
        [](const std::string& text) {
          auto parsed = Json::Parse(text);
          if (!parsed.ok()) return;
          const Json& doc = parsed.value();
          const Json* method = doc.Find("method");
          if (method != nullptr && method->is_string()) {
            (void)method->as_string();
          }
          (void)doc.Find("params");
          (void)doc.Find("id");
        },
        9);
}

}  // namespace
}  // namespace nerpa
