// E4 — §2.2's incremental-processing payoff, after the eBay ovn-controller
// engine: "This reduced latency by 3x and CPU cost by 20x in production."
//
// Workload: a network preloaded with N ports; then a stream of K=200 small
// configuration changes (the §2.1 regime: "small, frequent configuration
// changes"), each change moving one port to another VLAN.  Three
// controllers consume the stream:
//
//   * full      — conventional recompute-and-diff per change
//   * imperative— hand-written incremental callbacks (the eBay style)
//   * dlog      — the automatically incremental engine running the same
//                 logic as declarative rules
//
// Reported per N: mean per-change latency and total CPU for each, plus the
// full/incremental ratios.  Expected shape: ratios grow with N, crossing
// the paper's 3x / 20x figures once the network is large enough.
#include <random>

#include "baseline/imperative.h"
#include "bench/bench_util.h"
#include "dlog/engine.h"

namespace nerpa {
namespace {

using baseline::FullRecomputeController;
using baseline::ImperativeIncrementalController;
using baseline::LogicalEntry;
using baseline::PortConfig;
using bench::Banner;
using bench::BenchArgs;
using bench::JsonEmitter;
using bench::Table;
using dlog::Engine;
using dlog::Row;
using dlog::Value;

/// The same logic as the baselines' port/vlan features, as rules.
constexpr const char* kProgram = R"(
input relation PortCfg(name: string, port: bigint, vlan: bigint)
output relation InVlanUntagged(port: bigint, vlan: bigint)
output relation OutVlan(port: bigint, vlan: bigint, tagged: bigint)
output relation FloodVlan(vlan: bigint, group: bigint)
output relation MulticastGroup(group: bigint, port: bigint)
InVlanUntagged(p, v) :- PortCfg(_, p, v).
OutVlan(p, v, 0) :- PortCfg(_, p, v).
MulticastGroup(v + 1, p) :- PortCfg(_, p, v).
FloodVlan(v, v + 1) :- PortCfg(_, p, v).
)";

struct RunResult {
  double mean_latency = 0;
  double cpu_seconds = 0;
};

template <typename ApplyChange>
RunResult Measure(int n_changes, ApplyChange&& apply) {
  double total = 0;
  int64_t cpu_before = ProcessCpuNanos();
  for (int i = 0; i < n_changes; ++i) {
    Stopwatch watch;
    apply(i);
    total += watch.ElapsedSeconds();
  }
  RunResult result;
  result.mean_latency = total / n_changes;
  result.cpu_seconds =
      static_cast<double>(ProcessCpuNanos() - cpu_before) * 1e-9;
  return result;
}

int Run(const BenchArgs& args) {
  const int kChanges = args.Scaled(200);
  Banner("E4 / §2.2",
         "config-change stream: full recompute vs hand-written incremental "
         "vs dlog");
  auto program = dlog::Program::Parse(kProgram);
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }

  JsonEmitter emitter("incremental_vs_full", args);
  emitter.Param("changes", kChanges);
  Json::Array sizes;

  Table table({"ports", "full/chg", "imperative/chg", "dlog/chg",
               "lat full/dlog", "cpu full/dlog", "cpu full/imp"});
  for (int base_ports : {100, 400, 1600, 6400}) {
    const int ports = args.Scaled(base_ports);
    std::mt19937_64 rng(args.seed);
    auto vlan_of = [&](int port, int generation) {
      return static_cast<int64_t>((port + generation * 7) % 64 + 1);
    };

    // --- full recompute ---
    size_t sink_ops = 0;
    auto sink = [&](const LogicalEntry&, int) { ++sink_ops; };
    FullRecomputeController full(sink);
    for (int p = 0; p < ports; ++p) {
      full.AddPort({StrFormat("p%d", p), p, false, vlan_of(p, 0), {}});
    }
    RunResult full_result = Measure(kChanges, [&](int i) {
      int p = static_cast<int>(rng() % static_cast<uint64_t>(ports));
      full.AddPort({StrFormat("p%d", p), p, false, vlan_of(p, i + 1), {}});
    });

    // --- hand-written incremental ---
    rng.seed(args.seed);
    ImperativeIncrementalController imperative(sink);
    for (int p = 0; p < ports; ++p) {
      imperative.AddPort({StrFormat("p%d", p), p, false, vlan_of(p, 0), {}});
    }
    RunResult imp_result = Measure(kChanges, [&](int i) {
      int p = static_cast<int>(rng() % static_cast<uint64_t>(ports));
      imperative.AddPort(
          {StrFormat("p%d", p), p, false, vlan_of(p, i + 1), {}});
    });

    // --- dlog engine ---
    rng.seed(args.seed);
    Engine engine(*program);
    std::vector<int64_t> current_vlan(static_cast<size_t>(ports));
    auto port_row = [&](int p, int64_t vlan) {
      return Row{Value::String(StrFormat("p%d", p)), Value::Int(p),
                 Value::Int(vlan)};
    };
    for (int p = 0; p < ports; ++p) {
      current_vlan[static_cast<size_t>(p)] = vlan_of(p, 0);
      if (!engine.Insert("PortCfg", port_row(p, vlan_of(p, 0))).ok()) {
        return 1;
      }
    }
    if (!engine.Commit().ok()) return 1;
    RunResult dlog_result = Measure(kChanges, [&](int i) {
      int p = static_cast<int>(rng() % static_cast<uint64_t>(ports));
      int64_t old_vlan = current_vlan[static_cast<size_t>(p)];
      int64_t new_vlan = vlan_of(p, i + 1);
      (void)engine.Delete("PortCfg", port_row(p, old_vlan));
      (void)engine.Insert("PortCfg", port_row(p, new_vlan));
      (void)engine.Commit();
      current_vlan[static_cast<size_t>(p)] = new_vlan;
    });

    table.AddRow(
        {std::to_string(ports), bench::Us(full_result.mean_latency),
         bench::Us(imp_result.mean_latency),
         bench::Us(dlog_result.mean_latency),
         StrFormat("%.1fx",
                   full_result.mean_latency / dlog_result.mean_latency),
         StrFormat("%.1fx", full_result.cpu_seconds /
                                std::max(dlog_result.cpu_seconds, 1e-9)),
         StrFormat("%.1fx", full_result.cpu_seconds /
                                std::max(imp_result.cpu_seconds, 1e-9))});

    Json::Object point;
    point["ports"] = ports;
    point["full_mean_latency_s"] = full_result.mean_latency;
    point["imperative_mean_latency_s"] = imp_result.mean_latency;
    point["dlog_mean_latency_s"] = dlog_result.mean_latency;
    point["latency_full_over_dlog"] =
        full_result.mean_latency / dlog_result.mean_latency;
    point["cpu_full_over_dlog"] =
        full_result.cpu_seconds / std::max(dlog_result.cpu_seconds, 1e-9);
    point["cpu_full_over_imperative"] =
        full_result.cpu_seconds / std::max(imp_result.cpu_seconds, 1e-9);
    sizes.push_back(Json(std::move(point)));
  }
  table.Print();
  emitter.Metric("by_network_size", Json(std::move(sizes)));
  emitter.Write();
  std::printf(
      "\npaper reference (§2.2, eBay's incremental ovn-controller engine):\n"
      "incremental processing reduced latency 3x and CPU 20x in production.\n"
      "Expected shape: both ratios grow with network size; the hand-written\n"
      "incremental controller is the fastest but is the code §2.2 calls\n"
      "hard to maintain (see bench_loc_table).\n");
  return 0;
}

}  // namespace
}  // namespace nerpa

int main(int argc, char** argv) {
  return nerpa::Run(nerpa::bench::BenchArgs::Parse(argc, argv));
}
