#include "baseline/fragments.h"

#include "common/strings.h"

namespace nerpa::baseline {

const char* const kFragmentsSourcePath = __FILE__;

// Table-id regions, one per feature (conventional controllers also carve
// the OpenFlow table space feature by feature).
namespace tid {
constexpr int kVlan = 0;
constexpr int kSecurityGroups = 5;
constexpr int kAclIngress = 10;
constexpr int kDhcp = 15;
constexpr int kArp = 20;
constexpr int kNat = 25;
constexpr int kLb = 30;
constexpr int kQos = 35;
constexpr int kL2 = 40;
constexpr int kMirror = 45;
constexpr int kTunnel = 50;
constexpr int kGateway = 55;
}  // namespace tid

const std::vector<FeatureInfo>& Features() {
  static const std::vector<FeatureInfo> kFeatures = {
      {"l2_forwarding", 26, 2},
      {"vlan_isolation", 30, 4},
      {"acl_ingress", 22, 2},
      {"port_mirroring", 14, 1},
      {"arp_responder", 22, 1},
      {"dhcp_relay", 18, 1},
      {"load_balancer", 30, 2},
      {"nat", 26, 2},
      {"security_groups", 30, 2},
      {"qos", 20, 1},
      {"tunnel_encap", 24, 2},
      {"gateway", 24, 2},
  };
  return kFeatures;
}

void FragmentController::Emit(int table, int priority,
                              std::vector<ofp::OfMatch> match,
                              std::vector<ofp::OfAction> actions,
                              std::string cookie) {
  ofp::Flow flow;
  flow.table_id = table;
  flow.priority = priority;
  flow.match = std::move(match);
  flow.actions = std::move(actions);
  flow.cookie = std::move(cookie);
  flows_->AddFlow(std::move(flow));
}

Status FragmentController::EnableFeatures(int count) {
  if (count < 0 || count > static_cast<int>(Features().size())) {
    return InvalidArgument("bad feature count");
  }
  flows_->Clear();
  using Emitter = void (FragmentController::*)();
  static constexpr Emitter kEmitters[] = {
      &FragmentController::EmitL2Forwarding,
      &FragmentController::EmitVlanIsolation,
      &FragmentController::EmitAclIngress,
      &FragmentController::EmitPortMirroring,
      &FragmentController::EmitArpResponder,
      &FragmentController::EmitDhcpRelay,
      &FragmentController::EmitLoadBalancer,
      &FragmentController::EmitNat,
      &FragmentController::EmitSecurityGroups,
      &FragmentController::EmitQos,
      &FragmentController::EmitTunnelEncap,
      &FragmentController::EmitGateway,
  };
  for (int i = 0; i < count; ++i) {
    (this->*kEmitters[i])();
  }
  return Status::Ok();
}

size_t FragmentController::FragmentSites() const {
  return flows_->FlowsByCookie().size();
}

// --- Feature emitters.  Each Emit call site is one "fragment" in the
// --- Fig. 3 sense; note how related logic scatters across tables and
// --- priorities, exactly the sprawl §1 describes.

void FragmentController::EmitL2Forwarding() {
  for (int port = 0; port < workload_.ports; ++port) {
    for (int m = 0; m < workload_.macs_per_port; ++m) {
      uint64_t mac = 0x020000000000ULL +
                     static_cast<uint64_t>(port) * 256 +
                     static_cast<uint64_t>(m);
      // Unicast entry for a learned MAC.
      Emit(tid::kL2, 100,
           {{"ethernet.dstAddr", mac, ~uint64_t{0}}},
           {{ofp::OfAction::Kind::kOutput, "", static_cast<uint64_t>(port)}},
           "l2/unicast");
      // And the corresponding learn-suppression entry.
      Emit(tid::kL2 + 1, 100,
           {{"ethernet.srcAddr", mac, ~uint64_t{0}},
            {"standard.ingress_port", static_cast<uint64_t>(port),
             ~uint64_t{0}}},
           {}, "l2/smac");
    }
  }
  // Flood on miss.
  Emit(tid::kL2, 0, {}, {{ofp::OfAction::Kind::kGroup, "", 1}}, "l2/flood");
}

void FragmentController::EmitVlanIsolation() {
  for (int port = 0; port < workload_.ports; ++port) {
    uint64_t vlan = static_cast<uint64_t>(port % workload_.vlans) + 10;
    // Access admission: untagged packets adopt the port vlan.
    Emit(tid::kVlan, 90,
         {{"standard.ingress_port", static_cast<uint64_t>(port), ~uint64_t{0}},
          {"vlan._valid", 0, 1}},
         {{ofp::OfAction::Kind::kSetField, "meta.vlan", vlan}},
         "vlan/access_in");
    // Tagged packets on the wrong vlan are dropped.
    Emit(tid::kVlan, 80,
         {{"standard.ingress_port", static_cast<uint64_t>(port), ~uint64_t{0}},
          {"vlan._valid", 1, 1}},
         {{ofp::OfAction::Kind::kDrop, "", 0}}, "vlan/wrong_tag");
    // Egress tagging for trunk uplinks.
    Emit(tid::kL2 + 2, 90,
         {{"standard.egress_port", static_cast<uint64_t>(port), ~uint64_t{0}},
          {"meta.vlan", vlan, 0xFFF}},
         {{ofp::OfAction::Kind::kPushVlan, "", vlan}}, "vlan/egress_tag");
  }
  // Default drop for unconfigured ports.
  Emit(tid::kVlan, 0, {}, {{ofp::OfAction::Kind::kDrop, "", 0}},
       "vlan/default_drop");
}

void FragmentController::EmitAclIngress() {
  for (int rule = 0; rule < workload_.acl_rules; ++rule) {
    uint64_t mac = 0x060000000000ULL + static_cast<uint64_t>(rule);
    // Block-listed sources.
    Emit(tid::kAclIngress, 100 + rule,
         {{"ethernet.srcAddr", mac, ~uint64_t{0}}},
         {{ofp::OfAction::Kind::kDrop, "", 0}}, "acl/block_src");
  }
  // Allow everything else.
  Emit(tid::kAclIngress, 0, {}, {}, "acl/allow_default");
}

void FragmentController::EmitPortMirroring() {
  for (int port = 0; port < workload_.ports; port += 4) {
    Emit(tid::kMirror, 50,
         {{"standard.ingress_port", static_cast<uint64_t>(port), ~uint64_t{0}}},
         {{ofp::OfAction::Kind::kClone, "",
           static_cast<uint64_t>(workload_.ports + 1)}},
         "mirror/span");
  }
}

void FragmentController::EmitArpResponder() {
  for (int port = 0; port < workload_.ports; ++port) {
    uint64_t ip = 0x0A000000ULL + static_cast<uint64_t>(port);
    // Respond to ARP requests for known IPs at the first hop.
    Emit(tid::kArp, 100,
         {{"ethernet.etherType", 0x0806, 0xFFFF},
          {"arp.tpa", ip, 0xFFFFFFFF}},
         {{ofp::OfAction::Kind::kOutput, "", static_cast<uint64_t>(port)}},
         "arp/responder");
  }
}

void FragmentController::EmitDhcpRelay() {
  for (int vlan = 0; vlan < workload_.vlans; ++vlan) {
    Emit(tid::kDhcp, 100,
         {{"meta.vlan", static_cast<uint64_t>(vlan) + 10, 0xFFF},
          {"ip.proto", 17, 0xFF},
          {"udp.dst", 67, 0xFFFF}},
         {{ofp::OfAction::Kind::kOutput, "",
           static_cast<uint64_t>(workload_.ports + 2)}},
         "dhcp/relay");
  }
}

void FragmentController::EmitLoadBalancer() {
  for (int lb = 0; lb < workload_.load_balancers; ++lb) {
    uint64_t vip = 0xC0A80000ULL + static_cast<uint64_t>(lb);
    uint32_t group = 100 + static_cast<uint32_t>(lb);
    // VIP traffic goes to the LB group...
    Emit(tid::kLb, 100, {{"ip.dst", vip, 0xFFFFFFFF}},
         {{ofp::OfAction::Kind::kGroup, "", group}}, "lb/vip");
    std::vector<uint64_t> members;
    for (int b = 0; b < workload_.backends_per_lb; ++b) {
      members.push_back(static_cast<uint64_t>(b % workload_.ports));
      // ...and each backend needs a return-path rewrite.
      Emit(tid::kLb + 1, 100,
           {{"ip.src", vip + 0x10000ULL * static_cast<uint64_t>(b),
             0xFFFFFFFF}},
           {{ofp::OfAction::Kind::kSetField, "ip.src", vip}}, "lb/unsnat");
    }
    flows_->SetGroup(group, members);
  }
}

void FragmentController::EmitNat() {
  for (int port = 0; port < workload_.ports; port += 2) {
    uint64_t internal = 0x0A000100ULL + static_cast<uint64_t>(port);
    uint64_t external = 0xC6336400ULL + static_cast<uint64_t>(port);
    Emit(tid::kNat, 100, {{"ip.src", internal, 0xFFFFFFFF}},
         {{ofp::OfAction::Kind::kSetField, "ip.src", external}}, "nat/snat");
    Emit(tid::kNat + 1, 100, {{"ip.dst", external, 0xFFFFFFFF}},
         {{ofp::OfAction::Kind::kSetField, "ip.dst", internal}},
         "nat/dnat");
  }
}

void FragmentController::EmitSecurityGroups() {
  // Pairwise allow within the group — the quadratic blow-up that makes
  // fragment counts explode in practice.
  for (int a = 0; a < workload_.ports; ++a) {
    for (int b = 0; b < workload_.ports; ++b) {
      if (a == b) continue;
      Emit(tid::kSecurityGroups, 100,
           {{"standard.ingress_port", static_cast<uint64_t>(a), ~uint64_t{0}},
            {"meta.dst_port", static_cast<uint64_t>(b), ~uint64_t{0}}},
           {}, "sg/pair_allow");
    }
  }
  Emit(tid::kSecurityGroups, 0, {}, {{ofp::OfAction::Kind::kDrop, "", 0}},
       "sg/default_deny");
}

void FragmentController::EmitQos() {
  for (int port = 0; port < workload_.ports; ++port) {
    Emit(tid::kQos, 100,
         {{"standard.ingress_port", static_cast<uint64_t>(port), ~uint64_t{0}}},
         {{ofp::OfAction::Kind::kSetField, "meta.meter",
           static_cast<uint64_t>(port % 4)}},
         "qos/meter");
  }
}

void FragmentController::EmitTunnelEncap() {
  for (int chassis = 0; chassis < workload_.remote_chassis; ++chassis) {
    uint64_t tep = 0xAC100000ULL + static_cast<uint64_t>(chassis);
    Emit(tid::kTunnel, 100,
         {{"meta.dst_chassis", static_cast<uint64_t>(chassis), ~uint64_t{0}}},
         {{ofp::OfAction::Kind::kSetField, "tunnel.dst", tep},
          {ofp::OfAction::Kind::kOutput, "",
           static_cast<uint64_t>(workload_.ports + 3)}},
         "tunnel/encap");
    Emit(tid::kTunnel + 1, 100, {{"tunnel.src", tep, 0xFFFFFFFF}},
         {{ofp::OfAction::Kind::kSetField, "meta.from_tunnel", 1}},
         "tunnel/decap");
  }
}

void FragmentController::EmitGateway() {
  for (int route = 0; route < workload_.external_routes; ++route) {
    uint64_t prefix = 0x08000000ULL + (static_cast<uint64_t>(route) << 16);
    Emit(tid::kGateway, 50 + route,
         {{"ip.dst", prefix, 0xFFFF0000ULL}},
         {{ofp::OfAction::Kind::kSetField, "meta.next_hop",
           static_cast<uint64_t>(route)},
          {ofp::OfAction::Kind::kOutput, "",
           static_cast<uint64_t>(workload_.ports + 4)}},
         "gw/route");
  }
  Emit(tid::kGateway, 0, {}, {{ofp::OfAction::Kind::kDrop, "", 0}},
       "gw/no_route");
}

// --- The unified counterpart ---

std::string UnifiedFeatureRules(int count) {
  // Shared input relations (the management-plane view).
  std::string out = R"(
input relation PortCfg(port: bigint, vlan: bigint)
input relation MacBinding(mac: bit<48>, port: bigint, vlan: bigint)
input relation AclCfg(mac: bit<48>, allow: bool)
input relation MirrorCfg(src: bigint, dst: bigint)
input relation ArpEntry(ip: bit<32>, port: bigint)
input relation DhcpServer(vlan: bigint, port: bigint)
input relation Vip(vip: bit<32>, lb: bigint)
input relation Backend(lb: bigint, ip: bit<32>, port: bigint)
input relation SgMember(port: bigint)
input relation QosCfg(port: bigint, meter: bigint)
input relation Chassis(id: bigint, tep: bit<32>)
input relation Route(prefix: bit<32>, plen: bigint, next_hop: bigint)
)";
  // Each entry appends the feature's output relations and rules; the rule
  // counts here are what FeatureInfo::datalog_rules records.
  static const char* kFeatureRules[] = {
      // l2_forwarding: 2 rules
      R"(
output relation L2Unicast(mac: bit<48>, port: bigint)
output relation L2Smac(mac: bit<48>, port: bigint)
L2Unicast(m, p) :- MacBinding(m, p, _).
L2Smac(m, p) :- MacBinding(m, p, _).
)",
      // vlan_isolation: 4 rules
      R"(
output relation VlanAdmit(port: bigint, vlan: bigint)
output relation VlanDrop(port: bigint)
output relation VlanEgress(port: bigint, vlan: bigint)
output relation VlanFlood(vlan: bigint, port: bigint)
VlanAdmit(p, v) :- PortCfg(p, v).
VlanDrop(p) :- PortCfg(p, _).
VlanEgress(p, v) :- PortCfg(p, v).
VlanFlood(v, p) :- PortCfg(p, v).
)",
      // acl_ingress: 2 rules
      R"(
output relation AclBlock(mac: bit<48>)
output relation AclPass(mac: bit<48>)
AclBlock(m) :- AclCfg(m, false).
AclPass(m) :- AclCfg(m, true).
)",
      // port_mirroring: 1 rule
      R"(
output relation Span(src: bigint, dst: bigint)
Span(s, d) :- MirrorCfg(s, d).
)",
      // arp_responder: 1 rule
      R"(
output relation ArpReply(ip: bit<32>, port: bigint)
ArpReply(ip, p) :- ArpEntry(ip, p).
)",
      // dhcp_relay: 1 rule
      R"(
output relation DhcpFlow(vlan: bigint, port: bigint)
DhcpFlow(v, p) :- DhcpServer(v, p).
)",
      // load_balancer: 2 rules
      R"(
output relation LbGroup(vip: bit<32>, lb: bigint)
output relation LbUnsnat(ip: bit<32>, vip: bit<32>)
LbGroup(vip, lb) :- Vip(vip, lb).
LbUnsnat(ip, vip) :- Vip(vip, lb), Backend(lb, ip, _).
)",
      // nat: 2 rules
      R"(
output relation Snat(port: bigint, vlan: bigint)
output relation Dnat(port: bigint, vlan: bigint)
Snat(p, v) :- PortCfg(p, v), p % 2 == 0.
Dnat(p, v) :- PortCfg(p, v), p % 2 == 0.
)",
      // security_groups: 2 rules
      R"(
output relation SgAllow(a: bigint, b: bigint)
output relation SgDeny(a: bigint)
SgAllow(a, b) :- SgMember(a), SgMember(b), a != b.
SgDeny(a) :- SgMember(a).
)",
      // qos: 1 rule
      R"(
output relation Meter(port: bigint, meter: bigint)
Meter(p, m) :- QosCfg(p, m).
)",
      // tunnel_encap: 2 rules
      R"(
output relation Encap(chassis: bigint, tep: bit<32>)
output relation Decap(tep: bit<32>)
Encap(c, t) :- Chassis(c, t).
Decap(t) :- Chassis(_, t).
)",
      // gateway: 2 rules
      R"(
output relation GwRoute(prefix: bit<32>, plen: bigint, next_hop: bigint)
output relation GwMiss(prefix: bit<32>)
GwRoute(pfx, len, nh) :- Route(pfx, len, nh).
GwMiss(pfx) :- Route(pfx, _, _).
)",
  };
  for (int i = 0; i < count && i < 12; ++i) {
    out += kFeatureRules[i];
  }
  return out;
}

}  // namespace nerpa::baseline
