#!/bin/sh
# Tier-1 verification, run three ways: a plain build, a build instrumented
# with AddressSanitizer + UndefinedBehaviorSanitizer (the durability layer
# does enough raw file and lifetime juggling that the sanitizers earn
# their keep), and a ThreadSanitizer pass over the concurrent subsystems
# (device-parallel dispatch, HA recovery).  Then a Release -O2 bench smoke:
# every JSON-emitting bench must run at a small scale and produce its
# BENCH_<name>.json.
#   scripts/ci.sh [jobs]
set -eu
JOBS="${1:-$(nproc)}"

run_suite() {
  build_dir="$1"; shift
  echo "=== configure $build_dir ($*) ==="
  cmake -B "$build_dir" -S . "$@"
  echo "=== build $build_dir ==="
  cmake --build "$build_dir" -j "$JOBS"
  echo "=== test $build_dir ==="
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"
}

run_suite build-ci

# Static analysis gates, both layers:
#   * nerpa_check: the full-stack analyzer must pass clean over every stack
#     the repository ships (snvs + all example programs).
#   * clang-tidy over src/tools/bench (skips with a notice when the binary
#     is absent; the GitHub runner installs it).
echo "=== nerpa_check (all shipped stacks) ==="
for stack in $(./build-ci/tools/nerpa_check --list-builtins); do
  echo "--- nerpa_check --builtin $stack --werror ---"
  ./build-ci/tools/nerpa_check --builtin "$stack" --werror
done
echo "=== clang-tidy ==="
./scripts/lint.sh "$JOBS"

run_suite build-ci-asan \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"

# TSan is incompatible with ASan, so it gets its own build; restrict the run
# to the suites that actually exercise threads (controller dispatch pool,
# OVSDB TCP service thread, HTTP gateway event loop + workers, HA restart
# and hot-standby failover, chaos fault storms — including the seeded
# failover soak in test_chaos — snvs integration end to end, and the dlog
# differential suite whose parallel-bootstrap case forces a 4-thread
# semi-naive fan-out regardless of core count) to keep the wall clock
# sane.
echo "=== configure build-ci-tsan ==="
cmake -B build-ci-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all"
echo "=== build build-ci-tsan ==="
cmake --build build-ci-tsan -j "$JOBS" \
  --target test_controller test_ha test_ha_restart test_common \
  test_ovsdb_rpc test_gateway test_chaos test_snvs_integration \
  test_dlog_differential
echo "=== test build-ci-tsan (concurrency suites) ==="
ctest --test-dir build-ci-tsan --output-on-failure -j "$JOBS" \
  -R 'test_controller|test_ha|test_ha_restart|test_common|test_ovsdb_rpc|test_gateway|test_chaos|test_snvs_integration|test_dlog_differential'

# The gateway's epoll loop + worker pool also gets a UBSan-only pass:
# ASan shifts object layout and TSan rewrites the memory model, so a
# plain-layout UBSan build is the one that catches misaligned casts and
# integer overflow in the HTTP parser as they ship.
echo "=== configure build-ci-ubsan (gateway) ==="
cmake -B build-ci-ubsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=undefined -fno-sanitize-recover=all"
echo "=== build build-ci-ubsan (test_gateway) ==="
cmake --build build-ci-ubsan -j "$JOBS" --target test_gateway
echo "=== test build-ci-ubsan (test_gateway) ==="
ctest --test-dir build-ci-ubsan --output-on-failure -R 'test_gateway'

# Chaos soak: the pinned seeds in tests/test_chaos.cc each drive 50+
# faults across all four seams (device write failures, transport drops,
# torn/corrupted durability files, and lease storms — expiry, clock skew,
# zombie leaders — against the hot-standby pair) and must converge
# byte-identically with every stale-epoch write fenced at the switch.
# Run explicitly under the ASan/UBSan build so any latent lifetime bug in
# the recovery paths fails the job, not just a divergence.
echo "=== chaos soak (ASan/UBSan, pinned seeds) ==="
./build-ci-asan/tests/test_chaos --gtest_filter='ChaosSoak.*'

# Nightly long-soak (NERPA_NIGHTLY=1, cron-only): widen the seed matrix
# well past the pinned three and run the full soak — fault storms, lease
# storms (expiry/skew/zombies), and the stall-fault deadline-park drain —
# under both the ASan/UBSan build and the TSan build, so a race or
# lifetime bug that only one seed in fifty tickles still fails a job
# within a day instead of shipping.
if [ "${NERPA_NIGHTLY:-0}" = "1" ]; then
  echo "=== nightly long-soak (extended seeds, ASan/UBSan + TSan) ==="
  NIGHTLY_SEEDS="${NERPA_NIGHTLY_SEEDS:-101,211,307,401,503,601,701,809,907,1013}"
  NERPA_SOAK_EXTRA_SEEDS="$NIGHTLY_SEEDS" \
    ./build-ci-asan/tests/test_chaos --gtest_filter='ChaosSoak.*'
  NERPA_SOAK_EXTRA_SEEDS="$NIGHTLY_SEEDS" \
    ./build-ci-tsan/tests/test_chaos --gtest_filter='ChaosSoak.*'
fi

# Bench smoke: the perf claims in README/EXPERIMENTS come from Release
# binaries, so the smoke must prove the Release build runs and emits the
# canonical JSON — not that the numbers hit their targets (CI machines vary).
echo "=== bench smoke (Release -O2) ==="
cmake -B build-ci-bench -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-ci-bench -j "$JOBS" --target \
  bench_dlog_hotpath bench_port_scaling bench_incremental_vs_full \
  bench_lb_coldstart
mkdir -p build-ci-bench/bench-out
for b in dlog_hotpath port_scaling incremental_vs_full lb_coldstart; do
  echo "--- bench_$b --scale=0.05 ---"
  "build-ci-bench/bench/bench_$b" --scale=0.05 \
    --out=build-ci-bench/bench-out >/dev/null
  test -s "build-ci-bench/bench-out/BENCH_$b.json" || {
    echo "bench_$b produced no BENCH_$b.json" >&2; exit 1; }
done

# Gateway bench is also a perf gate: it compares sustained req/s against
# the checked-in baseline floor and exits nonzero on a >30% regression.
echo "--- bench_gateway --scale=0.1 (regression gate) ---"
cmake --build build-ci-bench -j "$JOBS" --target bench_gateway
build-ci-bench/bench/bench_gateway --scale=0.1 \
  --baseline=bench/baselines/BENCH_gateway_baseline.json \
  --out=build-ci-bench/bench-out >/dev/null
test -s build-ci-bench/bench-out/BENCH_gateway.json || {
  echo "bench_gateway produced no BENCH_gateway.json" >&2; exit 1; }

# Cold-start bench is a perf gate too, on machine-independent ratios: the
# dlog/imperative CPU ratio must not blow past the checked-in ceiling
# (bootstrap fast path regressed) and checkpoint restore must stay
# decisively faster than recomputation.  Full scale — the ratios are
# noisy below ~40 LBs.
echo "--- bench_lb_coldstart --scale=1 (regression gate) ---"
build-ci-bench/bench/bench_lb_coldstart --scale=1 \
  --baseline=bench/baselines/BENCH_lb_coldstart_baseline.json \
  --out=build-ci-bench/bench-out >/dev/null

# Failover bench is a correctness gate first (zero stale-epoch writes may
# reach the data plane during the zombie phase, enforced unconditionally)
# and an RTO gate second: the p95 lease-expiry-to-first-write time must
# stay under the checked-in ceiling.
echo "--- bench_failover --scale=0.3 (fencing + RTO gate) ---"
cmake --build build-ci-bench -j "$JOBS" --target bench_failover
build-ci-bench/bench/bench_failover --scale=0.3 \
  --baseline=bench/baselines/BENCH_failover_baseline.json \
  --out=build-ci-bench/bench-out >/dev/null
test -s build-ci-bench/bench-out/BENCH_failover.json || {
  echo "bench_failover produced no BENCH_failover.json" >&2; exit 1; }

# Overload bench is both a correctness gate (zero responses served past
# their propagated deadline plus grace, enforced unconditionally) and a
# robustness gate: goodput at 4x offered load must hold the checked-in
# fraction of the 1x plateau (congestion-collapse detector) and
# health-probe p99 at 8x must stay under its ceiling.
echo "--- bench_overload --scale=0.3 (deadline + goodput-plateau gate) ---"
cmake --build build-ci-bench -j "$JOBS" --target bench_overload
build-ci-bench/bench/bench_overload --scale=0.3 \
  --baseline=bench/baselines/BENCH_overload_baseline.json \
  --out=build-ci-bench/bench-out >/dev/null
test -s build-ci-bench/bench-out/BENCH_overload.json || {
  echo "bench_overload produced no BENCH_overload.json" >&2; exit 1; }

echo "CI: all suites passed"
