// Property test for the full stack: after an arbitrary sequence of
// management-plane operations (with packet traffic interleaved), the
// incrementally maintained data-plane state must equal the state a fresh
// stack computes from the final configuration alone.  This is the
// system-level version of the engine's incremental==scratch property — a
// divergence here is precisely the §2.2 class of incremental-controller
// bug ("only exercised when a deployment takes a particular series of
// steps to arrive at a given configuration").
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "common/strings.h"
#include "snvs/snvs.h"

namespace nerpa::snvs {
namespace {

/// Canonical dump of one table's entries (match + action + args).
std::multiset<std::string> TableContents(const p4::Switch& device,
                                         const char* table) {
  std::multiset<std::string> out;
  const p4::TableState* state = device.GetTable(table);
  for (const p4::TableEntry* entry : state->Entries()) {
    out.insert(entry->KeyString(state->schema()) + "->" + entry->ToString());
  }
  return out;
}

std::map<uint32_t, std::vector<uint64_t>> Groups(const p4::Switch& device) {
  std::map<uint32_t, std::vector<uint64_t>> out;
  for (uint32_t group = 1; group < 5000; ++group) {
    const auto* members = device.GetMulticastGroup(group);
    if (members != nullptr) out[group] = *members;
  }
  return out;
}

struct PortState {
  int64_t port;
  bool trunk;
  int64_t tag;
  std::vector<int64_t> trunks;
};

TEST(SnvsProperty, IncrementalEqualsColdStart) {
  std::mt19937_64 rng(0xFEED);
  for (int round = 0; round < 5; ++round) {
    auto stack_result = BuildSnvsStack();
    ASSERT_TRUE(stack_result.ok());
    SnvsStack& stack = **stack_result;

    std::map<std::string, PortState> ports;
    std::map<std::string, std::pair<int64_t, int64_t>> mirrors;
    std::set<std::tuple<int64_t, int64_t, bool>> acls;
    int64_t mirror_seq = 0;

    for (int step = 0; step < 60; ++step) {
      switch (rng() % 5) {
        case 0: {  // add / replace a port (delete first if present)
          int id = static_cast<int>(rng() % 10);
          std::string name = StrFormat("p%d", id);
          if (ports.count(name) != 0) {
            ASSERT_TRUE(stack.DeletePort(name).ok());
            ports.erase(name);
          }
          bool trunk = rng() % 3 == 0;
          PortState state;
          state.port = id;
          state.trunk = trunk;
          state.tag = trunk ? 0 : static_cast<int64_t>(rng() % 6) + 1;
          if (trunk) {
            for (int64_t vlan = 1; vlan <= 6; ++vlan) {
              if (rng() % 2) state.trunks.push_back(vlan);
            }
          }
          ASSERT_TRUE(stack
                          .AddPort(name, state.port,
                                   trunk ? "trunk" : "access", state.tag,
                                   state.trunks)
                          .ok());
          ports[name] = state;
          break;
        }
        case 1: {  // delete a port
          if (ports.empty()) break;
          auto it = ports.begin();
          std::advance(it, static_cast<long>(rng() % ports.size()));
          ASSERT_TRUE(stack.DeletePort(it->first).ok());
          ports.erase(it);
          break;
        }
        case 2: {  // mirror (unique per source port, schema-enforced)
          int64_t src = static_cast<int64_t>(rng() % 10);
          bool src_in_use = false;
          for (const auto& [n, m] : mirrors) {
            if (m.first == src) src_in_use = true;
          }
          if (src_in_use) break;
          std::string name = StrFormat("m%lld",
                                       static_cast<long long>(mirror_seq++));
          int64_t dst = static_cast<int64_t>(rng() % 10) + 20;
          ASSERT_TRUE(stack.AddMirror(name, src, dst).ok());
          mirrors[name] = {src, dst};
          break;
        }
        case 3: {  // acl
          int64_t mac = static_cast<int64_t>(rng() % 4) + 0xA0;
          int64_t vlan = static_cast<int64_t>(rng() % 6) + 1;
          bool allow = rng() % 2 == 0;
          if (acls.count({mac, vlan, allow}) != 0) break;
          // The Acl table is keyed (vlan, mac): drop+allow for the same key
          // would collide, so only one polarity per key.
          if (acls.count({mac, vlan, !allow}) != 0) break;
          ASSERT_TRUE(stack.AddAclRule(mac, vlan, allow).ok());
          acls.insert({mac, vlan, allow});
          break;
        }
        case 4: {  // traffic (drives the learning feedback loop)
          if (ports.empty()) break;
          uint64_t src_port = static_cast<uint64_t>(rng() % 10);
          net::Mac src(0, 0, 0, 0, 0,
                       static_cast<uint8_t>(rng() % 6 + 1));
          net::Mac dst(0, 0, 0, 0, 0,
                       static_cast<uint8_t>(rng() % 6 + 1));
          auto out = stack.InjectPacket(
              0, src_port,
              net::MakeEthernetFrame(dst, src, 0x0800, {1, 2, 3}));
          ASSERT_TRUE(out.ok()) << out.status().ToString();
          break;
        }
      }
      ASSERT_TRUE(stack.controller().last_error().ok());
    }

    // Cold-start a fresh stack from the final configuration only.
    auto fresh_result = BuildSnvsStack();
    ASSERT_TRUE(fresh_result.ok());
    SnvsStack& fresh = **fresh_result;
    for (const auto& [name, state] : ports) {
      ASSERT_TRUE(fresh
                      .AddPort(name, state.port,
                               state.trunk ? "trunk" : "access", state.tag,
                               state.trunks)
                      .ok());
    }
    for (const auto& [name, mirror] : mirrors) {
      ASSERT_TRUE(fresh.AddMirror(name, mirror.first, mirror.second).ok());
    }
    for (const auto& [mac, vlan, allow] : acls) {
      ASSERT_TRUE(fresh.AddAclRule(mac, vlan, allow).ok());
    }

    // Configuration-derived tables must match exactly (learning-derived
    // SMac/Dmac depend on traffic history, which the fresh stack lacks).
    for (const char* table : {"InVlanUntagged", "InVlanTagged", "OutVlan",
                              "FloodVlan", "Acl", "PortMirror"}) {
      EXPECT_EQ(TableContents(stack.device(), table),
                TableContents(fresh.device(), table))
          << "table " << table << " diverged in round " << round;
    }
    EXPECT_EQ(Groups(stack.device()), Groups(fresh.device()))
        << "multicast groups diverged in round " << round;
  }
}

}  // namespace
}  // namespace nerpa::snvs
