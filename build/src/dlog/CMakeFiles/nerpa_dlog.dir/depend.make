# Empty dependencies file for nerpa_dlog.
# This may be replaced when dependencies are built.
