// A P4Runtime-style control API for the Switch.
//
// This is the wire between the control plane and the data plane: typed,
// validated table writes (insert/modify/delete), multicast group
// programming, and a digest subscription.  In the real Nerpa this is gRPC;
// here it is an in-process client with the same semantics, including
// batch validation (a batch either fully validates or nothing applies).
#ifndef NERPA_P4_RUNTIME_H_
#define NERPA_P4_RUNTIME_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "p4/interpreter.h"

namespace nerpa::p4 {

enum class UpdateType { kInsert, kModify, kDelete };
const char* UpdateTypeName(UpdateType type);

struct Update {
  UpdateType type = UpdateType::kInsert;
  TableEntry entry;
};

/// The write/read contract the controller codes against.  Virtual so that
/// HA decorators (src/ha's FaultyRuntimeClient) can interpose on the write
/// path; the base class talks straight to an in-process Switch.
class RuntimeClient {
 public:
  explicit RuntimeClient(Switch* sw) : switch_(sw) {}
  virtual ~RuntimeClient() = default;

  const P4Program& program() const { return switch_->program(); }

  /// Validates and applies a batch of table updates.  Validation errors
  /// reject the whole batch before anything applies; application errors
  /// (e.g. duplicate insert) stop at the failing update — matching
  /// P4Runtime's sequential-apply semantics.
  virtual Status Write(const std::vector<Update>& updates);

  /// Convenience single-entry forms (dispatch through Write()).
  Status Insert(TableEntry entry);
  Status Modify(TableEntry entry);
  Status Delete(TableEntry entry);

  /// All entries of `table`.  This is the read-back contract crash
  /// recovery depends on (src/ha): the returned entries carry everything
  /// needed to recompute their canonical identity (match, priority) plus
  /// the installed action, so a restarted controller can diff desired
  /// state against the device without any other metadata.
  virtual Result<std::vector<TableEntry>> ReadTable(
      std::string_view table) const;

  /// Direct counters: (entry, packets that hit it) for every entry.
  virtual Result<std::vector<std::pair<TableEntry, uint64_t>>> ReadCounters(
      std::string_view table) const;

  virtual Status SetMulticastGroup(uint32_t group,
                                   std::vector<uint64_t> ports);

  /// All multicast groups and their (sorted) member ports; the multicast
  /// half of the read-back contract.
  virtual Result<std::vector<std::pair<uint32_t, std::vector<uint64_t>>>>
  ReadMulticastGroups() const;

  /// Updates applied so far through Write()/SetMulticastGroup() — lets
  /// resynchronization tests assert "zero writes when converged".
  uint64_t write_count() const { return write_count_; }

  // --- Fencing (controller replication) ---
  //
  // The client stamps every Write/SetMulticastGroup with this token (its
  // controller's leader-lease epoch); the switch rejects stale tokens with
  // kPermissionDenied (Switch::CheckFence).  0 = unfenced legacy writer.
  // Decorators (ha::FaultyRuntimeClient) inherit the check by delegating
  // to the base implementation.

  void set_fence_token(uint64_t token) { fence_token_ = token; }
  uint64_t fence_token() const { return fence_token_; }

  /// Declares mastership to the switch (the P4Runtime arbitration analog):
  /// presents the fence token without writing anything, raising the
  /// switch's high-water mark so lower-epoch writers are locked out
  /// *immediately* — even when the new leader's resync turns out to be a
  /// zero-write diff.  Fails with kPermissionDenied when an even newer
  /// epoch already arbitrated.
  Status Arbitrate() { return switch_->CheckFence(fence_token_); }

  using DigestHandler = std::function<void(const DigestMessage&)>;

  /// Registers the digest stream handler (one per client, like the
  /// P4Runtime DigestList stream).
  void SubscribeDigests(DigestHandler handler) {
    digest_handler_ = std::move(handler);
  }

  /// Drains the switch's queued digests into the handler.  In a real
  /// deployment this is push; tests and the controller call it after
  /// injecting packets.
  virtual void PollDigests();

  /// Validates a fully-formed entry against the program (exposed for the
  /// cross-plane type checker in src/nerpa).
  Status ValidateEntry(const TableEntry& entry, UpdateType type) const;

 protected:
  Switch* target() const { return switch_; }

 private:
  Switch* switch_;
  DigestHandler digest_handler_;
  uint64_t write_count_ = 0;
  uint64_t fence_token_ = 0;
};

}  // namespace nerpa::p4

#endif  // NERPA_P4_RUNTIME_H_
