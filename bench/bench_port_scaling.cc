// E2 — the paper's §4.3 scalability evaluation (its headline measurement).
//
// "As a preliminary scalability evaluation, we added 2,000 ports to the
//  system.  We then measured the time between (1) the OVSDB client reading
//  a new port from OVSDB and (2) the data plane entry being added to the
//  P4 table.  The first time difference noted was 0.013 seconds, and the
//  last was 0.018 seconds.  This scaling demonstrates incrementality at
//  work."
//
// We run the same experiment against the full C++ stack: 2,000 ports are
// added one transaction at a time, and per-port we measure commit-to-
// installed latency end to end (OVSDB transact -> monitor -> incremental
// Datalog -> P4Runtime write; all synchronous in-process).  The shape to
// reproduce is a FLAT curve: the last port costs about the same as the
// first.  Absolute numbers are far below the paper's because the prototype
// crossed process boundaries (OVSDB JSON-RPC + gRPC) and ours does not.
//
// For contrast, the same workload is replayed against the conventional
// full-recompute controller, whose per-port latency grows linearly.
#include <cinttypes>

#include "baseline/imperative.h"
#include "bench/bench_util.h"
#include "snvs/snvs.h"

namespace nerpa {
namespace {

using bench::Banner;
using bench::BenchArgs;
using bench::JsonEmitter;
using bench::Table;

int Run(const BenchArgs& args) {
  const int kPorts = args.Scaled(2000);
  Banner("E2 / §4.3", "2,000-port scaling: OVSDB commit -> P4 entry latency");

  auto stack_result = snvs::BuildSnvsStack();
  if (!stack_result.ok()) {
    std::fprintf(stderr, "stack: %s\n",
                 stack_result.status().ToString().c_str());
    return 1;
  }
  snvs::SnvsStack& stack = **stack_result;

  std::vector<double> latencies;
  latencies.reserve(kPorts);
  for (int i = 0; i < kPorts; ++i) {
    Stopwatch watch;
    auto added = stack.AddPort(StrFormat("p%d", i), i, "access",
                               (i % 1024) + 1);
    double elapsed = watch.ElapsedSeconds();
    if (!added.ok()) {
      std::fprintf(stderr, "port %d: %s\n", i,
                   added.status().ToString().c_str());
      return 1;
    }
    latencies.push_back(elapsed);
  }
  size_t entries = stack.device().GetTable("InVlanUntagged")->size() +
                   stack.device().GetTable("OutVlan")->size() +
                   stack.device().GetTable("FloodVlan")->size();
  std::printf("installed %zu table entries for %d ports\n\n", entries,
              kPorts);

  Table table({"metric", "paper (prototype)", "measured (this repo)"});
  table.AddRow({"first port latency", "0.013 s",
                bench::Us(latencies.front())});
  table.AddRow({"last port latency", "0.018 s", bench::Us(latencies.back())});
  table.AddRow({"last/first ratio", "1.38x",
                StrFormat("%.2fx", latencies.back() / latencies.front())});
  table.AddRow({"p50", "-", bench::Us(bench::Percentile(latencies, 0.50))});
  table.AddRow({"p99", "-", bench::Us(bench::Percentile(latencies, 0.99))});
  table.Print();

  // Shape check: mean of the last window vs first window of additions
  // (100 ports at the default scale).
  const int window = std::max(1, kPorts / 20);
  double first_mean = 0, last_mean = 0;
  for (int i = 0; i < window; ++i) {
    first_mean += latencies[static_cast<size_t>(i)] / window;
    last_mean += latencies[static_cast<size_t>(kPorts - window + i)] / window;
  }
  std::printf(
      "\nshape: mean(first %d) = %s, mean(last %d) = %s, ratio %.2fx "
      "(incremental => near-flat)\n",
      window, bench::Us(first_mean).c_str(), window,
      bench::Us(last_mean).c_str(), last_mean / first_mean);

  // Contrast: the conventional recompute-everything controller.
  double full_ratio = 0;
  {
    size_t ops = 0;
    baseline::FullRecomputeController full(
        [&](const baseline::LogicalEntry&, int) { ++ops; });
    std::vector<double> full_latencies;
    for (int i = 0; i < kPorts; ++i) {
      Stopwatch watch;
      full.AddPort({StrFormat("p%d", i), i, false, (i % 1024) + 1, {}});
      full_latencies.push_back(watch.ElapsedSeconds());
    }
    double f0 = 0, f1 = 0;
    for (int i = 0; i < window; ++i) {
      f0 += full_latencies[static_cast<size_t>(i)] / window;
      f1 += full_latencies[static_cast<size_t>(kPorts - window + i)] / window;
    }
    full_ratio = f1 / f0;
    std::printf(
        "contrast (full recompute baseline): mean(first %d) = %s, "
        "mean(last %d) = %s, ratio %.1fx (grows with network size)\n",
        window, bench::Us(f0).c_str(), window, bench::Us(f1).c_str(),
        f1 / f0);
  }

  JsonEmitter emitter("port_scaling", args);
  emitter.Param("ports", kPorts);
  emitter.Param("shape_window", window);
  emitter.Metric("first_port_latency_s", latencies.front());
  emitter.Metric("last_port_latency_s", latencies.back());
  emitter.Metric("p50_latency_s", bench::Percentile(latencies, 0.50));
  emitter.Metric("p99_latency_s", bench::Percentile(latencies, 0.99));
  emitter.Metric("mean_first_window_s", first_mean);
  emitter.Metric("mean_last_window_s", last_mean);
  emitter.Metric("shape_ratio", last_mean / first_mean);
  emitter.Metric("entries_installed", static_cast<int64_t>(entries));
  emitter.Metric("full_recompute_shape_ratio", full_ratio);
  emitter.Write();
  return 0;
}

}  // namespace
}  // namespace nerpa

int main(int argc, char** argv) {
  return nerpa::Run(nerpa::bench::BenchArgs::Parse(argc, argv));
}
