// OVSDB column values: canonically-sorted sets of atoms, or maps from atom
// to atom (RFC 7047 §5.1 <value>).  Scalars are one-element sets.
#ifndef NERPA_OVSDB_DATUM_H_
#define NERPA_OVSDB_DATUM_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "ovsdb/schema.h"

namespace nerpa::ovsdb {

/// A column value.  Keys are kept sorted and unique; for maps, values_ is
/// parallel to keys_.  Equality/ordering are therefore structural.
class Datum {
 public:
  Datum() = default;

  // Scalar constructors.
  static Datum Scalar(Atom atom);
  static Datum Integer(int64_t v) { return Scalar(Atom(v)); }
  static Datum Real(double v) { return Scalar(Atom(v)); }
  static Datum Boolean(bool v) { return Scalar(Atom(v)); }
  static Datum String(std::string v) { return Scalar(Atom(std::move(v))); }
  static Datum UuidRef(Uuid v) { return Scalar(Atom(v)); }
  static Datum Empty() { return Datum(); }

  /// Builds a set; duplicates are merged.
  static Datum Set(std::vector<Atom> atoms);
  /// Builds a map; duplicate keys keep the last value.
  static Datum Map(std::vector<std::pair<Atom, Atom>> pairs);

  size_t size() const { return keys_.size(); }
  bool empty() const { return keys_.empty(); }
  bool is_map() const { return !values_.empty(); }

  const std::vector<Atom>& keys() const { return keys_; }
  const std::vector<Atom>& values() const { return values_; }

  /// Scalar accessors; require size()==1.
  const Atom& scalar() const { return keys_.at(0); }
  int64_t AsInteger() const { return scalar().integer(); }
  double AsReal() const { return scalar().real(); }
  bool AsBoolean() const { return scalar().boolean(); }
  const std::string& AsString() const { return scalar().string(); }
  const Uuid& AsUuid() const { return scalar().uuid(); }

  bool ContainsKey(const Atom& key) const;
  /// Map lookup; nullopt when absent or not a map.
  std::optional<Atom> MapGet(const Atom& key) const;

  /// Set/map element insertion and removal (used by "mutate" ops).
  void InsertKey(Atom key);
  void InsertPair(Atom key, Atom value);
  void EraseKey(const Atom& key);

  /// Validates the datum against a column type (atom types, constraints,
  /// cardinality).
  Status CheckType(const ColumnType& type) const;

  /// JSON wire form per RFC 7047: scalar atoms inline, sets as
  /// ["set",[...]], maps as ["map",[[k,v],...]].
  Json ToJson() const;
  static Result<Datum> FromJson(
      const Json& json, const ColumnType& type,
      const std::map<std::string, Uuid>* named_uuids = nullptr);

  /// Default value for a column type: empty for min==0, zero-ish scalar for
  /// required scalars (RFC 7047 default-conversion behaviour).
  static Datum Default(const ColumnType& type);

  std::string ToString() const;

  bool operator==(const Datum& o) const {
    return keys_ == o.keys_ && values_ == o.values_;
  }
  bool operator!=(const Datum& o) const { return !(*this == o); }
  bool operator<(const Datum& o) const;

 private:
  std::vector<Atom> keys_;
  std::vector<Atom> values_;
};

}  // namespace nerpa::ovsdb

#endif  // NERPA_OVSDB_DATUM_H_
