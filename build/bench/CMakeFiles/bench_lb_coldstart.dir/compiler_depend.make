# Empty compiler generated dependencies file for bench_lb_coldstart.
# This may be replaced when dependencies are built.
