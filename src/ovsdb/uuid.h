// 128-bit row identifiers, matching OVSDB's RFC-4122-formatted UUIDs.
#ifndef NERPA_OVSDB_UUID_H_
#define NERPA_OVSDB_UUID_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace nerpa::ovsdb {

/// A 128-bit universally unique identifier.  Rows are keyed by Uuid, and
/// columns may hold (weak or strong) Uuid references to rows in other tables.
struct Uuid {
  uint64_t hi = 0;
  uint64_t lo = 0;

  constexpr bool IsZero() const { return hi == 0 && lo == 0; }

  /// Generates a fresh random-looking UUID.  Deterministic per-process
  /// sequence (splitmix64 over a counter) so tests and benches reproduce.
  static Uuid Generate();

  /// Parses "xxxxxxxx-xxxx-xxxx-xxxx-xxxxxxxxxxxx".
  static std::optional<Uuid> Parse(std::string_view text);

  std::string ToString() const;

  auto operator<=>(const Uuid&) const = default;
};

}  // namespace nerpa::ovsdb

template <>
struct std::hash<nerpa::ovsdb::Uuid> {
  size_t operator()(const nerpa::ovsdb::Uuid& u) const noexcept {
    return static_cast<size_t>(u.hi ^ (u.lo * 0x9e3779b97f4a7c15ULL));
  }
};

#endif  // NERPA_OVSDB_UUID_H_
