// Compilation of a parsed Datalog program into an executable incremental
// plan: name resolution, bidirectional type checking, safety checks,
// stratification (SCC condensation with negation/aggregation constraints),
// join planning, and arrangement (index) registration.
//
// The output of compilation is consumed by the incremental evaluator in
// engine.h.  The delta-rule expansion is planned *here*, at compile time:
// for a rule with body literals L1..Ln, the engine computes
//
//   dH = sum_i  [ L1^new * ... * L_{i-1}^new * dLi * L_{i+1}^old * ... * Ln^old ]
//
// and each variant i needs its own join order and index keys, because the
// pinned literal binds its variables first.  DeltaPlan captures exactly
// that, so the evaluator never searches for an index at runtime.
#ifndef NERPA_DLOG_PROGRAM_H_
#define NERPA_DLOG_PROGRAM_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "dlog/ast.h"
#include "dlog/type.h"

namespace nerpa::dlog {

/// How one term of a body atom participates in matching.
struct TermPlan {
  enum class Kind {
    kBind,       // fresh variable: binds the frame slot
    kCheckVar,   // variable already bound: value must match
    kCheckConst, // literal constant: value must match
    kIgnore,     // wildcard
  };
  Kind kind = Kind::kIgnore;
  int slot = -1;    // kBind / kCheckVar
  Value constant;   // kCheckConst (coerced to the column type)
  // Affine offset for head patterns (bigint columns only): the head term
  // was `var + offset`, so matching a head row binds slot = value - offset
  // (what lets DRed invert hop-counting recursive rules like
  // `Reach(n, h + 1) :- Reach(m, h), Edge(m, n)`).  Always 0 in body atoms.
  int64_t offset = 0;
};

/// One body step in execution form.
struct StepPlan {
  BodyElem::Kind kind = BodyElem::Kind::kLiteral;

  // kLiteral:
  int relation = -1;
  bool negated = false;
  std::vector<TermPlan> terms;

  // kCondition:
  ExprPtr condition;

  // kAssignment:
  int slot = -1;
  ExprPtr expr;

  // kAggregate:
  AggFunc agg_func = AggFunc::kCount;
  ExprPtr agg_arg;                 // evaluated per binding
  std::vector<int> group_slots;    // frame slots of the group-by variables
  std::vector<int> binding_slots;  // all bound slots at the aggregate (the
                                   // distinct-assignment key), group first
  int result_slot = -1;
  Type result_type;
  int agg_state_index = -1;        // engine-side persistent group state
};

/// Key/arrangement selection for one literal within one execution order.
struct LookupPlan {
  int step_index = -1;             // index into CompiledRule::steps
  std::vector<int> key_positions;  // atom positions known before matching
  int arrangement = -1;            // arrangement id on the relation; -1=scan
};

/// One delta-expansion variant: literal `pinned_step` is driven by the
/// relation's change set; the remaining steps execute in original order.
struct DeltaPlan {
  int pinned_step = -1;
  // For a pinned *negated* literal: the arrangement whose presence flips
  // drive this variant (-1 = empty key, use whole-relation emptiness).
  int pinned_arrangement = -1;
  // For every literal step other than the pinned one, the lookup plan (in
  // execution order).  Non-literal steps run in original order as their
  // inputs become bound (original order is already valid).
  std::vector<LookupPlan> lookups;
};

/// Lookup plans for full (non-delta) evaluation in original body order,
/// optionally with head variables pre-bound (used by DRed re-derivation).
struct FullPlan {
  std::vector<LookupPlan> lookups;
};

struct CompiledRule {
  int index = -1;
  int head_relation = -1;
  std::vector<ExprPtr> head_exprs;  // one per head column, type-checked
  std::vector<StepPlan> steps;
  int frame_size = 0;
  int line = 0;
  int col = 0;

  bool has_aggregate = false;
  int aggregate_step = -1;

  // Head fast path: every head term is a bare variable, so the engine can
  // gather a head row straight from frame slots — no expression evaluation
  // or Result plumbing on the hot emit path.
  bool head_all_vars = false;
  std::vector<int> head_var_slots;  // one slot per head column

  // Delta plans, one per *positive or negative literal* step index that can
  // be pinned.  For aggregate rules only literals before the aggregate.
  std::vector<DeltaPlan> delta_plans;

  // Full evaluation (facts, re-derivation seeds, recursive seminaive seed).
  FullPlan full_plan;
  // Re-derivation plan: head variable slots that the head row binds
  // directly (only valid when head terms are plain vars/constants).
  bool head_invertible = false;
  std::vector<TermPlan> head_pattern;  // same vocabulary as body terms
  FullPlan rederive_plan;              // lookups with head vars pre-bound

  std::string ToString() const;
};

/// An arrangement (hash index) specification on a relation.
struct ArrangementSpec {
  std::vector<int> key_positions;  // sorted, non-empty
};

/// One stratum: an SCC of the relation dependency graph, in topo order.
struct Stratum {
  std::vector<int> relations;  // relation ids defined in this stratum
  std::vector<int> rules;      // rules whose head is in this stratum
  bool recursive = false;
};

/// A compiled program, shareable across engines.
class Program {
 public:
  /// Parses, type-checks, stratifies and plans a program.
  static Result<std::shared_ptr<const Program>> Parse(std::string_view source);
  /// Same, from an already-parsed AST.
  static Result<std::shared_ptr<const Program>> Compile(ProgramAst ast);

  const std::vector<RelationDecl>& relations() const { return relations_; }
  const RelationDecl& relation(int id) const { return relations_[static_cast<size_t>(id)]; }
  int FindRelation(std::string_view name) const;

  const std::vector<CompiledRule>& rules() const { return rules_; }
  const std::vector<Stratum>& strata() const { return strata_; }
  const std::vector<std::vector<ArrangementSpec>>& arrangements() const {
    return arrangements_;
  }
  int aggregate_state_count() const { return aggregate_state_count_; }
  const ProgramAst& ast() const { return ast_; }

  /// Stratum index that defines each relation (-1 for inputs).
  int stratum_of(int relation) const { return stratum_of_[static_cast<size_t>(relation)]; }

 private:
  friend class Compiler;
  Program() = default;

  ProgramAst ast_;
  std::vector<RelationDecl> relations_;
  std::vector<CompiledRule> rules_;
  std::vector<Stratum> strata_;
  std::vector<int> stratum_of_;
  std::vector<std::vector<ArrangementSpec>> arrangements_;
  int aggregate_state_count_ = 0;
};

}  // namespace nerpa::dlog

#endif  // NERPA_DLOG_PROGRAM_H_
