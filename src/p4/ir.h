// A P4-style pipeline IR: headers, a parse graph, match-action tables,
// actions over typed fields, digests, and ingress/egress controls.
//
// This is the "P4 program" of the Nerpa stack.  It plays two roles:
//   1. The behavioural interpreter (interpreter.h) executes it over real
//      packets, standing in for BMv2.
//   2. The binding generator (nerpa/bindings.h) turns each table into a
//      control-plane *output* relation and each digest into an *input*
//      relation, exactly as §4.2 of the paper describes.
#ifndef NERPA_P4_IR_H_
#define NERPA_P4_IR_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace nerpa::p4 {

/// One header field; widths are in bits (1..64).
struct P4Field {
  std::string name;
  int width = 0;
};

struct HeaderType {
  std::string name;
  std::vector<P4Field> fields;

  int FindField(std::string_view field) const;
  int TotalBits() const;
};

/// A reference to a field: "ethernet.dstAddr", "meta.vlan", or
/// "standard.ingress_port" / "standard.egress_port" etc.
struct FieldRef {
  std::string text;

  FieldRef() = default;
  FieldRef(std::string t) : text(std::move(t)) {}  // NOLINT(runtime/explicit)
  FieldRef(const char* t) : text(t) {}             // NOLINT(runtime/explicit)

  bool operator==(const FieldRef& o) const { return text == o.text; }
  bool operator<(const FieldRef& o) const { return text < o.text; }
};

/// Parser state: optionally extract one header, then branch on a field.
struct ParserState {
  std::string name;
  std::string extracts;  // header type name to extract; "" = none
  int line = 0;  // source span of the state name (0 = built in code)
  int col = 0;

  struct Transition {
    std::optional<uint64_t> match;  // nullopt = default
    std::string next;               // state name, or "accept" / "reject"
  };
  FieldRef select;                  // empty text = unconditional
  std::vector<Transition> transitions;
};

enum class MatchKind { kExact, kLpm, kTernary, kRange, kOptional };
const char* MatchKindName(MatchKind kind);

struct TableKey {
  FieldRef field;
  MatchKind kind = MatchKind::kExact;
  int width = 0;  // resolved during Validate()
};

/// Primitive operations available in actions.
struct ActionOp {
  enum class Kind {
    kSetFieldConst,  // dest = immediate
    kSetFieldParam,  // dest = action parameter `param`
    kCopyField,      // dest = src field
    kOutput,         // unicast to port (immediate or param)
    kMulticast,      // replicate to multicast group (immediate or param)
    kDrop,
    kDigest,         // send digest_name with digest_fields to the controller
    kClone,          // mirror the *original* frame to a port (SPAN-style)
    kPushVlan,       // insert an 802.1Q tag (vid from param/immediate)
    kPopVlan,
    kNoOp,
  };
  Kind kind = Kind::kNoOp;
  FieldRef dest;
  FieldRef src;
  uint64_t immediate = 0;
  std::string param;  // non-empty: take the value from this action parameter
  std::string digest_name;

  static ActionOp SetField(FieldRef dest, uint64_t value);
  static ActionOp SetFieldFromParam(FieldRef dest, std::string param);
  static ActionOp CopyField(FieldRef dest, FieldRef src);
  static ActionOp OutputPort(std::string param);
  static ActionOp OutputConst(uint64_t port);
  static ActionOp MulticastGroup(std::string param);
  static ActionOp MulticastConst(uint64_t group);
  static ActionOp Drop();
  static ActionOp Digest(std::string name);
  static ActionOp ClonePort(std::string param);
  static ActionOp PushVlan(std::string vid_param);
  static ActionOp PopVlan();
};

struct ActionParam {
  std::string name;
  int width = 0;
};

struct Action {
  std::string name;
  std::vector<ActionParam> params;
  std::vector<ActionOp> ops;
  int line = 0;  // source span of the action name (0 = built in code)
  int col = 0;

  int FindParam(std::string_view param) const;
};

struct Table {
  std::string name;
  int line = 0;  // source span of the table name (0 = built in code)
  int col = 0;
  std::vector<TableKey> keys;
  std::vector<std::string> actions;  // names of permitted actions
  std::string default_action;        // applied on miss ("" = no-op)
  std::vector<uint64_t> default_action_args;
  size_t size = 1024;
};

/// Digest declaration: the data-plane-to-control-plane notification type.
struct Digest {
  std::string name;
  std::vector<P4Field> fields;
  int line = 0;  // source span of the digest name (0 = built in code)
  int col = 0;
};

/// Control-flow node of a control block.
struct ControlNode {
  enum class Kind { kApply, kConditional };
  Kind kind = Kind::kApply;

  std::string table;  // kApply

  // kConditional:
  enum class Pred { kFieldEq, kFieldNe, kHeaderValid, kHeaderInvalid };
  Pred pred = Pred::kFieldEq;
  FieldRef cond_field;       // kFieldEq/kFieldNe
  uint64_t cond_value = 0;
  std::string cond_header;   // kHeaderValid/kHeaderInvalid
  std::vector<ControlNode> then_branch;
  std::vector<ControlNode> else_branch;

  static ControlNode Apply(std::string table);
  static ControlNode IfFieldEq(FieldRef field, uint64_t value,
                               std::vector<ControlNode> then_branch,
                               std::vector<ControlNode> else_branch = {});
  static ControlNode IfHeaderValid(std::string header,
                                   std::vector<ControlNode> then_branch,
                                   std::vector<ControlNode> else_branch = {});
};

/// A complete data-plane program.
struct P4Program {
  std::string name;
  std::vector<HeaderType> headers;
  std::vector<P4Field> metadata;      // user metadata fields
  std::vector<ParserState> parser;    // first state is the start state
  std::vector<Action> actions;
  std::vector<Table> tables;
  std::vector<Digest> digests;
  std::vector<ControlNode> ingress;
  std::vector<ControlNode> egress;
  std::vector<std::string> deparser;  // header emit order

  const HeaderType* FindHeader(std::string_view name) const;
  const Table* FindTable(std::string_view name) const;
  const Action* FindAction(std::string_view name) const;
  const Digest* FindDigest(std::string_view name) const;
  const ParserState* FindParserState(std::string_view name) const;

  /// Width in bits of a field reference; error if unresolvable.
  Result<int> FieldWidth(const FieldRef& ref) const;

  /// Checks internal consistency and resolves table-key widths.  Must be
  /// called (once) before the program is interpreted or bound.
  Status Validate();

  /// Pretty P4-ish source listing (for docs and the LOC table).
  std::string ToString() const;
};

/// Well-known standard metadata fields (always present).
inline constexpr int kStandardFieldWidth = 16;
inline constexpr uint64_t kDropPort = 0x1FF;

}  // namespace nerpa::p4

#endif  // NERPA_P4_IR_H_
