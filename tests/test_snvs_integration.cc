// End-to-end tests of the full snvs stack: OVSDB transactions drive the
// incremental control plane, which programs the P4 pipeline; packets then
// flow (and MAC-learning digests flow back).  This is the §4.3 integration
// test of the paper.
#include <gtest/gtest.h>

#include "net/packet.h"
#include "ofp/p4c_of.h"
#include "snvs/snvs.h"

namespace nerpa::snvs {
namespace {

using net::Mac;
using net::Packet;

constexpr Mac kHostA = Mac(0x00, 0x00, 0x00, 0x00, 0x00, 0xAA);
constexpr Mac kHostB = Mac(0x00, 0x00, 0x00, 0x00, 0x00, 0xBB);
constexpr Mac kHostC = Mac(0x00, 0x00, 0x00, 0x00, 0x00, 0xCC);

Packet Frame(Mac dst, Mac src, std::optional<uint16_t> vlan = std::nullopt) {
  return net::MakeEthernetFrame(dst, src, 0x0800, {0xDE, 0xAD, 0xBE, 0xEF},
                                vlan);
}

class SnvsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto stack = BuildSnvsStack();
    ASSERT_TRUE(stack.ok()) << stack.status().ToString();
    stack_ = std::move(stack).value();
  }

  std::unique_ptr<SnvsStack> stack_;
};

TEST_F(SnvsTest, StackComesUpEmpty) {
  EXPECT_EQ(stack_->device().GetTable("InVlanUntagged")->size(), 0u);
  EXPECT_TRUE(stack_->controller().last_error().ok());
}

TEST_F(SnvsTest, PortAdditionInstallsEntries) {
  ASSERT_TRUE(stack_->AddPort("p1", 1, "access", 10).ok());
  // Access port: untagged admission + flood membership + egress untag.
  EXPECT_EQ(stack_->device().GetTable("InVlanUntagged")->size(), 1u);
  EXPECT_EQ(stack_->device().GetTable("OutVlan")->size(), 1u);
  EXPECT_EQ(stack_->device().GetTable("FloodVlan")->size(), 1u);
  // Multicast group 11 (vlan 10 + 1) contains port 1.
  const auto* group = stack_->device().GetMulticastGroup(11);
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(*group, std::vector<uint64_t>({1}));

  // Trunk port carrying vlans 10 and 20.
  ASSERT_TRUE(stack_->AddPort("p2", 2, "trunk", 0, {10, 20}).ok());
  EXPECT_EQ(stack_->device().GetTable("InVlanTagged")->size(), 2u);
  group = stack_->device().GetMulticastGroup(11);
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(*group, std::vector<uint64_t>({1, 2}));
}

TEST_F(SnvsTest, PortDeletionRemovesEntries) {
  ASSERT_TRUE(stack_->AddPort("p1", 1, "access", 10).ok());
  ASSERT_TRUE(stack_->AddPort("p2", 2, "access", 10).ok());
  ASSERT_TRUE(stack_->DeletePort("p1").ok());
  EXPECT_EQ(stack_->device().GetTable("InVlanUntagged")->size(), 1u);
  const auto* group = stack_->device().GetMulticastGroup(11);
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(*group, std::vector<uint64_t>({2}));
}

TEST_F(SnvsTest, UnknownUnicastFloodsWithinVlan) {
  ASSERT_TRUE(stack_->AddPort("p1", 1, "access", 10).ok());
  ASSERT_TRUE(stack_->AddPort("p2", 2, "access", 10).ok());
  ASSERT_TRUE(stack_->AddPort("p3", 3, "access", 20).ok());  // other vlan

  auto out = stack_->InjectPacket(0, 1, Frame(kHostB, kHostA));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Floods to p2 only (p3 is vlan 20; p1 is pruned as the source).
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].port, 2u);
  // Access egress emits untagged.
  EXPECT_EQ((*out)[0].packet, Frame(kHostB, kHostA));
}

TEST_F(SnvsTest, MacLearningConvergesToUnicast) {
  ASSERT_TRUE(stack_->AddPort("p1", 1, "access", 10).ok());
  ASSERT_TRUE(stack_->AddPort("p2", 2, "access", 10).ok());
  ASSERT_TRUE(stack_->AddPort("p3", 3, "access", 10).ok());

  // A talks: flooded, and A@p1 is learned via the digest loop.
  auto out = stack_->InjectPacket(0, 1, Frame(kHostB, kHostA));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);  // flood to p2, p3
  EXPECT_EQ(stack_->device().GetTable("Dmac")->size(), 1u);
  EXPECT_EQ(stack_->device().GetTable("SMac")->size(), 1u);

  // B replies: unicast straight to p1, and B@p2 is learned.
  out = stack_->InjectPacket(0, 2, Frame(kHostA, kHostB));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].port, 1u);
  EXPECT_EQ(stack_->device().GetTable("Dmac")->size(), 2u);

  // Now A->B is unicast too.
  out = stack_->InjectPacket(0, 1, Frame(kHostB, kHostA));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].port, 2u);
}

TEST_F(SnvsTest, MacMoveRelearns) {
  ASSERT_TRUE(stack_->AddPort("p1", 1, "access", 10).ok());
  ASSERT_TRUE(stack_->AddPort("p2", 2, "access", 10).ok());
  ASSERT_TRUE(stack_->AddPort("p3", 3, "access", 10).ok());

  ASSERT_TRUE(stack_->InjectPacket(0, 1, Frame(kHostB, kHostA)).ok());
  // A moves to p3 and talks again: most-recent-wins updates the entry.
  ASSERT_TRUE(stack_->InjectPacket(0, 3, Frame(kHostB, kHostA)).ok());
  auto out = stack_->InjectPacket(0, 2, Frame(kHostA, kHostB));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].port, 3u);
}

TEST_F(SnvsTest, TrunkPortsKeepTags) {
  ASSERT_TRUE(stack_->AddPort("p1", 1, "access", 10).ok());
  ASSERT_TRUE(stack_->AddPort("p2", 2, "trunk", 0, {10, 20}).ok());

  // Tagged vlan-10 frame on the trunk floods to the access port untagged.
  auto out = stack_->InjectPacket(0, 2, Frame(kHostA, kHostB, 10));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].port, 1u);
  EXPECT_EQ((*out)[0].packet, Frame(kHostA, kHostB));  // untagged

  // Access-port frame floods to the trunk tagged.
  out = stack_->InjectPacket(0, 1, Frame(kHostC, kHostA));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].port, 2u);
  EXPECT_EQ((*out)[0].packet, Frame(kHostC, kHostA, 10));  // tagged vlan 10

  // A vlan the trunk does not carry is dropped at admission.
  out = stack_->InjectPacket(0, 2, Frame(kHostA, kHostB, 30));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST_F(SnvsTest, VlanIsolation) {
  ASSERT_TRUE(stack_->AddPort("p1", 1, "access", 10).ok());
  ASSERT_TRUE(stack_->AddPort("p2", 2, "access", 20).ok());
  auto out = stack_->InjectPacket(0, 1, Frame(kHostB, kHostA));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());  // no other member of vlan 10
}

TEST_F(SnvsTest, AclDropsBlockedSource) {
  ASSERT_TRUE(stack_->AddPort("p1", 1, "access", 10).ok());
  ASSERT_TRUE(stack_->AddPort("p2", 2, "access", 10).ok());
  ASSERT_TRUE(
      stack_->AddAclRule(static_cast<int64_t>(kHostA.bits()), 10, false)
          .ok());
  auto out = stack_->InjectPacket(0, 1, Frame(kHostB, kHostA));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
  // Other sources still pass.
  out = stack_->InjectPacket(0, 2, Frame(kHostA, kHostB));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 1u);
}

TEST_F(SnvsTest, MirrorCopiesIngressTraffic) {
  ASSERT_TRUE(stack_->AddPort("p1", 1, "access", 10).ok());
  ASSERT_TRUE(stack_->AddPort("p2", 2, "access", 10).ok());
  ASSERT_TRUE(stack_->AddMirror("m1", 1, 9).ok());
  Packet frame = Frame(kHostB, kHostA);
  auto out = stack_->InjectPacket(0, 1, frame);
  ASSERT_TRUE(out.ok());
  // Flood copy to p2 plus a SPAN copy (original frame) to port 9.
  ASSERT_EQ(out->size(), 2u);
  bool saw_mirror = false;
  for (const p4::PacketOut& packet : *out) {
    if (packet.port == 9) {
      saw_mirror = true;
      EXPECT_EQ(packet.packet, frame);
    }
  }
  EXPECT_TRUE(saw_mirror);
}

TEST_F(SnvsTest, ReconfiguringPortVlanMovesIt) {
  ASSERT_TRUE(stack_->AddPort("p1", 1, "access", 10).ok());
  ASSERT_TRUE(stack_->AddPort("p2", 2, "access", 10).ok());
  // Move p2 to vlan 20 via an OVSDB update.
  ovsdb::TxnBuilder txn(&stack_->db());
  txn.Update("Port", {{"name", "==", ovsdb::Datum::String("p2")}},
             {{"tag", ovsdb::Datum::Integer(20)}});
  ASSERT_TRUE(txn.Commit().ok());
  ASSERT_TRUE(stack_->controller().last_error().ok());
  auto out = stack_->InjectPacket(0, 1, Frame(kHostB, kHostA));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());  // vlan 10 now has a single member
}

TEST_F(SnvsTest, MultiDeviceBroadcastsEntries) {
  SnvsOptions options;
  options.devices = 2;
  auto stack = BuildSnvsStack(options);
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();
  ASSERT_TRUE((*stack)->AddPort("p1", 1, "access", 10).ok());
  EXPECT_EQ((*stack)->device(0).GetTable("InVlanUntagged")->size(), 1u);
  EXPECT_EQ((*stack)->device(1).GetTable("InVlanUntagged")->size(), 1u);
}

TEST_F(SnvsTest, GeneratedDeclsTextMentionsAllRelations) {
  const std::string& text = stack_->program_text();
  for (const char* name :
       {"Port", "Mirror", "AclRule", "MacLearn", "InVlanUntagged",
        "InVlanTagged", "Acl", "SMac", "Dmac", "FloodVlan", "PortMirror",
        "OutVlan"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

TEST_F(SnvsTest, CrossPlaneTypeCheckCatchesDrift) {
  // A program that declares a generated relation with the wrong shape must
  // be rejected by the controller's Start().
  std::string bad = stack_->bindings().DeclsText() + SnvsRules();
  // Sabotage: flip a column type in the hand-written copy of the decls.
  size_t pos = bad.find("vlan_mode: string");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 17, "vlan_mode: bigint");
  auto program = dlog::Program::Parse(bad);
  if (program.ok()) {
    Status check = TypeCheck(**program, stack_->bindings());
    EXPECT_FALSE(check.ok());
  }  // else: the sabotage already broke rule typing — also a catch.
}

// p4c-of differential test: the lowered OpenFlow pipeline forwards the same
// packets as the P4 interpreter (digest-free configurations).
TEST_F(SnvsTest, P4cOfMatchesInterpreter) {
  ASSERT_TRUE(stack_->AddPort("p1", 1, "access", 10).ok());
  ASSERT_TRUE(stack_->AddPort("p2", 2, "trunk", 0, {10, 20}).ok());
  ASSERT_TRUE(stack_->AddPort("p3", 3, "access", 20).ok());
  // Pre-learn some MACs so Dmac has entries.
  ASSERT_TRUE(stack_->InjectPacket(0, 1, Frame(kHostB, kHostA)).ok());
  ASSERT_TRUE(stack_->InjectPacket(0, 3, Frame(kHostA, kHostC)).ok());

  std::vector<std::string> warnings;
  ofp::OfLayout layout;
  auto flows = ofp::CompileP4ToOf(stack_->device(), &layout, &warnings);
  ASSERT_TRUE(flows.ok()) << flows.status().ToString();

  const p4::P4Program& program = stack_->device().program();
  struct Case {
    uint64_t port;
    Packet packet;
  };
  std::vector<Case> cases = {
      {1, Frame(kHostB, kHostA)},        // known unicast within vlan 10
      {1, Frame(kHostC, kHostA)},        // unknown -> flood
      {2, Frame(kHostA, kHostB, 10)},    // trunk tagged, known dst
      {2, Frame(kHostA, kHostB, 20)},    // other vlan
      {2, Frame(kHostA, kHostB, 30)},    // not admitted
      {3, Frame(kHostB, kHostC)},        // vlan 20 source
  };
  for (const Case& c : cases) {
    auto p4_out = stack_->device().ProcessPacket(p4::PacketIn{c.port, c.packet});
    ASSERT_TRUE(p4_out.ok());
    auto fields = ofp::PacketToFields(program, c.packet);
    ASSERT_TRUE(fields.ok());
    auto of_out = flows->Process(*fields, c.port);

    std::multiset<uint64_t> p4_ports, of_ports;
    for (const auto& packet : *p4_out) p4_ports.insert(packet.port);
    for (const auto& packet : of_out) of_ports.insert(packet.port);
    EXPECT_EQ(p4_ports, of_ports)
        << "divergence for ingress port " << c.port;
  }
}

}  // namespace
}  // namespace nerpa::snvs
