file(REMOVE_RECURSE
  "CMakeFiles/test_p4_text.dir/test_p4_text.cc.o"
  "CMakeFiles/test_p4_text.dir/test_p4_text.cc.o.d"
  "test_p4_text"
  "test_p4_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_p4_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
