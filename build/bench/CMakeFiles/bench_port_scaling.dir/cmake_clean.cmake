file(REMOVE_RECURSE
  "CMakeFiles/bench_port_scaling.dir/bench_port_scaling.cc.o"
  "CMakeFiles/bench_port_scaling.dir/bench_port_scaling.cc.o.d"
  "bench_port_scaling"
  "bench_port_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_port_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
