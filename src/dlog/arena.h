// Pooled arena allocation for hashtable nodes on the evaluator hot path.
//
// Every delta pass builds and tears down ZSets (row -> weight maps); with
// the default allocator each node is one malloc/free round trip, which
// dominates small-transaction latency.  This allocator serves fixed-size
// node allocations from per-thread slab pools:
//
//   * Allocation: pop the thread-local free list for the size class, or
//     bump-carve from the thread's current 64 KiB slab.
//   * Deallocation: push onto the *current* thread's free list — no
//     atomics, no locks, no cross-thread contention on the hot path.
//   * Slabs are owned by a global registry and released only at process
//     exit: a node allocated by a bootstrap worker may be freed by the
//     main thread long after the worker exited, so slab lifetime cannot
//     be tied to any one thread.  A dying thread abandons whatever is on
//     its free lists; the memory stays valid in the registry and the
//     waste is bounded by (threads x partial slabs).
//
// Only single-object allocations are pooled; array allocations (the
// hashtable's bucket vectors) pass through to operator new — they are
// amortized by the container already.
#ifndef NERPA_DLOG_ARENA_H_
#define NERPA_DLOG_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <new>

namespace nerpa::dlog::arena {

/// Pops a pooled block of at least `bytes` (<= kMaxPooledBytes) for the
/// current thread, carving a fresh slab when the free list is empty.
void* Allocate(std::size_t bytes);

/// Returns a pooled block to the current thread's free list.
void Deallocate(void* ptr, std::size_t bytes) noexcept;

/// Largest request served from the pools; bigger goes to operator new.
inline constexpr std::size_t kMaxPooledBytes = 256;

/// Cold introspection (global registry mutex): total slab bytes ever
/// carved.  Nonzero proves the pool is actually on the allocation path.
std::uint64_t TotalSlabBytes();

/// A C++17 allocator serving single objects from the thread-local pools.
/// Stateless: all instances compare equal, so containers move/swap freely.
template <typename T>
class NodePoolAllocator {
 public:
  using value_type = T;

  NodePoolAllocator() noexcept = default;
  template <typename U>
  NodePoolAllocator(const NodePoolAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 1 && sizeof(T) <= kMaxPooledBytes) {
      return static_cast<T*>(Allocate(sizeof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* ptr, std::size_t n) noexcept {
    if (n == 1 && sizeof(T) <= kMaxPooledBytes) {
      Deallocate(ptr, sizeof(T));
      return;
    }
    ::operator delete(ptr);
  }

  template <typename U>
  bool operator==(const NodePoolAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const NodePoolAllocator<U>&) const noexcept {
    return false;
  }
};

}  // namespace nerpa::dlog::arena

#endif  // NERPA_DLOG_ARENA_H_
