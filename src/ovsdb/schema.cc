#include "ovsdb/schema.h"

#include "common/strings.h"

namespace nerpa::ovsdb {

BaseType BaseType::Integer(std::optional<int64_t> min,
                           std::optional<int64_t> max) {
  BaseType t;
  t.type = AtomicType::kInteger;
  t.min_integer = min;
  t.max_integer = max;
  return t;
}

BaseType BaseType::Real() {
  BaseType t;
  t.type = AtomicType::kReal;
  return t;
}

BaseType BaseType::Boolean() {
  BaseType t;
  t.type = AtomicType::kBoolean;
  return t;
}

BaseType BaseType::String() {
  BaseType t;
  t.type = AtomicType::kString;
  return t;
}

BaseType BaseType::StringEnum(std::vector<std::string> values) {
  BaseType t;
  t.type = AtomicType::kString;
  for (std::string& v : values) t.enum_values.emplace_back(std::move(v));
  return t;
}

BaseType BaseType::Ref(std::string table, bool weak) {
  BaseType t;
  t.type = AtomicType::kUuid;
  t.ref_table = std::move(table);
  t.ref_weak = weak;
  return t;
}

Status BaseType::CheckAtom(const Atom& atom) const {
  if (atom.type() != type) {
    return TypeError(StrFormat("atom %s has type %s, expected %s",
                               atom.ToString().c_str(),
                               AtomicTypeName(atom.type()),
                               AtomicTypeName(type)));
  }
  if (type == AtomicType::kInteger) {
    if (min_integer && atom.integer() < *min_integer) {
      return ConstraintError(StrFormat("integer %lld below minimum %lld",
                                       static_cast<long long>(atom.integer()),
                                       static_cast<long long>(*min_integer)));
    }
    if (max_integer && atom.integer() > *max_integer) {
      return ConstraintError(StrFormat("integer %lld above maximum %lld",
                                       static_cast<long long>(atom.integer()),
                                       static_cast<long long>(*max_integer)));
    }
  }
  if (type == AtomicType::kReal) {
    if (min_real && atom.real() < *min_real) {
      return ConstraintError(StrFormat("real %g below minimum %g", atom.real(),
                                       *min_real));
    }
    if (max_real && atom.real() > *max_real) {
      return ConstraintError(StrFormat("real %g above maximum %g", atom.real(),
                                       *max_real));
    }
  }
  if (!enum_values.empty()) {
    for (const Atom& allowed : enum_values) {
      if (allowed == atom) return Status::Ok();
    }
    return ConstraintError("value " + atom.ToString() +
                           " not in enum constraint");
  }
  return Status::Ok();
}

Json BaseType::ToJson() const {
  // Short form for unconstrained types, object form otherwise — like OVSDB.
  bool constrained = min_integer || max_integer || min_real || max_real ||
                     !enum_values.empty() || !ref_table.empty();
  if (!constrained) return Json(AtomicTypeName(type));
  Json::Object obj;
  obj["type"] = Json(AtomicTypeName(type));
  if (min_integer) obj["minInteger"] = Json(*min_integer);
  if (max_integer) obj["maxInteger"] = Json(*max_integer);
  if (min_real) obj["minReal"] = Json(*min_real);
  if (max_real) obj["maxReal"] = Json(*max_real);
  if (!enum_values.empty()) {
    Json::Array values;
    for (const Atom& atom : enum_values) values.push_back(atom.ToJson());
    obj["enum"] =
        Json(Json::Array{Json("set"), Json(std::move(values))});
  }
  if (!ref_table.empty()) {
    obj["refTable"] = Json(ref_table);
    obj["refType"] = Json(ref_weak ? "weak" : "strong");
  }
  return Json(std::move(obj));
}

Result<BaseType> BaseType::FromJson(const Json& json) {
  BaseType out;
  if (json.is_string()) {
    NERPA_ASSIGN_OR_RETURN(out.type, AtomicTypeFromName(json.as_string()));
    return out;
  }
  if (!json.is_object()) {
    return ParseError("base type must be string or object");
  }
  const Json* type = json.Find("type");
  if (type == nullptr || !type->is_string()) {
    return ParseError("base type object missing 'type'");
  }
  NERPA_ASSIGN_OR_RETURN(out.type, AtomicTypeFromName(type->as_string()));
  if (const Json* v = json.Find("minInteger"); v && v->is_integer()) {
    out.min_integer = v->as_integer();
  }
  if (const Json* v = json.Find("maxInteger"); v && v->is_integer()) {
    out.max_integer = v->as_integer();
  }
  if (const Json* v = json.Find("minReal"); v && v->is_number()) {
    out.min_real = v->as_double();
  }
  if (const Json* v = json.Find("maxReal"); v && v->is_number()) {
    out.max_real = v->as_double();
  }
  if (const Json* v = json.Find("enum"); v != nullptr) {
    // ["set", [...]] or a single scalar.
    Json::Array values;
    if (v->is_array() && v->as_array().size() == 2 &&
        v->as_array()[0].is_string() &&
        v->as_array()[0].as_string() == "set") {
      values = v->as_array()[1].as_array();
    } else {
      values.push_back(*v);
    }
    for (const Json& value : values) {
      NERPA_ASSIGN_OR_RETURN(Atom atom, Atom::FromJson(value, out.type));
      out.enum_values.push_back(std::move(atom));
    }
  }
  if (const Json* v = json.Find("refTable"); v && v->is_string()) {
    out.ref_table = v->as_string();
    if (const Json* rt = json.Find("refType"); rt && rt->is_string()) {
      out.ref_weak = rt->as_string() == "weak";
    }
  }
  return out;
}

ColumnType ColumnType::Scalar(BaseType base) {
  ColumnType t;
  t.key = std::move(base);
  return t;
}

ColumnType ColumnType::Optional(BaseType base) {
  ColumnType t;
  t.key = std::move(base);
  t.min = 0;
  return t;
}

ColumnType ColumnType::Set(BaseType base, unsigned min, unsigned max) {
  ColumnType t;
  t.key = std::move(base);
  t.min = min;
  t.max = max;
  return t;
}

ColumnType ColumnType::Map(BaseType key, BaseType value, unsigned min,
                           unsigned max) {
  ColumnType t;
  t.key = std::move(key);
  t.value = std::move(value);
  t.min = min;
  t.max = max;
  return t;
}

Json ColumnType::ToJson() const {
  if (is_scalar() && !is_map()) return key.ToJson();
  Json::Object obj;
  obj["key"] = key.ToJson();
  if (value) obj["value"] = value->ToJson();
  if (min != 1) obj["min"] = Json(static_cast<int64_t>(min));
  if (max != 1) {
    obj["max"] = max == kUnlimited ? Json("unlimited")
                                   : Json(static_cast<int64_t>(max));
  }
  return Json(std::move(obj));
}

Result<ColumnType> ColumnType::FromJson(const Json& json) {
  ColumnType out;
  if (json.is_string()) {
    NERPA_ASSIGN_OR_RETURN(out.key, BaseType::FromJson(json));
    return out;
  }
  if (!json.is_object()) return ParseError("column type must be string/object");
  // An object may either be a bare constrained base type (has "type") or a
  // full column type (has "key").
  if (json.Find("key") == nullptr) {
    NERPA_ASSIGN_OR_RETURN(out.key, BaseType::FromJson(json));
    return out;
  }
  NERPA_ASSIGN_OR_RETURN(out.key, BaseType::FromJson(*json.Find("key")));
  if (const Json* v = json.Find("value"); v != nullptr) {
    NERPA_ASSIGN_OR_RETURN(BaseType value, BaseType::FromJson(*v));
    out.value = std::move(value);
  }
  if (const Json* v = json.Find("min"); v && v->is_integer()) {
    out.min = static_cast<unsigned>(v->as_integer());
  }
  if (const Json* v = json.Find("max"); v != nullptr) {
    if (v->is_string() && v->as_string() == "unlimited") {
      out.max = kUnlimited;
    } else if (v->is_integer()) {
      out.max = static_cast<unsigned>(v->as_integer());
    }
  }
  if (out.min > out.max) return ParseError("column min exceeds max");
  return out;
}

const ColumnSchema* TableSchema::FindColumn(std::string_view name) const {
  for (const ColumnSchema& column : columns) {
    if (column.name == name) return &column;
  }
  return nullptr;
}

const TableSchema* DatabaseSchema::FindTable(std::string_view name) const {
  auto it = tables.find(std::string(name));
  return it == tables.end() ? nullptr : &it->second;
}

Status DatabaseSchema::Validate() const {
  for (const auto& [table_name, table] : tables) {
    for (const ColumnSchema& column : table.columns) {
      if (!IsIdentifier(column.name)) {
        return ConstraintError("bad column name '" + column.name + "' in " +
                               table_name);
      }
      for (const BaseType* base :
           {&column.type.key,
            column.type.value ? &*column.type.value : nullptr}) {
        if (base == nullptr) continue;
        if (!base->ref_table.empty() && FindTable(base->ref_table) == nullptr) {
          return ConstraintError(StrFormat(
              "column %s.%s references unknown table '%s'",
              table_name.c_str(), column.name.c_str(),
              base->ref_table.c_str()));
        }
      }
    }
    for (const auto& index : table.indexes) {
      for (const std::string& column : index) {
        if (table.FindColumn(column) == nullptr) {
          return ConstraintError(StrFormat(
              "index on %s names unknown column '%s'", table_name.c_str(),
              column.c_str()));
        }
      }
    }
  }
  return Status::Ok();
}

Json DatabaseSchema::ToJson() const {
  Json::Object root;
  root["name"] = Json(name);
  root["version"] = Json(version);
  Json::Object tables_json;
  for (const auto& [table_name, table] : tables) {
    Json::Object table_json;
    Json::Object columns_json;
    for (const ColumnSchema& column : table.columns) {
      Json::Object column_json;
      column_json["type"] = column.type.ToJson();
      if (column.ephemeral) column_json["ephemeral"] = Json(true);
      if (!column.mutable_) column_json["mutable"] = Json(false);
      columns_json[column.name] = Json(std::move(column_json));
    }
    table_json["columns"] = Json(std::move(columns_json));
    if (!table.indexes.empty()) {
      Json::Array indexes_json;
      for (const auto& index : table.indexes) {
        Json::Array cols;
        for (const std::string& c : index) cols.push_back(Json(c));
        indexes_json.push_back(Json(std::move(cols)));
      }
      table_json["indexes"] = Json(std::move(indexes_json));
    }
    if (!table.is_root) table_json["isRoot"] = Json(false);
    if (table.max_rows != kUnlimited) {
      table_json["maxRows"] = Json(static_cast<int64_t>(table.max_rows));
    }
    tables_json[table_name] = Json(std::move(table_json));
  }
  root["tables"] = Json(std::move(tables_json));
  return Json(std::move(root));
}

Result<DatabaseSchema> DatabaseSchema::FromJson(const Json& json) {
  if (!json.is_object()) return ParseError("schema must be an object");
  DatabaseSchema out;
  if (const Json* v = json.Find("name"); v && v->is_string()) {
    out.name = v->as_string();
  } else {
    return ParseError("schema missing 'name'");
  }
  if (const Json* v = json.Find("version"); v && v->is_string()) {
    out.version = v->as_string();
  }
  const Json* tables = json.Find("tables");
  if (tables == nullptr || !tables->is_object()) {
    return ParseError("schema missing 'tables' object");
  }
  for (const auto& [table_name, table_json] : tables->as_object()) {
    TableSchema table;
    table.name = table_name;
    const Json* columns = table_json.Find("columns");
    if (columns == nullptr || !columns->is_object()) {
      return ParseError("table '" + table_name + "' missing 'columns'");
    }
    for (const auto& [column_name, column_json] : columns->as_object()) {
      ColumnSchema column;
      column.name = column_name;
      const Json* type = column_json.Find("type");
      if (type == nullptr) {
        return ParseError("column '" + column_name + "' missing 'type'");
      }
      NERPA_ASSIGN_OR_RETURN(column.type, ColumnType::FromJson(*type));
      if (const Json* v = column_json.Find("ephemeral"); v && v->is_bool()) {
        column.ephemeral = v->as_bool();
      }
      if (const Json* v = column_json.Find("mutable"); v && v->is_bool()) {
        column.mutable_ = v->as_bool();
      }
      table.columns.push_back(std::move(column));
    }
    if (const Json* v = table_json.Find("indexes"); v && v->is_array()) {
      for (const Json& index_json : v->as_array()) {
        std::vector<std::string> index;
        for (const Json& c : index_json.as_array()) {
          index.push_back(c.as_string());
        }
        table.indexes.push_back(std::move(index));
      }
    }
    if (const Json* v = table_json.Find("isRoot"); v && v->is_bool()) {
      table.is_root = v->as_bool();
    }
    if (const Json* v = table_json.Find("maxRows"); v && v->is_integer()) {
      table.max_rows = static_cast<unsigned>(v->as_integer());
    }
    out.tables.emplace(table_name, std::move(table));
  }
  NERPA_RETURN_IF_ERROR(out.Validate());
  return out;
}

Result<DatabaseSchema> DatabaseSchema::FromJsonText(std::string_view text) {
  NERPA_ASSIGN_OR_RETURN(Json json, Json::Parse(text));
  return FromJson(json);
}

}  // namespace nerpa::ovsdb
