#include "p4/entry.h"

#include <algorithm>

#include "common/strings.h"

namespace nerpa::p4 {

namespace {
uint64_t WidthMask(int width) {
  return width >= 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
}
}  // namespace

MatchField MatchField::Exact(uint64_t value) {
  MatchField f;
  f.value = value;
  return f;
}

MatchField MatchField::Lpm(uint64_t value, int prefix_len) {
  MatchField f;
  f.value = value;
  f.prefix_len = prefix_len;
  return f;
}

MatchField MatchField::Ternary(uint64_t value, uint64_t mask) {
  MatchField f;
  f.value = value & mask;
  f.mask = mask;
  return f;
}

MatchField MatchField::Range(uint64_t low, uint64_t high) {
  MatchField f;
  f.value = low;
  f.high = high;
  return f;
}

MatchField MatchField::Optional(std::optional<uint64_t> value) {
  MatchField f;
  if (value) {
    f.value = *value;
  } else {
    f.wildcard = true;
  }
  return f;
}

bool MatchField::Matches(MatchKind kind, int width, uint64_t field) const {
  switch (kind) {
    case MatchKind::kExact:
      return field == value;
    case MatchKind::kLpm: {
      if (prefix_len <= 0) return true;
      uint64_t mask_bits =
          prefix_len >= width ? WidthMask(width)
                              : WidthMask(width) ^ WidthMask(width - prefix_len);
      return (field & mask_bits) == (value & mask_bits);
    }
    case MatchKind::kTernary:
      return (field & mask) == value;
    case MatchKind::kRange:
      return field >= value && field <= high;
    case MatchKind::kOptional:
      return wildcard || field == value;
  }
  return false;
}

std::string TableEntry::KeyString(const Table& schema) const {
  std::string out;
  for (size_t i = 0; i < match.size(); ++i) {
    const MatchField& f = match[i];
    switch (schema.keys[i].kind) {
      case MatchKind::kExact:
        out += StrFormat("e%llx;", static_cast<unsigned long long>(f.value));
        break;
      case MatchKind::kLpm:
        out += StrFormat("l%llx/%d;", static_cast<unsigned long long>(f.value),
                         f.prefix_len);
        break;
      case MatchKind::kTernary:
        out += StrFormat("t%llx&%llx;", static_cast<unsigned long long>(f.value),
                         static_cast<unsigned long long>(f.mask));
        break;
      case MatchKind::kRange:
        out += StrFormat("r%llx-%llx;", static_cast<unsigned long long>(f.value),
                         static_cast<unsigned long long>(f.high));
        break;
      case MatchKind::kOptional:
        out += f.wildcard
                   ? "o*;"
                   : StrFormat("o%llx;",
                               static_cast<unsigned long long>(f.value));
        break;
    }
  }
  out += StrFormat("p%d", priority);
  return out;
}

std::string TableEntry::ToString() const {
  std::string out = table + "[";
  for (size_t i = 0; i < match.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%llx", static_cast<unsigned long long>(match[i].value));
  }
  out += "] -> " + action + "(";
  for (size_t i = 0; i < action_args.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%llx",
                     static_cast<unsigned long long>(action_args[i]));
  }
  return out + ")";
}

bool TableState::pure_exact() const {
  for (const TableKey& key : schema_->keys) {
    if (key.kind != MatchKind::kExact) return false;
  }
  return true;
}

Status TableState::Insert(TableEntry entry) {
  if (entries_.size() >= schema_->size) {
    return ConstraintError("table '" + schema_->name + "' is full");
  }
  std::string key = entry.KeyString(*schema_);
  if (entries_.count(key) != 0) {
    return AlreadyExists("entry already exists in table '" + schema_->name +
                         "': " + entry.ToString());
  }
  if (pure_exact()) {
    std::vector<uint64_t> exact_key;
    for (const MatchField& f : entry.match) exact_key.push_back(f.value);
    exact_index_[std::move(exact_key)] = key;
  }
  entries_.emplace(std::move(key), std::move(entry));
  return Status::Ok();
}

Status TableState::Modify(const TableEntry& entry) {
  auto it = entries_.find(entry.KeyString(*schema_));
  if (it == entries_.end()) {
    return NotFound("no such entry in table '" + schema_->name + "': " +
                    entry.ToString());
  }
  it->second.action = entry.action;
  it->second.action_args = entry.action_args;
  return Status::Ok();
}

Status TableState::Remove(const TableEntry& entry) {
  std::string key = entry.KeyString(*schema_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return NotFound("no such entry in table '" + schema_->name + "': " +
                    entry.ToString());
  }
  if (pure_exact()) {
    std::vector<uint64_t> exact_key;
    for (const MatchField& f : it->second.match) {
      exact_key.push_back(f.value);
    }
    exact_index_.erase(exact_key);
  }
  entries_.erase(it);
  return Status::Ok();
}

const TableEntry* TableState::Lookup(
    const std::vector<uint64_t>& key_fields) const {
  if (pure_exact()) {
    auto it = exact_index_.find(key_fields);
    if (it == exact_index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    const TableEntry& entry = entries_.at(it->second);
    ++entry.hit_count;
    return &entry;
  }
  // General path: scan, keeping the best (longest LPM prefix sum, then
  // highest priority) match.
  const TableEntry* best = nullptr;
  int best_prefix = -1;
  int32_t best_priority = 0;
  for (const auto& [key, entry] : entries_) {
    bool all = true;
    int prefix_sum = 0;
    for (size_t i = 0; i < schema_->keys.size(); ++i) {
      const TableKey& tk = schema_->keys[i];
      if (!entry.match[i].Matches(tk.kind, tk.width, key_fields[i])) {
        all = false;
        break;
      }
      if (tk.kind == MatchKind::kLpm) prefix_sum += entry.match[i].prefix_len;
    }
    if (!all) continue;
    if (best == nullptr || prefix_sum > best_prefix ||
        (prefix_sum == best_prefix && entry.priority > best_priority)) {
      best = &entry;
      best_prefix = prefix_sum;
      best_priority = entry.priority;
    }
  }
  if (best != nullptr) {
    ++hits_;
    ++best->hit_count;
  } else {
    ++misses_;
  }
  return best;
}

std::vector<const TableEntry*> TableState::Entries() const {
  std::vector<const TableEntry*> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(&entry);
  return out;
}

}  // namespace nerpa::p4
