// Raw packet representation plus big-endian cursor codecs.
//
// The P4 interpreter (src/p4) parses and deparses real byte buffers through
// these readers/writers, the same way BMv2 operates on wire-format packets.
#ifndef NERPA_NET_PACKET_H_
#define NERPA_NET_PACKET_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ip.h"
#include "net/mac.h"

namespace nerpa::net {

/// EtherType values used by the bundled pipelines.
enum class EtherType : uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
  kVlan = 0x8100,
  kIpv6 = 0x86DD,
};

/// A packet as a byte vector; metadata (ingress port etc.) travels beside it
/// in the interpreter, never inside the buffer.
using Packet = std::vector<uint8_t>;

/// Big-endian reader over a packet.  All Read* return nullopt past the end.
class PacketReader {
 public:
  explicit PacketReader(const Packet& packet) : data_(packet) {}

  size_t offset() const { return offset_; }
  size_t remaining() const { return data_.size() - offset_; }

  std::optional<uint8_t> ReadU8();
  std::optional<uint16_t> ReadU16();
  std::optional<uint32_t> ReadU32();
  /// Reads `bits` (1..64) most-significant-first from the current byte
  /// boundary; used for sub-byte P4 fields (e.g. VLAN PCP/VID).
  std::optional<uint64_t> ReadBits(int bits);
  std::optional<Mac> ReadMac();
  std::optional<Ipv4> ReadIpv4();
  bool Skip(size_t bytes);

 private:
  const Packet& data_;
  size_t offset_ = 0;
  int bit_offset_ = 0;  // 0..7 within data_[offset_]
};

/// Big-endian writer building a packet.
class PacketWriter {
 public:
  void WriteU8(uint8_t v);
  void WriteU16(uint16_t v);
  void WriteU32(uint32_t v);
  /// Writes the low `bits` of `v` most-significant-first.
  void WriteBits(uint64_t v, int bits);
  void WriteMac(Mac mac);
  void WriteIpv4(Ipv4 ip);
  void WriteBytes(const uint8_t* data, size_t size);

  /// Pads any partial byte with zeros and returns the buffer.
  Packet Finish();

 private:
  Packet data_;
  uint8_t pending_ = 0;
  int pending_bits_ = 0;
};

/// Builds a minimal Ethernet frame (optionally 802.1Q tagged) with an
/// arbitrary payload; convenient for tests and examples.
Packet MakeEthernetFrame(Mac dst, Mac src, uint16_t ether_type,
                         const std::vector<uint8_t>& payload,
                         std::optional<uint16_t> vlan = std::nullopt);

/// Hex dump ("0011 2233 ..."), for diagnostics.
std::string HexDump(const Packet& packet);

}  // namespace nerpa::net

#endif  // NERPA_NET_PACKET_H_
