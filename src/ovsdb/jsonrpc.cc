#include "ovsdb/jsonrpc.h"

namespace nerpa::ovsdb {

Json JsonRpcMessage::ToJson() const {
  Json::Object obj;
  switch (kind) {
    case Kind::kRequest:
      obj["method"] = Json(method);
      obj["params"] = params;
      obj["id"] = id;
      if (deadline_nanos > 0) obj["deadline"] = Json(deadline_nanos);
      break;
    case Kind::kNotification:
      obj["method"] = Json(method);
      obj["params"] = params;
      obj["id"] = Json(nullptr);
      break;
    case Kind::kResponse:
      obj["result"] = result;
      obj["error"] = error;
      obj["id"] = id;
      break;
  }
  return Json(std::move(obj));
}

Result<JsonRpcMessage> JsonRpcMessage::FromJson(const Json& json) {
  if (!json.is_object()) return ParseError("JSON-RPC message not an object");
  JsonRpcMessage message;
  const Json* method = json.Find("method");
  const Json* id = json.Find("id");
  if (method != nullptr && method->is_string()) {
    message.method = method->as_string();
    if (const Json* params = json.Find("params")) message.params = *params;
    if (const Json* deadline = json.Find("deadline")) {
      if (deadline->is_integer()) message.deadline_nanos = deadline->as_integer();
    }
    if (id != nullptr && !id->is_null()) {
      message.kind = Kind::kRequest;
      message.id = *id;
    } else {
      message.kind = Kind::kNotification;
    }
    return message;
  }
  const Json* result = json.Find("result");
  const Json* error = json.Find("error");
  if (result == nullptr && error == nullptr) {
    return ParseError("JSON-RPC message has neither method nor result");
  }
  message.kind = Kind::kResponse;
  if (result != nullptr) message.result = *result;
  if (error != nullptr) message.error = *error;
  if (id != nullptr) message.id = *id;
  return message;
}

JsonRpcMessage JsonRpcMessage::Request(std::string method, Json params,
                                       Json id) {
  JsonRpcMessage message;
  message.kind = Kind::kRequest;
  message.method = std::move(method);
  message.params = std::move(params);
  message.id = std::move(id);
  return message;
}

JsonRpcMessage JsonRpcMessage::Notification(std::string method, Json params) {
  JsonRpcMessage message;
  message.kind = Kind::kNotification;
  message.method = std::move(method);
  message.params = std::move(params);
  return message;
}

JsonRpcMessage JsonRpcMessage::Response(Json result, Json id) {
  JsonRpcMessage message;
  message.kind = Kind::kResponse;
  message.result = std::move(result);
  message.error = Json(nullptr);
  message.id = std::move(id);
  return message;
}

JsonRpcMessage JsonRpcMessage::ErrorResponse(Json error, Json id) {
  JsonRpcMessage message;
  message.kind = Kind::kResponse;
  message.result = Json(nullptr);
  message.error = std::move(error);
  message.id = std::move(id);
  return message;
}

Status JsonStreamSplitter::Feed(
    std::string_view bytes,
    const std::function<Status(std::string_view)>& on_document) {
  for (char c : bytes) {
    if (buffer_.empty() && depth_ == 0 &&
        (c == ' ' || c == '\n' || c == '\t' || c == '\r')) {
      continue;  // inter-message whitespace
    }
    buffer_ += c;
    if (in_string_) {
      if (escaped_) {
        escaped_ = false;
      } else if (c == '\\') {
        escaped_ = true;
      } else if (c == '"') {
        in_string_ = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string_ = true;
        break;
      case '{':
      case '[':
        ++depth_;
        break;
      case '}':
      case ']':
        --depth_;
        if (depth_ < 0) {
          return ParseError("unbalanced JSON in stream");
        }
        break;
      default:
        break;
    }
    if (depth_ == 0 && !buffer_.empty() && !in_string_) {
      // A complete value ends only at a closing brace/bracket for the
      // object/array messages OVSDB exchanges; bare scalars are not valid
      // top-level messages here.
      if (c == '}' || c == ']') {
        std::string document = std::move(buffer_);
        buffer_.clear();
        NERPA_RETURN_IF_ERROR(on_document(document));
      }
    }
  }
  return Status::Ok();
}

}  // namespace nerpa::ovsdb
