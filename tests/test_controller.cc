// Controller-runtime behaviours: startup against a pre-populated database,
// stats accounting, device routing errors, multicast group lifecycle, and
// lifecycle guards.
#include <gtest/gtest.h>

#include "nerpa/controller.h"
#include "ovsdb/database.h"
#include "p4/text.h"
#include "snvs/snvs.h"

namespace nerpa {
namespace {

constexpr const char* kPipeline = R"p4(
header ethernet { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
parser { state start { extract(ethernet); goto accept; } }
action Discard() { drop(); }
action Assign(bit<12> vid) { }
table VlanMap {
  key = { standard.ingress_port: exact; }
  actions = { Assign; }
  default_action = Discard;
}
ingress { apply(VlanMap); }
egress { }
deparser { emit(ethernet); }
)p4";

ovsdb::DatabaseSchema Schema() {
  ovsdb::DatabaseSchema schema;
  schema.name = "ctl";
  ovsdb::TableSchema assignment;
  assignment.name = "Assignment";
  assignment.columns = {
      {"device", ovsdb::ColumnType::Scalar(ovsdb::BaseType::String()), false,
       true},
      {"port", ovsdb::ColumnType::Scalar(ovsdb::BaseType::Integer(0, 65535)),
       false, true},
      {"vlan", ovsdb::ColumnType::Scalar(ovsdb::BaseType::Integer(0, 4095)),
       false, true},
  };
  schema.tables.emplace("Assignment", std::move(assignment));
  return schema;
}

constexpr const char* kRules = R"(
VlanMap(d, p as bit<16>, "Assign", v as bit<12>) :- Assignment(_, d, p, v).
)";

struct Rig {
  std::shared_ptr<const p4::P4Program> pipeline;
  std::unique_ptr<ovsdb::Database> db;
  Bindings bindings;
  std::shared_ptr<const dlog::Program> program;
  std::unique_ptr<p4::Switch> sw0, sw1;
  std::unique_ptr<p4::RuntimeClient> client0, client1;
  std::unique_ptr<Controller> controller;
};

Rig MakeRig() {
  Rig rig;
  rig.pipeline = p4::ParseP4Text(kPipeline).value();
  rig.db = std::make_unique<ovsdb::Database>(Schema());
  BindingOptions options;
  options.with_device_column = true;
  rig.bindings = GenerateBindings(rig.db->schema(), *rig.pipeline, options)
                     .value();
  rig.program =
      dlog::Program::Parse(rig.bindings.DeclsText() + kRules).value();
  rig.sw0 = std::make_unique<p4::Switch>(rig.pipeline);
  rig.sw1 = std::make_unique<p4::Switch>(rig.pipeline);
  rig.client0 = std::make_unique<p4::RuntimeClient>(rig.sw0.get());
  rig.client1 = std::make_unique<p4::RuntimeClient>(rig.sw1.get());
  rig.controller = std::make_unique<Controller>(
      rig.db.get(), rig.program, rig.pipeline, rig.bindings);
  return rig;
}

Status AddAssignment(ovsdb::Database& db, const char* device, int64_t port,
                     int64_t vlan) {
  ovsdb::TxnBuilder txn(&db);
  txn.Insert("Assignment", {{"device", ovsdb::Datum::String(device)},
                            {"port", ovsdb::Datum::Integer(port)},
                            {"vlan", ovsdb::Datum::Integer(vlan)}});
  return txn.Commit().status();
}

TEST(Controller, StartInstallsPreexistingRows) {
  Rig rig = MakeRig();
  // Rows exist BEFORE the controller starts: the monitor's initial
  // snapshot must install them.
  ASSERT_TRUE(AddAssignment(*rig.db, "sw0", 1, 10).ok());
  ASSERT_TRUE(AddAssignment(*rig.db, "sw1", 2, 20).ok());
  ASSERT_TRUE(rig.controller->AddDevice("sw0", rig.client0.get()).ok());
  ASSERT_TRUE(rig.controller->AddDevice("sw1", rig.client1.get()).ok());
  ASSERT_TRUE(rig.controller->Start().ok());
  EXPECT_TRUE(rig.controller->last_error().ok());
  EXPECT_EQ(rig.sw0->GetTable("VlanMap")->size(), 1u);
  EXPECT_EQ(rig.sw1->GetTable("VlanMap")->size(), 1u);
}

TEST(Controller, UnknownDeviceRowSurfacesError) {
  Rig rig = MakeRig();
  ASSERT_TRUE(rig.controller->AddDevice("sw0", rig.client0.get()).ok());
  ASSERT_TRUE(rig.controller->Start().ok());
  ASSERT_TRUE(AddAssignment(*rig.db, "ghost", 1, 10).ok());
  // The OVSDB commit succeeds; the controller records the routing failure.
  EXPECT_FALSE(rig.controller->last_error().ok());
  EXPECT_GE(rig.controller->stats().errors, 1u);
}

TEST(Controller, StatsAccounting) {
  Rig rig = MakeRig();
  ASSERT_TRUE(rig.controller->AddDevice("sw0", rig.client0.get()).ok());
  ASSERT_TRUE(rig.controller->Start().ok());
  ASSERT_TRUE(AddAssignment(*rig.db, "sw0", 1, 10).ok());
  ASSERT_TRUE(AddAssignment(*rig.db, "sw0", 2, 20).ok());
  // Move port 1 to vlan 30: retract + assert (a modify through the stack).
  ovsdb::TxnBuilder txn(rig.db.get());
  txn.Update("Assignment", {{"port", "==", ovsdb::Datum::Integer(1)}},
             {{"vlan", ovsdb::Datum::Integer(30)}});
  ASSERT_TRUE(txn.Commit().ok());
  ASSERT_TRUE(rig.controller->last_error().ok());
  const auto& stats = rig.controller->stats();
  EXPECT_EQ(stats.ovsdb_updates, 3u);
  EXPECT_EQ(stats.dlog_txns, 3u);
  EXPECT_EQ(stats.entries_inserted, 3u);  // 2 adds + 1 re-assert
  EXPECT_EQ(stats.entries_deleted, 1u);   // the retract
  // The new entry carries the new vlan argument.
  bool found = false;
  for (const p4::TableEntry* entry : rig.sw0->GetTable("VlanMap")->Entries()) {
    if (entry->match[0].value == 1) {
      EXPECT_EQ(entry->action_args[0], 30u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Controller, LifecycleGuards) {
  Rig rig = MakeRig();
  ASSERT_TRUE(rig.controller->AddDevice("sw0", rig.client0.get()).ok());
  // Duplicate device name.
  EXPECT_FALSE(rig.controller->AddDevice("sw0", rig.client1.get()).ok());
  ASSERT_TRUE(rig.controller->Start().ok());
  // Registering after Start() is the device-rejoin path: it succeeds and
  // immediately resynchronizes the newcomer.
  EXPECT_TRUE(rig.controller->AddDevice("sw1", rig.client1.get()).ok());
  EXPECT_EQ(rig.controller->stats().resyncs, 1u);
  // Still no duplicate names, and no double start.
  EXPECT_FALSE(rig.controller->AddDevice("sw1", rig.client1.get()).ok());
  EXPECT_FALSE(rig.controller->Start().ok());
  // Resync requires a started controller and a known device.
  EXPECT_FALSE(rig.controller->ResyncDevice("ghost").ok());
  EXPECT_TRUE(rig.controller->ResyncDevice("sw0").ok());
  // Digest sync on a digest-less program is a no-op.
  EXPECT_TRUE(rig.controller->SyncDataPlaneNotifications().ok());
}

TEST(Controller, MulticastGroupLifecycle) {
  // Exercised through the snvs stack: groups appear with the first member,
  // shrink per member, and disappear with the last.
  auto stack = snvs::BuildSnvsStack().value();
  ASSERT_TRUE(stack->AddPort("p1", 1, "access", 10).ok());
  ASSERT_TRUE(stack->AddPort("p2", 2, "access", 10).ok());
  ASSERT_NE(stack->device().GetMulticastGroup(11), nullptr);
  EXPECT_EQ(stack->device().GetMulticastGroup(11)->size(), 2u);
  EXPECT_GE(stack->controller().stats().multicast_updates, 2u);
  ASSERT_TRUE(stack->DeletePort("p1").ok());
  ASSERT_TRUE(stack->DeletePort("p2").ok());
  EXPECT_EQ(stack->device().GetMulticastGroup(11), nullptr);
}

}  // namespace
}  // namespace nerpa
