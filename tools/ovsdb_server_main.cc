// ovsdb_server — serve a schema over TCP, standalone.  The management
// plane as its own process, like the prototype's ovsdb-server.
//
//   $ ./build/tools/ovsdb_server schema.json 6640
//   $ ./build/tools/ovsdb_server --snvs 6640          # built-in snvs schema
//   $ ./build/tools/ovsdb_server --snvs 6640 --http-port 8080
//
// Clients speak the JSON-RPC methods in src/ovsdb/server.h (get_schema,
// transact, monitor, monitor_cancel, fetch, echo, list_dbs).  With
// --http-port the northbound gateway (src/gateway) fronts the same
// database over HTTP/JSON-RPC: GET /v1/table/<T>, POST /v1/transact,
// POST /jsonrpc, GET /v1/changes, with read-through caching and admission
// control.
//
// SIGINT/SIGTERM shut down gracefully: the gateway stops accepting and
// drains in-flight requests, the OVSDB server flushes queued monitor
// deltas, and the process exits 0.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "common/watchdog.h"
#include "gateway/gateway.h"
#include "ovsdb/server.h"
#include "snvs/snvs.h"

#include <unistd.h>

namespace {
volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (schema.json | --snvs) [port]\n"
               "          [--http-port N] [--http-workers N]\n",
               argv0);
}
}  // namespace

int main(int argc, char** argv) {
  std::string schema_arg;
  uint16_t port = 0;
  bool have_port = false;
  int http_port = -1;  // -1 = no gateway
  int http_workers = 4;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--http-port") {
      http_port = std::atoi(value());
      if (http_port < 0 || http_port > 65535) {
        std::fprintf(stderr, "bad --http-port\n");
        return 2;
      }
    } else if (arg == "--http-workers") {
      http_workers = std::atoi(value());
      if (http_workers < 1) {
        std::fprintf(stderr, "bad --http-workers\n");
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (schema_arg.empty()) {
      schema_arg = arg;
    } else if (!have_port) {
      port = static_cast<uint16_t>(std::atoi(arg.c_str()));
      have_port = true;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (schema_arg.empty()) {
    Usage(argv[0]);
    return 2;
  }

  nerpa::ovsdb::DatabaseSchema schema;
  if (schema_arg == "--snvs") {
    schema = nerpa::snvs::SnvsSchema();
  } else {
    std::ifstream in(schema_arg);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", schema_arg.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto parsed = nerpa::ovsdb::DatabaseSchema::FromJsonText(text.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "schema: %s\n", parsed.status().ToString().c_str());
      return 2;
    }
    schema = std::move(parsed).value();
  }

  nerpa::ovsdb::OvsdbServer server(
      std::make_unique<nerpa::ovsdb::Database>(std::move(schema)));
  nerpa::Status started = server.Start(port);
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("ovsdb server: db '%s' listening on 127.0.0.1:%u\n",
              schema_arg.c_str(), server.port());

  nerpa::Watchdog watchdog;  // declared first so it outlives the gateway
  std::unique_ptr<nerpa::gateway::Gateway> gateway;
  if (http_port >= 0) {
    nerpa::gateway::Gateway::Options options;
    options.backend_port = server.port();
    options.http_port = static_cast<uint16_t>(http_port);
    options.workers = http_workers;
    options.watchdog = &watchdog;
    gateway = std::make_unique<nerpa::gateway::Gateway>(options);
    nerpa::Status up = gateway->Start();
    if (!up.ok()) {
      std::fprintf(stderr, "gateway: %s\n", up.ToString().c_str());
      server.Stop();
      return 1;
    }
    std::printf("gateway: http on 127.0.0.1:%u (%d workers)\n",
                gateway->http_port(), http_workers);
  }
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) pause();

  // Orderly drain: the gateway first (stops accepting, finishes in-flight
  // backend work, flushes its sockets), then the OVSDB server (flushes
  // queued monitor deltas before closing) — so nothing a client was
  // promised is truncated.
  if (gateway) {
    gateway->Stop();
    std::printf("gateway: drained (%llu requests served)\n",
                static_cast<unsigned long long>(gateway->requests_served()));
  }
  std::printf("shutting down (%llu requests served)\n",
              static_cast<unsigned long long>(server.requests_served()));
  server.Stop();
  return 0;
}
