// The distributed deployment shape of the paper's Fig. 4: the management
// plane is a real TCP OVSDB server, and the controller consumes its
// monitor stream over the wire — the same architecture as the prototype's
// ovsdb-server + Rust controller split, here in two threads of one process
// connected only by a socket.
//
//   [ ovsdb server (service thread) ] ── TCP/JSON-RPC ──▶
//        [ controller: OvsdbClient → dlog engine → P4Runtime → switch ]
//
//   $ ./build/examples/networked_stack
#include <cstdio>

#include "nerpa/bindings.h"
#include "ovsdb/client.h"
#include "ovsdb/server.h"
#include "p4/runtime.h"
#include "snvs/snvs.h"

using namespace nerpa;

int main() {
  // --- Management plane: a real OVSDB server on a TCP port. ---
  ovsdb::OvsdbServer server(
      std::make_unique<ovsdb::Database>(snvs::SnvsSchema()));
  if (Status started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("ovsdb server on 127.0.0.1:%u\n", server.port());

  // --- Data plane: one snvs switch. ---
  auto pipeline = snvs::SnvsP4Program();
  p4::Switch device(pipeline);
  p4::RuntimeClient runtime(&device);

  // --- Control plane: engine + bindings, fed from the wire. ---
  BindingOptions options;
  options.with_digest_seq = true;
  ovsdb::DatabaseSchema schema = snvs::SnvsSchema();
  auto bindings = GenerateBindings(schema, *pipeline, options);
  if (!bindings.ok()) return 1;
  auto program =
      dlog::Program::Parse(bindings->DeclsText() + snvs::SnvsRules());
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }
  if (Status check = TypeCheck(**program, *bindings); !check.ok()) {
    std::fprintf(stderr, "%s\n", check.ToString().c_str());
    return 1;
  }
  dlog::Engine engine(*program);

  // Applies one wire-format update batch to the engine and pushes the
  // resulting entry deltas into the switch — the controller loop.
  auto apply_updates = [&](const Json& updates) -> Status {
    for (const auto& [table_name, rows] : updates.as_object()) {
      const ovsdb::TableSchema* table = schema.FindTable(table_name);
      const OvsdbBinding* binding = bindings->FindOvsdbTable(table_name);
      if (table == nullptr || binding == nullptr) continue;
      for (const auto& [uuid_text, change] : rows.as_object()) {
        auto uuid = ovsdb::Uuid::Parse(uuid_text);
        if (!uuid) return InvalidArgument("bad uuid on the wire");
        if (const Json* old_row = change.Find("old")) {
          NERPA_ASSIGN_OR_RETURN(ovsdb::Row row,
                                 RowFromJson(*table, *uuid, *old_row));
          NERPA_ASSIGN_OR_RETURN(dlog::Row dlog_row,
                                 OvsdbRowToDlog(*table, row));
          NERPA_RETURN_IF_ERROR(engine.Delete(binding->relation, dlog_row));
        }
        if (const Json* new_row = change.Find("new")) {
          NERPA_ASSIGN_OR_RETURN(ovsdb::Row row,
                                 RowFromJson(*table, *uuid, *new_row));
          NERPA_ASSIGN_OR_RETURN(dlog::Row dlog_row,
                                 OvsdbRowToDlog(*table, row));
          NERPA_RETURN_IF_ERROR(engine.Insert(binding->relation, dlog_row));
        }
      }
    }
    NERPA_ASSIGN_OR_RETURN(dlog::TxnDelta delta, engine.Commit());
    int writes = 0;
    for (const auto& [relation, rows] : delta.outputs) {
      if (relation == "MulticastGroup") {
        // Group membership (group = vlan + 1); rebuild affected groups.
        std::map<uint32_t, std::vector<uint64_t>> groups;
        auto existing = [&](uint32_t group) -> std::vector<uint64_t> {
          const auto* members = device.GetMulticastGroup(group);
          return members != nullptr ? *members : std::vector<uint64_t>{};
        };
        for (const auto& [row, direction] : rows) {
          uint32_t group = static_cast<uint32_t>(row[0].as_bit());
          if (groups.count(group) == 0) groups[group] = existing(group);
          auto& members = groups[group];
          uint64_t port = row[1].as_bit();
          if (direction > 0) {
            members.push_back(port);
          } else {
            members.erase(std::remove(members.begin(), members.end(), port),
                          members.end());
          }
        }
        for (auto& [group, members] : groups) {
          std::sort(members.begin(), members.end());
          device.SetMulticastGroup(group, members);
        }
        continue;
      }
      const TableBinding* table_binding = bindings->FindTable(relation);
      if (table_binding == nullptr) continue;
      for (const auto& [row, direction] : rows) {
        NERPA_ASSIGN_OR_RETURN(auto converted,
                               DlogRowToEntry(*table_binding, *pipeline, row));
        NERPA_RETURN_IF_ERROR(runtime.Write(
            {{direction > 0 ? p4::UpdateType::kInsert
                            : p4::UpdateType::kDelete,
              converted.second}}));
        ++writes;
      }
    }
    std::printf("controller: applied a wire delta -> %d table writes\n",
                writes);
    return Status::Ok();
  };

  // --- Wire the controller to the server over TCP. ---
  ovsdb::OvsdbClient watcher;
  if (!watcher.Connect("127.0.0.1", server.port()).ok()) return 1;
  Status pump_error;
  auto initial = watcher.Monitor(
      Json("controller"), {"Port", "Mirror", "AclRule"},
      [&](const Json&, const Json& updates) {
        Status status = apply_updates(updates);
        if (!status.ok() && pump_error.ok()) pump_error = status;
      });
  if (!initial.ok()) return 1;

  // --- An "administrator" CLI session on its own connection. ---
  ovsdb::OvsdbClient admin;
  if (!admin.Connect("127.0.0.1", server.port()).ok()) return 1;
  std::printf("admin: adding ports p1/p2 on vlan 10 over the wire\n");
  auto txn = admin.Transact(Json::Parse(R"([
    {"op": "insert", "table": "Port",
     "row": {"name": "p1", "port": 1, "vlan_mode": "access", "tag": 10}},
    {"op": "insert", "table": "Port",
     "row": {"name": "p2", "port": 2, "vlan_mode": "access", "tag": 10}}
  ])").value());
  if (!txn.ok()) {
    std::fprintf(stderr, "transact: %s\n", txn.status().ToString().c_str());
    return 1;
  }

  // Pump the monitor stream until the delta lands.
  auto delivered = watcher.WaitForUpdate(2000);
  if (!delivered.ok() || !pump_error.ok()) {
    std::fprintf(stderr, "pump: %s\n", pump_error.ToString().c_str());
    return 1;
  }

  std::printf("switch now has %zu admission entries; sending a packet:\n",
              device.GetTable("InVlanUntagged")->size());
  net::Packet frame = net::MakeEthernetFrame(
      net::Mac(0, 0, 0, 0, 0, 0xBB), net::Mac(0, 0, 0, 0, 0, 0xAA), 0x0800,
      {'h', 'i'});
  auto out = device.ProcessPacket(p4::PacketIn{1, frame});
  if (!out.ok()) return 1;
  std::printf("  packet from port 1 delivered to %zu port(s) (flood on "
              "vlan 10)\n", out->size());

  server.Stop();
  std::printf("done — three planes, one of them across a socket.\n");
  return 0;
}
