file(REMOVE_RECURSE
  "libnerpa_net.a"
)
