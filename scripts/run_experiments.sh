#!/bin/sh
# Regenerates every experiment in DESIGN.md's index and the full test log.
#   scripts/run_experiments.sh [build-dir]
set -e
BUILD="${1:-build}"
cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" 2>&1 | tee test_output.txt
for b in "$BUILD"/bench/bench_*; do [ -f "$b" ] && [ -x "$b" ] && "$b"; done 2>&1 | tee bench_output.txt
