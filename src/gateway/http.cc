#include "gateway/http.h"

#include <cctype>

#include "common/strings.h"

namespace nerpa::gateway {

namespace {

const std::string kEmpty;

bool IsToken(std::string_view text) {
  if (text.empty()) return false;
  for (char c : text) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
          c == '_' || c == '.' || c == '!' || c == '#' || c == '$' ||
          c == '%' || c == '&' || c == '\'' || c == '*' || c == '+' ||
          c == '^' || c == '`' || c == '|' || c == '~')) {
      return false;
    }
  }
  return true;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return out;
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string UrlDecode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < text.size() &&
               HexValue(text[i + 1]) >= 0 && HexValue(text[i + 2]) >= 0) {
      out.push_back(static_cast<char>(HexValue(text[i + 1]) * 16 +
                                      HexValue(text[i + 2])));
      i += 2;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

const std::string& HttpRequest::Header(const std::string& name) const {
  auto it = headers.find(name);
  return it == headers.end() ? kEmpty : it->second;
}

bool HttpRequest::keep_alive() const {
  return ToLower(Header("connection")) != "close";
}

std::string_view StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default:  return "Unknown";
  }
}

std::string HttpResponse::Serialize(bool keep_alive) const {
  std::string out = StrFormat("HTTP/1.1 %d %s\r\n", status,
                              std::string(StatusReason(status)).c_str());
  out += StrFormat("Content-Type: %s\r\n", content_type.c_str());
  out += StrFormat("Content-Length: %zu\r\n", body.size());
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [name, value] : headers) {
    out += StrFormat("%s: %s\r\n", name.c_str(), value.c_str());
  }
  out += "\r\n";
  out += body;
  return out;
}

HttpResponse JsonResponse(int status, const Json& body) {
  HttpResponse response;
  response.status = status;
  response.body = body.Dump();
  response.body += "\n";
  return response;
}

HttpResponse ErrorResponse(int status, std::string_view message) {
  return JsonResponse(
      status, Json(Json::Object{{"error", Json(std::string(message))}}));
}

Status HttpParser::ParseHead(std::string_view head, HttpRequest& out) {
  // Request line: METHOD SP request-target SP HTTP/1.x
  size_t line_end = head.find("\r\n");
  if (line_end == std::string_view::npos) line_end = head.size();
  std::string_view request_line = head.substr(0, line_end);
  size_t sp1 = request_line.find(' ');
  if (sp1 == std::string_view::npos) {
    return ParseError("malformed request line");
  }
  size_t sp2 = request_line.rfind(' ');
  if (sp2 == sp1) return ParseError("malformed request line");
  out.method = std::string(request_line.substr(0, sp1));
  out.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  std::string_view version = request_line.substr(sp2 + 1);
  if (!IsToken(out.method)) return ParseError("bad method");
  if (out.target.empty() || out.target[0] != '/') {
    return ParseError("bad request target");
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return ParseError("unsupported HTTP version");
  }

  // Split target into path + query.
  size_t question = out.target.find('?');
  out.path = UrlDecode(out.target.substr(0, question));
  if (question != std::string::npos) {
    for (std::string_view pair :
         Split(std::string_view(out.target).substr(question + 1), '&')) {
      if (pair.empty()) continue;
      size_t eq = pair.find('=');
      std::string key = UrlDecode(pair.substr(0, eq));
      std::string value =
          eq == std::string_view::npos ? "" : UrlDecode(pair.substr(eq + 1));
      out.query[key] = std::move(value);
    }
  }

  // Header fields.
  size_t cursor = line_end + 2;
  while (cursor < head.size()) {
    size_t end = head.find("\r\n", cursor);
    if (end == std::string_view::npos) end = head.size();
    std::string_view line = head.substr(cursor, end - cursor);
    cursor = end + 2;
    if (line.empty()) continue;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return ParseError("malformed header field");
    }
    std::string name = ToLower(Trim(line.substr(0, colon)));
    if (!IsToken(name)) return ParseError("bad header name");
    out.headers[name] = std::string(Trim(line.substr(colon + 1)));
  }
  return Status::Ok();
}

Status HttpParser::Advance() {
  while (true) {
    if (in_body_) {
      size_t take = std::min(body_remaining_, buffer_.size());
      pending_.body.append(buffer_, 0, take);
      buffer_.erase(0, take);
      body_remaining_ -= take;
      if (body_remaining_ > 0) return Status::Ok();  // need more bytes
      in_body_ = false;
      complete_.push_back(std::move(pending_));
      pending_ = HttpRequest{};
      continue;
    }
    size_t head_end = buffer_.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      if (buffer_.size() > kMaxHeadBytes) {
        return ParseError("request head exceeds limit");
      }
      return Status::Ok();  // incomplete head
    }
    if (head_end > kMaxHeadBytes) {
      return ParseError("request head exceeds limit");
    }
    HttpRequest request;
    NERPA_RETURN_IF_ERROR(
        ParseHead(std::string_view(buffer_).substr(0, head_end), request));
    buffer_.erase(0, head_end + 4);
    if (!request.Header("transfer-encoding").empty()) {
      return ParseError("transfer-encoding not supported");
    }
    const std::string& length_text = request.Header("content-length");
    size_t length = 0;
    if (!length_text.empty()) {
      for (char c : length_text) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          return ParseError("bad content-length");
        }
      }
      // Parsed manually so "18446744073709551617" can't wrap.
      for (char c : length_text) {
        length = length * 10 + static_cast<size_t>(c - '0');
        if (length > kMaxBodyBytes) {
          return ParseError("request body exceeds limit");
        }
      }
    }
    if (length == 0) {
      complete_.push_back(std::move(request));
      continue;
    }
    pending_ = std::move(request);
    in_body_ = true;
    body_remaining_ = length;
  }
}

Status HttpParser::Feed(std::string_view data) {
  if (poisoned_) return FailedPrecondition("parser poisoned by earlier error");
  buffer_.append(data);
  Status status = Advance();
  if (!status.ok()) poisoned_ = true;
  return status;
}

HttpRequest HttpParser::PopRequest() {
  HttpRequest request = std::move(complete_.front());
  complete_.pop_front();
  return request;
}

}  // namespace nerpa::gateway
