// Tests for the OVSDB wire layer: JSON-RPC messages, stream splitting,
// and a live TCP server/client exchange with monitors.
#include <gtest/gtest.h>

#include "ovsdb/client.h"
#include "ovsdb/server.h"
#include "snvs/snvs.h"

namespace nerpa::ovsdb {
namespace {

TEST(JsonRpc, MessageRoundTrip) {
  JsonRpcMessage request = JsonRpcMessage::Request(
      "transact", Json(Json::Array{Json("db")}), Json(int64_t{7}));
  auto back = JsonRpcMessage::FromJson(Json::Parse(request.ToJson().Dump())
                                           .value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->kind, JsonRpcMessage::Kind::kRequest);
  EXPECT_EQ(back->method, "transact");
  EXPECT_EQ(back->id.as_integer(), 7);

  JsonRpcMessage notification = JsonRpcMessage::Notification(
      "update", Json(Json::Array{}));
  back = JsonRpcMessage::FromJson(
      Json::Parse(notification.ToJson().Dump()).value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->kind, JsonRpcMessage::Kind::kNotification);

  JsonRpcMessage response =
      JsonRpcMessage::Response(Json(int64_t{1}), Json(int64_t{7}));
  back = JsonRpcMessage::FromJson(
      Json::Parse(response.ToJson().Dump()).value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->kind, JsonRpcMessage::Kind::kResponse);
  EXPECT_TRUE(back->error.is_null());
}

TEST(JsonStreamSplitter, SplitsConcatenatedAndFragmented) {
  JsonStreamSplitter splitter;
  std::vector<std::string> documents;
  auto collect = [&](std::string_view text) -> Status {
    documents.emplace_back(text);
    return Status::Ok();
  };
  // Two messages in one chunk, then one split across three chunks, with a
  // brace inside a string to trip naive splitters.
  ASSERT_TRUE(splitter.Feed(R"({"a":1}{"b":[1,2]})", collect).ok());
  ASSERT_TRUE(splitter.Feed(R"({"c":"}{", )", collect).ok());
  ASSERT_TRUE(splitter.Feed(R"("d": "\"}")", collect).ok());
  ASSERT_TRUE(splitter.Feed("}", collect).ok());
  ASSERT_EQ(documents.size(), 3u);
  EXPECT_EQ(documents[0], R"({"a":1})");
  EXPECT_EQ(documents[1], R"({"b":[1,2]})");
  auto third = Json::Parse(documents[2]);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->Find("c")->as_string(), "}{");
  EXPECT_EQ(third->Find("d")->as_string(), "\"}");
}

TEST(JsonStreamSplitter, RejectsUnbalanced) {
  JsonStreamSplitter splitter;
  auto ignore = [](std::string_view) { return Status::Ok(); };
  EXPECT_FALSE(splitter.Feed("}}", ignore).ok());
}

class RpcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<OvsdbServer>(
        std::make_unique<Database>(snvs::SnvsSchema()));
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_TRUE(client_.Connect("127.0.0.1", server_->port()).ok());
  }

  void TearDown() override {
    client_.Disconnect();
    server_->Stop();
  }

  std::unique_ptr<OvsdbServer> server_;
  OvsdbClient client_;
};

TEST_F(RpcTest, EchoAndSchema) {
  ASSERT_TRUE(client_.Echo().ok());
  auto schema = client_.GetSchema();
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_EQ(schema->name, "snvs");
  EXPECT_NE(schema->FindTable("Port"), nullptr);
}

TEST_F(RpcTest, TransactOverTheWire) {
  auto result = client_.Transact(Json::Parse(R"([
    {"op": "insert", "table": "Port",
     "row": {"name": "p1", "port": 1, "vlan_mode": "access", "tag": 10}}
  ])").value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->is_array());
  EXPECT_NE(result->as_array()[0].Find("uuid"), nullptr);

  // Errors come back as JSON-RPC errors.
  result = client_.Transact(Json::Parse(R"([
    {"op": "insert", "table": "Port",
     "row": {"name": "p2", "port": 2, "vlan_mode": "bogus", "tag": 1}}
  ])").value());
  EXPECT_FALSE(result.ok());
}

TEST_F(RpcTest, MonitorStreamsUpdates) {
  int updates_seen = 0;
  Json last_update;
  auto initial = client_.Monitor(
      Json("m1"), {"Port"}, [&](const Json& id, const Json& updates) {
        (void)id;
        ++updates_seen;
        last_update = updates;
      });
  ASSERT_TRUE(initial.ok()) << initial.status().ToString();
  EXPECT_TRUE(initial->as_object().empty());  // empty db: empty snapshot

  ASSERT_TRUE(client_.Transact(Json::Parse(R"([
    {"op": "insert", "table": "Port",
     "row": {"name": "p1", "port": 1, "vlan_mode": "access", "tag": 10}}
  ])").value()).ok());
  auto delivered = client_.WaitForUpdate(2000);
  ASSERT_TRUE(delivered.ok()) << delivered.status().ToString();
  ASSERT_GE(*delivered, 1);
  EXPECT_EQ(updates_seen, 1);
  const Json* port_updates = last_update.Find("Port");
  ASSERT_NE(port_updates, nullptr);
  ASSERT_EQ(port_updates->as_object().size(), 1u);
  const Json& row = port_updates->as_object().begin()->second;
  EXPECT_EQ(row.Find("new")->Find("name")->as_string(), "p1");
  EXPECT_EQ(row.Find("old"), nullptr);  // insert: no old

  // A second client gets the current contents in its initial snapshot.
  OvsdbClient late;
  ASSERT_TRUE(late.Connect("127.0.0.1", server_->port()).ok());
  auto late_initial =
      late.Monitor(Json("m2"), {"Port"}, [](const Json&, const Json&) {});
  ASSERT_TRUE(late_initial.ok());
  ASSERT_NE(late_initial->Find("Port"), nullptr);
  EXPECT_EQ(late_initial->Find("Port")->as_object().size(), 1u);

  // Cancel stops the stream.
  ASSERT_TRUE(client_.MonitorCancel(Json("m1")).ok());
  ASSERT_TRUE(client_.Transact(Json::Parse(R"([
    {"op": "delete", "table": "Port", "where": []}
  ])").value()).ok());
  delivered = client_.WaitForUpdate(300);
  ASSERT_TRUE(delivered.ok());
  EXPECT_EQ(*delivered, 0);
}

TEST_F(RpcTest, TwoClientsSeeEachOthersCommits) {
  OvsdbClient other;
  ASSERT_TRUE(other.Connect("127.0.0.1", server_->port()).ok());
  int updates = 0;
  ASSERT_TRUE(other
                  .Monitor(Json("watch"), {},
                           [&](const Json&, const Json&) { ++updates; })
                  .ok());
  ASSERT_TRUE(client_.Transact(Json::Parse(R"([
    {"op": "insert", "table": "Mirror",
     "row": {"name": "m", "src_port": 1, "out_port": 9}}
  ])").value()).ok());
  auto delivered = other.WaitForUpdate(2000);
  ASSERT_TRUE(delivered.ok());
  EXPECT_EQ(*delivered, 1);
  EXPECT_EQ(updates, 1);
}

}  // namespace
}  // namespace nerpa::ovsdb
