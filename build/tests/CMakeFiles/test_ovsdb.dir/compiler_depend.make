# Empty compiler generated dependencies file for test_ovsdb.
# This may be replaced when dependencies are built.
