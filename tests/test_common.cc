// Unit tests for the common substrate: Status/Result, strings, JSON.
#include <gtest/gtest.h>

#include "common/json.h"
#include "common/status.h"
#include "common/strings.h"

namespace nerpa {
namespace {

TEST(Status, OkAndErrors) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "ok");

  Status err = TypeError("mismatch");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kTypeError);
  EXPECT_EQ(err.ToString(), "type error: mismatch");
}

TEST(Status, ResultHoldsValueOrStatus) {
  Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);

  Result<int> bad(NotFound("nope"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(Status, MacrosPropagate) {
  auto fails = []() -> Status { return InvalidArgument("x"); };
  auto wrapper = [&]() -> Status {
    NERPA_RETURN_IF_ERROR(fails());
    return Internal("unreachable");
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInvalidArgument);

  auto makes = []() -> Result<int> { return 7; };
  auto assigns = [&]() -> Result<int> {
    NERPA_ASSIGN_OR_RETURN(int v, makes());
    return v + 1;
  };
  EXPECT_EQ(*assigns(), 8);
}

TEST(Strings, SplitJoinTrim) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Join({"x", "y"}, "::"), "x::y");
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
}

TEST(Strings, Predicates) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_TRUE(IsIdentifier("_x9"));
  EXPECT_FALSE(IsIdentifier("9x"));
  EXPECT_FALSE(IsIdentifier(""));
  EXPECT_FALSE(IsIdentifier("a-b"));
}

TEST(Strings, FormatAndQuote) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(QuoteString("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
}

TEST(Strings, CountCodeLines) {
  EXPECT_EQ(CountCodeLines("a\n\n// comment\nb\n# hash\n-- dash\n c "), 3);
}

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Json::Parse("null")->is_null());
  EXPECT_EQ(Json::Parse("true")->as_bool(), true);
  EXPECT_EQ(Json::Parse("-42")->as_integer(), -42);
  EXPECT_DOUBLE_EQ(Json::Parse("2.5e2")->as_double(), 250.0);
  EXPECT_EQ(Json::Parse("\"hi\\n\"")->as_string(), "hi\n");
}

TEST(Json, ParseNested) {
  auto doc = Json::Parse(R"({"a": [1, {"b": false}], "c": "x"})");
  ASSERT_TRUE(doc.ok());
  const Json* a = doc->Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->as_array()[0].as_integer(), 1);
  EXPECT_EQ(a->as_array()[1].Find("b")->as_bool(), false);
  EXPECT_EQ(doc->Find("c")->as_string(), "x");
  EXPECT_EQ(doc->Find("missing"), nullptr);
}

TEST(Json, RoundTrip) {
  const char* cases[] = {
      R"({"a":1,"b":[true,null,"s"],"c":{"d":-7}})",
      R"([])",
      R"([[1,2],[3]])",
      R"("é")",
  };
  for (const char* text : cases) {
    auto doc = Json::Parse(text);
    ASSERT_TRUE(doc.ok()) << text;
    auto again = Json::Parse(doc->Dump());
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*doc, *again) << text;
  }
}

TEST(Json, Errors) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":}").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
}

TEST(Json, IntegerPrecisionPreserved) {
  int64_t big = 9007199254740993LL;  // not representable as double
  auto doc = Json::Parse(std::to_string(big));
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(doc->is_integer());
  EXPECT_EQ(doc->as_integer(), big);
}

}  // namespace
}  // namespace nerpa
