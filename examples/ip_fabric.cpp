// ip_fabric: distributed L3 routing over a multi-router fabric — the kind
// of "increasingly complex network program" the paper's conclusion plans
// (§6), exercising the pieces snvs does not: recursive route computation,
// aggregation for best-path selection, LPM data-plane tables, and
// per-device entry routing.
//
// Topology (managed through OVSDB Link/Subnet tables):
//
//    10.1.0.0/16 ── [A] ──p1── [B] ──p2── [C] ── 10.3.0.0/16
//
// The control plane computes reachability recursively (routes propagate
// hop by hop), picks the best next hop per (router, prefix) with min()
// (lowest egress port wins — an administrative preference standing in for
// a cost metric), and programs each router's LPM table.  One transaction
// then cuts the A<->B links and brings up a backup A<->C link on port 9:
// routes retract and recompute incrementally.
//
//   $ ./build/examples/ip_fabric
// The stack itself (schema, pipeline, rules) lives in stacks.cc so
// `nerpa_check --builtin ip_fabric` and the golden tests analyze exactly
// what this demo runs.
#include <cstdio>

#include "nerpa/controller.h"
#include "net/packet.h"
#include "p4/text.h"
#include "stacks.h"

using namespace nerpa;

namespace {

uint32_t Ip(int a, int b, int c, int d) {
  return (static_cast<uint32_t>(a) << 24) | (static_cast<uint32_t>(b) << 16) |
         (static_cast<uint32_t>(c) << 8) | static_cast<uint32_t>(d);
}

net::Packet IpPacket(uint32_t dst) {
  net::PacketWriter writer;
  writer.WriteMac(net::Mac(0, 0, 0, 0, 0, 2));
  writer.WriteMac(net::Mac(0, 0, 0, 0, 0, 1));
  writer.WriteU16(0x0800);
  writer.WriteU8(64);          // ttl
  writer.WriteU32(Ip(10, 2, 0, 1));  // src
  writer.WriteU32(dst);
  return writer.Finish();
}

void Probe(p4::Switch& router, const char* name, uint32_t dst) {
  auto out = router.ProcessPacket(p4::PacketIn{1, IpPacket(dst)});
  if (!out.ok()) {
    std::printf("  %s: error %s\n", name, out.status().ToString().c_str());
    return;
  }
  if (out->empty()) {
    std::printf("  %s -> %d.%d.%d.%d: dropped (no route)\n", name,
                dst >> 24, (dst >> 16) & 255, (dst >> 8) & 255, dst & 255);
  } else {
    std::printf("  %s -> %d.%d.%d.%d: egress port %llu\n", name, dst >> 24,
                (dst >> 16) & 255, (dst >> 8) & 255, dst & 255,
                static_cast<unsigned long long>((*out)[0].port));
  }
}

}  // namespace

int main() {
  auto pipeline = p4::ParseP4Text(examples::FabricP4Source());
  if (!pipeline.ok()) {
    std::fprintf(stderr, "router.p4: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }
  ovsdb::Database db(examples::FabricSchema());
  BindingOptions options;
  options.with_device_column = true;
  auto bindings = GenerateBindings(db.schema(), **pipeline, options);
  if (!bindings.ok()) return 1;
  std::string source = bindings->DeclsText() + examples::FabricRules();
  auto program = dlog::Program::Parse(source);
  if (!program.ok()) {
    std::fprintf(stderr, "rules: %s\n", program.status().ToString().c_str());
    return 1;
  }

  p4::Switch a(*pipeline), b(*pipeline), c(*pipeline);
  p4::RuntimeClient ca(&a), cb(&b), cc(&c);
  Controller controller(&db, *program, *pipeline, *bindings);
  (void)controller.AddDevice("A", &ca);
  (void)controller.AddDevice("B", &cb);
  (void)controller.AddDevice("C", &cc);
  if (Status started = controller.Start(); !started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }

  // Topology: A <-> B <-> C plus a backup A <-> C on port 9.
  ovsdb::TxnBuilder txn(&db);
  auto link = [&](const char* src, const char* dst, int64_t port) {
    txn.Insert("Link", {{"src", ovsdb::Datum::String(src)},
                        {"dst", ovsdb::Datum::String(dst)},
                        {"out_port", ovsdb::Datum::Integer(port)}});
  };
  link("A", "B", 1); link("B", "A", 1);
  link("B", "C", 2); link("C", "B", 1);
  txn.Insert("Subnet", {{"router", ovsdb::Datum::String("A")},
                        {"prefix", ovsdb::Datum::Integer(Ip(10, 1, 0, 0))},
                        {"plen", ovsdb::Datum::Integer(16)},
                        {"out_port", ovsdb::Datum::Integer(3)}});
  txn.Insert("Subnet", {{"router", ovsdb::Datum::String("C")},
                        {"prefix", ovsdb::Datum::Integer(Ip(10, 3, 0, 0))},
                        {"plen", ovsdb::Datum::Integer(16)},
                        {"out_port", ovsdb::Datum::Integer(3)}});
  if (!txn.Commit().ok() || !controller.last_error().ok()) {
    std::fprintf(stderr, "topology commit failed: %s\n",
                 controller.last_error().ToString().c_str());
    return 1;
  }

  std::printf("routes computed recursively; per-router LPM entries:\n");
  std::printf("  A: %zu   B: %zu   C: %zu\n\n",
              a.GetTable("IpRoute")->size(), b.GetTable("IpRoute")->size(),
              c.GetTable("IpRoute")->size());

  std::printf("traffic from B:\n");
  Probe(b, "B", Ip(10, 1, 42, 1));  // towards A's subnet
  Probe(b, "B", Ip(10, 3, 42, 1));  // towards C's subnet
  Probe(b, "B", Ip(172, 16, 0, 1)); // no route
  std::printf("traffic from A (shortest path to 10.3/16 is via B, port 1):\n");
  Probe(a, "A", Ip(10, 3, 0, 7));

  std::printf("\n--- one transaction: cut A<->B, bring up backup A<->C ---\n");
  ovsdb::TxnBuilder cut(&db);
  cut.Delete("Link", {{"src", "==", ovsdb::Datum::String("A")},
                      {"dst", "==", ovsdb::Datum::String("B")}});
  cut.Delete("Link", {{"src", "==", ovsdb::Datum::String("B")},
                      {"dst", "==", ovsdb::Datum::String("A")}});
  cut.Insert("Link", {{"src", ovsdb::Datum::String("A")},
                      {"dst", ovsdb::Datum::String("C")},
                      {"out_port", ovsdb::Datum::Integer(9)}});
  cut.Insert("Link", {{"src", ovsdb::Datum::String("C")},
                      {"dst", ovsdb::Datum::String("A")},
                      {"out_port", ovsdb::Datum::Integer(9)}});
  if (!cut.Commit().ok() || !controller.last_error().ok()) return 1;

  std::printf("traffic from A now takes the backup link (port 9):\n");
  Probe(a, "A", Ip(10, 3, 0, 7));
  std::printf("B still reaches A's subnet through C (port 2):\n");
  Probe(b, "B", Ip(10, 1, 42, 1));

  const auto& stats = controller.stats();
  std::printf("\ncontroller: %llu dlog transactions, %llu inserts, "
              "%llu deletes (failover touched only the affected routes)\n",
              static_cast<unsigned long long>(stats.dlog_txns),
              static_cast<unsigned long long>(stats.entries_inserted),
              static_cast<unsigned long long>(stats.entries_deleted));
  return 0;
}
