#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace nerpa {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string QuoteString(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

bool IsIdentifier(std::string_view s) {
  if (s.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_')) {
    return false;
  }
  for (char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
  }
  return true;
}

int CountCodeLines(std::string_view text) {
  int count = 0;
  for (const std::string& raw : Split(text, '\n')) {
    std::string_view line = Trim(raw);
    if (line.empty()) continue;
    if (StartsWith(line, "//") || StartsWith(line, "#") ||
        StartsWith(line, "--")) {
      continue;
    }
    ++count;
  }
  return count;
}

}  // namespace nerpa
