#include "ovsdb/atom.h"

#include "common/strings.h"

namespace nerpa::ovsdb {

const char* AtomicTypeName(AtomicType type) {
  switch (type) {
    case AtomicType::kInteger: return "integer";
    case AtomicType::kReal: return "real";
    case AtomicType::kBoolean: return "boolean";
    case AtomicType::kString: return "string";
    case AtomicType::kUuid: return "uuid";
  }
  return "?";
}

Result<AtomicType> AtomicTypeFromName(std::string_view name) {
  if (name == "integer") return AtomicType::kInteger;
  if (name == "real") return AtomicType::kReal;
  if (name == "boolean") return AtomicType::kBoolean;
  if (name == "string") return AtomicType::kString;
  if (name == "uuid") return AtomicType::kUuid;
  return ParseError("unknown atomic type '" + std::string(name) + "'");
}

bool Atom::operator<(const Atom& o) const {
  if (rep_.index() != o.rep_.index()) return rep_.index() < o.rep_.index();
  switch (rep_.index()) {
    case 0: return integer() < o.integer();
    case 1: return real() < o.real();
    case 2: return boolean() < o.boolean();
    case 3: return string() < o.string();
    default: return uuid() < o.uuid();
  }
}

Json Atom::ToJson() const {
  switch (type()) {
    case AtomicType::kInteger: return Json(integer());
    case AtomicType::kReal: return Json(real());
    case AtomicType::kBoolean: return Json(boolean());
    case AtomicType::kString: return Json(string());
    case AtomicType::kUuid:
      return Json(Json::Array{Json("uuid"), Json(uuid().ToString())});
  }
  return Json();
}

Result<Atom> Atom::FromJson(const Json& json, AtomicType expected,
                            const std::map<std::string, Uuid>* named_uuids) {
  switch (expected) {
    case AtomicType::kInteger:
      if (json.is_integer()) return Atom(json.as_integer());
      return ParseError("expected integer atom, got " + json.Dump());
    case AtomicType::kReal:
      if (json.is_number()) return Atom(json.as_double());
      return ParseError("expected real atom, got " + json.Dump());
    case AtomicType::kBoolean:
      if (json.is_bool()) return Atom(json.as_bool());
      return ParseError("expected boolean atom, got " + json.Dump());
    case AtomicType::kString:
      if (json.is_string()) return Atom(json.as_string());
      return ParseError("expected string atom, got " + json.Dump());
    case AtomicType::kUuid: {
      if (!json.is_array() || json.as_array().size() != 2 ||
          !json.as_array()[0].is_string() || !json.as_array()[1].is_string()) {
        return ParseError("expected [\"uuid\",...] pair, got " + json.Dump());
      }
      const std::string& tag = json.as_array()[0].as_string();
      const std::string& text = json.as_array()[1].as_string();
      if (tag == "uuid") {
        auto uuid = Uuid::Parse(text);
        if (!uuid) return ParseError("malformed uuid '" + text + "'");
        return Atom(*uuid);
      }
      if (tag == "named-uuid") {
        if (named_uuids == nullptr) {
          return ParseError("named-uuid not allowed in this context");
        }
        auto it = named_uuids->find(text);
        if (it == named_uuids->end()) {
          return ParseError("unknown named-uuid '" + text + "'");
        }
        return Atom(it->second);
      }
      return ParseError("expected uuid tag, got '" + tag + "'");
    }
  }
  return ParseError("bad atomic type");
}

std::string Atom::ToString() const {
  switch (type()) {
    case AtomicType::kInteger: return std::to_string(integer());
    case AtomicType::kReal: return StrFormat("%g", real());
    case AtomicType::kBoolean: return boolean() ? "true" : "false";
    case AtomicType::kString: return QuoteString(string());
    case AtomicType::kUuid: return uuid().ToString();
  }
  return "?";
}

}  // namespace nerpa::ovsdb
