// Controller-runtime behaviours: startup against a pre-populated database,
// stats accounting, device routing errors, multicast group lifecycle,
// lifecycle guards, and parallel per-device dispatch ordering.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "ha/fault.h"
#include "nerpa/controller.h"
#include "ovsdb/database.h"
#include "p4/text.h"
#include "snvs/snvs.h"

namespace nerpa {
namespace {

constexpr const char* kPipeline = R"p4(
header ethernet { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
parser { state start { extract(ethernet); goto accept; } }
action Discard() { drop(); }
action Assign(bit<12> vid) { }
table VlanMap {
  key = { standard.ingress_port: exact; }
  actions = { Assign; }
  default_action = Discard;
}
ingress { apply(VlanMap); }
egress { }
deparser { emit(ethernet); }
)p4";

ovsdb::DatabaseSchema Schema() {
  ovsdb::DatabaseSchema schema;
  schema.name = "ctl";
  ovsdb::TableSchema assignment;
  assignment.name = "Assignment";
  assignment.columns = {
      {"device", ovsdb::ColumnType::Scalar(ovsdb::BaseType::String()), false,
       true},
      {"port", ovsdb::ColumnType::Scalar(ovsdb::BaseType::Integer(0, 65535)),
       false, true},
      {"vlan", ovsdb::ColumnType::Scalar(ovsdb::BaseType::Integer(0, 4095)),
       false, true},
  };
  schema.tables.emplace("Assignment", std::move(assignment));
  return schema;
}

constexpr const char* kRules = R"(
VlanMap(d, p as bit<16>, "Assign", v as bit<12>) :- Assignment(_, d, p, v).
)";

struct Rig {
  std::shared_ptr<const p4::P4Program> pipeline;
  std::unique_ptr<ovsdb::Database> db;
  Bindings bindings;
  std::shared_ptr<const dlog::Program> program;
  std::unique_ptr<p4::Switch> sw0, sw1;
  std::unique_ptr<p4::RuntimeClient> client0, client1;
  std::unique_ptr<Controller> controller;
};

Rig MakeRig() {
  Rig rig;
  rig.pipeline = p4::ParseP4Text(kPipeline).value();
  rig.db = std::make_unique<ovsdb::Database>(Schema());
  BindingOptions options;
  options.with_device_column = true;
  rig.bindings = GenerateBindings(rig.db->schema(), *rig.pipeline, options)
                     .value();
  rig.program =
      dlog::Program::Parse(rig.bindings.DeclsText() + kRules).value();
  rig.sw0 = std::make_unique<p4::Switch>(rig.pipeline);
  rig.sw1 = std::make_unique<p4::Switch>(rig.pipeline);
  rig.client0 = std::make_unique<p4::RuntimeClient>(rig.sw0.get());
  rig.client1 = std::make_unique<p4::RuntimeClient>(rig.sw1.get());
  rig.controller = std::make_unique<Controller>(
      rig.db.get(), rig.program, rig.pipeline, rig.bindings);
  return rig;
}

Status AddAssignment(ovsdb::Database& db, const char* device, int64_t port,
                     int64_t vlan) {
  ovsdb::TxnBuilder txn(&db);
  txn.Insert("Assignment", {{"device", ovsdb::Datum::String(device)},
                            {"port", ovsdb::Datum::Integer(port)},
                            {"vlan", ovsdb::Datum::Integer(vlan)}});
  return txn.Commit().status();
}

TEST(Controller, StartInstallsPreexistingRows) {
  Rig rig = MakeRig();
  // Rows exist BEFORE the controller starts: the monitor's initial
  // snapshot must install them.
  ASSERT_TRUE(AddAssignment(*rig.db, "sw0", 1, 10).ok());
  ASSERT_TRUE(AddAssignment(*rig.db, "sw1", 2, 20).ok());
  ASSERT_TRUE(rig.controller->AddDevice("sw0", rig.client0.get()).ok());
  ASSERT_TRUE(rig.controller->AddDevice("sw1", rig.client1.get()).ok());
  ASSERT_TRUE(rig.controller->Start().ok());
  EXPECT_TRUE(rig.controller->last_error().ok());
  EXPECT_EQ(rig.sw0->GetTable("VlanMap")->size(), 1u);
  EXPECT_EQ(rig.sw1->GetTable("VlanMap")->size(), 1u);
}

TEST(Controller, UnknownDeviceRowSurfacesError) {
  Rig rig = MakeRig();
  ASSERT_TRUE(rig.controller->AddDevice("sw0", rig.client0.get()).ok());
  ASSERT_TRUE(rig.controller->Start().ok());
  ASSERT_TRUE(AddAssignment(*rig.db, "ghost", 1, 10).ok());
  // The OVSDB commit succeeds; the controller records the routing failure.
  EXPECT_FALSE(rig.controller->last_error().ok());
  EXPECT_GE(rig.controller->stats().errors, 1u);
}

TEST(Controller, StatsAccounting) {
  Rig rig = MakeRig();
  ASSERT_TRUE(rig.controller->AddDevice("sw0", rig.client0.get()).ok());
  ASSERT_TRUE(rig.controller->Start().ok());
  ASSERT_TRUE(AddAssignment(*rig.db, "sw0", 1, 10).ok());
  ASSERT_TRUE(AddAssignment(*rig.db, "sw0", 2, 20).ok());
  // Move port 1 to vlan 30: retract + assert (a modify through the stack).
  ovsdb::TxnBuilder txn(rig.db.get());
  txn.Update("Assignment", {{"port", "==", ovsdb::Datum::Integer(1)}},
             {{"vlan", ovsdb::Datum::Integer(30)}});
  ASSERT_TRUE(txn.Commit().ok());
  ASSERT_TRUE(rig.controller->last_error().ok());
  const auto& stats = rig.controller->stats();
  EXPECT_EQ(stats.ovsdb_updates, 3u);
  EXPECT_EQ(stats.dlog_txns, 3u);
  EXPECT_EQ(stats.entries_inserted, 3u);  // 2 adds + 1 re-assert
  EXPECT_EQ(stats.entries_deleted, 1u);   // the retract
  // The new entry carries the new vlan argument.
  bool found = false;
  for (const p4::TableEntry* entry : rig.sw0->GetTable("VlanMap")->Entries()) {
    if (entry->match[0].value == 1) {
      EXPECT_EQ(entry->action_args[0], 30u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Controller, LifecycleGuards) {
  Rig rig = MakeRig();
  ASSERT_TRUE(rig.controller->AddDevice("sw0", rig.client0.get()).ok());
  // Duplicate device name.
  EXPECT_FALSE(rig.controller->AddDevice("sw0", rig.client1.get()).ok());
  ASSERT_TRUE(rig.controller->Start().ok());
  // Registering after Start() is the device-rejoin path: it succeeds and
  // immediately resynchronizes the newcomer.
  EXPECT_TRUE(rig.controller->AddDevice("sw1", rig.client1.get()).ok());
  EXPECT_EQ(rig.controller->stats().resyncs, 1u);
  // Still no duplicate names, and no double start.
  EXPECT_FALSE(rig.controller->AddDevice("sw1", rig.client1.get()).ok());
  EXPECT_FALSE(rig.controller->Start().ok());
  // Resync requires a started controller and a known device.
  EXPECT_FALSE(rig.controller->ResyncDevice("ghost").ok());
  EXPECT_TRUE(rig.controller->ResyncDevice("sw0").ok());
  // Digest sync on a digest-less program is a no-op.
  EXPECT_TRUE(rig.controller->SyncDataPlaneNotifications().ok());
}

/// Records the op sequence seen by one device.  Deliberately unlocked: the
/// dispatcher guarantees each device's batch runs on a single worker, so
/// recording from it is single-threaded (TSan enforces the claim).  The
/// sleep widens the window so batches for distinct devices actually
/// overlap instead of finishing before the next is scheduled.
class RecordingClient : public p4::RuntimeClient {
 public:
  using p4::RuntimeClient::RuntimeClient;
  Status Write(const std::vector<p4::Update>& updates) override {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    for (const p4::Update& update : updates) {
      ops.push_back(update.type == p4::UpdateType::kDelete ? 'D' : 'I');
    }
    return p4::RuntimeClient::Write(updates);
  }
  Status SetMulticastGroup(uint32_t group,
                           std::vector<uint64_t> ports) override {
    ops.push_back('M');
    return p4::RuntimeClient::SetMulticastGroup(group, std::move(ports));
  }
  std::vector<char> ops;
};

struct ParRig {
  std::shared_ptr<const p4::P4Program> pipeline;
  std::unique_ptr<ovsdb::Database> db;
  Bindings bindings;
  std::shared_ptr<const dlog::Program> program;
  std::vector<std::unique_ptr<p4::Switch>> switches;
  std::vector<std::unique_ptr<RecordingClient>> clients;
  std::unique_ptr<Controller> controller;
};

ParRig MakeParRig(int devices, Controller::Options options) {
  ParRig rig;
  rig.pipeline = p4::ParseP4Text(kPipeline).value();
  rig.db = std::make_unique<ovsdb::Database>(Schema());
  BindingOptions binding_options;
  binding_options.with_device_column = true;
  rig.bindings =
      GenerateBindings(rig.db->schema(), *rig.pipeline, binding_options)
          .value();
  rig.program =
      dlog::Program::Parse(rig.bindings.DeclsText() + kRules).value();
  for (int i = 0; i < devices; ++i) {
    rig.switches.push_back(std::make_unique<p4::Switch>(rig.pipeline));
    rig.clients.push_back(
        std::make_unique<RecordingClient>(rig.switches.back().get()));
  }
  rig.controller = std::make_unique<Controller>(
      rig.db.get(), rig.program, rig.pipeline, rig.bindings, options);
  return rig;
}

std::string DeviceName(int i) { return "sw" + std::to_string(i); }

TEST(ControllerParallel, PerDeviceOrderIsSerialEquivalent) {
  Controller::Options options;
  options.write_parallelism = 4;
  ParRig rig = MakeParRig(4, options);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(rig.controller
                    ->AddDevice(DeviceName(i), rig.clients[i].get())
                    .ok());
  }
  ASSERT_TRUE(rig.controller->Start().ok());
  // One txn inserting 4 rows per device: concurrent batches, but each
  // device sees only its own inserts.
  {
    ovsdb::TxnBuilder txn(rig.db.get());
    for (int d = 0; d < 4; ++d) {
      for (int p = 1; p <= 4; ++p) {
        txn.Insert("Assignment",
                   {{"device", ovsdb::Datum::String(DeviceName(d))},
                    {"port", ovsdb::Datum::Integer(p)},
                    {"vlan", ovsdb::Datum::Integer(10 * p)}});
      }
    }
    ASSERT_TRUE(txn.Commit().ok());
  }
  ASSERT_TRUE(rig.controller->last_error().ok());
  for (int d = 0; d < 4; ++d) {
    EXPECT_EQ(rig.clients[d]->ops, (std::vector<char>{'I', 'I', 'I', 'I'}));
    EXPECT_EQ(rig.switches[d]->GetTable("VlanMap")->size(), 4u);
    rig.clients[d]->ops.clear();
  }
  // Move every row to a new vlan: per device the retractions must all
  // land before the re-assertions (delete-before-insert is the serial
  // order; violating it would transiently drop a matching entry or, for
  // keyed modifies, fail the insert outright).
  {
    ovsdb::TxnBuilder txn(rig.db.get());
    txn.Update("Assignment", {}, {{"vlan", ovsdb::Datum::Integer(99)}});
    ASSERT_TRUE(txn.Commit().ok());
  }
  ASSERT_TRUE(rig.controller->last_error().ok());
  for (int d = 0; d < 4; ++d) {
    EXPECT_EQ(rig.clients[d]->ops,
              (std::vector<char>{'D', 'D', 'D', 'D', 'I', 'I', 'I', 'I'}))
        << "device " << d << " saw a reordered batch";
    for (const p4::TableEntry* entry :
         rig.switches[d]->GetTable("VlanMap")->Entries()) {
      EXPECT_EQ(entry->action_args[0], 99u);
    }
  }
}

TEST(ControllerParallel, BurstAcrossDevicesConverges) {
  // Auto parallelism (0 = one worker per device); many small txns, each
  // fanning out to all devices.  Every write must land exactly once.
  ParRig rig = MakeParRig(3, Controller::Options{});
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(rig.controller
                    ->AddDevice(DeviceName(i), rig.clients[i].get())
                    .ok());
  }
  ASSERT_TRUE(rig.controller->Start().ok());
  constexpr int kTxns = 20;
  for (int t = 0; t < kTxns; ++t) {
    ovsdb::TxnBuilder txn(rig.db.get());
    for (int d = 0; d < 3; ++d) {
      txn.Insert("Assignment",
                 {{"device", ovsdb::Datum::String(DeviceName(d))},
                  {"port", ovsdb::Datum::Integer(t + 1)},
                  {"vlan", ovsdb::Datum::Integer(100 + t)}});
    }
    ASSERT_TRUE(txn.Commit().ok());
  }
  ASSERT_TRUE(rig.controller->last_error().ok());
  EXPECT_EQ(rig.controller->stats().entries_inserted,
            static_cast<uint64_t>(3 * kTxns));
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(rig.switches[d]->GetTable("VlanMap")->size(),
              static_cast<size_t>(kTxns));
    EXPECT_EQ(rig.clients[d]->ops, std::vector<char>(kTxns, 'I'));
  }
}

TEST(ControllerParallel, ParallelResyncOnStartConverges) {
  Controller::Options options;
  options.resync_on_start = true;
  options.write_parallelism = 3;
  ParRig rig = MakeParRig(3, options);
  // Rows exist before startup; resync_on_start diffs each (empty) device
  // against desired state concurrently.
  for (int d = 0; d < 3; ++d) {
    ovsdb::TxnBuilder txn(rig.db.get());
    txn.Insert("Assignment", {{"device", ovsdb::Datum::String(DeviceName(d))},
                              {"port", ovsdb::Datum::Integer(d + 1)},
                              {"vlan", ovsdb::Datum::Integer(20 + d)}});
    ASSERT_TRUE(txn.Commit().ok());
    ASSERT_TRUE(rig.controller
                    ->AddDevice(DeviceName(d), rig.clients[d].get())
                    .ok());
  }
  ASSERT_TRUE(rig.controller->Start().ok());
  ASSERT_TRUE(rig.controller->last_error().ok());
  EXPECT_EQ(rig.controller->stats().resyncs, 3u);
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(rig.switches[d]->GetTable("VlanMap")->size(), 1u);
    // Already converged: a second resync must be write-free.
    uint64_t writes = rig.clients[d]->write_count();
    ASSERT_TRUE(rig.controller->ResyncDevice(DeviceName(d)).ok());
    EXPECT_EQ(rig.clients[d]->write_count(), writes);
  }
}

/// A device that is down hard: every write errors until `revived`.
class DeadClient : public p4::RuntimeClient {
 public:
  using p4::RuntimeClient::RuntimeClient;
  Status Write(const std::vector<p4::Update>& updates) override {
    if (!revived) return Internal("device unreachable");
    return p4::RuntimeClient::Write(updates);
  }
  Status SetMulticastGroup(uint32_t group,
                           std::vector<uint64_t> ports) override {
    if (!revived) return Internal("device unreachable");
    return p4::RuntimeClient::SetMulticastGroup(group, std::move(ports));
  }
  bool revived = false;
};

TEST(ControllerParallel, DeadDeviceIsQuarantinedWhileOthersCommitFully) {
  Controller::Options options;
  options.write_parallelism = 3;
  options.retry.max_attempts = 2;
  options.retry.initial_backoff_nanos = 1000;
  options.retry.max_backoff_nanos = 2000;
  options.breaker.enabled = true;
  options.breaker.strike_threshold = 1;
  options.breaker.cooldown_nanos = 0;  // probe on the next anti-entropy run
  ParRig rig = MakeParRig(3, options);
  auto dead_sw = std::make_unique<p4::Switch>(rig.pipeline);
  DeadClient dead(dead_sw.get());

  ASSERT_TRUE(rig.controller->AddDevice("sw0", &dead).ok());
  for (int i = 1; i < 3; ++i) {
    ASSERT_TRUE(rig.controller
                    ->AddDevice(DeviceName(i), rig.clients[i].get())
                    .ok());
  }
  ASSERT_TRUE(rig.controller->Start().ok());

  constexpr int kTxns = 10;
  for (int t = 0; t < kTxns; ++t) {
    ovsdb::TxnBuilder txn(rig.db.get());
    for (int d = 0; d < 3; ++d) {
      txn.Insert("Assignment",
                 {{"device", ovsdb::Datum::String(DeviceName(d))},
                  {"port", ovsdb::Datum::Integer(t + 1)},
                  {"vlan", ovsdb::Datum::Integer(100 + t)}});
    }
    ASSERT_TRUE(txn.Commit().ok());
  }
  // The dead device never aborted a sync: the breaker absorbed it.
  ASSERT_TRUE(rig.controller->last_error().ok());
  Controller::Stats stats = rig.controller->stats();
  EXPECT_EQ(stats.breaker_states.at("sw0"), "open");
  EXPECT_GE(stats.breaker_trips, 1u);
  EXPECT_GE(stats.write_failures, 1u);
  // The quarantined deltas coalesced into the outbox instead of erroring.
  EXPECT_GT(stats.outbox_sizes.at("sw0"), 0u);
  // The healthy devices committed every transaction at full rate.
  for (int d = 1; d < 3; ++d) {
    EXPECT_EQ(rig.switches[d]->GetTable("VlanMap")->size(),
              static_cast<size_t>(kTxns));
    EXPECT_EQ(rig.clients[d]->ops, std::vector<char>(kTxns, 'I'))
        << "device " << d << " was stalled by the dead one";
  }
  EXPECT_EQ(dead_sw->GetTable("VlanMap")->size(), 0u);

  // While quarantined, batches are not even attempted against the device.
  uint64_t failures_at_trip = rig.controller->stats().write_failures;
  {
    ovsdb::TxnBuilder txn(rig.db.get());
    txn.Insert("Assignment", {{"device", ovsdb::Datum::String("sw0")},
                              {"port", ovsdb::Datum::Integer(77)},
                              {"vlan", ovsdb::Datum::Integer(7)}});
    ASSERT_TRUE(txn.Commit().ok());
  }
  EXPECT_EQ(rig.controller->stats().write_failures, failures_at_trip);

  // An anti-entropy round against the still-dead device: probe fails, the
  // breaker re-opens, nothing crashes.
  ASSERT_TRUE(rig.controller->RunAntiEntropy().ok());
  stats = rig.controller->stats();
  EXPECT_GE(stats.breaker_probes, 1u);
  EXPECT_EQ(stats.breaker_rejoins, 0u);
  EXPECT_EQ(stats.breaker_states.at("sw0"), "open");

  // The device comes back; one anti-entropy round fully converges it.
  dead.revived = true;
  ASSERT_TRUE(rig.controller->RunAntiEntropy().ok());
  stats = rig.controller->stats();
  EXPECT_EQ(stats.breaker_states.at("sw0"), "closed");
  EXPECT_EQ(stats.breaker_rejoins, 1u);
  EXPECT_EQ(stats.outbox_sizes.at("sw0"), 0u);
  EXPECT_EQ(dead_sw->GetTable("VlanMap")->size(),
            static_cast<size_t>(kTxns + 1));  // backlog + the 77 row

  // And it tracks live updates again.
  {
    ovsdb::TxnBuilder txn(rig.db.get());
    txn.Insert("Assignment", {{"device", ovsdb::Datum::String("sw0")},
                              {"port", ovsdb::Datum::Integer(88)},
                              {"vlan", ovsdb::Datum::Integer(8)}});
    ASSERT_TRUE(txn.Commit().ok());
  }
  EXPECT_EQ(dead_sw->GetTable("VlanMap")->size(),
            static_cast<size_t>(kTxns + 2));
}

TEST(Controller, SlowDeviceTripsBreakerViaTimeoutStrikes) {
  Controller::Options options;
  options.retry.max_attempts = 1;
  options.breaker.enabled = true;
  options.breaker.strike_threshold = 2;
  options.breaker.cooldown_nanos = 0;
  options.breaker.write_timeout_nanos = 100'000;  // 0.1 ms budget
  ParRig rig = MakeParRig(1, options);
  auto slow_sw = std::make_unique<p4::Switch>(rig.pipeline);
  ha::FaultPolicy policy;
  policy.write_fail_probability = 1.0;  // every write draws a fault...
  policy.stall_nanos = 2'000'000;       // ...stalling 2 ms, then succeeding
  ha::FaultyRuntimeClient slow(slow_sw.get(), policy);
  ASSERT_TRUE(rig.controller->AddDevice("sw0", &slow).ok());
  ASSERT_TRUE(rig.controller->Start().ok());

  // Two slow-but-successful writes = two timeout strikes = quarantine.
  ASSERT_TRUE(AddAssignment(*rig.db, "sw0", 1, 10).ok());
  ASSERT_TRUE(AddAssignment(*rig.db, "sw0", 2, 20).ok());
  ASSERT_TRUE(rig.controller->last_error().ok());
  Controller::Stats stats = rig.controller->stats();
  EXPECT_GE(stats.slow_writes, 2u);
  EXPECT_EQ(stats.write_failures, 0u);  // the writes succeeded, slowly
  EXPECT_GE(stats.breaker_trips, 1u);
  EXPECT_EQ(stats.breaker_states.at("sw0"), "open");
  // The slow writes did land on the device even though they struck.
  EXPECT_EQ(slow_sw->GetTable("VlanMap")->size(), 2u);

  // Back to full speed: the probe resyncs and the breaker closes.
  policy.stall_nanos = 0;
  policy.write_fail_probability = 0;
  slow.set_policy(policy);
  ASSERT_TRUE(rig.controller->RunAntiEntropy().ok());
  EXPECT_EQ(rig.controller->stats().breaker_states.at("sw0"), "closed");
}

TEST(Controller, MulticastGroupLifecycle) {
  // Exercised through the snvs stack: groups appear with the first member,
  // shrink per member, and disappear with the last.
  auto stack = snvs::BuildSnvsStack().value();
  ASSERT_TRUE(stack->AddPort("p1", 1, "access", 10).ok());
  ASSERT_TRUE(stack->AddPort("p2", 2, "access", 10).ok());
  ASSERT_NE(stack->device().GetMulticastGroup(11), nullptr);
  EXPECT_EQ(stack->device().GetMulticastGroup(11)->size(), 2u);
  EXPECT_GE(stack->controller().stats().multicast_updates, 2u);
  ASSERT_TRUE(stack->DeletePort("p1").ok());
  ASSERT_TRUE(stack->DeletePort("p2").ok());
  EXPECT_EQ(stack->device().GetMulticastGroup(11), nullptr);
}

}  // namespace
}  // namespace nerpa
