file(REMOVE_RECURSE
  "CMakeFiles/test_ovsdb.dir/test_ovsdb.cc.o"
  "CMakeFiles/test_ovsdb.dir/test_ovsdb.cc.o.d"
  "test_ovsdb"
  "test_ovsdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ovsdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
