// E6 — the §1 graph-labeling example: incremental work proportional to the
// change, not the network.
//
// The paper opens with the reachable-label program
//
//     Label(n1, label) :- GivenLabel(n1, label).
//     Label(n2, label) :- Label(n1, label), Edge(n1, n2).
//
// and argues that a hand-written incremental version took thousands of
// lines and several releases to debug, while DDlog generates it from two
// rules.  Here we measure what the generated incrementality buys: on a
// random graph of N nodes and ~3N edges, the cost of a single edge insert
// or delete through the incremental engine versus recomputing the whole
// label set from scratch, across an N sweep.  Expected shape: the
// incremental column stays roughly flat while recompute grows with N.
#include <random>

#include "bench/bench_util.h"
#include "dlog/engine.h"

namespace nerpa {
namespace {

using bench::Banner;
using bench::Table;
using dlog::Engine;
using dlog::Row;
using dlog::Value;

constexpr const char* kProgram = R"(
input relation GivenLabel(n1: bigint, label: string)
input relation Edge(n1: bigint, n2: bigint)
output relation Label(n: bigint, label: string)
Label(n1, label) :- GivenLabel(n1, label).
Label(n2, label) :- Label(n1, label), Edge(n1, n2).
)";

struct Graph {
  std::vector<std::pair<int64_t, int64_t>> edges;
  std::vector<int64_t> roots;
};

Graph MakeGraph(int nodes, std::mt19937_64& rng) {
  Graph graph;
  // Mostly-forward random graph with a few back edges (cycles), 3 edges
  // per node on average — network topologies are largely hierarchical.
  // A fully random graph would be one giant SCC, where DRed's
  // overdelete-everything-downstream behaviour degenerates to a stratum
  // recompute on every deletion (see the note below).
  for (int i = 0; i < nodes * 3; ++i) {
    int64_t a = static_cast<int64_t>(rng() % static_cast<uint64_t>(nodes));
    int64_t b = static_cast<int64_t>(rng() % static_cast<uint64_t>(nodes));
    if (a == b) continue;
    bool back_edge = rng() % 20 == 0;
    if ((a > b) != back_edge) std::swap(a, b);
    graph.edges.emplace_back(a, b);
  }
  for (int i = 0; i < 4; ++i) {
    graph.roots.push_back(static_cast<int64_t>(
        rng() % static_cast<uint64_t>(nodes)));
  }
  return graph;
}

Status LoadGraph(Engine& engine, const Graph& graph) {
  for (const auto& [a, b] : graph.edges) {
    NERPA_RETURN_IF_ERROR(
        engine.Insert("Edge", Row{Value::Int(a), Value::Int(b)}));
  }
  for (int64_t root : graph.roots) {
    NERPA_RETURN_IF_ERROR(engine.Insert(
        "GivenLabel", Row{Value::Int(root), Value::String("reach")}));
  }
  return engine.Commit().status();
}

int Run() {
  Banner("E6 / §1",
         "incremental graph labeling vs full recompute (the 2-rule Label "
         "program)");
  auto program = dlog::Program::Parse(kProgram);
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }

  Table table({"nodes", "edges", "full recompute", "1 edge insert",
               "1 edge delete", "speedup (ins)", "speedup (del)"});
  for (int nodes : {100, 300, 1000, 3000, 10000}) {
    std::mt19937_64 rng(42);
    Graph graph = MakeGraph(nodes, rng);

    // Full recompute cost: load everything into a fresh engine.
    Engine scratch(*program);
    Stopwatch full_watch;
    if (!LoadGraph(scratch, graph).ok()) return 1;
    double full_seconds = full_watch.ElapsedSeconds();

    // Incremental engine, pre-loaded.
    Engine engine(*program);
    if (!LoadGraph(engine, graph).ok()) return 1;

    // Measure a batch of single-edge inserts and deletes (median of 20).
    std::vector<double> insert_times, delete_times;
    for (int trial = 0; trial < 20; ++trial) {
      int64_t a = static_cast<int64_t>(rng() % static_cast<uint64_t>(nodes));
      int64_t b = static_cast<int64_t>(rng() % static_cast<uint64_t>(nodes));
      if (a == b) continue;
      Row edge{Value::Int(a), Value::Int(b)};
      {
        Stopwatch watch;
        if (!engine.Insert("Edge", edge).ok() || !engine.Commit().ok()) {
          return 1;
        }
        insert_times.push_back(watch.ElapsedSeconds());
      }
      {
        Stopwatch watch;
        if (!engine.Delete("Edge", edge).ok() || !engine.Commit().ok()) {
          return 1;
        }
        delete_times.push_back(watch.ElapsedSeconds());
      }
    }
    double insert_median = bench::Percentile(insert_times, 0.5);
    double delete_median = bench::Percentile(delete_times, 0.5);
    table.AddRow({std::to_string(nodes),
                  std::to_string(graph.edges.size()),
                  bench::Ms(full_seconds), bench::Us(insert_median),
                  bench::Us(delete_median),
                  StrFormat("%.0fx", full_seconds / insert_median),
                  StrFormat("%.0fx", full_seconds / delete_median)});
  }
  table.Print();
  std::printf(
      "\npaper reference: the incremental Java equivalent took 'several\n"
      "thousand lines' and 'multiple releases to debug' (§1); the program\n"
      "above is 2 rules.  Expected shape: speedups grow with graph size.\n"
      "note: deletions use DRed (delete-and-rederive).  On a graph that is\n"
      "one big cycle-heavy SCC, deleting any edge overdeletes the whole\n"
      "downstream closure and re-derivation approaches a full stratum\n"
      "recompute — the classic DRed worst case; differential-dataflow-style\n"
      "engines (DDlog's substrate) do better there.\n");
  return 0;
}

}  // namespace
}  // namespace nerpa

int main() { return nerpa::Run(); }
