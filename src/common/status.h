// Lightweight error-handling vocabulary used across every plane.
//
// Nerpa's planes exchange data constantly (management -> control -> data and
// digests back); most conversion and validation failures are recoverable and
// must carry a precise message to the operator, so the codebase uses
// Status/Result instead of exceptions on those paths.  Programming errors
// (violated invariants) still assert.
#ifndef NERPA_COMMON_STATUS_H_
#define NERPA_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace nerpa {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller supplied malformed data
  kNotFound,          // named entity does not exist
  kAlreadyExists,     // uniqueness violated
  kFailedPrecondition,// operation illegal in current state
  kTypeError,         // cross-plane type check failure
  kParseError,        // surface-syntax or JSON parse failure
  kConstraintError,   // schema/referential constraint violated
  kInternal,          // invariant violation that was caught dynamically
  kPermissionDenied,  // caller lacks authority (e.g. stale fencing token)
  kDeadlineExceeded,  // the caller's deadline passed before completion
};

/// Human-readable name of a StatusCode ("type error", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error value.  Cheap to copy on success (empty message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk);
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& o) const {
    return code_ == o.code_ && message_ == o.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value of type T or an error Status.  Modeled after absl::StatusOr.
template <typename T>
class Result {
 public:
  Result(T value) : rep_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : rep_(std::move(status)) {    // NOLINT(runtime/explicit)
    assert(!std::get<Status>(rep_).ok() && "Result from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(rep_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

// Convenience constructors.
Status InvalidArgument(std::string message);
Status NotFound(std::string message);
Status AlreadyExists(std::string message);
Status FailedPrecondition(std::string message);
Status TypeError(std::string message);
Status ParseError(std::string message);
Status ConstraintError(std::string message);
Status Internal(std::string message);
Status PermissionDenied(std::string message);
Status DeadlineExceeded(std::string message);

/// Propagates an error Status from an expression that yields Status.
#define NERPA_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::nerpa::Status nerpa_status_ = (expr);          \
    if (!nerpa_status_.ok()) return nerpa_status_;   \
  } while (0)

/// Evaluates a Result<T> expression, assigning the value on success and
/// propagating the Status on failure.
#define NERPA_ASSIGN_OR_RETURN(lhs, expr)            \
  NERPA_ASSIGN_OR_RETURN_IMPL(                       \
      NERPA_STATUS_CONCAT(result_, __LINE__), lhs, expr)
#define NERPA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)  \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()
#define NERPA_STATUS_CONCAT_INNER(a, b) a##b
#define NERPA_STATUS_CONCAT(a, b) NERPA_STATUS_CONCAT_INNER(a, b)

}  // namespace nerpa

#endif  // NERPA_COMMON_STATUS_H_
