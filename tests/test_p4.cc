// Unit tests for the P4 subsystem: IR validation, match-kind semantics,
// the behavioural interpreter (parsing, pipeline, multicast, digests,
// VLAN push/pop, clones), and the P4Runtime-style API validation.
#include <gtest/gtest.h>

#include "net/packet.h"
#include "p4/interpreter.h"
#include "p4/runtime.h"
#include "snvs/snvs.h"

namespace nerpa::p4 {
namespace {

using net::Mac;

TEST(MatchField, ExactLpmTernaryRangeOptional) {
  EXPECT_TRUE(MatchField::Exact(5).Matches(MatchKind::kExact, 16, 5));
  EXPECT_FALSE(MatchField::Exact(5).Matches(MatchKind::kExact, 16, 6));

  // LPM: 10.1.0.0/16 over a 32-bit field.
  MatchField lpm = MatchField::Lpm(0x0A010000, 16);
  EXPECT_TRUE(lpm.Matches(MatchKind::kLpm, 32, 0x0A01FFFF));
  EXPECT_FALSE(lpm.Matches(MatchKind::kLpm, 32, 0x0A020000));
  EXPECT_TRUE(MatchField::Lpm(0, 0).Matches(MatchKind::kLpm, 32, 0xFFFFFFFF));

  MatchField ternary = MatchField::Ternary(0x0100, 0x0F00);
  EXPECT_TRUE(ternary.Matches(MatchKind::kTernary, 16, 0xA1FF));
  EXPECT_FALSE(ternary.Matches(MatchKind::kTernary, 16, 0xA2FF));

  MatchField range = MatchField::Range(10, 20);
  EXPECT_TRUE(range.Matches(MatchKind::kRange, 16, 10));
  EXPECT_TRUE(range.Matches(MatchKind::kRange, 16, 20));
  EXPECT_FALSE(range.Matches(MatchKind::kRange, 16, 21));

  EXPECT_TRUE(MatchField::Optional(std::nullopt)
                  .Matches(MatchKind::kOptional, 16, 1234));
  EXPECT_TRUE(MatchField::Optional(7).Matches(MatchKind::kOptional, 16, 7));
  EXPECT_FALSE(MatchField::Optional(7).Matches(MatchKind::kOptional, 16, 8));
}

/// A small LPM routing table exercised through TableState.
TEST(TableState, LongestPrefixWins) {
  Table schema;
  schema.name = "route";
  schema.keys = {{"meta.dst", MatchKind::kLpm, 32}};
  schema.actions = {"fwd"};
  TableState state(&schema);
  auto entry = [&](uint64_t value, int plen, uint64_t port) {
    TableEntry e;
    e.table = "route";
    e.match = {MatchField::Lpm(value, plen)};
    e.action = "fwd";
    e.action_args = {port};
    return e;
  };
  ASSERT_TRUE(state.Insert(entry(0x0A000000, 8, 1)).ok());
  ASSERT_TRUE(state.Insert(entry(0x0A010000, 16, 2)).ok());
  ASSERT_TRUE(state.Insert(entry(0x0A010200, 24, 3)).ok());
  EXPECT_EQ(state.Lookup({0x0A010203})->action_args[0], 3u);
  EXPECT_EQ(state.Lookup({0x0A01FF00})->action_args[0], 2u);
  EXPECT_EQ(state.Lookup({0x0AFF0000})->action_args[0], 1u);
  EXPECT_EQ(state.Lookup({0x0B000000}), nullptr);
  EXPECT_EQ(state.hits(), 3u);
  EXPECT_EQ(state.misses(), 1u);
}

TEST(TableState, TernaryPriority) {
  Table schema;
  schema.name = "acl";
  schema.keys = {{"meta.x", MatchKind::kTernary, 16}};
  schema.actions = {"a"};
  TableState state(&schema);
  TableEntry broad;
  broad.table = "acl";
  broad.match = {MatchField::Ternary(0, 0)};  // matches all
  broad.priority = 1;
  broad.action = "a";
  broad.action_args = {};
  TableEntry narrow = broad;
  narrow.match = {MatchField::Ternary(0x00FF, 0x00FF)};
  narrow.priority = 10;
  ASSERT_TRUE(state.Insert(broad).ok());
  ASSERT_TRUE(state.Insert(narrow).ok());
  EXPECT_EQ(state.Lookup({0x12FF})->priority, 10);
  EXPECT_EQ(state.Lookup({0x1200})->priority, 1);
}

TEST(TableState, DuplicateInsertAndModifyDelete) {
  Table schema;
  schema.name = "t";
  schema.keys = {{"meta.x", MatchKind::kExact, 16}};
  schema.actions = {"a", "b"};
  schema.size = 2;
  TableState state(&schema);
  TableEntry e;
  e.table = "t";
  e.match = {MatchField::Exact(1)};
  e.action = "a";
  ASSERT_TRUE(state.Insert(e).ok());
  EXPECT_FALSE(state.Insert(e).ok());  // duplicate
  e.action = "b";
  ASSERT_TRUE(state.Modify(e).ok());
  EXPECT_EQ(state.Lookup({1})->action, "b");
  ASSERT_TRUE(state.Remove(e).ok());
  EXPECT_FALSE(state.Remove(e).ok());  // already gone
  EXPECT_EQ(state.Lookup({1}), nullptr);

  // Capacity enforced.
  TableEntry e1 = e, e2 = e, e3 = e;
  e1.match = {MatchField::Exact(1)};
  e2.match = {MatchField::Exact(2)};
  e3.match = {MatchField::Exact(3)};
  ASSERT_TRUE(state.Insert(e1).ok());
  ASSERT_TRUE(state.Insert(e2).ok());
  EXPECT_FALSE(state.Insert(e3).ok());
}

TEST(P4Program, ValidateCatchesMistakes) {
  auto program = *snvs::SnvsP4Program();  // copy a known-good program
  program.tables[0].actions.push_back("NoSuchAction");
  EXPECT_FALSE(program.Validate().ok());

  auto program2 = *snvs::SnvsP4Program();
  program2.ingress.push_back(ControlNode::Apply("NoSuchTable"));
  EXPECT_FALSE(program2.Validate().ok());

  auto program3 = *snvs::SnvsP4Program();
  program3.parser[0].select = FieldRef("ethernet.nope");
  EXPECT_FALSE(program3.Validate().ok());

  auto program4 = *snvs::SnvsP4Program();
  program4.headers[0].fields[0].width = 100;
  EXPECT_FALSE(program4.Validate().ok());
}

TEST(RuntimeClient, ValidatesWrites) {
  auto program = snvs::SnvsP4Program();
  Switch device(program);
  RuntimeClient client(&device);

  TableEntry entry;
  entry.table = "Dmac";
  entry.match = {MatchField::Exact(10), MatchField::Exact(0xAABBCCDDEEFF)};
  entry.action = "Forward";
  entry.action_args = {3};
  EXPECT_TRUE(client.Insert(entry).ok());

  TableEntry bad = entry;
  bad.table = "NoTable";
  EXPECT_FALSE(client.Insert(bad).ok());

  bad = entry;
  bad.match.pop_back();
  EXPECT_FALSE(client.Insert(bad).ok());  // arity

  bad = entry;
  bad.match[0] = MatchField::Exact(0x1FFF);  // exceeds bit<12>
  EXPECT_FALSE(client.Insert(bad).ok());

  bad = entry;
  bad.action = "Flood";  // not permitted in Dmac
  EXPECT_FALSE(client.Insert(bad).ok());

  bad = entry;
  bad.action_args = {};  // wrong arity
  EXPECT_FALSE(client.Insert(bad).ok());

  bad = entry;
  bad.action_args = {0x1FFFF};  // exceeds bit<16> parameter
  EXPECT_FALSE(client.Insert(bad).ok());
}

TEST(RuntimeClient, BatchValidatesBeforeApplying) {
  auto program = snvs::SnvsP4Program();
  Switch device(program);
  RuntimeClient client(&device);
  TableEntry good;
  good.table = "FloodVlan";
  good.match = {MatchField::Exact(10)};
  good.action = "Flood";
  good.action_args = {11};
  TableEntry bad = good;
  bad.action = "NoSuchAction";
  Status result = client.Write({{UpdateType::kInsert, good},
                                {UpdateType::kInsert, bad}});
  EXPECT_FALSE(result.ok());
  // Validation failed before anything applied.
  EXPECT_EQ(device.GetTable("FloodVlan")->size(), 0u);
}

class InterpreterTest : public ::testing::Test {
 protected:
  InterpreterTest()
      : program_(snvs::SnvsP4Program()),
        device_(program_),
        client_(&device_) {}

  void ConfigureAccessPort(uint64_t port, uint64_t vlan) {
    TableEntry admit;
    admit.table = "InVlanUntagged";
    admit.match = {MatchField::Exact(port)};
    admit.action = "SetAccessVlan";
    admit.action_args = {vlan};
    ASSERT_TRUE(client_.Insert(admit).ok());
    TableEntry egress;
    egress.table = "OutVlan";
    egress.match = {MatchField::Exact(port), MatchField::Exact(vlan)};
    egress.action = "EmitUntagged";
    egress.action_args = {};
    ASSERT_TRUE(client_.Insert(egress).ok());
  }

  std::shared_ptr<const P4Program> program_;
  Switch device_;
  RuntimeClient client_;
};

TEST_F(InterpreterTest, ParserRejectsTruncatedPacket) {
  auto out = device_.ProcessPacket(PacketIn{1, {0xAA, 0xBB}});
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(device_.stats().parse_errors, 1u);
}

TEST_F(InterpreterTest, UnconfiguredPortDrops) {
  net::Packet frame = net::MakeEthernetFrame(
      Mac(0, 0, 0, 0, 0, 2), Mac(0, 0, 0, 0, 0, 1), 0x0800, {});
  auto out = device_.ProcessPacket(PacketIn{5, frame});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
  EXPECT_EQ(device_.stats().dropped, 1u);
}

TEST_F(InterpreterTest, UnicastForwardAfterManualEntries) {
  ConfigureAccessPort(1, 10);
  ConfigureAccessPort(2, 10);
  TableEntry fwd;
  fwd.table = "Dmac";
  fwd.match = {MatchField::Exact(10), MatchField::Exact(0x02)};
  fwd.action = "Forward";
  fwd.action_args = {2};
  ASSERT_TRUE(client_.Insert(fwd).ok());

  net::Packet frame = net::MakeEthernetFrame(
      Mac(0, 0, 0, 0, 0, 2), Mac(0, 0, 0, 0, 0, 1), 0x0800, {0x55});
  auto out = device_.ProcessPacket(PacketIn{1, frame});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].port, 2u);
  EXPECT_EQ((*out)[0].packet, frame);  // untagged in, untagged out
}

TEST_F(InterpreterTest, DigestRaisedOnSMacMiss) {
  ConfigureAccessPort(1, 10);
  net::Packet frame = net::MakeEthernetFrame(
      Mac(0, 0, 0, 0, 0, 9), Mac(0, 0, 0, 0, 0, 7), 0x0800, {});
  ASSERT_TRUE(device_.ProcessPacket(PacketIn{1, frame}).ok());
  auto digests = device_.TakeDigests();
  ASSERT_EQ(digests.size(), 1u);
  EXPECT_EQ(digests[0].name, "MacLearn");
  ASSERT_EQ(digests[0].fields.size(), 3u);
  EXPECT_EQ(digests[0].fields[0], 1u);    // ingress port
  EXPECT_EQ(digests[0].fields[1], 10u);   // vlan
  EXPECT_EQ(digests[0].fields[2], 7u);    // src mac
  EXPECT_TRUE(device_.TakeDigests().empty());  // drained
}

TEST_F(InterpreterTest, MulticastReplicatesExceptSource) {
  ConfigureAccessPort(1, 10);
  ConfigureAccessPort(2, 10);
  ConfigureAccessPort(3, 10);
  TableEntry flood;
  flood.table = "FloodVlan";
  flood.match = {MatchField::Exact(10)};
  flood.action = "Flood";
  flood.action_args = {11};
  ASSERT_TRUE(client_.Insert(flood).ok());
  ASSERT_TRUE(client_.SetMulticastGroup(11, {1, 2, 3}).ok());

  net::Packet frame = net::MakeEthernetFrame(
      Mac::Broadcast(), Mac(0, 0, 0, 0, 0, 1), 0x0800, {});
  auto out = device_.ProcessPacket(PacketIn{1, frame});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);  // 2 and 3; source 1 pruned
}

TEST_F(InterpreterTest, VlanPushPopRoundTrip) {
  // Trunk ingress (tagged) to access egress (untagged) and vice versa is
  // covered by the snvs integration tests; here, exercise push/pop at the
  // header level directly.
  ConfigureAccessPort(1, 42);
  TableEntry trunk_egress;
  trunk_egress.table = "OutVlan";
  trunk_egress.match = {MatchField::Exact(7), MatchField::Exact(42)};
  trunk_egress.action = "EmitTagged";
  trunk_egress.action_args = {42};
  ASSERT_TRUE(client_.Insert(trunk_egress).ok());
  TableEntry fwd;
  fwd.table = "Dmac";
  fwd.match = {MatchField::Exact(42), MatchField::Exact(0x02)};
  fwd.action = "Forward";
  fwd.action_args = {7};
  ASSERT_TRUE(client_.Insert(fwd).ok());

  net::Packet untagged = net::MakeEthernetFrame(
      Mac(0, 0, 0, 0, 0, 2), Mac(0, 0, 0, 0, 0, 1), 0x0800, {0xAB});
  auto out = device_.ProcessPacket(PacketIn{1, untagged});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  // The output must carry an 802.1Q tag with vid 42.
  net::PacketReader reader((*out)[0].packet);
  reader.Skip(12);
  EXPECT_EQ(*reader.ReadU16(), 0x8100u);
  EXPECT_EQ(*reader.ReadBits(4), 0u);
  EXPECT_EQ(*reader.ReadBits(12), 42u);
  EXPECT_EQ(*reader.ReadU16(), 0x0800u);
  EXPECT_EQ(*reader.ReadU8(), 0xABu);
}


TEST_F(InterpreterTest, PerEntryCounters) {
  ConfigureAccessPort(1, 10);
  ConfigureAccessPort(2, 10);
  TableEntry fwd;
  fwd.table = "Dmac";
  fwd.match = {MatchField::Exact(10), MatchField::Exact(0x02)};
  fwd.action = "Forward";
  fwd.action_args = {2};
  ASSERT_TRUE(client_.Insert(fwd).ok());
  net::Packet frame = net::MakeEthernetFrame(
      Mac(0, 0, 0, 0, 0, 2), Mac(0, 0, 0, 0, 0, 1), 0x0800, {});
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(device_.ProcessPacket(PacketIn{1, frame}).ok());
  }
  auto counters = client_.ReadCounters("Dmac");
  ASSERT_TRUE(counters.ok());
  ASSERT_EQ(counters->size(), 1u);
  EXPECT_EQ((*counters)[0].second, 3u);
}

TEST_F(InterpreterTest, StatsCountPackets) {
  ConfigureAccessPort(1, 10);
  net::Packet frame = net::MakeEthernetFrame(
      Mac(0, 0, 0, 0, 0, 2), Mac(0, 0, 0, 0, 0, 1), 0x0800, {});
  (void)device_.ProcessPacket(PacketIn{1, frame});
  (void)device_.ProcessPacket(PacketIn{9, frame});  // unconfigured: drop
  EXPECT_EQ(device_.stats().packets_in, 2u);
  EXPECT_GE(device_.stats().dropped, 1u);
}

}  // namespace
}  // namespace nerpa::p4
