file(REMOVE_RECURSE
  "CMakeFiles/test_snvs_property.dir/test_snvs_property.cc.o"
  "CMakeFiles/test_snvs_property.dir/test_snvs_property.cc.o.d"
  "test_snvs_property"
  "test_snvs_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snvs_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
