file(REMOVE_RECURSE
  "libnerpa_p4.a"
)
