file(REMOVE_RECURSE
  "CMakeFiles/nerpa_net.dir/ip.cc.o"
  "CMakeFiles/nerpa_net.dir/ip.cc.o.d"
  "CMakeFiles/nerpa_net.dir/mac.cc.o"
  "CMakeFiles/nerpa_net.dir/mac.cc.o.d"
  "CMakeFiles/nerpa_net.dir/packet.cc.o"
  "CMakeFiles/nerpa_net.dir/packet.cc.o.d"
  "libnerpa_net.a"
  "libnerpa_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nerpa_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
