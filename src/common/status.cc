#include "common/status.h"

namespace nerpa {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid argument";
    case StatusCode::kNotFound: return "not found";
    case StatusCode::kAlreadyExists: return "already exists";
    case StatusCode::kFailedPrecondition: return "failed precondition";
    case StatusCode::kTypeError: return "type error";
    case StatusCode::kParseError: return "parse error";
    case StatusCode::kConstraintError: return "constraint error";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kPermissionDenied: return "permission denied";
    case StatusCode::kDeadlineExceeded: return "deadline exceeded";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

Status InvalidArgument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFound(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExists(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status FailedPrecondition(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status TypeError(std::string message) {
  return Status(StatusCode::kTypeError, std::move(message));
}
Status ParseError(std::string message) {
  return Status(StatusCode::kParseError, std::move(message));
}
Status ConstraintError(std::string message) {
  return Status(StatusCode::kConstraintError, std::move(message));
}
Status Internal(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status PermissionDenied(std::string message) {
  return Status(StatusCode::kPermissionDenied, std::move(message));
}
Status DeadlineExceeded(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}

}  // namespace nerpa
