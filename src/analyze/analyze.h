// Full-stack static analysis (the `nerpa_check` backend).
//
// Takes the same ingredients a deployment wires together — an OVSDB schema,
// a P4 pipeline, the hand-written control-plane rules, and the binding
// options — and checks the *whole stack* statically:
//
//   * dlog lints (NW1xx): unbound head variables, unused relations and
//     rules, duplicate rules, stratification violations, singleton
//     variables — reported at precise line:column spans.
//   * cross-plane consistency (NW2xx): declaration shapes vs. the generated
//     bindings, value-range proofs for casts and arithmetic flowing into
//     bit<w> table columns (seeded from OVSDB column constraints), LPM
//     prefix-length bounds, ternary/range priority ranges, permitted-action
//     coverage, outputs bound to no table, digests never read.
//   * P4 IR reachability (NW3xx): tables never applied, actions no table
//     permits, parser states unreachable from start.
//
// The paper's pitch is that the three planes type-check together; this
// module is the next step — they *lint* together, before anything runs.
#ifndef NERPA_ANALYZE_ANALYZE_H_
#define NERPA_ANALYZE_ANALYZE_H_

#include <map>
#include <string>
#include <vector>

#include "analyze/diag.h"
#include "common/status.h"
#include "nerpa/bindings.h"
#include "ovsdb/schema.h"
#include "p4/ir.h"

namespace nerpa::analyze {

struct AnalyzeOptions {
  /// Output relations consumed by the controller's multicast-group plumbing
  /// rather than a P4 table; exempt from NW201.
  std::vector<std::string> multicast_relations;
  /// `rules` is a complete program (relation declarations included), e.g. a
  /// file a user maintains; the generated declarations are checked against
  /// it (NW204) instead of being prepended.
  bool rules_include_decls = false;
  /// Monitor coverage audit (NW208).  Describes the deployment's monitor
  /// configuration: `monitored_columns[table]` lists the columns the
  /// controller's OVSDB monitor streams (an empty vector means every
  /// column), and `on_demand_columns[table]` the columns it fetches lazily.
  /// When either map is non-empty, every column a dlog input relation pulls
  /// from its OVSDB table must be covered by one of the two, or NW208
  /// fires — data the controller would silently never see.  With both maps
  /// empty the audit is off (the default monitor subscribes to everything).
  std::map<std::string, std::vector<std::string>> monitored_columns;
  std::map<std::string, std::vector<std::string>> on_demand_columns;
};

struct StackInput {
  const ovsdb::DatabaseSchema* schema = nullptr;  // optional
  const p4::P4Program* p4 = nullptr;              // optional (validated)
  std::string rules;                              // control-plane source
  BindingOptions binding_options;
};

struct Analysis {
  std::vector<Diagnostic> diagnostics;
  /// The control-plane source the spans refer to (generated declarations
  /// prepended unless rules_include_decls).
  std::string dlog_source;

  int errors() const;
  int warnings() const;
  bool clean() const { return diagnostics.empty(); }

  /// {"errors": N, "warnings": N, "diagnostics": [...]}.
  Json ToJson() const;
};

/// Analyzes a full stack.  Returns a Status error only on misuse (e.g. a
/// schema without a P4 program when bindings are required); everything the
/// analysis *finds* — including parse and compile failures in the inputs —
/// comes back as diagnostics.
Result<Analysis> AnalyzeStack(const StackInput& input,
                              const AnalyzeOptions& options = {});

/// Control-plane-only analysis of a complete dlog program (declarations
/// included).  Runs the NW0xx/NW1xx checks; also the fuzzing entry point.
Analysis AnalyzeDlog(std::string_view source,
                     const AnalyzeOptions& options = {});

}  // namespace nerpa::analyze

#endif  // NERPA_ANALYZE_ANALYZE_H_
