// Minimal leveled logging to stderr.  The controller runtime logs plane
// synchronization events at kInfo and internal diagnostics at kDebug.
#ifndef NERPA_COMMON_LOG_H_
#define NERPA_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace nerpa {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted (default kWarning, so tests and
/// benches stay quiet unless something is wrong).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

// The message is built unconditionally and suppressed at destruction when
// below the active level; log statements are rare enough that this is fine.
#define LOG_DEBUG ::nerpa::internal::LogMessage(::nerpa::LogLevel::kDebug, __FILE__, __LINE__)
#define LOG_INFO ::nerpa::internal::LogMessage(::nerpa::LogLevel::kInfo, __FILE__, __LINE__)
#define LOG_WARNING ::nerpa::internal::LogMessage(::nerpa::LogLevel::kWarning, __FILE__, __LINE__)
#define LOG_ERROR ::nerpa::internal::LogMessage(::nerpa::LogLevel::kError, __FILE__, __LINE__)

}  // namespace nerpa

#endif  // NERPA_COMMON_LOG_H_
