file(REMOVE_RECURSE
  "libnerpa_ofp.a"
)
