# Empty compiler generated dependencies file for ip_fabric.
# This may be replaced when dependencies are built.
