// Baseline controllers for the paper's comparisons.
//
// 1. FullRecomputeController — the conventional design §2.1 criticizes:
//    on every configuration change it recomputes the complete desired
//    data-plane state and diffs it against what is installed.  Work per
//    change is proportional to network size.
//
// 2. ImperativeIncrementalController — the hand-written incremental style
//    of ovn-controller / the eBay engine (§2.2): explicit callbacks per
//    input table, hand-maintained indexes, hand-written retraction logic.
//    Work per change is proportional to the change, but the code is the
//    thing the paper argues is unmaintainable — compare its size against
//    the snvs rules (E3) and its bug surface against the engine's
//    randomized equivalence tests.
//
// Both compute the same function as the snvs Datalog rules (VLAN
// admission, flooding, egress tagging, ACLs, mirrors, MAC learning),
// emitting the same logical (relation, row) pairs so benches can compare
// them directly against dlog::Engine outputs.
#ifndef NERPA_BASELINE_IMPERATIVE_H_
#define NERPA_BASELINE_IMPERATIVE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace nerpa::baseline {

/// Management-plane state used by the baselines (mirrors the snvs schema).
struct PortConfig {
  std::string name;
  int64_t port = 0;
  bool trunk = false;
  int64_t tag = 0;               // access vlan
  std::vector<int64_t> trunks;   // trunk vlans
};

struct MirrorConfig {
  std::string name;
  int64_t src_port = 0;
  int64_t out_port = 0;
};

struct AclConfig {
  int64_t mac = 0;
  int64_t vlan = 0;
  bool allow = false;
};

struct LearnEvent {
  int64_t port = 0;
  int64_t vlan = 0;
  int64_t mac = 0;
  int64_t seq = 0;
};

/// A logical data-plane row: (table, key/args tuple).  Using one flat type
/// keeps the baselines comparable to dlog output deltas.
struct LogicalEntry {
  std::string table;
  std::vector<int64_t> values;

  auto operator<=>(const LogicalEntry&) const = default;
};

using EntrySet = std::set<LogicalEntry>;

/// Absolute path of imperative.cc at build time (the E3 LOC table measures
/// the hand-written incremental controller from it).
extern const char* const kImperativeSourcePath;

/// Desired-state function shared by both baselines and (semantically) by
/// the Datalog rules: computes every data-plane entry from scratch.
EntrySet ComputeDesiredState(const std::map<std::string, PortConfig>& ports,
                             const std::map<std::string, MirrorConfig>& mirrors,
                             const std::vector<AclConfig>& acls,
                             const std::vector<LearnEvent>& learns);

/// Sink receiving install (+1) / remove (-1) entry operations.
using EntrySink = std::function<void(const LogicalEntry&, int)>;

/// The conventional controller: recompute-all + diff on every change.
class FullRecomputeController {
 public:
  explicit FullRecomputeController(EntrySink sink) : sink_(std::move(sink)) {}

  void AddPort(PortConfig port);
  void RemovePort(const std::string& name);
  void AddMirror(MirrorConfig mirror);
  void AddAcl(AclConfig acl);
  void RemoveAcl(int64_t mac, int64_t vlan);
  void Learn(LearnEvent event);

  const EntrySet& installed() const { return installed_; }
  uint64_t recompute_count() const { return recompute_count_; }

 private:
  void Recompute();

  std::map<std::string, PortConfig> ports_;
  std::map<std::string, MirrorConfig> mirrors_;
  std::vector<AclConfig> acls_;
  std::vector<LearnEvent> learns_;
  EntrySet installed_;
  EntrySink sink_;
  uint64_t recompute_count_ = 0;
};

/// The hand-written incremental controller: per-event handlers compute the
/// exact delta.  Note the hand-maintained indexes and the careful
/// retraction logic in the implementation — this is what §2.2 says takes
/// "an order of magnitude" more code than the declarative version and is
/// hard to get right (our unit tests diff it against ComputeDesiredState).
class ImperativeIncrementalController {
 public:
  explicit ImperativeIncrementalController(EntrySink sink)
      : sink_(std::move(sink)) {}

  void AddPort(PortConfig port);
  void RemovePort(const std::string& name);
  void AddMirror(MirrorConfig mirror);
  void AddAcl(AclConfig acl);
  void RemoveAcl(int64_t mac, int64_t vlan);
  void Learn(LearnEvent event);

  const EntrySet& installed() const { return installed_; }

 private:
  void Install(LogicalEntry entry);
  void Remove(const LogicalEntry& entry);

  // Hand-maintained derived indexes (the error-prone part).
  // vlan -> ports carrying it, split by tagging.
  std::map<int64_t, std::set<int64_t>> vlan_untagged_ports_;
  std::map<int64_t, std::set<int64_t>> vlan_tagged_ports_;
  // (vlan, mac) -> best (seq, port).
  std::map<std::pair<int64_t, int64_t>, std::pair<int64_t, int64_t>>
      best_learn_;

  std::map<std::string, PortConfig> ports_;
  std::map<std::string, MirrorConfig> mirrors_;
  EntrySet installed_;
  EntrySink sink_;

  void AddPortVlan(int64_t port, int64_t vlan, bool tagged);
  void RemovePortVlan(int64_t port, int64_t vlan, bool tagged);
};

}  // namespace nerpa::baseline

#endif  // NERPA_BASELINE_IMPERATIVE_H_
