// JSON-RPC plumbing for the OVSDB wire protocol (RFC 7047 §4: JSON-RPC
// 1.0 over a stream socket, messages framed as concatenated JSON values).
#ifndef NERPA_OVSDB_JSONRPC_H_
#define NERPA_OVSDB_JSONRPC_H_

#include <functional>
#include <optional>
#include <string>

#include "common/json.h"
#include "common/status.h"

namespace nerpa::ovsdb {

/// One JSON-RPC message: a request (method + params + id), a notification
/// (method + params, null id), or a response (result/error + id).
struct JsonRpcMessage {
  enum class Kind { kRequest, kNotification, kResponse };

  Kind kind = Kind::kRequest;
  std::string method;   // request / notification
  Json params;          // request / notification (array)
  Json id;              // request / response
  Json result;          // response
  Json error;           // response (null when ok)
  /// Extension field: the request's absolute deadline as a MonotonicNanos
  /// instant (valid across processes on one host), 0 = none.  Carried on
  /// the envelope rather than in params so every method propagates it
  /// uniformly; peers that predate it ignore the extra key.
  int64_t deadline_nanos = 0;

  Json ToJson() const;
  static Result<JsonRpcMessage> FromJson(const Json& json);

  static JsonRpcMessage Request(std::string method, Json params, Json id);
  static JsonRpcMessage Notification(std::string method, Json params);
  static JsonRpcMessage Response(Json result, Json id);
  static JsonRpcMessage ErrorResponse(Json error, Json id);
};

/// Incremental splitter for a stream of concatenated JSON values: feed raw
/// bytes, collect complete top-level documents.  Tracks nesting depth and
/// string/escape state; no re-parsing of partial input.
class JsonStreamSplitter {
 public:
  /// Appends bytes; invokes `on_document(text)` for each completed
  /// top-level JSON value.  Returns an error on structurally impossible
  /// input (e.g. unbalanced closers).
  Status Feed(std::string_view bytes,
              const std::function<Status(std::string_view)>& on_document);

 private:
  std::string buffer_;
  int depth_ = 0;
  bool in_string_ = false;
  bool escaped_ = false;
};

}  // namespace nerpa::ovsdb

#endif  // NERPA_OVSDB_JSONRPC_H_
