# Empty dependencies file for ovsdb_server.
# This may be replaced when dependencies are built.
