#include "nerpa/controller.h"

#include <algorithm>

#include "common/log.h"
#include "common/strings.h"

namespace nerpa {

Controller::Controller(ovsdb::Database* db,
                       std::shared_ptr<const dlog::Program> program,
                       std::shared_ptr<const p4::P4Program> p4_program,
                       Bindings bindings, Options options)
    : db_(db),
      program_(std::move(program)),
      p4_program_(std::move(p4_program)),
      bindings_(std::move(bindings)),
      options_(std::move(options)) {}

Controller::~Controller() {
  if (monitor_id_ != 0) db_->RemoveMonitor(monitor_id_);
}

Status Controller::AddDevice(std::string name, p4::RuntimeClient* client) {
  if (started_) {
    return FailedPrecondition("cannot add devices after Start()");
  }
  for (const Device& device : devices_) {
    if (device.name == name) {
      return AlreadyExists("device '" + name + "' already registered");
    }
  }
  devices_.push_back(Device{std::move(name), client});
  return Status::Ok();
}

Status Controller::Start() {
  if (started_) return FailedPrecondition("controller already started");
  NERPA_RETURN_IF_ERROR(TypeCheck(*program_, bindings_));
  // The multicast relation, when configured, must be declared by hand with
  // the documented shape.
  if (!options_.multicast_relation.empty()) {
    int id = program_->FindRelation(options_.multicast_relation);
    if (id < 0) {
      return NotFound("multicast relation '" + options_.multicast_relation +
                      "' is not declared");
    }
    const dlog::RelationDecl& decl = program_->relation(id);
    size_t expected = bindings_.options.with_device_column ? 3 : 2;
    if (decl.role != dlog::RelationRole::kOutput ||
        decl.columns.size() != expected) {
      return TypeError(StrFormat(
          "multicast relation '%s' must be an output relation with %zu "
          "columns ([device: string,] group: bit<16>, port: bit<16>)",
          decl.name.c_str(), expected));
    }
  }
  engine_ = std::make_unique<dlog::Engine>(program_);
  started_ = true;
  // Outputs derived from facts.
  dlog::TxnDelta initial = engine_->TakeInitialDelta();
  NERPA_RETURN_IF_ERROR(ApplyOutputDelta(initial));
  // Subscribe to every bound management-plane table.  The monitor delivers
  // the current database contents immediately as inserts.
  std::vector<std::string> tables;
  for (const OvsdbBinding& binding : bindings_.ovsdb_tables) {
    tables.push_back(binding.table);
  }
  monitor_id_ = db_->AddMonitor(
      tables, [this](const ovsdb::TableUpdates& updates) {
        OnOvsdbUpdate(updates);
      });
  return last_error_;
}

void Controller::OnOvsdbUpdate(const ovsdb::TableUpdates& updates) {
  Status status = ProcessOvsdbUpdates(updates);
  if (!status.ok()) {
    ++stats_.errors;
    if (last_error_.ok()) last_error_ = status;
    LOG_ERROR << "controller: failed to process management update: "
              << status.ToString();
  }
}

Status Controller::ProcessOvsdbUpdates(const ovsdb::TableUpdates& updates) {
  ++stats_.ovsdb_updates;
  for (const auto& [table_name, rows] : updates) {
    const OvsdbBinding* binding = bindings_.FindOvsdbTable(table_name);
    if (binding == nullptr) continue;  // not bound; ignore
    const ovsdb::TableSchema* schema = db_->schema().FindTable(table_name);
    for (const auto& [uuid, update] : rows) {
      if (update.old_row) {
        NERPA_ASSIGN_OR_RETURN(dlog::Row row,
                               OvsdbRowToDlog(*schema, *update.old_row));
        NERPA_RETURN_IF_ERROR(
            engine_->Delete(binding->relation, std::move(row)));
      }
      if (update.new_row) {
        NERPA_ASSIGN_OR_RETURN(dlog::Row row,
                               OvsdbRowToDlog(*schema, *update.new_row));
        NERPA_RETURN_IF_ERROR(
            engine_->Insert(binding->relation, std::move(row)));
      }
    }
  }
  NERPA_ASSIGN_OR_RETURN(dlog::TxnDelta delta, engine_->Commit());
  ++stats_.dlog_txns;
  return ApplyOutputDelta(delta);
}

Status Controller::WriteEntry(const std::string& device, p4::UpdateType type,
                              const p4::TableEntry& entry) {
  bool routed = !device.empty();
  bool any = false;
  for (const Device& candidate : devices_) {
    if (routed && candidate.name != device) continue;
    any = true;
    NERPA_RETURN_IF_ERROR(
        candidate.client->Write({p4::Update{type, entry}}));
    if (type == p4::UpdateType::kInsert) {
      ++stats_.entries_inserted;
    } else if (type == p4::UpdateType::kDelete) {
      ++stats_.entries_deleted;
    }
  }
  if (routed && !any) {
    return NotFound("output row targets unknown device '" + device + "'");
  }
  return Status::Ok();
}

Status Controller::ApplyOutputDelta(const dlog::TxnDelta& delta) {
  // Deletes first so that modify (retract+assert of the same match key)
  // never collides with the still-installed old entry.
  struct PendingInsert {
    std::string device;
    p4::TableEntry entry;
  };
  std::vector<PendingInsert> inserts;
  for (const auto& [relation, rows] : delta.outputs) {
    if (relation == options_.multicast_relation) {
      NERPA_RETURN_IF_ERROR(ApplyMulticastDelta(rows));
      continue;
    }
    const TableBinding* binding = bindings_.FindTable(relation);
    if (binding == nullptr) {
      LOG_WARNING << "controller: output relation '" << relation
                  << "' is not bound to a P4 table; ignoring its delta";
      continue;
    }
    for (const auto& [row, direction] : rows) {
      NERPA_ASSIGN_OR_RETURN(auto converted,
                             DlogRowToEntry(*binding, *p4_program_, row));
      if (direction < 0) {
        NERPA_RETURN_IF_ERROR(WriteEntry(converted.first,
                                         p4::UpdateType::kDelete,
                                         converted.second));
      } else {
        inserts.push_back(PendingInsert{std::move(converted.first),
                                        std::move(converted.second)});
      }
    }
  }
  for (const PendingInsert& pending : inserts) {
    NERPA_RETURN_IF_ERROR(
        WriteEntry(pending.device, p4::UpdateType::kInsert, pending.entry));
  }
  return Status::Ok();
}

Status Controller::ApplyMulticastDelta(const dlog::SetDelta& delta) {
  bool with_device = bindings_.options.with_device_column;
  std::set<std::pair<std::string, uint32_t>> dirty;
  for (const auto& [row, direction] : delta) {
    size_t base = with_device ? 1 : 0;
    std::string device = with_device ? row[0].as_string() : "";
    uint32_t group = static_cast<uint32_t>(row[base].as_bit());
    uint64_t port = row[base + 1].as_bit();
    auto key = std::make_pair(device, group);
    auto& members = multicast_members_[key];
    if (direction > 0) {
      if (std::find(members.begin(), members.end(), port) == members.end()) {
        members.push_back(port);
        std::sort(members.begin(), members.end());
      }
    } else {
      members.erase(std::remove(members.begin(), members.end(), port),
                    members.end());
    }
    dirty.insert(key);
  }
  for (const auto& key : dirty) {
    const auto& [device, group] = key;
    const std::vector<uint64_t>& members = multicast_members_[key];
    bool routed = !device.empty();
    for (const Device& candidate : devices_) {
      if (routed && candidate.name != device) continue;
      NERPA_RETURN_IF_ERROR(
          candidate.client->SetMulticastGroup(group, members));
      ++stats_.multicast_updates;
    }
    if (members.empty()) multicast_members_.erase(key);
  }
  return Status::Ok();
}

Status Controller::SyncDataPlaneNotifications() {
  if (!started_) return FailedPrecondition("controller not started");
  bool any = false;
  Status first_error;
  for (Device& device : devices_) {
    device.client->SubscribeDigests([&](const p4::DigestMessage& message) {
      const DigestBinding* binding = bindings_.FindDigest(message.name);
      if (binding == nullptr) return;
      dlog::Row row =
          DigestToDlog(*binding, message, device.name, digest_seq_++);
      Status status = engine_->Insert(binding->relation, std::move(row));
      if (!status.ok() && first_error.ok()) first_error = status;
      ++stats_.digests;
      any = true;
    });
    device.client->PollDigests();
  }
  NERPA_RETURN_IF_ERROR(first_error);
  if (!any) return Status::Ok();
  NERPA_ASSIGN_OR_RETURN(dlog::TxnDelta delta, engine_->Commit());
  ++stats_.dlog_txns;
  return ApplyOutputDelta(delta);
}

}  // namespace nerpa
