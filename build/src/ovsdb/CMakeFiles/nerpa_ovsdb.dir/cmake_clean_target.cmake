file(REMOVE_RECURSE
  "libnerpa_ovsdb.a"
)
