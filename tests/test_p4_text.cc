// Tests for the textual P4 frontend: parsing, diagnostics, round-trip
// through ToP4Text, and semantic equivalence of the parsed snvs pipeline.
#include <gtest/gtest.h>

#include "p4/interpreter.h"
#include "p4/text.h"
#include "snvs/snvs.h"

namespace nerpa::p4 {
namespace {

constexpr const char* kMinimal = R"p4(
program mini;
header ethernet {
  bit<48> dstAddr;
  bit<48> srcAddr;
  bit<16> etherType;
}
metadata { bit<4> color; }
parser {
  state start {
    extract(ethernet);
    goto accept;
  }
}
action Out(bit<16> port) { output(port); meta.color = 2; }
action Toss() { drop(); }
table Fwd {
  key = { ethernet.dstAddr: exact; }
  actions = { Out; }
  default_action = Toss;
  size = 128;
}
ingress { apply(Fwd); }
egress { }
deparser { emit(ethernet); }
)p4";

TEST(P4Text, ParsesMinimalProgram) {
  auto program = ParseP4Text(kMinimal);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ((*program)->name, "mini");
  ASSERT_EQ((*program)->tables.size(), 1u);
  EXPECT_EQ((*program)->tables[0].size, 128u);
  EXPECT_EQ((*program)->tables[0].default_action, "Toss");
  const Action* out = (*program)->FindAction("Out");
  ASSERT_NE(out, nullptr);
  ASSERT_EQ(out->ops.size(), 2u);
  EXPECT_EQ(out->ops[0].kind, ActionOp::Kind::kOutput);
  EXPECT_EQ(out->ops[0].param, "port");
  EXPECT_EQ(out->ops[1].kind, ActionOp::Kind::kSetFieldConst);
  EXPECT_EQ(out->ops[1].immediate, 2u);
}

TEST(P4Text, ParsedMinimalProgramForwards) {
  auto program = ParseP4Text(kMinimal);
  ASSERT_TRUE(program.ok());
  Switch device(*program);
  TableEntry entry;
  entry.table = "Fwd";
  entry.match = {MatchField::Exact(0xBB)};
  entry.action = "Out";
  entry.action_args = {7};
  ASSERT_TRUE(device.GetTable("Fwd")->Insert(entry).ok());
  net::Packet frame = net::MakeEthernetFrame(
      net::Mac(0, 0, 0, 0, 0, 0xBB), net::Mac(0, 0, 0, 0, 0, 0xAA), 0x0800,
      {1, 2});
  auto out = device.ProcessPacket(PacketIn{1, frame});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].port, 7u);
  // Unknown destination hits the Toss default.
  frame = net::MakeEthernetFrame(net::Mac(0, 0, 0, 0, 0, 0xCC),
                                 net::Mac(0, 0, 0, 0, 0, 0xAA), 0x0800, {});
  out = device.ProcessPacket(PacketIn{1, frame});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(P4Text, SnvsSourceParses) {
  auto program = ParseP4Text(snvs::SnvsP4Source());
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ((*program)->tables.size(), 8u);
  EXPECT_EQ((*program)->digests.size(), 1u);
  EXPECT_EQ((*program)->actions.size(), 12u);
}

TEST(P4Text, RoundTripThroughPrinter) {
  for (const char* source : {kMinimal}) {
    auto first = ParseP4Text(source);
    ASSERT_TRUE(first.ok());
    std::string printed = ToP4Text(**first);
    auto second = ParseP4Text(printed);
    ASSERT_TRUE(second.ok()) << second.status().ToString() << "\n" << printed;
    EXPECT_EQ(printed, ToP4Text(**second));
  }
  // And the real program.
  auto first = ParseP4Text(snvs::SnvsP4Source());
  ASSERT_TRUE(first.ok());
  std::string printed = ToP4Text(**first);
  auto second = ParseP4Text(printed);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(printed, ToP4Text(**second));
}

TEST(P4Text, Diagnostics) {
  // Unknown table in control.
  EXPECT_FALSE(ParseP4Text(R"p4(
    header h { bit<8> x; }
    parser { state start { extract(h); goto accept; } }
    ingress { apply(Nope); }
    deparser { }
  )p4").ok());
  // Action uses a parameter it does not declare.
  EXPECT_FALSE(ParseP4Text(R"p4(
    header h { bit<8> x; }
    parser { state start { goto accept; } }
    action A() { output(port); }
    deparser { }
  )p4").ok());
  // Bad match kind.
  EXPECT_FALSE(ParseP4Text(R"p4(
    header h { bit<8> x; }
    parser { state start { extract(h); goto accept; } }
    action A() { }
    table T { key = { h.x: fuzzy; } actions = { A; } }
    ingress { apply(T); }
    deparser { }
  )p4").ok());
  // Width out of range.
  EXPECT_FALSE(ParseP4Text("header h { bit<99> x; }").ok());
  // Digest that does not exist.
  EXPECT_FALSE(ParseP4Text(R"p4(
    header h { bit<8> x; }
    parser { state start { extract(h); goto accept; } }
    action A() { digest(Nothing); }
    deparser { }
  )p4").ok());
}

TEST(P4Text, NegatedValidAndFieldConditions) {
  auto program = ParseP4Text(R"p4(
    header h { bit<8> x; }
    header g { bit<8> y; }
    metadata { bit<2> m; }
    parser { state start { extract(h); goto accept; } }
    action A() { }
    table T { key = { h.x: exact; } actions = { A; } }
    table U { key = { h.x: exact; } actions = { A; } }
    ingress {
      if (!valid(g)) { apply(T); }
      if (meta.m != 1) { apply(U); }
    }
    deparser { emit(h); }
  )p4");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ((*program)->ingress.size(), 2u);
  EXPECT_EQ((*program)->ingress[0].pred, ControlNode::Pred::kHeaderInvalid);
  EXPECT_EQ((*program)->ingress[1].pred, ControlNode::Pred::kFieldNe);
}

}  // namespace
}  // namespace nerpa::p4
