# Empty dependencies file for test_dlog_engine.
# This may be replaced when dependencies are built.
