#include "common/thread_pool.h"

#include <utility>

namespace nerpa {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Stop only once the queue is drained so ~ThreadPool never drops
      // submitted work.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace nerpa
