
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ofp/flow.cc" "src/ofp/CMakeFiles/nerpa_ofp.dir/flow.cc.o" "gcc" "src/ofp/CMakeFiles/nerpa_ofp.dir/flow.cc.o.d"
  "/root/repo/src/ofp/p4c_of.cc" "src/ofp/CMakeFiles/nerpa_ofp.dir/p4c_of.cc.o" "gcc" "src/ofp/CMakeFiles/nerpa_ofp.dir/p4c_of.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nerpa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nerpa_net.dir/DependInfo.cmake"
  "/root/repo/build/src/p4/CMakeFiles/nerpa_p4.dir/DependInfo.cmake"
  "/root/repo/build/src/dlog/CMakeFiles/nerpa_dlog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
