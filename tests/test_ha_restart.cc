// End-to-end crash/recovery tests: kill a full snvs stack, rebuild it from
// the durable state directory, and verify that (a) the management plane
// comes back bit-identical, (b) resynchronization issues zero data-plane
// writes when the devices still hold the right entries and exactly the
// diff when they do not, and (c) the controller converges through injected
// write faults via retry/backoff.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "ha/durable.h"
#include "net/packet.h"
#include "snvs/snvs.h"

namespace nerpa::snvs {
namespace {

using net::Mac;

constexpr const char* kTables[] = {"InVlanUntagged", "InVlanTagged",
                                   "PortMirror",     "Acl",
                                   "SMac",           "Dmac",
                                   "FloodVlan",      "OutVlan"};

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/nerpa_ha_restart_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Canonical dump of one device's entire data-plane state (all tables plus
/// multicast groups) for cross-run equality checks.
std::string DeviceState(const p4::Switch& sw) {
  std::string out;
  for (const char* table : kTables) {
    std::vector<std::string> lines;
    for (const p4::TableEntry* entry : sw.GetTable(table)->Entries()) {
      lines.push_back(entry->ToString());
    }
    std::sort(lines.begin(), lines.end());
    for (const std::string& line : lines) out += line + "\n";
  }
  for (const auto& [group, ports] : sw.multicast_groups()) {
    out += "group " + std::to_string(group);
    for (uint64_t port : ports) out += " " + std::to_string(port);
    out += "\n";
  }
  return out;
}

size_t TotalEntries(const p4::Switch& sw) {
  size_t n = 0;
  for (const char* table : kTables) n += sw.GetTable(table)->size();
  return n;
}

/// A data plane that outlives the controller stack, simulating switches
/// that keep their tables across a controller crash.
struct SurvivingDevice {
  explicit SurvivingDevice(std::shared_ptr<const p4::P4Program> program)
      : sw(std::make_unique<p4::Switch>(std::move(program))),
        client(std::make_unique<p4::RuntimeClient>(sw.get())) {}
  std::unique_ptr<p4::Switch> sw;
  std::unique_ptr<p4::RuntimeClient> client;
};

TEST(HaRestart, KillAndRestoreIsConvergedWithZeroWrites) {
  std::string dir = FreshDir("converged");
  SurvivingDevice device(SnvsP4Program());

  Json db_before;
  {
    SnvsOptions options;
    options.ha_dir = dir;
    options.external_clients = {device.client.get()};
    auto stack = BuildSnvsStack(options);
    ASSERT_TRUE(stack.ok()) << stack.status().ToString();
    EXPECT_FALSE((*stack)->store()->recovered());
    ASSERT_TRUE((*stack)->AddPort("p1", 1, "access", 10).ok());
    ASSERT_TRUE((*stack)->AddPort("p2", 2, "access", 10).ok());
    ASSERT_TRUE((*stack)->AddPort("t1", 3, "trunk", 0, {10, 20}).ok());
    ASSERT_TRUE((*stack)->AddAclRule(0xAA, 10, false).ok());
    db_before = ha::DurableStore::SnapshotJson((*stack)->db(), 0);
    EXPECT_GT(TotalEntries(*device.sw), 0u);
  }  // crash: stack destroyed, no checkpoint; device keeps its tables

  std::string device_before = DeviceState(*device.sw);
  uint64_t writes_before = device.client->write_count();

  SnvsOptions options;
  options.ha_dir = dir;
  options.external_clients = {device.client.get()};
  auto stack = BuildSnvsStack(options);
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();
  EXPECT_TRUE((*stack)->store()->recovered());

  // Management plane restored bit-identically (same rows, same uuids).
  EXPECT_EQ(ha::DurableStore::SnapshotJson((*stack)->db(), 0), db_before);
  // The device already held the desired state: resync read it, diffed, and
  // wrote nothing.
  EXPECT_EQ(device.client->write_count(), writes_before);
  EXPECT_EQ(DeviceState(*device.sw), device_before);
  const auto& stats = (*stack)->controller().stats();
  EXPECT_EQ(stats.resyncs, 1u);
  EXPECT_GT(stats.resync_reads, 0u);
  EXPECT_EQ(stats.resync_inserted, 0u);
  EXPECT_EQ(stats.resync_deleted, 0u);
  EXPECT_EQ(stats.resync_modified, 0u);

  // The restored stack is live: new transactions flow to the device.
  ASSERT_TRUE((*stack)->AddPort("p4", 4, "access", 20).ok());
  EXPECT_GT(device.client->write_count(), writes_before);
}

TEST(HaRestart, ResyncRestoresWipedDeviceAndSparesSurvivor) {
  std::string dir = FreshDir("wiped");
  auto program = SnvsP4Program();
  SurvivingDevice survivor(program);
  SurvivingDevice wiped(program);

  {
    SnvsOptions options;
    options.ha_dir = dir;
    options.external_clients = {survivor.client.get(), wiped.client.get()};
    auto stack = BuildSnvsStack(options);
    ASSERT_TRUE(stack.ok()) << stack.status().ToString();
    ASSERT_TRUE((*stack)->AddPort("p1", 1, "access", 10).ok());
    ASSERT_TRUE((*stack)->AddPort("p2", 2, "access", 10).ok());
    ASSERT_TRUE((*stack)->AddAclRule(0xBB, 10, true).ok());
  }

  std::string reference = DeviceState(*survivor.sw);
  size_t reference_entries = TotalEntries(*survivor.sw);
  size_t reference_groups = survivor.sw->multicast_groups().size();
  ASSERT_GT(reference_entries, 0u);

  // The second device reboots and comes back empty.
  wiped = SurvivingDevice(program);
  uint64_t survivor_writes = survivor.client->write_count();

  SnvsOptions options;
  options.ha_dir = dir;
  options.external_clients = {survivor.client.get(), wiped.client.get()};
  auto stack = BuildSnvsStack(options);
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();

  // Survivor untouched; the wiped device received exactly the full state.
  EXPECT_EQ(survivor.client->write_count(), survivor_writes);
  EXPECT_EQ(DeviceState(*wiped.sw), reference);
  EXPECT_EQ(wiped.client->write_count(),
            reference_entries + reference_groups);
  const auto& stats = (*stack)->controller().stats();
  EXPECT_EQ(stats.resyncs, 2u);
  EXPECT_EQ(stats.resync_inserted, reference_entries + reference_groups);
  EXPECT_EQ(stats.resync_deleted, 0u);
  EXPECT_EQ(stats.resync_modified, 0u);
}

TEST(HaRestart, ResyncRepairsStaleExtraAndModifiedEntries) {
  std::string dir = FreshDir("stale");
  SurvivingDevice device(SnvsP4Program());

  {
    SnvsOptions options;
    options.ha_dir = dir;
    options.external_clients = {device.client.get()};
    auto stack = BuildSnvsStack(options);
    ASSERT_TRUE(stack.ok()) << stack.status().ToString();
    ASSERT_TRUE((*stack)->AddPort("p1", 1, "access", 10).ok());
    ASSERT_TRUE((*stack)->AddAclRule(0xCC, 10, true).ok());
  }
  std::string reference = DeviceState(*device.sw);

  // While the controller is down the device diverges three ways:
  // 1. a desired entry disappears (stale device lost it),
  auto flood = device.client->ReadTable("FloodVlan");
  ASSERT_TRUE(flood.ok());
  ASSERT_EQ(flood->size(), 1u);
  ASSERT_TRUE(device.client->Delete((*flood)[0]).ok());
  // 2. an extra entry appears that no output relation derives,
  p4::TableEntry extra;
  extra.table = "Acl";
  extra.match = {p4::MatchField::Exact(99), p4::MatchField::Exact(0xDD)};
  extra.action = "AclDrop";
  ASSERT_TRUE(device.client->Insert(extra).ok());
  // 3. a desired entry's action is flipped.
  auto acl = device.client->ReadTable("Acl");
  ASSERT_TRUE(acl.ok());
  for (p4::TableEntry entry : *acl) {
    if (entry.match[1].value == 0xCC) {
      entry.action = "AclDrop";
      entry.action_args.clear();
      ASSERT_TRUE(device.client->Modify(entry).ok());
    }
  }

  SnvsOptions options;
  options.ha_dir = dir;
  options.external_clients = {device.client.get()};
  auto stack = BuildSnvsStack(options);
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();

  // Exactly the three divergences were repaired, nothing else written.
  const auto& stats = (*stack)->controller().stats();
  EXPECT_EQ(stats.resync_inserted, 1u);  // FloodVlan restored
  EXPECT_EQ(stats.resync_deleted, 1u);   // bogus Acl entry removed
  EXPECT_EQ(stats.resync_modified, 1u);  // Acl action repaired
  EXPECT_EQ(DeviceState(*device.sw), reference);
}

TEST(HaRestart, DeviceRegisteredAfterStartIsResynced) {
  auto program = SnvsP4Program();
  auto stack = BuildSnvsStack().value();
  ASSERT_TRUE(stack->AddPort("p1", 1, "access", 10).ok());
  ASSERT_TRUE(stack->AddPort("p2", 2, "access", 10).ok());
  size_t reference_entries = TotalEntries(stack->device());
  ASSERT_GT(reference_entries, 0u);

  // A second switch joins long after Start(): it is brought up to the full
  // desired state immediately.
  SurvivingDevice late(program);
  ASSERT_TRUE(
      stack->controller().AddDevice("late", late.client.get()).ok());
  EXPECT_EQ(DeviceState(*late.sw), DeviceState(stack->device()));
  EXPECT_EQ(stack->controller().stats().resyncs, 1u);

  // And it tracks subsequent updates like any other device.
  ASSERT_TRUE(stack->AddPort("p3", 3, "access", 10).ok());
  EXPECT_EQ(DeviceState(*late.sw), DeviceState(stack->device()));
}

TEST(HaRestart, DigestSeqStaysMonotoneAcrossRestart) {
  std::string dir = FreshDir("digest_seq");
  int64_t seq_at_checkpoint = 0;
  {
    SnvsOptions options;
    options.ha_dir = dir;
    auto stack = BuildSnvsStack(options);
    ASSERT_TRUE(stack.ok()) << stack.status().ToString();
    ASSERT_TRUE((*stack)->AddPort("p1", 1, "access", 10).ok());
    ASSERT_TRUE((*stack)->AddPort("p2", 2, "access", 10).ok());
    // Traffic drives MAC-learning digests, which consume sequence numbers.
    auto out = (*stack)->InjectPacket(
        0, 1,
        net::MakeEthernetFrame(Mac(0, 0, 0, 0, 0, 0xBB),
                               Mac(0, 0, 0, 0, 0, 0xAA), 0x0800, {1, 2, 3}));
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    seq_at_checkpoint = (*stack)->controller().digest_seq();
    ASSERT_GT(seq_at_checkpoint, 0);
    ASSERT_TRUE((*stack)->Checkpoint().ok());
  }

  SnvsOptions options;
  options.ha_dir = dir;
  auto stack = BuildSnvsStack(options);
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();
  // The cursor picks up where the checkpoint left it — re-learned MACs get
  // strictly larger seqs, so most-recent-wins ordering stays correct.
  EXPECT_EQ((*stack)->controller().digest_seq(), seq_at_checkpoint);

  auto out = (*stack)->InjectPacket(
      0, 2,
      net::MakeEthernetFrame(Mac(0, 0, 0, 0, 0, 0xAA),
                             Mac(0, 0, 0, 0, 0, 0xBB), 0x0800, {1, 2, 3}));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_GT((*stack)->controller().digest_seq(), seq_at_checkpoint);
}

TEST(HaRestart, CorruptSnapshotFallsBackToPreviousGeneration) {
  std::string dir = FreshDir("snap_fallback");
  Json db_before;
  {
    SnvsOptions options;
    options.ha_dir = dir;
    auto stack = BuildSnvsStack(options);
    ASSERT_TRUE(stack.ok()) << stack.status().ToString();
    ASSERT_TRUE((*stack)->AddPort("p1", 1, "access", 10).ok());
    ASSERT_TRUE((*stack)->Checkpoint().ok());
    ASSERT_TRUE((*stack)->AddPort("p2", 2, "access", 10).ok());
    ASSERT_TRUE((*stack)->Checkpoint().ok());
    // Live WAL records on top of the (about to be corrupted) snapshot.
    ASSERT_TRUE((*stack)->AddPort("p3", 3, "access", 20).ok());
    db_before = ha::DurableStore::SnapshotJson((*stack)->db(), 0);
  }

  // Bit rot inside the current snapshot: still valid JSON, wrong CRC.
  {
    std::string path = dir + "/snapshot.json";
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    size_t pos = text.find("access");
    ASSERT_NE(pos, std::string::npos);
    text[pos] = 'b';
    std::ofstream out(path, std::ios::trunc);
    out << text;
  }

  // Recovery detects the mismatch and rebuilds from the previous
  // generation: snapshot.json.1 + wal.jsonl.1 + wal.jsonl reconstruct the
  // exact same management plane, p3 included.
  SnvsOptions options;
  options.ha_dir = dir;
  auto stack = BuildSnvsStack(options);
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();
  EXPECT_TRUE((*stack)->store()->recovered());
  EXPECT_EQ((*stack)->store()->stats().snapshot_fallbacks, 1u);
  EXPECT_EQ(ha::DurableStore::SnapshotJson((*stack)->db(), 0), db_before);
}

TEST(HaRestart, TornFramedWalTailIsDroppedOnRestart) {
  std::string dir = FreshDir("torn_framed");
  Json db_before;
  {
    SnvsOptions options;
    options.ha_dir = dir;
    auto stack = BuildSnvsStack(options);
    ASSERT_TRUE(stack.ok()) << stack.status().ToString();
    ASSERT_TRUE((*stack)->AddPort("p1", 1, "access", 10).ok());
    db_before = ha::DurableStore::SnapshotJson((*stack)->db(), 0);
  }
  // Crash mid-append: a framed record whose tail never hit the disk.  The
  // stored CRC covers the full record, so the prefix cannot pass.
  {
    std::string full = ha::WriteAheadLog::FrameRecord(
        Json(Json::Object{{"never", Json(true)}}));
    std::ofstream out(dir + "/wal.jsonl", std::ios::app);
    out << full.substr(0, full.size() / 2);
  }
  SnvsOptions options;
  options.ha_dir = dir;
  auto stack = BuildSnvsStack(options);
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();
  EXPECT_EQ((*stack)->store()->stats().truncated_tail_records, 1u);
  EXPECT_EQ(ha::DurableStore::SnapshotJson((*stack)->db(), 0), db_before);
}

TEST(HaRestart, ControllerConvergesThroughInjectedWriteFaults) {
  // Reference run: no faults.
  auto reference = BuildSnvsStack().value();
  // Faulty run: every fifth write (in expectation) fails; the controller
  // retries with backoff kept tiny so the test is fast.
  SnvsOptions options;
  options.fault.write_fail_probability = 0.2;
  options.fault.seed = 12345;
  options.retry.max_attempts = 8;
  options.retry.initial_backoff_nanos = 1000;  // 1 us
  options.retry.max_backoff_nanos = 10000;
  auto faulty = BuildSnvsStack(options);
  ASSERT_TRUE(faulty.ok()) << faulty.status().ToString();

  for (SnvsStack* stack : {reference.get(), faulty->get()}) {
    ASSERT_TRUE(stack->AddPort("p1", 1, "access", 10).ok());
    ASSERT_TRUE(stack->AddPort("p2", 2, "access", 10).ok());
    ASSERT_TRUE(stack->AddPort("t1", 3, "trunk", 0, {10, 20}).ok());
    ASSERT_TRUE(stack->AddAclRule(0xAA, 10, false).ok());
    ASSERT_TRUE(stack->AddMirror("m1", 1, 3).ok());
    ASSERT_TRUE(stack->DeletePort("p2").ok());
    ASSERT_TRUE(stack->controller().last_error().ok());
  }

  // Same data-plane state despite the injected failures.
  EXPECT_EQ(DeviceState((*faulty)->device()), DeviceState(reference->device()));

  // The faults actually fired and the retry machinery is visible in stats.
  ASSERT_NE((*faulty)->faulty(0), nullptr);
  EXPECT_GT((*faulty)->faulty(0)->fault_stats().injected_failures, 0u);
  const auto& stats = (*faulty)->controller().stats();
  EXPECT_GT(stats.retries, 0u);
  EXPECT_EQ(stats.write_failures, 0u);  // nothing exhausted its attempts
  ASSERT_TRUE(stats.device_failures.count("sw0"));
  EXPECT_EQ(stats.device_failures.at("sw0"),
            (*faulty)->faulty(0)->fault_stats().injected_failures);
}

TEST(HaRestart, WarmStartRestoresEngineAndPreservesLearnedMacs) {
  std::string dir = FreshDir("warm_start");
  SurvivingDevice device(SnvsP4Program());

  std::string device_before;
  int64_t macs_before = 0;
  {
    SnvsOptions options;
    options.ha_dir = dir;
    options.external_clients = {device.client.get()};
    auto stack = BuildSnvsStack(options);
    ASSERT_TRUE(stack.ok()) << stack.status().ToString();
    ASSERT_TRUE((*stack)->AddPort("p1", 1, "access", 10).ok());
    ASSERT_TRUE((*stack)->AddPort("p2", 2, "access", 10).ok());
    ASSERT_TRUE((*stack)->AddPort("t1", 3, "trunk", 0, {10, 20}).ok());
    // Learned MACs live only in the engine (digest-fed, not in the durable
    // management plane): exactly the state only a checkpoint can carry
    // across a restart.
    auto out = device.sw->ProcessPacket(p4::PacketIn{
        1, net::MakeEthernetFrame(Mac(0, 0, 0, 0, 0, 0xBB),
                                  Mac(0, 0, 0, 0, 0, 0xAA), 0x0800,
                                  {1, 2, 3})});
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    out = device.sw->ProcessPacket(p4::PacketIn{
        2, net::MakeEthernetFrame(Mac(0, 0, 0, 0, 0, 0xAA),
                                  Mac(0, 0, 0, 0, 0, 0xBB), 0x0800,
                                  {1, 2, 3})});
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    ASSERT_TRUE((*stack)->controller().SyncDataPlaneNotifications().ok());
    macs_before =
        static_cast<int64_t>((*stack)->controller().engine().Size("MacLearn"));
    ASSERT_GT(macs_before, 0);
    ASSERT_TRUE((*stack)->Checkpoint().ok());
    // Mutations after the checkpoint: the warm start has to reconcile the
    // stale sidecar against the (newer) recovered management plane.
    ASSERT_TRUE((*stack)->AddPort("p4", 4, "access", 20).ok());
    ASSERT_TRUE((*stack)->DeletePort("p2").ok());
    device_before = DeviceState(*device.sw);
  }  // crash; the device keeps its tables, the sidecar is one txn stale

  uint64_t writes_before = device.client->write_count();
  SnvsOptions options;
  options.ha_dir = dir;
  options.external_clients = {device.client.get()};
  auto stack = BuildSnvsStack(options);
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();
  EXPECT_TRUE((*stack)->store()->recovered());

  const auto& stats = (*stack)->controller().stats();
  EXPECT_EQ(stats.engine_restores, 1u);
  EXPECT_EQ(stats.engine_restore_rejections, 0u);
  // p2 was deleted after the checkpoint: catch-up reconciliation removed
  // its restored row.  (p4's insert arrives through the normal monitor
  // snapshot; set semantics make re-inserts of restored rows no-ops.)
  EXPECT_GE(stats.catchup_deletes, 1u);
  // The learned MACs survived the restart without any re-learning traffic.
  EXPECT_EQ((*stack)->controller().engine().Size("MacLearn"),
            static_cast<size_t>(macs_before));
  // The restored desired state matches the surviving device exactly —
  // including the Dmac entries a cold start would have torn down — so the
  // resync wrote nothing.
  EXPECT_EQ(device.client->write_count(), writes_before);
  EXPECT_EQ(DeviceState(*device.sw), device_before);

  // Still live after a warm start.
  ASSERT_TRUE((*stack)->AddPort("p5", 5, "access", 20).ok());
  EXPECT_GT(device.client->write_count(), writes_before);
}

TEST(HaRestart, CorruptEngineCheckpointFallsBackToColdStart) {
  std::string dir = FreshDir("ckpt_fallback");
  Json db_before;
  {
    SnvsOptions options;
    options.ha_dir = dir;
    auto stack = BuildSnvsStack(options);
    ASSERT_TRUE(stack.ok()) << stack.status().ToString();
    ASSERT_TRUE((*stack)->AddPort("p1", 1, "access", 10).ok());
    ASSERT_TRUE((*stack)->AddPort("t1", 3, "trunk", 0, {10, 20}).ok());
    ASSERT_TRUE((*stack)->Checkpoint().ok());
    db_before = ha::DurableStore::SnapshotJson((*stack)->db(), 0);
  }

  // Bit rot inside the sidecar blob: the CRC32 frame check must reject it.
  {
    std::string path = dir + "/engine.controller.ckpt";
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), 24u);
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 1);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // The checkpoint is an accelerator, never a correctness dependency:
  // recovery rejects the damaged sidecar, cold-starts the engine, and the
  // stack comes up fully converged anyway.
  SnvsOptions options;
  options.ha_dir = dir;
  auto stack = BuildSnvsStack(options);
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();
  EXPECT_TRUE((*stack)->store()->recovered());
  auto rejected = (*stack)->store()->ReadEngineCheckpoint("controller");
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInternal);
  const auto& stats = (*stack)->controller().stats();
  EXPECT_EQ(stats.engine_restores, 0u);
  EXPECT_EQ(ha::DurableStore::SnapshotJson((*stack)->db(), 0), db_before);
  // Cold start recomputed the full desired state and programmed it.
  EXPECT_GT(TotalEntries((*stack)->device()), 0u);
  ASSERT_TRUE((*stack)->AddPort("p2", 2, "access", 10).ok());
  ASSERT_TRUE((*stack)->controller().last_error().ok());
}

}  // namespace
}  // namespace nerpa::snvs
