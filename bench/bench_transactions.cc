// E7 — §4.1 "Streaming APIs for performance": changes are grouped into
// transactions, and batching matters.
//
// google-benchmark micro-benchmarks of the per-transaction machinery at
// every plane: Datalog commit overhead vs batch size, OVSDB transact
// cost, P4Runtime writes, and per-packet pipeline execution.  The headline
// series is dlog_commit/batch: per-row cost should fall sharply as rows
// are batched into one transaction, which is why Nerpa propagates OVSDB's
// transaction grouping end to end instead of feeding changes one by one.
#include <benchmark/benchmark.h>

#include "common/strings.h"

#include "dlog/engine.h"
#include "ovsdb/database.h"
#include "p4/runtime.h"
#include "snvs/snvs.h"

namespace nerpa {
namespace {

constexpr const char* kJoinProgram = R"(
input relation E(a: bigint, b: bigint)
input relation F(b: bigint, c: bigint)
output relation J(a: bigint, c: bigint)
J(a, c) :- E(a, b), F(b, c).
)";

dlog::Row IntRow(int64_t a, int64_t b) {
  return dlog::Row{dlog::Value::Int(a), dlog::Value::Int(b)};
}

/// Per-row cost of a commit carrying `batch` inserted rows.
void BM_DlogCommitBatch(benchmark::State& state) {
  auto program = dlog::Program::Parse(kJoinProgram).value();
  dlog::Engine engine(program);
  // Pre-populate the joined side (1:1 join keys so the per-row derived
  // work is constant and the per-transaction floor is visible).
  for (int i = 0; i < 4096; ++i) {
    (void)engine.Insert("F", IntRow(i, i));
  }
  (void)engine.Commit();
  int64_t batch = state.range(0);
  int64_t next = 0;
  for (auto _ : state) {
    for (int64_t i = 0; i < batch; ++i) {
      (void)engine.Insert("E", IntRow(next, next % 4096));
      ++next;
    }
    benchmark::DoNotOptimize(engine.Commit());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_DlogCommitBatch)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

/// An empty commit: the fixed floor of the transaction machinery.
void BM_DlogEmptyCommit(benchmark::State& state) {
  auto program = dlog::Program::Parse(kJoinProgram).value();
  dlog::Engine engine(program);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Commit());
  }
}
BENCHMARK(BM_DlogEmptyCommit);

/// OVSDB insert transactions (typed builder -> JSON ops -> commit).
void BM_OvsdbInsertTxn(benchmark::State& state) {
  ovsdb::Database db(snvs::SnvsSchema());
  int64_t next = 0;
  for (auto _ : state) {
    ovsdb::TxnBuilder txn(&db);
    txn.Insert("Port", {
                           {"name", ovsdb::Datum::String(
                                        StrFormat("p%lld",
                                                  static_cast<long long>(
                                                      next)))},
                           {"port", ovsdb::Datum::Integer(next % 65536)},
                           {"vlan_mode", ovsdb::Datum::String("access")},
                           {"tag", ovsdb::Datum::Integer(next % 4096)},
                       });
    benchmark::DoNotOptimize(txn.Commit());
    ++next;
  }
}
BENCHMARK(BM_OvsdbInsertTxn)->Iterations(20000);

/// P4Runtime exact-match table writes.
void BM_P4RuntimeWrite(benchmark::State& state) {
  auto program = snvs::SnvsP4Program();
  p4::Switch device(program);
  p4::RuntimeClient client(&device);
  uint64_t next = 0;
  for (auto _ : state) {
    p4::TableEntry entry;
    entry.table = "Dmac";
    entry.match = {p4::MatchField::Exact(next % 4096),
                   p4::MatchField::Exact(0x020000000000ULL + next)};
    entry.action = "Forward";
    entry.action_args = {next % 65536};
    benchmark::DoNotOptimize(client.Insert(std::move(entry)));
    ++next;
  }
}
BENCHMARK(BM_P4RuntimeWrite)->Iterations(100000);

/// Full per-packet pipeline execution (parse, 8 tables, deparse).
void BM_P4PacketPipeline(benchmark::State& state) {
  auto stack = snvs::BuildSnvsStack().value();
  (void)stack->AddPort("p1", 1, "access", 10);
  (void)stack->AddPort("p2", 2, "access", 10);
  net::Packet frame = net::MakeEthernetFrame(
      net::Mac(0, 0, 0, 0, 0, 0xBB), net::Mac(0, 0, 0, 0, 0, 0xAA), 0x0800,
      {1, 2, 3, 4});
  // Learn both MACs first so the steady state is unicast.
  (void)stack->InjectPacket(0, 1, frame);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stack->device().ProcessPacket(p4::PacketIn{1, frame}));
  }
}
BENCHMARK(BM_P4PacketPipeline);

/// End-to-end: one management-plane change through all three planes.
void BM_FullStackPortAdd(benchmark::State& state) {
  auto stack = snvs::BuildSnvsStack().value();
  int64_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stack->AddPort(
        StrFormat("p%lld", static_cast<long long>(next)), next % 65536,
        "access", next % 4096 + 1));
    ++next;
  }
}
BENCHMARK(BM_FullStackPortAdd)->Iterations(3000);

}  // namespace
}  // namespace nerpa

BENCHMARK_MAIN();
