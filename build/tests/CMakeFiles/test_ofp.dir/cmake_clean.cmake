file(REMOVE_RECURSE
  "CMakeFiles/test_ofp.dir/test_ofp.cc.o"
  "CMakeFiles/test_ofp.dir/test_ofp.cc.o.d"
  "test_ofp"
  "test_ofp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ofp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
