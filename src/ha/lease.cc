#include "ha/lease.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/strings.h"

namespace nerpa::ha {

namespace {

using ovsdb::kLeaderLeaseTable;
using ovsdb::kLeaseEpochColumn;
using ovsdb::kLeaseExpiryColumn;
using ovsdb::kLeaseHolderColumn;

Json LeaseRowJson(const Lease& lease) {
  Json::Object row;
  row[kLeaseEpochColumn] = Json(lease.epoch);
  row[kLeaseHolderColumn] = Json(lease.holder);
  row[kLeaseExpiryColumn] = Json(lease.expiry_nanos);
  return Json(std::move(row));
}

int64_t ScalarInteger(const ovsdb::Row& row, const char* column) {
  const ovsdb::Datum* datum = row.Find(column);
  if (datum == nullptr || datum->size() != 1) return 0;
  return datum->AsInteger();
}

std::string ScalarString(const ovsdb::Row& row, const char* column) {
  const ovsdb::Datum* datum = row.Find(column);
  if (datum == nullptr || datum->size() != 1) return "";
  return datum->AsString();
}

}  // namespace

LeaseManager::LeaseManager(ovsdb::Database* db, Options options)
    : db_(db), options_(std::move(options)) {
  assert(db_->schema().FindTable(kLeaderLeaseTable) != nullptr &&
         "database schema lacks the Leader_Lease table (WithLeaderLease)");
  if (!options_.clock) options_.clock = [] { return MonotonicNanos(); };
}

std::optional<Lease> LeaseManager::Read() const {
  std::vector<const ovsdb::Row*> rows = db_->GetRows(kLeaderLeaseTable);
  if (rows.empty()) return std::nullopt;
  const ovsdb::Row& row = *rows.front();
  Lease lease;
  lease.epoch = ScalarInteger(row, kLeaseEpochColumn);
  lease.holder = ScalarString(row, kLeaseHolderColumn);
  lease.expiry_nanos = ScalarInteger(row, kLeaseExpiryColumn);
  const_cast<LeaseManager*>(this)->last_observed_epoch_ =
      std::max(last_observed_epoch_, lease.epoch);
  return lease;
}

Status LeaseManager::CasInstall(const std::optional<Lease>& expected,
                                const Lease& next) {
  Json::Array ops;

  // CAS guard: the record must still be exactly what we read — or still
  // absent.  Both expiry and epoch are asserted, so a renewal that happened
  // between our read and this transaction fails the wait even though the
  // epoch did not move.
  Json::Object wait;
  wait["op"] = Json("wait");
  wait["table"] = Json(std::string(kLeaderLeaseTable));
  wait["where"] = Json(Json::Array{});
  wait["columns"] = Json(Json::Array{Json(std::string(kLeaseEpochColumn)),
                                     Json(std::string(kLeaseHolderColumn)),
                                     Json(std::string(kLeaseExpiryColumn))});
  wait["until"] = Json("==");
  Json::Array expected_rows;
  if (expected) expected_rows.push_back(LeaseRowJson(*expected));
  wait["rows"] = Json(std::move(expected_rows));
  ops.push_back(Json(std::move(wait)));

  Json::Object install;
  install["op"] = Json(expected ? "update" : "insert");
  install["table"] = Json(std::string(kLeaderLeaseTable));
  if (expected) install["where"] = Json(Json::Array{});
  install["row"] = LeaseRowJson(next);
  ops.push_back(Json(std::move(install)));

  return db_->Transact(Json(std::move(ops))).status();
}

Result<int64_t> LeaseManager::TryAcquire() {
  std::optional<Lease> current = Read();
  const int64_t now = options_.clock();

  if (current && !current->expired(now)) {
    if (current->holder != options_.holder_id) {
      holding_ = false;
      return FailedPrecondition(StrFormat(
          "lease held by '%s' (epoch %lld) for another %lld ns",
          current->holder.c_str(), static_cast<long long>(current->epoch),
          static_cast<long long>(current->expiry_nanos - now)));
    }
    // Still ours: renew in place, epoch unchanged.
    Lease next{current->epoch, options_.holder_id, now + options_.ttl_nanos};
    Status cas = CasInstall(current, next);
    if (!cas.ok()) {
      holding_ = false;
      return cas;
    }
    holding_ = true;
    held_epoch_ = current->epoch;
    return held_epoch_;
  }

  // Free (absent or expired): take it with a bumped epoch.  The bump floor
  // includes every epoch we have ever seen, so even a corrupted/reset
  // record cannot hand out an epoch that downstream fences already saw.
  const int64_t next_epoch =
      std::max(current ? current->epoch : 0, last_observed_epoch_) + 1;
  Lease next{next_epoch, options_.holder_id, now + options_.ttl_nanos};
  Status cas = CasInstall(current, next);
  if (!cas.ok()) {
    holding_ = false;
    return cas;
  }
  holding_ = true;
  held_epoch_ = next_epoch;
  last_observed_epoch_ = next_epoch;
  return held_epoch_;
}

Status LeaseManager::Renew() {
  if (!holding_) return FailedPrecondition("not holding the lease");
  std::optional<Lease> current = Read();
  const int64_t now = options_.clock();
  if (!current || current->epoch != held_epoch_ ||
      current->holder != options_.holder_id) {
    holding_ = false;
    return FailedPrecondition("lease lost: record superseded");
  }
  if (current->expired(now)) {
    holding_ = false;
    return FailedPrecondition("lease lost: expired before renewal");
  }
  Lease next{held_epoch_, options_.holder_id, now + options_.ttl_nanos};
  Status cas = CasInstall(current, next);
  if (!cas.ok()) holding_ = false;
  return cas;
}

Status LeaseManager::Release() {
  if (!holding_) return Status::Ok();
  holding_ = false;
  std::optional<Lease> current = Read();
  if (!current || current->epoch != held_epoch_ ||
      current->holder != options_.holder_id) {
    return Status::Ok();  // already superseded — nothing to give back
  }
  // Expire in place (epoch unchanged): the next acquirer bumps it.
  Lease next{held_epoch_, options_.holder_id, options_.clock()};
  return CasInstall(current, next);
}

bool LeaseCoordinator::Tick() {
  if (leading_) {
    if (manager_->Renew().ok()) return true;
    // Lease lost: self-demote.  Do not immediately re-acquire — the next
    // tick may, but the demotion edge must be observable first.
    leading_ = false;
    if (callbacks_.on_lose) callbacks_.on_lose();
    return false;
  }
  Result<int64_t> acquired = manager_->TryAcquire();
  if (!acquired.ok()) return false;
  const bool accepted =
      !callbacks_.on_acquire || callbacks_.on_acquire(acquired.value());
  if (!accepted) {
    manager_->Release();
    return false;
  }
  leading_ = true;
  return true;
}

void LeaseCoordinator::StepDown() {
  if (!leading_) return;
  leading_ = false;
  manager_->Release();
  if (callbacks_.on_lose) callbacks_.on_lose();
}

}  // namespace nerpa::ha
