#include "stacks.h"

#include <cstdlib>
#include <utility>

#include "common/strings.h"
#include "p4/text.h"
#include "snvs/snvs.h"

namespace nerpa::examples {

// --- ip_fabric (see ip_fabric.cpp for the demo this stack drives) ---

std::string FabricP4Source() {
  return R"p4(
program router;
header ethernet {
  bit<48> dstAddr;
  bit<48> srcAddr;
  bit<16> etherType;
}
header ipv4 {
  bit<8> ttl;
  bit<32> src;
  bit<32> dst;
}
parser {
  state start {
    extract(ethernet);
    select (ethernet.etherType) {
      0x0800: parse_ipv4;
      default: accept;
    }
  }
  state parse_ipv4 {
    extract(ipv4);
    goto accept;
  }
}
action Discard() { drop(); }
action Route(bit<16> port) { output(port); }
table IpRoute {
  key = { ipv4.dst: lpm; }
  actions = { Route; }
  default_action = Discard;
  size = 4096;
}
ingress {
  if (valid(ipv4)) {
    apply(IpRoute);
  }
}
egress { }
deparser {
  emit(ethernet);
  emit(ipv4);
}
)p4";
}

// Hand-written control plane: hop-counted recursive reachability
// (shortest path within a 6-hop diameter) + deterministic tie-breaking.
std::string FabricRules() {
  return R"(
// Cast management-plane integers once, below the recursive stratum
// (recursive rule heads must stay plain variables or var+const for DRed).
relation SubnetB(router: string, prefix: bit<32>, plen: bigint, port: bigint)
SubnetB(r, pfx as bit<32>, plen, p) :- Subnet(_, r, pfx, plen, p).

// A router reaches a subnet directly (0 hops), or through any link to a
// router that reaches it (one more hop; diameter-bounded so route loops
// cannot count to infinity).
relation Reach(router: string, prefix: bit<32>, plen: bigint,
               port: bigint, hops: bigint)
Reach(r, pfx, plen, p, 0) :- SubnetB(r, pfx, plen, p).
Reach(src, pfx, plen, p, h + 1) :-
    Link(_, src, dst, p), Reach(dst, pfx, plen, _, h), h < 6.

// Shortest path wins; among equal-length paths the lowest egress port.
relation BestHops(router: string, prefix: bit<32>, plen: bigint, h: bigint)
BestHops(r, pfx, plen, h) :-
    Reach(r, pfx, plen, _, h0), var h = min(h0) group_by (r, pfx, plen).
relation BestPort(router: string, prefix: bit<32>, plen: bigint, m: bigint)
BestPort(r, pfx, plen, m) :-
    BestHops(r, pfx, plen, h), Reach(r, pfx, plen, p, h),
    var m = min(p) group_by (r, pfx, plen).

IpRoute(r, pfx, plen, "Route", m as bit<16>) :- BestPort(r, pfx, plen, m).
)";
}

ovsdb::DatabaseSchema FabricSchema() {
  using ovsdb::BaseType;
  using ovsdb::ColumnType;
  ovsdb::DatabaseSchema schema;
  schema.name = "fabric";
  ovsdb::TableSchema link;
  link.name = "Link";
  link.columns = {
      {"src", ColumnType::Scalar(BaseType::String()), false, true},
      {"dst", ColumnType::Scalar(BaseType::String()), false, true},
      {"out_port", ColumnType::Scalar(BaseType::Integer(0, 65535)), false,
       true},
  };
  schema.tables.emplace("Link", std::move(link));
  ovsdb::TableSchema subnet;
  subnet.name = "Subnet";
  subnet.columns = {
      {"router", ColumnType::Scalar(BaseType::String()), false, true},
      {"prefix", ColumnType::Scalar(BaseType::Integer(0, 4294967295LL)),
       false, true},
      {"plen", ColumnType::Scalar(BaseType::Integer(0, 32)), false, true},
      {"out_port", ColumnType::Scalar(BaseType::Integer(0, 65535)), false,
       true},
  };
  schema.tables.emplace("Subnet", std::move(subnet));
  return schema;
}

// --- multi_device (see multi_device.cpp) ---

ovsdb::DatabaseSchema MultiDeviceSchema() {
  ovsdb::DatabaseSchema schema;
  schema.name = "fabric";
  ovsdb::TableSchema assignment;
  assignment.name = "Assignment";
  assignment.columns = {
      {"device", ovsdb::ColumnType::Scalar(ovsdb::BaseType::String()), false,
       true},
      {"port",
       ovsdb::ColumnType::Scalar(ovsdb::BaseType::Integer(0, 65535)), false,
       true},
      {"vlan", ovsdb::ColumnType::Scalar(ovsdb::BaseType::Integer(0, 4095)),
       false, true},
  };
  schema.tables.emplace("Assignment", std::move(assignment));
  return schema;
}

std::shared_ptr<const p4::P4Program> MultiDevicePipeline() {
  auto program = std::make_shared<p4::P4Program>();
  program->name = "fabric";
  program->headers = {
      {"ethernet", {{"dstAddr", 48}, {"srcAddr", 48}, {"etherType", 16}}}};
  program->metadata = {{"vlan", 12}};
  p4::ParserState start;
  start.name = "start";
  start.extracts = "ethernet";
  start.transitions = {{std::nullopt, "accept"}};
  program->parser = {start};
  program->actions = {
      {"Assign",
       {{"vid", 12}},
       {p4::ActionOp::SetFieldFromParam("meta.vlan", "vid")}},
      {"Discard", {}, {p4::ActionOp::Drop()}},
  };
  p4::Table table;
  table.name = "VlanMap";
  table.keys = {{"standard.ingress_port", p4::MatchKind::kExact, 0}};
  table.actions = {"Assign"};
  table.default_action = "Discard";
  program->tables = {table};
  program->ingress = {p4::ControlNode::Apply("VlanMap")};
  program->deparser = {"ethernet"};
  Status validated = program->Validate();
  if (!validated.ok()) std::abort();
  return program;
}

std::string MultiDeviceRules() {
  return R"(
VlanMap(d, p as bit<16>, "Assign", v as bit<12>) :- Assignment(_, d, p, v).
)";
}

// --- reachability (see reachability.cpp; §1 of the paper) ---

std::string ReachabilityRules() {
  return R"(
input relation GivenLabel(n1: bigint, label: string)
input relation Edge(n1: bigint, n2: bigint)
output relation Label(n: bigint, label: string)
Label(n1, label) :- GivenLabel(n1, label).
Label(n2, label) :- Label(n1, label), Edge(n1, n2).
)";
}

// --- registry ---

std::vector<std::string> StackNames() {
  return {"snvs", "ip_fabric", "multi_device", "reachability"};
}

Result<StackDef> GetStack(std::string_view name) {
  StackDef def;
  def.name = std::string(name);
  if (name == "snvs") {
    def.schema = snvs::SnvsSchema();
    def.p4 = snvs::SnvsP4Program();
    def.p4_source = snvs::SnvsP4Source();
    def.rules = snvs::SnvsRules();
    def.options.with_device_column = false;
    def.options.with_digest_seq = true;
    def.multicast_relations = {"MulticastGroup"};
    return def;
  }
  if (name == "ip_fabric") {
    def.schema = FabricSchema();
    NERPA_ASSIGN_OR_RETURN(def.p4, p4::ParseP4Text(FabricP4Source()));
    def.p4_source = FabricP4Source();
    def.rules = FabricRules();
    def.options.with_device_column = true;
    return def;
  }
  if (name == "multi_device") {
    def.schema = MultiDeviceSchema();
    def.p4 = MultiDevicePipeline();
    def.rules = MultiDeviceRules();
    def.options.with_device_column = true;
    return def;
  }
  if (name == "reachability") {
    def.rules = ReachabilityRules();
    return def;
  }
  return NotFound(StrFormat("no builtin stack named '%.*s'",
                            static_cast<int>(name.size()), name.data()));
}

}  // namespace nerpa::examples
