// Hot-standby snvs deployment: two controller replicas over one shared
// management plane and one shared set of switches.
//
//   * Both replicas run the full control plane hot (engine, multicast
//     bookkeeping, monitor deltas); only the leader writes devices.
//   * Leadership is a `Leader_Lease` row in the shared OVSDB
//     (ha::LeaseManager); the lease epoch is the fencing token stamped on
//     every data-plane write, so a deposed leader's in-flight writes are
//     rejected by the switches themselves (Switch::CheckFence) no matter
//     how stale its view of the lease is.
//   * The standby warm-loads the leader's engine checkpoints (SyncStandby)
//     so digest-derived state — learned MACs — survives a failover instead
//     of being re-learned from scratch.
//
// Everything is deterministic: Tick() pumps both replicas' lease
// coordinators in index order, and the lease clock is injectable, so tests
// and bench_failover can freeze or jump time to force expiry.
#ifndef NERPA_SNVS_HA_PAIR_H_
#define NERPA_SNVS_HA_PAIR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/watchdog.h"
#include "ha/durable.h"
#include "ha/fault.h"
#include "ha/lease.h"
#include "nerpa/controller.h"
#include "net/packet.h"
#include "ovsdb/database.h"
#include "p4/runtime.h"
#include "snvs/snvs.h"

namespace nerpa::snvs {

struct SnvsHaOptions {
  int devices = 1;

  /// When set, the shared management plane (including the Leader_Lease
  /// table) is durable under this directory; engine checkpoints persist as
  /// sidecars.  Empty = in-memory shared database (pure failover tests).
  std::string ha_dir;

  /// All ha_dir disk access goes through this Io (nullptr = the real
  /// filesystem); the chaos harness injects a corrupting ChaosIo here.
  ha::Io* io = nullptr;

  /// Write retry / circuit-breaker policy, applied to both replicas.
  Controller::RetryPolicy retry;
  Controller::BreakerPolicy breaker;

  /// Fault injection for the data plane.  Each replica gets its *own*
  /// FaultyRuntimeClient per switch (decorrelated seeds), matching the
  /// deployment reality that each controller has its own P4Runtime
  /// channel to each device.
  ha::FaultPolicy fault;

  /// Leader lease TTL.
  int64_t lease_ttl_nanos = 500'000'000;

  /// Injectable lease clock shared by both replicas (null = MonotonicNanos).
  /// Tests drive failover by jumping this past the expiry.
  std::function<int64_t()> clock;

  /// Optional shared watchdog (not owned).  Both controllers beat
  /// "controller.commit"; with a durable ha_dir the WAL arms
  /// "snvs.wal" around each append with `wal_stuck_timeout_nanos`, and
  /// Tick() self-demotes a leader whose WAL is stuck — it can no longer
  /// durably acknowledge commits, so handing off to the healthy standby
  /// beats limping along un-durable.
  Watchdog* watchdog = nullptr;
  int64_t wal_stuck_timeout_nanos = 2'000'000'000;

  /// Per-delta dispatch deadline forwarded to both controllers
  /// (Controller::Options::commit_deadline_nanos; 0 = unbounded).
  int64_t commit_deadline_nanos = 0;
};

/// A dual-controller snvs deployment (replica 0 and replica 1).
class SnvsHaPair {
 public:
  static constexpr size_t kReplicas = 2;

  ovsdb::Database& db() { return *db_raw_; }
  ha::DurableStore* store() { return store_.get(); }
  p4::Switch& device(size_t index = 0) { return *switches_[index]; }
  size_t device_count() const { return switches_.size(); }
  Controller& controller(size_t replica) {
    return *replicas_[replica].controller;
  }
  ha::LeaseManager& lease(size_t replica) { return *replicas_[replica].lease; }
  ha::LeaseCoordinator& coordinator(size_t replica) {
    return *replicas_[replica].coordinator;
  }
  /// Replica `replica`'s fault decorator for device `device`; nullptr when
  /// fault injection is off.
  ha::FaultyRuntimeClient* faulty(size_t replica, size_t device = 0);

  /// The current leader's replica index, or -1 when no replica leads
  /// (mid-failover, or before the first Tick()).  Derived from controller
  /// roles, not lease rows — a zombie that *believes* it leads counts
  /// until fencing demotes it.
  int leader() const;

  /// One scheduling quantum: pumps both replicas' lease coordinators in
  /// index order (leaders renew, followers try to acquire — acquisition
  /// runs Controller::Promote, which fences and resyncs).  When a
  /// watchdog is attached and the WAL is stuck, the leader steps down
  /// first (see SnvsHaOptions::watchdog).  Returns leader() afterwards.
  int Tick();

  /// Leader self-demotions triggered by a stuck WAL (see Tick()).
  uint64_t wal_demotions() const { return wal_demotions_; }

  /// Leader checkpoint: serializes the leader's engine (persisting the
  /// management-plane snapshot + sidecar when durable) and retains the
  /// blob in memory for SyncStandby().
  Status Checkpoint();

  /// Ships the latest Checkpoint() blob to every follower via
  /// Controller::ReloadEngineCheckpoint — the warm-standby path that
  /// carries learned MACs across a failover.  No-op when no checkpoint
  /// has been taken yet.
  Status SyncStandby();

  /// Crash-and-rebuild replica `replica` as a follower: its controller,
  /// clients, lease manager, and coordinator are destroyed (without
  /// releasing any held lease — crash semantics) and rebuilt cold, warm-
  /// started from the last checkpoint blob when one exists.
  Status RestartReplica(size_t replica);

  // --- Management-plane helpers (shared database; any replica's client
  // may commit — the control planes react through their monitors). ---

  Result<ovsdb::Uuid> AddPort(const std::string& name, int64_t port,
                              const std::string& vlan_mode, int64_t tag,
                              const std::vector<int64_t>& trunks = {});
  Status DeletePort(const std::string& name);
  Result<ovsdb::Uuid> AddMirror(const std::string& name, int64_t src_port,
                                int64_t out_port);
  Result<ovsdb::Uuid> AddAclRule(int64_t mac, int64_t vlan, bool allow);

  /// Injects a packet on `device`/`port`, then pumps the digest feedback
  /// loop through the current leader (digests queue in the switch when no
  /// replica leads — the next leader drains them).
  Result<std::vector<p4::PacketOut>> InjectPacket(size_t device,
                                                  uint64_t port,
                                                  const net::Packet& packet);

 private:
  friend Result<std::unique_ptr<SnvsHaPair>> BuildSnvsHaPair(
      const SnvsHaOptions& options);
  SnvsHaPair() = default;

  struct Replica {
    std::string id;
    std::vector<std::unique_ptr<p4::RuntimeClient>> clients;
    std::unique_ptr<Controller> controller;
    std::unique_ptr<ha::LeaseManager> lease;
    std::unique_ptr<ha::LeaseCoordinator> coordinator;
  };

  /// Builds (or rebuilds) one replica's controller + clients + lease
  /// machinery.  `warm_checkpoint` non-empty = warm-start the engine.
  Status BuildReplica(size_t index, const std::string& warm_checkpoint);

  /// First error recorded by any replica's controller (both react to
  /// every management-plane commit).
  Status AnyControllerError() const;

  SnvsHaOptions options_;
  std::unique_ptr<ha::DurableStore> store_;  // owns db when durable
  std::unique_ptr<ovsdb::Database> db_;      // owns db when not durable
  ovsdb::Database* db_raw_ = nullptr;
  std::shared_ptr<const p4::P4Program> p4_;
  std::vector<std::unique_ptr<p4::Switch>> switches_;  // shared data plane
  Bindings bindings_;
  std::shared_ptr<const dlog::Program> program_;
  std::string program_text_;
  std::string last_engine_checkpoint_;  // latest Checkpoint() blob
  int64_t recovered_digest_seq_ = 0;    // from a recovered durable store
  uint64_t wal_demotions_ = 0;          // stuck-WAL self-demotions
  Replica replicas_[kReplicas];
};

/// Builds a dual-controller deployment.  Both replicas start as followers;
/// the first Tick() elects replica 0 (deterministically — it ticks first).
Result<std::unique_ptr<SnvsHaPair>> BuildSnvsHaPair(
    const SnvsHaOptions& options = {});

}  // namespace nerpa::snvs

#endif  // NERPA_SNVS_HA_PAIR_H_
