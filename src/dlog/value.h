// Runtime values for the incremental Datalog engine.
//
// DDlog's value universe (booleans, integers, bit-vectors, strings, and
// structured data) is mirrored here.  Values are hashable and totally
// ordered so rows can live in z-set maps and arrangements.
#ifndef NERPA_DLOG_VALUE_H_
#define NERPA_DLOG_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/hash.h"

namespace nerpa::dlog {

class Value;

/// A tuple/vector payload; shared so copying Values is cheap.
using ValueVec = std::vector<Value>;

/// One Datalog runtime value: bool, signed 64-bit int, bit<N> (stored
/// zero-extended in a u64), string, or a vector/tuple of values.
class Value {
 public:
  Value() : rep_(false) {}
  static Value Bool(bool v) { return Value(Rep(v)); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Bit(uint64_t v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }
  static Value Tuple(ValueVec elems) {
    return Value(Rep(std::make_shared<const ValueVec>(std::move(elems))));
  }

  bool is_bool() const { return rep_.index() == 0; }
  bool is_int() const { return rep_.index() == 1; }
  bool is_bit() const { return rep_.index() == 2; }
  bool is_string() const { return rep_.index() == 3; }
  bool is_tuple() const { return rep_.index() == 4; }

  bool as_bool() const { return std::get<0>(rep_); }
  int64_t as_int() const { return std::get<1>(rep_); }
  uint64_t as_bit() const { return std::get<2>(rep_); }
  const std::string& as_string() const { return std::get<3>(rep_); }
  const ValueVec& as_tuple() const { return *std::get<4>(rep_); }

  /// Numeric view: int value or bit value as signed (for mixed arithmetic
  /// the type checker has already unified the operand types).
  int64_t NumericAsInt() const {
    return is_int() ? as_int() : static_cast<int64_t>(as_bit());
  }

  size_t Hash() const;
  bool operator==(const Value& o) const;
  bool operator!=(const Value& o) const { return !(*this == o); }
  bool operator<(const Value& o) const;

  /// Debug form: true, 42, "s", (a, b).
  std::string ToString() const;

 private:
  using Rep = std::variant<bool, int64_t, uint64_t, std::string,
                           std::shared_ptr<const ValueVec>>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

/// A relation row.
using Row = std::vector<Value>;

struct RowHash {
  size_t operator()(const Row& row) const {
    size_t seed = 0x9e3779b97f4a7c15ULL ^ row.size();
    for (const Value& value : row) HashCombine(seed, value.Hash());
    return seed;
  }
};

struct RowEq {
  bool operator()(const Row& a, const Row& b) const { return a == b; }
};

std::string RowToString(const Row& row);

}  // namespace nerpa::dlog

template <>
struct std::hash<nerpa::dlog::Value> {
  size_t operator()(const nerpa::dlog::Value& v) const noexcept {
    return v.Hash();
  }
};

#endif  // NERPA_DLOG_VALUE_H_
