// nerpa_check: full-stack static analysis from the command line.
//
// Usage:
//   nerpa_check --builtin <snvs|ip_fabric|multi_device|reachability> [flags]
//   nerpa_check --dlog rules.dl [--schema db.ovsschema] [--p4 pipe.p4] [flags]
//
// Flags:
//   --json            machine-readable output (stable NWxxx codes + spans)
//   --werror          exit nonzero on warnings, not just errors
//   --list-builtins   print the packaged stack names and exit
//   --monitored Table[:col1,col2]
//                     declare the monitor spec for NW208: the controller's
//                     OVSDB monitor streams these columns of Table (no
//                     colon = every column); repeatable
//   --on-demand Table:col1[,col2]
//                     columns of Table the controller fetches on demand
//                     instead of monitoring (NW208); repeatable
//
// File mode inputs:
//   --schema  an OVSDB schema in the JSON wire format ("tables": {...})
//   --p4      a pipeline in the textual P4 dialect (p4/text.h)
//   --dlog    control-plane rules; with both --schema and --p4 the generated
//             relation declarations are prepended (pass --decls-included if
//             the file already declares them; they are then shape-checked,
//             NW204)
//
// Exit codes: 0 clean (or warnings without --werror), 1 findings, 2 usage /
// input errors.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyze.h"
#include "common/strings.h"
#include "ovsdb/schema.h"
#include "p4/text.h"
#include "stacks.h"

using namespace nerpa;

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --builtin <name> [--json] [--werror]\n"
      "       %s --dlog <rules> [--schema <ovsschema>] [--p4 <p4>]\n"
      "          [--decls-included] [--json] [--werror]\n"
      "          [--monitored Table[:cols]]... [--on-demand Table:cols]...\n"
      "       %s --list-builtins\n",
      argv0, argv0, argv0);
  return 2;
}

std::optional<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream out;
  out << in.rdbuf();
  return std::move(out).str();
}

struct Args {
  std::string builtin;
  std::string schema_path;
  std::string p4_path;
  std::string dlog_path;
  bool decls_included = false;
  bool json = false;
  bool werror = false;
  bool list_builtins = false;
  std::map<std::string, std::vector<std::string>> monitored;
  std::map<std::string, std::vector<std::string>> on_demand;
};

/// "Table" or "Table:col1,col2" → an entry in a monitor-spec map.  A bare
/// table name covers every column.
bool ParseMonitorSpec(const char* text,
                      std::map<std::string, std::vector<std::string>>& spec) {
  std::string_view view = text;
  std::string table(view.substr(0, view.find(':')));
  if (table.empty()) return false;
  std::vector<std::string>& columns = spec[table];
  if (view.find(':') == std::string_view::npos) {
    columns.clear();  // bare name = all columns, even if listed before
    return true;
  }
  for (std::string_view column : Split(view.substr(table.size() + 1), ',')) {
    if (column.empty()) return false;
    columns.emplace_back(column);
  }
  return true;
}

bool ParseArgs(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--builtin") {
      const char* v = value();
      if (v == nullptr) return false;
      args.builtin = v;
    } else if (arg == "--schema") {
      const char* v = value();
      if (v == nullptr) return false;
      args.schema_path = v;
    } else if (arg == "--p4") {
      const char* v = value();
      if (v == nullptr) return false;
      args.p4_path = v;
    } else if (arg == "--dlog") {
      const char* v = value();
      if (v == nullptr) return false;
      args.dlog_path = v;
    } else if (arg == "--monitored") {
      const char* v = value();
      if (v == nullptr || !ParseMonitorSpec(v, args.monitored)) {
        std::fprintf(stderr, "--monitored wants Table[:col1,col2]\n");
        return false;
      }
    } else if (arg == "--on-demand") {
      const char* v = value();
      if (v == nullptr || !ParseMonitorSpec(v, args.on_demand)) {
        std::fprintf(stderr, "--on-demand wants Table:col1[,col2]\n");
        return false;
      }
    } else if (arg == "--decls-included") {
      args.decls_included = true;
    } else if (arg == "--json") {
      args.json = true;
    } else if (arg == "--werror") {
      args.werror = true;
    } else if (arg == "--list-builtins") {
      args.list_builtins = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", std::string(arg).c_str());
      return false;
    }
  }
  return true;
}

int Report(const analyze::Analysis& analysis, const Args& args,
           const std::string& p4_source, const std::string& dlog_name,
           const std::string& p4_name) {
  if (args.json) {
    std::printf("%s\n", analysis.ToJson().Dump(2).c_str());
  } else {
    for (const analyze::Diagnostic& diagnostic : analysis.diagnostics) {
      std::printf("%s", analyze::RenderDiagnostic(
                            diagnostic, analysis.dlog_source, p4_source,
                            dlog_name, p4_name)
                            .c_str());
    }
    std::printf("%d error(s), %d warning(s)\n", analysis.errors(),
                analysis.warnings());
  }
  if (analysis.errors() > 0) return 1;
  if (args.werror && analysis.warnings() > 0) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, args)) return Usage(argv[0]);
  if (args.list_builtins) {
    for (const std::string& name : examples::StackNames()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (args.builtin.empty() == args.dlog_path.empty()) {
    // exactly one of the two modes
    return Usage(argv[0]);
  }

  analyze::StackInput input;
  analyze::AnalyzeOptions options;
  ovsdb::DatabaseSchema schema;
  std::shared_ptr<const p4::P4Program> p4;
  std::string p4_source;
  std::string dlog_name = "<rules>";
  std::string p4_name = "<p4>";

  if (!args.builtin.empty()) {
    auto stack = examples::GetStack(args.builtin);
    if (!stack.ok()) {
      std::fprintf(stderr, "%s\n", stack.status().ToString().c_str());
      return 2;
    }
    if (stack->schema.has_value()) {
      schema = *stack->schema;
      input.schema = &schema;
    }
    p4 = stack->p4;
    if (p4 != nullptr) input.p4 = p4.get();
    p4_source = stack->p4_source;
    input.rules = stack->rules;
    input.binding_options = stack->options;
    options.multicast_relations = stack->multicast_relations;
    options.rules_include_decls = input.schema == nullptr && p4 == nullptr;
    dlog_name = args.builtin + ".dl";
    p4_name = args.builtin + ".p4";
  } else {
    auto rules = ReadFile(args.dlog_path);
    if (!rules.has_value()) {
      std::fprintf(stderr, "cannot read %s\n", args.dlog_path.c_str());
      return 2;
    }
    input.rules = *rules;
    dlog_name = args.dlog_path;
    if (!args.schema_path.empty()) {
      auto text = ReadFile(args.schema_path);
      if (!text.has_value()) {
        std::fprintf(stderr, "cannot read %s\n", args.schema_path.c_str());
        return 2;
      }
      auto parsed = ovsdb::DatabaseSchema::FromJsonText(*text);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s: %s\n", args.schema_path.c_str(),
                     parsed.status().ToString().c_str());
        return 2;
      }
      schema = std::move(parsed).value();
      input.schema = &schema;
    }
    if (!args.p4_path.empty()) {
      auto text = ReadFile(args.p4_path);
      if (!text.has_value()) {
        std::fprintf(stderr, "cannot read %s\n", args.p4_path.c_str());
        return 2;
      }
      p4_source = *text;
      p4_name = args.p4_path;
      auto parsed = p4::ParseP4Text(p4_source);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s: %s\n", args.p4_path.c_str(),
                     parsed.status().ToString().c_str());
        return 2;
      }
      p4 = std::move(parsed).value();
      input.p4 = p4.get();
    }
    // Without both planes there are no generated declarations to prepend;
    // the rules must stand alone.
    options.rules_include_decls =
        args.decls_included || input.schema == nullptr || input.p4 == nullptr;
  }

  options.monitored_columns = args.monitored;
  options.on_demand_columns = args.on_demand;

  auto analysis = analyze::AnalyzeStack(input, options);
  if (!analysis.ok()) {
    std::fprintf(stderr, "%s\n", analysis.status().ToString().c_str());
    return 2;
  }
  return Report(*analysis, args, p4_source, dlog_name, p4_name);
}
