file(REMOVE_RECURSE
  "CMakeFiles/nerpa_ovsdb.dir/atom.cc.o"
  "CMakeFiles/nerpa_ovsdb.dir/atom.cc.o.d"
  "CMakeFiles/nerpa_ovsdb.dir/client.cc.o"
  "CMakeFiles/nerpa_ovsdb.dir/client.cc.o.d"
  "CMakeFiles/nerpa_ovsdb.dir/database.cc.o"
  "CMakeFiles/nerpa_ovsdb.dir/database.cc.o.d"
  "CMakeFiles/nerpa_ovsdb.dir/datum.cc.o"
  "CMakeFiles/nerpa_ovsdb.dir/datum.cc.o.d"
  "CMakeFiles/nerpa_ovsdb.dir/jsonrpc.cc.o"
  "CMakeFiles/nerpa_ovsdb.dir/jsonrpc.cc.o.d"
  "CMakeFiles/nerpa_ovsdb.dir/schema.cc.o"
  "CMakeFiles/nerpa_ovsdb.dir/schema.cc.o.d"
  "CMakeFiles/nerpa_ovsdb.dir/server.cc.o"
  "CMakeFiles/nerpa_ovsdb.dir/server.cc.o.d"
  "CMakeFiles/nerpa_ovsdb.dir/uuid.cc.o"
  "CMakeFiles/nerpa_ovsdb.dir/uuid.cc.o.d"
  "libnerpa_ovsdb.a"
  "libnerpa_ovsdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nerpa_ovsdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
