// p4c-of: lowering a P4 pipeline (program + runtime entries) to OpenFlow
// style flow tables — the reproduction of the Nerpa repository's `p4c-of`
// backend, which "compiles P4 into OpenFlow and allows the use of
// high-performance software switches" (§4.1).
//
// Supported subset (matches what snvs needs):
//   * Control flow: nested conditionals on field equality and header
//     validity; each conditional becomes extra guard matches on the flows
//     of the tables it dominates.
//   * Match kinds: exact, LPM (via priority), ternary, optional.
//     Range matches are rejected.
//   * Actions: set-field, output, multicast group, drop, push/pop VLAN.
//     Digests have no OpenFlow equivalent and are lowered to no-ops with a
//     warning (real p4c-of falls back to packet-in).
#ifndef NERPA_OFP_P4C_OF_H_
#define NERPA_OFP_P4C_OF_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/packet.h"
#include "ofp/flow.h"
#include "p4/interpreter.h"

namespace nerpa::ofp {

/// Static layout of the lowered pipeline: OF table ids in application
/// order plus the guard matches each table inherits from control flow.
struct OfLayout {
  std::map<std::string, int> table_ids;
  std::map<std::string, std::vector<OfMatch>> table_guards;
  int egress_boundary = 0;
  std::vector<std::string> warnings;
};

/// Computes the layout for `program` (must be validated).
Result<OfLayout> PlanLayout(const p4::P4Program& program);

/// Lowers one table entry to a flow under `layout`.
Result<Flow> LowerEntry(const p4::P4Program& program, const OfLayout& layout,
                        const p4::TableEntry& entry,
                        std::vector<std::string>* warnings = nullptr);

/// Compiles the full current state of `sw` (entries, defaults, multicast
/// groups) into a ready-to-run FlowSwitch.
Result<FlowSwitch> CompileP4ToOf(const p4::Switch& sw, OfLayout* layout_out,
                                 std::vector<std::string>* warnings = nullptr);

/// Parses a raw packet into the OF field view using the program's parse
/// graph (adds "<header>._valid" bits).
Result<FieldMap> PacketToFields(const p4::P4Program& program,
                                const net::Packet& packet);

/// Serializes a field view back to bytes per the program's deparser.
net::Packet FieldsToPacket(const p4::P4Program& program,
                           const FieldMap& fields);

}  // namespace nerpa::ofp

#endif  // NERPA_OFP_P4C_OF_H_
