// The Nerpa controller: the state-synchronization runtime that ties the
// three planes together (§3 "The Nerpa controller, in charge of state
// synchronization, installs the data from the controller output relations
// as entries in the programmable data plane tables").
//
// Data flow per management-plane transaction (all synchronous in-process,
// mirroring the prototype's event loop):
//
//   OVSDB commit -> monitor delta -> Datalog input delta -> incremental
//   transaction -> output delta -> P4Runtime writes (deletes then inserts)
//
// and the feedback loop (§4.2):
//
//   data-plane digest -> Datalog input insert -> incremental transaction
//   -> table writes (e.g. MAC learning)
#ifndef NERPA_NERPA_CONTROLLER_H_
#define NERPA_NERPA_CONTROLLER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "dlog/engine.h"
#include "nerpa/bindings.h"
#include "ovsdb/database.h"
#include "p4/runtime.h"

namespace nerpa {

class Controller {
 public:
  struct Options {
    /// Name of an (extra, hand-declared) output relation whose rows are
    /// multicast group membership instead of table entries.  Shape:
    /// ([device: string,] group: bit<16>, port: bit<16>) — device present
    /// iff the bindings were generated with a device column.
    std::string multicast_relation;
  };

  /// The database and runtime clients must outlive the controller.
  /// `p4_program` is the (validated) data-plane program the bindings were
  /// generated from; all registered devices must run it.
  Controller(ovsdb::Database* db,
             std::shared_ptr<const dlog::Program> program,
             std::shared_ptr<const p4::P4Program> p4_program,
             Bindings bindings, Options options = {});
  ~Controller();

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  /// Registers a data-plane device.  With device-column bindings the name
  /// routes entries; without, every entry is installed on every device.
  Status AddDevice(std::string name, p4::RuntimeClient* client);

  /// Type-checks the program against the bindings, applies fact-derived
  /// outputs, and subscribes to the management plane (receiving the current
  /// contents as the first delta).  Call after AddDevice().
  Status Start();

  /// Drains digests from every device through the control plane.  Returns
  /// the first error, if any.  (In-process stand-in for the P4Runtime
  /// digest stream.)
  Status SyncDataPlaneNotifications();

  struct Stats {
    uint64_t ovsdb_updates = 0;
    uint64_t dlog_txns = 0;
    uint64_t entries_inserted = 0;
    uint64_t entries_deleted = 0;
    uint64_t multicast_updates = 0;
    uint64_t digests = 0;
    uint64_t errors = 0;
  };
  const Stats& stats() const { return stats_; }

  /// First error hit inside a monitor callback (callbacks cannot return
  /// Status); ok() if none.
  const Status& last_error() const { return last_error_; }

  /// The underlying engine (introspection in tests/benches).
  dlog::Engine& engine() { return *engine_; }

 private:
  struct Device {
    std::string name;
    p4::RuntimeClient* client;
  };

  void OnOvsdbUpdate(const ovsdb::TableUpdates& updates);
  Status ProcessOvsdbUpdates(const ovsdb::TableUpdates& updates);
  Status ApplyOutputDelta(const dlog::TxnDelta& delta);
  Status ApplyMulticastDelta(const dlog::SetDelta& delta);
  Status WriteEntry(const std::string& device, p4::UpdateType type,
                    const p4::TableEntry& entry);

  ovsdb::Database* db_;
  std::shared_ptr<const dlog::Program> program_;
  std::shared_ptr<const p4::P4Program> p4_program_;
  Bindings bindings_;
  Options options_;
  std::unique_ptr<dlog::Engine> engine_;
  std::vector<Device> devices_;
  uint64_t monitor_id_ = 0;
  bool started_ = false;
  int64_t digest_seq_ = 0;
  // (device, group) -> member ports, for multicast reprogramming.
  std::map<std::pair<std::string, uint32_t>, std::vector<uint64_t>>
      multicast_members_;
  Stats stats_;
  Status last_error_;
};

}  // namespace nerpa

#endif  // NERPA_NERPA_CONTROLLER_H_
