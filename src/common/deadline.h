// Deadline propagation across the stack.
//
// A Deadline is an absolute point on the MonotonicNanos() timeline (which
// is CLOCK_MONOTONIC — comparable across every thread and process on one
// host, so a deadline minted at the gateway means the same instant inside
// the OVSDB server and the controller).  Each layer checks the deadline
// *before* expensive work — at worker-queue dequeue, before a database
// transaction evaluates, at engine-commit and device-batch boundaries —
// and short-circuits with kDeadlineExceeded instead of burning CPU on a
// request the client has already abandoned.
//
// The default-constructed Deadline is infinite: every existing call path
// keeps its old never-times-out behaviour unless a caller says otherwise.
#ifndef NERPA_COMMON_DEADLINE_H_
#define NERPA_COMMON_DEADLINE_H_

#include <cstdint>
#include <limits>
#include <string>

#include "common/clock.h"
#include "common/status.h"

namespace nerpa {

class Deadline {
 public:
  /// Infinite — never expires.
  constexpr Deadline() = default;

  static constexpr Deadline Infinite() { return Deadline(); }

  /// A deadline at an absolute MonotonicNanos() instant.
  static constexpr Deadline AtNanos(int64_t abs_nanos) {
    return Deadline(abs_nanos);
  }

  /// A deadline `budget_nanos` from now.  Non-positive budgets produce an
  /// already-expired deadline (the caller's clock ran out upstream).
  static Deadline AfterNanos(int64_t budget_nanos) {
    return Deadline(MonotonicNanos() + budget_nanos);
  }

  bool infinite() const { return nanos_ == kInfinite; }

  /// Absolute expiry instant (kInfinite when infinite()).
  int64_t nanos() const { return nanos_; }

  bool expired(int64_t now_nanos) const {
    return !infinite() && now_nanos >= nanos_;
  }
  bool expired() const { return !infinite() && MonotonicNanos() >= nanos_; }

  /// Remaining budget, clamped at 0.  Infinite deadlines report kInfinite.
  int64_t remaining_nanos(int64_t now_nanos) const {
    if (infinite()) return kInfinite;
    return nanos_ > now_nanos ? nanos_ - now_nanos : 0;
  }
  int64_t remaining_nanos() const { return remaining_nanos(MonotonicNanos()); }

  /// Remaining budget in whole milliseconds for poll()-style timeouts,
  /// clamped into [0, ceiling_ms].  Infinite deadlines report the ceiling.
  int remaining_ms(int ceiling_ms) const {
    if (infinite()) return ceiling_ms;
    int64_t ms = remaining_nanos() / 1'000'000;
    if (ms > ceiling_ms) return ceiling_ms;
    return ms < 0 ? 0 : static_cast<int>(ms);
  }

  /// The earlier of two deadlines (propagation composes by tightening).
  Deadline Min(const Deadline& other) const {
    return nanos_ < other.nanos_ ? *this : other;
  }

  static constexpr int64_t kInfinite = std::numeric_limits<int64_t>::max();

 private:
  explicit constexpr Deadline(int64_t abs_nanos) : nanos_(abs_nanos) {}

  int64_t nanos_ = kInfinite;
};

/// Ok while `deadline` has budget left; kDeadlineExceeded naming `what`
/// otherwise.  The canonical guard before each unit of expensive work.
inline Status CheckDeadline(const Deadline& deadline, const char* what) {
  if (deadline.expired()) {
    return DeadlineExceeded(std::string(what) + ": deadline exceeded");
  }
  return Status::Ok();
}

}  // namespace nerpa

#endif  // NERPA_COMMON_DEADLINE_H_
