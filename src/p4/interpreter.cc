#include "p4/interpreter.h"

#include "common/log.h"
#include "common/strings.h"

namespace nerpa::p4 {

Switch::Switch(std::shared_ptr<const P4Program> program)
    : program_(std::move(program)) {
  for (const Table& table : program_->tables) {
    tables_.emplace(table.name, TableState(&table));
  }
}

TableState* Switch::GetTable(std::string_view name) {
  auto it = tables_.find(std::string(name));
  return it == tables_.end() ? nullptr : &it->second;
}

const TableState* Switch::GetTable(std::string_view name) const {
  auto it = tables_.find(std::string(name));
  return it == tables_.end() ? nullptr : &it->second;
}

Status Switch::CheckFence(uint64_t token) {
  if (token < fence_epoch_ || (token == 0 && fence_epoch_ != 0)) {
    ++stale_writes_;
    return PermissionDenied(StrFormat(
        "stale fencing token: epoch %llu < switch fence epoch %llu",
        static_cast<unsigned long long>(token),
        static_cast<unsigned long long>(fence_epoch_)));
  }
  if (token > fence_epoch_) fence_epoch_ = token;
  return Status::Ok();
}

void Switch::SetMulticastGroup(uint32_t group, std::vector<uint64_t> ports) {
  if (ports.empty()) {
    multicast_.erase(group);
  } else {
    multicast_[group] = std::move(ports);
  }
}

const std::vector<uint64_t>* Switch::GetMulticastGroup(uint32_t group) const {
  auto it = multicast_.find(group);
  return it == multicast_.end() ? nullptr : &it->second;
}

Result<uint64_t> Switch::ReadField(const Ctx& ctx, const FieldRef& ref) const {
  size_t dot = ref.text.find('.');
  std::string space = ref.text.substr(0, dot);
  std::string field = ref.text.substr(dot + 1);
  if (space == "standard") {
    if (field == "ingress_port") return ctx.ingress_port;
    if (field == "egress_port") return ctx.egress_port;
    if (field == "mcast_grp") return ctx.mcast_grp;
    return NotFound("unknown standard field '" + field + "'");
  }
  if (space == "meta") {
    auto it = ctx.metadata.find(field);
    return it == ctx.metadata.end() ? 0 : it->second;
  }
  auto it = ctx.headers.find(space);
  if (it == ctx.headers.end() || !it->second.valid) {
    // Reading an invalid header yields 0 (BMv2's permissive behaviour).
    return 0;
  }
  const HeaderType* header = program_->FindHeader(space);
  int index = header->FindField(field);
  if (index < 0) return NotFound("no field '" + ref.text + "'");
  return it->second.values[static_cast<size_t>(index)];
}

Status Switch::WriteField(Ctx& ctx, const FieldRef& ref, uint64_t value) {
  size_t dot = ref.text.find('.');
  std::string space = ref.text.substr(0, dot);
  std::string field = ref.text.substr(dot + 1);
  if (space == "standard") {
    if (field == "egress_port") {
      ctx.egress_port = value;
      ctx.unicast_set = true;
      return Status::Ok();
    }
    if (field == "mcast_grp") {
      ctx.mcast_grp = value;
      return Status::Ok();
    }
    return FailedPrecondition("cannot write standard field '" + field + "'");
  }
  if (space == "meta") {
    ctx.metadata[field] = value;
    return Status::Ok();
  }
  auto it = ctx.headers.find(space);
  if (it == ctx.headers.end() || !it->second.valid) {
    return FailedPrecondition("write to invalid header '" + space + "'");
  }
  const HeaderType* header = program_->FindHeader(space);
  int index = header->FindField(field);
  if (index < 0) return NotFound("no field '" + ref.text + "'");
  int width = header->fields[static_cast<size_t>(index)].width;
  uint64_t mask = width >= 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
  it->second.values[static_cast<size_t>(index)] = value & mask;
  return Status::Ok();
}

Status Switch::RunParser(Ctx& ctx, const net::Packet& packet) {
  net::PacketReader reader(packet);
  const ParserState* state = &program_->parser[0];
  for (int hops = 0; hops < 64; ++hops) {  // cycle guard
    if (!state->extracts.empty()) {
      const HeaderType* header = program_->FindHeader(state->extracts);
      HeaderInstance instance;
      instance.valid = true;
      for (const P4Field& field : header->fields) {
        auto value = reader.ReadBits(field.width);
        if (!value) {
          return InvalidArgument(StrFormat(
              "packet too short while extracting %s.%s",
              header->name.c_str(), field.name.c_str()));
        }
        instance.values.push_back(*value);
      }
      ctx.headers[header->name] = std::move(instance);
    }
    // Choose the transition.
    const std::string* next = nullptr;
    if (state->select.text.empty()) {
      if (!state->transitions.empty()) next = &state->transitions[0].next;
    } else {
      NERPA_ASSIGN_OR_RETURN(uint64_t selector,
                             ReadField(ctx, state->select));
      const std::string* fallback = nullptr;
      for (const ParserState::Transition& t : state->transitions) {
        if (!t.match) {
          fallback = &t.next;
        } else if (*t.match == selector) {
          next = &t.next;
          break;
        }
      }
      if (next == nullptr) next = fallback;
    }
    if (next == nullptr || *next == "accept") {
      // Remaining bytes are the payload.
      size_t offset = reader.offset();
      ctx.payload.assign(packet.begin() + static_cast<long>(offset),
                         packet.end());
      return Status::Ok();
    }
    if (*next == "reject") {
      return InvalidArgument("parser rejected packet");
    }
    state = program_->FindParserState(*next);
  }
  return Internal("parser exceeded hop limit (cycle?)");
}

Status Switch::ApplyTable(Ctx& ctx, const Table& table) {
  TableState& state = tables_.at(table.name);
  std::vector<uint64_t> key;
  key.reserve(table.keys.size());
  for (const TableKey& tk : table.keys) {
    NERPA_ASSIGN_OR_RETURN(uint64_t value, ReadField(ctx, tk.field));
    key.push_back(value);
  }
  const TableEntry* entry = state.Lookup(key);
  const Action* action = nullptr;
  const std::vector<uint64_t>* args = nullptr;
  if (entry != nullptr) {
    action = program_->FindAction(entry->action);
    args = &entry->action_args;
  } else if (!table.default_action.empty()) {
    action = program_->FindAction(table.default_action);
    args = &table.default_action_args;
  }
  if (action == nullptr) return Status::Ok();  // miss with no default
  return ExecAction(ctx, *action, *args);
}

Status Switch::ExecAction(Ctx& ctx, const Action& action,
                          const std::vector<uint64_t>& args) {
  auto arg_value = [&](const ActionOp& op) -> uint64_t {
    if (op.param.empty()) return op.immediate;
    int index = action.FindParam(op.param);
    return index >= 0 && static_cast<size_t>(index) < args.size()
               ? args[static_cast<size_t>(index)]
               : 0;
  };
  for (const ActionOp& op : action.ops) {
    switch (op.kind) {
      case ActionOp::Kind::kNoOp:
        break;
      case ActionOp::Kind::kSetFieldConst:
      case ActionOp::Kind::kSetFieldParam:
        NERPA_RETURN_IF_ERROR(WriteField(ctx, op.dest, arg_value(op)));
        break;
      case ActionOp::Kind::kCopyField: {
        NERPA_ASSIGN_OR_RETURN(uint64_t value, ReadField(ctx, op.src));
        NERPA_RETURN_IF_ERROR(WriteField(ctx, op.dest, value));
        break;
      }
      case ActionOp::Kind::kOutput:
        ctx.egress_port = arg_value(op);
        ctx.unicast_set = true;
        ctx.dropped = false;
        break;
      case ActionOp::Kind::kMulticast:
        ctx.mcast_grp = arg_value(op);
        break;
      case ActionOp::Kind::kDrop:
        ctx.dropped = true;
        ctx.unicast_set = false;
        ctx.mcast_grp = 0;
        break;
      case ActionOp::Kind::kClone:
        ctx.clone_ports.push_back(arg_value(op));
        break;
      case ActionOp::Kind::kDigest: {
        const Digest* digest = program_->FindDigest(op.digest_name);
        DigestMessage message;
        message.name = digest->name;
        for (const P4Field& field : digest->fields) {
          // Digest fields are named after metadata or header fields by
          // convention "space_field" mapping is avoided: the digest field
          // name IS a FieldRef text.
          NERPA_ASSIGN_OR_RETURN(uint64_t value,
                                 ReadField(ctx, FieldRef(field.name)));
          message.fields.push_back(value);
        }
        digests_.push_back(std::move(message));
        ++stats_.digests;
        break;
      }
      case ActionOp::Kind::kPushVlan: {
        // Conventional header names: "ethernet" and "vlan".
        const HeaderType* vlan = program_->FindHeader("vlan");
        const HeaderType* eth = program_->FindHeader("ethernet");
        if (vlan == nullptr || eth == nullptr) {
          return FailedPrecondition("push_vlan needs ethernet+vlan headers");
        }
        HeaderInstance& vi = ctx.headers["vlan"];
        if (!vi.valid) {
          vi.valid = true;
          vi.values.assign(vlan->fields.size(), 0);
          // vlan.etherType inherits the ethernet etherType; ethernet's
          // becomes 0x8100.
          NERPA_ASSIGN_OR_RETURN(
              uint64_t ether_type,
              ReadField(ctx, FieldRef("ethernet.etherType")));
          NERPA_RETURN_IF_ERROR(
              WriteField(ctx, FieldRef("vlan.etherType"), ether_type));
          NERPA_RETURN_IF_ERROR(
              WriteField(ctx, FieldRef("ethernet.etherType"), 0x8100));
        }
        NERPA_RETURN_IF_ERROR(
            WriteField(ctx, FieldRef("vlan.vid"), arg_value(op)));
        break;
      }
      case ActionOp::Kind::kPopVlan: {
        auto it = ctx.headers.find("vlan");
        if (it != ctx.headers.end() && it->second.valid) {
          NERPA_ASSIGN_OR_RETURN(
              uint64_t ether_type,
              ReadField(ctx, FieldRef("vlan.etherType")));
          it->second.valid = false;
          NERPA_RETURN_IF_ERROR(
              WriteField(ctx, FieldRef("ethernet.etherType"), ether_type));
        }
        break;
      }
    }
  }
  return Status::Ok();
}

Status Switch::RunControl(Ctx& ctx, const std::vector<ControlNode>& nodes) {
  for (const ControlNode& node : nodes) {
    if (ctx.dropped) return Status::Ok();
    if (node.kind == ControlNode::Kind::kApply) {
      NERPA_RETURN_IF_ERROR(ApplyTable(ctx, *program_->FindTable(node.table)));
      continue;
    }
    bool taken = false;
    switch (node.pred) {
      case ControlNode::Pred::kFieldEq:
      case ControlNode::Pred::kFieldNe: {
        NERPA_ASSIGN_OR_RETURN(uint64_t value,
                               ReadField(ctx, node.cond_field));
        taken = (value == node.cond_value) ==
                (node.pred == ControlNode::Pred::kFieldEq);
        break;
      }
      case ControlNode::Pred::kHeaderValid:
      case ControlNode::Pred::kHeaderInvalid: {
        auto it = ctx.headers.find(node.cond_header);
        bool valid = it != ctx.headers.end() && it->second.valid;
        taken = valid == (node.pred == ControlNode::Pred::kHeaderValid);
        break;
      }
    }
    NERPA_RETURN_IF_ERROR(
        RunControl(ctx, taken ? node.then_branch : node.else_branch));
  }
  return Status::Ok();
}

net::Packet Switch::Deparse(const Ctx& ctx) const {
  net::PacketWriter writer;
  for (const std::string& header_name : program_->deparser) {
    auto it = ctx.headers.find(header_name);
    if (it == ctx.headers.end() || !it->second.valid) continue;
    const HeaderType* header = program_->FindHeader(header_name);
    for (size_t f = 0; f < header->fields.size(); ++f) {
      writer.WriteBits(it->second.values[f], header->fields[f].width);
    }
  }
  writer.WriteBytes(ctx.payload.data(), ctx.payload.size());
  return writer.Finish();
}

Result<std::vector<PacketOut>> Switch::ProcessPacket(const PacketIn& in) {
  ++stats_.packets_in;
  Ctx ctx;
  ctx.ingress_port = in.port;
  Status parsed = RunParser(ctx, in.packet);
  if (!parsed.ok()) {
    ++stats_.parse_errors;
    return parsed;
  }
  NERPA_RETURN_IF_ERROR(RunControl(ctx, program_->ingress));

  std::vector<PacketOut> out;
  auto egress_one = [&](Ctx replica, uint64_t port) -> Status {
    replica.egress_port = port;
    replica.mcast_grp = 0;
    NERPA_RETURN_IF_ERROR(RunControl(replica, program_->egress));
    if (replica.dropped || replica.egress_port == kDropPort) {
      ++stats_.dropped;
      return Status::Ok();
    }
    out.push_back(PacketOut{replica.egress_port, Deparse(replica)});
    return Status::Ok();
  };

  if (ctx.dropped) {
    ++stats_.dropped;
  } else if (ctx.mcast_grp != 0) {
    const std::vector<uint64_t>* ports = GetMulticastGroup(
        static_cast<uint32_t>(ctx.mcast_grp));
    if (ports != nullptr) {
      for (uint64_t port : *ports) {
        if (port == ctx.ingress_port) continue;  // source pruning
        NERPA_RETURN_IF_ERROR(egress_one(ctx, port));
      }
    }
  } else if (ctx.unicast_set && ctx.egress_port != kDropPort) {
    NERPA_RETURN_IF_ERROR(egress_one(ctx, ctx.egress_port));
  } else {
    ++stats_.dropped;  // nobody claimed the packet
  }
  // SPAN clones carry the original frame, bypassing egress processing, and
  // are emitted even for packets the pipeline dropped (ingress mirroring).
  for (uint64_t port : ctx.clone_ports) {
    out.push_back(PacketOut{port, in.packet});
  }
  stats_.packets_out += out.size();
  return out;
}

std::vector<DigestMessage> Switch::TakeDigests() {
  std::vector<DigestMessage> out = std::move(digests_);
  digests_.clear();
  return out;
}

}  // namespace nerpa::p4
