file(REMOVE_RECURSE
  "CMakeFiles/nerpa_baseline.dir/fragments.cc.o"
  "CMakeFiles/nerpa_baseline.dir/fragments.cc.o.d"
  "CMakeFiles/nerpa_baseline.dir/imperative.cc.o"
  "CMakeFiles/nerpa_baseline.dir/imperative.cc.o.d"
  "libnerpa_baseline.a"
  "libnerpa_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nerpa_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
