file(REMOVE_RECURSE
  "CMakeFiles/dlog_cli.dir/dlog_cli.cc.o"
  "CMakeFiles/dlog_cli.dir/dlog_cli.cc.o.d"
  "dlog_cli"
  "dlog_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlog_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
