// Unit tests for the Nerpa core: binding generation shapes, the
// cross-plane type checker, and the generated data-movement helpers
// (OVSDB row -> dlog row, dlog row -> P4Runtime entry, digest -> dlog row).
#include <gtest/gtest.h>

#include <fstream>

#include "nerpa/bindings.h"
#include "nerpa/controller.h"
#include "snvs/snvs.h"

namespace nerpa {
namespace {

class BindingsTest : public ::testing::Test {
 protected:
  BindingsTest() : schema_(snvs::SnvsSchema()), p4_(snvs::SnvsP4Program()) {
    BindingOptions options;
    options.with_digest_seq = true;
    auto bindings = GenerateBindings(schema_, *p4_, options);
    EXPECT_TRUE(bindings.ok()) << bindings.status().ToString();
    bindings_ = std::move(bindings).value();
  }

  const dlog::RelationDecl* FindDecl(const std::string& name) const {
    for (const auto& decl : bindings_.inputs) {
      if (decl.name == name) return &decl;
    }
    for (const auto& decl : bindings_.outputs) {
      if (decl.name == name) return &decl;
    }
    return nullptr;
  }

  ovsdb::DatabaseSchema schema_;
  std::shared_ptr<const p4::P4Program> p4_;
  Bindings bindings_;
};

TEST_F(BindingsTest, OvsdbTableShape) {
  const dlog::RelationDecl* port = FindDecl("Port");
  ASSERT_NE(port, nullptr);
  EXPECT_EQ(port->role, dlog::RelationRole::kInput);
  ASSERT_EQ(port->columns.size(), 6u);  // _uuid + 5 schema columns
  EXPECT_EQ(port->columns[0].name, "_uuid");
  EXPECT_EQ(port->columns[0].type, dlog::Type::String());
  EXPECT_EQ(port->columns[2].name, "port");
  EXPECT_EQ(port->columns[2].type, dlog::Type::Int());
  EXPECT_EQ(port->columns[5].name, "trunks");
  EXPECT_EQ(port->columns[5].type, dlog::Type::Vec(dlog::Type::Int()));
}

TEST_F(BindingsTest, DigestShape) {
  const dlog::RelationDecl* learn = FindDecl("MacLearn");
  ASSERT_NE(learn, nullptr);
  EXPECT_EQ(learn->role, dlog::RelationRole::kInput);
  ASSERT_EQ(learn->columns.size(), 4u);
  EXPECT_EQ(learn->columns[0].name, "standard_ingress_port");
  EXPECT_EQ(learn->columns[0].type, dlog::Type::Bit(16));
  EXPECT_EQ(learn->columns[2].type, dlog::Type::Bit(48));
  EXPECT_EQ(learn->columns[3].name, "seq");  // with_digest_seq
}

TEST_F(BindingsTest, TableOutputShape) {
  const dlog::RelationDecl* dmac = FindDecl("Dmac");
  ASSERT_NE(dmac, nullptr);
  EXPECT_EQ(dmac->role, dlog::RelationRole::kOutput);
  ASSERT_EQ(dmac->columns.size(), 4u);
  EXPECT_EQ(dmac->columns[0].name, "meta_vlan");
  EXPECT_EQ(dmac->columns[1].name, "ethernet_dstAddr");
  EXPECT_EQ(dmac->columns[2].name, "action");
  EXPECT_EQ(dmac->columns[3].name, "port");  // Forward's parameter
}

TEST_F(BindingsTest, MatchKindColumnsGenerated) {
  // A synthetic table exercising every match kind.
  p4::P4Program program = *p4_;
  p4::Table fancy;
  fancy.name = "Fancy";
  fancy.keys = {
      {"ethernet.dstAddr", p4::MatchKind::kLpm, 0},
      {"meta.vlan", p4::MatchKind::kTernary, 0},
      {"standard.ingress_port", p4::MatchKind::kRange, 0},
      {"ethernet.etherType", p4::MatchKind::kOptional, 0},
  };
  fancy.actions = {"NoAction"};
  program.tables.push_back(fancy);
  program.ingress.push_back(p4::ControlNode::Apply("Fancy"));
  ASSERT_TRUE(program.Validate().ok());

  auto bindings = GenerateBindings(schema_, program, {});
  ASSERT_TRUE(bindings.ok()) << bindings.status().ToString();
  const dlog::RelationDecl* decl = nullptr;
  for (const auto& candidate : bindings->outputs) {
    if (candidate.name == "Fancy") decl = &candidate;
  }
  ASSERT_NE(decl, nullptr);
  std::vector<std::string> names;
  for (const auto& column : decl->columns) names.push_back(column.name);
  EXPECT_EQ(names,
            (std::vector<std::string>{
                "ethernet_dstAddr", "ethernet_dstAddr_plen", "meta_vlan",
                "meta_vlan_mask", "standard_ingress_port_lo",
                "standard_ingress_port_hi", "ethernet_etherType",
                "ethernet_etherType_present", "priority", "action"}));
}

TEST_F(BindingsTest, TypeCheckAcceptsGeneratedProgram) {
  std::string source = bindings_.DeclsText() + snvs::SnvsRules();
  auto program = dlog::Program::Parse(source);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_TRUE(TypeCheck(**program, bindings_).ok());
}

TEST_F(BindingsTest, TypeCheckRejectsMissingRelation) {
  auto program = dlog::Program::Parse("relation Lonely(x: bigint)");
  ASSERT_TRUE(program.ok());
  Status check = TypeCheck(**program, bindings_);
  EXPECT_FALSE(check.ok());
  // Diagnostic carries the expected shape.
  EXPECT_NE(check.message().find("relation"), std::string::npos);
}

TEST_F(BindingsTest, TypeCheckRejectsWrongRoleAndColumns) {
  // Declare Dmac as input with wrong columns.
  std::string source = bindings_.DeclsText() + snvs::SnvsRules();
  size_t pos = source.find("output relation Dmac");
  ASSERT_NE(pos, std::string::npos);
  std::string sabotaged = source;
  sabotaged.replace(pos, 21, "input relation Dmac(");
  // This breaks parsing of the rules that write Dmac; either parse or
  // type-check must fail.
  auto program = dlog::Program::Parse(sabotaged);
  if (program.ok()) {
    EXPECT_FALSE(TypeCheck(**program, bindings_).ok());
  }
}

TEST_F(BindingsTest, OvsdbRowConversion) {
  const ovsdb::TableSchema* port = schema_.FindTable("Port");
  ovsdb::Row row;
  row.uuid = ovsdb::Uuid::Generate();
  row.columns["name"] = ovsdb::Datum::String("p1");
  row.columns["port"] = ovsdb::Datum::Integer(4);
  row.columns["vlan_mode"] = ovsdb::Datum::String("trunk");
  row.columns["tag"] = ovsdb::Datum::Integer(0);
  row.columns["trunks"] = ovsdb::Datum::Set(
      {ovsdb::Atom(int64_t{20}), ovsdb::Atom(int64_t{10})});
  auto converted = OvsdbRowToDlog(*port, row);
  ASSERT_TRUE(converted.ok()) << converted.status().ToString();
  ASSERT_EQ(converted->size(), 6u);
  EXPECT_EQ((*converted)[0],
            dlog::Value::String(row.uuid.ToString()));
  EXPECT_EQ((*converted)[2], dlog::Value::Int(4));
  // Sets arrive sorted.
  EXPECT_EQ((*converted)[5],
            dlog::Value::Tuple({dlog::Value::Int(10), dlog::Value::Int(20)}));
}

TEST_F(BindingsTest, MissingColumnsUseDefaults) {
  const ovsdb::TableSchema* port = schema_.FindTable("Port");
  ovsdb::Row row;
  row.uuid = ovsdb::Uuid::Generate();
  auto converted = OvsdbRowToDlog(*port, row);
  ASSERT_TRUE(converted.ok());
  EXPECT_EQ((*converted)[1], dlog::Value::String(""));
  EXPECT_EQ((*converted)[2], dlog::Value::Int(0));
}

TEST_F(BindingsTest, EntryConversionRoundTrip) {
  const TableBinding* binding = bindings_.FindTable("Dmac");
  ASSERT_NE(binding, nullptr);
  dlog::Row row{dlog::Value::Bit(10), dlog::Value::Bit(0xAABB),
                dlog::Value::String("Forward"), dlog::Value::Bit(3)};
  auto converted = DlogRowToEntry(*binding, *p4_, row);
  ASSERT_TRUE(converted.ok()) << converted.status().ToString();
  EXPECT_EQ(converted->first, "");  // no device column
  const p4::TableEntry& entry = converted->second;
  EXPECT_EQ(entry.table, "Dmac");
  EXPECT_EQ(entry.match[0].value, 10u);
  EXPECT_EQ(entry.match[1].value, 0xAABBu);
  EXPECT_EQ(entry.action, "Forward");
  EXPECT_EQ(entry.action_args, std::vector<uint64_t>{3});
}

TEST_F(BindingsTest, EntryConversionRejectsUnknownAction) {
  const TableBinding* binding = bindings_.FindTable("Dmac");
  dlog::Row row{dlog::Value::Bit(10), dlog::Value::Bit(0xAABB),
                dlog::Value::String("Bogus"), dlog::Value::Bit(3)};
  EXPECT_FALSE(DlogRowToEntry(*binding, *p4_, row).ok());
}

TEST_F(BindingsTest, DigestConversionAppendsSeq) {
  const DigestBinding* binding = bindings_.FindDigest("MacLearn");
  ASSERT_NE(binding, nullptr);
  p4::DigestMessage message{"MacLearn", {1, 10, 0xFF}};
  dlog::Row row = DigestToDlog(*binding, message, "sw0", 42);
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row[0], dlog::Value::Bit(1));
  EXPECT_EQ(row[3], dlog::Value::Int(42));
}

TEST_F(BindingsTest, RealColumnsRejected) {
  ovsdb::DatabaseSchema schema;
  schema.name = "bad";
  ovsdb::TableSchema table;
  table.name = "T";
  table.columns = {{"load",
                    ovsdb::ColumnType::Scalar(ovsdb::BaseType::Real()),
                    false, true}};
  schema.tables.emplace("T", std::move(table));
  auto bindings = GenerateBindings(schema, *p4_, {});
  EXPECT_FALSE(bindings.ok());
  EXPECT_EQ(bindings.status().code(), StatusCode::kTypeError);
}

TEST_F(BindingsTest, ConflictingParamWidthsRejected) {
  p4::P4Program program = *p4_;
  // Two actions with a parameter `vid` of different widths in one table.
  program.actions.push_back(
      {"OtherVid", {{"vid", 8}}, {p4::ActionOp::Drop()}});
  for (p4::Table& table : program.tables) {
    if (table.name == "OutVlan") table.actions.push_back("OtherVid");
  }
  ASSERT_TRUE(program.Validate().ok());
  auto bindings = GenerateBindings(schema_, program, {});
  EXPECT_FALSE(bindings.ok());
}

TEST(ControllerGuards, StartRequiresTypeCheck) {
  ovsdb::Database db(snvs::SnvsSchema());
  auto p4 = snvs::SnvsP4Program();
  BindingOptions options;
  options.with_digest_seq = true;
  auto bindings = GenerateBindings(db.schema(), *p4, options);
  ASSERT_TRUE(bindings.ok());
  // A program missing all generated relations.
  auto program = dlog::Program::Parse("relation X(a: bigint)");
  ASSERT_TRUE(program.ok());
  Controller controller(&db, *program, p4, *bindings);
  p4::Switch device(p4);
  p4::RuntimeClient client(&device);
  ASSERT_TRUE(controller.AddDevice("sw0", &client).ok());
  EXPECT_FALSE(controller.Start().ok());
}

TEST(ControllerGuards, MulticastRelationShapeChecked) {
  ovsdb::Database db(snvs::SnvsSchema());
  auto p4 = snvs::SnvsP4Program();
  BindingOptions options;
  options.with_digest_seq = true;
  auto bindings = GenerateBindings(db.schema(), *p4, options);
  ASSERT_TRUE(bindings.ok());
  std::string source = bindings->DeclsText() + snvs::SnvsRules();
  auto program = dlog::Program::Parse(source);
  ASSERT_TRUE(program.ok());
  Controller::Options bad_options;
  bad_options.multicast_relation = "Dmac";  // wrong shape (4 columns)
  Controller controller(&db, *program, p4, *bindings, bad_options);
  p4::Switch device(p4);
  p4::RuntimeClient client(&device);
  ASSERT_TRUE(controller.AddDevice("sw0", &client).ok());
  EXPECT_FALSE(controller.Start().ok());
}

}  // namespace
}  // namespace nerpa
