// End-to-end crash/recovery tests: kill a full snvs stack, rebuild it from
// the durable state directory, and verify that (a) the management plane
// comes back bit-identical, (b) resynchronization issues zero data-plane
// writes when the devices still hold the right entries and exactly the
// diff when they do not, and (c) the controller converges through injected
// write faults via retry/backoff.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "ha/durable.h"
#include "ha/lease.h"
#include "net/packet.h"
#include "ovsdb/database.h"
#include "snvs/ha_pair.h"
#include "snvs/snvs.h"

namespace nerpa::snvs {
namespace {

using net::Mac;

constexpr const char* kTables[] = {"InVlanUntagged", "InVlanTagged",
                                   "PortMirror",     "Acl",
                                   "SMac",           "Dmac",
                                   "FloodVlan",      "OutVlan"};

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/nerpa_ha_restart_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Canonical dump of one device's entire data-plane state (all tables plus
/// multicast groups) for cross-run equality checks.
std::string DeviceState(const p4::Switch& sw) {
  std::string out;
  for (const char* table : kTables) {
    std::vector<std::string> lines;
    for (const p4::TableEntry* entry : sw.GetTable(table)->Entries()) {
      lines.push_back(entry->ToString());
    }
    std::sort(lines.begin(), lines.end());
    for (const std::string& line : lines) out += line + "\n";
  }
  for (const auto& [group, ports] : sw.multicast_groups()) {
    out += "group " + std::to_string(group);
    for (uint64_t port : ports) out += " " + std::to_string(port);
    out += "\n";
  }
  return out;
}

size_t TotalEntries(const p4::Switch& sw) {
  size_t n = 0;
  for (const char* table : kTables) n += sw.GetTable(table)->size();
  return n;
}

/// A data plane that outlives the controller stack, simulating switches
/// that keep their tables across a controller crash.
struct SurvivingDevice {
  explicit SurvivingDevice(std::shared_ptr<const p4::P4Program> program)
      : sw(std::make_unique<p4::Switch>(std::move(program))),
        client(std::make_unique<p4::RuntimeClient>(sw.get())) {}
  std::unique_ptr<p4::Switch> sw;
  std::unique_ptr<p4::RuntimeClient> client;
};

TEST(HaRestart, KillAndRestoreIsConvergedWithZeroWrites) {
  std::string dir = FreshDir("converged");
  SurvivingDevice device(SnvsP4Program());

  Json db_before;
  {
    SnvsOptions options;
    options.ha_dir = dir;
    options.external_clients = {device.client.get()};
    auto stack = BuildSnvsStack(options);
    ASSERT_TRUE(stack.ok()) << stack.status().ToString();
    EXPECT_FALSE((*stack)->store()->recovered());
    ASSERT_TRUE((*stack)->AddPort("p1", 1, "access", 10).ok());
    ASSERT_TRUE((*stack)->AddPort("p2", 2, "access", 10).ok());
    ASSERT_TRUE((*stack)->AddPort("t1", 3, "trunk", 0, {10, 20}).ok());
    ASSERT_TRUE((*stack)->AddAclRule(0xAA, 10, false).ok());
    db_before = ha::DurableStore::SnapshotJson((*stack)->db(), 0);
    EXPECT_GT(TotalEntries(*device.sw), 0u);
  }  // crash: stack destroyed, no checkpoint; device keeps its tables

  std::string device_before = DeviceState(*device.sw);
  uint64_t writes_before = device.client->write_count();

  SnvsOptions options;
  options.ha_dir = dir;
  options.external_clients = {device.client.get()};
  auto stack = BuildSnvsStack(options);
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();
  EXPECT_TRUE((*stack)->store()->recovered());

  // Management plane restored bit-identically (same rows, same uuids).
  EXPECT_EQ(ha::DurableStore::SnapshotJson((*stack)->db(), 0), db_before);
  // The device already held the desired state: resync read it, diffed, and
  // wrote nothing.
  EXPECT_EQ(device.client->write_count(), writes_before);
  EXPECT_EQ(DeviceState(*device.sw), device_before);
  const auto& stats = (*stack)->controller().stats();
  EXPECT_EQ(stats.resyncs, 1u);
  EXPECT_GT(stats.resync_reads, 0u);
  EXPECT_EQ(stats.resync_inserted, 0u);
  EXPECT_EQ(stats.resync_deleted, 0u);
  EXPECT_EQ(stats.resync_modified, 0u);

  // The restored stack is live: new transactions flow to the device.
  ASSERT_TRUE((*stack)->AddPort("p4", 4, "access", 20).ok());
  EXPECT_GT(device.client->write_count(), writes_before);
}

TEST(HaRestart, ResyncRestoresWipedDeviceAndSparesSurvivor) {
  std::string dir = FreshDir("wiped");
  auto program = SnvsP4Program();
  SurvivingDevice survivor(program);
  SurvivingDevice wiped(program);

  {
    SnvsOptions options;
    options.ha_dir = dir;
    options.external_clients = {survivor.client.get(), wiped.client.get()};
    auto stack = BuildSnvsStack(options);
    ASSERT_TRUE(stack.ok()) << stack.status().ToString();
    ASSERT_TRUE((*stack)->AddPort("p1", 1, "access", 10).ok());
    ASSERT_TRUE((*stack)->AddPort("p2", 2, "access", 10).ok());
    ASSERT_TRUE((*stack)->AddAclRule(0xBB, 10, true).ok());
  }

  std::string reference = DeviceState(*survivor.sw);
  size_t reference_entries = TotalEntries(*survivor.sw);
  size_t reference_groups = survivor.sw->multicast_groups().size();
  ASSERT_GT(reference_entries, 0u);

  // The second device reboots and comes back empty.
  wiped = SurvivingDevice(program);
  uint64_t survivor_writes = survivor.client->write_count();

  SnvsOptions options;
  options.ha_dir = dir;
  options.external_clients = {survivor.client.get(), wiped.client.get()};
  auto stack = BuildSnvsStack(options);
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();

  // Survivor untouched; the wiped device received exactly the full state.
  EXPECT_EQ(survivor.client->write_count(), survivor_writes);
  EXPECT_EQ(DeviceState(*wiped.sw), reference);
  EXPECT_EQ(wiped.client->write_count(),
            reference_entries + reference_groups);
  const auto& stats = (*stack)->controller().stats();
  EXPECT_EQ(stats.resyncs, 2u);
  EXPECT_EQ(stats.resync_inserted, reference_entries + reference_groups);
  EXPECT_EQ(stats.resync_deleted, 0u);
  EXPECT_EQ(stats.resync_modified, 0u);
}

TEST(HaRestart, ResyncRepairsStaleExtraAndModifiedEntries) {
  std::string dir = FreshDir("stale");
  SurvivingDevice device(SnvsP4Program());

  {
    SnvsOptions options;
    options.ha_dir = dir;
    options.external_clients = {device.client.get()};
    auto stack = BuildSnvsStack(options);
    ASSERT_TRUE(stack.ok()) << stack.status().ToString();
    ASSERT_TRUE((*stack)->AddPort("p1", 1, "access", 10).ok());
    ASSERT_TRUE((*stack)->AddAclRule(0xCC, 10, true).ok());
  }
  std::string reference = DeviceState(*device.sw);

  // While the controller is down the device diverges three ways:
  // 1. a desired entry disappears (stale device lost it),
  auto flood = device.client->ReadTable("FloodVlan");
  ASSERT_TRUE(flood.ok());
  ASSERT_EQ(flood->size(), 1u);
  ASSERT_TRUE(device.client->Delete((*flood)[0]).ok());
  // 2. an extra entry appears that no output relation derives,
  p4::TableEntry extra;
  extra.table = "Acl";
  extra.match = {p4::MatchField::Exact(99), p4::MatchField::Exact(0xDD)};
  extra.action = "AclDrop";
  ASSERT_TRUE(device.client->Insert(extra).ok());
  // 3. a desired entry's action is flipped.
  auto acl = device.client->ReadTable("Acl");
  ASSERT_TRUE(acl.ok());
  for (p4::TableEntry entry : *acl) {
    if (entry.match[1].value == 0xCC) {
      entry.action = "AclDrop";
      entry.action_args.clear();
      ASSERT_TRUE(device.client->Modify(entry).ok());
    }
  }

  SnvsOptions options;
  options.ha_dir = dir;
  options.external_clients = {device.client.get()};
  auto stack = BuildSnvsStack(options);
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();

  // Exactly the three divergences were repaired, nothing else written.
  const auto& stats = (*stack)->controller().stats();
  EXPECT_EQ(stats.resync_inserted, 1u);  // FloodVlan restored
  EXPECT_EQ(stats.resync_deleted, 1u);   // bogus Acl entry removed
  EXPECT_EQ(stats.resync_modified, 1u);  // Acl action repaired
  EXPECT_EQ(DeviceState(*device.sw), reference);
}

TEST(HaRestart, DeviceRegisteredAfterStartIsResynced) {
  auto program = SnvsP4Program();
  auto stack = BuildSnvsStack().value();
  ASSERT_TRUE(stack->AddPort("p1", 1, "access", 10).ok());
  ASSERT_TRUE(stack->AddPort("p2", 2, "access", 10).ok());
  size_t reference_entries = TotalEntries(stack->device());
  ASSERT_GT(reference_entries, 0u);

  // A second switch joins long after Start(): it is brought up to the full
  // desired state immediately.
  SurvivingDevice late(program);
  ASSERT_TRUE(
      stack->controller().AddDevice("late", late.client.get()).ok());
  EXPECT_EQ(DeviceState(*late.sw), DeviceState(stack->device()));
  EXPECT_EQ(stack->controller().stats().resyncs, 1u);

  // And it tracks subsequent updates like any other device.
  ASSERT_TRUE(stack->AddPort("p3", 3, "access", 10).ok());
  EXPECT_EQ(DeviceState(*late.sw), DeviceState(stack->device()));
}

TEST(HaRestart, DigestSeqStaysMonotoneAcrossRestart) {
  std::string dir = FreshDir("digest_seq");
  int64_t seq_at_checkpoint = 0;
  {
    SnvsOptions options;
    options.ha_dir = dir;
    auto stack = BuildSnvsStack(options);
    ASSERT_TRUE(stack.ok()) << stack.status().ToString();
    ASSERT_TRUE((*stack)->AddPort("p1", 1, "access", 10).ok());
    ASSERT_TRUE((*stack)->AddPort("p2", 2, "access", 10).ok());
    // Traffic drives MAC-learning digests, which consume sequence numbers.
    auto out = (*stack)->InjectPacket(
        0, 1,
        net::MakeEthernetFrame(Mac(0, 0, 0, 0, 0, 0xBB),
                               Mac(0, 0, 0, 0, 0, 0xAA), 0x0800, {1, 2, 3}));
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    seq_at_checkpoint = (*stack)->controller().digest_seq();
    ASSERT_GT(seq_at_checkpoint, 0);
    ASSERT_TRUE((*stack)->Checkpoint().ok());
  }

  SnvsOptions options;
  options.ha_dir = dir;
  auto stack = BuildSnvsStack(options);
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();
  // The cursor picks up where the checkpoint left it — re-learned MACs get
  // strictly larger seqs, so most-recent-wins ordering stays correct.
  EXPECT_EQ((*stack)->controller().digest_seq(), seq_at_checkpoint);

  auto out = (*stack)->InjectPacket(
      0, 2,
      net::MakeEthernetFrame(Mac(0, 0, 0, 0, 0, 0xAA),
                             Mac(0, 0, 0, 0, 0, 0xBB), 0x0800, {1, 2, 3}));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_GT((*stack)->controller().digest_seq(), seq_at_checkpoint);
}

TEST(HaRestart, CorruptSnapshotFallsBackToPreviousGeneration) {
  std::string dir = FreshDir("snap_fallback");
  Json db_before;
  {
    SnvsOptions options;
    options.ha_dir = dir;
    auto stack = BuildSnvsStack(options);
    ASSERT_TRUE(stack.ok()) << stack.status().ToString();
    ASSERT_TRUE((*stack)->AddPort("p1", 1, "access", 10).ok());
    ASSERT_TRUE((*stack)->Checkpoint().ok());
    ASSERT_TRUE((*stack)->AddPort("p2", 2, "access", 10).ok());
    ASSERT_TRUE((*stack)->Checkpoint().ok());
    // Live WAL records on top of the (about to be corrupted) snapshot.
    ASSERT_TRUE((*stack)->AddPort("p3", 3, "access", 20).ok());
    db_before = ha::DurableStore::SnapshotJson((*stack)->db(), 0);
  }

  // Bit rot inside the current snapshot: still valid JSON, wrong CRC.
  {
    std::string path = dir + "/snapshot.json";
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    size_t pos = text.find("access");
    ASSERT_NE(pos, std::string::npos);
    text[pos] = 'b';
    std::ofstream out(path, std::ios::trunc);
    out << text;
  }

  // Recovery detects the mismatch and rebuilds from the previous
  // generation: snapshot.json.1 + wal.jsonl.1 + wal.jsonl reconstruct the
  // exact same management plane, p3 included.
  SnvsOptions options;
  options.ha_dir = dir;
  auto stack = BuildSnvsStack(options);
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();
  EXPECT_TRUE((*stack)->store()->recovered());
  EXPECT_EQ((*stack)->store()->stats().snapshot_fallbacks, 1u);
  EXPECT_EQ(ha::DurableStore::SnapshotJson((*stack)->db(), 0), db_before);
}

TEST(HaRestart, TornFramedWalTailIsDroppedOnRestart) {
  std::string dir = FreshDir("torn_framed");
  Json db_before;
  {
    SnvsOptions options;
    options.ha_dir = dir;
    auto stack = BuildSnvsStack(options);
    ASSERT_TRUE(stack.ok()) << stack.status().ToString();
    ASSERT_TRUE((*stack)->AddPort("p1", 1, "access", 10).ok());
    db_before = ha::DurableStore::SnapshotJson((*stack)->db(), 0);
  }
  // Crash mid-append: a framed record whose tail never hit the disk.  The
  // stored CRC covers the full record, so the prefix cannot pass.
  {
    std::string full = ha::WriteAheadLog::FrameRecord(
        Json(Json::Object{{"never", Json(true)}}));
    std::ofstream out(dir + "/wal.jsonl", std::ios::app);
    out << full.substr(0, full.size() / 2);
  }
  SnvsOptions options;
  options.ha_dir = dir;
  auto stack = BuildSnvsStack(options);
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();
  EXPECT_EQ((*stack)->store()->stats().truncated_tail_records, 1u);
  EXPECT_EQ(ha::DurableStore::SnapshotJson((*stack)->db(), 0), db_before);
}

TEST(HaRestart, ControllerConvergesThroughInjectedWriteFaults) {
  // Reference run: no faults.
  auto reference = BuildSnvsStack().value();
  // Faulty run: every fifth write (in expectation) fails; the controller
  // retries with backoff kept tiny so the test is fast.
  SnvsOptions options;
  options.fault.write_fail_probability = 0.2;
  options.fault.seed = 12345;
  options.retry.max_attempts = 8;
  options.retry.initial_backoff_nanos = 1000;  // 1 us
  options.retry.max_backoff_nanos = 10000;
  auto faulty = BuildSnvsStack(options);
  ASSERT_TRUE(faulty.ok()) << faulty.status().ToString();

  for (SnvsStack* stack : {reference.get(), faulty->get()}) {
    ASSERT_TRUE(stack->AddPort("p1", 1, "access", 10).ok());
    ASSERT_TRUE(stack->AddPort("p2", 2, "access", 10).ok());
    ASSERT_TRUE(stack->AddPort("t1", 3, "trunk", 0, {10, 20}).ok());
    ASSERT_TRUE(stack->AddAclRule(0xAA, 10, false).ok());
    ASSERT_TRUE(stack->AddMirror("m1", 1, 3).ok());
    ASSERT_TRUE(stack->DeletePort("p2").ok());
    ASSERT_TRUE(stack->controller().last_error().ok());
  }

  // Same data-plane state despite the injected failures.
  EXPECT_EQ(DeviceState((*faulty)->device()), DeviceState(reference->device()));

  // The faults actually fired and the retry machinery is visible in stats.
  ASSERT_NE((*faulty)->faulty(0), nullptr);
  EXPECT_GT((*faulty)->faulty(0)->fault_stats().injected_failures, 0u);
  const auto& stats = (*faulty)->controller().stats();
  EXPECT_GT(stats.retries, 0u);
  EXPECT_EQ(stats.write_failures, 0u);  // nothing exhausted its attempts
  ASSERT_TRUE(stats.device_failures.count("sw0"));
  EXPECT_EQ(stats.device_failures.at("sw0"),
            (*faulty)->faulty(0)->fault_stats().injected_failures);
}

TEST(HaRestart, WarmStartRestoresEngineAndPreservesLearnedMacs) {
  std::string dir = FreshDir("warm_start");
  SurvivingDevice device(SnvsP4Program());

  std::string device_before;
  int64_t macs_before = 0;
  {
    SnvsOptions options;
    options.ha_dir = dir;
    options.external_clients = {device.client.get()};
    auto stack = BuildSnvsStack(options);
    ASSERT_TRUE(stack.ok()) << stack.status().ToString();
    ASSERT_TRUE((*stack)->AddPort("p1", 1, "access", 10).ok());
    ASSERT_TRUE((*stack)->AddPort("p2", 2, "access", 10).ok());
    ASSERT_TRUE((*stack)->AddPort("t1", 3, "trunk", 0, {10, 20}).ok());
    // Learned MACs live only in the engine (digest-fed, not in the durable
    // management plane): exactly the state only a checkpoint can carry
    // across a restart.
    auto out = device.sw->ProcessPacket(p4::PacketIn{
        1, net::MakeEthernetFrame(Mac(0, 0, 0, 0, 0, 0xBB),
                                  Mac(0, 0, 0, 0, 0, 0xAA), 0x0800,
                                  {1, 2, 3})});
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    out = device.sw->ProcessPacket(p4::PacketIn{
        2, net::MakeEthernetFrame(Mac(0, 0, 0, 0, 0, 0xAA),
                                  Mac(0, 0, 0, 0, 0, 0xBB), 0x0800,
                                  {1, 2, 3})});
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    ASSERT_TRUE((*stack)->controller().SyncDataPlaneNotifications().ok());
    macs_before =
        static_cast<int64_t>((*stack)->controller().engine().Size("MacLearn"));
    ASSERT_GT(macs_before, 0);
    ASSERT_TRUE((*stack)->Checkpoint().ok());
    // Mutations after the checkpoint: the warm start has to reconcile the
    // stale sidecar against the (newer) recovered management plane.
    ASSERT_TRUE((*stack)->AddPort("p4", 4, "access", 20).ok());
    ASSERT_TRUE((*stack)->DeletePort("p2").ok());
    device_before = DeviceState(*device.sw);
  }  // crash; the device keeps its tables, the sidecar is one txn stale

  uint64_t writes_before = device.client->write_count();
  SnvsOptions options;
  options.ha_dir = dir;
  options.external_clients = {device.client.get()};
  auto stack = BuildSnvsStack(options);
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();
  EXPECT_TRUE((*stack)->store()->recovered());

  const auto& stats = (*stack)->controller().stats();
  EXPECT_EQ(stats.engine_restores, 1u);
  EXPECT_EQ(stats.engine_restore_rejections, 0u);
  // p2 was deleted after the checkpoint: catch-up reconciliation removed
  // its restored row.  (p4's insert arrives through the normal monitor
  // snapshot; set semantics make re-inserts of restored rows no-ops.)
  EXPECT_GE(stats.catchup_deletes, 1u);
  // The learned MACs survived the restart without any re-learning traffic.
  EXPECT_EQ((*stack)->controller().engine().Size("MacLearn"),
            static_cast<size_t>(macs_before));
  // The restored desired state matches the surviving device exactly —
  // including the Dmac entries a cold start would have torn down — so the
  // resync wrote nothing.
  EXPECT_EQ(device.client->write_count(), writes_before);
  EXPECT_EQ(DeviceState(*device.sw), device_before);

  // Still live after a warm start.
  ASSERT_TRUE((*stack)->AddPort("p5", 5, "access", 20).ok());
  EXPECT_GT(device.client->write_count(), writes_before);
}

TEST(HaRestart, CorruptEngineCheckpointFallsBackToColdStart) {
  std::string dir = FreshDir("ckpt_fallback");
  Json db_before;
  {
    SnvsOptions options;
    options.ha_dir = dir;
    auto stack = BuildSnvsStack(options);
    ASSERT_TRUE(stack.ok()) << stack.status().ToString();
    ASSERT_TRUE((*stack)->AddPort("p1", 1, "access", 10).ok());
    ASSERT_TRUE((*stack)->AddPort("t1", 3, "trunk", 0, {10, 20}).ok());
    ASSERT_TRUE((*stack)->Checkpoint().ok());
    db_before = ha::DurableStore::SnapshotJson((*stack)->db(), 0);
  }

  // Bit rot inside the sidecar blob: the CRC32 frame check must reject it.
  {
    std::string path = dir + "/engine.controller.ckpt";
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), 24u);
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 1);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // The checkpoint is an accelerator, never a correctness dependency:
  // recovery rejects the damaged sidecar, cold-starts the engine, and the
  // stack comes up fully converged anyway.
  SnvsOptions options;
  options.ha_dir = dir;
  auto stack = BuildSnvsStack(options);
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();
  EXPECT_TRUE((*stack)->store()->recovered());
  auto rejected = (*stack)->store()->ReadEngineCheckpoint("controller");
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInternal);
  const auto& stats = (*stack)->controller().stats();
  EXPECT_EQ(stats.engine_restores, 0u);
  EXPECT_EQ(ha::DurableStore::SnapshotJson((*stack)->db(), 0), db_before);
  // Cold start recomputed the full desired state and programmed it.
  EXPECT_GT(TotalEntries((*stack)->device()), 0u);
  ASSERT_TRUE((*stack)->AddPort("p2", 2, "access", 10).ok());
  ASSERT_TRUE((*stack)->controller().last_error().ok());
}

// --- Hot-standby failover (SnvsHaPair): leases, fencing, warm handoff ---

TEST(HaFailover, DoubleFailoverConvergesWithWarmCheckpoints) {
  int64_t now = 1;
  constexpr int64_t kTtl = 1000;
  SnvsHaOptions options;
  options.devices = 2;
  options.lease_ttl_nanos = kTtl;
  options.clock = [&now] { return now; };
  auto built = BuildSnvsHaPair(options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  SnvsHaPair& pair = **built;

  ASSERT_EQ(pair.Tick(), 0);  // replica 0 ticks first and wins the election
  EXPECT_EQ(pair.controller(0).role(), Role::kLeader);
  EXPECT_EQ(pair.controller(1).role(), Role::kFollower);
  EXPECT_EQ(pair.lease(0).epoch(), 1);

  ASSERT_TRUE(pair.AddPort("p1", 1, "access", 10).ok());
  ASSERT_TRUE(pair.AddPort("p2", 2, "access", 10).ok());
  ASSERT_TRUE(pair.AddPort("t1", 3, "trunk", 0, {10, 20}).ok());
  ASSERT_TRUE(pair.AddAclRule(0xAA, 10, true).ok());
  // Learned MACs: digest-fed soft state only the checkpoint handoff can
  // carry to the standby (followers never drain digests).
  auto out = pair.InjectPacket(
      0, 1,
      net::MakeEthernetFrame(Mac(0, 0, 0, 0, 0, 0xBB),
                             Mac(0, 0, 0, 0, 0, 0xAA), 0x0800, {1, 2, 3}));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  out = pair.InjectPacket(
      0, 2,
      net::MakeEthernetFrame(Mac(0, 0, 0, 0, 0, 0xAA),
                             Mac(0, 0, 0, 0, 0, 0xBB), 0x0800, {1, 2, 3}));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  size_t macs = pair.controller(0).engine().Size("MacLearn");
  ASSERT_GT(macs, 0u);
  ASSERT_TRUE(pair.Checkpoint().ok());
  ASSERT_TRUE(pair.SyncStandby().ok());
  std::string devices_before =
      DeviceState(pair.device(0)) + DeviceState(pair.device(1));

  // Failover #1: leader 0 stops renewing (crash); 1 fences and takes over.
  now += 2 * kTtl;
  ASSERT_EQ(pair.Tick(), 1);
  EXPECT_EQ(pair.controller(0).role(), Role::kFollower);
  EXPECT_EQ(pair.controller(1).role(), Role::kLeader);
  EXPECT_EQ(pair.lease(1).epoch(), 2);  // new holder bumps the fencing epoch
  EXPECT_EQ(pair.controller(0).stats().demotions, 1u);
  {
    const auto& stats = pair.controller(1).stats();
    EXPECT_EQ(stats.promotions, 1u);
    // The warm standby derived the identical desired state, so the
    // promotion resync read everything and wrote nothing.
    EXPECT_GT(stats.resync_reads, 0u);
    EXPECT_EQ(stats.resync_inserted, 0u);
    EXPECT_EQ(stats.resync_deleted, 0u);
    EXPECT_EQ(stats.resync_modified, 0u);
  }
  // The learned MACs crossed the failover via the checkpoint.
  EXPECT_EQ(pair.controller(1).engine().Size("MacLearn"), macs);
  EXPECT_EQ(DeviceState(pair.device(0)) + DeviceState(pair.device(1)),
            devices_before);

  // The new leader is live.
  ASSERT_TRUE(pair.AddPort("p4", 4, "access", 20).ok());

  // Failover #2: back to replica 0 the same way.
  ASSERT_TRUE(pair.Checkpoint().ok());
  ASSERT_TRUE(pair.SyncStandby().ok());
  size_t macs2 = pair.controller(1).engine().Size("MacLearn");
  devices_before = DeviceState(pair.device(0)) + DeviceState(pair.device(1));
  now += 2 * kTtl;
  ASSERT_EQ(pair.Tick(), 0);
  EXPECT_EQ(pair.controller(0).role(), Role::kLeader);
  EXPECT_EQ(pair.controller(1).role(), Role::kFollower);
  EXPECT_EQ(pair.lease(0).epoch(), 3);
  EXPECT_EQ(pair.controller(0).stats().promotions, 2u);
  EXPECT_EQ(pair.controller(1).stats().demotions, 1u);
  {
    const auto& stats = pair.controller(0).stats();
    EXPECT_EQ(stats.resync_inserted, 0u);
    EXPECT_EQ(stats.resync_deleted, 0u);
    EXPECT_EQ(stats.resync_modified, 0u);
  }
  EXPECT_EQ(pair.controller(0).engine().Size("MacLearn"), macs2);
  EXPECT_EQ(DeviceState(pair.device(0)) + DeviceState(pair.device(1)),
            devices_before);
  ASSERT_TRUE(pair.AddPort("p5", 5, "access", 10).ok());
  ASSERT_TRUE(pair.controller(0).last_error().ok());
}

TEST(HaFailover, ZombieLeaderIsFencedAtTheSwitchAndSelfDemotes) {
  int64_t now = 1;
  constexpr int64_t kTtl = 1000;
  SnvsHaOptions options;
  options.devices = 2;
  options.lease_ttl_nanos = kTtl;
  options.clock = [&now] { return now; };
  auto built = BuildSnvsHaPair(options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  SnvsHaPair& pair = **built;

  ASSERT_EQ(pair.Tick(), 0);
  ASSERT_TRUE(pair.AddPort("p1", 1, "access", 10).ok());
  ASSERT_TRUE(pair.AddPort("p2", 2, "access", 20).ok());
  ASSERT_TRUE(pair.Checkpoint().ok());
  ASSERT_TRUE(pair.SyncStandby().ok());

  // Partition the leader: its lease expires but only the standby's
  // coordinator runs (a GC pause / network partition from replica 0's
  // point of view — it still believes it leads).
  now += 2 * kTtl;
  ASSERT_TRUE(pair.coordinator(1).Tick());
  EXPECT_EQ(pair.controller(1).role(), Role::kLeader);
  EXPECT_EQ(pair.controller(0).role(), Role::kLeader);  // the zombie
  EXPECT_EQ(pair.leader(), 1);  // disambiguated by the higher lease epoch

  uint64_t stale_before =
      pair.device(0).stale_writes() + pair.device(1).stale_writes();
  Controller::Stats zombie_before = pair.controller(0).stats();
  uint64_t applied_before = zombie_before.entries_inserted +
                            zombie_before.entries_deleted +
                            zombie_before.multicast_updates;

  // The next management commit fans out to both controllers.  The zombie
  // races the real leader to the shared switches and must lose at every
  // one: its fence token predates the promotion arbitration.
  ASSERT_TRUE(pair.AddPort("z9", 9, "access", 20).ok());

  uint64_t stale_after =
      pair.device(0).stale_writes() + pair.device(1).stale_writes();
  EXPECT_GT(stale_after, stale_before);
  Controller::Stats zombie_after = pair.controller(0).stats();
  uint64_t applied_after = zombie_after.entries_inserted +
                           zombie_after.entries_deleted +
                           zombie_after.multicast_updates;
  // Write stats count only device-accepted writes: zero stale writes
  // reached the data plane.
  EXPECT_EQ(applied_after, applied_before);
  EXPECT_GE(zombie_after.fenced_writes_rejected, 1u);
  EXPECT_GE(zombie_after.demotions, 1u);
  // The first rejection told the zombie it was deposed: it self-demoted.
  EXPECT_EQ(pair.controller(0).role(), Role::kFollower);
  EXPECT_EQ(pair.leader(), 1);

  // The data plane holds exactly the desired state (no duplicates from the
  // race): a verification resync by the real leader finds zero diff.
  Controller::Stats leader_before = pair.controller(1).stats();
  ASSERT_TRUE(pair.controller(1).ResyncDevice("sw0").ok());
  ASSERT_TRUE(pair.controller(1).ResyncDevice("sw1").ok());
  Controller::Stats leader_after = pair.controller(1).stats();
  EXPECT_EQ(leader_after.resync_inserted, leader_before.resync_inserted);
  EXPECT_EQ(leader_after.resync_deleted, leader_before.resync_deleted);
  EXPECT_EQ(leader_after.resync_modified, leader_before.resync_modified);
}

TEST(HaLease, EpochStaysMonotoneAcrossCorruptAndDeletedRecords) {
  ovsdb::Database db(ovsdb::WithLeaderLease(SnvsSchema()));
  int64_t now = 1;
  auto clock = [&now] { return now; };
  ha::LeaseManager a(&db, {"a", 1000, clock});
  ha::LeaseManager b(&db, {"b", 1000, clock});

  auto held = a.TryAcquire();
  ASSERT_TRUE(held.ok()) << held.status().ToString();
  EXPECT_EQ(*held, 1);

  // A live lease blocks takeover.
  auto blocked = b.TryAcquire();
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kFailedPrecondition);

  // Natural expiry: the new holder acquires with a bumped epoch.
  now += 2000;
  held = b.TryAcquire();
  ASSERT_TRUE(held.ok()) << held.status().ToString();
  EXPECT_EQ(*held, 2);

  // `a` observes the new epoch through a failed acquire attempt.
  blocked = a.TryAcquire();
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(a.last_observed_epoch(), 2);

  // The record is corrupted in place — reset to epoch 0, expired.  The
  // monotone floor must keep the next acquisition above every epoch the
  // manager ever saw, or downstream fences would accept a recycled token.
  auto zeroed = db.TransactText(
      R"([{"op":"update","table":"Leader_Lease","where":[],)"
      R"("row":{"epoch":0,"holder":"","expiry_nanos":0}}])");
  ASSERT_TRUE(zeroed.ok()) << zeroed.status().ToString();
  held = a.TryAcquire();
  ASSERT_TRUE(held.ok()) << held.status().ToString();
  EXPECT_EQ(*held, 3);

  // Deleting the record entirely is no better: the floor survives the
  // record's death because it lives in the manager, not the row.
  now += 2000;
  auto wiped =
      db.TransactText(R"([{"op":"delete","table":"Leader_Lease","where":[]}])");
  ASSERT_TRUE(wiped.ok()) << wiped.status().ToString();
  held = a.TryAcquire();
  ASSERT_TRUE(held.ok()) << held.status().ToString();
  EXPECT_EQ(*held, 4);
  EXPECT_EQ(a.last_observed_epoch(), 4);
}

TEST(HaLease, AssertFenceRejectsStaleEpochTransactions) {
  ovsdb::Database db(ovsdb::WithLeaderLease(SnvsSchema()));
  int64_t now = 1;
  ha::LeaseManager leader(&db, {"ctl0", 1000, [&now] { return now; }});
  auto held = leader.TryAcquire();
  ASSERT_TRUE(held.ok()) << held.status().ToString();
  ASSERT_EQ(*held, 1);

  // A writer carrying a stale epoch is rejected atomically: the whole
  // transaction rolls back and the rejection is counted.
  ovsdb::TxnBuilder stale(&db);
  stale.AssertFence(0);
  stale.Update(ovsdb::kLeaderLeaseTable, {},
               {{ovsdb::kLeaseHolderColumn, ovsdb::Datum::String("evil")}});
  auto rejected = stale.Commit();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(db.fence_rejections(), 1u);
  auto lease = leader.Read();
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->holder, "ctl0");  // the write never landed

  // The current epoch passes.
  ovsdb::TxnBuilder current(&db);
  current.AssertFence(1);
  current.Update(ovsdb::kLeaderLeaseTable, {},
                 {{ovsdb::kLeaseHolderColumn, ovsdb::Datum::String("ctl0b")}});
  ASSERT_TRUE(current.Commit().ok());
  EXPECT_EQ(db.fence_rejections(), 1u);
  lease = leader.Read();
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->holder, "ctl0b");
}

}  // namespace
}  // namespace nerpa::snvs
