file(REMOVE_RECURSE
  "CMakeFiles/test_snvs_integration.dir/test_snvs_integration.cc.o"
  "CMakeFiles/test_snvs_integration.dir/test_snvs_integration.cc.o.d"
  "test_snvs_integration"
  "test_snvs_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snvs_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
