file(REMOVE_RECURSE
  "CMakeFiles/test_ovsdb_rpc.dir/test_ovsdb_rpc.cc.o"
  "CMakeFiles/test_ovsdb_rpc.dir/test_ovsdb_rpc.cc.o.d"
  "test_ovsdb_rpc"
  "test_ovsdb_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ovsdb_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
