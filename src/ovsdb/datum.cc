#include "ovsdb/datum.h"

#include <algorithm>

#include "common/strings.h"

namespace nerpa::ovsdb {

Datum Datum::Scalar(Atom atom) {
  Datum d;
  d.keys_.push_back(std::move(atom));
  return d;
}

Datum Datum::Set(std::vector<Atom> atoms) {
  Datum d;
  std::sort(atoms.begin(), atoms.end());
  atoms.erase(std::unique(atoms.begin(), atoms.end()), atoms.end());
  d.keys_ = std::move(atoms);
  return d;
}

Datum Datum::Map(std::vector<std::pair<Atom, Atom>> pairs) {
  std::stable_sort(pairs.begin(), pairs.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  Datum d;
  for (auto& [key, value] : pairs) {
    if (!d.keys_.empty() && d.keys_.back() == key) {
      d.values_.back() = std::move(value);  // last duplicate wins
    } else {
      d.keys_.push_back(std::move(key));
      d.values_.push_back(std::move(value));
    }
  }
  return d;
}

bool Datum::ContainsKey(const Atom& key) const {
  return std::binary_search(keys_.begin(), keys_.end(), key);
}

std::optional<Atom> Datum::MapGet(const Atom& key) const {
  if (!is_map()) return std::nullopt;
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || !(*it == key)) return std::nullopt;
  return values_[static_cast<size_t>(it - keys_.begin())];
}

void Datum::InsertKey(Atom key) {
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it != keys_.end() && *it == key) return;
  keys_.insert(it, std::move(key));
}

void Datum::InsertPair(Atom key, Atom value) {
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  size_t index = static_cast<size_t>(it - keys_.begin());
  if (it != keys_.end() && *it == key) {
    values_[index] = std::move(value);
    return;
  }
  keys_.insert(it, std::move(key));
  values_.insert(values_.begin() + static_cast<long>(index), std::move(value));
}

void Datum::EraseKey(const Atom& key) {
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || !(*it == key)) return;
  size_t index = static_cast<size_t>(it - keys_.begin());
  keys_.erase(it);
  if (!values_.empty()) {
    values_.erase(values_.begin() + static_cast<long>(index));
  }
}

Status Datum::CheckType(const ColumnType& type) const {
  if (is_map() != type.is_map() && !empty()) {
    return TypeError("datum map-ness does not match column type");
  }
  if (size() < type.min || size() > type.max) {
    return ConstraintError(StrFormat(
        "datum has %zu elements, column allows [%u, %u]", size(), type.min,
        type.max));
  }
  for (const Atom& key : keys_) {
    NERPA_RETURN_IF_ERROR(type.key.CheckAtom(key));
  }
  if (type.is_map()) {
    for (const Atom& value : values_) {
      NERPA_RETURN_IF_ERROR(type.value->CheckAtom(value));
    }
  }
  return Status::Ok();
}

Json Datum::ToJson() const {
  if (is_map()) {
    Json::Array pairs;
    for (size_t i = 0; i < keys_.size(); ++i) {
      pairs.push_back(
          Json(Json::Array{keys_[i].ToJson(), values_[i].ToJson()}));
    }
    return Json(Json::Array{Json("map"), Json(std::move(pairs))});
  }
  if (keys_.size() == 1) return keys_[0].ToJson();
  Json::Array atoms;
  for (const Atom& atom : keys_) atoms.push_back(atom.ToJson());
  return Json(Json::Array{Json("set"), Json(std::move(atoms))});
}

Result<Datum> Datum::FromJson(const Json& json, const ColumnType& type,
                              const std::map<std::string, Uuid>* named_uuids) {
  // ["set", [...]] and ["map", [[k,v],...]] wrappers.
  if (json.is_array() && json.as_array().size() == 2 &&
      json.as_array()[0].is_string()) {
    const std::string& tag = json.as_array()[0].as_string();
    const Json& body = json.as_array()[1];
    if (tag == "set") {
      if (!body.is_array()) return ParseError("set body must be an array");
      std::vector<Atom> atoms;
      for (const Json& item : body.as_array()) {
        NERPA_ASSIGN_OR_RETURN(Atom atom,
                               Atom::FromJson(item, type.key.type,
                                              named_uuids));
        atoms.push_back(std::move(atom));
      }
      Datum out = Set(std::move(atoms));
      NERPA_RETURN_IF_ERROR(out.CheckType(type));
      return out;
    }
    if (tag == "map") {
      if (!type.is_map()) return ParseError("map datum for non-map column");
      if (!body.is_array()) return ParseError("map body must be an array");
      std::vector<std::pair<Atom, Atom>> pairs;
      for (const Json& item : body.as_array()) {
        if (!item.is_array() || item.as_array().size() != 2) {
          return ParseError("map entry must be a [key, value] pair");
        }
        NERPA_ASSIGN_OR_RETURN(
            Atom key,
            Atom::FromJson(item.as_array()[0], type.key.type, named_uuids));
        NERPA_ASSIGN_OR_RETURN(
            Atom value,
            Atom::FromJson(item.as_array()[1], type.value->type, named_uuids));
        pairs.emplace_back(std::move(key), std::move(value));
      }
      Datum out = Map(std::move(pairs));
      NERPA_RETURN_IF_ERROR(out.CheckType(type));
      return out;
    }
    // Fall through: ["uuid", ...] / ["named-uuid", ...] are scalar atoms.
  }
  NERPA_ASSIGN_OR_RETURN(Atom atom,
                         Atom::FromJson(json, type.key.type, named_uuids));
  Datum out = Scalar(std::move(atom));
  NERPA_RETURN_IF_ERROR(out.CheckType(type));
  return out;
}

Datum Datum::Default(const ColumnType& type) {
  if (type.min == 0) return Datum();
  if (type.is_map()) return Datum();  // maps with min>0 have no default
  Atom atom;
  switch (type.key.type) {
    case AtomicType::kInteger: atom = Atom(int64_t{0}); break;
    case AtomicType::kReal: atom = Atom(0.0); break;
    case AtomicType::kBoolean: atom = Atom(false); break;
    case AtomicType::kString: atom = Atom(std::string()); break;
    case AtomicType::kUuid: atom = Atom(Uuid{}); break;
  }
  return Scalar(std::move(atom));
}

std::string Datum::ToString() const {
  if (is_map()) {
    std::string out = "{";
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (i > 0) out += ", ";
      out += keys_[i].ToString() + "=" + values_[i].ToString();
    }
    return out + "}";
  }
  if (keys_.size() == 1) return keys_[0].ToString();
  std::string out = "[";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += keys_[i].ToString();
  }
  return out + "]";
}

bool Datum::operator<(const Datum& o) const {
  if (keys_ != o.keys_) {
    return std::lexicographical_compare(keys_.begin(), keys_.end(),
                                        o.keys_.begin(), o.keys_.end());
  }
  return std::lexicographical_compare(values_.begin(), values_.end(),
                                      o.values_.begin(), o.values_.end());
}

}  // namespace nerpa::ovsdb
