#include "ovsdb/server.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/clock.h"
#include "common/log.h"
#include "common/strings.h"
#include "ovsdb/uuid.h"

namespace nerpa::ovsdb {

Json TableUpdatesToJson(const DatabaseSchema& schema,
                        const TableUpdates& updates) {
  Json::Object tables_json;
  for (const auto& [table_name, rows] : updates) {
    const TableSchema* table = schema.FindTable(table_name);
    Json::Object rows_json;
    for (const auto& [uuid, update] : rows) {
      Json::Object row_json;
      auto row_to_json = [&](const Row& row) {
        Json::Object columns;
        // Database rows always carry every column (inserts fill defaults),
        // so an absent column here means a column-scoped monitor projected
        // it away — omit it rather than leaking a default.
        for (const ColumnSchema& column : table->columns) {
          const Datum* datum = row.Find(column.name);
          if (datum == nullptr) continue;
          columns[column.name] = datum->ToJson();
        }
        return Json(std::move(columns));
      };
      if (update.old_row) row_json["old"] = row_to_json(*update.old_row);
      if (update.new_row) row_json["new"] = row_to_json(*update.new_row);
      rows_json[uuid.ToString()] = Json(std::move(row_json));
    }
    tables_json[table_name] = Json(std::move(rows_json));
  }
  return Json(std::move(tables_json));
}

OvsdbServer::OvsdbServer(std::unique_ptr<Database> db) : db_(std::move(db)) {}

OvsdbServer::~OvsdbServer() { Stop(); }

Status OvsdbServer::Start(uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Internal("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Internal(StrFormat(
        "bind(127.0.0.1:%u) failed: %s", port,
        std::strerror(errno)));  // NOLINT(concurrency-mt-unsafe)
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 8) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Internal("listen() failed");
  }
  if (::pipe(wake_pipe_) != 0) return Internal("pipe() failed");
  // Fresh instance epoch: txn-ids handed out by a previous incarnation
  // (whose counter restarted at 0) must never match this history.  The
  // uuid stream is deterministic per process; folding in the clock keeps
  // epochs distinct across server processes too.
  epoch_ = StrFormat("%s@%llx", Uuid::Generate().ToString().c_str(),
                     static_cast<unsigned long long>(MonotonicNanos()));
  // The history monitor feeds the monitor_since replay window.  It is the
  // FIRST monitor registered, so on every commit the txn counter advances
  // before any per-client notification lambda reads it.  Registered here
  // (before the service thread exists) because AddMonitor delivers the
  // current contents synchronously — which we skip: history records
  // deltas, not the initial state.
  {
    auto first = std::make_shared<bool>(true);
    history_monitor_id_ =
        db_->AddMonitor({}, [this, first](const TableUpdates& updates) {
          if (*first) return;
          ++txn_counter_;
          history_.emplace_back(txn_counter_,
                                TableUpdatesToJson(db_->schema(), updates));
          while (history_.size() > history_limit_) history_.pop_front();
        });
    *first = false;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { ServiceLoop(); });
  return Status::Ok();
}

void OvsdbServer::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  // Wake the poll loop.
  char byte = 'x';
  (void)!::write(wake_pipe_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  if (history_monitor_id_ != 0) {
    db_->RemoveMonitor(history_monitor_id_);
    history_monitor_id_ = 0;
  }
  // Graceful drain: responses and monitor deltas already queued go out
  // (bounded) before the sockets close, so a benchmark or CI harness that
  // stops the server never reads a truncated final message.
  DrainOutboxes(kDrainDeadlineMs);
  for (auto& client : clients_) {
    if (client->fd >= 0) ::close(client->fd);
  }
  clients_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

void OvsdbServer::SendTo(Client& client, const JsonRpcMessage& message) {
  if (client.overflowed) return;  // already condemned; stop queueing
  client.outbox += message.ToJson().Dump();
  FlushOutbox(client);
  // Backpressure: a peer that stopped reading while monitor fan-out keeps
  // producing would otherwise grow this buffer without bound and slow
  // every commit (SendTo runs inside Transact).  Non-priority sessions
  // are shed; priority sessions opted into keeping their stream.
  if (client.priority <= 0 && client.outbox.size() > max_outbox_bytes_) {
    client.overflowed = true;
    client.outbox.clear();
    slow_consumer_drops_.fetch_add(1, std::memory_order_relaxed);
  }
}

void OvsdbServer::FlushOutbox(Client& client) {
  while (!client.outbox.empty()) {
    ssize_t n = ::send(client.fd, client.outbox.data(), client.outbox.size(),
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // retry later
      client.outbox.clear();
      return;  // peer gone; DropClient happens on the read side
    }
    client.outbox.erase(0, static_cast<size_t>(n));
  }
}

void OvsdbServer::DrainOutboxes(int deadline_ms) {
  int64_t deadline = MonotonicNanos() + int64_t{deadline_ms} * 1000000;
  while (MonotonicNanos() < deadline) {
    std::vector<pollfd> fds;
    for (const auto& client : clients_) {
      if (!client->outbox.empty() && client->fd >= 0) {
        fds.push_back({client->fd, POLLOUT, 0});
      }
    }
    if (fds.empty()) return;  // everything flushed
    if (::poll(fds.data(), fds.size(), 50) < 0 && errno != EINTR) return;
    for (auto& client : clients_) {
      if (!client->outbox.empty() && client->fd >= 0) FlushOutbox(*client);
    }
  }
}

void OvsdbServer::ServiceLoop() {
  while (running_.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    for (const auto& client : clients_) {
      short events = POLLIN;
      if (!client->outbox.empty()) events |= POLLOUT;
      fds.push_back({client->fd, events, 0});
    }
    if (::poll(fds.data(), fds.size(), 200) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents & POLLIN) {
      char sink[16];
      (void)!::read(wake_pipe_[0], sink, sizeof sink);
    }
    if (fds[0].revents & POLLIN) {
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        if (send_buffer_bytes_ > 0) {
          ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &send_buffer_bytes_,
                       sizeof send_buffer_bytes_);
        }
        // Non-blocking sends: a full kernel buffer backs up into the
        // outbox (where the cap sheds slow consumers) instead of
        // blocking the service thread mid-commit.
        ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
        auto client = std::make_unique<Client>();
        client->fd = fd;
        clients_.push_back(std::move(client));
      }
    }
    // Service clients, priority sessions first: with both a transact
    // pipeline and heavy monitor fan-out pending, the priority session's
    // input is parsed (and its transacts applied) before non-priority
    // work each cycle.  Index-based over a stable snapshot of the size;
    // HandleDocument may not mutate clients_, drops happen in the sweep.
    size_t serviced = std::min(clients_.size(), fds.size() - 2);
    std::vector<size_t> order(serviced);
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return clients_[a]->priority > clients_[b]->priority;
    });
    for (size_t i : order) {
      Client& client = *clients_[i];
      size_t poll_index = 2 + i;
      if (fds[poll_index].revents & POLLOUT) {
        FlushOutbox(client);
      }
      if (fds[poll_index].revents & POLLIN) {
        char buffer[4096];
        ssize_t n = ::recv(client.fd, buffer, sizeof buffer, 0);
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          // spurious wakeup on the non-blocking socket; not a drop
        } else if (n <= 0) {
          client.overflowed = true;  // peer gone; sweep below reaps it
        } else {
          Status fed = client.splitter.Feed(
              std::string_view(buffer, static_cast<size_t>(n)),
              [&](std::string_view text) -> Status {
                HandleDocument(client, text);
                return Status::Ok();
              });
          if (!fed.ok()) client.overflowed = true;  // protocol violation
        }
      }
      if (fds[poll_index].revents & (POLLHUP | POLLERR)) {
        client.overflowed = true;
      }
    }
    // Sweep: reap dead peers and shed slow consumers in one pass.
    for (size_t i = 0; i < clients_.size();) {
      if (clients_[i]->overflowed) {
        DropClient(i);
      } else {
        ++i;
      }
    }
  }
}

void OvsdbServer::DropClient(size_t index) {
  Client& client = *clients_[index];
  for (const auto& [name, sub] : client.monitors) {
    db_->RemoveMonitor(sub.db_id);
  }
  ::close(client.fd);
  clients_.erase(clients_.begin() + static_cast<long>(index));
}

void OvsdbServer::HandleDocument(Client& client, std::string_view text) {
  auto json = Json::Parse(text);
  if (!json.ok()) {
    SendTo(client, JsonRpcMessage::ErrorResponse(Json("parse error"),
                                                 Json(nullptr)));
    return;
  }
  auto message = JsonRpcMessage::FromJson(*json);
  if (!message.ok()) {
    SendTo(client, JsonRpcMessage::ErrorResponse(Json("bad message"),
                                                 Json(nullptr)));
    return;
  }
  if (message->kind == JsonRpcMessage::Kind::kResponse) {
    return;  // e.g. the peer answering our echo; nothing to do
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  JsonRpcMessage response = HandleRequest(client, *message);
  if (message->kind == JsonRpcMessage::Kind::kRequest) {
    SendTo(client, response);
  }
}

JsonRpcMessage OvsdbServer::HandleRequest(Client& client,
                                          const JsonRpcMessage& request) {
  auto ok = [&](Json result) {
    return JsonRpcMessage::Response(std::move(result), request.id);
  };
  auto fail = [&](const std::string& error) {
    return JsonRpcMessage::ErrorResponse(Json(error), request.id);
  };

  if (request.method == "echo") {
    return ok(request.params);
  }
  if (request.method == "list_dbs") {
    return ok(Json(Json::Array{Json(db_->schema().name)}));
  }
  if (request.method == "get_schema") {
    return ok(db_->schema().ToJson());
  }
  if (request.method == "transact") {
    // params: [db-name, op1, op2, ...]
    // String ids key the response cache: a healed client re-sends the same
    // id, and a transact that was applied before the transport died must
    // answer from the cache, NOT apply a second time (exactly-once).
    const bool dedup = request.id.is_string();
    const std::string dedup_key = dedup ? request.id.as_string() : "";
    if (dedup) {
      auto cached = transact_results_.find(dedup_key);
      if (cached != transact_results_.end()) {
        transacts_deduped_.fetch_add(1, std::memory_order_relaxed);
        return cached->second;
      }
    }
    if (!request.params.is_array() || request.params.as_array().empty()) {
      return fail("transact needs [db, ops...]");
    }
    // Deadline check AFTER the dedup lookup (a cached answer is free) and
    // BEFORE evaluation: a transaction the caller has already abandoned
    // must not consume a database commit.
    if (request.deadline_nanos > 0 &&
        MonotonicNanos() >= request.deadline_nanos) {
      deadline_rejects_.fetch_add(1, std::memory_order_relaxed);
      return fail("deadline exceeded: transact abandoned before evaluation");
    }
    Json::Array ops(request.params.as_array().begin() + 1,
                    request.params.as_array().end());
    Result<Json> result = db_->Transact(Json(std::move(ops)));
    JsonRpcMessage response = result.ok()
                                  ? ok(std::move(result).value())
                                  : fail(result.status().ToString());
    if (dedup) {
      transact_results_[dedup_key] = response;
      transact_order_.push_back(dedup_key);
      while (transact_order_.size() > kTransactCacheLimit) {
        transact_results_.erase(transact_order_.front());
        transact_order_.pop_front();
      }
    }
    return response;
  }
  if (request.method == "monitor") {
    Result<Json> result = DoMonitor(client, request.params);
    if (!result.ok()) return fail(result.status().ToString());
    return ok(std::move(result).value());
  }
  if (request.method == "monitor_since") {
    Result<Json> result = DoMonitorSince(client, request.params);
    if (!result.ok()) return fail(result.status().ToString());
    return ok(std::move(result).value());
  }
  if (request.method == "monitor_cancel") {
    Result<Json> result = DoMonitorCancel(client, request.params);
    if (!result.ok()) return fail(result.status().ToString());
    return ok(std::move(result).value());
  }
  if (request.method == "fetch") {
    if (request.deadline_nanos > 0 &&
        MonotonicNanos() >= request.deadline_nanos) {
      deadline_rejects_.fetch_add(1, std::memory_order_relaxed);
      return fail("deadline exceeded: fetch abandoned before evaluation");
    }
    Result<Json> result = DoFetch(request.params);
    if (!result.ok()) return fail(result.status().ToString());
    return ok(std::move(result).value());
  }
  if (request.method == "set_priority") {
    // params: [level] — level > 0 marks this session as a priority
    // session: serviced first each poll cycle and exempt from the
    // slow-consumer outbox cap.
    if (!request.params.is_array() || request.params.as_array().empty() ||
        !request.params.as_array()[0].is_integer()) {
      return fail("set_priority needs [level]");
    }
    client.priority =
        static_cast<int>(request.params.as_array()[0].as_integer());
    return ok(Json(Json::Object{}));
  }
  return fail("unknown method '" + request.method + "'");
}

Result<Json> OvsdbServer::DoFetch(const Json& params) {
  // params: [db, table, where, columns?] — the on-demand read of columns a
  // client deliberately does not monitor.
  if (!params.is_array() || params.as_array().size() < 3 ||
      !params.as_array()[1].is_string()) {
    return InvalidArgument("fetch needs [db, table, where, columns?]");
  }
  const std::string& table = params.as_array()[1].as_string();
  std::vector<std::string> columns;
  if (params.as_array().size() >= 4 && params.as_array()[3].is_array()) {
    for (const Json& column : params.as_array()[3].as_array()) {
      if (!column.is_string()) {
        return InvalidArgument("fetch columns must be strings");
      }
      columns.push_back(column.as_string());
    }
  }
  return db_->FetchRows(table, params.as_array()[2], columns);
}

Result<Json> OvsdbServer::RegisterMonitor(Client& client, const Json& params,
                                          bool with_txn) {
  Json monitor_id = params.as_array()[1];
  std::string key = monitor_id.Dump();
  if (client.monitors.count(key) != 0) {
    return AlreadyExists("duplicate monitor id " + key);
  }
  Database::MonitorColumnSpec spec;
  if (params.as_array().size() >= 3 && params.as_array()[2].is_object()) {
    for (const auto& [table, table_spec] : params.as_array()[2].as_object()) {
      const TableSchema* table_schema = db_->schema().FindTable(table);
      if (table_schema == nullptr) {
        return NotFound("no table '" + table + "'");
      }
      // Per-table column selection, RFC 7047 style:
      //   {table: {"columns": ["a", "b"]}} — monitor only those columns.
      //   {table: {}} — monitor every column.
      std::vector<std::string>& columns = spec[table];
      if (const Json* cols = table_spec.Find("columns");
          cols != nullptr && cols->is_array()) {
        for (const Json& column : cols->as_array()) {
          if (!column.is_string() ||
              table_schema->FindColumn(column.as_string()) == nullptr) {
            return NotFound(StrFormat("no column %s in table '%s'",
                                      column.Dump().c_str(), table.c_str()));
          }
          columns.push_back(column.as_string());
        }
      }
    }
  }
  // Capture the initial snapshot delivered synchronously by AddMonitor as
  // the reply; subsequent deltas go out as "update" notifications.  The
  // flag/snapshot live on the heap because the callback outlives this
  // frame.
  auto first = std::make_shared<bool>(true);
  auto initial = std::make_shared<Json>(Json::Object{});
  Client* client_ptr = &client;
  uint64_t id = db_->AddMonitorColumns(
      std::move(spec),
      [this, client_ptr, monitor_id, initial, first, with_txn](
          const TableUpdates& updates) {
        Json payload = TableUpdatesToJson(db_->schema(), updates);
        if (*first) {
          *initial = std::move(payload);
          return;
        }
        // Runs on the service thread during Transact; push a notification.
        // The history monitor fired first, so txn_counter_ already names
        // this commit.
        Json::Array note{monitor_id, payload};
        if (with_txn) note.push_back(Json(txn_counter_));
        SendTo(*client_ptr,
               JsonRpcMessage::Notification("update", Json(std::move(note))));
      });
  *first = false;
  client.monitors[key] = MonitorSub{id, with_txn};
  return *initial;
}

Result<Json> OvsdbServer::DoMonitor(Client& client, const Json& params) {
  // params: [db-name, monitor-id(any json), {table: ...} or null = all]
  if (!params.is_array() || params.as_array().size() < 2) {
    return InvalidArgument("monitor needs [db, id, requests?]");
  }
  return RegisterMonitor(client, params, /*with_txn=*/false);
}

namespace {

/// Projects a history payload ({table: {uuid: {"old": ..., "new": ...}}})
/// onto a monitor's table/column spec, mirroring what the live monitor
/// would have delivered: unselected tables vanish, rows shrink to the
/// selected columns, and modifies touching only unselected columns drop.
Json FilterUpdateTables(const Json& payload,
                        const Database::MonitorColumnSpec& spec) {
  if (spec.empty() || !payload.is_object()) return payload;
  Json::Object filtered;
  for (const auto& [table, columns] : spec) {
    const Json* entry = payload.Find(table);
    if (entry == nullptr) continue;
    if (columns.empty() || !entry->is_object()) {
      filtered[table] = *entry;
      continue;
    }
    Json::Object rows;
    for (const auto& [uuid, row_update] : entry->as_object()) {
      Json::Object projected;
      for (const char* side : {"old", "new"}) {
        const Json* row = row_update.Find(side);
        if (row == nullptr || !row->is_object()) continue;
        Json::Object cells;
        for (const std::string& column : columns) {
          if (const Json* cell = row->Find(column); cell != nullptr) {
            cells[column] = *cell;
          }
        }
        projected[side] = Json(std::move(cells));
      }
      // A modify invisible through the projection is suppressed.
      const Json* old_side = projected.count("old") ? &projected.at("old")
                                                    : nullptr;
      const Json* new_side = projected.count("new") ? &projected.at("new")
                                                    : nullptr;
      if (old_side != nullptr && new_side != nullptr &&
          *old_side == *new_side) {
        continue;
      }
      rows[uuid] = Json(std::move(projected));
    }
    if (!rows.empty()) filtered[table] = Json(std::move(rows));
  }
  return Json(std::move(filtered));
}

}  // namespace

Result<Json> OvsdbServer::DoMonitorSince(Client& client, const Json& params) {
  // params: [db, id, {table: ...} or null = all, last-txn-id, epoch?]
  // reply:  [found, latest-txn-id, [updates...], epoch] — when found, the
  // array holds exactly the deltas after last-txn-id in commit order; when
  // the gap has aged out of the history window, or the txn-id was minted
  // by a different server incarnation (epoch mismatch — the counter
  // restarts at 0 per Start(), so a stale id could otherwise look
  // plausible and silently replay the wrong deltas), found=false and the
  // array holds one full dump.
  if (!params.is_array() || params.as_array().size() < 4) {
    return InvalidArgument("monitor_since needs [db, id, requests, last-txn-id]");
  }
  const Json& last_json = params.as_array()[3];
  int64_t last = last_json.is_integer() ? last_json.as_integer() : -1;
  std::string client_epoch;
  if (params.as_array().size() >= 5 && params.as_array()[4].is_string()) {
    client_epoch = params.as_array()[4].as_string();
  }
  Database::MonitorColumnSpec spec;
  if (params.as_array()[2].is_object()) {
    for (const auto& [table, table_spec] : params.as_array()[2].as_object()) {
      std::vector<std::string>& columns = spec[table];
      if (const Json* cols = table_spec.Find("columns");
          cols != nullptr && cols->is_array()) {
        for (const Json& column : cols->as_array()) {
          if (column.is_string()) columns.push_back(column.as_string());
        }
      }
    }
  }
  bool found = false;
  Json::Array missed;
  if (client_epoch == epoch_ && last >= 0 && last <= txn_counter_) {
    if (last == txn_counter_) {
      found = true;  // nothing missed
    } else if (!history_.empty() && history_.front().first <= last + 1) {
      found = true;
      for (const auto& [txn, payload] : history_) {
        if (txn <= last) continue;
        Json projected = FilterUpdateTables(payload, spec);
        if (projected.is_object() && !projected.as_object().empty()) {
          missed.push_back(std::move(projected));
        }
      }
    }
  }
  // Register the live monitor either way; its initial snapshot doubles as
  // the full dump when replay wasn't possible.
  NERPA_ASSIGN_OR_RETURN(Json initial,
                         RegisterMonitor(client, params, /*with_txn=*/true));
  if (!found) {
    missed.clear();
    missed.push_back(std::move(initial));
  }
  return Json(Json::Array{Json(found), Json(txn_counter_),
                          Json(std::move(missed)), Json(epoch_)});
}

Result<Json> OvsdbServer::DoMonitorCancel(Client& client, const Json& params) {
  if (!params.is_array() || params.as_array().empty()) {
    return InvalidArgument("monitor_cancel needs [id]");
  }
  std::string key = params.as_array()[0].Dump();
  auto it = client.monitors.find(key);
  if (it == client.monitors.end()) {
    return NotFound("no monitor " + key);
  }
  db_->RemoveMonitor(it->second.db_id);
  client.monitors.erase(it);
  return Json(Json::Object{});
}

}  // namespace nerpa::ovsdb
