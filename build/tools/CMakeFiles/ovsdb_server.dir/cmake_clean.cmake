file(REMOVE_RECURSE
  "CMakeFiles/ovsdb_server.dir/ovsdb_server_main.cc.o"
  "CMakeFiles/ovsdb_server.dir/ovsdb_server_main.cc.o.d"
  "ovsdb_server"
  "ovsdb_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ovsdb_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
