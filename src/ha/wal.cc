#include "ha/wal.h"

#include <vector>

#include "common/hash.h"
#include "common/strings.h"

namespace nerpa::ha {

namespace {

constexpr size_t kCrcHexLen = 8;

std::string CrcHex(uint32_t crc) {
  return StrFormat("%08x", static_cast<unsigned>(crc));
}

/// Splits one WAL line into (payload, checksum-ok).  Unframed legacy
/// lines (raw JSON) pass through unverified.
struct ParsedLine {
  std::string_view payload;
  bool framed = false;
  bool crc_ok = true;
  uint32_t stored_crc = 0;
  uint32_t computed_crc = 0;
};

ParsedLine ParseLine(std::string_view line) {
  ParsedLine parsed;
  if (!line.empty() && (line[0] == '[' || line[0] == '{')) {
    parsed.payload = line;
    return parsed;
  }
  parsed.framed = true;
  if (line.size() < kCrcHexLen + 2 || line[kCrcHexLen] != ' ') {
    parsed.crc_ok = false;
    return parsed;
  }
  unsigned stored = 0;
  for (size_t i = 0; i < kCrcHexLen; ++i) {
    char c = line[i];
    unsigned nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<unsigned>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<unsigned>(c - 'a') + 10;
    } else {
      parsed.crc_ok = false;
      return parsed;
    }
    stored = (stored << 4) | nibble;
  }
  parsed.payload = line.substr(kCrcHexLen + 1);
  parsed.stored_crc = stored;
  parsed.computed_crc = Crc32(parsed.payload);
  parsed.crc_ok = parsed.stored_crc == parsed.computed_crc;
  return parsed;
}

}  // namespace

std::string WriteAheadLog::FrameRecord(const Json& record) {
  std::string json = record.Dump();
  return CrcHex(Crc32(json)) + " " + json + "\n";
}

Result<WriteAheadLog> WriteAheadLog::Open(const std::string& path, Io* io) {
  if (io == nullptr) io = &DefaultIo();
  WriteAheadLog wal(path, io);
  NERPA_ASSIGN_OR_RETURN(wal.out_, io->OpenAppend(path));
  return wal;
}

Status WriteAheadLog::Append(const Json& record) {
  // Arm around the flush: if the kernel wedges inside Append (the fsync
  // path), no code after it runs, so only an armed watchdog can tell a
  // supervisor the WAL stopped making progress.
  if (watchdog_ != nullptr) {
    watchdog_->Arm(watchdog_subsystem_, watchdog_timeout_nanos_);
  }
  Status appended = out_->Append(FrameRecord(record));
  if (watchdog_ != nullptr) watchdog_->Disarm(watchdog_subsystem_);
  if (!appended.ok()) {
    return Internal("cannot append to WAL '" + path_ +
                    "': " + appended.ToString());
  }
  ++records_appended_;
  return Status::Ok();
}

Status WriteAheadLog::ReplayFile(
    const std::string& path, Io& io,
    const std::function<Status(const Json&)>& apply, uint64_t* replayed,
    uint64_t* truncated, uint64_t* valid_prefix_bytes) {
  NERPA_ASSIGN_OR_RETURN(std::string text, io.ReadFile(path));
  // Line + the offset one past its terminator, so a torn tail can report
  // the exact byte where the valid prefix ends.
  std::vector<std::pair<std::string_view, uint64_t>> lines;
  for (size_t pos = 0; pos < text.size();) {
    size_t newline = text.find('\n', pos);
    size_t end = newline == std::string::npos ? text.size() : newline + 1;
    std::string_view line(text.data() + pos,
                          (newline == std::string::npos ? text.size()
                                                        : newline) -
                              pos);
    if (!Trim(line).empty()) lines.emplace_back(line, end);
    pos = end;
  }
  uint64_t valid_end = 0;
  if (valid_prefix_bytes != nullptr) *valid_prefix_bytes = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    const bool is_tail = i + 1 == lines.size();
    ParsedLine parsed = ParseLine(lines[i].first);
    if (!parsed.crc_ok) {
      if (is_tail) {
        // Interrupted append: the commit was never made durable, so the
        // record is simply not part of history.
        if (truncated != nullptr) ++*truncated;
        break;
      }
      return Internal(StrFormat(
          "WAL '%s' corrupt at record %zu: crc mismatch (stored %08x, "
          "computed %08x)",
          path.c_str(), i + 1, static_cast<unsigned>(parsed.stored_crc),
          static_cast<unsigned>(parsed.computed_crc)));
    }
    Result<Json> record = Json::Parse(std::string(parsed.payload));
    if (!record.ok()) {
      if (is_tail) {
        if (truncated != nullptr) ++*truncated;
        break;
      }
      return Internal(StrFormat("WAL '%s' corrupt at record %zu: %s",
                                path.c_str(), i + 1,
                                record.status().ToString().c_str()));
    }
    Status applied = apply(record.value());
    if (!applied.ok()) {
      return Internal(StrFormat("WAL '%s' replay failed at record %zu: %s",
                                path.c_str(), i + 1,
                                applied.ToString().c_str()));
    }
    if (replayed != nullptr) ++*replayed;
    valid_end = lines[i].second;
    if (valid_prefix_bytes != nullptr) *valid_prefix_bytes = valid_end;
  }
  return Status::Ok();
}

Status WriteAheadLog::Replay(const std::function<Status(const Json&)>& apply) {
  uint64_t truncated_before = truncated_tail_records_;
  uint64_t valid_prefix_bytes = 0;
  NERPA_RETURN_IF_ERROR(ReplayFile(path_, *io_, apply, &records_replayed_,
                                   &truncated_tail_records_,
                                   &valid_prefix_bytes));
  if (truncated_tail_records_ > truncated_before) {
    // Physically drop the torn tail: the open appender would otherwise
    // write the next record onto the partial line, turning an innocuous
    // interrupted append into interior corruption at the next recovery.
    out_.reset();
    NERPA_RETURN_IF_ERROR(io_->TruncateTo(path_, valid_prefix_bytes));
    NERPA_ASSIGN_OR_RETURN(out_, io_->OpenAppend(path_));
  }
  return Status::Ok();
}

Status WriteAheadLog::Reset() {
  out_.reset();
  NERPA_RETURN_IF_ERROR(io_->Truncate(path_));
  NERPA_ASSIGN_OR_RETURN(out_, io_->OpenAppend(path_));
  records_appended_ = 0;
  return Status::Ok();
}

Status WriteAheadLog::Rotate() {
  out_.reset();
  NERPA_RETURN_IF_ERROR(io_->Rename(path_, path_ + ".1"));
  NERPA_RETURN_IF_ERROR(io_->Truncate(path_));
  NERPA_ASSIGN_OR_RETURN(out_, io_->OpenAppend(path_));
  records_appended_ = 0;
  return Status::Ok();
}

}  // namespace nerpa::ha
