// NW3xx: data-plane reachability over the P4 IR.
//
//   NW301 warning  table never applied by any control block
//   NW302 warning  action not permitted by any table (nor a default action)
//   NW303 warning  parser state unreachable from the start state
//
// Spans point into the textual P4 source when the program was parsed from
// text; programs built directly as IR carry 0 spans (the diagnostic still
// names the construct).
#include <set>
#include <string>
#include <vector>

#include "analyze/passes.h"
#include "common/strings.h"
#include "p4/ir.h"

namespace nerpa::analyze {

namespace {

void CollectApplied(const std::vector<p4::ControlNode>& nodes,
                    std::set<std::string>& applied) {
  for (const p4::ControlNode& node : nodes) {
    if (node.kind == p4::ControlNode::Kind::kApply) {
      applied.insert(node.table);
    } else {
      CollectApplied(node.then_branch, applied);
      CollectApplied(node.else_branch, applied);
    }
  }
}

void CheckUnappliedTables(PassContext& context) {
  std::set<std::string> applied;
  CollectApplied(context.p4->ingress, applied);
  CollectApplied(context.p4->egress, applied);
  for (const p4::Table& table : context.p4->tables) {
    if (applied.count(table.name) != 0) continue;
    Emit(context, "NW301", Severity::kWarning, "p4",
         StrFormat("table '%s' is never applied by the ingress or egress "
                   "control",
                   table.name.c_str()),
         "p4", table.line, table.col);
  }
}

void CheckUnusedActions(PassContext& context) {
  std::set<std::string> permitted;
  for (const p4::Table& table : context.p4->tables) {
    for (const std::string& action : table.actions) permitted.insert(action);
    if (!table.default_action.empty()) permitted.insert(table.default_action);
  }
  for (const p4::Action& action : context.p4->actions) {
    if (permitted.count(action.name) != 0) continue;
    Emit(context, "NW302", Severity::kWarning, "p4",
         StrFormat("action '%s' is not permitted by any table",
                   action.name.c_str()),
         "p4", action.line, action.col);
  }
}

void CheckUnreachableParserStates(PassContext& context) {
  const std::vector<p4::ParserState>& parser = context.p4->parser;
  if (parser.empty()) return;
  std::set<std::string> reachable;
  std::vector<const p4::ParserState*> worklist = {&parser.front()};
  reachable.insert(parser.front().name);
  while (!worklist.empty()) {
    const p4::ParserState* state = worklist.back();
    worklist.pop_back();
    for (const p4::ParserState::Transition& transition : state->transitions) {
      if (!reachable.insert(transition.next).second) continue;
      const p4::ParserState* next =
          context.p4->FindParserState(transition.next);
      if (next != nullptr) worklist.push_back(next);
    }
  }
  for (const p4::ParserState& state : parser) {
    if (reachable.count(state.name) != 0) continue;
    Emit(context, "NW303", Severity::kWarning, "p4",
         StrFormat("parser state '%s' is unreachable from the start state "
                   "'%s'",
                   state.name.c_str(), parser.front().name.c_str()),
         "p4", state.line, state.col);
  }
}

}  // namespace

void RunP4Checks(PassContext& context) {
  CheckUnappliedTables(context);
  CheckUnusedActions(context);
  CheckUnreachableParserStates(context);
}

}  // namespace nerpa::analyze
