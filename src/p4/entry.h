// Match-action table entries and the match semantics for each match kind.
//
// Entries are what the control plane writes through the P4Runtime-style API
// (runtime.h) and what a data-plane table consults per packet: the concrete
// realization of the paper's "table entries written by the control plane
// and read by the data plane" (§2.3).
#ifndef NERPA_P4_ENTRY_H_
#define NERPA_P4_ENTRY_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "p4/ir.h"

namespace nerpa::p4 {

/// One key field of an entry; interpretation depends on the key's MatchKind.
struct MatchField {
  uint64_t value = 0;
  uint64_t mask = ~uint64_t{0};     // kTernary
  int prefix_len = 0;               // kLpm
  uint64_t high = 0;                // kRange: [value, high]
  bool wildcard = false;            // kOptional: match anything

  static MatchField Exact(uint64_t value);
  static MatchField Lpm(uint64_t value, int prefix_len);
  static MatchField Ternary(uint64_t value, uint64_t mask);
  static MatchField Range(uint64_t low, uint64_t high);
  static MatchField Optional(std::optional<uint64_t> value);

  /// Does a packet field value satisfy this match under `kind`/`width`?
  bool Matches(MatchKind kind, int width, uint64_t field) const;
};

/// A complete table entry.
struct TableEntry {
  std::string table;
  std::vector<MatchField> match;     // parallel to the table's keys
  int32_t priority = 0;              // higher wins (ternary/range/optional)
  std::string action;
  std::vector<uint64_t> action_args; // parallel to the action's params
  // Direct counter (packets that hit this entry); maintained by
  // TableState::Lookup, read through RuntimeClient::ReadCounters.
  mutable uint64_t hit_count = 0;

  /// Canonical identity of an entry = table + match + priority (P4Runtime
  /// semantics: modifying an entry keeps its identity, changing match or
  /// priority makes a different entry).
  std::string KeyString(const Table& schema) const;

  std::string ToString() const;
};

/// The runtime contents of one table, with per-kind lookup behaviour:
/// exact tables use a hash map; LPM prefers the longest prefix; ternary,
/// range, and optional matches pick the highest-priority matching entry.
class TableState {
 public:
  explicit TableState(const Table* schema) : schema_(schema) {}

  const Table& schema() const { return *schema_; }
  size_t size() const { return entries_.size(); }

  /// Inserts a new entry; error if an entry with the same match+priority
  /// exists or the table is full.
  Status Insert(TableEntry entry);
  /// Replaces the action of an existing entry.
  Status Modify(const TableEntry& entry);
  /// Removes an entry by match+priority.
  Status Remove(const TableEntry& entry);

  /// Highest-precedence entry matching `key_fields`, or nullptr on miss.
  const TableEntry* Lookup(const std::vector<uint64_t>& key_fields) const;

  std::vector<const TableEntry*> Entries() const;

  /// Per-table hit/miss counters (a tiny model of P4 direct counters).
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  bool pure_exact() const;

  const Table* schema_;
  std::map<std::string, TableEntry> entries_;  // canonical key -> entry
  // Exact-match fast path: serialized key fields -> canonical key.
  std::map<std::vector<uint64_t>, std::string> exact_index_;
  mutable uint64_t hits_ = 0;
  mutable uint64_t misses_ = 0;
};

}  // namespace nerpa::p4

#endif  // NERPA_P4_ENTRY_H_
