#include "gateway/gateway.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/clock.h"
#include "common/retry.h"
#include "common/strings.h"

namespace nerpa::gateway {

namespace {

constexpr uint64_t kListenId = 0;
constexpr uint64_t kWakeId = 1;

int SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return -1;
  return fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Maps a backend Status onto an HTTP response.  Callers that can reach
/// 503 use Gateway::BackendError, which adds the computed Retry-After.
HttpResponse StatusResponse(const Status& status) {
  int http = 500;
  switch (status.code()) {
    case StatusCode::kNotFound:
      http = 404;
      break;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kTypeError:
    case StatusCode::kConstraintError:
      http = 400;
      break;
    case StatusCode::kAlreadyExists:
      http = 409;
      break;
    case StatusCode::kDeadlineExceeded:
      http = 504;
      break;
    case StatusCode::kFailedPrecondition:
      // The client wraps both per-op failures ("transact error: ...") and a
      // dead transport in this code; only the latter is the server's fault.
      http = StartsWith(status.message(), "transact error") ? 400 : 503;
      break;
    default:
      http = 500;
      break;
  }
  return JsonResponse(
      http, Json(Json::Object{
                {"error", Json(status.message())},
                {"code", Json(std::string(StatusCodeName(status.code())))}}));
}

HttpResponse ShedResponse(int retry_after_seconds) {
  HttpResponse response = ErrorResponse(503, "overloaded, retry later");
  response.headers["Retry-After"] = std::to_string(retry_after_seconds);
  return response;
}

HttpResponse DeadlineResponse(const char* where) {
  return ErrorResponse(
      504, StrFormat("deadline exceeded (%s)", where));
}

/// The request's deadline: X-Nerpa-Deadline-Ms (a positive millisecond
/// budget) when present and parseable, else the configured default, else
/// infinite.
Deadline RequestDeadline(const HttpRequest& request,
                         int64_t default_deadline_nanos) {
  const std::string& header = request.Header("x-nerpa-deadline-ms");
  if (!header.empty()) {
    errno = 0;
    char* end = nullptr;
    long long ms = std::strtoll(header.c_str(), &end, 10);
    if (errno == 0 && end != header.c_str() && *end == '\0') {
      // A non-positive budget is a budget already spent, not a parse
      // error: the client said "don't bother" and gets an honest 504.
      return Deadline::AfterNanos(ms * 1'000'000);
    }
  }
  if (default_deadline_nanos > 0) {
    return Deadline::AfterNanos(default_deadline_nanos);
  }
  return Deadline();
}

/// Types a query-parameter string as an OVSDB wire atom of `type`.
Result<Json> TypeQueryValue(ovsdb::AtomicType type, const std::string& text) {
  switch (type) {
    case ovsdb::AtomicType::kInteger: {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(text.c_str(), &end, 10);
      if (errno != 0 || end == text.c_str() || *end != '\0') {
        return InvalidArgument(StrFormat("bad integer %s",
                                         QuoteString(text).c_str()));
      }
      return Json(static_cast<int64_t>(v));
    }
    case ovsdb::AtomicType::kReal: {
      errno = 0;
      char* end = nullptr;
      double v = std::strtod(text.c_str(), &end);
      if (errno != 0 || end == text.c_str() || *end != '\0') {
        return InvalidArgument(StrFormat("bad real %s",
                                         QuoteString(text).c_str()));
      }
      return Json(v);
    }
    case ovsdb::AtomicType::kBoolean:
      if (text == "true") return Json(true);
      if (text == "false") return Json(false);
      return InvalidArgument(StrFormat("bad boolean %s",
                                       QuoteString(text).c_str()));
    case ovsdb::AtomicType::kUuid:
      return Json(Json::Array{Json("uuid"), Json(text)});
    case ovsdb::AtomicType::kString:
      return Json(text);
  }
  return InvalidArgument("unknown atom type");
}

}  // namespace

Gateway::Gateway(Options options)
    : options_(options),
      cache_(options.cache_entries),
      admission_(options.admit_rate_per_sec, options.admit_burst,
                 options.max_inflight) {}

Gateway::~Gateway() { Stop(); }

Status Gateway::Start() {
  if (options_.backend_port == 0) {
    return InvalidArgument("gateway: backend_port is required");
  }
  if (options_.workers < 1) options_.workers = 1;

  // Backend sessions: one client per worker plus the monitor pump, all
  // self-healing so a backend restart degrades to errors, not a dead
  // gateway.
  ovsdb::OvsdbClient::HealPolicy heal;
  heal.enabled = true;
  pump_client_ = std::make_unique<ovsdb::OvsdbClient>();
  pump_client_->set_heal_policy(heal);
  NERPA_RETURN_IF_ERROR(
      pump_client_->Connect(options_.backend_host, options_.backend_port));
  NERPA_ASSIGN_OR_RETURN(schema_, pump_client_->GetSchema());

  // The invalidation monitor must be live before the first cached read, or
  // an update could slip between a fetch and its Insert unnoticed.
  auto on_update = [this](const Json&, const Json& updates) {
    if (!updates.is_object()) return;
    for (const auto& [table, delta] : updates.as_object()) {
      (void)delta;
      cache_.Bump(table);
      std::lock_guard<std::mutex> lock(changes_mu_);
      changes_.push_back(Change{++change_seq_, table});
      while (changes_.size() > options_.changes_ring_capacity) {
        changes_.pop_front();
      }
    }
  };
  {
    auto initial = pump_client_->Monitor(Json("gateway-pump"), {}, on_update);
    if (!initial.ok()) return initial.status();
  }

  for (int i = 0; i < options_.workers; ++i) {
    auto client = std::make_unique<ovsdb::OvsdbClient>();
    client->set_heal_policy(heal);
    NERPA_RETURN_IF_ERROR(
        client->Connect(options_.backend_host, options_.backend_port));
    clients_.push_back(std::move(client));
    free_clients_.push_back(static_cast<size_t>(i));
  }

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Internal("gateway: socket() failed");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.http_port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Internal(StrFormat("gateway: bind(%u) failed: %s",
                              options_.http_port, std::strerror(errno)));
  }
  if (listen(listen_fd_, 128) < 0) {
    return Internal("gateway: listen() failed");
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  http_port_ = ntohs(addr.sin_port);
  SetNonBlocking(listen_fd_);

  if (pipe(wake_pipe_) < 0) return Internal("gateway: pipe() failed");
  SetNonBlocking(wake_pipe_[0]);
  SetNonBlocking(wake_pipe_[1]);

  epoll_fd_ = epoll_create1(0);
  if (epoll_fd_ < 0) return Internal("gateway: epoll_create1() failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenId;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeId;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_pipe_[0], &ev);

  pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(options_.workers));
  running_ = true;
  stopping_ = false;
  event_thread_ = std::thread([this] { EventLoop(); });
  pump_thread_ = std::thread([this] { PumpThread(); });
  return Status::Ok();
}

void Gateway::Stop() {
  if (!running_.exchange(false)) {
    // Start() may have failed partway: release what exists.
    stopping_ = true;
    if (pump_thread_.joinable()) pump_thread_.join();
    if (event_thread_.joinable()) event_thread_.join();
  } else {
    stopping_ = true;
    char byte = 1;
    (void)!write(wake_pipe_[1], &byte, 1);
    if (event_thread_.joinable()) event_thread_.join();
    if (pool_) pool_->WaitIdle();
    if (pump_thread_.joinable()) pump_thread_.join();
  }
  pool_.reset();
  for (auto& client : clients_) {
    if (client) client->Disconnect();
  }
  clients_.clear();
  free_clients_.clear();
  if (pump_client_) pump_client_->Disconnect();
  pump_client_.reset();
  if (epoll_fd_ >= 0) close(epoll_fd_);
  epoll_fd_ = -1;
  for (int i = 0; i < 2; ++i) {
    if (wake_pipe_[i] >= 0) close(wake_pipe_[i]);
    wake_pipe_[i] = -1;
  }
  if (listen_fd_ >= 0) close(listen_fd_);
  listen_fd_ = -1;
}

void Gateway::PumpThread() {
  // Jittered backoff between pump recovery attempts: many gateways losing
  // one backend must not re-dial it in lockstep.
  BackoffPolicy policy;
  policy.initial_nanos = 10'000'000;   // 10 ms
  policy.max_nanos = 500'000'000;      // 500 ms
  Backoff backoff(policy, reinterpret_cast<uintptr_t>(this) ^
                              static_cast<uint64_t>(MonotonicNanos()));
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (options_.watchdog != nullptr) options_.watchdog->Beat("gateway.pump");
    auto delivered = pump_client_->WaitForUpdate(50);
    if (delivered.ok()) {
      backoff.Reset();
      continue;
    }
    // Transport down and the heal budget exhausted for this attempt; back
    // off and keep trying — the backend may come back.  Sleep in small
    // slices so Stop() stays responsive.
    int64_t remaining = backoff.NextDelayNanos();
    while (remaining > 0 && !stopping_.load(std::memory_order_relaxed)) {
      int64_t slice = std::min<int64_t>(remaining, 10'000'000);
      std::this_thread::sleep_for(std::chrono::nanoseconds(slice));
      remaining -= slice;
    }
  }
}

void Gateway::EventLoop() {
  std::vector<epoll_event> events(64);
  int64_t stop_deadline_ns = -1;
  while (true) {
    if (stopping_.load(std::memory_order_relaxed)) {
      if (stop_deadline_ns < 0) {
        stop_deadline_ns =
            MonotonicNanos() + int64_t{kDrainDeadlineMs} * 1000000;
        if (listen_fd_ >= 0) {
          epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
          close(listen_fd_);
          listen_fd_ = -1;
        }
      }
      // Requests already sitting in a socket buffer count as accepted:
      // ingest them before deciding who is idle, or a client that sent
      // just before Stop() gets cut off instead of answered.
      std::vector<uint64_t> open;
      for (const auto& [id, conn] : conns_) open.push_back(id);
      for (uint64_t id : open) {
        if (conns_.count(id) != 0) ReadConn(id);
      }
      // Close connections with nothing left to say; leave draining ones.
      std::vector<uint64_t> idle;
      bool busy = false;
      for (const auto& [id, conn] : conns_) {
        if (!conn.inflight && conn.pending.empty() && conn.outbox.empty()) {
          idle.push_back(id);
        } else {
          busy = true;
        }
      }
      for (uint64_t id : idle) CloseConn(id);
      {
        std::lock_guard<std::mutex> lock(completions_mu_);
        busy = busy || !completions_.empty();
      }
      if (!busy || MonotonicNanos() > stop_deadline_ns) break;
    }

    int n = epoll_wait(epoll_fd_, events.data(),
                       static_cast<int>(events.size()), 50);
    for (int i = 0; i < n; ++i) {
      uint64_t id = events[i].data.u64;
      uint32_t mask = events[i].events;
      if (id == kListenId) {
        AcceptClients();
      } else if (id == kWakeId) {
        char buf[256];
        while (read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
        }
      } else {
        if (mask & (EPOLLIN | EPOLLHUP | EPOLLERR)) ReadConn(id);
        if (conns_.count(id) && (mask & EPOLLOUT)) WriteConn(id);
      }
    }
    DrainCompletions();
  }
  // Deadline hit or fully drained: everything left closes hard.
  std::vector<uint64_t> remaining;
  for (const auto& [id, conn] : conns_) remaining.push_back(id);
  for (uint64_t id : remaining) CloseConn(id);
}

void Gateway::AcceptClients() {
  while (true) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or error — nothing more to accept
    SetNonBlocking(fd);
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    uint64_t id = next_conn_id_++;
    Conn& conn = conns_[id];
    conn.fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

void Gateway::UpdateInterest(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  epoll_event ev{};
  ev.events = 0;
  if (!conn.reading_paused) ev.events |= EPOLLIN;
  if (!conn.outbox.empty()) ev.events |= EPOLLOUT;
  ev.data.u64 = id;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void Gateway::CloseConn(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
  close(it->second.fd);
  conns_.erase(it);
}

void Gateway::ReadConn(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  if (conn.reading_paused) return;
  char buf[64 * 1024];
  while (true) {
    ssize_t got = recv(conn.fd, buf, sizeof(buf), 0);
    if (got == 0) {
      CloseConn(id);
      return;
    }
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      CloseConn(id);
      return;
    }
    Status fed = conn.parser.Feed(std::string_view(buf, got));
    while (conn.parser.HasRequest()) {
      conn.pending.push_back(conn.parser.PopRequest());
    }
    if (!fed.ok()) {
      // Framing is unrecoverable: answer what we can, then close.
      conn.outbox += ErrorResponse(400, fed.message()).Serialize(false);
      conn.close_after_flush = true;
      conn.reading_paused = true;
      break;
    }
    if (static_cast<ssize_t>(sizeof(buf)) != got) break;  // likely drained
  }
  auto again = conns_.find(id);
  if (again == conns_.end()) return;
  if (again->second.pending.size() >= options_.max_pending_per_conn) {
    again->second.reading_paused = true;  // TCP backpressure
  }
  ServeConn(id);
  if (conns_.count(id)) {
    UpdateInterest(id);
    WriteConn(id);
  }
}

void Gateway::WriteConn(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  while (!conn.outbox.empty()) {
    ssize_t sent = send(conn.fd, conn.outbox.data(), conn.outbox.size(),
                        MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      CloseConn(id);
      return;
    }
    conn.outbox.erase(0, static_cast<size_t>(sent));
  }
  if (conn.outbox.empty() && conn.close_after_flush && !conn.inflight) {
    CloseConn(id);
    return;
  }
  UpdateInterest(id);
}

void Gateway::QueueResponse(uint64_t id, const HttpResponse& response,
                            bool keep_alive) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  conn.outbox += response.Serialize(keep_alive);
  if (!keep_alive) conn.close_after_flush = true;
  if (conn.outbox.size() > options_.max_outbox_bytes) {
    // The peer stopped reading while responses kept accumulating.
    slow_client_drops_.fetch_add(1, std::memory_order_relaxed);
    CloseConn(id);
  }
}

void Gateway::ServeConn(uint64_t id) {
  while (true) {
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    Conn& conn = it->second;
    if (conn.inflight || conn.pending.empty()) break;
    HttpRequest request = std::move(conn.pending.front());
    conn.pending.pop_front();
    Dispatch(id, conn, std::move(request));
  }
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  if (conn.reading_paused && !conn.close_after_flush &&
      conn.pending.size() < options_.max_pending_per_conn) {
    conn.reading_paused = false;
    UpdateInterest(id);
  }
}

void Gateway::DrainCompletions() {
  std::deque<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  for (auto& done : batch) {
    auto it = conns_.find(done.conn_id);
    if (it == conns_.end()) continue;  // connection died while we worked
    it->second.inflight = false;
    QueueResponse(done.conn_id, done.response, done.keep_alive);
    ServeConn(done.conn_id);
    if (conns_.count(done.conn_id)) {
      WriteConn(done.conn_id);
    }
  }
}

size_t Gateway::AcquireClient() {
  std::unique_lock<std::mutex> lock(clients_mu_);
  clients_cv_.wait(lock, [this] { return !free_clients_.empty(); });
  size_t index = free_clients_.back();
  free_clients_.pop_back();
  return index;
}

void Gateway::ReleaseClient(size_t index) {
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    free_clients_.push_back(index);
  }
  clients_cv_.notify_one();
}

HttpResponse Gateway::BackendError(const Status& status) const {
  HttpResponse response = StatusResponse(status);
  if (response.status == 503) {
    response.headers["Retry-After"] =
        std::to_string(admission_.RetryAfterSeconds(MonotonicNanos()));
  }
  return response;
}

void Gateway::SubmitBackend(
    uint64_t id, bool keep_alive, bool admitted, Deadline deadline,
    std::function<HttpResponse(ovsdb::OvsdbClient&, const Deadline&)> work) {
  pool_->Submit([this, id, keep_alive, admitted, deadline,
                 work = std::move(work)] {
    int64_t start = MonotonicNanos();
    HttpResponse response;
    if (deadline.expired(start)) {
      // The request aged out while queued: drop it here, before it costs
      // a backend client, a fetch, or a transact evaluation.
      deadline_drops_.fetch_add(1, std::memory_order_relaxed);
      if (admitted) admission_.Release();
      response = DeadlineResponse("queued at gateway");
    } else {
      size_t index = AcquireClient();
      response = work(*clients_[index], deadline);
      ReleaseClient(index);
      if (admitted) {
        // Feed the adaptive limit: 5xx (including 504) and shed-worthy
        // latencies shrink it, healthy round-trips grow it.
        admission_.OnOutcome(MonotonicNanos(), MonotonicNanos() - start,
                             response.status < 500);
      }
    }
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      completions_.push_back(Completion{id, std::move(response), keep_alive});
    }
    char byte = 1;
    (void)!write(wake_pipe_[1], &byte, 1);
  });
}

HttpResponse Gateway::HandleStats() const {
  int64_t now = MonotonicNanos();
  Json::Object cache{{"hits", Json(static_cast<int64_t>(cache_.hits()))},
                     {"misses", Json(static_cast<int64_t>(cache_.misses()))},
                     {"evictions",
                      Json(static_cast<int64_t>(cache_.evictions()))},
                     {"stale_hits",
                      Json(static_cast<int64_t>(cache_.stale_hits()))},
                     {"entries", Json(static_cast<int64_t>(cache_.size()))}};
  Json::Object shed_by_priority;
  for (size_t i = 0; i < kPriorityClasses; ++i) {
    Priority priority = static_cast<Priority>(i);
    shed_by_priority[PriorityName(priority)] =
        Json(static_cast<int64_t>(admission_.shed_by_priority(priority)));
  }
  Json::Object admission{
      {"admitted", Json(static_cast<int64_t>(admission_.admitted()))},
      {"shed", Json(static_cast<int64_t>(admission_.shed()))},
      {"shed_by_priority", Json(std::move(shed_by_priority))},
      {"inflight", Json(static_cast<int64_t>(admission_.inflight()))},
      {"limit", Json(admission_.limit())},
      {"limit_decreases",
       Json(static_cast<int64_t>(admission_.limit_decreases()))},
      {"ewma_latency_nanos", Json(admission_.ewma_latency_nanos())},
      {"brownout", Json(admission_.InBrownout(now))}};
  Json::Object health;
  if (options_.watchdog != nullptr) {
    for (const auto& [name, state] : options_.watchdog->Snapshot(now)) {
      health[name] = Json(Json::Object{
          {"beats", Json(static_cast<int64_t>(state.beats))},
          {"stuck", Json(state.stuck)},
          {"last_beat_age_nanos",
           Json(state.last_beat_nanos == 0 ? int64_t{-1}
                                           : now - state.last_beat_nanos)}});
    }
  }
  uint64_t latest;
  {
    std::lock_guard<std::mutex> lock(changes_mu_);
    latest = change_seq_;
  }
  return JsonResponse(
      200,
      Json(Json::Object{
          {"requests", Json(static_cast<int64_t>(requests_served()))},
          {"active_connections", Json(static_cast<int64_t>(conns_.size()))},
          {"slow_client_drops",
           Json(static_cast<int64_t>(slow_client_drops()))},
          {"deadline_drops", Json(static_cast<int64_t>(deadline_drops()))},
          {"stale_served", Json(static_cast<int64_t>(stale_served()))},
          {"cache", Json(std::move(cache))},
          {"admission", Json(std::move(admission))},
          {"health", Json(std::move(health))},
          {"changes_seq", Json(static_cast<int64_t>(latest))}}));
}

HttpResponse Gateway::HandleChanges(const HttpRequest& request) const {
  uint64_t since = 0;
  auto it = request.query.find("since");
  if (it != request.query.end()) {
    errno = 0;
    char* end = nullptr;
    unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
    if (errno != 0 || end == it->second.c_str() || *end != '\0') {
      return ErrorResponse(400, "bad since parameter");
    }
    since = v;
  }
  Json::Array out;
  uint64_t latest = 0;
  uint64_t oldest = 0;
  {
    std::lock_guard<std::mutex> lock(changes_mu_);
    latest = change_seq_;
    if (!changes_.empty()) oldest = changes_.front().seq;
    for (const Change& change : changes_) {
      if (change.seq <= since) continue;
      out.push_back(Json(Json::Object{
          {"seq", Json(static_cast<int64_t>(change.seq))},
          {"table", Json(change.table)}}));
    }
  }
  // A `since` older than the ring means deltas were lost: the caller must
  // re-read the tables it cares about, so say so explicitly.
  bool gap = since + 1 < oldest;
  return JsonResponse(200,
                      Json(Json::Object{
                          {"latest", Json(static_cast<int64_t>(latest))},
                          {"gap", Json(gap)},
                          {"changes", Json(std::move(out))}}));
}

Result<Json> Gateway::WhereFromQuery(
    const ovsdb::TableSchema& table,
    const std::map<std::string, std::string>& query) const {
  Json::Array clauses;
  for (const auto& [name, text] : query) {
    if (name == "columns") continue;
    ovsdb::AtomicType type;
    if (name == "_uuid") {
      type = ovsdb::AtomicType::kUuid;
    } else {
      const ovsdb::ColumnSchema* column = table.FindColumn(name);
      if (column == nullptr) {
        return InvalidArgument(StrFormat("no column %s in table %s",
                                         QuoteString(name).c_str(),
                                         QuoteString(table.name).c_str()));
      }
      type = column->type.key.type;
    }
    NERPA_ASSIGN_OR_RETURN(Json value, TypeQueryValue(type, text));
    clauses.push_back(
        Json(Json::Array{Json(name), Json("=="), std::move(value)}));
  }
  return Json(std::move(clauses));
}

HttpResponse Gateway::DoTableRead(ovsdb::OvsdbClient& client,
                                  std::string table, Json where,
                                  std::vector<std::string> columns,
                                  std::string cache_key, bool cacheable,
                                  bool single, uint64_t generation,
                                  const Deadline& deadline) {
  auto fetched =
      client.Fetch(table, std::move(where), std::move(columns), deadline);
  if (!fetched.ok()) return BackendError(fetched.status());
  if (single) {
    const Json* rows = fetched.value().Find("rows");
    if (rows != nullptr && rows->is_array() && rows->as_array().empty()) {
      return ErrorResponse(404, "row not found");
    }
  }
  HttpResponse response = JsonResponse(200, fetched.value());
  response.headers["X-Cache"] = "miss";
  if (cacheable) {
    cache_.Insert(cache_key, table, generation, response.body);
  }
  return response;
}

HttpResponse Gateway::DoTransact(ovsdb::OvsdbClient& client, std::string body,
                                 const Deadline& deadline) {
  auto parsed = Json::Parse(body);
  if (!parsed.ok()) return BackendError(parsed.status());
  if (!parsed.value().is_array()) {
    return ErrorResponse(400, "transact body must be an array of operations");
  }
  auto results = client.Transact(std::move(parsed).value(), deadline);
  if (!results.ok()) return BackendError(results.status());
  return JsonResponse(
      200, Json(Json::Object{{"results", std::move(results).value()}}));
}

HttpResponse Gateway::DoJsonRpc(ovsdb::OvsdbClient& client, std::string body,
                                const Deadline& deadline) {
  auto parsed = Json::Parse(body);
  if (!parsed.ok()) return BackendError(parsed.status());
  const Json& doc = parsed.value();
  const Json* method = doc.Find("method");
  if (method == nullptr || !method->is_string()) {
    return ErrorResponse(400, "jsonrpc body needs a string \"method\"");
  }
  const Json* params_field = doc.Find("params");
  Json params = params_field == nullptr ? Json(Json::Array{}) : *params_field;
  const Json* id_field = doc.Find("id");
  Json id = id_field == nullptr ? Json(nullptr) : *id_field;

  auto reply = [&id](Json result) {
    return JsonResponse(200, Json(Json::Object{{"id", id},
                                               {"result", std::move(result)},
                                               {"error", Json(nullptr)}}));
  };
  auto rpc_error = [&id](const std::string& message) {
    return JsonResponse(200,
                        Json(Json::Object{{"id", id},
                                          {"result", Json(nullptr)},
                                          {"error", Json(message)}}));
  };

  const std::string& name = method->as_string();
  if (name == "echo") return reply(std::move(params));
  if (name == "get_schema") return reply(schema_.ToJson());
  if (name == "transact") {
    if (!params.is_array()) return rpc_error("transact params must be array");
    auto results = client.Transact(std::move(params), deadline);
    if (!results.ok()) return rpc_error(results.status().ToString());
    return reply(std::move(results).value());
  }
  if (name == "fetch") {
    if (!params.is_array() || params.as_array().empty() ||
        !params.as_array()[0].is_string()) {
      return rpc_error("fetch params: [table, where?, columns?]");
    }
    const Json::Array& args = params.as_array();
    Json where = args.size() > 1 ? args[1] : Json(Json::Array{});
    std::vector<std::string> columns;
    if (args.size() > 2 && args[2].is_array()) {
      for (const Json& c : args[2].as_array()) {
        if (c.is_string()) columns.push_back(c.as_string());
      }
    }
    auto fetched =
        client.Fetch(args[0].as_string(), std::move(where), columns, deadline);
    if (!fetched.ok()) return rpc_error(fetched.status().ToString());
    return reply(std::move(fetched).value());
  }
  return rpc_error(StrFormat("unknown method %s", QuoteString(name).c_str()));
}

void Gateway::Dispatch(uint64_t id, Conn& conn, HttpRequest request) {
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  const bool keep_alive = request.keep_alive();
  const Deadline deadline =
      RequestDeadline(request, options_.default_deadline_nanos);

  if (request.method == "GET") {
    if (request.path == "/healthz") {
      QueueResponse(id, JsonResponse(200, Json(Json::Object{
                                              {"ok", Json(true)}})),
                    keep_alive);
      return;
    }
    if (request.path == "/readyz") {
      // Liveness vs. readiness: /healthz answers 200 as long as the
      // process serves; /readyz answers 503 on a standby so traffic
      // drains to the leader (hinted in X-Nerpa-Leader).
      Readiness state;
      if (options_.readiness) state = options_.readiness();
      // A stuck subsystem (an armed watchdog operation past its bound —
      // e.g. a hung WAL fsync or a dead monitor pump) also drains traffic
      // away, even while leadership says "ready".
      Json::Array stuck_names;
      if (options_.watchdog != nullptr) {
        for (const std::string& name :
             options_.watchdog->StuckSubsystems(MonotonicNanos())) {
          stuck_names.push_back(Json(name));
        }
      }
      const bool ready = state.ready && stuck_names.empty();
      HttpResponse response = JsonResponse(
          ready ? 200 : 503,
          Json(Json::Object{{"ready", Json(ready)},
                            {"stuck", Json(std::move(stuck_names))}}));
      if (!ready) {
        response.headers["Retry-After"] = std::to_string(
            admission_.RetryAfterSeconds(MonotonicNanos()));
        if (!state.leader_hint.empty()) {
          response.headers["X-Nerpa-Leader"] = state.leader_hint;
        }
      }
      QueueResponse(id, std::move(response), keep_alive);
      return;
    }
    if (request.path == "/v1/stats") {
      QueueResponse(id, HandleStats(), keep_alive);
      return;
    }
    if (request.path == "/v1/tables") {
      Json::Array names;
      for (const auto& [name, table] : schema_.tables) {
        (void)table;
        names.push_back(Json(name));
      }
      QueueResponse(id,
                    JsonResponse(200, Json(Json::Object{
                                          {"tables", Json(std::move(names))}})),
                    keep_alive);
      return;
    }
    if (request.path == "/v1/changes") {
      QueueResponse(id, HandleChanges(request), keep_alive);
      return;
    }
    if (StartsWith(request.path, "/v1/table/")) {
      std::string rest = request.path.substr(std::strlen("/v1/table/"));
      std::string table_name = rest;
      std::string row_uuid;
      size_t slash = rest.find('/');
      bool single = false;
      if (slash != std::string::npos) {
        table_name = rest.substr(0, slash);
        row_uuid = rest.substr(slash + 1);
        single = true;
        if (row_uuid.empty() || row_uuid.find('/') != std::string::npos) {
          QueueResponse(id, ErrorResponse(404, "bad row path"), keep_alive);
          return;
        }
      }
      const ovsdb::TableSchema* table = schema_.FindTable(table_name);
      if (table == nullptr) {
        QueueResponse(id,
                      ErrorResponse(404, StrFormat("no table %s",
                                                   QuoteString(table_name)
                                                       .c_str())),
                      keep_alive);
        return;
      }
      Json where;
      if (single) {
        where = Json(Json::Array{Json(Json::Array{
            Json("_uuid"), Json("=="),
            Json(Json::Array{Json("uuid"), Json(row_uuid)})})});
      } else {
        auto built = WhereFromQuery(*table, request.query);
        if (!built.ok()) {
          QueueResponse(id, StatusResponse(built.status()), keep_alive);
          return;
        }
        where = std::move(built).value();
      }
      std::vector<std::string> columns;
      auto columns_it = request.query.find("columns");
      if (columns_it != request.query.end()) {
        for (const std::string& c : Split(columns_it->second, ',')) {
          if (!c.empty()) columns.push_back(c);
        }
      }
      const bool cacheable =
          request.Header("cache-control").find("no-cache") ==
          std::string::npos;
      if (cacheable) {
        auto hit = cache_.Lookup(request.target);
        if (hit.has_value()) {
          HttpResponse response;
          response.status = 200;
          response.body = std::move(*hit);
          response.headers["X-Cache"] = "hit";
          QueueResponse(id, response, keep_alive);
          return;
        }
      }
      int64_t now = MonotonicNanos();
      if (!admission_.TryAdmit(now, Priority::kRead)) {
        // Brownout: the backend pool is saturated, so a possibly-stale
        // cached body (marked for the client) beats another 503 — the
        // paper's read-mostly northbound keeps answering while writes
        // shed.
        if (cacheable && admission_.InBrownout(now)) {
          bool fresh = false;
          auto stale = cache_.LookupStale(request.target, &fresh);
          if (stale.has_value()) {
            stale_served_.fetch_add(1, std::memory_order_relaxed);
            HttpResponse response;
            response.status = 200;
            response.body = std::move(*stale);
            response.headers["X-Cache"] = fresh ? "hit" : "stale";
            response.headers["X-Nerpa-Stale"] = fresh ? "0" : "1";
            QueueResponse(id, response, keep_alive);
            return;
          }
        }
        QueueResponse(id, ShedResponse(admission_.RetryAfterSeconds(now)),
                      keep_alive);
        return;
      }
      // Generation captured before the read: an invalidation racing the
      // fetch lands on a smaller generation and the entry misses later.
      uint64_t generation = cache_.Generation(table_name);
      conn.inflight = true;
      SubmitBackend(id, keep_alive, /*admitted=*/true, deadline,
                    [this, table_name, where = std::move(where),
                     columns = std::move(columns),
                     cache_key = request.target, cacheable, single,
                     generation](ovsdb::OvsdbClient& client,
                                 const Deadline& remaining) mutable {
                      return DoTableRead(client, table_name, std::move(where),
                                         std::move(columns),
                                         std::move(cache_key), cacheable,
                                         single, generation, remaining);
                    });
      return;
    }
    QueueResponse(id, ErrorResponse(404, "no such route"), keep_alive);
    return;
  }

  if (request.method == "POST") {
    if (request.path == "/v1/transact") {
      int64_t now = MonotonicNanos();
      if (!admission_.TryAdmit(now, Priority::kTransact)) {
        QueueResponse(id, ShedResponse(admission_.RetryAfterSeconds(now)),
                      keep_alive);
        return;
      }
      conn.inflight = true;
      SubmitBackend(id, keep_alive, /*admitted=*/true, deadline,
                    [this, body = std::move(request.body)](
                        ovsdb::OvsdbClient& client,
                        const Deadline& remaining) mutable {
                      return DoTransact(client, std::move(body), remaining);
                    });
      return;
    }
    if (request.path == "/jsonrpc") {
      // JSON-RPC bodies may carry a transact, so the whole route takes the
      // write-priority class: at saturation it sheds before plain reads.
      int64_t now = MonotonicNanos();
      if (!admission_.TryAdmit(now, Priority::kTransact)) {
        QueueResponse(id, ShedResponse(admission_.RetryAfterSeconds(now)),
                      keep_alive);
        return;
      }
      conn.inflight = true;
      SubmitBackend(id, keep_alive, /*admitted=*/true, deadline,
                    [this, body = std::move(request.body)](
                        ovsdb::OvsdbClient& client,
                        const Deadline& remaining) mutable {
                      return DoJsonRpc(client, std::move(body), remaining);
                    });
      return;
    }
    QueueResponse(id, ErrorResponse(404, "no such route"), keep_alive);
    return;
  }

  QueueResponse(id, ErrorResponse(405, "method not allowed"), keep_alive);
}

}  // namespace nerpa::gateway
