#include "common/watchdog.h"

namespace nerpa {

void Watchdog::Beat(const std::string& subsystem) {
  std::lock_guard<std::mutex> lock(mu_);
  State& state = subsystems_[subsystem];
  state.last_beat_nanos = MonotonicNanos();
  ++state.beats;
}

void Watchdog::Arm(const std::string& subsystem, int64_t timeout_nanos) {
  std::lock_guard<std::mutex> lock(mu_);
  State& state = subsystems_[subsystem];
  state.armed_at_nanos = MonotonicNanos();
  state.timeout_nanos = timeout_nanos;
}

void Watchdog::Disarm(const std::string& subsystem) {
  std::lock_guard<std::mutex> lock(mu_);
  State& state = subsystems_[subsystem];
  state.armed_at_nanos = 0;
  state.last_beat_nanos = MonotonicNanos();
  ++state.beats;
}

bool Watchdog::Stuck(const std::string& subsystem, int64_t now_nanos) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = subsystems_.find(subsystem);
  return it != subsystems_.end() && StuckLocked(it->second, now_nanos);
}

std::vector<std::string> Watchdog::StuckSubsystems(int64_t now_nanos) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> stuck;
  for (const auto& [name, state] : subsystems_) {
    if (StuckLocked(state, now_nanos)) stuck.push_back(name);
  }
  return stuck;
}

std::map<std::string, Watchdog::Health> Watchdog::Snapshot(
    int64_t now_nanos) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, Health> out;
  for (const auto& [name, state] : subsystems_) {
    Health health;
    health.last_beat_nanos = state.last_beat_nanos;
    health.armed_at_nanos = state.armed_at_nanos;
    health.timeout_nanos = state.timeout_nanos;
    health.beats = state.beats;
    health.stuck = StuckLocked(state, now_nanos);
    out[name] = health;
  }
  return out;
}

}  // namespace nerpa
