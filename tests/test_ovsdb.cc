// Unit tests for the management-plane database: value model, schema
// round-trips, transaction semantics (atomicity, mutate, named-uuids),
// constraints (indexes, enums, referential integrity, GC), and monitors.
#include <gtest/gtest.h>

#include "common/strings.h"
#include "ovsdb/database.h"

namespace nerpa::ovsdb {
namespace {

DatabaseSchema TestSchema() {
  DatabaseSchema schema;
  schema.name = "testdb";

  TableSchema bridge;
  bridge.name = "Bridge";
  bridge.columns = {
      {"name", ColumnType::Scalar(BaseType::String()), false, true},
      {"ports", ColumnType::Set(BaseType::Ref("Port")), false, true},
      {"datapath", ColumnType::Scalar(BaseType::StringEnum(
                       {"system", "netdev"})), false, true},
  };
  bridge.indexes = {{"name"}};
  schema.tables.emplace("Bridge", std::move(bridge));

  TableSchema port;
  port.name = "Port";
  port.is_root = false;  // garbage-collected when unreferenced
  port.columns = {
      {"name", ColumnType::Scalar(BaseType::String()), false, true},
      {"tag", ColumnType::Scalar(BaseType::Integer(0, 4095)), false, true},
      {"stats", ColumnType::Map(BaseType::String(), BaseType::Integer()),
       false, true},
      {"peer", ColumnType::Optional(BaseType::Ref("Port", /*weak=*/true)),
       false, true},
  };
  schema.tables.emplace("Port", std::move(port));
  return schema;
}

TEST(Atom, OrderingAndJson) {
  EXPECT_LT(Atom(int64_t{1}), Atom(int64_t{2}));
  EXPECT_LT(Atom(int64_t{5}), Atom("a"));  // ordered by type first
  EXPECT_EQ(Atom("x").ToJson().as_string(), "x");
  Uuid uuid = Uuid::Generate();
  Json json = Atom(uuid).ToJson();
  auto back = Atom::FromJson(json, AtomicType::kUuid);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->uuid(), uuid);
}

TEST(Uuid, ParseRoundTrip) {
  Uuid uuid = Uuid::Generate();
  auto parsed = Uuid::Parse(uuid.ToString());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, uuid);
  EXPECT_FALSE(Uuid::Parse("not-a-uuid").has_value());
  EXPECT_FALSE(Uuid::Parse("00000000-0000-0000-0000-00000000000").has_value());
  EXPECT_NE(Uuid::Generate(), Uuid::Generate());
}

TEST(Datum, SetCanonicalization) {
  Datum set = Datum::Set({Atom(int64_t{3}), Atom(int64_t{1}),
                          Atom(int64_t{3}), Atom(int64_t{2})});
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.ContainsKey(Atom(int64_t{1})));
  // Equal regardless of construction order.
  EXPECT_EQ(set, Datum::Set({Atom(int64_t{2}), Atom(int64_t{1}),
                             Atom(int64_t{3})}));
}

TEST(Datum, MapOperations) {
  Datum map = Datum::Map({{Atom("a"), Atom(int64_t{1})},
                          {Atom("b"), Atom(int64_t{2})}});
  EXPECT_EQ(map.MapGet(Atom("a"))->integer(), 1);
  map.InsertPair(Atom("a"), Atom(int64_t{9}));
  EXPECT_EQ(map.MapGet(Atom("a"))->integer(), 9);
  map.EraseKey(Atom("b"));
  EXPECT_FALSE(map.MapGet(Atom("b")).has_value());
}

TEST(Datum, TypeChecking) {
  ColumnType tag = ColumnType::Scalar(BaseType::Integer(0, 4095));
  EXPECT_TRUE(Datum::Integer(100).CheckType(tag).ok());
  EXPECT_FALSE(Datum::Integer(9999).CheckType(tag).ok());
  EXPECT_FALSE(Datum::String("x").CheckType(tag).ok());
  ColumnType small_set = ColumnType::Set(BaseType::Integer(), 0, 2);
  EXPECT_FALSE(Datum::Set({Atom(int64_t{1}), Atom(int64_t{2}),
                           Atom(int64_t{3})})
                   .CheckType(small_set)
                   .ok());
}

TEST(Schema, JsonRoundTrip) {
  DatabaseSchema schema = TestSchema();
  auto back = DatabaseSchema::FromJson(schema.ToJson());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->name, "testdb");
  const TableSchema* port = back->FindTable("Port");
  ASSERT_NE(port, nullptr);
  EXPECT_FALSE(port->is_root);
  const ColumnSchema* stats = port->FindColumn("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_TRUE(stats->type.is_map());
  const ColumnSchema* peer = port->FindColumn("peer");
  ASSERT_NE(peer, nullptr);
  EXPECT_TRUE(peer->type.key.ref_weak);
  const ColumnSchema* datapath =
      back->FindTable("Bridge")->FindColumn("datapath");
  EXPECT_EQ(datapath->type.key.enum_values.size(), 2u);
}

TEST(Schema, ValidateRejectsDanglingRef) {
  DatabaseSchema schema = TestSchema();
  schema.tables.at("Bridge").columns[1].type.key.ref_table = "Nope";
  EXPECT_FALSE(schema.Validate().ok());
}

class DatabaseTest : public ::testing::Test {
 protected:
  DatabaseTest() : db_(TestSchema()) {}

  Database db_;
};

TEST_F(DatabaseTest, InsertSelectDelete) {
  // Ports are non-root; insert a root Bridge referencing one.
  auto result = db_.TransactText(R"([
    {"op": "insert", "table": "Port",
     "row": {"name": "eth0", "tag": 7}, "uuid-name": "p"},
    {"op": "insert", "table": "Bridge",
     "row": {"name": "br0", "ports": ["named-uuid", "p"],
             "datapath": "system"}}
  ])");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(db_.RowCount("Port"), 1u);
  EXPECT_EQ(db_.RowCount("Bridge"), 1u);

  auto rows = db_.SelectRows(
      "Port", {{"tag", "==", Datum::Integer(7)}});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0]->Find("name")->AsString(), "eth0");

  // Deleting the bridge garbage-collects the (now unreferenced) port.
  result = db_.TransactText(R"([
    {"op": "delete", "table": "Bridge",
     "where": [["name", "==", "br0"]]}
  ])");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(db_.RowCount("Port"), 0u);
}

TEST_F(DatabaseTest, AtomicRollbackOnFailure) {
  // Second op violates the enum constraint => first insert must roll back.
  auto result = db_.TransactText(R"([
    {"op": "insert", "table": "Bridge",
     "row": {"name": "br0", "datapath": "system"}},
    {"op": "insert", "table": "Bridge",
     "row": {"name": "br1", "datapath": "bogus"}}
  ])");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(db_.RowCount("Bridge"), 0u);
}

TEST_F(DatabaseTest, UniqueIndexEnforced) {
  ASSERT_TRUE(db_.TransactText(R"([
    {"op": "insert", "table": "Bridge",
     "row": {"name": "br0", "datapath": "system"}}
  ])").ok());
  auto dup = db_.TransactText(R"([
    {"op": "insert", "table": "Bridge",
     "row": {"name": "br0", "datapath": "netdev"}}
  ])");
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(db_.RowCount("Bridge"), 1u);
}

TEST_F(DatabaseTest, UpdateAndMutate) {
  ASSERT_TRUE(db_.TransactText(R"([
    {"op": "insert", "table": "Port",
     "row": {"name": "eth0", "tag": 1,
             "stats": ["map", [["rx", 10]]]}, "uuid-name": "p"},
    {"op": "insert", "table": "Bridge",
     "row": {"name": "br0", "ports": ["named-uuid", "p"],
             "datapath": "system"}}
  ])").ok());

  // update rewrites a column; mutate does arithmetic and map surgery.
  auto result = db_.TransactText(R"([
    {"op": "update", "table": "Port", "where": [["name", "==", "eth0"]],
     "row": {"tag": 42}},
    {"op": "mutate", "table": "Port", "where": [["name", "==", "eth0"]],
     "mutations": [["tag", "+=", 8],
                   ["stats", "insert", ["map", [["tx", 5]]]],
                   ["stats", "delete", ["set", ["rx"]]]]}
  ])");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto rows = db_.SelectRows("Port", {});
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0]->Find("tag")->AsInteger(), 50);
  const Datum* stats = (*rows)[0]->Find("stats");
  EXPECT_EQ(stats->MapGet(Atom("tx"))->integer(), 5);
  EXPECT_FALSE(stats->MapGet(Atom("rx")).has_value());
}

TEST_F(DatabaseTest, MutateDivisionByZeroFailsCleanly) {
  ASSERT_TRUE(db_.TransactText(R"([
    {"op": "insert", "table": "Bridge",
     "row": {"name": "br0", "datapath": "system"}}
  ])").ok());
  auto result = db_.TransactText(R"([
    {"op": "mutate", "table": "Bridge", "where": [],
     "mutations": [["name", "+=", 1]]}
  ])");
  EXPECT_FALSE(result.ok());  // arithmetic on a string column
}

TEST_F(DatabaseTest, StrongRefMustResolve) {
  Uuid bogus = Uuid::Generate();
  std::string request = StrFormat(R"([
    {"op": "insert", "table": "Bridge",
     "row": {"name": "br0", "datapath": "system",
             "ports": ["set", [["uuid", "%s"]]]}}
  ])", bogus.ToString().c_str());
  auto result = db_.TransactText(request);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(db_.RowCount("Bridge"), 0u);
}

TEST_F(DatabaseTest, WeakRefPrunedOnTargetDeletion) {
  ASSERT_TRUE(db_.TransactText(R"([
    {"op": "insert", "table": "Port",
     "row": {"name": "a", "tag": 1}, "uuid-name": "pa"},
    {"op": "insert", "table": "Port",
     "row": {"name": "b", "tag": 2, "peer": ["named-uuid", "pa"]},
     "uuid-name": "pb"},
    {"op": "insert", "table": "Bridge",
     "row": {"name": "br0", "datapath": "system",
             "ports": ["set", [["named-uuid", "pa"], ["named-uuid", "pb"]]]}}
  ])").ok());
  // Drop port a from the bridge: GC deletes it, and b's weak peer ref is
  // pruned automatically.
  auto result = db_.TransactText(R"([
    {"op": "mutate", "table": "Bridge", "where": [["name", "==", "br0"]],
     "mutations": [["ports", "delete",
                    ["set", []]]]}
  ])");
  ASSERT_TRUE(result.ok());
  // Rebuild the ports set without a (the mutate above was a no-op; easier
  // with update): find a's uuid, then remove it.
  auto port_a = db_.SelectRows("Port", {{"name", "==", Datum::String("a")}});
  ASSERT_EQ(port_a->size(), 1u);
  Uuid a_uuid = (*port_a)[0]->uuid;
  result = db_.TransactText(StrFormat(R"([
    {"op": "mutate", "table": "Bridge", "where": [["name", "==", "br0"]],
     "mutations": [["ports", "delete", ["set", [["uuid", "%s"]]]]]}
  ])", a_uuid.ToString().c_str()));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(db_.RowCount("Port"), 1u);  // a was GC'd
  auto port_b = db_.SelectRows("Port", {{"name", "==", Datum::String("b")}});
  ASSERT_EQ(port_b->size(), 1u);
  EXPECT_TRUE((*port_b)[0]->Find("peer")->empty());  // weak ref pruned
}

TEST_F(DatabaseTest, MonitorSeesInitialAndIncremental) {
  std::vector<TableUpdates> batches;
  db_.AddMonitor({"Bridge"}, [&](const TableUpdates& updates) {
    batches.push_back(updates);
  });
  EXPECT_TRUE(batches.empty());  // empty db: no initial batch

  ASSERT_TRUE(db_.TransactText(R"([
    {"op": "insert", "table": "Bridge",
     "row": {"name": "br0", "datapath": "system"}}
  ])").ok());
  ASSERT_EQ(batches.size(), 1u);
  ASSERT_EQ(batches[0].count("Bridge"), 1u);
  const RowUpdate& insert = batches[0]["Bridge"].begin()->second;
  EXPECT_TRUE(insert.is_insert());
  EXPECT_EQ(insert.new_row->Find("name")->AsString(), "br0");

  ASSERT_TRUE(db_.TransactText(R"([
    {"op": "update", "table": "Bridge", "where": [["name", "==", "br0"]],
     "row": {"datapath": "netdev"}}
  ])").ok());
  ASSERT_EQ(batches.size(), 2u);
  const RowUpdate& modify = batches[1]["Bridge"].begin()->second;
  EXPECT_TRUE(modify.is_modify());
  EXPECT_EQ(modify.old_row->Find("datapath")->AsString(), "system");
  EXPECT_EQ(modify.new_row->Find("datapath")->AsString(), "netdev");

  // A second monitor gets the current contents as initial inserts.
  std::vector<TableUpdates> late;
  db_.AddMonitor({}, [&](const TableUpdates& updates) {
    late.push_back(updates);
  });
  ASSERT_EQ(late.size(), 1u);
  EXPECT_TRUE(late[0]["Bridge"].begin()->second.is_insert());
}

TEST_F(DatabaseTest, MonitorNotNotifiedOnNoOpTransaction) {
  ASSERT_TRUE(db_.TransactText(R"([
    {"op": "insert", "table": "Bridge",
     "row": {"name": "br0", "datapath": "system"}}
  ])").ok());
  int calls = 0;
  db_.AddMonitor({"Bridge"}, [&](const TableUpdates&) { ++calls; });
  // An update writing identical values commits but produces no delta.
  ASSERT_TRUE(db_.TransactText(R"([
    {"op": "update", "table": "Bridge", "where": [["name", "==", "br0"]],
     "row": {"datapath": "system"}}
  ])").ok());
  EXPECT_EQ(calls, 1);  // only the initial snapshot
}

TEST_F(DatabaseTest, SelectComparisonsAndSetClauses) {
  ASSERT_TRUE(db_.TransactText(R"([
    {"op": "insert", "table": "Port", "row": {"name": "a", "tag": 5},
     "uuid-name": "pa"},
    {"op": "insert", "table": "Port", "row": {"name": "b", "tag": 9},
     "uuid-name": "pb"},
    {"op": "insert", "table": "Bridge",
     "row": {"name": "br0", "datapath": "system",
             "ports": ["set", [["named-uuid", "pa"], ["named-uuid", "pb"]]]}}
  ])").ok());
  auto low = db_.SelectRows("Port", {{"tag", "<", Datum::Integer(6)}});
  ASSERT_TRUE(low.ok());
  EXPECT_EQ(low->size(), 1u);
  auto ge = db_.SelectRows("Port", {{"tag", ">=", Datum::Integer(5)}});
  EXPECT_EQ(ge->size(), 2u);

  auto port_a = db_.SelectRows("Port", {{"name", "==", Datum::String("a")}});
  Uuid a_uuid = (*port_a)[0]->uuid;
  auto includes = db_.SelectRows(
      "Bridge", {{"ports", "includes", Datum::UuidRef(a_uuid)}});
  ASSERT_TRUE(includes.ok());
  EXPECT_EQ(includes->size(), 1u);
  auto excludes = db_.SelectRows(
      "Bridge", {{"ports", "excludes", Datum::UuidRef(Uuid::Generate())}});
  EXPECT_EQ(excludes->size(), 1u);
}

TEST_F(DatabaseTest, WaitOpGatesTransaction) {
  ASSERT_TRUE(db_.TransactText(R"([
    {"op": "insert", "table": "Bridge",
     "row": {"name": "br0", "datapath": "system"}}
  ])").ok());
  // wait until == succeeds when contents match.
  auto ok = db_.TransactText(R"([
    {"op": "wait", "table": "Bridge", "where": [["name", "==", "br0"]],
     "columns": ["datapath"], "until": "==",
     "rows": [{"datapath": "system"}]},
    {"op": "update", "table": "Bridge", "where": [["name", "==", "br0"]],
     "row": {"datapath": "netdev"}}
  ])");
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
  // Now the same wait fails and blocks the transaction.
  auto blocked = db_.TransactText(R"([
    {"op": "wait", "table": "Bridge", "where": [["name", "==", "br0"]],
     "columns": ["datapath"], "until": "==",
     "rows": [{"datapath": "system"}]},
    {"op": "delete", "table": "Bridge", "where": []}
  ])");
  EXPECT_FALSE(blocked.ok());
  EXPECT_EQ(db_.RowCount("Bridge"), 1u);
}

TEST_F(DatabaseTest, AbortRollsBack) {
  auto result = db_.TransactText(R"([
    {"op": "insert", "table": "Bridge",
     "row": {"name": "br0", "datapath": "system"}},
    {"op": "abort"}
  ])");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(db_.RowCount("Bridge"), 0u);
}

TEST_F(DatabaseTest, ImmutableColumnRejectsUpdate) {
  DatabaseSchema schema = TestSchema();
  schema.tables.at("Bridge").columns[0].mutable_ = false;  // name
  Database db(std::move(schema));
  ASSERT_TRUE(db.TransactText(R"([
    {"op": "insert", "table": "Bridge",
     "row": {"name": "br0", "datapath": "system"}}
  ])").ok());
  auto result = db.TransactText(R"([
    {"op": "update", "table": "Bridge", "where": [],
     "row": {"name": "br1"}}
  ])");
  EXPECT_FALSE(result.ok());
}


TEST_F(DatabaseTest, JournalReplayRestoresStateAndUuids) {
  std::string path = ::testing::TempDir() + "/ovsdb_journal_test.log";
  std::remove(path.c_str());
  ASSERT_TRUE(db_.EnableJournal(path).ok());
  ASSERT_TRUE(db_.TransactText(R"([
    {"op": "insert", "table": "Port",
     "row": {"name": "eth0", "tag": 7}, "uuid-name": "p"},
    {"op": "insert", "table": "Bridge",
     "row": {"name": "br0", "ports": ["named-uuid", "p"],
             "datapath": "system"}}
  ])").ok());
  ASSERT_TRUE(db_.TransactText(R"([
    {"op": "mutate", "table": "Port", "where": [["name", "==", "eth0"]],
     "mutations": [["tag", "+=", 5]]}
  ])").ok());
  // A failed transaction must not reach the journal.
  ASSERT_FALSE(db_.TransactText(R"([
    {"op": "insert", "table": "Bridge",
     "row": {"name": "br0", "datapath": "system"}}
  ])").ok());

  auto restored = Database::RestoreFromJournal(TestSchema(), path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->RowCount("Bridge"), 1u);
  EXPECT_EQ((*restored)->RowCount("Port"), 1u);
  auto original = db_.SelectRows("Port", {});
  auto replayed = (*restored)->SelectRows("Port", {});
  ASSERT_EQ(replayed->size(), 1u);
  // Row identity (uuid) and contents survive the replay.
  EXPECT_EQ((*replayed)[0]->uuid, (*original)[0]->uuid);
  EXPECT_EQ((*replayed)[0]->Find("tag")->AsInteger(), 12);
  // The restored database keeps referential integrity: the bridge still
  // strongly references the port (same uuid).
  auto bridges = (*restored)->SelectRows("Bridge", {});
  EXPECT_TRUE((*bridges)[0]->Find("ports")->ContainsKey(
      Atom((*replayed)[0]->uuid)));
  std::remove(path.c_str());
}

TEST_F(DatabaseTest, ForcedUuidInsertRejectsDuplicates) {
  Uuid uuid = Uuid::Generate();
  std::string request = StrFormat(R"([
    {"op": "insert", "table": "Bridge", "uuid": "%s",
     "row": {"name": "br0", "datapath": "system"}}
  ])", uuid.ToString().c_str());
  ASSERT_TRUE(db_.TransactText(request).ok());
  EXPECT_NE(db_.GetRow("Bridge", uuid), nullptr);
  std::string duplicate = StrFormat(R"([
    {"op": "insert", "table": "Bridge", "uuid": "%s",
     "row": {"name": "br1", "datapath": "system"}}
  ])", uuid.ToString().c_str());
  EXPECT_FALSE(db_.TransactText(duplicate).ok());
}

// --- Scale features: indexed select, partial map mutate, column-scoped
// monitors, on-demand fetch (the OVSDB-improvements quartet) ---

TEST_F(DatabaseTest, IndexedSelectUsesUniqueIndex) {
  ASSERT_TRUE(db_.TransactText(R"([
    {"op": "insert", "table": "Bridge",
     "row": {"name": "br0", "datapath": "system"}},
    {"op": "insert", "table": "Bridge",
     "row": {"name": "br1", "datapath": "netdev"}}
  ])").ok());
  uint64_t before = db_.indexed_selects();

  // Equality on the indexed column probes instead of scanning.
  auto hit = db_.SelectRows("Bridge", {{"name", "==", Datum::String("br1")}});
  ASSERT_TRUE(hit.ok());
  ASSERT_EQ(hit->size(), 1u);
  EXPECT_EQ((*hit)[0]->Find("datapath")->AsString(), "netdev");
  EXPECT_EQ(db_.indexed_selects(), before + 1);

  // Missing key: indexed miss, not a scan.
  auto miss = db_.SelectRows("Bridge", {{"name", "==", Datum::String("zz")}});
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(miss->empty());
  EXPECT_EQ(db_.indexed_selects(), before + 2);

  // Extra clauses still verify against the probed row.
  auto narrowed = db_.SelectRows(
      "Bridge", {{"name", "==", Datum::String("br1")},
                 {"datapath", "==", Datum::String("system")}});
  ASSERT_TRUE(narrowed.ok());
  EXPECT_TRUE(narrowed->empty());
  EXPECT_EQ(db_.indexed_selects(), before + 3);

  // Non-equality functions and unindexed columns fall back to the scan.
  (void)db_.SelectRows("Bridge", {{"datapath", "==", Datum::String("netdev")}});
  (void)db_.SelectRows("Port", {{"tag", ">=", Datum::Integer(0)}});
  EXPECT_EQ(db_.indexed_selects(), before + 3);
}

TEST_F(DatabaseTest, IndexedSelectByUuidAndInTransactWhere) {
  ASSERT_TRUE(db_.TransactText(R"([
    {"op": "insert", "table": "Bridge",
     "row": {"name": "br0", "datapath": "system"}}
  ])").ok());
  Uuid uuid = db_.SelectRows("Bridge", {})->front()->uuid;
  uint64_t before = db_.indexed_selects();

  auto by_uuid = db_.SelectRows("Bridge", {{"_uuid", "==",
                                            Datum::UuidRef(uuid)}});
  ASSERT_TRUE(by_uuid.ok());
  EXPECT_EQ(by_uuid->size(), 1u);
  EXPECT_EQ(db_.indexed_selects(), before + 1);

  // Transaction `where` matching takes the same fast path.
  ASSERT_TRUE(db_.TransactText(R"([
    {"op": "update", "table": "Bridge", "where": [["name", "==", "br0"]],
     "row": {"datapath": "netdev"}}
  ])").ok());
  EXPECT_GT(db_.indexed_selects(), before + 1);
  EXPECT_EQ(db_.SelectRows("Bridge", {})->front()
                ->Find("datapath")->AsString(), "netdev");
}

TEST_F(DatabaseTest, MutateSetKeyAndDelKey) {
  ASSERT_TRUE(db_.TransactText(R"([
    {"op": "insert", "table": "Port",
     "row": {"name": "eth0", "stats": ["map", [["rx", 10], ["errs", 1]]]},
     "uuid-name": "p"},
    {"op": "insert", "table": "Bridge",
     "row": {"name": "br0", "ports": ["named-uuid", "p"],
             "datapath": "system"}}
  ])").ok());

  // setkey overwrites an existing key and inserts a fresh one.
  auto result = db_.TransactText(R"([
    {"op": "mutate", "table": "Port", "where": [["name", "==", "eth0"]],
     "mutations": [["stats", "setkey", ["map", [["rx", 11]]]],
                   ["stats", "setkey", ["map", [["tx", 5]]]]]}
  ])");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Datum* stats = db_.SelectRows("Port", {})->front()->Find("stats");
  EXPECT_EQ(stats->MapGet(Atom("rx"))->integer(), 11);
  EXPECT_EQ(stats->MapGet(Atom("tx"))->integer(), 5);

  // delkey removes present keys; absent keys are a no-op, not an error.
  result = db_.TransactText(R"([
    {"op": "mutate", "table": "Port", "where": [["name", "==", "eth0"]],
     "mutations": [["stats", "delkey", ["set", ["errs", "nope"]]]]}
  ])");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  stats = db_.SelectRows("Port", {})->front()->Find("stats");
  EXPECT_FALSE(stats->MapGet(Atom("errs")).has_value());
  EXPECT_EQ(stats->size(), 2u);  // rx, tx

  // setkey on a non-map column is a type error and rolls back.
  EXPECT_FALSE(db_.TransactText(R"([
    {"op": "mutate", "table": "Port", "where": [],
     "mutations": [["tag", "setkey", ["map", [["x", 1]]]]]}
  ])").ok());
}

TEST_F(DatabaseTest, ColumnScopedMonitorProjectsAndSuppresses) {
  ASSERT_TRUE(db_.TransactText(R"([
    {"op": "insert", "table": "Port", "row": {"name": "eth0", "tag": 1},
     "uuid-name": "p"},
    {"op": "insert", "table": "Bridge",
     "row": {"name": "br0", "ports": ["named-uuid", "p"],
             "datapath": "system"}}
  ])").ok());

  std::vector<TableUpdates> batches;
  db_.AddMonitorColumns({{"Port", {"name"}}},
                        [&](const TableUpdates& updates) {
                          batches.push_back(updates);
                        });
  // Initial snapshot arrives projected to the selected columns.
  ASSERT_EQ(batches.size(), 1u);
  const Row& initial = *batches[0].at("Port").begin()->second.new_row;
  EXPECT_NE(initial.Find("name"), nullptr);
  EXPECT_EQ(initial.Find("tag"), nullptr);

  // A commit touching only unselected columns does not fire the callback.
  ASSERT_TRUE(db_.TransactText(R"([
    {"op": "update", "table": "Port", "where": [["name", "==", "eth0"]],
     "row": {"tag": 9}}
  ])").ok());
  EXPECT_EQ(batches.size(), 1u);

  // Changes to selected columns still arrive (projected).
  ASSERT_TRUE(db_.TransactText(R"([
    {"op": "update", "table": "Port", "where": [["name", "==", "eth0"]],
     "row": {"name": "eth1"}}
  ])").ok());
  ASSERT_EQ(batches.size(), 2u);
  const RowUpdate& modify = batches[1].at("Port").begin()->second;
  EXPECT_TRUE(modify.is_modify());
  EXPECT_EQ(modify.new_row->Find("name")->AsString(), "eth1");
  EXPECT_EQ(modify.new_row->Find("tag"), nullptr);

  // Unmonitored tables stay invisible.
  ASSERT_TRUE(db_.TransactText(R"([
    {"op": "update", "table": "Bridge", "where": [["name", "==", "br0"]],
     "row": {"datapath": "netdev"}}
  ])").ok());
  EXPECT_EQ(batches.size(), 2u);
}

TEST_F(DatabaseTest, FetchRowsProjectsOnDemand) {
  ASSERT_TRUE(db_.TransactText(R"([
    {"op": "insert", "table": "Port",
     "row": {"name": "eth0", "tag": 3, "stats": ["map", [["rx", 10]]]},
     "uuid-name": "p"},
    {"op": "insert", "table": "Bridge",
     "row": {"name": "br0", "ports": ["named-uuid", "p"],
             "datapath": "system"}}
  ])").ok());

  auto where = Json::Parse(R"([["name", "==", "eth0"]])");
  ASSERT_TRUE(where.ok());
  auto fetched = db_.FetchRows("Port", *where, {"_uuid", "stats"});
  ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
  const Json::Array& rows = fetched->Find("rows")->as_array();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_NE(rows[0].Find("stats"), nullptr);
  EXPECT_NE(rows[0].Find("_uuid"), nullptr);
  EXPECT_EQ(rows[0].Find("name"), nullptr);  // not requested

  // Empty column list = everything.
  auto all = db_.FetchRows("Port", *where, {});
  ASSERT_TRUE(all.ok());
  EXPECT_NE(all->Find("rows")->as_array()[0].Find("name"), nullptr);

  // Errors: unknown table, unknown column, malformed where.
  EXPECT_FALSE(db_.FetchRows("Nope", *where, {}).ok());
  EXPECT_FALSE(db_.FetchRows("Port", *where, {"bogus"}).ok());
  EXPECT_FALSE(db_.FetchRows("Port", Json(42), {}).ok());
}

TEST_F(DatabaseTest, TxnBuilderSetKeyDelKey) {
  ASSERT_TRUE(db_.TransactText(R"([
    {"op": "insert", "table": "Port", "row": {"name": "eth0"},
     "uuid-name": "p"},
    {"op": "insert", "table": "Bridge",
     "row": {"name": "br0", "ports": ["named-uuid", "p"],
             "datapath": "system"}}
  ])").ok());

  TxnBuilder txn(&db_);
  txn.MutateSetKey("Port", {{"name", "==", Datum::String("eth0")}},
                   "stats", Atom("rx"), Atom(int64_t{7}));
  ASSERT_TRUE(txn.Commit().ok());
  txn.MutateSetKey("Port", {{"name", "==", Datum::String("eth0")}},
                   "stats", Atom("rx"), Atom(int64_t{8}));
  txn.MutateDelKey("Port", {{"name", "==", Datum::String("eth0")}},
                   "stats", Atom("absent"));
  ASSERT_TRUE(txn.Commit().ok());

  const Datum* stats = db_.SelectRows("Port", {})->front()->Find("stats");
  EXPECT_EQ(stats->MapGet(Atom("rx"))->integer(), 8);
  EXPECT_EQ(stats->size(), 1u);
}

}  // namespace
}  // namespace nerpa::ovsdb
