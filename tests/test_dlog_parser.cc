// Unit tests for the Datalog dialect front end: lexer, parser, type
// checker, expression evaluation, and compile-time diagnostics.
#include <gtest/gtest.h>

#include "dlog/engine.h"
#include "dlog/eval.h"
#include "dlog/lexer.h"
#include "dlog/parser.h"
#include "dlog/program.h"

namespace nerpa::dlog {
namespace {

TEST(Lexer, TokensAndComments) {
  auto tokens = Tokenize(R"(
    relation Foo(x: bit<12>)  // line comment
    /* block
       comment */ Foo(0x1F, 1_000) :- x == 2.
  )");
  ASSERT_TRUE(tokens.ok()) << tokens.status().ToString();
  std::vector<std::string> texts;
  for (const Token& token : *tokens) {
    if (!token.Is(TokKind::kEof)) texts.push_back(token.text);
  }
  EXPECT_EQ(texts[0], "relation");
  // Hex and underscore-separated literals.
  bool saw_hex = false, saw_thousand = false;
  for (const Token& token : *tokens) {
    if (token.Is(TokKind::kInt) && token.int_value == 0x1F) saw_hex = true;
    if (token.Is(TokKind::kInt) && token.int_value == 1000) {
      saw_thousand = true;
    }
  }
  EXPECT_TRUE(saw_hex);
  EXPECT_TRUE(saw_thousand);
}

TEST(Lexer, StringEscapes) {
  auto tokens = Tokenize(R"("a\n\t\"b\\")");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "a\n\t\"b\\");
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("\"bad\\qescape\"").ok());
}

TEST(Parser, RelationDeclarations) {
  auto ast = ParseProgram(R"(
    input relation In(a: bigint, b: string)
    output relation Out(t: (bool, bit<4>), v: Vec<bigint>)
    relation Mid(x: bigint)
  )");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  ASSERT_EQ(ast->relations.size(), 3u);
  EXPECT_EQ(ast->relations[0].role, RelationRole::kInput);
  EXPECT_EQ(ast->relations[1].role, RelationRole::kOutput);
  EXPECT_EQ(ast->relations[2].role, RelationRole::kInternal);
  EXPECT_EQ(ast->relations[1].columns[0].type.kind, Type::Kind::kTuple);
  EXPECT_EQ(ast->relations[1].columns[1].type.kind, Type::Kind::kVec);
}

TEST(Parser, RuleShapes) {
  auto ast = ParseProgram(R"(
    input relation E(a: bigint, b: bigint)
    output relation O(a: bigint)
    O(a) :- E(a, _), not E(a, 5), a != 0, var c = a * 2, c < 100.
  )");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  ASSERT_EQ(ast->rules.size(), 1u);
  const Rule& rule = ast->rules[0];
  ASSERT_EQ(rule.body.size(), 5u);
  EXPECT_EQ(rule.body[0].kind, BodyElem::Kind::kLiteral);
  EXPECT_TRUE(rule.body[1].negated);
  EXPECT_EQ(rule.body[2].kind, BodyElem::Kind::kCondition);
  EXPECT_EQ(rule.body[3].kind, BodyElem::Kind::kAssignment);
  EXPECT_EQ(rule.body[4].kind, BodyElem::Kind::kCondition);
}

TEST(Parser, AggregateAndFlatMap) {
  auto ast = ParseProgram(R"(
    input relation M(g: bigint, vs: Vec<bigint>)
    output relation C(g: bigint, n: bigint)
    C(g, n) :- M(g, vs), var v in vs, var n = count(v) group_by (g).
  )");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  const Rule& rule = ast->rules[0];
  ASSERT_EQ(rule.body.size(), 3u);
  EXPECT_EQ(rule.body[1].kind, BodyElem::Kind::kFlatMap);
  EXPECT_EQ(rule.body[2].kind, BodyElem::Kind::kAggregate);
  EXPECT_EQ(rule.body[2].agg_func, AggFunc::kCount);
}

TEST(Parser, ExpressionPrecedence) {
  auto expr = ParseExpr("1 + 2 * 3 == 7 and not (4 < 3)");
  ASSERT_TRUE(expr.ok()) << expr.status().ToString();
  // Top node is `and`.
  EXPECT_EQ((*expr)->op2, BinOp::kAnd);
  EXPECT_EQ((*expr)->ToString(),
            "(((1 + (2 * 3)) == 7) and not (4 < 3))");
}

TEST(Parser, CastsAndIf) {
  auto expr = ParseExpr("if x > 0 then x as bit<8> else 0");
  ASSERT_TRUE(expr.ok()) << expr.status().ToString();
  EXPECT_EQ((*expr)->kind, Expr::Kind::kCond);
}

TEST(Parser, SyntaxErrors) {
  EXPECT_FALSE(ParseProgram("relation ()").ok());
  EXPECT_FALSE(ParseProgram("relation Foo(x: bit<0>)").ok());
  EXPECT_FALSE(ParseProgram("relation Foo(x: bit<65>)").ok());
  EXPECT_FALSE(ParseProgram("relation Foo(x: bigint, x: bigint)").ok());
  EXPECT_FALSE(ParseProgram(R"(
    relation Foo(x: bigint)
    Foo(1)
  )").ok());  // missing period
  EXPECT_FALSE(ParseProgram(R"(
    relation Foo(x: bigint)
    relation Foo(y: bigint)
  )").ok());  // duplicate relation
}

TEST(Compile, TypesFlowThroughRules) {
  auto program = Program::Parse(R"(
    input relation P(port: bit<16>, name: string)
    output relation O(p: bit<16>, label: string)
    O(p + 1, "port-" ++ n) :- P(p, n), p < 100.
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
}

TEST(Compile, LiteralWidthChecked) {
  auto program = Program::Parse(R"(
    input relation P(x: bit<4>)
    output relation O(x: bit<4>)
    O(99) :- P(_).
  )");
  EXPECT_FALSE(program.ok());  // 99 does not fit bit<4>
}

TEST(Compile, WildcardInHeadRejected) {
  EXPECT_FALSE(Program::Parse(R"(
    input relation P(x: bigint)
    output relation O(x: bigint)
    O(_) :- P(_).
  )").ok());
}

TEST(Compile, GroupByUnboundRejected) {
  EXPECT_FALSE(Program::Parse(R"(
    input relation P(x: bigint)
    output relation O(g: bigint, n: bigint)
    O(g, n) :- P(x), var n = count(x) group_by (g).
  )").ok());
}

TEST(Compile, AggregateMustBeLast) {
  EXPECT_FALSE(Program::Parse(R"(
    input relation P(x: bigint)
    input relation Q(x: bigint)
    output relation O(n: bigint)
    O(n) :- P(x), var n = count(x) group_by (x), Q(n).
  )").ok());
}

TEST(Compile, RecursiveHeadExpressions) {
  // Recursive rules must have invertible heads (DRed re-derivation):
  // plain variables, constants, and affine bigint terms are invertible...
  EXPECT_TRUE(Program::Parse(R"(
    input relation E(a: bigint, b: bigint)
    output relation R(a: bigint, h: bigint)
    R(a, 0) :- E(a, _).
    R(b, h + 1) :- R(a, h), E(a, b), h < 8.
  )").ok());
  // ...but arbitrary expressions are not.
  EXPECT_FALSE(Program::Parse(R"(
    input relation E(a: bigint, b: bigint)
    output relation R(a: bigint)
    R(a) :- E(a, _).
    R(a * 2) :- R(a), E(a, _).
  )").ok());
}

TEST(Compile, StratifiesChains) {
  auto program = Program::Parse(R"(
    input relation A(x: bigint)
    relation B(x: bigint)
    relation C(x: bigint)
    output relation D(x: bigint)
    B(x) :- A(x).
    C(x) :- B(x), not A(x).
    D(x) :- C(x).
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  // B before C before D.
  int b = (*program)->FindRelation("B");
  int c = (*program)->FindRelation("C");
  int d = (*program)->FindRelation("D");
  EXPECT_LT((*program)->stratum_of(b), (*program)->stratum_of(c));
  EXPECT_LT((*program)->stratum_of(c), (*program)->stratum_of(d));
}

TEST(Eval, Builtins) {
  auto check = [](const char* source, const Value& expected) {
    auto expr = ParseExpr(source);
    ASSERT_TRUE(expr.ok()) << source;
    // Type check against an empty environment (constants only).
    auto program = Program::Parse(std::string(R"(
      output relation O(x: )") +
        (expected.is_string() ? "string"
         : expected.is_bool() ? "bool"
                              : "bigint") +
        ")\nO(" + source + ").");
    ASSERT_TRUE(program.ok()) << program.status().ToString() << " " << source;
    Engine engine(*program);
    auto rows = engine.Dump("O");
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->size(), 1u) << source;
    EXPECT_EQ((*rows)[0][0], expected) << source;
  };
  check("1 + 2 * 3", Value::Int(7));
  check("-7 % 3", Value::Int(-1));
  check("min2(4, 9)", Value::Int(4));
  check("max2(4, 9)", Value::Int(9));
  check("abs(0 - 5)", Value::Int(5));
  check("len(\"abc\")", Value::Int(3));
  check("contains(\"haystack\", \"hay\")", Value::Bool(true));
  check("substr(\"abcdef\", 2, 3)", Value::String("cde"));
  check("to_string(42)", Value::String("42"));
  check("\"a\" ++ \"b\"", Value::String("ab"));
  check("if 1 < 2 then \"y\" else \"n\"", Value::String("y"));
  check("7 > 3 and 2 != 2 or true", Value::Bool(true));
}

TEST(Eval, DivisionByZeroIsAnError) {
  auto program = Program::Parse(R"(
    input relation P(x: bigint)
    output relation O(x: bigint)
    O(10 / x) :- P(x).
  )");
  ASSERT_TRUE(program.ok());
  Engine engine(*program);
  ASSERT_TRUE(engine.Insert("P", {Value::Int(0)}).ok());
  EXPECT_FALSE(engine.Commit().ok());
}

TEST(Eval, BitArithmeticWraps) {
  auto program = Program::Parse(R"(
    input relation P(x: bit<8>)
    output relation O(x: bit<8>)
    O(x + 1) :- P(x).
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  Engine engine(*program);
  ASSERT_TRUE(engine.Insert("P", {Value::Bit(255)}).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_TRUE(engine.Contains("O", {Value::Bit(0)}));  // wraps mod 2^8
}

TEST(Eval, CastTruncates) {
  auto program = Program::Parse(R"(
    input relation P(x: bigint)
    output relation O(x: bit<4>)
    O(x as bit<4>) :- P(x).
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  Engine engine(*program);
  ASSERT_TRUE(engine.Insert("P", {Value::Int(0x1F)}).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_TRUE(engine.Contains("O", {Value::Bit(0xF)}));
}

TEST(Eval, FlatMapExpandsVectors) {
  auto program = Program::Parse(R"(
    input relation P(id: bigint, vs: Vec<bigint>)
    output relation O(id: bigint, v: bigint)
    O(id, v) :- P(id, vs), var v in vs.
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  Engine engine(*program);
  ASSERT_TRUE(engine
                  .Insert("P", {Value::Int(1),
                                Value::Tuple({Value::Int(10), Value::Int(20),
                                              Value::Int(30)})})
                  .ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_EQ(engine.Size("O"), 3u);
  EXPECT_TRUE(engine.Contains("O", {Value::Int(1), Value::Int(20)}));
  // Deleting the row retracts all expansions.
  ASSERT_TRUE(engine
                  .Delete("P", {Value::Int(1),
                                Value::Tuple({Value::Int(10), Value::Int(20),
                                              Value::Int(30)})})
                  .ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_EQ(engine.Size("O"), 0u);
}


TEST(Eval, VecBuiltins) {
  auto program = Program::Parse(R"(
    input relation P(id: bigint, vs: Vec<bigint>)
    output relation O(id: bigint, n: bigint)
    O(id, vec_len(vs)) :- P(id, vs), vec_contains(vs, 7).
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  Engine engine(*program);
  ASSERT_TRUE(engine
                  .Insert("P", {Value::Int(1),
                                Value::Tuple({Value::Int(7), Value::Int(9)})})
                  .ok());
  ASSERT_TRUE(engine
                  .Insert("P", {Value::Int(2),
                                Value::Tuple({Value::Int(5)})})
                  .ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_EQ(engine.Size("O"), 1u);
  EXPECT_TRUE(engine.Contains("O", {Value::Int(1), Value::Int(2)}));
  // Type errors caught at compile time.
  EXPECT_FALSE(Program::Parse(R"(
    input relation P(vs: Vec<bigint>)
    output relation O(b: bool)
    O(vec_contains(vs, "x")) :- P(vs).
  )").ok());
}


TEST(Eval, TupleDestructuringForMapColumns) {
  // OVSDB map columns arrive as Vec<(key, value)>; fst/snd destructure the
  // pairs after a FlatMap.
  auto program = Program::Parse(R"(
    input relation Opts(id: bigint, kv: Vec<(string, bigint)>)
    output relation O(id: bigint, k: string, v: bigint)
    O(id, fst(pair), snd(pair)) :- Opts(id, kv), var pair in kv.
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  Engine engine(*program);
  ASSERT_TRUE(
      engine
          .Insert("Opts",
                  {Value::Int(1),
                   Value::Tuple({Value::Tuple({Value::String("mtu"),
                                               Value::Int(9000)}),
                                 Value::Tuple({Value::String("cost"),
                                               Value::Int(10)})})})
          .ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_EQ(engine.Size("O"), 2u);
  EXPECT_TRUE(engine.Contains(
      "O", {Value::Int(1), Value::String("mtu"), Value::Int(9000)}));
  // fst on a non-tuple is a compile error.
  EXPECT_FALSE(Program::Parse(R"(
    input relation P(x: bigint)
    output relation O(x: bigint)
    O(fst(x)) :- P(x).
  )").ok());
}

TEST(AstPrinting, RoundTripThroughParser) {
  const char* source = R"(
    input relation E(a: bigint, b: bigint)
    output relation O(a: bigint, s: string)
    O(a, "x" ++ to_string(b)) :- E(a, b), not E(b, a), a < b.
  )";
  auto first = ParseProgram(source);
  ASSERT_TRUE(first.ok());
  auto second = ParseProgram(first->ToString());
  ASSERT_TRUE(second.ok()) << second.status().ToString()
                           << "\nprinted:\n" << first->ToString();
  EXPECT_EQ(first->ToString(), second->ToString());
}

}  // namespace
}  // namespace nerpa::dlog
