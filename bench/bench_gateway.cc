// Experiment: northbound gateway throughput and latency.
//
// Drives the HTTP front door (src/gateway) over a live OvsdbServer with
// the read-mostly mix a northbound API sees in practice — 90% table
// reads / 9% change-feed polls / 1% transacts — and measures:
//
//   * sustained req/s and the read-through cache hit ratio on that mix,
//   * cached-read p99 vs uncached-read p99 (Cache-Control: no-cache),
//   * transact p99 when the offered load is 2x the measured transact
//     capacity, with admission control shedding the excess (bounded
//     latency for admitted work instead of collapse).
//
// Emits BENCH_gateway.json.  With --baseline=FILE the bench compares its
// sustained req/s against the checked-in baseline and exits nonzero on a
// regression beyond --regress-frac (default 0.30) — the CI smoke gate.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <fstream>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "gateway/gateway.h"
#include "ovsdb/database.h"
#include "ovsdb/server.h"
#include "snvs/snvs.h"

namespace nerpa::bench {
namespace {

/// A minimal blocking HTTP/1.1 client on one keep-alive connection.
class BenchConn {
 public:
  explicit BenchConn(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      close(fd_);
      fd_ = -1;
    }
    int one = 1;
    if (fd_ >= 0) setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~BenchConn() {
    if (fd_ >= 0) close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  struct Reply {
    int status = 0;
    bool cache_hit = false;
    std::string body;
  };

  /// Sends one request and blocks for its response.
  bool RoundTrip(const std::string& method, const std::string& target,
                 const std::string& body, bool no_cache, Reply* reply) {
    std::string out = method + " " + target + " HTTP/1.1\r\nHost: b\r\n";
    if (no_cache) out += "Cache-Control: no-cache\r\n";
    if (!body.empty() || method == "POST") {
      out += StrFormat("Content-Length: %zu\r\n", body.size());
    }
    out += "\r\n" + body;
    size_t off = 0;
    while (off < out.size()) {
      ssize_t sent = send(fd_, out.data() + off, out.size() - off,
                          MSG_NOSIGNAL);
      if (sent <= 0) return false;
      off += static_cast<size_t>(sent);
    }
    return ReadReply(reply);
  }

 private:
  bool Fill() {
    char chunk[16 * 1024];
    ssize_t got = recv(fd_, chunk, sizeof(chunk), 0);
    if (got <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(got));
    return true;
  }

  bool ReadReply(Reply* reply) {
    *reply = Reply{};
    size_t head_end;
    while ((head_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      if (!Fill()) return false;
    }
    std::string head = buffer_.substr(0, head_end);
    buffer_.erase(0, head_end + 4);
    reply->status = std::atoi(head.c_str() + std::strlen("HTTP/1.1 "));
    reply->cache_hit = head.find("X-Cache: hit") != std::string::npos;
    size_t length = 0;
    size_t at = head.find("Content-Length: ");
    if (at != std::string::npos) {
      length = static_cast<size_t>(
          std::atol(head.c_str() + at + std::strlen("Content-Length: ")));
    }
    while (buffer_.size() < length) {
      if (!Fill()) return false;
    }
    reply->body = buffer_.substr(0, length);
    buffer_.erase(0, length);
    return true;
  }

  int fd_ = -1;
  std::string buffer_;
};

constexpr int kThreads = 4;
constexpr int kOverloadConns = 16;  // enough parallelism to offer 2x load
constexpr int kReadKeys = 8;        // distinct cacheable read targets

struct MixResult {
  std::vector<double> cached_read_s;
  std::vector<double> uncached_read_s;
  std::vector<double> monitor_s;
  std::vector<double> transact_s;
  uint64_t requests = 0;
  uint64_t errors = 0;
  double wall_s = 0;
};

/// The 90/9/1 read/monitor/transact mix, closed-loop across kThreads
/// keep-alive connections.
MixResult RunMix(uint16_t port, int per_thread, uint64_t seed) {
  MixResult total;
  std::vector<MixResult> parts(kThreads);
  std::vector<std::thread> threads;
  Stopwatch wall;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      MixResult& mine = parts[t];
      BenchConn conn(port);
      if (!conn.ok()) return;
      std::mt19937_64 rng(seed + static_cast<uint64_t>(t));
      for (int i = 0; i < per_thread; ++i) {
        uint64_t draw = rng() % 100;
        BenchConn::Reply reply;
        Stopwatch timer;
        bool ok;
        if (draw < 90) {
          ok = conn.RoundTrip(
              "GET",
              StrFormat("/v1/table/Port?name=bp%llu",
                        static_cast<unsigned long long>(rng() % kReadKeys)),
              "", false, &reply);
          double s = static_cast<double>(timer.ElapsedNanos()) * 1e-9;
          if (ok && reply.cache_hit) {
            mine.cached_read_s.push_back(s);
          } else if (ok) {
            mine.uncached_read_s.push_back(s);
          }
        } else if (draw < 99) {
          ok = conn.RoundTrip("GET", "/v1/changes?since=0", "", false, &reply);
          mine.monitor_s.push_back(static_cast<double>(timer.ElapsedNanos()) *
                                   1e-9);
        } else {
          ok = conn.RoundTrip(
              "POST", "/v1/transact",
              StrFormat(R"([{"op":"mutate","table":"AclRule",)"
                        R"("where":[["vlan","==",%llu]],)"
                        R"("mutations":[["mac","+=",1]]}])",
                        static_cast<unsigned long long>(rng() % 16)),
              false, &reply);
          mine.transact_s.push_back(static_cast<double>(timer.ElapsedNanos()) *
                                    1e-9);
        }
        ++mine.requests;
        if (!ok || reply.status >= 400) ++mine.errors;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  total.wall_s = static_cast<double>(wall.ElapsedNanos()) * 1e-9;
  for (MixResult& part : parts) {
    auto append = [](std::vector<double>& into, std::vector<double>& from) {
      into.insert(into.end(), from.begin(), from.end());
    };
    append(total.cached_read_s, part.cached_read_s);
    append(total.uncached_read_s, part.uncached_read_s);
    append(total.monitor_s, part.monitor_s);
    append(total.transact_s, part.transact_s);
    total.requests += part.requests;
    total.errors += part.errors;
  }
  return total;
}

/// Pure read load: `threads` connections each issuing `per_thread` GETs
/// over the kReadKeys targets.  Returns every latency.  With `no_cache`
/// each read round-trips to the backend; without, reads are answered from
/// the event loop's cache after the first touch — the same contention
/// either way, so the two p99s are comparable.
std::vector<double> RunReads(uint16_t port, int threads, int per_thread,
                             bool no_cache, uint64_t seed) {
  std::vector<std::vector<double>> parts(threads);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      BenchConn conn(port);
      if (!conn.ok()) return;
      std::mt19937_64 rng(seed + 200 + static_cast<uint64_t>(t));
      for (int i = 0; i < per_thread; ++i) {
        BenchConn::Reply reply;
        Stopwatch timer;
        if (!conn.RoundTrip(
                "GET",
                StrFormat("/v1/table/Port?name=bp%llu",
                          static_cast<unsigned long long>(rng() % kReadKeys)),
                "", no_cache, &reply)) {
          break;
        }
        parts[t].push_back(static_cast<double>(timer.ElapsedNanos()) * 1e-9);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  std::vector<double> all;
  for (auto& part : parts) all.insert(all.end(), part.begin(), part.end());
  return all;
}

/// Transacts paced open-loop at `offered_per_sec` across kOverloadConns
/// for `duration_s`; the gateway's admission control sheds the excess.
struct OverloadResult {
  std::vector<double> admitted_s;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;
  double wall_s = 0;
};

OverloadResult RunOverload(uint16_t port, double offered_per_sec,
                           double duration_s, uint64_t seed) {
  OverloadResult total;
  std::vector<OverloadResult> parts(kOverloadConns);
  std::vector<std::thread> threads;
  double interval_ns = 1e9 * kOverloadConns / offered_per_sec;
  Stopwatch wall;
  for (int t = 0; t < kOverloadConns; ++t) {
    threads.emplace_back([&, t] {
      OverloadResult& mine = parts[t];
      BenchConn conn(port);
      if (!conn.ok()) return;
      std::mt19937_64 rng(seed + 100 + static_cast<uint64_t>(t));
      int64_t start = MonotonicNanos();
      int64_t deadline = start + static_cast<int64_t>(duration_s * 1e9);
      double next = static_cast<double>(start);
      while (MonotonicNanos() < deadline) {
        next += interval_ns;
        int64_t now = MonotonicNanos();
        if (static_cast<double>(now) < next) {
          std::this_thread::sleep_for(std::chrono::nanoseconds(
              static_cast<int64_t>(next - static_cast<double>(now))));
        }
        BenchConn::Reply reply;
        Stopwatch timer;
        bool ok = conn.RoundTrip(
            "POST", "/v1/transact",
            StrFormat(R"([{"op":"mutate","table":"AclRule",)"
                      R"("where":[["vlan","==",%llu]],)"
                      R"("mutations":[["mac","+=",1]]}])",
                      static_cast<unsigned long long>(rng() % 16)),
            false, &reply);
        double s = static_cast<double>(timer.ElapsedNanos()) * 1e-9;
        if (!ok) {
          ++mine.errors;
          break;  // connection gone; stay honest rather than reconnect
        }
        if (reply.status == 200) {
          ++mine.admitted;
          mine.admitted_s.push_back(s);
        } else if (reply.status == 503) {
          ++mine.shed;
        } else {
          ++mine.errors;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  total.wall_s = static_cast<double>(wall.ElapsedNanos()) * 1e-9;
  for (OverloadResult& part : parts) {
    total.admitted_s.insert(total.admitted_s.end(), part.admitted_s.begin(),
                            part.admitted_s.end());
    total.admitted += part.admitted;
    total.shed += part.shed;
    total.errors += part.errors;
  }
  return total;
}

/// Seeds the database through the gateway: kReadKeys Port rows to read
/// and 16 AclRule rows for the transact mix to mutate.
bool SeedRows(uint16_t port) {
  BenchConn conn(port);
  if (!conn.ok()) return false;
  for (int i = 0; i < kReadKeys; ++i) {
    BenchConn::Reply reply;
    if (!conn.RoundTrip(
            "POST", "/v1/transact",
            StrFormat(R"([{"op":"insert","table":"Port","row":)"
                      R"({"name":"bp%d","port":%d,"vlan_mode":"access",)"
                      R"("tag":%d}}])",
                      i, i + 1, i),
            false, &reply) ||
        reply.status != 200) {
      return false;
    }
  }
  for (int v = 0; v < 16; ++v) {
    BenchConn::Reply reply;
    if (!conn.RoundTrip(
            "POST", "/v1/transact",
            StrFormat(R"([{"op":"insert","table":"AclRule","row":)"
                      R"({"mac":%d,"vlan":%d,"allow":true}}])",
                      1000 + v, v),
            false, &reply) ||
        reply.status != 200) {
      return false;
    }
  }
  return true;
}

int Run(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  std::string baseline_path;
  double regress_frac = 0.30;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--baseline=", 11) == 0) {
      baseline_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--regress-frac=", 15) == 0) {
      double frac = std::atof(argv[i] + 15);
      if (frac > 0) regress_frac = frac;
    }
  }

  Banner("gateway", "northbound HTTP gateway: caching + admission control");

  ovsdb::OvsdbServer server(
      std::make_unique<ovsdb::Database>(snvs::SnvsSchema()));
  if (!server.Start(0).ok()) {
    std::fprintf(stderr, "bench: backend start failed\n");
    return 1;
  }

  // --- Phase 1+2: warm mixed load, then forced-uncached reads, against a
  // gateway with admission wide open (measures raw capacity).
  gateway::Gateway::Options open_options;
  open_options.backend_port = server.port();
  open_options.workers = kThreads;
  gateway::Gateway open_gateway(open_options);
  if (!open_gateway.Start().ok() || !SeedRows(open_gateway.http_port())) {
    std::fprintf(stderr, "bench: gateway start/seed failed\n");
    return 1;
  }

  int per_thread = args.Scaled(2500);
  std::printf("mixed phase: %d threads x %d requests (90/9/1)\n", kThreads,
              per_thread);
  MixResult mix = RunMix(open_gateway.http_port(), per_thread, args.seed);
  double sustained = static_cast<double>(mix.requests) / mix.wall_s;
  uint64_t reads =
      mix.cached_read_s.size() + mix.uncached_read_s.size();
  double hit_ratio =
      reads == 0 ? 0
                 : static_cast<double>(mix.cached_read_s.size()) /
                       static_cast<double>(reads);

  // Like-for-like read latency: the same thread count and key mix, with
  // only the Cache-Control header differing, so the cached/uncached p99
  // comparison isolates the cache and not the surrounding contention.
  int cached_iters = args.Scaled(2000);
  int uncached_iters = args.Scaled(800);
  std::printf("cached phase: %d threads x %d reads\n", kThreads,
              cached_iters);
  std::vector<double> cached_s =
      RunReads(open_gateway.http_port(), kThreads, cached_iters,
               /*no_cache=*/false, args.seed);
  std::printf("uncached phase: %d threads x %d no-cache reads\n", kThreads,
              uncached_iters);
  std::vector<double> uncached_s =
      RunReads(open_gateway.http_port(), kThreads, uncached_iters,
               /*no_cache=*/true, args.seed + 1);

  // Transact capacity: closed-loop transacts for a short burst.
  double transact_capacity;
  {
    MixResult probe;
    Stopwatch timer;
    int probe_iters = args.Scaled(400);
    std::vector<std::thread> threads;
    std::atomic<uint64_t> done{0};
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        BenchConn conn(open_gateway.http_port());
        std::mt19937_64 rng(args.seed + 50 + static_cast<uint64_t>(t));
        for (int i = 0; i < probe_iters && conn.ok(); ++i) {
          BenchConn::Reply reply;
          if (!conn.RoundTrip(
                  "POST", "/v1/transact",
                  StrFormat(R"([{"op":"mutate","table":"AclRule",)"
                            R"("where":[["vlan","==",%llu]],)"
                            R"("mutations":[["mac","+=",1]]}])",
                            static_cast<unsigned long long>(rng() % 16)),
                  false, &reply)) {
            break;
          }
          done.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& thread : threads) thread.join();
    transact_capacity = static_cast<double>(done.load()) /
                        (static_cast<double>(timer.ElapsedNanos()) * 1e-9);
  }
  open_gateway.Stop();

  // --- Phase 3: 2x offered transact load against a gateway whose token
  // bucket admits about the measured capacity; excess sheds as 503.
  gateway::Gateway::Options limited_options;
  limited_options.backend_port = server.port();
  limited_options.workers = kThreads;
  limited_options.admit_rate_per_sec = transact_capacity;
  limited_options.admit_burst = transact_capacity / 10 + 1;
  limited_options.max_inflight = static_cast<size_t>(2 * kThreads);
  gateway::Gateway limited_gateway(limited_options);
  if (!limited_gateway.Start().ok()) {
    std::fprintf(stderr, "bench: limited gateway start failed\n");
    return 1;
  }
  double offered = 2.0 * transact_capacity;
  double overload_secs = args.scale < 1 ? 1.0 : 2.0;
  std::printf(
      "overload phase: offering %.0f transact/s (2x capacity %.0f) for "
      "%.0fs\n",
      offered, transact_capacity, overload_secs);
  OverloadResult overload = RunOverload(limited_gateway.http_port(), offered,
                                        overload_secs, args.seed);
  limited_gateway.Stop();
  server.Stop();

  double cached_p99 = Percentile(cached_s, 0.99);
  double uncached_p99 = Percentile(uncached_s, 0.99);
  double monitor_p99 = Percentile(mix.monitor_s, 0.99);
  double transact_p99 = Percentile(mix.transact_s, 0.99);
  double overload_p99 = Percentile(overload.admitted_s, 0.99);
  double shed_fraction =
      overload.admitted + overload.shed == 0
          ? 0
          : static_cast<double>(overload.shed) /
                static_cast<double>(overload.admitted + overload.shed);

  Table table({"metric", "value"});
  table.AddRow({"sustained req/s (mixed)", StrFormat("%.0f", sustained)});
  table.AddRow({"cache hit ratio", StrFormat("%.3f", hit_ratio)});
  table.AddRow({"cached read p99", Us(cached_p99)});
  table.AddRow({"uncached read p99", Us(uncached_p99)});
  table.AddRow({"uncached/cached p99", StrFormat("%.1fx", cached_p99 > 0
                                                    ? uncached_p99 / cached_p99
                                                    : 0)});
  table.AddRow({"changes poll p99", Us(monitor_p99)});
  table.AddRow({"transact p99 (mixed)", Us(transact_p99)});
  table.AddRow({"transact p99 @2x load", Us(overload_p99)});
  table.AddRow({"overload shed fraction", StrFormat("%.2f", shed_fraction)});
  table.Print();
  if (mix.errors > 0 || overload.errors > 0) {
    std::printf("  (errors: mixed %llu, overload %llu)\n",
                static_cast<unsigned long long>(mix.errors),
                static_cast<unsigned long long>(overload.errors));
  }

  JsonEmitter emitter("gateway", args);
  emitter.Param("threads", Json(kThreads));
  emitter.Param("overload_conns", Json(kOverloadConns));
  emitter.Param("mixed_requests_per_thread", Json(per_thread));
  emitter.Param("cached_requests_per_thread", Json(cached_iters));
  emitter.Param("uncached_requests_per_thread", Json(uncached_iters));
  emitter.Param("read_keys", Json(kReadKeys));
  emitter.Param("overload_seconds", Json(overload_secs));
  emitter.Metric("sustained_req_per_sec", Json(sustained));
  emitter.Metric("cache_hit_ratio", Json(hit_ratio));
  emitter.Metric("cached_read_p99_us", Json(cached_p99 * 1e6));
  emitter.Metric("uncached_read_p99_us", Json(uncached_p99 * 1e6));
  emitter.Metric("monitor_poll_p99_us", Json(monitor_p99 * 1e6));
  emitter.Metric("transact_p99_us", Json(transact_p99 * 1e6));
  emitter.Metric("transact_capacity_per_sec", Json(transact_capacity));
  emitter.Metric("overload_offered_per_sec", Json(offered));
  emitter.Metric("overload_transact_p99_us", Json(overload_p99 * 1e6));
  emitter.Metric("overload_shed_fraction", Json(shed_fraction));
  emitter.Metric("mixed_errors", Json(static_cast<int64_t>(mix.errors)));
  emitter.Write();

  // --- CI gate: sustained req/s against the checked-in baseline.
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "bench: cannot open baseline %s\n",
                   baseline_path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto parsed = Json::Parse(text.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "bench: baseline parse: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    const Json* metrics = parsed.value().Find("metrics");
    const Json* reference =
        metrics == nullptr ? nullptr : metrics->Find("sustained_req_per_sec");
    if (reference == nullptr || !reference->is_number()) {
      std::fprintf(stderr, "bench: baseline lacks sustained_req_per_sec\n");
      return 1;
    }
    double floor = reference->as_double() * (1.0 - regress_frac);
    std::printf("baseline gate: %.0f req/s measured vs %.0f floor "
                "(baseline %.0f, regress-frac %.2f)\n",
                sustained, floor, reference->as_double(), regress_frac);
    if (sustained < floor) {
      std::fprintf(stderr, "bench: REGRESSION: %.0f < %.0f req/s\n",
                   sustained, floor);
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace nerpa::bench

int main(int argc, char** argv) { return nerpa::bench::Run(argc, argv); }
