# Empty dependencies file for snvs_demo.
# This may be replaced when dependencies are built.
