file(REMOVE_RECURSE
  "libnerpa_baseline.a"
)
