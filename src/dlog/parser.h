// Recursive-descent parser for the Datalog dialect.
//
// Full grammar (tokens per lexer.h; `*` = repetition, `?` = optional):
//
//   program    := item*
//   item       := reldecl | rule
//   reldecl    := ("input" | "output")? "relation" IDENT "(" cols? ")"
//   cols       := col ("," col)*
//   col        := IDENT ":" type
//   type       := "bool" | "bigint" | "string" | "bit" "<" INT ">"
//               | "(" type ("," type)* ")" | "Vec" "<" type ">"
//   rule       := atom (":-" body)? "."
//   body       := elem ("," elem)*
//   elem       := "not" atom
//               | "var" IDENT "=" aggtail
//               | atom            (when lookahead is IDENT "(")
//               | expr            (condition)
//   aggtail    := AGGNAME "(" expr ")" "group_by" "(" IDENT ("," IDENT)* ")"
//               | expr
//   atom       := IDENT "(" expr ("," expr)* ")"
//   expr       := or-expr, C-like precedence; "if c then a else b";
//                 tuples "(a, b)"; calls IDENT "(" args ")"; wildcard "_"
#ifndef NERPA_DLOG_PARSER_H_
#define NERPA_DLOG_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "dlog/ast.h"

namespace nerpa::dlog {

/// Parses a program.  Performs syntax checks only — name resolution and
/// type checking happen in Compile() (program.h).
Result<ProgramAst> ParseProgram(std::string_view source);

/// Parses a single expression (for tests and REPL-style tools).
Result<ExprPtr> ParseExpr(std::string_view source);

}  // namespace nerpa::dlog

#endif  // NERPA_DLOG_PARSER_H_
