# Empty compiler generated dependencies file for nerpa_ofp.
# This may be replaced when dependencies are built.
