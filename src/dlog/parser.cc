#include "dlog/parser.h"

#include "common/strings.h"
#include "dlog/lexer.h"

namespace nerpa::dlog {

namespace {

bool IsKeyword(const std::string& word) {
  static const char* kKeywords[] = {
      "input", "output", "relation", "not", "var", "if", "then", "else",
      "true", "false", "and", "or", "group_by", "bool", "bigint", "string",
      "bit", "Vec", "in", "as"};
  for (const char* k : kKeywords) {
    if (word == k) return true;
  }
  return false;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ProgramAst> ParseProgram() {
    ProgramAst program;
    while (!Peek().Is(TokKind::kEof)) {
      if (Peek().IsIdent("input") || Peek().IsIdent("output") ||
          Peek().IsIdent("relation")) {
        NERPA_ASSIGN_OR_RETURN(RelationDecl decl, ParseRelationDecl());
        if (program.FindRelation(decl.name) != nullptr) {
          return Error("duplicate relation '" + decl.name + "'");
        }
        program.relations.push_back(std::move(decl));
      } else {
        NERPA_ASSIGN_OR_RETURN(Rule rule, ParseRule());
        program.rules.push_back(std::move(rule));
      }
    }
    return program;
  }

  Result<ExprPtr> ParseSingleExpr() {
    NERPA_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
    if (!Peek().Is(TokKind::kEof)) return Error("trailing tokens after expression");
    return expr;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t index = pos_ + ahead;
    if (index >= tokens_.size()) index = tokens_.size() - 1;  // EOF
    return tokens_[index];
  }
  const Token& Next() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  Status Error(const std::string& message) const {
    return ParseError(StrFormat("line %d:%d: %s", Peek().line, Peek().col,
                                message.c_str()));
  }

  /// Stamps `expr` with the span of `token` unless a sub-parse already set
  /// one (spans are mutable annotations, like var_slot).
  static ExprPtr Spanned(ExprPtr expr, const Token& token) {
    if (expr->line == 0) {
      expr->line = token.line;
      expr->col = token.col;
    }
    return expr;
  }

  bool ConsumePunct(std::string_view p) {
    if (Peek().IsPunct(p)) {
      Next();
      return true;
    }
    return false;
  }

  bool ConsumeIdent(std::string_view id) {
    if (Peek().IsIdent(id)) {
      Next();
      return true;
    }
    return false;
  }

  Status ExpectPunct(std::string_view p) {
    if (!ConsumePunct(p)) {
      return Error(StrFormat("expected '%.*s', got '%s'",
                             static_cast<int>(p.size()), p.data(),
                             Peek().text.c_str()));
    }
    return Status::Ok();
  }

  Result<std::string> ExpectName() {
    if (!Peek().Is(TokKind::kIdent) || IsKeyword(Peek().text)) {
      return Error("expected an identifier, got '" + Peek().text + "'");
    }
    return Next().text;
  }

  // --- Types ---

  Result<Type> ParseType() {
    if (ConsumeIdent("bool")) return Type::Bool();
    if (ConsumeIdent("bigint")) return Type::Int();
    if (ConsumeIdent("string")) return Type::String();
    if (ConsumeIdent("bit")) {
      NERPA_RETURN_IF_ERROR(ExpectPunct("<"));
      if (!Peek().Is(TokKind::kInt)) return Error("expected bit width");
      int width = static_cast<int>(Next().int_value);
      if (width < 1 || width > 64) {
        return Error(StrFormat("bit width %d out of range [1, 64]", width));
      }
      NERPA_RETURN_IF_ERROR(ExpectPunct(">"));
      return Type::Bit(width);
    }
    if (ConsumeIdent("Vec")) {
      NERPA_RETURN_IF_ERROR(ExpectPunct("<"));
      NERPA_ASSIGN_OR_RETURN(Type elem, ParseType());
      NERPA_RETURN_IF_ERROR(ExpectPunct(">"));
      return Type::Vec(std::move(elem));
    }
    if (ConsumePunct("(")) {
      std::vector<Type> elems;
      if (!ConsumePunct(")")) {
        do {
          NERPA_ASSIGN_OR_RETURN(Type elem, ParseType());
          elems.push_back(std::move(elem));
        } while (ConsumePunct(","));
        NERPA_RETURN_IF_ERROR(ExpectPunct(")"));
      }
      return Type::Tuple(std::move(elems));
    }
    return Error("expected a type, got '" + Peek().text + "'");
  }

  // --- Declarations ---

  Result<RelationDecl> ParseRelationDecl() {
    RelationDecl decl;
    if (ConsumeIdent("input")) {
      decl.role = RelationRole::kInput;
    } else if (ConsumeIdent("output")) {
      decl.role = RelationRole::kOutput;
    }
    if (!ConsumeIdent("relation")) return Error("expected 'relation'");
    decl.line = Peek().line;
    decl.col = Peek().col;
    NERPA_ASSIGN_OR_RETURN(decl.name, ExpectName());
    NERPA_RETURN_IF_ERROR(ExpectPunct("("));
    if (!ConsumePunct(")")) {
      do {
        Column column;
        column.line = Peek().line;
        column.col = Peek().col;
        NERPA_ASSIGN_OR_RETURN(column.name, ExpectName());
        NERPA_RETURN_IF_ERROR(ExpectPunct(":"));
        NERPA_ASSIGN_OR_RETURN(column.type, ParseType());
        for (const Column& existing : decl.columns) {
          if (existing.name == column.name) {
            return Error("duplicate column '" + column.name + "'");
          }
        }
        decl.columns.push_back(std::move(column));
      } while (ConsumePunct(","));
      NERPA_RETURN_IF_ERROR(ExpectPunct(")"));
    }
    return decl;
  }

  // --- Rules ---

  Result<Rule> ParseRule() {
    Rule rule;
    rule.line = Peek().line;
    rule.col = Peek().col;
    NERPA_ASSIGN_OR_RETURN(rule.head, ParseAtom());
    if (ConsumePunct(":-")) {
      do {
        NERPA_ASSIGN_OR_RETURN(BodyElem elem, ParseBodyElem());
        rule.body.push_back(std::move(elem));
      } while (ConsumePunct(","));
    }
    NERPA_RETURN_IF_ERROR(ExpectPunct("."));
    return rule;
  }

  Result<Atom> ParseAtom() {
    Atom atom;
    atom.line = Peek().line;
    atom.col = Peek().col;
    NERPA_ASSIGN_OR_RETURN(atom.relation, ExpectName());
    NERPA_RETURN_IF_ERROR(ExpectPunct("("));
    if (!ConsumePunct(")")) {
      do {
        NERPA_ASSIGN_OR_RETURN(ExprPtr term, ParseExpr());
        atom.terms.push_back(std::move(term));
      } while (ConsumePunct(","));
      NERPA_RETURN_IF_ERROR(ExpectPunct(")"));
    }
    return atom;
  }

  Result<BodyElem> ParseBodyElem() {
    BodyElem elem;
    elem.line = Peek().line;
    elem.col = Peek().col;
    if (ConsumeIdent("not")) {
      elem.kind = BodyElem::Kind::kLiteral;
      elem.negated = true;
      NERPA_ASSIGN_OR_RETURN(elem.atom, ParseAtom());
      return elem;
    }
    if (ConsumeIdent("var")) {
      NERPA_ASSIGN_OR_RETURN(elem.var, ExpectName());
      // FlatMap form: `var x in expr`.
      if (ConsumeIdent("in")) {
        elem.kind = BodyElem::Kind::kFlatMap;
        NERPA_ASSIGN_OR_RETURN(elem.expr, ParseExpr());
        return elem;
      }
      NERPA_RETURN_IF_ERROR(ExpectPunct("="));
      // Aggregate form: AGG "(" expr ")" "group_by" "(" vars ")".
      if (Peek().Is(TokKind::kIdent) && Peek(1).IsPunct("(") &&
          AggFuncFromName(Peek().text).ok()) {
        // Look ahead for group_by after the closing paren to distinguish a
        // plain call named like an aggregate, e.g. var x = count(y) + 1.
        size_t save = pos_;
        AggFunc func = AggFuncFromName(Next().text).value();
        Next();  // "("
        Result<ExprPtr> arg = ParseExpr();
        if (arg.ok() && ConsumePunct(")") && ConsumeIdent("group_by")) {
          elem.kind = BodyElem::Kind::kAggregate;
          elem.agg_func = func;
          elem.expr = std::move(arg).value();
          NERPA_RETURN_IF_ERROR(ExpectPunct("("));
          do {
            NERPA_ASSIGN_OR_RETURN(std::string v, ExpectName());
            elem.group_by.push_back(std::move(v));
          } while (ConsumePunct(","));
          NERPA_RETURN_IF_ERROR(ExpectPunct(")"));
          return elem;
        }
        pos_ = save;  // not an aggregate; reparse as expression
      }
      elem.kind = BodyElem::Kind::kAssignment;
      NERPA_ASSIGN_OR_RETURN(elem.expr, ParseExpr());
      return elem;
    }
    // Positive literal iff "Name(" where Name is not a builtin call —
    // resolved later; here the heuristic is: identifier starting uppercase
    // followed by "(" is an atom (relations are capitalized by convention
    // and the compiler enforces it).
    if (Peek().Is(TokKind::kIdent) && !IsKeyword(Peek().text) &&
        !Peek().text.empty() && std::isupper(static_cast<unsigned char>(
            Peek().text[0])) && Peek(1).IsPunct("(")) {
      elem.kind = BodyElem::Kind::kLiteral;
      NERPA_ASSIGN_OR_RETURN(elem.atom, ParseAtom());
      return elem;
    }
    elem.kind = BodyElem::Kind::kCondition;
    NERPA_ASSIGN_OR_RETURN(elem.condition, ParseExpr());
    return elem;
  }

  // --- Expressions (precedence climbing) ---

  Result<ExprPtr> ParseExpr() { return ParseIf(); }

  Result<ExprPtr> ParseIf() {
    const Token& start = Peek();
    if (ConsumeIdent("if")) {
      NERPA_ASSIGN_OR_RETURN(ExprPtr c, ParseExpr());
      if (!ConsumeIdent("then")) return Error("expected 'then'");
      NERPA_ASSIGN_OR_RETURN(ExprPtr t, ParseExpr());
      if (!ConsumeIdent("else")) return Error("expected 'else'");
      NERPA_ASSIGN_OR_RETURN(ExprPtr f, ParseExpr());
      return Spanned(Expr::MakeCond(std::move(c), std::move(t), std::move(f)),
                     start);
    }
    return ParseOr();
  }

  Result<ExprPtr> ParseOr() {
    const Token& start = Peek();
    NERPA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (ConsumeIdent("or")) {
      NERPA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Spanned(Expr::MakeBinary(BinOp::kOr, std::move(lhs), std::move(rhs)), start);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    const Token& start = Peek();
    NERPA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (ConsumeIdent("and")) {
      NERPA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Spanned(Expr::MakeBinary(BinOp::kAnd, std::move(lhs), std::move(rhs)), start);
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    const Token& start = Peek();
    if (ConsumeIdent("not")) {
      NERPA_ASSIGN_OR_RETURN(ExprPtr arg, ParseNot());
      return Spanned(Expr::MakeUnary(UnOp::kNot, std::move(arg)), start);
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    const Token& start = Peek();
    NERPA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseBitOr());
    struct { const char* text; BinOp op; } kOps[] = {
        {"==", BinOp::kEq}, {"!=", BinOp::kNe}, {"<=", BinOp::kLe},
        {">=", BinOp::kGe}, {"<", BinOp::kLt}, {">", BinOp::kGt}};
    for (const auto& candidate : kOps) {
      if (Peek().IsPunct(candidate.text)) {
        Next();
        NERPA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseBitOr());
        return Spanned(
            Expr::MakeBinary(candidate.op, std::move(lhs), std::move(rhs)),
            start);
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseBitOr() {
    const Token& start = Peek();
    NERPA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseBitXor());
    while (Peek().IsPunct("|")) {
      Next();
      NERPA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseBitXor());
      lhs = Spanned(
          Expr::MakeBinary(BinOp::kBitOr, std::move(lhs), std::move(rhs)), start);
    }
    return lhs;
  }

  Result<ExprPtr> ParseBitXor() {
    const Token& start = Peek();
    NERPA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseBitAnd());
    while (Peek().IsPunct("^")) {
      Next();
      NERPA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseBitAnd());
      lhs = Spanned(
          Expr::MakeBinary(BinOp::kBitXor, std::move(lhs), std::move(rhs)), start);
    }
    return lhs;
  }

  Result<ExprPtr> ParseBitAnd() {
    const Token& start = Peek();
    NERPA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseShift());
    while (Peek().IsPunct("&")) {
      Next();
      NERPA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseShift());
      lhs = Spanned(
          Expr::MakeBinary(BinOp::kBitAnd, std::move(lhs), std::move(rhs)), start);
    }
    return lhs;
  }

  Result<ExprPtr> ParseShift() {
    const Token& start = Peek();
    NERPA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    while (Peek().IsPunct("<<") || Peek().IsPunct(">>")) {
      BinOp op = Peek().IsPunct("<<") ? BinOp::kShl : BinOp::kShr;
      Next();
      NERPA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      lhs = Spanned(
          Expr::MakeBinary(op, std::move(lhs), std::move(rhs)), start);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    const Token& start = Peek();
    NERPA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (Peek().IsPunct("+") || Peek().IsPunct("-") ||
           Peek().IsPunct("++")) {
      BinOp op = Peek().IsPunct("+") ? BinOp::kAdd
                 : Peek().IsPunct("-") ? BinOp::kSub : BinOp::kConcat;
      Next();
      NERPA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Spanned(
          Expr::MakeBinary(op, std::move(lhs), std::move(rhs)), start);
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    const Token& start = Peek();
    NERPA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseCast());
    while (Peek().IsPunct("*") || Peek().IsPunct("/") || Peek().IsPunct("%")) {
      BinOp op = Peek().IsPunct("*") ? BinOp::kMul
                 : Peek().IsPunct("/") ? BinOp::kDiv : BinOp::kMod;
      Next();
      NERPA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseCast());
      lhs = Spanned(
          Expr::MakeBinary(op, std::move(lhs), std::move(rhs)), start);
    }
    return lhs;
  }

  Result<ExprPtr> ParseCast() {
    const Token& start = Peek();
    NERPA_ASSIGN_OR_RETURN(ExprPtr expr, ParseUnary());
    while (ConsumeIdent("as")) {
      NERPA_ASSIGN_OR_RETURN(Type target, ParseType());
      expr = Spanned(Expr::MakeCast(std::move(expr), std::move(target)), start);
    }
    return expr;
  }

  Result<ExprPtr> ParseUnary() {
    const Token& start = Peek();
    if (ConsumePunct("-")) {
      NERPA_ASSIGN_OR_RETURN(ExprPtr arg, ParseUnary());
      return Spanned(Expr::MakeUnary(UnOp::kNeg, std::move(arg)), start);
    }
    if (ConsumePunct("~")) {
      NERPA_ASSIGN_OR_RETURN(ExprPtr arg, ParseUnary());
      return Spanned(Expr::MakeUnary(UnOp::kBitNot, std::move(arg)), start);
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& token = Peek();
    if (token.Is(TokKind::kInt)) {
      Next();
      return Spanned(Expr::MakeLit(Value::Int(token.int_value)), token);
    }
    if (token.Is(TokKind::kString)) {
      Next();
      return Spanned(Expr::MakeLit(Value::String(token.text)), token);
    }
    if (token.IsIdent("true")) {
      Next();
      return Spanned(Expr::MakeLit(Value::Bool(true)), token);
    }
    if (token.IsIdent("false")) {
      Next();
      return Spanned(Expr::MakeLit(Value::Bool(false)), token);
    }
    if (token.IsPunct("_")) {  // lexer emits "_" as an identifier, see below
      Next();
      return Spanned(Expr::MakeWildcard(), token);
    }
    if (token.Is(TokKind::kIdent)) {
      if (token.text == "_") {
        Next();
        return Spanned(Expr::MakeWildcard(), token);
      }
      if (IsKeyword(token.text) && token.text != "if") {
        return Error("unexpected keyword '" + token.text + "' in expression");
      }
      if (token.text == "if") return ParseIf();
      std::string name = Next().text;
      if (ConsumePunct("(")) {
        std::vector<ExprPtr> args;
        if (!ConsumePunct(")")) {
          do {
            NERPA_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            args.push_back(std::move(arg));
          } while (ConsumePunct(","));
          NERPA_RETURN_IF_ERROR(ExpectPunct(")"));
        }
        return Spanned(Expr::MakeCall(std::move(name), std::move(args)),
                       token);
      }
      return Spanned(Expr::MakeVar(std::move(name)), token);
    }
    if (ConsumePunct("(")) {
      NERPA_ASSIGN_OR_RETURN(ExprPtr first, ParseExpr());
      if (ConsumePunct(")")) return first;
      std::vector<ExprPtr> elems;
      elems.push_back(std::move(first));
      while (ConsumePunct(",")) {
        NERPA_ASSIGN_OR_RETURN(ExprPtr elem, ParseExpr());
        elems.push_back(std::move(elem));
      }
      NERPA_RETURN_IF_ERROR(ExpectPunct(")"));
      return Spanned(Expr::MakeTuple(std::move(elems)), token);
    }
    return Error("expected an expression, got '" + token.text + "'");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ProgramAst> ParseProgram(std::string_view source) {
  NERPA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens)).ParseProgram();
}

Result<ExprPtr> ParseExpr(std::string_view source) {
  NERPA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens)).ParseSingleExpr();
}

}  // namespace nerpa::dlog
