// NW1xx: control-plane lints over the parsed (not necessarily compiled)
// program.
//
//   NW101 error    head variable not bound by the body
//   NW102 warning  relation is never read by any rule body
//   NW103 warning  duplicate rule
//   NW104 error    negation/aggregation inside a recursive cycle
//                  (stratification violation), reported at the literal
//   NW105 warning  variable bound once and never used (likely a typo)
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/passes.h"
#include "common/strings.h"

namespace nerpa::analyze {

namespace {

using dlog::BodyElem;
using dlog::Expr;
using dlog::ExprPtr;
using dlog::ProgramAst;
using dlog::RelationDecl;
using dlog::Rule;

/// Collects every variable occurrence in an expression tree.
void CollectVars(const ExprPtr& expr,
                 std::vector<const Expr*>& occurrences) {
  if (expr == nullptr) return;
  if (expr->kind == Expr::Kind::kVar) occurrences.push_back(expr.get());
  for (const ExprPtr& arg : expr->args) CollectVars(arg, occurrences);
}

/// A variable's binding site in a rule body, for NW101/NW105.
struct Binding {
  int line = 0;
  int col = 0;
};

/// Variables bound by the body: positive-literal terms, assignments,
/// flatmaps, and aggregate results.
std::map<std::string, Binding> BodyBindings(const Rule& rule) {
  std::map<std::string, Binding> bound;
  auto bind = [&](const std::string& name, int line, int col) {
    bound.emplace(name, Binding{line, col});
  };
  for (const BodyElem& elem : rule.body) {
    switch (elem.kind) {
      case BodyElem::Kind::kLiteral:
        if (elem.negated) break;  // negated atoms only test, never bind
        for (const ExprPtr& term : elem.atom.terms) {
          if (term->kind == Expr::Kind::kVar) {
            bind(term->name, term->line, term->col);
          }
        }
        break;
      case BodyElem::Kind::kAssignment:
      case BodyElem::Kind::kFlatMap:
      case BodyElem::Kind::kAggregate:
        bind(elem.var, elem.line, elem.col);
        break;
      case BodyElem::Kind::kCondition:
        break;
    }
  }
  return bound;
}

/// Every variable *use* in the rule (head terms, conditions, assignment and
/// aggregate expressions, negated-atom terms, group_by names), i.e. each
/// occurrence that consumes a binding.
std::map<std::string, int> UseCounts(const Rule& rule) {
  std::map<std::string, int> uses;
  std::vector<const Expr*> occurrences;
  for (const ExprPtr& term : rule.head.terms) CollectVars(term, occurrences);
  for (const BodyElem& elem : rule.body) {
    switch (elem.kind) {
      case BodyElem::Kind::kLiteral:
        // Positive-literal var terms are bindings on first occurrence; the
        // repeated-variable join case counts as a use below via the map.
        for (const ExprPtr& term : elem.atom.terms) {
          if (term->kind != Expr::Kind::kVar) CollectVars(term, occurrences);
          else if (elem.negated) occurrences.push_back(term.get());
        }
        break;
      case BodyElem::Kind::kCondition:
        CollectVars(elem.condition, occurrences);
        break;
      case BodyElem::Kind::kAssignment:
      case BodyElem::Kind::kFlatMap:
        CollectVars(elem.expr, occurrences);
        break;
      case BodyElem::Kind::kAggregate:
        CollectVars(elem.expr, occurrences);
        for (const std::string& name : elem.group_by) ++uses[name];
        break;
    }
  }
  for (const Expr* occurrence : occurrences) ++uses[occurrence->name];
  // A variable appearing in two positive-literal positions is a join: the
  // second occurrence uses the first.  Count positive occurrences and credit
  // n-1 uses.
  std::map<std::string, int> positive;
  for (const BodyElem& elem : rule.body) {
    if (elem.kind != BodyElem::Kind::kLiteral || elem.negated) continue;
    for (const ExprPtr& term : elem.atom.terms) {
      if (term->kind == Expr::Kind::kVar) ++positive[term->name];
    }
  }
  for (const auto& [name, count] : positive) {
    if (count > 1) uses[name] += count - 1;
  }
  return uses;
}

void CheckHeadVars(PassContext& context, const Rule& rule) {
  std::map<std::string, Binding> bound = BodyBindings(rule);
  std::set<std::string> reported;
  std::vector<const Expr*> occurrences;
  for (const ExprPtr& term : rule.head.terms) CollectVars(term, occurrences);
  for (const Expr* var : occurrences) {
    if (bound.count(var->name) != 0 || !reported.insert(var->name).second) {
      continue;
    }
    Emit(context, "NW101", Severity::kError, "dlog",
         StrFormat("head variable '%s' is not bound by the rule body",
                   var->name.c_str()),
         "dlog", var->line, var->col);
  }
}

void CheckSingletons(PassContext& context, const Rule& rule) {
  std::map<std::string, Binding> bound = BodyBindings(rule);
  std::map<std::string, int> uses = UseCounts(rule);
  for (const auto& [name, binding] : bound) {
    if (name.empty() || name[0] == '_') continue;  // deliberate don't-care
    if (uses[name] > 0) continue;
    Emit(context, "NW105", Severity::kWarning, "dlog",
         StrFormat("variable '%s' is bound but never used (use '_' for a "
                   "don't-care)",
                   name.c_str()),
         "dlog", binding.line, binding.col);
  }
}

void CheckUnusedRelations(PassContext& context) {
  std::set<std::string> read;
  for (const Rule& rule : context.ast->rules) {
    for (const BodyElem& elem : rule.body) {
      if (elem.kind == BodyElem::Kind::kLiteral) {
        read.insert(elem.atom.relation);
      }
    }
  }
  for (const RelationDecl& decl : context.ast->relations) {
    if (decl.role == dlog::RelationRole::kOutput) continue;
    if (read.count(decl.name) != 0) continue;
    // Digest-backed inputs get the more specific NW206.
    if (context.bindings != nullptr &&
        context.bindings->FindDigest(decl.name) != nullptr) {
      continue;
    }
    Emit(context, "NW102", Severity::kWarning, "dlog",
         StrFormat("%s relation '%s' is never read by any rule",
                   dlog::RelationRoleName(decl.role), decl.name.c_str()),
         "dlog", decl.line, decl.col);
  }
}

void CheckDuplicateRules(PassContext& context) {
  std::map<std::string, const Rule*> seen;
  for (const Rule& rule : context.ast->rules) {
    auto [it, inserted] = seen.emplace(rule.ToString(), &rule);
    if (inserted) continue;
    Emit(context, "NW103", Severity::kWarning, "dlog",
         StrFormat("duplicate rule (first defined at line %d:%d)",
                   it->second->line, it->second->col),
         "dlog", rule.line, rule.col);
  }
}

/// AST-level stratification: SCCs of the relation dependency graph; a
/// negated literal or any literal feeding an aggregate rule must not be in
/// the same SCC as the rule head.  Unlike the compiler's check this reports
/// at the offending literal and keeps going.
class Stratifier {
 public:
  explicit Stratifier(const ProgramAst& ast) : ast_(ast) {
    for (size_t i = 0; i < ast.relations.size(); ++i) {
      index_of_[ast.relations[i].name] = static_cast<int>(i);
    }
    edges_.resize(ast.relations.size());
    for (const Rule& rule : ast.rules) {
      int head = Find(rule.head.relation);
      if (head < 0) continue;
      for (const BodyElem& elem : rule.body) {
        if (elem.kind != BodyElem::Kind::kLiteral) continue;
        int body = Find(elem.atom.relation);
        if (body >= 0) edges_[static_cast<size_t>(body)].push_back(head);
      }
    }
    scc_of_.assign(ast.relations.size(), -1);
    index_.assign(ast.relations.size(), -1);
    low_.assign(ast.relations.size(), 0);
    on_stack_.assign(ast.relations.size(), false);
    for (size_t v = 0; v < edges_.size(); ++v) {
      if (index_[v] < 0) Visit(static_cast<int>(v));
    }
  }

  int Find(const std::string& name) const {
    auto it = index_of_.find(name);
    return it == index_of_.end() ? -1 : it->second;
  }

  bool SameScc(int a, int b) const {
    return a >= 0 && b >= 0 &&
           scc_of_[static_cast<size_t>(a)] == scc_of_[static_cast<size_t>(b)];
  }

 private:
  void Visit(int v) {
    size_t sv = static_cast<size_t>(v);
    index_[sv] = low_[sv] = counter_++;
    stack_.push_back(v);
    on_stack_[sv] = true;
    for (int w : edges_[sv]) {
      size_t sw = static_cast<size_t>(w);
      if (index_[sw] < 0) {
        Visit(w);
        low_[sv] = std::min(low_[sv], low_[sw]);
      } else if (on_stack_[sw]) {
        low_[sv] = std::min(low_[sv], index_[sw]);
      }
    }
    if (low_[sv] == index_[sv]) {
      while (true) {
        int w = stack_.back();
        stack_.pop_back();
        on_stack_[static_cast<size_t>(w)] = false;
        scc_of_[static_cast<size_t>(w)] = scc_count_;
        if (w == v) break;
      }
      ++scc_count_;
    }
  }

  const ProgramAst& ast_;
  std::map<std::string, int> index_of_;
  std::vector<std::vector<int>> edges_;
  std::vector<int> scc_of_, index_, low_, stack_;
  std::vector<bool> on_stack_;
  int counter_ = 0;
  int scc_count_ = 0;
};

void CheckStratification(PassContext& context) {
  Stratifier stratifier(*context.ast);
  for (const Rule& rule : context.ast->rules) {
    int head = stratifier.Find(rule.head.relation);
    for (const BodyElem& elem : rule.body) {
      if (elem.kind != BodyElem::Kind::kLiteral) continue;
      bool strict = elem.negated;
      for (const BodyElem& other : rule.body) {
        if (other.kind == BodyElem::Kind::kAggregate) strict = true;
      }
      if (!strict) continue;
      int body = stratifier.Find(elem.atom.relation);
      if (!stratifier.SameScc(body, head)) continue;
      Emit(context, "NW104", Severity::kError, "dlog",
           StrFormat("'%s' is derived from '%s' through %s inside a "
                     "recursive cycle; the program is not stratifiable",
                     rule.head.relation.c_str(), elem.atom.relation.c_str(),
                     elem.negated ? "negation" : "aggregation"),
           "dlog", elem.line, elem.col);
    }
  }
}

}  // namespace

void RunDlogLints(PassContext& context) {
  for (const Rule& rule : context.ast->rules) {
    CheckHeadVars(context, rule);
    CheckSingletons(context, rule);
  }
  CheckUnusedRelations(context);
  CheckDuplicateRules(context);
  CheckStratification(context);
}

}  // namespace nerpa::analyze
