// Tokenizer for the Datalog dialect surface syntax.
#ifndef NERPA_DLOG_LEXER_H_
#define NERPA_DLOG_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace nerpa::dlog {

enum class TokKind {
  kIdent,     // identifiers and keywords (parser distinguishes)
  kInt,       // integer literal
  kString,    // string literal (unescaped text)
  kPunct,     // operators and punctuation, text holds the spelling
  kEof,
};

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;
  int64_t int_value = 0;
  int line = 0;
  int col = 0;  // 1-based column of the token's first character

  bool Is(TokKind k) const { return kind == k; }
  bool IsPunct(std::string_view p) const {
    return kind == TokKind::kPunct && text == p;
  }
  bool IsIdent(std::string_view id) const {
    return kind == TokKind::kIdent && text == id;
  }
};

/// Tokenizes the whole source.  Comments: `//` to end of line and
/// `/* ... */`.  Multi-char operators: `:-` `==` `!=` `<=` `>=` `<<` `>>`
/// `++` `=>`.
Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace nerpa::dlog

#endif  // NERPA_DLOG_LEXER_H_
