# Empty compiler generated dependencies file for test_p4_text.
# This may be replaced when dependencies are built.
