file(REMOVE_RECURSE
  "CMakeFiles/test_p4.dir/test_p4.cc.o"
  "CMakeFiles/test_p4.dir/test_p4.cc.o.d"
  "test_p4"
  "test_p4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_p4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
