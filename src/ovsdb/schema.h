// OVSDB database schemas (RFC 7047 §3.2): typed columns with constraints,
// set/map cardinality, enumerations, and inter-table references.
//
// Nerpa's binding generator (src/nerpa/bindings.h) turns each table schema
// into a control-plane input relation declaration, which is what makes the
// management plane part of the type-checked full stack.
#ifndef NERPA_OVSDB_SCHEMA_H_
#define NERPA_OVSDB_SCHEMA_H_

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "ovsdb/atom.h"

namespace nerpa::ovsdb {

/// An atomic type plus its value constraints.
struct BaseType {
  AtomicType type = AtomicType::kString;

  // Constraints (RFC 7047 <base-type>):
  std::optional<int64_t> min_integer;
  std::optional<int64_t> max_integer;
  std::optional<double> min_real;
  std::optional<double> max_real;
  std::vector<Atom> enum_values;  // empty = unconstrained
  std::string ref_table;          // for kUuid: the referenced table
  bool ref_weak = false;          // weak refs may dangle; strong must resolve

  static BaseType Integer(std::optional<int64_t> min = std::nullopt,
                          std::optional<int64_t> max = std::nullopt);
  static BaseType Real();
  static BaseType Boolean();
  static BaseType String();
  static BaseType StringEnum(std::vector<std::string> values);
  static BaseType Ref(std::string table, bool weak = false);

  /// Checks an atom against type and constraints.
  Status CheckAtom(const Atom& atom) const;

  Json ToJson() const;
  static Result<BaseType> FromJson(const Json& json);
};

constexpr unsigned kUnlimited = std::numeric_limits<unsigned>::max();

/// A column's full type: scalar (min=max=1), optional (min=0,max=1),
/// set (max>1), or map (value present).
struct ColumnType {
  BaseType key;
  std::optional<BaseType> value;  // present => map
  unsigned min = 1;
  unsigned max = 1;

  bool is_map() const { return value.has_value(); }
  bool is_scalar() const { return !is_map() && min == 1 && max == 1; }
  bool is_optional_scalar() const { return !is_map() && min == 0 && max == 1; }

  static ColumnType Scalar(BaseType base);
  static ColumnType Optional(BaseType base);
  static ColumnType Set(BaseType base, unsigned min = 0,
                        unsigned max = kUnlimited);
  static ColumnType Map(BaseType key, BaseType value, unsigned min = 0,
                        unsigned max = kUnlimited);

  Json ToJson() const;
  static Result<ColumnType> FromJson(const Json& json);
};

struct ColumnSchema {
  std::string name;
  ColumnType type;
  bool ephemeral = false;  // not durable; still monitored
  bool mutable_ = true;    // false => write-once at insert
};

struct TableSchema {
  std::string name;
  std::vector<ColumnSchema> columns;  // declaration order is kept for output
  std::vector<std::vector<std::string>> indexes;  // unique-key column sets
  bool is_root = true;  // non-root rows are garbage-collected when unreferenced
  unsigned max_rows = kUnlimited;

  const ColumnSchema* FindColumn(std::string_view name) const;
};

struct DatabaseSchema {
  std::string name;
  std::string version = "1.0.0";
  std::map<std::string, TableSchema> tables;

  const TableSchema* FindTable(std::string_view name) const;

  /// Validates internal consistency (refTables exist, index columns exist).
  Status Validate() const;

  Json ToJson() const;
  static Result<DatabaseSchema> FromJson(const Json& json);
  static Result<DatabaseSchema> FromJsonText(std::string_view text);
};

}  // namespace nerpa::ovsdb

#endif  // NERPA_OVSDB_SCHEMA_H_
