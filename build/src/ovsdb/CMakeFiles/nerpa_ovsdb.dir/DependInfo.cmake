
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ovsdb/atom.cc" "src/ovsdb/CMakeFiles/nerpa_ovsdb.dir/atom.cc.o" "gcc" "src/ovsdb/CMakeFiles/nerpa_ovsdb.dir/atom.cc.o.d"
  "/root/repo/src/ovsdb/client.cc" "src/ovsdb/CMakeFiles/nerpa_ovsdb.dir/client.cc.o" "gcc" "src/ovsdb/CMakeFiles/nerpa_ovsdb.dir/client.cc.o.d"
  "/root/repo/src/ovsdb/database.cc" "src/ovsdb/CMakeFiles/nerpa_ovsdb.dir/database.cc.o" "gcc" "src/ovsdb/CMakeFiles/nerpa_ovsdb.dir/database.cc.o.d"
  "/root/repo/src/ovsdb/datum.cc" "src/ovsdb/CMakeFiles/nerpa_ovsdb.dir/datum.cc.o" "gcc" "src/ovsdb/CMakeFiles/nerpa_ovsdb.dir/datum.cc.o.d"
  "/root/repo/src/ovsdb/jsonrpc.cc" "src/ovsdb/CMakeFiles/nerpa_ovsdb.dir/jsonrpc.cc.o" "gcc" "src/ovsdb/CMakeFiles/nerpa_ovsdb.dir/jsonrpc.cc.o.d"
  "/root/repo/src/ovsdb/schema.cc" "src/ovsdb/CMakeFiles/nerpa_ovsdb.dir/schema.cc.o" "gcc" "src/ovsdb/CMakeFiles/nerpa_ovsdb.dir/schema.cc.o.d"
  "/root/repo/src/ovsdb/server.cc" "src/ovsdb/CMakeFiles/nerpa_ovsdb.dir/server.cc.o" "gcc" "src/ovsdb/CMakeFiles/nerpa_ovsdb.dir/server.cc.o.d"
  "/root/repo/src/ovsdb/uuid.cc" "src/ovsdb/CMakeFiles/nerpa_ovsdb.dir/uuid.cc.o" "gcc" "src/ovsdb/CMakeFiles/nerpa_ovsdb.dir/uuid.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nerpa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
