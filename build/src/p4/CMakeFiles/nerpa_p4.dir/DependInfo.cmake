
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/p4/entry.cc" "src/p4/CMakeFiles/nerpa_p4.dir/entry.cc.o" "gcc" "src/p4/CMakeFiles/nerpa_p4.dir/entry.cc.o.d"
  "/root/repo/src/p4/interpreter.cc" "src/p4/CMakeFiles/nerpa_p4.dir/interpreter.cc.o" "gcc" "src/p4/CMakeFiles/nerpa_p4.dir/interpreter.cc.o.d"
  "/root/repo/src/p4/ir.cc" "src/p4/CMakeFiles/nerpa_p4.dir/ir.cc.o" "gcc" "src/p4/CMakeFiles/nerpa_p4.dir/ir.cc.o.d"
  "/root/repo/src/p4/runtime.cc" "src/p4/CMakeFiles/nerpa_p4.dir/runtime.cc.o" "gcc" "src/p4/CMakeFiles/nerpa_p4.dir/runtime.cc.o.d"
  "/root/repo/src/p4/text.cc" "src/p4/CMakeFiles/nerpa_p4.dir/text.cc.o" "gcc" "src/p4/CMakeFiles/nerpa_p4.dir/text.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nerpa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nerpa_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dlog/CMakeFiles/nerpa_dlog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
