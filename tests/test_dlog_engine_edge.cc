// Edge-case and failure-injection tests for the incremental engine:
// behaviours that the main suite's happy paths do not reach — empty-key
// negation, facts inside recursive strata, aggregation over recursion,
// deep negation chains, cascading strata, self-joins, duplicate-variable
// patterns, and engine misuse errors.
#include <gtest/gtest.h>

#include <random>

#include "dlog/engine.h"
#include "dlog/program.h"

namespace nerpa::dlog {
namespace {

std::shared_ptr<const Program> MustParse(std::string_view source) {
  auto program = Program::Parse(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return program.value();
}

Row R(std::initializer_list<Value> values) { return Row(values); }
Value I(int64_t v) { return Value::Int(v); }
Value S(const char* v) { return Value::String(v); }

TEST(DlogEdge, EmptyKeyNegation) {
  // `not Q(_)` tests whole-relation emptiness and must flip both ways.
  auto program = MustParse(R"(
    input relation P(x: bigint)
    input relation Q(x: bigint)
    output relation O(x: bigint)
    O(x) :- P(x), not Q(_).
  )");
  Engine engine(program);
  ASSERT_TRUE(engine.Insert("P", R({I(1)})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_EQ(engine.Size("O"), 1u);

  ASSERT_TRUE(engine.Insert("Q", R({I(9)})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_EQ(engine.Size("O"), 0u);

  // A second Q row then removing one keeps O empty (Q still non-empty).
  ASSERT_TRUE(engine.Insert("Q", R({I(8)})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  ASSERT_TRUE(engine.Delete("Q", R({I(9)})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_EQ(engine.Size("O"), 0u);

  ASSERT_TRUE(engine.Delete("Q", R({I(8)})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_EQ(engine.Size("O"), 1u);
}

TEST(DlogEdge, FactSeedsRecursiveStratum) {
  auto program = MustParse(R"(
    input relation Edge(a: bigint, b: bigint)
    output relation Reach(a: bigint)
    Reach(0).
    Reach(b) :- Reach(a), Edge(a, b).
  )");
  Engine engine(program);
  EXPECT_TRUE(engine.Contains("Reach", R({I(0)})));
  ASSERT_TRUE(engine.Insert("Edge", R({I(0), I(1)})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_TRUE(engine.Contains("Reach", R({I(1)})));
  // The fact itself can never be deleted by edge changes.
  ASSERT_TRUE(engine.Delete("Edge", R({I(0), I(1)})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_TRUE(engine.Contains("Reach", R({I(0)})));
  EXPECT_FALSE(engine.Contains("Reach", R({I(1)})));
}

TEST(DlogEdge, AggregationOverRecursion) {
  // Count reachable nodes per source — aggregation stratified above a
  // recursive stratum.
  auto program = MustParse(R"(
    input relation Edge(a: bigint, b: bigint)
    input relation Src(s: bigint)
    relation Reach(s: bigint, n: bigint)
    output relation ReachCount(s: bigint, c: bigint)
    Reach(s, s) :- Src(s).
    Reach(s, b) :- Reach(s, a), Edge(a, b).
    ReachCount(s, c) :- Reach(s, n), var c = count(n) group_by (s).
  )");
  Engine engine(program);
  ASSERT_TRUE(engine.Insert("Src", R({I(0)})).ok());
  ASSERT_TRUE(engine.Insert("Edge", R({I(0), I(1)})).ok());
  ASSERT_TRUE(engine.Insert("Edge", R({I(1), I(2)})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_TRUE(engine.Contains("ReachCount", R({I(0), I(3)})));

  ASSERT_TRUE(engine.Delete("Edge", R({I(1), I(2)})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_TRUE(engine.Contains("ReachCount", R({I(0), I(2)})));
  EXPECT_FALSE(engine.Contains("ReachCount", R({I(0), I(3)})));
}

TEST(DlogEdge, DoubleNegationChain) {
  // O = P minus (Q minus R): three strata of antijoins.
  auto program = MustParse(R"(
    input relation P(x: bigint)
    input relation Q(x: bigint)
    input relation Rr(x: bigint)
    relation QminusR(x: bigint)
    output relation O(x: bigint)
    QminusR(x) :- Q(x), not Rr(x).
    O(x) :- P(x), not QminusR(x).
  )");
  Engine engine(program);
  ASSERT_TRUE(engine.Insert("P", R({I(1)})).ok());
  ASSERT_TRUE(engine.Insert("Q", R({I(1)})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_EQ(engine.Size("O"), 0u);  // 1 in Q, not in R => blocked

  // Adding 1 to R unblocks it through the double negation.
  ASSERT_TRUE(engine.Insert("Rr", R({I(1)})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_EQ(engine.Size("O"), 1u);

  ASSERT_TRUE(engine.Delete("Rr", R({I(1)})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_EQ(engine.Size("O"), 0u);
}

TEST(DlogEdge, SelfJoin) {
  // Two-hop paths within one relation (the same relation twice in a body).
  auto program = MustParse(R"(
    input relation E(a: bigint, b: bigint)
    output relation TwoHop(a: bigint, c: bigint)
    TwoHop(a, c) :- E(a, b), E(b, c).
  )");
  Engine engine(program);
  ASSERT_TRUE(engine.Insert("E", R({I(1), I(2)})).ok());
  ASSERT_TRUE(engine.Insert("E", R({I(2), I(3)})).ok());
  ASSERT_TRUE(engine.Insert("E", R({I(2), I(2)})).ok());  // self loop
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_TRUE(engine.Contains("TwoHop", R({I(1), I(3)})));
  EXPECT_TRUE(engine.Contains("TwoHop", R({I(1), I(2)})));
  EXPECT_TRUE(engine.Contains("TwoHop", R({I(2), I(2)})));
  EXPECT_TRUE(engine.Contains("TwoHop", R({I(2), I(3)})));
  // Deleting the loop removes exactly the loop-dependent pairs.
  ASSERT_TRUE(engine.Delete("E", R({I(2), I(2)})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_FALSE(engine.Contains("TwoHop", R({I(2), I(2)})));
  EXPECT_FALSE(engine.Contains("TwoHop", R({I(1), I(2)})));
  EXPECT_TRUE(engine.Contains("TwoHop", R({I(1), I(3)})));
}

TEST(DlogEdge, RepeatedVariablePattern) {
  // E(x, x) matches only diagonal rows.
  auto program = MustParse(R"(
    input relation E(a: bigint, b: bigint)
    output relation Diag(a: bigint)
    Diag(x) :- E(x, x).
  )");
  Engine engine(program);
  ASSERT_TRUE(engine.Insert("E", R({I(1), I(1)})).ok());
  ASSERT_TRUE(engine.Insert("E", R({I(1), I(2)})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_EQ(engine.Size("Diag"), 1u);
  EXPECT_TRUE(engine.Contains("Diag", R({I(1)})));
}

TEST(DlogEdge, CascadeAcrossManyStrata) {
  // A 6-deep chain: one input insert must ripple all the way down.
  auto program = MustParse(R"(
    input relation A(x: bigint)
    relation B(x: bigint)
    relation C(x: bigint)
    relation D(x: bigint)
    relation E(x: bigint)
    output relation F(x: bigint)
    B(x + 1) :- A(x).
    C(x + 1) :- B(x).
    D(x + 1) :- C(x).
    E(x + 1) :- D(x).
    F(x + 1) :- E(x).
  )");
  Engine engine(program);
  ASSERT_TRUE(engine.Insert("A", R({I(0)})).ok());
  auto delta = engine.Commit();
  ASSERT_TRUE(delta.ok());
  ASSERT_EQ(delta->outputs["F"].size(), 1u);
  EXPECT_EQ(delta->outputs["F"][0].first, R({I(5)}));
  ASSERT_TRUE(engine.Delete("A", R({I(0)})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_EQ(engine.Size("F"), 0u);
}

TEST(DlogEdge, ApiMisuseErrors) {
  auto program = MustParse(R"(
    input relation P(x: bigint)
    output relation O(x: bigint)
    O(x) :- P(x).
  )");
  Engine engine(program);
  // Unknown relation.
  EXPECT_FALSE(engine.Insert("Nope", R({I(1)})).ok());
  // Writing a derived relation.
  EXPECT_FALSE(engine.Insert("O", R({I(1)})).ok());
  // Arity mismatch.
  EXPECT_FALSE(engine.Insert("P", R({I(1), I(2)})).ok());
  // Type mismatch.
  EXPECT_FALSE(engine.Insert("P", R({S("x")})).ok());
  // Dump of unknown relation.
  EXPECT_FALSE(engine.Dump("Nope").ok());
}

TEST(DlogEdge, DuplicateInsertAndDeleteOfAbsentAreIdempotent) {
  auto program = MustParse(R"(
    input relation P(x: bigint)
    output relation O(x: bigint)
    O(x) :- P(x).
  )");
  Engine engine(program);
  ASSERT_TRUE(engine.Insert("P", R({I(1)})).ok());
  ASSERT_TRUE(engine.Insert("P", R({I(1)})).ok());  // dup in one txn
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_EQ(engine.Size("O"), 1u);
  ASSERT_TRUE(engine.Insert("P", R({I(1)})).ok());  // dup across txns
  auto delta = engine.Commit();
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->empty());
  ASSERT_TRUE(engine.Delete("P", R({I(7)})).ok());  // absent row
  delta = engine.Commit();
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->empty());
}

TEST(DlogEdge, AblationEngineMatchesDefault) {
  // The scan-join engine must compute identical results.
  auto program = MustParse(R"(
    input relation E(a: bigint, b: bigint)
    input relation F(b: bigint, c: bigint)
    output relation J(a: bigint, c: bigint)
    output relation Agg(a: bigint, n: bigint)
    J(a, c) :- E(a, b), F(b, c).
    Agg(a, n) :- E(a, b), var n = count(b) group_by (a).
  )");
  EngineOptions scan_options;
  scan_options.use_arrangements = false;
  Engine indexed(program);
  Engine scanning(program, scan_options);
  std::mt19937_64 rng(99);
  std::set<std::pair<int64_t, int64_t>> e_rows, f_rows;
  for (int step = 0; step < 40; ++step) {
    int64_t a = static_cast<int64_t>(rng() % 5);
    int64_t b = static_cast<int64_t>(rng() % 5);
    bool do_f = rng() % 2 == 0;
    auto& target = do_f ? f_rows : e_rows;
    const char* relation = do_f ? "F" : "E";
    Row row{I(a), I(b)};
    if (target.count({a, b}) != 0 && rng() % 2 == 0) {
      ASSERT_TRUE(indexed.Delete(relation, row).ok());
      ASSERT_TRUE(scanning.Delete(relation, row).ok());
      target.erase({a, b});
    } else {
      ASSERT_TRUE(indexed.Insert(relation, row).ok());
      ASSERT_TRUE(scanning.Insert(relation, row).ok());
      target.insert({a, b});
    }
    ASSERT_TRUE(indexed.Commit().ok());
    ASSERT_TRUE(scanning.Commit().ok());
    for (const char* out : {"J", "Agg"}) {
      EXPECT_EQ(*indexed.Dump(out), *scanning.Dump(out)) << "step " << step;
    }
  }
  // And the ablation engine really carries no index entries.
  EXPECT_EQ(scanning.GetStats().arrangement_entries, 0u);
  EXPECT_GT(indexed.GetStats().arrangement_entries, 0u);
}

TEST(DlogEdge, LargeTransactionThenTeardown) {
  // A coarse memory-behaviour check: state returns to empty after full
  // teardown (no leaked tuples/arrangement entries).
  auto program = MustParse(R"(
    input relation E(a: bigint, b: bigint)
    output relation J(a: bigint, b: bigint)
    J(a, b) :- E(a, b), a < b.
  )");
  Engine engine(program);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(engine.Insert("E", R({I(i % 25), I(i)})).ok());
  }
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_GT(engine.GetStats().tuples, 0u);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(engine.Delete("E", R({I(i % 25), I(i)})).ok());
  }
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_EQ(engine.GetStats().tuples, 0u);
  EXPECT_EQ(engine.GetStats().arrangement_entries, 0u);
}

TEST(DlogEdge, HopCountedShortestPathUpdates) {
  // Affine recursive heads: distances update on topology changes.
  auto program = MustParse(R"(
    input relation Edge(a: bigint, b: bigint)
    output relation Dist(n: bigint, h: bigint)
    Dist(0, 0).
    Dist(b, h + 1) :- Dist(a, h), Edge(a, b), h < 10.
  )");
  Engine engine(program);
  ASSERT_TRUE(engine.Insert("Edge", R({I(0), I(1)})).ok());
  ASSERT_TRUE(engine.Insert("Edge", R({I(1), I(2)})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  // Dist holds ALL hop counts <= bound; the min is the shortest path.
  EXPECT_TRUE(engine.Contains("Dist", R({I(2), I(2)})));
  // Add a shortcut 0 -> 2: distance 1 appears (2 remains; set semantics).
  ASSERT_TRUE(engine.Insert("Edge", R({I(0), I(2)})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_TRUE(engine.Contains("Dist", R({I(2), I(1)})));
  // Remove the shortcut: the 1-hop distance retracts.
  ASSERT_TRUE(engine.Delete("Edge", R({I(0), I(2)})).ok());
  ASSERT_TRUE(engine.Commit().ok());
  EXPECT_FALSE(engine.Contains("Dist", R({I(2), I(1)})));
  EXPECT_TRUE(engine.Contains("Dist", R({I(2), I(2)})));
}

}  // namespace
}  // namespace nerpa::dlog
