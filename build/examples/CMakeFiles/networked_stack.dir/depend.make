# Empty dependencies file for networked_stack.
# This may be replaced when dependencies are built.
