file(REMOVE_RECURSE
  "CMakeFiles/bench_lb_coldstart.dir/bench_lb_coldstart.cc.o"
  "CMakeFiles/bench_lb_coldstart.dir/bench_lb_coldstart.cc.o.d"
  "bench_lb_coldstart"
  "bench_lb_coldstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lb_coldstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
