#include "ha/io.h"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace nerpa::ha {

namespace {

class FileAppender : public Appender {
 public:
  explicit FileAppender(const std::string& path) : path_(path) {
    out_.open(path, std::ios::app | std::ios::binary);
  }

  bool ok() const { return static_cast<bool>(out_); }

  Status Append(std::string_view data) override {
    out_.write(data.data(), static_cast<std::streamsize>(data.size()));
    out_.flush();
    if (!out_) return Internal("cannot append to '" + path_ + "'");
    return Status::Ok();
  }

 private:
  std::string path_;
  std::ofstream out_;
};

}  // namespace

Result<std::string> Io::ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFound("cannot read '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

Status Io::WriteFileAtomic(const std::string& path,
                           std::string_view contents) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) return Internal("cannot write tmp '" + tmp + "'");
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) return Internal("short write to tmp '" + tmp + "'");
  }
  return Rename(tmp, path);
}

Result<std::unique_ptr<Appender>> Io::OpenAppend(const std::string& path) {
  auto appender = std::make_unique<FileAppender>(path);
  if (!appender->ok()) return Internal("cannot open '" + path + "' to append");
  return std::unique_ptr<Appender>(std::move(appender));
}

Status Io::Truncate(const std::string& path) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) return Internal("cannot truncate '" + path + "'");
  return Status::Ok();
}

Status Io::TruncateTo(const std::string& path, uint64_t size) {
  std::error_code ec;
  std::filesystem::resize_file(path, size, ec);
  if (ec) {
    return Internal("cannot truncate '" + path + "' to " +
                    std::to_string(size) + " bytes: " + ec.message());
  }
  return Status::Ok();
}

Status Io::Rename(const std::string& from, const std::string& to) {
  std::error_code ec;
  std::filesystem::rename(from, to, ec);
  if (ec) {
    return Internal("cannot rename '" + from + "' to '" + to +
                    "': " + ec.message());
  }
  return Status::Ok();
}

bool Io::Exists(const std::string& path) {
  return std::filesystem::exists(path);
}

Status Io::Remove(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (ec) {
    return Internal("cannot remove '" + path + "': " + ec.message());
  }
  return Status::Ok();
}

Io& DefaultIo() {
  static Io io;
  return io;
}

}  // namespace nerpa::ha
