// A1 — ablation of the engine's central data-structure decision
// (DESIGN.md): per-join arrangements (hash indexes) maintained
// incrementally vs. scan-and-filter joins.
//
// The arrangements are what make incremental joins O(|delta| * matches)
// instead of O(|delta| * |relation|) — and they are also the memory that
// E5's load-balancer worst case charges against the engine.  This bench
// quantifies both sides of the trade on a join whose inner relation grows:
// per-change latency with arrangements on vs. off, plus the index entries
// carried.
#include "bench/bench_util.h"
#include "dlog/engine.h"

namespace nerpa {
namespace {

using bench::Banner;
using bench::Table;
using dlog::Engine;
using dlog::EngineOptions;
using dlog::Row;
using dlog::Value;

constexpr const char* kProgram = R"(
input relation E(a: bigint, b: bigint)
input relation F(b: bigint, c: bigint)
output relation J(a: bigint, c: bigint)
J(a, c) :- E(a, b), F(b, c).
)";

/// Mean per-transaction time for 100 single-row E inserts against a
/// preloaded F of `f_rows` rows.
Result<std::pair<double, size_t>> MeasureVariant(bool use_arrangements,
                                                 int f_rows) {
  NERPA_ASSIGN_OR_RETURN(auto program, dlog::Program::Parse(kProgram));
  EngineOptions options;
  options.use_arrangements = use_arrangements;
  Engine engine(program, options);
  // 1:1 join keys: each change matches exactly one row, so any growth in
  // per-change cost is pure lookup cost.
  for (int i = 0; i < f_rows; ++i) {
    NERPA_RETURN_IF_ERROR(
        engine.Insert("F", Row{Value::Int(i), Value::Int(i)}));
  }
  NERPA_RETURN_IF_ERROR(engine.Commit().status());
  Stopwatch watch;
  for (int i = 0; i < 100; ++i) {
    NERPA_RETURN_IF_ERROR(
        engine.Insert("E", Row{Value::Int(i), Value::Int(i * 37 % f_rows)}));
    NERPA_RETURN_IF_ERROR(engine.Commit().status());
  }
  double mean = watch.ElapsedSeconds() / 100;
  return std::make_pair(mean, engine.GetStats().arrangement_entries);
}

int Run() {
  Banner("A1 / ablation",
         "arrangements (join indexes) on vs off: latency and memory");
  Table table({"F rows", "indexed /chg", "scan /chg", "slowdown",
               "index entries"});
  for (int f_rows : {1000, 4000, 16000, 64000}) {
    auto indexed = MeasureVariant(true, f_rows);
    auto scan = MeasureVariant(false, f_rows);
    if (!indexed.ok() || !scan.ok()) {
      std::fprintf(stderr, "ablation failed\n");
      return 1;
    }
    table.AddRow({std::to_string(f_rows), bench::Us(indexed->first),
                  bench::Us(scan->first),
                  StrFormat("%.0fx", scan->first / indexed->first),
                  std::to_string(indexed->second)});
  }
  table.Print();
  std::printf(
      "\nreading: without arrangements, a single-row change scans the whole\n"
      "inner relation (cost grows with it); with arrangements the change\n"
      "costs O(matches), paying one index entry per row per join key — the\n"
      "memory overhead the paper's load-balancer worst case (E5) reports.\n");
  return 0;
}

}  // namespace
}  // namespace nerpa

int main() { return nerpa::Run(); }
