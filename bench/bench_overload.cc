// Experiment: full-stack overload behaviour of the northbound gateway.
//
// Offers an open-loop mixed workload (health probes / cacheable reads /
// uncached reads / transacts — the gateway's four priority classes) at
// 1x, 2x, 4x, and 8x the measured closed-loop capacity, every request
// carrying a propagated X-Nerpa-Deadline-Ms budget, and measures the
// per-priority goodput/latency curves.  A robust overload-control layer
// must show:
//
//   * goodput that *plateaus* instead of collapsing: served req/s at 4x
//     offered load stays within a fraction of the 1x plateau (classic
//     congestion-collapse detector);
//   * bounded high-priority latency: health probes are never shed and
//     their p99 must stay flat no matter how hard the pool saturates;
//   * deadline honesty: zero requests *served* (200) more than one grace
//     interval past their propagated deadline — work the client already
//     abandoned must be dropped (504), not burned.
//
// Emits BENCH_overload.json.  With --baseline=FILE the bench gates all
// three properties against the checked-in thresholds and exits nonzero
// on a violation — the CI overload gate.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <fstream>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "gateway/gateway.h"
#include "ovsdb/database.h"
#include "ovsdb/server.h"
#include "snvs/snvs.h"

namespace nerpa::bench {
namespace {

constexpr int kConns = 16;          // open-loop client connections
constexpr int kWorkers = 4;         // gateway worker pool
constexpr int kReadKeys = 8;        // distinct cacheable read targets
constexpr int kDeadlineMs = 250;    // propagated per-request budget
constexpr int kGraceMs = 250;       // allowed service slack past it
const double kMultipliers[] = {1.0, 2.0, 4.0, 8.0};

/// A minimal blocking HTTP/1.1 client on one keep-alive connection.
class BenchConn {
 public:
  explicit BenchConn(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      close(fd_);
      fd_ = -1;
    }
    int one = 1;
    if (fd_ >= 0) setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~BenchConn() {
    if (fd_ >= 0) close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  struct Reply {
    int status = 0;
  };

  bool RoundTrip(const std::string& method, const std::string& target,
                 const std::string& body, const std::string& extra_headers,
                 Reply* reply) {
    std::string out = method + " " + target + " HTTP/1.1\r\nHost: b\r\n";
    out += extra_headers;
    if (!body.empty() || method == "POST") {
      out += StrFormat("Content-Length: %zu\r\n", body.size());
    }
    out += "\r\n" + body;
    size_t off = 0;
    while (off < out.size()) {
      ssize_t sent =
          send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
      if (sent <= 0) return false;
      off += static_cast<size_t>(sent);
    }
    return ReadReply(reply);
  }

 private:
  bool Fill() {
    char chunk[16 * 1024];
    ssize_t got = recv(fd_, chunk, sizeof(chunk), 0);
    if (got <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(got));
    return true;
  }

  bool ReadReply(Reply* reply) {
    *reply = Reply{};
    size_t head_end;
    while ((head_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      if (!Fill()) return false;
    }
    std::string head = buffer_.substr(0, head_end);
    buffer_.erase(0, head_end + 4);
    reply->status = std::atoi(head.c_str() + std::strlen("HTTP/1.1 "));
    size_t length = 0;
    size_t at = head.find("Content-Length: ");
    if (at != std::string::npos) {
      length = static_cast<size_t>(
          std::atol(head.c_str() + at + std::strlen("Content-Length: ")));
    }
    while (buffer_.size() < length) {
      if (!Fill()) return false;
    }
    buffer_.erase(0, length);
    return true;
  }

  int fd_ = -1;
  std::string buffer_;
};

/// One priority class's tallies at one offered-load point.
struct ClassResult {
  uint64_t attempted = 0;
  uint64_t served = 0;      // 200
  uint64_t shed = 0;        // 503
  uint64_t expired = 0;     // 504 (deadline honoured by dropping)
  uint64_t errors = 0;
  std::vector<double> served_s;  // latency of the 200s only
  /// 200s that landed more than deadline+grace after the request left —
  /// work the gateway should have dropped as already-abandoned.
  uint64_t late_served = 0;

  void Fold(const ClassResult& other) {
    attempted += other.attempted;
    served += other.served;
    shed += other.shed;
    expired += other.expired;
    errors += other.errors;
    late_served += other.late_served;
    served_s.insert(served_s.end(), other.served_s.begin(),
                    other.served_s.end());
  }
};

enum Class { kHealth = 0, kCached = 1, kRead = 2, kTransact = 3 };
constexpr const char* kClassNames[] = {"health", "cached", "read", "transact"};
constexpr size_t kClasses = 4;

struct LoadResult {
  ClassResult per_class[kClasses];
  double wall_s = 0;
  double Goodput() const {
    // Backend-bound goodput (health answers locally and would pad it).
    uint64_t served = per_class[kCached].served + per_class[kRead].served +
                      per_class[kTransact].served;
    return wall_s > 0 ? static_cast<double>(served) / wall_s : 0;
  }
  uint64_t LateServed() const {
    uint64_t late = 0;
    for (const ClassResult& c : per_class) late += c.late_served;
    return late;
  }
};

/// Open-loop mixed load: kConns connections pace requests at
/// `offered_per_sec` total; the class mix is 4% health / 38% cacheable
/// reads / 38% uncached reads / 20% transacts.  Every backend-bound
/// request carries the propagated deadline header.
LoadResult RunLoad(uint16_t port, double offered_per_sec, double duration_s,
                   uint64_t seed) {
  LoadResult total;
  std::vector<LoadResult> parts(kConns);
  std::vector<std::thread> threads;
  double interval_ns = 1e9 * kConns / offered_per_sec;
  const std::string deadline_header =
      StrFormat("X-Nerpa-Deadline-Ms: %d\r\n", kDeadlineMs);
  const int64_t late_bound_nanos =
      int64_t{kDeadlineMs + kGraceMs} * 1'000'000;
  Stopwatch wall;
  for (int t = 0; t < kConns; ++t) {
    threads.emplace_back([&, t] {
      LoadResult& mine = parts[t];
      BenchConn conn(port);
      if (!conn.ok()) return;
      std::mt19937_64 rng(seed + 1000 + static_cast<uint64_t>(t));
      int64_t start = MonotonicNanos();
      int64_t until = start + static_cast<int64_t>(duration_s * 1e9);
      double next = static_cast<double>(start);
      while (MonotonicNanos() < until) {
        next += interval_ns;
        int64_t now = MonotonicNanos();
        if (static_cast<double>(now) < next) {
          std::this_thread::sleep_for(std::chrono::nanoseconds(
              static_cast<int64_t>(next - static_cast<double>(now))));
        }
        uint64_t draw = rng() % 100;
        Class cls;
        std::string method = "GET", target, body, headers = deadline_header;
        if (draw < 4) {
          cls = kHealth;
          target = "/healthz";
          headers.clear();  // probes carry no budget — they must always run
        } else if (draw < 42) {
          cls = kCached;
          target = StrFormat("/v1/table/Port?name=bp%llu",
                             static_cast<unsigned long long>(rng() %
                                                             kReadKeys));
        } else if (draw < 80) {
          cls = kRead;
          target = StrFormat("/v1/table/Port?name=bp%llu",
                             static_cast<unsigned long long>(rng() %
                                                             kReadKeys));
          headers += "Cache-Control: no-cache\r\n";
        } else {
          cls = kTransact;
          method = "POST";
          target = "/v1/transact";
          body = StrFormat(R"([{"op":"mutate","table":"AclRule",)"
                           R"("where":[["vlan","==",%llu]],)"
                           R"("mutations":[["mac","+=",1]]}])",
                           static_cast<unsigned long long>(rng() % 16));
        }
        ClassResult& tally = mine.per_class[cls];
        ++tally.attempted;
        BenchConn::Reply reply;
        Stopwatch timer;
        if (!conn.RoundTrip(method, target, body, headers, &reply)) {
          ++tally.errors;
          break;  // connection gone; stay honest rather than reconnect
        }
        int64_t elapsed = timer.ElapsedNanos();
        if (reply.status == 200) {
          ++tally.served;
          tally.served_s.push_back(static_cast<double>(elapsed) * 1e-9);
          if (cls != kHealth && elapsed > late_bound_nanos) {
            ++tally.late_served;
          }
        } else if (reply.status == 503) {
          ++tally.shed;
        } else if (reply.status == 504) {
          ++tally.expired;
        } else {
          ++tally.errors;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  total.wall_s = static_cast<double>(wall.ElapsedNanos()) * 1e-9;
  for (LoadResult& part : parts) {
    for (size_t c = 0; c < kClasses; ++c) {
      total.per_class[c].Fold(part.per_class[c]);
    }
  }
  return total;
}

/// Seeds kReadKeys Port rows and 16 AclRule rows through the gateway.
bool SeedRows(uint16_t port) {
  BenchConn conn(port);
  if (!conn.ok()) return false;
  for (int i = 0; i < kReadKeys; ++i) {
    BenchConn::Reply reply;
    if (!conn.RoundTrip(
            "POST", "/v1/transact",
            StrFormat(R"([{"op":"insert","table":"Port","row":)"
                      R"({"name":"bp%d","port":%d,"vlan_mode":"access",)"
                      R"("tag":%d}}])",
                      i, i + 1, i),
            "", &reply) ||
        reply.status != 200) {
      return false;
    }
  }
  for (int v = 0; v < 16; ++v) {
    BenchConn::Reply reply;
    if (!conn.RoundTrip(
            "POST", "/v1/transact",
            StrFormat(R"([{"op":"insert","table":"AclRule","row":)"
                      R"({"mac":%d,"vlan":%d,"allow":true}}])",
                      2000 + v, v),
            "", &reply) ||
        reply.status != 200) {
      return false;
    }
  }
  return true;
}

/// Closed-loop mixed probe of raw capacity (same mix, no pacing).
double MeasureCapacity(uint16_t port, int per_thread, uint64_t seed) {
  std::atomic<uint64_t> done{0};
  std::vector<std::thread> threads;
  Stopwatch timer;
  for (int t = 0; t < kWorkers; ++t) {
    threads.emplace_back([&, t] {
      BenchConn conn(port);
      if (!conn.ok()) return;
      std::mt19937_64 rng(seed + static_cast<uint64_t>(t));
      for (int i = 0; i < per_thread; ++i) {
        uint64_t draw = rng() % 100;
        BenchConn::Reply reply;
        bool ok;
        if (draw < 80) {
          ok = conn.RoundTrip(
              "GET",
              StrFormat("/v1/table/Port?name=bp%llu",
                        static_cast<unsigned long long>(rng() % kReadKeys)),
              "", "Cache-Control: no-cache\r\n", &reply);
        } else {
          ok = conn.RoundTrip(
              "POST", "/v1/transact",
              StrFormat(R"([{"op":"mutate","table":"AclRule",)"
                        R"("where":[["vlan","==",%llu]],)"
                        R"("mutations":[["mac","+=",1]]}])",
                        static_cast<unsigned long long>(rng() % 16)),
              "", &reply);
        }
        if (!ok) break;
        done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  return static_cast<double>(done.load()) /
         (static_cast<double>(timer.ElapsedNanos()) * 1e-9);
}

int Run(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--baseline=", 11) == 0) {
      baseline_path = argv[i] + 11;
    }
  }

  Banner("overload",
         "open-loop 1x-8x load: goodput plateau, priority latency, "
         "deadline honesty");

  ovsdb::OvsdbServer server(
      std::make_unique<ovsdb::Database>(snvs::SnvsSchema()));
  if (!server.Start(0).ok()) {
    std::fprintf(stderr, "bench: backend start failed\n");
    return 1;
  }

  // Measure raw capacity with admission wide open.
  double capacity;
  {
    gateway::Gateway::Options open_options;
    open_options.backend_port = server.port();
    open_options.workers = kWorkers;
    gateway::Gateway open_gateway(open_options);
    if (!open_gateway.Start().ok() || !SeedRows(open_gateway.http_port())) {
      std::fprintf(stderr, "bench: gateway start/seed failed\n");
      return 1;
    }
    capacity = MeasureCapacity(open_gateway.http_port(), args.Scaled(1500),
                               args.seed);
    open_gateway.Stop();
  }
  std::printf("closed-loop capacity: %.0f req/s\n", capacity);

  // The gateway under test: token bucket sized to capacity, adaptive
  // concurrency limit live, deadlines propagated.
  gateway::Gateway::Options options;
  options.backend_port = server.port();
  options.workers = kWorkers;
  options.admit_rate_per_sec = capacity;
  options.admit_burst = capacity / 10 + 1;
  options.max_inflight = static_cast<size_t>(4 * kWorkers);
  gateway::Gateway gateway(options);
  if (!gateway.Start().ok()) {
    std::fprintf(stderr, "bench: limited gateway start failed\n");
    return 1;
  }

  double duration_s = args.scale < 1 ? 1.0 : 2.0;
  std::vector<LoadResult> curve;
  for (double multiplier : kMultipliers) {
    double offered = multiplier * capacity;
    std::printf("offering %.0fx capacity (%.0f req/s) for %.0fs...\n",
                multiplier, offered, duration_s);
    curve.push_back(RunLoad(gateway.http_port(), offered, duration_s,
                            args.seed + static_cast<uint64_t>(multiplier)));
  }
  gateway.Stop();
  server.Stop();

  Table table({"offered", "goodput/s", "health p99", "read p99",
               "transact p99", "shed", "504", "late-200"});
  uint64_t late_total = 0;
  for (size_t i = 0; i < curve.size(); ++i) {
    const LoadResult& r = curve[i];
    uint64_t shed = 0, expired = 0;
    for (const ClassResult& c : r.per_class) {
      shed += c.shed;
      expired += c.expired;
    }
    late_total += r.LateServed();
    table.AddRow(
        {StrFormat("%.0fx", kMultipliers[i]),
         StrFormat("%.0f", r.Goodput()),
         Us(Percentile(r.per_class[kHealth].served_s, 0.99)),
         Us(Percentile(r.per_class[kRead].served_s, 0.99)),
         Us(Percentile(r.per_class[kTransact].served_s, 0.99)),
         StrFormat("%llu", static_cast<unsigned long long>(shed)),
         StrFormat("%llu", static_cast<unsigned long long>(expired)),
         StrFormat("%llu",
                   static_cast<unsigned long long>(r.LateServed()))});
  }
  table.Print();

  double goodput_1x = curve[0].Goodput();
  double goodput_4x = curve[2].Goodput();
  double goodput_4x_frac = goodput_1x > 0 ? goodput_4x / goodput_1x : 0;
  double health_p99_8x = Percentile(curve[3].per_class[kHealth].served_s,
                                    0.99);

  JsonEmitter emitter("overload", args);
  emitter.Param("conns", Json(kConns));
  emitter.Param("workers", Json(kWorkers));
  emitter.Param("deadline_ms", Json(kDeadlineMs));
  emitter.Param("grace_ms", Json(kGraceMs));
  emitter.Param("duration_s", Json(duration_s));
  emitter.Metric("capacity_req_per_sec", Json(capacity));
  for (size_t i = 0; i < curve.size(); ++i) {
    std::string prefix = StrFormat("x%.0f_", kMultipliers[i]);
    const LoadResult& r = curve[i];
    emitter.Metric(prefix + "goodput_per_sec", Json(r.Goodput()));
    for (size_t c = 0; c < kClasses; ++c) {
      emitter.Metric(
          prefix + kClassNames[c] + "_p99_us",
          Json(Percentile(r.per_class[c].served_s, 0.99) * 1e6));
      emitter.Metric(prefix + kClassNames[c] + "_served",
                     Json(static_cast<int64_t>(r.per_class[c].served)));
      emitter.Metric(prefix + kClassNames[c] + "_shed",
                     Json(static_cast<int64_t>(r.per_class[c].shed)));
    }
  }
  emitter.Metric("goodput_4x_frac", Json(goodput_4x_frac));
  emitter.Metric("health_p99_8x_us", Json(health_p99_8x * 1e6));
  emitter.Metric("late_served", Json(static_cast<int64_t>(late_total)));
  emitter.Write();

  // Deadline honesty is unconditional: no baseline file needed to know
  // that serving abandoned work is wrong.
  if (late_total > 0) {
    std::fprintf(stderr,
                 "bench: VIOLATION: %llu responses served more than %dms "
                 "past their %dms deadline\n",
                 static_cast<unsigned long long>(late_total), kGraceMs,
                 kDeadlineMs);
    return 1;
  }

  // --- CI gate: goodput plateau + bounded high-priority p99.
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "bench: cannot open baseline %s\n",
                   baseline_path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto parsed = Json::Parse(text.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "bench: baseline parse: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    const Json* metrics = parsed.value().Find("metrics");
    const Json* frac_floor =
        metrics == nullptr ? nullptr : metrics->Find("goodput_4x_frac_floor");
    const Json* p99_ceiling =
        metrics == nullptr ? nullptr
                           : metrics->Find("health_p99_8x_us_ceiling");
    if (frac_floor == nullptr || !frac_floor->is_number() ||
        p99_ceiling == nullptr || !p99_ceiling->is_number()) {
      std::fprintf(stderr, "bench: baseline lacks overload thresholds\n");
      return 1;
    }
    std::printf("baseline gate: goodput@4x %.2f of 1x plateau (floor "
                "%.2f); health p99@8x %.0fus (ceiling %.0fus)\n",
                goodput_4x_frac, frac_floor->as_double(), health_p99_8x * 1e6,
                p99_ceiling->as_double());
    if (goodput_4x_frac < frac_floor->as_double()) {
      std::fprintf(stderr,
                   "bench: REGRESSION: goodput collapsed to %.2f of the 1x "
                   "plateau (floor %.2f)\n",
                   goodput_4x_frac, frac_floor->as_double());
      return 1;
    }
    if (health_p99_8x * 1e6 > p99_ceiling->as_double()) {
      std::fprintf(stderr,
                   "bench: REGRESSION: health p99 %.0fus at 8x load "
                   "(ceiling %.0fus)\n",
                   health_p99_8x * 1e6, p99_ceiling->as_double());
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace nerpa::bench

int main(int argc, char** argv) { return nerpa::bench::Run(argc, argv); }
