// A small JSON value model, parser, and serializer.
//
// OVSDB's native data model is JSON (RFC 7047); the management-plane schema
// and transaction formats in src/ovsdb are defined in terms of this type.
// Benches also use it for emitting machine-readable results.
#ifndef NERPA_COMMON_JSON_H_
#define NERPA_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/status.h"

namespace nerpa {

/// An immutable-ish JSON document node.  Numbers distinguish integers from
/// doubles because OVSDB's "integer" atoms must round-trip exactly.
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;  // ordered for stable output

  Json() : rep_(nullptr) {}
  Json(std::nullptr_t) : rep_(nullptr) {}       // NOLINT(runtime/explicit)
  Json(bool b) : rep_(b) {}                     // NOLINT(runtime/explicit)
  Json(int64_t i) : rep_(i) {}                  // NOLINT(runtime/explicit)
  Json(int i) : rep_(static_cast<int64_t>(i)) {}// NOLINT(runtime/explicit)
  Json(double d) : rep_(d) {}                   // NOLINT(runtime/explicit)
  Json(std::string s) : rep_(std::move(s)) {}   // NOLINT(runtime/explicit)
  Json(const char* s) : rep_(std::string(s)) {} // NOLINT(runtime/explicit)
  Json(Array a) : rep_(std::move(a)) {}         // NOLINT(runtime/explicit)
  Json(Object o) : rep_(std::move(o)) {}        // NOLINT(runtime/explicit)

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(rep_); }
  bool is_bool() const { return std::holds_alternative<bool>(rep_); }
  bool is_integer() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_double() const { return std::holds_alternative<double>(rep_); }
  bool is_number() const { return is_integer() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }
  bool is_array() const { return std::holds_alternative<Array>(rep_); }
  bool is_object() const { return std::holds_alternative<Object>(rep_); }

  bool as_bool() const { return std::get<bool>(rep_); }
  int64_t as_integer() const { return std::get<int64_t>(rep_); }
  /// Numeric value as double regardless of integer/double representation.
  double as_double() const {
    return is_integer() ? static_cast<double>(as_integer())
                        : std::get<double>(rep_);
  }
  const std::string& as_string() const { return std::get<std::string>(rep_); }
  const Array& as_array() const { return std::get<Array>(rep_); }
  Array& as_array() { return std::get<Array>(rep_); }
  const Object& as_object() const { return std::get<Object>(rep_); }
  Object& as_object() { return std::get<Object>(rep_); }

  /// Object member lookup; returns nullptr if absent or not an object.
  const Json* Find(std::string_view key) const;

  /// Serializes compactly ({"a":1}); `indent` > 0 pretty-prints.
  std::string Dump(int indent = 0) const;

  /// Parses a complete JSON document; trailing garbage is an error.
  static Result<Json> Parse(std::string_view text);

  bool operator==(const Json& o) const { return rep_ == o.rep_; }
  bool operator!=(const Json& o) const { return !(*this == o); }

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, int64_t, double, std::string, Array,
               Object>
      rep_;
};

}  // namespace nerpa

#endif  // NERPA_COMMON_JSON_H_
