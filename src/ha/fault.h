// Fault injection for the control→data plane write path.
//
// A FaultyRuntimeClient is a drop-in p4::RuntimeClient whose write
// operations (table Write batches and multicast group programming) fail or
// stall according to a seeded pseudo-random policy.  Reads are never
// faulted: the point is to exercise the controller's retry/backoff and
// resynchronization logic against a flaky device, and reads are what the
// recovery path uses to observe ground truth.
//
// Determinism: the policy carries the RNG seed, so a given (seed, call
// sequence) produces the same fault pattern every run — tests assert exact
// convergence without flakiness.
#ifndef NERPA_HA_FAULT_H_
#define NERPA_HA_FAULT_H_

#include <cstdint>
#include <random>

#include "common/status.h"
#include "p4/runtime.h"

namespace nerpa::ha {

struct FaultPolicy {
  /// Probability in [0, 1] that a write call faults before anything
  /// applies.  What "fault" means depends on stall_nanos below.
  double write_fail_probability = 0;
  /// RNG seed; same seed → same fault sequence.
  uint64_t seed = 1;
  /// Stop injecting after this many failures (< 0 = unlimited).  Lets
  /// tests model "device flaky then heals".
  int64_t max_failures = -1;
  /// Busy-delay applied to every forwarded write, in nanoseconds (models
  /// a slow device; keep small in tests).
  int64_t write_delay_nanos = 0;
  /// Stall mode: when > 0, an injected fault busy-waits this long and then
  /// *succeeds* instead of erroring — a slow device rather than a broken
  /// one.  Lets breaker tests distinguish a timeout strike from an error
  /// strike.
  int64_t stall_nanos = 0;
};

class FaultyRuntimeClient : public p4::RuntimeClient {
 public:
  FaultyRuntimeClient(p4::Switch* sw, FaultPolicy policy)
      : p4::RuntimeClient(sw), policy_(policy), rng_(policy.seed) {}

  Status Write(const std::vector<p4::Update>& updates) override;
  Status SetMulticastGroup(uint32_t group,
                           std::vector<uint64_t> ports) override;

  struct Stats {
    uint64_t write_calls = 0;      // faultable calls seen
    uint64_t injected_failures = 0;
    uint64_t injected_stalls = 0;  // stall-mode faults (succeeded slowly)
    uint64_t delayed_calls = 0;
  };
  const Stats& fault_stats() const { return stats_; }

  /// Replaces the policy mid-run (the RNG stream continues).  The chaos
  /// harness uses this to flip a device dead / slow / healthy on schedule.
  void set_policy(const FaultPolicy& policy) { policy_ = policy; }
  const FaultPolicy& policy() const { return policy_; }

 private:
  /// Returns the injected error for this call, or Ok to forward it.
  Status MaybeFail(const char* what);
  void MaybeDelay();

  FaultPolicy policy_;
  std::mt19937_64 rng_;
  Stats stats_;
};

}  // namespace nerpa::ha

#endif  // NERPA_HA_FAULT_H_
