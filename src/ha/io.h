// Injectable filesystem layer for the durability subsystem.
//
// WriteAheadLog and DurableStore perform all disk access through an
// ha::Io, so tests (notably the src/chaos harness) can interpose a
// faulty implementation that tears appends, flips bytes in reads and
// writes, or loses files — deterministically, under a seeded schedule —
// without touching the real recovery logic.  Production code uses
// DefaultIo(), a thin veneer over <fstream> / <filesystem>.
//
// The seam is deliberately coarse (whole-file reads, atomic whole-file
// writes, append streams): it matches exactly the operations the
// recovery policy reasons about, so every injected fault maps onto a
// failure mode the policy claims to tolerate.
#ifndef NERPA_HA_IO_H_
#define NERPA_HA_IO_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace nerpa::ha {

/// An open append stream.  Append() must flush to the OS before
/// returning Ok: the WAL's durability contract is "flushed before the
/// commit returns".
class Appender {
 public:
  virtual ~Appender() = default;
  virtual Status Append(std::string_view data) = 0;
};

class Io {
 public:
  virtual ~Io() = default;

  /// Reads the whole file.  NotFound when it does not exist.
  virtual Result<std::string> ReadFile(const std::string& path);

  /// Writes `contents` to `path` atomically (tmp file + rename): readers
  /// observe either the old file or the new one, never a prefix.
  virtual Status WriteFileAtomic(const std::string& path,
                                 std::string_view contents);

  /// Opens `path` (creating if missing) for appending.
  virtual Result<std::unique_ptr<Appender>> OpenAppend(
      const std::string& path);

  /// Truncates `path` to empty, creating it if missing.
  virtual Status Truncate(const std::string& path);

  /// Truncates `path` to its first `size` bytes (torn-tail repair).
  virtual Status TruncateTo(const std::string& path, uint64_t size);

  /// Renames `from` to `to`, replacing `to` if it exists.
  virtual Status Rename(const std::string& from, const std::string& to);

  virtual bool Exists(const std::string& path);

  /// Removes `path`; Ok if it did not exist.
  virtual Status Remove(const std::string& path);
};

/// The process-wide passthrough implementation.
Io& DefaultIo();

}  // namespace nerpa::ha

#endif  // NERPA_HA_IO_H_
