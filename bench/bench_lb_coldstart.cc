// E5 — §2.2's honest worst case for automatic incrementality:
//
// "OVN's load balancer benchmark cold starts ovn-controller with large
//  load balancers and then deletes each.  This is a worst-case for
//  incremental computation ... On this benchmark, a DDlog controller took
//  2x the CPU time and 5x the RAM as the C implementation."
//
// Workload: L load balancers, each with V VIPs and B backends; the derived
// state is the VIP x backend cross product per LB.  Phase 1 cold-starts
// (everything inserted at once — incrementality buys nothing, but the
// engine still builds its arrangements/indexes).  Phase 2 deletes the load
// balancers one by one.
//
// Three variants run in SEPARATE child processes (so RSS is clean):
//   * dlog       — the automatically incremental engine (join rule)
//   * restore    — the same engine warm-started from a SerializeState()
//                  checkpoint instead of recomputing the join
//   * imperative — a hand-written C++ controller with exactly the maps it
//                  needs and nothing more
//
// Expected shape: the dlog variant uses MORE cpu and MORE memory — this is
// the cost of generality the paper reports (2x CPU / 5x RAM).  The restore
// variant shows what arrangement checkpointing buys back: loading derived
// state is a linear scan, so it beats recomputation outright.
//
// With --baseline=FILE the bench compares the machine-independent ratios
// (dlog/imperative CPU, restore speedup) against the checked-in baseline
// and exits nonzero on a >30% regression (tune with --regress-frac=F).
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "bench/bench_util.h"
#include "dlog/engine.h"

#include <sys/wait.h>
#include <unistd.h>

namespace nerpa {
namespace {

using bench::Banner;
using bench::BenchArgs;
using bench::JsonEmitter;
using bench::Table;
using dlog::Engine;
using dlog::Row;
using dlog::Value;

// --scale multiplies the LB count (the paper's knob); VIP/backend fan-out
// per LB is fixed so the per-LB cross product stays comparable.
constexpr int kBaseLbs = 40;
constexpr int kVipsPerLb = 20;
constexpr int kBackendsPerLb = 40;

constexpr const char* kProgram = R"(
input relation Lb(lb: bigint, vip: bigint)
input relation Backend(lb: bigint, ip: bigint)
output relation LbFlow(vip: bigint, ip: bigint)
LbFlow(vip, ip) :- Lb(lb, vip), Backend(lb, ip).
)";

int64_t Vip(int lb, int v) { return lb * 1000 + v; }
int64_t Ip(int lb, int b) { return 1000000 + lb * 1000 + b; }

/// Child process: runs one variant, prints "cpu_s rss_bytes cold_s del_s n".
int RunDlogVariant(int kLbs) {
  auto program = dlog::Program::Parse(kProgram);
  if (!program.ok()) return 1;
  int64_t cpu0 = ProcessCpuNanos();
  Engine engine(*program);
  Stopwatch cold;
  for (int lb = 0; lb < kLbs; ++lb) {
    for (int v = 0; v < kVipsPerLb; ++v) {
      (void)engine.Insert("Lb", Row{Value::Int(lb), Value::Int(Vip(lb, v))});
    }
    for (int b = 0; b < kBackendsPerLb; ++b) {
      (void)engine.Insert("Backend",
                          Row{Value::Int(lb), Value::Int(Ip(lb, b))});
    }
  }
  if (!engine.Commit().ok()) return 1;
  double cold_seconds = cold.ElapsedSeconds();
  size_t flows = engine.Size("LbFlow");

  Stopwatch del;
  for (int lb = 0; lb < kLbs; ++lb) {
    for (int v = 0; v < kVipsPerLb; ++v) {
      (void)engine.Delete("Lb", Row{Value::Int(lb), Value::Int(Vip(lb, v))});
    }
    for (int b = 0; b < kBackendsPerLb; ++b) {
      (void)engine.Delete("Backend",
                          Row{Value::Int(lb), Value::Int(Ip(lb, b))});
    }
    if (!engine.Commit().ok()) return 1;
  }
  double del_seconds = del.ElapsedSeconds();
  double cpu = static_cast<double>(ProcessCpuNanos() - cpu0) * 1e-9;
  std::printf("%f %lld %f %f %zu\n", cpu,
              static_cast<long long>(CurrentRssBytes()), cold_seconds,
              del_seconds, flows);
  return 0;
}

/// Child process: cold start from a checkpoint blob instead of recomputing.
/// The build+serialize prep runs untimed; measurement starts at Restore(),
/// which is what a controller restart actually pays.
int RunRestoreVariant(int kLbs) {
  auto program = dlog::Program::Parse(kProgram);
  if (!program.ok()) return 1;
  std::string blob;
  {
    Engine builder(*program);
    for (int lb = 0; lb < kLbs; ++lb) {
      for (int v = 0; v < kVipsPerLb; ++v) {
        (void)builder.Insert("Lb",
                             Row{Value::Int(lb), Value::Int(Vip(lb, v))});
      }
      for (int b = 0; b < kBackendsPerLb; ++b) {
        (void)builder.Insert("Backend",
                             Row{Value::Int(lb), Value::Int(Ip(lb, b))});
      }
    }
    if (!builder.Commit().ok()) return 1;
    blob = builder.SerializeState();
  }  // the "crashed" engine is gone; restart starts here
  int64_t cpu0 = ProcessCpuNanos();
  Stopwatch cold;
  auto restored = Engine::Restore(*program, blob);
  if (!restored.ok()) return 1;
  Engine& engine = **restored;
  double cold_seconds = cold.ElapsedSeconds();
  size_t flows = engine.Size("LbFlow");

  Stopwatch del;
  for (int lb = 0; lb < kLbs; ++lb) {
    for (int v = 0; v < kVipsPerLb; ++v) {
      (void)engine.Delete("Lb", Row{Value::Int(lb), Value::Int(Vip(lb, v))});
    }
    for (int b = 0; b < kBackendsPerLb; ++b) {
      (void)engine.Delete("Backend",
                          Row{Value::Int(lb), Value::Int(Ip(lb, b))});
    }
    if (!engine.Commit().ok()) return 1;
  }
  double del_seconds = del.ElapsedSeconds();
  double cpu = static_cast<double>(ProcessCpuNanos() - cpu0) * 1e-9;
  std::printf("%f %lld %f %f %zu\n", cpu,
              static_cast<long long>(CurrentRssBytes()), cold_seconds,
              del_seconds, flows);
  return 0;
}

int RunImperativeVariant(int kLbs) {
  int64_t cpu0 = ProcessCpuNanos();
  // Exactly the state a hand-written LB controller keeps.
  std::map<int, std::vector<int64_t>> lb_vips, lb_backends;
  std::set<std::pair<int64_t, int64_t>> flows;
  Stopwatch cold;
  for (int lb = 0; lb < kLbs; ++lb) {
    for (int v = 0; v < kVipsPerLb; ++v) {
      lb_vips[lb].push_back(Vip(lb, v));
    }
    for (int b = 0; b < kBackendsPerLb; ++b) {
      lb_backends[lb].push_back(Ip(lb, b));
    }
    for (int64_t vip : lb_vips[lb]) {
      for (int64_t ip : lb_backends[lb]) {
        flows.emplace(vip, ip);
      }
    }
  }
  double cold_seconds = cold.ElapsedSeconds();
  size_t flow_count = flows.size();

  Stopwatch del;
  for (int lb = 0; lb < kLbs; ++lb) {
    for (int64_t vip : lb_vips[lb]) {
      for (int64_t ip : lb_backends[lb]) {
        flows.erase({vip, ip});
      }
    }
    lb_vips.erase(lb);
    lb_backends.erase(lb);
  }
  double del_seconds = del.ElapsedSeconds();
  double cpu = static_cast<double>(ProcessCpuNanos() - cpu0) * 1e-9;
  std::printf("%f %lld %f %f %zu\n", cpu,
              static_cast<long long>(CurrentRssBytes()), cold_seconds,
              del_seconds, flow_count);
  return 0;
}

struct ChildResult {
  double cpu = 0;
  long long rss = 0;
  double cold = 0;
  double del = 0;
  size_t flows = 0;
};

bool RunChild(const char* self, const char* variant, const BenchArgs& args,
              ChildResult* out) {
  std::string command = std::string(self) + " " + variant + args.Forward();
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return false;
  char line[256] = {0};
  bool ok = fgets(line, sizeof line, pipe) != nullptr;
  int status = pclose(pipe);
  if (!ok || status != 0) return false;
  return std::sscanf(line, "%lf %lld %lf %lf %zu", &out->cpu, &out->rss,
                     &out->cold, &out->del, &out->flows) == 5;
}

int Run(const char* self, int argc, char** argv, const BenchArgs& args) {
  std::string baseline_path;
  double regress_frac = 0.30;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--baseline=", 11) == 0) {
      baseline_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--regress-frac=", 15) == 0) {
      regress_frac = std::atof(argv[i] + 15);
    }
  }
  const int kLbs = args.Scaled(kBaseLbs);
  Banner("E5 / §2.2",
         "load-balancer cold start + delete-each: the incremental worst "
         "case");
  std::printf("workload: %d LBs x %d VIPs x %d backends = %d derived flows\n\n",
              kLbs, kVipsPerLb, kBackendsPerLb,
              kLbs * kVipsPerLb * kBackendsPerLb);
  ChildResult dlog_result, restore_result, imp_result;
  if (!RunChild(self, "dlog", args, &dlog_result) ||
      !RunChild(self, "restore", args, &restore_result) ||
      !RunChild(self, "imperative", args, &imp_result)) {
    std::fprintf(stderr, "child variant failed\n");
    return 1;
  }
  if (dlog_result.flows != imp_result.flows ||
      dlog_result.flows != restore_result.flows) {
    std::fprintf(stderr, "variants disagree on flow count: %zu vs %zu vs %zu\n",
                 dlog_result.flows, restore_result.flows, imp_result.flows);
    return 1;
  }
  Table table({"variant", "cold start", "delete phase", "CPU total",
               "peak RSS"});
  table.AddRow({"dlog (auto-incremental)", bench::Ms(dlog_result.cold),
                bench::Ms(dlog_result.del), bench::Ms(dlog_result.cpu),
                StrFormat("%.1f MiB",
                          static_cast<double>(dlog_result.rss) / 1048576.0)});
  table.AddRow({"dlog (checkpoint restore)", bench::Ms(restore_result.cold),
                bench::Ms(restore_result.del), bench::Ms(restore_result.cpu),
                StrFormat("%.1f MiB",
                          static_cast<double>(restore_result.rss) /
                              1048576.0)});
  table.AddRow({"imperative (hand-written)", bench::Ms(imp_result.cold),
                bench::Ms(imp_result.del), bench::Ms(imp_result.cpu),
                StrFormat("%.1f MiB",
                          static_cast<double>(imp_result.rss) / 1048576.0)});
  table.Print();
  double cpu_ratio = dlog_result.cpu / imp_result.cpu;
  double restore_speedup = restore_result.cold > 0
                               ? dlog_result.cold / restore_result.cold
                               : 0;
  std::printf(
      "\nratios (dlog / imperative): CPU %.1fx, RSS %.1fx\n"
      "checkpoint restore: %.1fx faster than recomputing the cold start\n"
      "paper reference: DDlog took 2x the CPU and 5x the RAM of the C\n"
      "implementation on this benchmark (§2.2).  Expected shape: the\n"
      "automatically incremental engine LOSES here — indexing for\n"
      "incrementality is pure overhead on a build-then-tear-down workload;\n"
      "checkpointing sidesteps the recomputation entirely.\n",
      cpu_ratio,
      static_cast<double>(dlog_result.rss) /
          static_cast<double>(imp_result.rss),
      restore_speedup);

  JsonEmitter emitter("lb_coldstart", args);
  emitter.Param("load_balancers", kLbs);
  emitter.Param("vips_per_lb", kVipsPerLb);
  emitter.Param("backends_per_lb", kBackendsPerLb);
  emitter.Metric("derived_flows", static_cast<int64_t>(dlog_result.flows));
  emitter.Metric("dlog_cold_start_s", dlog_result.cold);
  emitter.Metric("dlog_delete_phase_s", dlog_result.del);
  emitter.Metric("dlog_cpu_s", dlog_result.cpu);
  emitter.Metric("dlog_rss_bytes", static_cast<int64_t>(dlog_result.rss));
  emitter.Metric("imperative_cold_start_s", imp_result.cold);
  emitter.Metric("imperative_delete_phase_s", imp_result.del);
  emitter.Metric("imperative_cpu_s", imp_result.cpu);
  emitter.Metric("imperative_rss_bytes",
                 static_cast<int64_t>(imp_result.rss));
  emitter.Metric("restore_cold_start_s", restore_result.cold);
  emitter.Metric("restore_delete_phase_s", restore_result.del);
  emitter.Metric("restore_cpu_s", restore_result.cpu);
  emitter.Metric("restore_rss_bytes",
                 static_cast<int64_t>(restore_result.rss));
  emitter.Metric("cpu_dlog_over_imperative", cpu_ratio);
  emitter.Metric("rss_dlog_over_imperative",
                 static_cast<double>(dlog_result.rss) /
                     static_cast<double>(imp_result.rss));
  emitter.Metric("restore_speedup_vs_cold", restore_speedup);
  emitter.Write();

  // --- CI gate: the machine-independent ratios against the checked-in
  // baseline.  cpu_dlog_over_imperative is a ceiling (regressions push it
  // up); restore_speedup_vs_cold is a floor (regressions pull it down).
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "bench: cannot open baseline %s\n",
                   baseline_path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto parsed = Json::Parse(text.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "bench: baseline parse: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    const Json* metrics = parsed.value().Find("metrics");
    const Json* cpu_ref =
        metrics == nullptr ? nullptr : metrics->Find("cpu_dlog_over_imperative");
    const Json* speedup_ref =
        metrics == nullptr ? nullptr : metrics->Find("restore_speedup_vs_cold");
    if (cpu_ref == nullptr || !cpu_ref->is_number() ||
        speedup_ref == nullptr || !speedup_ref->is_number()) {
      std::fprintf(stderr,
                   "bench: baseline lacks cpu_dlog_over_imperative / "
                   "restore_speedup_vs_cold\n");
      return 1;
    }
    double cpu_ceiling = cpu_ref->as_double() * (1.0 + regress_frac);
    double speedup_floor = speedup_ref->as_double() * (1.0 - regress_frac);
    std::printf("baseline gate: cpu ratio %.2fx vs %.2fx ceiling, restore "
                "speedup %.2fx vs %.2fx floor (regress-frac %.2f)\n",
                cpu_ratio, cpu_ceiling, restore_speedup, speedup_floor,
                regress_frac);
    if (cpu_ratio > cpu_ceiling) {
      std::fprintf(stderr, "bench: REGRESSION: cpu ratio %.2fx > %.2fx\n",
                   cpu_ratio, cpu_ceiling);
      return 1;
    }
    if (restore_speedup < speedup_floor) {
      std::fprintf(stderr, "bench: REGRESSION: restore speedup %.2fx < %.2fx\n",
                   restore_speedup, speedup_floor);
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace nerpa

int main(int argc, char** argv) {
  nerpa::bench::BenchArgs args = nerpa::bench::BenchArgs::Parse(argc, argv);
  if (argc > 1 && std::strcmp(argv[1], "dlog") == 0) {
    return nerpa::RunDlogVariant(args.Scaled(nerpa::kBaseLbs));
  }
  if (argc > 1 && std::strcmp(argv[1], "restore") == 0) {
    return nerpa::RunRestoreVariant(args.Scaled(nerpa::kBaseLbs));
  }
  if (argc > 1 && std::strcmp(argv[1], "imperative") == 0) {
    return nerpa::RunImperativeVariant(args.Scaled(nerpa::kBaseLbs));
  }
  return nerpa::Run(argv[0], argc, argv, args);
}
